#!/usr/bin/env bash
# Input-validation gate for the hydra CLI's QuerySpec flags: every
# malformed value and every unsupported mode+method combination must exit
# 1 with a clean message (never a CHECK abort / non-1 status), and valid
# specs must run. Usage: validation_test.sh <path-to-hydra-binary>
set -u

bin="${1:?usage: validation_test.sh <hydra binary>}"
fails=0

# expect_err <description> <required stderr substring> <cli args...>
expect_err() {
  local desc="$1" want="$2"
  shift 2
  local out rc
  out=$("$bin" "$@" 2>&1)
  rc=$?
  if [ "$rc" -ne 1 ]; then
    echo "FAIL ($desc): exit $rc, want 1 — output: $out"
    fails=1
  fi
  case "$out" in
    *"$want"*) ;;
    *)
      echo "FAIL ($desc): expected '$want' in output: $out"
      fails=1
      ;;
  esac
}

# expect_ok <description> <cli args...>
expect_ok() {
  local desc="$1"
  shift
  if ! "$bin" "$@" >/dev/null 2>&1; then
    echo "FAIL ($desc): expected success"
    fails=1
  fi
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
d="$tmp/d.bin"
"$bin" gen synth 400 64 3 "$d" >/dev/null || {
  echo "FAIL: could not generate the probe dataset"
  exit 1
}

# --epsilon: strict ParseDouble — reject NaN, inf, negatives, junk.
expect_err "epsilon nan" "--epsilon must be" \
  query "$d" DSTree 3 2 --mode epsilon --epsilon nan
expect_err "epsilon inf" "--epsilon must be" \
  query "$d" DSTree 3 2 --mode epsilon --epsilon inf
expect_err "epsilon overflow" "--epsilon must be" \
  query "$d" DSTree 3 2 --mode epsilon --epsilon 1e999
expect_err "epsilon negative" "--epsilon must be" \
  query "$d" DSTree 3 2 --mode epsilon --epsilon -0.5
expect_err "epsilon trailing junk" "--epsilon must be" \
  query "$d" DSTree 3 2 --mode epsilon --epsilon 0.5x
expect_err "epsilon hex float" "--epsilon must be" \
  query "$d" DSTree 3 2 --mode epsilon --epsilon 0x5
expect_err "epsilon empty-ish" "--epsilon must be" \
  query "$d" DSTree 3 2 --mode epsilon --epsilon +1
expect_err "epsilon missing value" "--epsilon needs a value" \
  query "$d" DSTree 3 2 --mode epsilon --epsilon

# --delta: strict ParseDouble plus the (0, 1] domain.
expect_err "delta zero" "--delta must lie in (0, 1]" \
  query "$d" DSTree 3 2 --mode delta-epsilon --epsilon 1 --delta 0
expect_err "delta above one" "--delta must lie in (0, 1]" \
  query "$d" DSTree 3 2 --mode delta-epsilon --epsilon 1 --delta 1.5
expect_err "delta nan" "--delta must lie in (0, 1]" \
  query "$d" DSTree 3 2 --mode delta-epsilon --epsilon 1 --delta nan
expect_err "delta junk" "--delta must lie in (0, 1]" \
  query "$d" DSTree 3 2 --mode delta-epsilon --epsilon 1 --delta 0.5e

# Flag consistency.
expect_err "unknown mode" "unknown mode" \
  query "$d" DSTree 3 2 --mode fast
expect_err "epsilon without mode" "--epsilon requires --mode" \
  query "$d" DSTree 3 2 --epsilon 0.5
expect_err "epsilon mode without value" "--mode epsilon requires --epsilon" \
  query "$d" DSTree 3 2 --mode epsilon
expect_err "delta-epsilon mode without delta" \
  "--mode delta-epsilon requires --delta" \
  query "$d" DSTree 3 2 --mode delta-epsilon --epsilon 1
expect_err "delta without mode" "--delta requires --mode delta-epsilon" \
  query "$d" DSTree 3 2 --mode epsilon --epsilon 1 --delta 0.5
expect_err "budget under ng" "budgets do not apply to --mode ng" \
  query "$d" DSTree 3 2 --mode ng --max-leaves 2
expect_err "max-leaves zero" "--max-leaves must be a positive integer" \
  query "$d" DSTree 3 2 --max-leaves 0
expect_err "max-raw junk" "--max-raw must be a positive integer" \
  query "$d" DSTree 3 2 --max-raw 10x
expect_err "leaf budget on a scan" "no leaf-visit budget unit" \
  query "$d" UCR-Suite 3 2 --max-leaves 5
expect_err "leaf budget on VA+file" "no leaf-visit budget unit" \
  query "$d" VA+file 3 2 --max-leaves 5
expect_err "leaf budget on ADS+" "no leaf-visit budget unit" \
  query "$d" ADS+ 3 2 --max-leaves 5
expect_err "spec flags on range" "only supported by 'query'" \
  range "$d" DSTree 5 2 --mode epsilon

# Unsupported mode+method combinations exit 1 with the traits-derived
# reason (scans are exact-only; M-tree has no ng descent).
expect_err "scan epsilon" "method supports modes: exact" \
  query "$d" UCR-Suite 3 2 --mode epsilon --epsilon 0.5
expect_err "scan ng" "UCR-Suite does not support --mode ng" \
  query "$d" UCR-Suite 3 2 --mode ng
expect_err "mtree ng" "method supports modes: exact, epsilon" \
  query "$d" M-tree 3 2 --mode ng
expect_err "mtree delta-epsilon" "M-tree does not support --mode delta-epsilon" \
  query "$d" M-tree 3 2 --mode delta-epsilon --epsilon 1 --delta 0.5

# The index lifecycle flags: --index only where a persisted index can be
# opened, `build` only for methods that can persist one, and every bad
# index file exits 1 cleanly (never a CHECK abort).
expect_err "index on compare" "--index is only supported" \
  compare "$d" 2 --index "$tmp/idx"
expect_err "index on gen" "--index is only supported" \
  gen synth 10 8 1 "$tmp/x.bin" --index "$tmp/idx"
expect_err "index without value" "--index needs a value" \
  query "$d" DSTree 3 2 --index
expect_err "build on a scan" "does not support a persisted index" \
  build "$d" MASS "$tmp/idx"
expect_err "query --index on a scan" "does not support --index" \
  query "$d" MASS 3 2 --index "$tmp/idx"
expect_err "missing index dir" "cannot open index file" \
  query "$d" DSTree 3 2 --index "$tmp/no-such-index"
expect_err "build unknown method" "unknown method" \
  build "$d" NotAMethod "$tmp/idx"
expect_ok "build then open" build "$d" DSTree "$tmp/idx"
expect_ok "query via index" query "$d" DSTree 3 2 --index "$tmp/idx"
expect_ok "range via index" range "$d" DSTree 5 2 --index "$tmp/idx"
expect_err "index of another method" "was built by 'DSTree'" \
  query "$d" SFA 3 2 --index "$tmp/idx"
"$bin" gen synth 200 64 4 "$tmp/other.bin" >/dev/null
expect_err "index fingerprint mismatch" "fingerprint mismatch" \
  query "$tmp/other.bin" DSTree 3 2 --index "$tmp/idx"

# The kernel-dispatch flag: unknown/unsupported sets and misplaced flags
# exit 1 listing the supported sets; ambient HYDRA_KERNELS misuse exits 1
# for every command (never the library's abort); valid forcings run.
expect_err "kernels unknown set" "unknown kernel set" \
  query "$d" DSTree 3 2 --kernels fast
expect_err "kernels missing value" "--kernels needs a value" \
  query "$d" DSTree 3 2 --kernels
expect_err "kernels on gen" "--kernels is only supported" \
  gen synth 10 8 1 "$tmp/y.bin" --kernels scalar
expect_err "kernels on methods" "--kernels is only supported" \
  methods --kernels scalar
bad_env_out=$(HYDRA_KERNELS=bogus "$bin" query "$d" DSTree 3 2 2>&1)
bad_env_rc=$?
if [ "$bad_env_rc" -ne 1 ]; then
  echo "FAIL (bad HYDRA_KERNELS): exit $bad_env_rc, want 1 — $bad_env_out"
  fails=1
fi
case "$bad_env_out" in
  *"HYDRA_KERNELS='bogus'"*) ;;
  *)
    echo "FAIL (bad HYDRA_KERNELS): expected clean message: $bad_env_out"
    fails=1
    ;;
esac
expect_ok "kernels scalar forced" query "$d" DSTree 3 2 --kernels scalar
expect_ok "kernels portable forced" query "$d" iSAX2+ 3 2 --kernels portable
expect_ok "kernels listing" kernels
expect_ok "kernels names listing" kernels names
# The flag wins over a valid environment setting.
if ! HYDRA_KERNELS=scalar "$bin" query "$d" DSTree 3 2 --kernels portable \
    >/dev/null 2>&1; then
  echo "FAIL (flag overrides env): expected success"
  fails=1
fi

# Valid specs run end to end.
expect_ok "exact default" query "$d" DSTree 3 2
expect_ok "explicit exact" query "$d" DSTree 3 2 --mode exact
expect_ok "epsilon" query "$d" DSTree 3 2 --mode epsilon --epsilon 0.5
expect_ok "delta-epsilon" \
  query "$d" SFA 3 2 --mode delta-epsilon --epsilon 1 --delta 0.25
expect_ok "ng" query "$d" iSAX2+ 3 2 --mode ng
expect_ok "budgeted exact" query "$d" DSTree 3 2 --max-raw 50 --max-leaves 2
expect_ok "mtree epsilon" query "$d" M-tree 3 2 --mode epsilon --epsilon 2

if [ "$fails" -ne 0 ]; then
  echo "cli_validation_test: FAILED"
  exit 1
fi
echo "cli_validation_test: all checks passed"
