// End-to-end tracing battery: a sharded, intra-query-parallel DSTree over
// the mmap + buffer-pool backend, executed with the tracer recording,
// must emit the full span hierarchy — per-query execute roots, per-shard
// fan-out spans, traversal workers, leaf verification nested inside them,
// and buffer-pool miss preads — with span clocks that reconcile against
// the query's own measured cpu_seconds.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/registry.h"
#include "core/method.h"
#include "core/query_spec.h"
#include "gen/random_walk.h"
#include "gen/workload.h"
#include "io/series_file.h"
#include "obs/trace.h"
#include "storage/backend.h"

namespace hydra {
namespace {

constexpr size_t kCount = 2000;
constexpr size_t kLength = 64;
constexpr size_t kShards = 3;
constexpr size_t kQueries = 3;

class ObsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Get().Disable();
    obs::Tracer::Get().Clear();
    path_ = ::testing::TempDir() + "/hydra_obs_integration.bin";
    const core::Dataset generated =
        gen::RandomWalkDataset(kCount, kLength, 1213);
    ASSERT_TRUE(io::WriteSeriesFile(path_, generated).ok());
    // A pool far below the dataset so traced queries actually miss.
    storage::StorageOptions options;
    options.backend = storage::StorageBackend::kMmap;
    options.pool.budget_bytes = 32 << 10;
    options.pool.page_bytes = 8 << 10;
    auto opened = storage::StorageHandle::Open(path_, "obs", options);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    stored_ = std::move(opened).value();
    ASSERT_TRUE(stored_.pooled());
  }

  void TearDown() override {
    obs::Tracer::Get().Disable();
    obs::Tracer::Get().Clear();
    std::remove(path_.c_str());
  }

  std::string path_;
  storage::StorageHandle stored_;
};

TEST_F(ObsIntegrationTest, ShardedPooledQueryEmitsFullPhaseHierarchy) {
  auto method =
      bench::CreateShardedMethod("DSTree", kShards, /*threads=*/kShards);
  ASSERT_NE(method, nullptr);
  method->Build(stored_.dataset());
  const gen::Workload probe =
      gen::CtrlWorkload(stored_.dataset(), kQueries, 1);
  core::QuerySpec spec = core::QuerySpec::Knn(5);
  spec.query_threads = 2;

  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.Enable();
  double cpu_seconds = 0.0;
  for (size_t q = 0; q < probe.queries.size(); ++q) {
    const core::QueryResult r = method->Execute(probe.queries[q], spec);
    ASSERT_EQ(r.neighbors.size(), 5u);
    cpu_seconds += r.stats.cpu_seconds;
  }
  tracer.Disable();

  std::vector<obs::CollectedEvent> events;
  const obs::Tracer::CollectResult collected = tracer.Collect(&events);
  EXPECT_EQ(collected.dropped, 0u);

  auto named = [&events](const char* name) {
    std::vector<obs::CollectedEvent> out;
    for (const obs::CollectedEvent& e : events) {
      if (std::string(e.name) == name) out.push_back(e);
    }
    return out;
  };
  const auto executes = named("execute");
  const auto shard_searches = named("shard_search");
  const auto merges = named("shard_merge");
  const auto traversals = named("traversal");
  const auto leaf_verifies = named("leaf_verify");
  const auto pool_misses = named("pool_miss_pread");

  // One root span per query, at depth 0 on the calling thread.
  ASSERT_EQ(executes.size(), kQueries);
  for (const auto& e : executes) EXPECT_EQ(e.depth, 0u);
  // Every query fans out over every shard and merges once.
  EXPECT_EQ(shard_searches.size(), kQueries * kShards);
  EXPECT_EQ(merges.size(), kQueries);
  // Cooperative traversal ran (workers each open a traversal span), and
  // leaves were verified inside it.
  EXPECT_GE(traversals.size(), kQueries * kShards);
  EXPECT_FALSE(leaf_verifies.empty());
  // The starved pool forced real IO under the trace.
  EXPECT_FALSE(pool_misses.empty());

  // Hierarchy by time containment: every shard_search lies inside some
  // execute interval (fan-out joins before Execute returns).
  for (const auto& s : shard_searches) {
    const bool contained = std::any_of(
        executes.begin(), executes.end(), [&s](const obs::CollectedEvent& e) {
          return e.start_ns <= s.start_ns &&
                 s.start_ns + s.dur_ns <= e.start_ns + e.dur_ns;
        });
    EXPECT_TRUE(contained) << "shard_search escaped every execute span";
  }
  // Nesting is well-formed: every non-root span has a parent — an event
  // on the same thread, one level shallower, whose interval contains it.
  // (Parents close after children, so with zero drops they are always in
  // the flush.)
  for (const auto& child : events) {
    if (child.depth == 0) continue;
    const bool has_parent = std::any_of(
        events.begin(), events.end(),
        [&child](const obs::CollectedEvent& p) {
          return p.tid == child.tid && p.depth + 1 == child.depth &&
                 p.start_ns <= child.start_ns &&
                 child.start_ns + child.dur_ns <= p.start_ns + p.dur_ns;
        });
    EXPECT_TRUE(has_parent)
        << child.name << " at depth " << child.depth << " has no parent";
  }
  // And specifically: engine-visited leaves record inside a traversal
  // span (the greedy bound-seeding descent legitimately verifies its
  // first leaves under shard_search, before the engine starts).
  const bool leaf_inside_traversal = std::any_of(
      leaf_verifies.begin(), leaf_verifies.end(),
      [&traversals](const obs::CollectedEvent& lv) {
        return std::any_of(
            traversals.begin(), traversals.end(),
            [&lv](const obs::CollectedEvent& t) {
              return t.tid == lv.tid && lv.depth == t.depth + 1 &&
                     t.start_ns <= lv.start_ns &&
                     lv.start_ns + lv.dur_ns <= t.start_ns + t.dur_ns;
            });
      });
  EXPECT_TRUE(leaf_inside_traversal)
      << "no leaf_verify nested in any traversal span";

  // Clock reconciliation: sharded cpu_seconds is the *sum* of per-shard
  // search walls (plus a tiny merge), and each shard_search span wraps
  // exactly one per-shard search on its worker thread — so the summed
  // shard_search + shard_merge spans must agree with cpu_seconds within
  // 20% even though the fan-out runs the shards concurrently.
  double phase_seconds = 0.0;
  for (const auto& s : shard_searches) phase_seconds += 1e-9 * s.dur_ns;
  for (const auto& m : merges) phase_seconds += 1e-9 * m.dur_ns;
  EXPECT_GT(phase_seconds, 0.0);
  EXPECT_GT(cpu_seconds, 0.0);
  EXPECT_LT(std::abs(phase_seconds - cpu_seconds), 0.2 * phase_seconds)
      << "phase spans " << phase_seconds << "s vs measured cpu "
      << cpu_seconds << "s";
}

TEST_F(ObsIntegrationTest, TraceSurvivesJsonExportAfterRealQueries) {
  auto method = bench::CreateMethod("DSTree");
  method->Build(stored_.dataset());
  const gen::Workload probe = gen::CtrlWorkload(stored_.dataset(), 2, 1);
  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.Enable();
  for (size_t q = 0; q < probe.queries.size(); ++q) {
    method->Execute(probe.queries[q], core::QuerySpec::Knn(3));
  }
  tracer.Disable();
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"leaf_verify\""), std::string::npos);
}

}  // namespace
}  // namespace hydra
