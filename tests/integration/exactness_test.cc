// The central invariant of the study: every method is EXACT. Each method
// must return the same k-NN set as brute force, on every dataset family,
// for several k. (MASS computes distances through the Fourier domain, so
// ties are compared by distance with a small tolerance.)
#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "bench/registry.h"
#include "core/method.h"
#include "gen/random_walk.h"
#include "gen/realistic.h"
#include "gen/workload.h"

namespace hydra {
namespace {

using Param = std::tuple<std::string, std::string>;  // method, dataset family

class ExactnessTest : public ::testing::TestWithParam<Param> {};

TEST_P(ExactnessTest, MatchesBruteForce) {
  const auto& [method_name, family] = GetParam();
  const size_t count = method_name == "M-tree" ? 1200 : 3000;
  const size_t length = family == "deep" ? 96 : 128;
  const core::Dataset data = gen::MakeDataset(family, count, length, 1234);
  const gen::Workload rand_w = gen::RandWorkload(6, length, 77);
  const gen::Workload ctrl_w = gen::CtrlWorkload(data, 6, 78);

  auto method = bench::CreateMethod(method_name, 64);
  method->Build(data);

  for (const gen::Workload* w : {&rand_w, &ctrl_w}) {
    for (size_t q = 0; q < w->queries.size(); ++q) {
      for (const size_t k : {1u, 5u}) {
        const auto expected = core::BruteForceKnn(data, w->queries[q], k);
        core::KnnResult got = method->SearchKnn(w->queries[q], k);
        ASSERT_EQ(got.neighbors.size(), k)
            << method_name << " " << w->name << " q=" << q;
        for (size_t i = 0; i < k; ++i) {
          // Distances must agree (tolerance covers MASS's FFT round trip
          // and accumulation-order differences).
          const double tol =
              1e-5 * std::max(1.0, expected[i].dist_sq);
          EXPECT_NEAR(got.neighbors[i].dist_sq, expected[i].dist_sq, tol)
              << method_name << " " << w->name << " q=" << q << " i=" << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsAllFamilies, ExactnessTest,
    ::testing::Combine(
        ::testing::Values("ADS+", "DSTree", "iSAX2+", "SFA", "VA+file",
                          "UCR-Suite", "MASS", "Stepwise", "M-tree",
                          "R*-tree"),
        ::testing::Values("synth", "seismic", "astro", "sald", "deep")),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Exactness must hold across leaf-capacity extremes (parametrization is the
// paper's Figure 2; correctness may not depend on tuning).
class LeafCapacityTest
    : public ::testing::TestWithParam<std::tuple<std::string, size_t>> {};

TEST_P(LeafCapacityTest, ExactAtAnyLeafSize) {
  const auto& [method_name, leaf] = GetParam();
  const core::Dataset data = gen::MakeDataset("synth", 2000, 64, 99);
  const gen::Workload w = gen::RandWorkload(4, 64, 100);
  auto method = bench::CreateMethod(method_name, leaf);
  method->Build(data);
  for (size_t q = 0; q < w.queries.size(); ++q) {
    const auto expected = core::BruteForceKnn(data, w.queries[q], 1);
    core::KnnResult got = method->SearchKnn(w.queries[q], 1);
    ASSERT_EQ(got.neighbors.size(), 1u);
    EXPECT_NEAR(got.neighbors[0].dist_sq, expected[0].dist_sq,
                1e-6 * std::max(1.0, expected[0].dist_sq))
        << method_name << " leaf=" << leaf << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TreeMethods, LeafCapacityTest,
    ::testing::Combine(::testing::Values("ADS+", "DSTree", "iSAX2+", "SFA"),
                       ::testing::Values(4u, 16u, 256u, 4096u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, size_t>>& info) {
      std::string name = std::get<0>(info.param) + "_leaf" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(ExactnessEdgeCases, SingleSeriesDataset) {
  core::Dataset data("tiny", 64);
  const auto src = gen::RandomWalkDataset(1, 64, 5);
  data.Append(src[0]);
  const gen::Workload w = gen::RandWorkload(2, 64, 6);
  for (const std::string name :
       {"DSTree", "iSAX2+", "VA+file", "UCR-Suite", "Stepwise"}) {
    auto method = bench::CreateMethod(name);
    method->Build(data);
    const auto got = method->SearchKnn(w.queries[0], 1);
    ASSERT_EQ(got.neighbors.size(), 1u) << name;
    EXPECT_EQ(got.neighbors[0].id, 0u) << name;
  }
}

TEST(ExactnessEdgeCases, KEqualsDatasetSize) {
  const auto data = gen::MakeDataset("synth", 50, 64, 7);
  const gen::Workload w = gen::RandWorkload(1, 64, 8);
  auto method = bench::CreateMethod("DSTree", 8);
  method->Build(data);
  const auto got = method->SearchKnn(w.queries[0], 50);
  const auto expected = core::BruteForceKnn(data, w.queries[0], 50);
  ASSERT_EQ(got.neighbors.size(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(got.neighbors[i].dist_sq, expected[i].dist_sq, 1e-8);
  }
}

TEST(ExactnessEdgeCases, QueryIdenticalToDatasetSeries) {
  const auto data = gen::MakeDataset("synth", 500, 64, 9);
  for (const std::string& name : bench::AllMethodNames()) {
    auto method = bench::CreateMethod(name, 32);
    method->Build(data);
    const auto got = method->SearchKnn(data[123], 1);
    ASSERT_EQ(got.neighbors.size(), 1u) << name;
    EXPECT_NEAR(got.neighbors[0].dist_sq, 0.0, 1e-5) << name;
  }
}

}  // namespace
}  // namespace hydra
