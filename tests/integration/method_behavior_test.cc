// Method-specific behavioural invariants: the structural properties each
// paper method is defined by, observable through the public API.
#include <cmath>

#include <gtest/gtest.h>

#include "bench/registry.h"
#include "core/distance.h"
#include "gen/random_walk.h"
#include "gen/realistic.h"
#include "gen/workload.h"
#include "index/ads.h"
#include "index/dstree.h"
#include "index/isax2plus.h"
#include "index/mtree.h"
#include "index/rtree.h"
#include "index/sfatrie.h"
#include "index/vafile.h"
#include "scan/stepwise.h"
#include "transform/dft.h"
#include "transform/sfa.h"

namespace hydra {
namespace {

TEST(AdsBehavior, AdaptiveRefinementDeepensTheIndex) {
  // ADS+ splits leaves along query paths: after a query burst the index
  // must have at least as many leaves as right after building.
  const auto data = gen::RandomWalkDataset(4000, 128, 8101);
  index::AdsOptions o;
  o.leaf_capacity = 512;
  o.adaptive_leaf_capacity = 16;
  index::AdsPlus ads(o);
  ads.Build(data);
  const auto before = ads.footprint();
  const auto w = gen::RandWorkload(20, 128, 8102);
  for (size_t q = 0; q < w.queries.size(); ++q) {
    ads.SearchKnn(w.queries[q], 1);
  }
  const auto after = ads.footprint();
  EXPECT_GT(after.leaf_nodes, before.leaf_nodes)
      << "queries did not adaptively split any leaf";
  // Adaptation must not break exactness afterwards.
  const auto probe = gen::RandWorkload(3, 128, 8103);
  for (size_t q = 0; q < probe.queries.size(); ++q) {
    const auto expected = core::BruteForceKnn(data, probe.queries[q], 1);
    const auto got = ads.SearchKnn(probe.queries[q], 1);
    EXPECT_NEAR(got.neighbors[0].dist_sq, expected[0].dist_sq, 1e-6);
  }
}

TEST(AdsBehavior, LeafSizeBarelyAffectsQueryWork) {
  // The paper's Figure 2a: ADS+ query answering is insensitive to the
  // build-time leaf threshold (SIMS prunes with per-series summaries).
  const auto data = gen::RandomWalkDataset(6000, 128, 8104);
  const auto w = gen::RandWorkload(10, 128, 8105);
  std::vector<int64_t> examined;
  for (const size_t leaf : {128u, 2048u}) {
    index::AdsOptions o;
    o.leaf_capacity = leaf;
    index::AdsPlus ads(o);
    ads.Build(data);
    int64_t total = 0;
    for (size_t q = 0; q < w.queries.size(); ++q) {
      total += ads.SearchKnn(w.queries[q], 1).stats.raw_series_examined;
    }
    examined.push_back(total);
  }
  const double ratio = static_cast<double>(examined[0]) /
                       static_cast<double>(std::max<int64_t>(1, examined[1]));
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

TEST(DsTreeBehavior, DeeperTreesPruneBetter) {
  // Smaller leaves => finer envelopes => fewer raw series examined.
  const auto data = gen::RandomWalkDataset(6000, 128, 8106);
  const auto w = gen::RandWorkload(10, 128, 8107);
  int64_t small_leaf_examined = 0;
  int64_t large_leaf_examined = 0;
  for (const size_t leaf : {64u, 2048u}) {
    index::DsTreeOptions o;
    o.leaf_capacity = leaf;
    index::DsTree tree(o);
    tree.Build(data);
    int64_t total = 0;
    for (size_t q = 0; q < w.queries.size(); ++q) {
      total += tree.SearchKnn(w.queries[q], 1).stats.raw_series_examined;
    }
    (leaf == 64u ? small_leaf_examined : large_leaf_examined) = total;
  }
  EXPECT_LT(small_leaf_examined, large_leaf_examined);
}

TEST(DsTreeBehavior, VerticalSplittingNeverHurtsAndCanHelp) {
  // Vertical splits refine the segmentation only when the QoS margin says
  // they clearly beat the best horizontal split, so allowing them must not
  // degrade pruning; from a deliberately coarse 2-segment start on bursty
  // data they engage and improve it.
  const auto data = gen::SeismicLikeDataset(6000, 128, 8108);
  const auto w = gen::CtrlWorkload(data, 10, 8109, 0.1, 0.3);
  int64_t adaptive = 0;
  int64_t frozen = 0;
  for (const bool allow_vertical : {true, false}) {
    index::DsTreeOptions o;
    o.initial_segments = 2;
    o.max_segments = allow_vertical ? 32 : 2;
    o.leaf_capacity = 128;
    index::DsTree tree(o);
    tree.Build(data);
    int64_t total = 0;
    for (size_t q = 0; q < w.queries.size(); ++q) {
      total += tree.SearchKnn(w.queries[q], 1).stats.raw_series_examined;
    }
    (allow_vertical ? adaptive : frozen) = total;
  }
  EXPECT_LT(adaptive, frozen);
}

TEST(VaFileBehavior, BiggerBudgetExaminesFewerSeries) {
  const auto data = gen::RandomWalkDataset(6000, 128, 8110);
  const auto w = gen::RandWorkload(10, 128, 8111);
  std::vector<int64_t> examined;
  for (const int bits : {16, 128}) {
    index::VaFileOptions o;
    o.total_bits = bits;
    index::VaFile va(o);
    va.Build(data);
    int64_t total = 0;
    for (size_t q = 0; q < w.queries.size(); ++q) {
      total += va.SearchKnn(w.queries[q], 1).stats.raw_series_examined;
    }
    examined.push_back(total);
  }
  EXPECT_LT(examined[1], examined[0]);
}

TEST(VaFileBehavior, ApproximationFileShrinksWithBudget) {
  const auto data = gen::RandomWalkDataset(1000, 128, 8112);
  index::VaFile small{index::VaFileOptions{16, 32,
      transform::VaPlusQuantizer::Allocation::kNonUniform,
      transform::VaPlusQuantizer::CellPlacement::kKmeans}};
  index::VaFile large{index::VaFileOptions{16, 128,
      transform::VaPlusQuantizer::Allocation::kNonUniform,
      transform::VaPlusQuantizer::CellPlacement::kKmeans}};
  small.Build(data);
  large.Build(data);
  EXPECT_LE(small.footprint().disk_bytes, large.footprint().disk_bytes);
  // Either way, the approximation file is far smaller than the raw data.
  EXPECT_LT(large.footprint().disk_bytes,
            static_cast<int64_t>(data.bytes()) / 2);
}

TEST(StepwiseBehavior, EveryLevelTightensTheFilter) {
  // More filter levels (fewer refine levels) must not increase the number
  // of raw series refined.
  const auto data = gen::RandomWalkDataset(4000, 128, 8113);
  const auto w = gen::CtrlWorkload(data, 6, 8114, 0.05, 0.2);
  int64_t coarse = 0;
  int64_t fine = 0;
  for (const int refine_levels : {3, 0}) {
    scan::Stepwise method(refine_levels);
    method.Build(data);
    int64_t total = 0;
    for (size_t q = 0; q < w.queries.size(); ++q) {
      total += method.SearchKnn(w.queries[q], 1).stats.raw_series_examined;
    }
    (refine_levels == 3 ? coarse : fine) = total;
  }
  EXPECT_LE(fine, coarse);
}

TEST(MTreeBehavior, TriangleFilterSavesDistanceComputations) {
  // The number of full distance computations must be well below the
  // dataset size on clustered data (routing-ball pruning).
  const auto data = gen::SaldLikeDataset(2000, 128, 8115);
  index::MTree mtree;
  mtree.Build(data);
  const auto w = gen::CtrlWorkload(data, 6, 8116, 0.05, 0.2);
  for (size_t q = 0; q < w.queries.size(); ++q) {
    const auto r = mtree.SearchKnn(w.queries[q], 1);
    EXPECT_LT(r.stats.distance_computations,
              static_cast<int64_t>(data.size()))
        << "M-tree pruned nothing";
  }
}

TEST(RTreeBehavior, LeafVisitsBoundedByLeafCount) {
  const auto data = gen::RandomWalkDataset(3000, 128, 8117);
  index::RTreeOptions o;
  o.leaf_capacity = 50;
  index::RStarTree rtree(o);
  rtree.Build(data);
  const auto fp = rtree.footprint();
  const auto w = gen::RandWorkload(5, 128, 8118);
  for (size_t q = 0; q < w.queries.size(); ++q) {
    const auto r = rtree.SearchKnn(w.queries[q], 1);
    EXPECT_LE(r.stats.nodes_visited, fp.total_nodes);
  }
}

TEST(SfaBehavior, LargerAlphabetTightensWordBounds) {
  // The symbol-level SFA lower bound tightens with the alphabet size (the
  // trie's MBR bound is alphabet-independent, so this is measured on the
  // quantizer directly — the property the paper's alphabet tuning trades
  // against trie fanout).
  const auto data = gen::RandomWalkDataset(2000, 128, 8119);
  const size_t dims = 16;
  std::vector<std::vector<double>> dfts;
  for (size_t i = 0; i < data.size(); ++i) {
    dfts.push_back(transform::PackedRealDft(data[i], dims, true));
  }
  const auto coarse = transform::SfaQuantizer::Train(
      dfts, 2, transform::SfaQuantizer::Binning::kEquiDepth);
  const auto fine = transform::SfaQuantizer::Train(
      dfts, 64, transform::SfaQuantizer::Binning::kEquiDepth);
  double coarse_sum = 0.0;
  double fine_sum = 0.0;
  for (size_t q = 0; q < 50; ++q) {
    for (size_t i = 50; i < 150; ++i) {
      coarse_sum += coarse.LowerBoundSq(dfts[q], coarse.Quantize(dfts[i]));
      fine_sum += fine.LowerBoundSq(dfts[q], fine.Quantize(dfts[i]));
    }
  }
  EXPECT_GT(fine_sum, coarse_sum);
}

TEST(Isax2PlusBehavior, SegmentCountMustDivideLength) {
  // 16 segments over length 96 (Deep1B) divides evenly; the registry
  // methods must build on all paper lengths.
  for (const size_t length : {96u, 128u, 256u}) {
    const auto data = gen::RandomWalkDataset(500, length, 8121);
    auto method = bench::CreateMethod("iSAX2+", 64);
    method->Build(data);
    const auto w = gen::RandWorkload(2, length, 8122);
    const auto expected = core::BruteForceKnn(data, w.queries[0], 1);
    const auto got = method->SearchKnn(w.queries[0], 1);
    EXPECT_NEAR(got.neighbors[0].dist_sq, expected[0].dist_sq, 1e-6)
        << "len=" << length;
  }
}

TEST(StatsBehavior, CpuSecondsPopulatedEverywhere) {
  const auto data = gen::RandomWalkDataset(800, 64, 8123);
  const auto w = gen::RandWorkload(2, 64, 8124);
  for (const std::string& name : bench::AllMethodNames()) {
    auto method = bench::CreateMethod(name, 64);
    method->Build(data);
    const auto r = method->SearchKnn(w.queries[0], 1);
    EXPECT_GE(r.stats.cpu_seconds, 0.0) << name;
    EXPECT_GT(r.stats.distance_computations, 0) << name;
  }
}

}  // namespace
}  // namespace hydra
