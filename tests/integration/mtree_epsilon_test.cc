// epsilon-approximate k-NN on the M-tree (Definition 5; Table 1): every
// result must be within (1+epsilon) of the true k-th NN distance, the
// guarantee must hold across epsilon values, and larger epsilon must save
// distance computations.
#include <cmath>

#include <gtest/gtest.h>

#include "core/method.h"
#include "gen/random_walk.h"
#include "gen/workload.h"
#include "index/mtree.h"

namespace hydra {
namespace {

class MTreeEpsilonTest : public ::testing::TestWithParam<double> {};

TEST_P(MTreeEpsilonTest, GuaranteeHolds) {
  const double epsilon = GetParam();
  const auto data = gen::RandomWalkDataset(1500, 128, 9001);
  const auto w = gen::RandWorkload(8, 128, 9002);
  index::MTree mtree;
  mtree.Build(data);
  for (size_t q = 0; q < w.queries.size(); ++q) {
    for (const size_t k : {1u, 3u}) {
      const auto exact = core::BruteForceKnn(data, w.queries[q], k);
      auto approx =
          mtree.SearchKnnEpsApproximate(w.queries[q], k, epsilon);
      ASSERT_EQ(approx.neighbors.size(), k);
      const double true_kth = std::sqrt(exact.back().dist_sq);
      for (const auto& n : approx.neighbors) {
        EXPECT_LE(std::sqrt(n.dist_sq),
                  (1.0 + epsilon) * true_kth + 1e-9)
            << "epsilon=" << epsilon << " k=" << k << " q=" << q;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, MTreeEpsilonTest,
                         ::testing::Values(0.0, 0.1, 0.5, 2.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "eps" + std::to_string(static_cast<int>(
                                              info.param * 10));
                         });

TEST(MTreeEpsilon, ZeroEpsilonIsExact) {
  const auto data = gen::RandomWalkDataset(1000, 128, 9003);
  const auto w = gen::RandWorkload(5, 128, 9004);
  index::MTree mtree;
  mtree.Build(data);
  for (size_t q = 0; q < w.queries.size(); ++q) {
    const auto exact = core::BruteForceKnn(data, w.queries[q], 1);
    const auto got = mtree.SearchKnnEpsApproximate(w.queries[q], 1, 0.0);
    EXPECT_NEAR(got.neighbors[0].dist_sq, exact[0].dist_sq,
                1e-6 * std::max(1.0, exact[0].dist_sq));
  }
}

TEST(MTreeEpsilon, LargerEpsilonComputesFewerDistances) {
  const auto data = gen::RandomWalkDataset(2000, 128, 9005);
  const auto w = gen::RandWorkload(8, 128, 9006);
  index::MTree mtree;
  mtree.Build(data);
  int64_t exact_dists = 0;
  int64_t approx_dists = 0;
  for (size_t q = 0; q < w.queries.size(); ++q) {
    exact_dists += mtree.SearchKnnEpsApproximate(w.queries[q], 1, 0.0)
                       .stats.distance_computations;
    approx_dists += mtree.SearchKnnEpsApproximate(w.queries[q], 1, 2.0)
                        .stats.distance_computations;
  }
  EXPECT_LT(approx_dists, exact_dists);
}

}  // namespace
}  // namespace hydra
