// End-to-end kernel axis: the same built index queried under every
// supported kernel set must return the same neighbors as under the scalar
// reference — identical ids on the order-preserving pruning paths, and
// distances within the documented raw-kernel tolerance everywhere.
// Indexes are built once per method under scalar dispatch; only the query
// path switches sets, which is exactly how --kernels works in the CLI.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/registry.h"
#include "core/method.h"
#include "core/simd/kernels.h"
#include "gen/realistic.h"
#include "gen/workload.h"

namespace hydra {
namespace {

// Restores the process-wide kernel selection even when a test fails.
class KernelGuard {
 public:
  KernelGuard() : prior_(&core::simd::ActiveKernels()) {}
  ~KernelGuard() { (void)core::simd::UseKernels(prior_->name); }

 private:
  const core::simd::KernelSet* prior_;
};

class KernelE2eTest : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelE2eTest, EverySetReturnsTheScalarAnswer) {
  const std::string method_name = GetParam();
  const core::Dataset data = gen::MakeDataset("seismic", 1500, 128, 4242);
  const gen::Workload w = gen::RandWorkload(5, 128, 4343);
  constexpr size_t kK = 5;

  KernelGuard guard;
  ASSERT_TRUE(core::simd::UseKernels("scalar").ok());
  auto method = bench::CreateMethod(method_name, 64);
  method->Build(data);

  // Scalar baseline per query.
  std::vector<core::KnnResult> baseline;
  for (size_t q = 0; q < w.queries.size(); ++q) {
    baseline.push_back(method->SearchKnn(w.queries[q], kK));
    ASSERT_EQ(baseline.back().neighbors.size(), kK);
  }

  for (const core::simd::KernelSet* set : core::simd::SupportedKernelSets()) {
    ASSERT_TRUE(core::simd::UseKernels(set->name).ok());
    for (size_t q = 0; q < w.queries.size(); ++q) {
      const core::KnnResult got = method->SearchKnn(w.queries[q], kK);
      ASSERT_EQ(got.neighbors.size(), kK) << set->name << " q=" << q;
      for (size_t i = 0; i < kK; ++i) {
        EXPECT_EQ(got.neighbors[i].id, baseline[q].neighbors[i].id)
            << method_name << " under " << set->name << " q=" << q
            << " rank=" << i;
        const double want = baseline[q].neighbors[i].dist_sq;
        EXPECT_NEAR(got.neighbors[i].dist_sq, want,
                    1e-9 * std::max(1.0, want))
            << method_name << " under " << set->name << " q=" << q
            << " rank=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodSample, KernelE2eTest,
    ::testing::Values("iSAX2+", "DSTree", "VA+file"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace hydra
