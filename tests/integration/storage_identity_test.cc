// Backend bit-identity battery: every answer produced over the mmap +
// buffer-pool backend must equal the in-RAM answer bit for bit — same
// neighbor ids, same squared distances — for all seven index methods,
// across exact / epsilon / budgeted specs, range queries, sharded
// composition, and intra-query parallelism, with a pool budget far below
// the dataset so real eviction happens mid-query. Also pins the measured
// cold/warm contract: a first pass over a cold pool misses, a second
// pass over the warm pool hits at a higher rate.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/registry.h"
#include "core/method.h"
#include "core/query_spec.h"
#include "gen/random_walk.h"
#include "gen/workload.h"
#include "io/series_file.h"
#include "storage/backend.h"

namespace hydra {
namespace {

constexpr size_t kCount = 2000;
constexpr size_t kLength = 64;
constexpr size_t kLeaf = 64;

void ExpectSameAnswers(const std::vector<core::Neighbor>& ram,
                       const std::vector<core::Neighbor>& mmap,
                       const std::string& label) {
  ASSERT_EQ(ram.size(), mmap.size()) << label;
  for (size_t i = 0; i < ram.size(); ++i) {
    EXPECT_EQ(ram[i].id, mmap[i].id) << label << " rank " << i;
    EXPECT_EQ(ram[i].dist_sq, mmap[i].dist_sq) << label << " rank " << i;
  }
}

class StorageIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/hydra_storage_identity.bin";
    const core::Dataset generated =
        gen::RandomWalkDataset(kCount, kLength, 909);
    ASSERT_TRUE(io::WriteSeriesFile(path_, generated).ok());
    workload_ = gen::RandWorkload(4, kLength, 910);

    storage::StorageOptions ram;
    auto ram_opened = storage::StorageHandle::Open(path_, "ident", ram);
    ASSERT_TRUE(ram_opened.ok()) << ram_opened.status().message();
    ram_ = std::move(ram_opened).value();

    // ~512KB of data behind a 32KB pool: every query cycles the frames.
    storage::StorageOptions mmap;
    mmap.backend = storage::StorageBackend::kMmap;
    mmap.pool.budget_bytes = 32 << 10;
    mmap.pool.page_bytes = 8 << 10;
    auto mmap_opened = storage::StorageHandle::Open(path_, "ident", mmap);
    ASSERT_TRUE(mmap_opened.ok()) << mmap_opened.status().message();
    mmap_ = std::move(mmap_opened).value();
    ASSERT_TRUE(mmap_.pooled());
    // The premise of the battery: the pool cannot hold the dataset.
    ASSERT_LT(mmap.pool.budget_bytes,
              kCount * kLength * sizeof(core::Value) / 4);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  // Runs the same spec sequence over both backends on fresh instances of
  // `name` and asserts bit-identical answers. The sequence matters for
  // ADS+ (adaptive: each query refines the index), so both backends must
  // execute it in the same order.
  void CheckMethod(const std::string& name,
                   const std::vector<core::QuerySpec>& specs) {
    auto on_ram = bench::CreateMethod(name, kLeaf);
    auto on_mmap = bench::CreateMethod(name, kLeaf);
    on_ram->Build(ram_.dataset());
    on_mmap->Build(mmap_.dataset());
    core::SearchStats mmap_stats;
    for (const core::QuerySpec& spec : specs) {
      for (size_t qi = 0; qi < workload_.queries.size(); ++qi) {
      const core::SeriesView query = workload_.queries[qi];
        core::QueryResult a = on_ram->Execute(query, spec);
        core::QueryResult b = on_mmap->Execute(query, spec);
        ExpectSameAnswers(a.neighbors, b.neighbors, name);
        EXPECT_EQ(a.stats.pool_misses, 0) << name;  // RAM never pools
        EXPECT_EQ(a.stats.pool_hits, 0) << name;
        mmap_stats.Add(b.stats);
      }
    }
    // The mmap run went through the pool: misses are real preads.
    EXPECT_GT(mmap_stats.pool_misses, 0) << name;
    EXPECT_EQ(mmap_stats.pool_bytes_read > 0, mmap_stats.pool_misses > 0)
        << name;
  }

  std::string path_;
  gen::Workload workload_;
  storage::StorageHandle ram_;
  storage::StorageHandle mmap_;
};

TEST_F(StorageIdentityTest, AllMethodsExactEpsilonAndBudgeted) {
  core::QuerySpec budgeted = core::QuerySpec::Knn(5);
  budgeted.max_raw_series = 200;  // binds for every method
  const std::vector<core::QuerySpec> specs = {
      core::QuerySpec::Knn(5), core::QuerySpec::Epsilon(5, 0.1), budgeted};
  for (const std::string& name : bench::ShardableNames()) {
    SCOPED_TRACE(name);
    CheckMethod(name, specs);
  }
}

TEST_F(StorageIdentityTest, RangeQueriesMatch) {
  for (const std::string& name : bench::ShardableNames()) {
    SCOPED_TRACE(name);
    auto on_ram = bench::CreateMethod(name, kLeaf);
    auto on_mmap = bench::CreateMethod(name, kLeaf);
    on_ram->Build(ram_.dataset());
    on_mmap->Build(mmap_.dataset());
    for (size_t qi = 0; qi < workload_.queries.size(); ++qi) {
      const core::SeriesView query = workload_.queries[qi];
      // A radius at the 5th neighbor guarantees a non-trivial match set.
      const auto truth = core::BruteForceKnn(ram_.dataset(), query, 5);
      const double radius = std::sqrt(truth.back().dist_sq) + 1e-6;
      core::RangeResult a = on_ram->SearchRange(query, radius);
      core::RangeResult b = on_mmap->SearchRange(query, radius);
      ASSERT_GE(a.matches.size(), 5u) << name;
      ExpectSameAnswers(a.matches, b.matches, name);
    }
  }
}

TEST_F(StorageIdentityTest, ShardedCompositionMatches) {
  // Sharded slices of a file-backed dataset address the pool through
  // their slice base — zero copies, same answers.
  for (const std::string& name : {std::string("DSTree"), std::string("SFA")}) {
    SCOPED_TRACE(name);
    auto on_ram = bench::CreateShardedMethod(name, 3, 2, kLeaf);
    auto on_mmap = bench::CreateShardedMethod(name, 3, 2, kLeaf);
    on_ram->Build(ram_.dataset());
    on_mmap->Build(mmap_.dataset());
    for (size_t qi = 0; qi < workload_.queries.size(); ++qi) {
      const core::SeriesView query = workload_.queries[qi];
      core::KnnResult a = on_ram->SearchKnn(query, 5);
      core::KnnResult b = on_mmap->SearchKnn(query, 5);
      ExpectSameAnswers(a.neighbors, b.neighbors, name);
      EXPECT_GT(b.stats.pool_misses, 0) << name;
    }
  }
}

TEST_F(StorageIdentityTest, IntraQueryParallelMatches) {
  core::QuerySpec spec = core::QuerySpec::Knn(5);
  spec.query_threads = 2;
  for (const std::string& name : bench::IntraQueryCapableNames()) {
    SCOPED_TRACE(name);
    auto on_ram = bench::CreateMethod(name, kLeaf);
    auto on_mmap = bench::CreateMethod(name, kLeaf);
    on_ram->Build(ram_.dataset());
    on_mmap->Build(mmap_.dataset());
    for (size_t qi = 0; qi < workload_.queries.size(); ++qi) {
      const core::SeriesView query = workload_.queries[qi];
      core::QueryResult a = on_ram->Execute(query, spec);
      core::QueryResult b = on_mmap->Execute(query, spec);
      ExpectSameAnswers(a.neighbors, b.neighbors, name);
    }
  }
}

TEST_F(StorageIdentityTest, ColdPoolMissesWarmPoolHits) {
  auto method = bench::CreateMethod("DSTree", kLeaf);
  method->Build(mmap_.dataset());
  auto run = [&] {
    core::SearchStats total;
    for (size_t qi = 0; qi < workload_.queries.size(); ++qi) {
      const core::SeriesView query = workload_.queries[qi];
      total.Add(method->Execute(query, core::QuerySpec::Knn(5)).stats);
    }
    return total;
  };
  const core::SearchStats cold = run();
  const core::SearchStats warm = run();
  EXPECT_GT(cold.pool_misses, 0);
  const auto rate = [](const core::SearchStats& s) {
    const int64_t lookups = s.pool_hits + s.pool_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(s.pool_hits) /
                              static_cast<double>(lookups);
  };
  // The pool retains pages across queries: the identical second pass
  // finds more of its working set resident.
  EXPECT_GE(rate(warm), rate(cold));
  EXPECT_LE(warm.pool_misses, cold.pool_misses);
}

}  // namespace
}  // namespace hydra
