#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "bench/harness.h"
#include "bench/registry.h"
#include "gen/random_walk.h"
#include "gen/workload.h"

namespace hydra::bench {
namespace {

class HarnessFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = gen::RandomWalkDataset(1500, 64, 555);
    workload_ = gen::RandWorkload(10, 64, 556);
    auto method = CreateMethod("DSTree", 64);
    run_ = RunMethod(method.get(), data_, workload_);
  }

  core::Dataset data_;
  gen::Workload workload_;
  MethodRun run_;
};

TEST_F(HarnessFixture, RunCollectsPerQueryStats) {
  EXPECT_EQ(run_.method, "DSTree");
  EXPECT_EQ(run_.queries.size(), 10u);
  EXPECT_EQ(run_.nn_dists_sq.size(), 10u);
  for (const double d : run_.nn_dists_sq) EXPECT_GE(d, 0.0);
}

TEST_F(HarnessFixture, WorkloadSecondsPositiveAndAdditive) {
  const auto hdd = io::DiskModel::Hdd();
  const double total = ExactWorkloadSeconds(run_, hdd);
  EXPECT_GT(total, 0.0);
  double manual = 0.0;
  for (const auto& q : run_.queries) manual += hdd.QueryTotalSeconds(q);
  EXPECT_NEAR(total, manual, 1e-12);
}

TEST_F(HarnessFixture, ExtrapolationScalesTrimmedMean) {
  const auto hdd = io::DiskModel::Hdd();
  const double ten_k = Extrapolated10KSeconds(run_, hdd);
  const double hundred = ExactWorkloadSeconds(run_, hdd);
  // 10K extrapolation must be on the order of 1000x the 10-query total.
  EXPECT_GT(ten_k, hundred * 100);
  EXPECT_LT(ten_k, hundred * 100000);
}

TEST_F(HarnessFixture, PruningRatiosPerQuery) {
  const auto ratios = PruningRatios(run_, data_.size());
  ASSERT_EQ(ratios.size(), 10u);
  for (const double r : ratios) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
  EXPECT_NEAR(MeanPruningRatio(run_, data_.size()),
              std::accumulate(ratios.begin(), ratios.end(), 0.0) / 10.0,
              1e-12);
}

TEST_F(HarnessFixture, EasyHardSplitIsConsistent) {
  std::vector<MethodRun> runs;
  runs.push_back(run_);
  const auto easy = EasiestQueries(runs, data_.size(), 3);
  const auto hard = HardestQueries(runs, data_.size(), 3);
  ASSERT_EQ(easy.size(), 3u);
  ASSERT_EQ(hard.size(), 3u);
  const auto ratios = PruningRatios(run_, data_.size());
  // Every easy query must prune at least as much as every hard query.
  for (const size_t e : easy) {
    for (const size_t h : hard) {
      EXPECT_GE(ratios[e], ratios[h]);
    }
  }
}

TEST_F(HarnessFixture, MeanSecondsOverSubset) {
  const auto hdd = io::DiskModel::Hdd();
  const std::vector<size_t> all = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const double mean_all = MeanSecondsOver(run_, hdd, all);
  EXPECT_NEAR(mean_all * 10.0, ExactWorkloadSeconds(run_, hdd), 1e-9);
  EXPECT_EQ(MeanSecondsOver(run_, hdd, {}), 0.0);
}

// A MethodRun whose i-th query costs exactly seconds[i] of CPU and no I/O,
// so modeled time == the given seconds on any disk model.
MethodRun SyntheticRun(const std::vector<double>& seconds) {
  MethodRun run;
  run.method = "synthetic";
  for (const double s : seconds) {
    core::SearchStats stats;
    stats.cpu_seconds = s;
    run.queries.push_back(stats);
    run.nn_dists_sq.push_back(0.0);
  }
  return run;
}

TEST(Extrapolation, EmptyRunAborts) {
  const auto mem = io::DiskModel::Memory();
  EXPECT_DEATH(Extrapolated10KSeconds(SyntheticRun({}), mem),
               "zero queries");
}

TEST(Extrapolation, SingleQueryUsesPlainMean) {
  const auto mem = io::DiskModel::Memory();
  EXPECT_NEAR(Extrapolated10KSeconds(SyntheticRun({0.002}), mem),
              0.002 * 10000.0, 1e-9);
}

TEST(Extrapolation, Below20QueriesNothingIsTrimmed) {
  const auto mem = io::DiskModel::Memory();
  // 19 queries with one extreme outlier: a 5% trim rounds to zero below 20
  // queries, so the outlier must stay in the mean.
  std::vector<double> seconds(19, 0.001);
  seconds[7] = 1.0;
  const double mean = (18 * 0.001 + 1.0) / 19.0;
  EXPECT_NEAR(Extrapolated10KSeconds(SyntheticRun(seconds), mem),
              mean * 10000.0, 1e-6);
}

TEST(Extrapolation, At20QueriesBestAndWorstAreDropped) {
  const auto mem = io::DiskModel::Memory();
  // 20 queries: trim = 1 per side, so the outliers at both ends vanish and
  // the extrapolation sees only the 18 middle values.
  std::vector<double> seconds(20, 0.001);
  seconds[0] = 100.0;   // worst
  seconds[19] = 1e-9;   // best
  EXPECT_NEAR(Extrapolated10KSeconds(SyntheticRun(seconds), mem),
              0.001 * 10000.0, 1e-6);
}

TEST(Extrapolation, At100QueriesMatchesThePapersFivePlusFive) {
  const auto mem = io::DiskModel::Memory();
  // The paper's shape: 100 queries, drop the 5 best and 5 worst.
  std::vector<double> seconds(100, 0.001);
  for (size_t i = 0; i < 5; ++i) seconds[i] = 50.0;    // 5 worst
  for (size_t i = 95; i < 100; ++i) seconds[i] = 1e-9;  // 5 best
  EXPECT_NEAR(Extrapolated10KSeconds(SyntheticRun(seconds), mem),
              0.001 * 10000.0, 1e-6);
}

TEST(Registry, CreatesEveryMethod) {
  for (const std::string& name : AllMethodNames()) {
    auto method = CreateMethod(name);
    ASSERT_NE(method, nullptr) << name;
    EXPECT_EQ(method->name(), name);
  }
}

TEST(Registry, BestSixIsSubsetOfAll) {
  const auto all = AllMethodNames();
  for (const std::string& name : BestSixNames()) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end()) << name;
  }
}

}  // namespace
}  // namespace hydra::bench
