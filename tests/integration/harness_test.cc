#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "bench/harness.h"
#include "bench/registry.h"
#include "gen/random_walk.h"
#include "gen/workload.h"

namespace hydra::bench {
namespace {

class HarnessFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = gen::RandomWalkDataset(1500, 64, 555);
    workload_ = gen::RandWorkload(10, 64, 556);
    auto method = CreateMethod("DSTree", 64);
    run_ = RunMethod(method.get(), data_, workload_);
  }

  core::Dataset data_;
  gen::Workload workload_;
  MethodRun run_;
};

TEST_F(HarnessFixture, RunCollectsPerQueryStats) {
  EXPECT_EQ(run_.method, "DSTree");
  EXPECT_EQ(run_.queries.size(), 10u);
  EXPECT_EQ(run_.nn_dists_sq.size(), 10u);
  for (const double d : run_.nn_dists_sq) EXPECT_GE(d, 0.0);
}

TEST_F(HarnessFixture, WorkloadSecondsPositiveAndAdditive) {
  const auto hdd = io::DiskModel::Hdd();
  const double total = ExactWorkloadSeconds(run_, hdd);
  EXPECT_GT(total, 0.0);
  double manual = 0.0;
  for (const auto& q : run_.queries) manual += hdd.QueryTotalSeconds(q);
  EXPECT_NEAR(total, manual, 1e-12);
}

TEST_F(HarnessFixture, ExtrapolationScalesTrimmedMean) {
  const auto hdd = io::DiskModel::Hdd();
  const double ten_k = Extrapolated10KSeconds(run_, hdd);
  const double hundred = ExactWorkloadSeconds(run_, hdd);
  // 10K extrapolation must be on the order of 1000x the 10-query total.
  EXPECT_GT(ten_k, hundred * 100);
  EXPECT_LT(ten_k, hundred * 100000);
}

TEST_F(HarnessFixture, PruningRatiosPerQuery) {
  const auto ratios = PruningRatios(run_, data_.size());
  ASSERT_EQ(ratios.size(), 10u);
  for (const double r : ratios) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
  EXPECT_NEAR(MeanPruningRatio(run_, data_.size()),
              std::accumulate(ratios.begin(), ratios.end(), 0.0) / 10.0,
              1e-12);
}

TEST_F(HarnessFixture, EasyHardSplitIsConsistent) {
  std::vector<MethodRun> runs;
  runs.push_back(run_);
  const auto easy = EasiestQueries(runs, data_.size(), 3);
  const auto hard = HardestQueries(runs, data_.size(), 3);
  ASSERT_EQ(easy.size(), 3u);
  ASSERT_EQ(hard.size(), 3u);
  const auto ratios = PruningRatios(run_, data_.size());
  // Every easy query must prune at least as much as every hard query.
  for (const size_t e : easy) {
    for (const size_t h : hard) {
      EXPECT_GE(ratios[e], ratios[h]);
    }
  }
}

TEST_F(HarnessFixture, MeanSecondsOverSubset) {
  const auto hdd = io::DiskModel::Hdd();
  const std::vector<size_t> all = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const double mean_all = MeanSecondsOver(run_, hdd, all);
  EXPECT_NEAR(mean_all * 10.0, ExactWorkloadSeconds(run_, hdd), 1e-9);
  EXPECT_EQ(MeanSecondsOver(run_, hdd, {}), 0.0);
}

TEST(Registry, CreatesEveryMethod) {
  for (const std::string& name : AllMethodNames()) {
    auto method = CreateMethod(name);
    ASSERT_NE(method, nullptr) << name;
    EXPECT_EQ(method->name(), name);
  }
}

TEST(Registry, BestSixIsSubsetOfAll) {
  const auto all = AllMethodNames();
  for (const std::string& name : BestSixNames()) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end()) << name;
  }
}

}  // namespace
}  // namespace hydra::bench
