// The intra-query parallelism contract: for every method whose traversal
// runs on the shared engine (core::BestFirstTraverse / ParallelScan),
// exact k-NN and range answers are bit-identical to the serial traversal
// at every worker count; order-dependent disciplines (epsilon, delta,
// explicit budgets) are kept serial by Execute's gate, so their answers
// and their work ledgers never move with --query-threads; traits refuse
// honestly; and query_threads composes with the sharded fan-out (shards x
// workers pruning against one cross-shard bound).
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/registry.h"
#include "core/method.h"
#include "core/query_spec.h"
#include "gen/random_walk.h"
#include "gen/workload.h"

namespace hydra {
namespace {

constexpr size_t kCount = 400;
constexpr size_t kLength = 64;
constexpr size_t kLeaf = 64;
constexpr size_t kK = 5;
constexpr double kRadius = 8.0;

const size_t kQueryThreads[] = {1, 2, 8};

core::Dataset TestData() {
  return gen::RandomWalkDataset(kCount, kLength, 6801);
}
gen::Workload TestQueries() { return gen::RandWorkload(4, kLength, 6802); }

void ExpectSameAnswers(const std::vector<core::Neighbor>& got,
                       const std::vector<core::Neighbor>& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << context << " rank " << i;
    EXPECT_EQ(got[i].dist_sq, want[i].dist_sq) << context << " rank " << i;
  }
}

/// Work-ledger equality for the gated (serial-kept) disciplines: every
/// counter must match because the traversal is the *same* loop, not merely
/// an equivalent one. cpu_seconds is measured wall-clock and exempt.
void ExpectSameWork(const core::SearchStats& got,
                    const core::SearchStats& want,
                    const std::string& context) {
  EXPECT_EQ(got.distance_computations, want.distance_computations)
      << context;
  EXPECT_EQ(got.raw_series_examined, want.raw_series_examined) << context;
  EXPECT_EQ(got.lower_bound_computations, want.lower_bound_computations)
      << context;
  EXPECT_EQ(got.nodes_visited, want.nodes_visited) << context;
  EXPECT_EQ(got.sequential_reads, want.sequential_reads) << context;
  EXPECT_EQ(got.random_seeks, want.random_seeks) << context;
  EXPECT_EQ(got.bytes_read, want.bytes_read) << context;
  EXPECT_EQ(got.answer_mode_delivered, want.answer_mode_delivered)
      << context;
  EXPECT_EQ(got.budget_exhausted, want.budget_exhausted) << context;
}

/// The headline guarantee: exact k-NN through the cooperative traversal
/// matches the serial traversal bit for bit at every worker count. Fresh
/// index per cell — ADS+ adapts its tree during queries, and the contract
/// must hold from the same starting state the serial reference saw.
TEST(IntraQueryBitIdentity, ExactKnnMatchesSerialAtEveryWidth) {
  const core::Dataset data = TestData();
  const gen::Workload workload = TestQueries();
  for (const std::string& name : bench::IntraQueryCapableNames()) {
    auto reference = bench::CreateMethod(name, kLeaf);
    reference->Build(data);
    std::vector<std::vector<core::Neighbor>> knn_ref;
    for (size_t q = 0; q < workload.queries.size(); ++q) {
      knn_ref.push_back(
          reference->Execute(workload.queries[q], core::QuerySpec::Knn(kK))
              .neighbors);
    }
    for (const size_t query_threads : kQueryThreads) {
      auto method = bench::CreateMethod(name, kLeaf);
      method->Build(data);
      core::QuerySpec spec = core::QuerySpec::Knn(kK);
      spec.query_threads = query_threads;
      const std::string context =
          name + " query_threads=" + std::to_string(query_threads);
      for (size_t q = 0; q < workload.queries.size(); ++q) {
        const core::QueryResult r =
            method->Execute(workload.queries[q], spec);
        ExpectSameAnswers(r.neighbors, knn_ref[q],
                          context + " knn query " + std::to_string(q));
        EXPECT_EQ(r.delivered(), core::QualityMode::kExact) << context;
        EXPECT_FALSE(r.budget_fired()) << context;
      }
    }
  }
}

/// Range twin: the fixed r^2 bound makes the whole traversal visit-order
/// independent, so not only the matches but the pruning-work counters
/// (lower bounds charged, nodes visited, raw refinements) must match the
/// serial loop exactly at any width.
TEST(IntraQueryBitIdentity, RangeMatchesSerialAtEveryWidth) {
  const core::Dataset data = TestData();
  const gen::Workload workload = TestQueries();
  for (const std::string& name : bench::IntraQueryCapableNames()) {
    auto reference = bench::CreateMethod(name, kLeaf);
    reference->Build(data);
    std::vector<core::QueryResult> range_ref;
    for (size_t q = 0; q < workload.queries.size(); ++q) {
      range_ref.push_back(reference->Execute(workload.queries[q],
                                             core::QuerySpec::Range(kRadius)));
    }
    for (const size_t query_threads : kQueryThreads) {
      auto method = bench::CreateMethod(name, kLeaf);
      method->Build(data);
      core::QuerySpec spec = core::QuerySpec::Range(kRadius);
      spec.query_threads = query_threads;
      const std::string context =
          name + " query_threads=" + std::to_string(query_threads);
      for (size_t q = 0; q < workload.queries.size(); ++q) {
        const core::QueryResult r =
            method->Execute(workload.queries[q], spec);
        ExpectSameAnswers(r.neighbors, range_ref[q].neighbors,
                          context + " range query " + std::to_string(q));
        EXPECT_EQ(r.stats.lower_bound_computations,
                  range_ref[q].stats.lower_bound_computations)
            << context << " query " << q;
        EXPECT_EQ(r.stats.nodes_visited, range_ref[q].stats.nodes_visited)
            << context << " query " << q;
        EXPECT_EQ(r.stats.distance_computations,
                  range_ref[q].stats.distance_computations)
            << context << " query " << q;
        EXPECT_EQ(r.stats.raw_series_examined,
                  range_ref[q].stats.raw_series_examined)
            << context << " query " << q;
      }
    }
  }
}

/// Order-dependent disciplines stay serial no matter what query_threads
/// asks for: epsilon answers (the shrinking bound is visit-order
/// dependent) and budget-truncated answers (which candidates survive
/// depends on visit order) must be bit-identical to the query_threads=1
/// run — including the full work ledger, because the gate means the same
/// serial loop ran, not a lucky-equivalent parallel one.
TEST(IntraQueryGating, EpsilonAndBudgetedRunsAreUnmovedByQueryThreads) {
  const core::Dataset data = TestData();
  const gen::Workload workload = TestQueries();
  for (const std::string& name : bench::IntraQueryCapableNames()) {
    const core::MethodTraits traits =
        bench::CreateMethod(name, kLeaf)->traits();

    if (traits.supports_epsilon) {
      auto serial = bench::CreateMethod(name, kLeaf);
      serial->Build(data);
      auto wide = bench::CreateMethod(name, kLeaf);
      wide->Build(data);
      core::QuerySpec spec = core::QuerySpec::Epsilon(kK, 0.5);
      core::QuerySpec wide_spec = spec;
      wide_spec.query_threads = 8;
      for (size_t q = 0; q < workload.queries.size(); ++q) {
        const core::QueryResult want =
            serial->Execute(workload.queries[q], spec);
        const core::QueryResult got =
            wide->Execute(workload.queries[q], wide_spec);
        const std::string context =
            name + " epsilon query " + std::to_string(q);
        ExpectSameAnswers(got.neighbors, want.neighbors, context);
        ExpectSameWork(got.stats, want.stats, context);
        EXPECT_EQ(got.delivered(), core::QualityMode::kEpsilon) << context;
      }
    }

    auto serial = bench::CreateMethod(name, kLeaf);
    serial->Build(data);
    auto wide = bench::CreateMethod(name, kLeaf);
    wide->Build(data);
    core::QuerySpec spec = core::QuerySpec::Knn(kK);
    spec.max_raw_series = 50;
    core::QuerySpec wide_spec = spec;
    wide_spec.query_threads = 8;
    for (size_t q = 0; q < workload.queries.size(); ++q) {
      const core::QueryResult want =
          serial->Execute(workload.queries[q], spec);
      const core::QueryResult got =
          wide->Execute(workload.queries[q], wide_spec);
      const std::string context =
          name + " budgeted query " + std::to_string(q);
      ExpectSameAnswers(got.neighbors, want.neighbors, context);
      ExpectSameWork(got.stats, want.stats, context);
      EXPECT_LE(got.stats.raw_series_examined, 50) << context;
    }
  }
}

/// Traits are honest on both sides: the five restructured tree methods
/// advertise the capability, everything else explains its refusal, and
/// the sharded container mirrors its component (so `--shards` composed
/// with `--query-threads` is accepted or refused for the right reason).
TEST(IntraQueryTraits, FiveTreeMethodsAdvertiseOthersRefuseWithReasons) {
  const auto capable = bench::IntraQueryCapableNames();
  EXPECT_EQ(capable.size(), 5u);
  for (const std::string& name : bench::AllMethodNames()) {
    const core::MethodTraits t = bench::CreateMethod(name)->traits();
    const bool expected =
        std::find(capable.begin(), capable.end(), name) != capable.end();
    EXPECT_EQ(t.intra_query_parallel, expected) << name;
    if (!t.intra_query_parallel) {
      EXPECT_FALSE(t.intra_query_reason.empty()) << name;
    }
  }
  for (const std::string& name : bench::ShardableNames()) {
    const core::MethodTraits inner = bench::CreateMethod(name)->traits();
    const core::MethodTraits outer =
        bench::CreateShardedMethod(name, 2, 1)->traits();
    EXPECT_EQ(outer.intra_query_parallel, inner.intra_query_parallel)
        << name;
    EXPECT_EQ(outer.intra_query_reason, inner.intra_query_reason) << name;
  }
}

/// Composition: shards x workers. Every shard's workers attach to the one
/// cross-shard bound, and the merged answer still matches the unsharded
/// serial traversal bit for bit.
TEST(IntraQueryComposition, ShardsTimesWorkersMatchesUnshardedSerial) {
  const core::Dataset data = TestData();
  const gen::Workload workload = TestQueries();
  for (const std::string& name : bench::IntraQueryCapableNames()) {
    auto reference = bench::CreateMethod(name, kLeaf);
    reference->Build(data);
    std::vector<std::vector<core::Neighbor>> knn_ref;
    std::vector<std::vector<core::Neighbor>> range_ref;
    for (size_t q = 0; q < workload.queries.size(); ++q) {
      knn_ref.push_back(
          reference->Execute(workload.queries[q], core::QuerySpec::Knn(kK))
              .neighbors);
      range_ref.push_back(
          reference
              ->Execute(workload.queries[q], core::QuerySpec::Range(kRadius))
              .neighbors);
    }
    for (const size_t query_threads : kQueryThreads) {
      auto sharded = bench::CreateShardedMethod(name, 3, 2, kLeaf);
      sharded->Build(data);
      const std::string context = name + " shards=3 query_threads=" +
                                  std::to_string(query_threads);
      core::QuerySpec knn_spec = core::QuerySpec::Knn(kK);
      knn_spec.query_threads = query_threads;
      core::QuerySpec range_spec = core::QuerySpec::Range(kRadius);
      range_spec.query_threads = query_threads;
      for (size_t q = 0; q < workload.queries.size(); ++q) {
        ExpectSameAnswers(
            sharded->Execute(workload.queries[q], knn_spec).neighbors,
            knn_ref[q], context + " knn query " + std::to_string(q));
        ExpectSameAnswers(
            sharded->Execute(workload.queries[q], range_spec).neighbors,
            range_ref[q], context + " range query " + std::to_string(q));
      }
    }
  }
}

}  // namespace
}  // namespace hydra
