// ng-approximate search (Definition 7): one-path traversal, at most one
// leaf. Tests the contract (valid candidates, never better than exact, far
// cheaper) and its effectiveness on easy queries (the bsf it seeds for
// exact search is what makes SIMS and the tree searches fast).
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "bench/registry.h"
#include "core/distance.h"
#include "core/method.h"
#include "gen/random_walk.h"
#include "gen/workload.h"

namespace hydra {
namespace {

class ApproximateTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ApproximateTest, ReturnsValidCandidates) {
  const std::string method_name = GetParam();
  const auto data = gen::RandomWalkDataset(3000, 128, 6001);
  const auto w = gen::RandWorkload(8, 128, 6002);
  auto method = bench::CreateMethod(method_name, 64);
  method->Build(data);
  for (size_t q = 0; q < w.queries.size(); ++q) {
    const auto exact = core::BruteForceKnn(data, w.queries[q], 1);
    core::KnnResult approx = method->SearchKnnApproximate(w.queries[q], 1);
    ASSERT_FALSE(approx.neighbors.empty()) << method_name;
    // The reported distance must be a real distance of a real series.
    const auto id = approx.neighbors[0].id;
    ASSERT_LT(id, data.size());
    EXPECT_NEAR(approx.neighbors[0].dist_sq,
                core::SquaredEuclidean(w.queries[q], data[id]),
                1e-5 * std::max(1.0, approx.neighbors[0].dist_sq));
    // Approximate can never beat exact.
    EXPECT_GE(approx.neighbors[0].dist_sq, exact[0].dist_sq - 1e-9);
  }
}

TEST_P(ApproximateTest, VisitsAtMostOneLeaf) {
  const std::string method_name = GetParam();
  const auto data = gen::RandomWalkDataset(3000, 128, 6003);
  const auto w = gen::RandWorkload(5, 128, 6004);
  auto method = bench::CreateMethod(method_name, 64);
  method->Build(data);
  for (size_t q = 0; q < w.queries.size(); ++q) {
    core::KnnResult approx = method->SearchKnnApproximate(w.queries[q], 1);
    EXPECT_LE(approx.stats.nodes_visited, 1) << method_name;
    // At most one leaf's worth of raw series examined.
    EXPECT_LE(approx.stats.raw_series_examined, 64 + 1) << method_name;
  }
}

TEST_P(ApproximateTest, MuchCheaperThanExact) {
  const std::string method_name = GetParam();
  const auto data = gen::RandomWalkDataset(5000, 128, 6005);
  const auto w = gen::RandWorkload(5, 128, 6006);
  auto method = bench::CreateMethod(method_name, 64);
  method->Build(data);
  int64_t approx_examined = 0;
  int64_t exact_examined = 0;
  for (size_t q = 0; q < w.queries.size(); ++q) {
    approx_examined +=
        method->SearchKnnApproximate(w.queries[q], 1).stats
            .raw_series_examined;
    exact_examined +=
        method->SearchKnn(w.queries[q], 1).stats.raw_series_examined;
  }
  EXPECT_LT(approx_examined * 2, exact_examined) << method_name;
}

TEST_P(ApproximateTest, GoodOnEasyQueries) {
  // For a near-duplicate query the one-path descent should land on (or
  // very near) the true NN: the heuristic the literature calls
  // "approximate search" works because similar series share summaries.
  const std::string method_name = GetParam();
  const auto data = gen::RandomWalkDataset(3000, 128, 6007);
  const auto easy = gen::CtrlWorkload(data, 10, 6008, 0.01, 0.05);
  auto method = bench::CreateMethod(method_name, 64);
  method->Build(data);
  size_t close_hits = 0;
  for (size_t q = 0; q < easy.queries.size(); ++q) {
    const auto exact = core::BruteForceKnn(data, easy.queries[q], 1);
    const auto approx = method->SearchKnnApproximate(easy.queries[q], 1);
    const double ratio =
        std::sqrt(approx.neighbors[0].dist_sq) /
        std::max(1e-9, std::sqrt(exact[0].dist_sq));
    if (ratio < 2.0) ++close_hits;
  }
  // Most easy queries should find a near-optimal answer in one leaf.
  EXPECT_GE(close_hits, 6u) << method_name;
}

INSTANTIATE_TEST_SUITE_P(NgApproximateMethods, ApproximateTest,
                         ::testing::Values("ADS+", "DSTree", "iSAX2+",
                                           "SFA"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(ApproximateDefault, ScansFallBackToExact) {
  const auto data = gen::RandomWalkDataset(500, 64, 6009);
  const auto w = gen::RandWorkload(2, 64, 6010);
  auto scan = bench::CreateMethod("UCR-Suite");
  scan->Build(data);
  const auto exact = scan->SearchKnn(w.queries[0], 3);
  const auto approx = scan->SearchKnnApproximate(w.queries[0], 3);
  ASSERT_EQ(exact.neighbors.size(), approx.neighbors.size());
  for (size_t i = 0; i < exact.neighbors.size(); ++i) {
    EXPECT_EQ(exact.neighbors[i].id, approx.neighbors[i].id);
  }
}

}  // namespace
}  // namespace hydra
