// Asserts the static taxonomy of Table 1: the ten methods, their names, and
// the structural traits our implementation encodes (indexes expose
// footprints; scans do not; summarized indexes expose a TLB).
#include <cmath>

#include <gtest/gtest.h>

#include "bench/registry.h"
#include "gen/random_walk.h"

namespace hydra {
namespace {

TEST(MethodTraits, TenMethodsExist) {
  EXPECT_EQ(bench::AllMethodNames().size(), 10u);
}

TEST(MethodTraits, OnlyAdaptiveAdsDeclinesConcurrentQueries) {
  // docs/METHODS.md's thread-safety column, kept honest: nine methods
  // advertise concurrent queries; ADS+ must not (its SIMS search splits
  // leaves during queries) and must say why.
  for (const std::string& name : bench::AllMethodNames()) {
    auto m = bench::CreateMethod(name);
    const core::MethodTraits t = m->traits();
    if (name == "ADS+") {
      EXPECT_FALSE(t.concurrent_queries);
      EXPECT_FALSE(t.serial_reason.empty());
    } else {
      EXPECT_TRUE(t.concurrent_queries) << name;
    }
  }
}

TEST(MethodTraits, IndexesExposeFootprints) {
  const auto data = gen::RandomWalkDataset(800, 64, 61);
  for (const std::string name :
       {"ADS+", "DSTree", "iSAX2+", "SFA", "M-tree", "R*-tree"}) {
    auto m = bench::CreateMethod(name, 64);
    m->Build(data);
    EXPECT_GT(m->footprint().total_nodes, 0) << name;
  }
}

TEST(MethodTraits, VaFileHasNoTreeNodes) {
  const auto data = gen::RandomWalkDataset(800, 64, 62);
  auto m = bench::CreateMethod("VA+file");
  m->Build(data);
  const auto fp = m->footprint();
  EXPECT_EQ(fp.total_nodes, 0);
  EXPECT_GT(fp.disk_bytes, 0);  // the approximation file
}

TEST(MethodTraits, ScansHaveEmptyFootprint) {
  const auto data = gen::RandomWalkDataset(200, 64, 63);
  for (const std::string name : {"UCR-Suite", "MASS"}) {
    auto m = bench::CreateMethod(name);
    m->Build(data);
    EXPECT_EQ(m->footprint().total_nodes, 0) << name;
  }
}

TEST(MethodTraits, SummarizedMethodsExposeTlb) {
  const auto data = gen::RandomWalkDataset(500, 64, 64);
  const auto probe = gen::RandomWalkDataset(1, 64, 65);
  for (const std::string& name : bench::PruningMethodNames()) {
    auto m = bench::CreateMethod(name, 32);
    m->Build(data);
    EXPECT_FALSE(std::isnan(m->MeanTlb(probe[0]))) << name;
  }
  // Raw scans have no summarized leaves.
  auto ucr = bench::CreateMethod("UCR-Suite");
  ucr->Build(data);
  EXPECT_TRUE(std::isnan(ucr->MeanTlb(probe[0])));
}

TEST(MethodTraits, AdsDiskFootprintIsSummaryOnly) {
  // Table 1 / Section 3.2: ADS+ stores iSAX summaries, not raw leaves.
  const auto data = gen::RandomWalkDataset(1000, 128, 66);
  auto ads = bench::CreateMethod("ADS+", 64);
  auto isax = bench::CreateMethod("iSAX2+", 64);
  ads->Build(data);
  isax->Build(data);
  EXPECT_LT(ads->footprint().disk_bytes, isax->footprint().disk_bytes);
}

}  // namespace
}  // namespace hydra
