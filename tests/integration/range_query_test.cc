// Exactness of r-range queries (Definition 2 of the paper) for all ten
// methods: results must match the brute-force range scan — correct AND
// complete — across radii from empty to all-inclusive.
#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "bench/registry.h"
#include "core/distance.h"
#include "core/method.h"
#include "gen/random_walk.h"
#include "gen/realistic.h"
#include "gen/workload.h"

namespace hydra {
namespace {

std::vector<core::Neighbor> BruteForceRange(const core::Dataset& data,
                                            core::SeriesView query,
                                            double radius) {
  std::vector<core::Neighbor> matches;
  const double radius_sq = radius * radius;
  for (size_t i = 0; i < data.size(); ++i) {
    const double d = core::SquaredEuclidean(query, data[i]);
    if (d <= radius_sq) matches.push_back({static_cast<core::SeriesId>(i), d});
  }
  std::sort(matches.begin(), matches.end());
  return matches;
}

using Param = std::tuple<std::string, std::string>;

class RangeQueryTest : public ::testing::TestWithParam<Param> {};

TEST_P(RangeQueryTest, MatchesBruteForceRange) {
  const auto& [method_name, family] = GetParam();
  const size_t count = method_name == "M-tree" ? 800 : 2000;
  const size_t length = family == "deep" ? 96 : 128;
  const core::Dataset data = gen::MakeDataset(family, count, length, 4321);
  const gen::Workload w = gen::CtrlWorkload(data, 4, 4322, 0.1, 0.8);

  auto method = bench::CreateMethod(method_name, 64);
  method->Build(data);

  for (size_t q = 0; q < w.queries.size(); ++q) {
    // Radii chosen relative to the true NN distance so the result set goes
    // from a handful of series to a large fraction of the collection.
    const auto nn = core::BruteForceKnn(data, w.queries[q], 1);
    const double base = std::sqrt(nn.front().dist_sq);
    for (const double factor : {0.9, 1.1, 1.5, 2.5}) {
      const double radius = base * factor;
      const auto expected = BruteForceRange(data, w.queries[q], radius);
      core::RangeResult got = method->SearchRange(w.queries[q], radius);
      ASSERT_EQ(got.matches.size(), expected.size())
          << method_name << " " << family << " q=" << q << " r=" << radius;
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got.matches[i].id, expected[i].id)
            << method_name << " q=" << q << " i=" << i;
        EXPECT_NEAR(got.matches[i].dist_sq, expected[i].dist_sq,
                    1e-5 * std::max(1.0, expected[i].dist_sq));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, RangeQueryTest,
    ::testing::Combine(
        ::testing::Values("ADS+", "DSTree", "iSAX2+", "SFA", "VA+file",
                          "UCR-Suite", "MASS", "Stepwise", "M-tree",
                          "R*-tree"),
        ::testing::Values("synth", "astro")),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(RangeQueryEdgeCases, ZeroRadiusFindsExactDuplicates) {
  const auto base = gen::RandomWalkDataset(300, 64, 5151);
  core::Dataset data("dups", 64);
  for (size_t i = 0; i < base.size(); ++i) data.Append(base[i]);
  data.Append(base[42]);  // exact duplicate
  for (const std::string name : {"DSTree", "VA+file", "UCR-Suite"}) {
    auto method = bench::CreateMethod(name, 32);
    method->Build(data);
    const auto got = method->SearchRange(base[42], 1e-4);
    ASSERT_GE(got.matches.size(), 2u) << name;  // original + duplicate
    EXPECT_NEAR(got.matches[0].dist_sq, 0.0, 1e-8);
    EXPECT_NEAR(got.matches[1].dist_sq, 0.0, 1e-8);
  }
}

TEST(RangeQueryEdgeCases, HugeRadiusReturnsEverything) {
  const auto data = gen::RandomWalkDataset(500, 64, 5252);
  const gen::Workload w = gen::RandWorkload(1, 64, 5253);
  for (const std::string& name : bench::AllMethodNames()) {
    auto method = bench::CreateMethod(name, 32);
    method->Build(data);
    const auto got = method->SearchRange(w.queries[0], 1e6);
    EXPECT_EQ(got.matches.size(), data.size()) << name;
  }
}

TEST(RangeQueryEdgeCases, EmptyResultForTinyRadius) {
  const auto data = gen::RandomWalkDataset(500, 64, 5353);
  const gen::Workload w = gen::RandWorkload(1, 64, 5354);
  for (const std::string& name : bench::AllMethodNames()) {
    auto method = bench::CreateMethod(name, 32);
    method->Build(data);
    const auto got = method->SearchRange(w.queries[0], 1e-6);
    EXPECT_TRUE(got.matches.empty()) << name;
  }
}

TEST(RangeQueryEdgeCases, NegativeRadiusViolatesPrecondition) {
  // Every method squares the radius internally, which would silently turn
  // r = -5 into r^2 = 25 (and M-tree would prune with the raw negative
  // value while collecting with the squared one). The contract is checked
  // at every SearchRange entry instead.
  const auto data = gen::RandomWalkDataset(100, 64, 5454);
  const gen::Workload w = gen::RandWorkload(1, 64, 5455);
  for (const std::string& name : bench::AllMethodNames()) {
    auto method = bench::CreateMethod(name, 32);
    method->Build(data);
    EXPECT_DEATH(method->SearchRange(w.queries[0], -5.0),
                 "range radius must be non-negative")
        << name;
  }
}

TEST(RangeQueryStats, IndexesPruneRangeQueries) {
  const auto data = gen::RandomWalkDataset(4000, 128, 5454);
  const auto w = gen::CtrlWorkload(data, 4, 5455, 0.05, 0.1);
  for (const std::string& name : bench::PruningMethodNames()) {
    auto method = bench::CreateMethod(name, 64);
    method->Build(data);
    for (size_t q = 0; q < w.queries.size(); ++q) {
      const auto nn = core::BruteForceKnn(data, w.queries[q], 1);
      const auto got =
          method->SearchRange(w.queries[q], std::sqrt(nn[0].dist_sq) * 1.2);
      EXPECT_LT(got.stats.raw_series_examined,
                static_cast<int64_t>(data.size()))
          << name << " examined everything on a tight range query";
    }
  }
}

}  // namespace
}  // namespace hydra
