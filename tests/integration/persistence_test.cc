// The Build / Save / Open lifecycle contract for every persistent method:
// an opened index answers every supported QuerySpec mode bit-identically
// (ids, distances, and work counters) to the freshly built one, its
// footprint reconciles with the built index and the serialized bytes with
// the file on disk, serialization is deterministic, corrupt or mismatched
// index files fail with a clean error status (never a CHECK abort), and
// lifecycle misuse (Save before Build, double Open) dies loudly.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/harness.h"
#include "bench/registry.h"
#include "core/method.h"
#include "core/query_spec.h"
#include "gen/random_walk.h"
#include "gen/workload.h"
#include "io/index_codec.h"

namespace hydra {
namespace {

constexpr size_t kCount = 600;
constexpr size_t kLength = 64;
constexpr size_t kLeaf = 64;

core::Dataset TestData() {
  return gen::RandomWalkDataset(kCount, kLength, 9301);
}
gen::Workload TestQueries() { return gen::RandWorkload(5, kLength, 9302); }

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Every QuerySpec shape the method's traits advertise, including a
/// budgeted spec and an exact range query.
std::vector<core::QuerySpec> SpecBattery(const core::MethodTraits& traits) {
  std::vector<core::QuerySpec> specs;
  specs.push_back(core::QuerySpec::Knn(5));
  if (traits.supports_ng) specs.push_back(core::QuerySpec::NgApprox(3));
  if (traits.supports_epsilon) {
    specs.push_back(core::QuerySpec::Epsilon(5, 0.5));
  }
  if (traits.supports_delta_epsilon) {
    specs.push_back(core::QuerySpec::DeltaEpsilon(5, 0.5, 0.5));
  }
  core::QuerySpec budgeted = core::QuerySpec::Knn(5);
  budgeted.max_raw_series = 50;
  specs.push_back(budgeted);
  specs.push_back(core::QuerySpec::Range(8.0));
  return specs;
}

/// Answers the whole battery for the whole workload, in a fixed order
/// (ADS+ adapts during queries, so the execution order is part of the
/// contract being compared).
std::vector<core::QueryResult> RunBattery(core::SearchMethod* method,
                                          const gen::Workload& workload) {
  std::vector<core::QueryResult> results;
  for (const core::QuerySpec& spec : SpecBattery(method->traits())) {
    for (size_t q = 0; q < workload.queries.size(); ++q) {
      results.push_back(method->Execute(workload.queries[q], spec));
    }
  }
  return results;
}

void ExpectBitIdentical(const core::QueryResult& a, const core::QueryResult& b,
                        const std::string& context) {
  ASSERT_EQ(a.neighbors.size(), b.neighbors.size()) << context;
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id) << context;
    EXPECT_EQ(a.neighbors[i].dist_sq, b.neighbors[i].dist_sq) << context;
  }
  // Everything stats-relevant except measured wall-clock time.
  EXPECT_EQ(a.stats.distance_computations, b.stats.distance_computations)
      << context;
  EXPECT_EQ(a.stats.raw_series_examined, b.stats.raw_series_examined)
      << context;
  EXPECT_EQ(a.stats.lower_bound_computations,
            b.stats.lower_bound_computations)
      << context;
  EXPECT_EQ(a.stats.nodes_visited, b.stats.nodes_visited) << context;
  EXPECT_EQ(a.stats.sequential_reads, b.stats.sequential_reads) << context;
  EXPECT_EQ(a.stats.random_seeks, b.stats.random_seeks) << context;
  EXPECT_EQ(a.stats.bytes_read, b.stats.bytes_read) << context;
  EXPECT_EQ(a.stats.answer_mode_delivered, b.stats.answer_mode_delivered)
      << context;
  EXPECT_EQ(a.stats.budget_exhausted, b.stats.budget_exhausted) << context;
}

void ExpectSameFootprint(const core::Footprint& a, const core::Footprint& b,
                         const std::string& context) {
  EXPECT_EQ(a.total_nodes, b.total_nodes) << context;
  EXPECT_EQ(a.leaf_nodes, b.leaf_nodes) << context;
  EXPECT_EQ(a.memory_bytes, b.memory_bytes) << context;
  EXPECT_EQ(a.disk_bytes, b.disk_bytes) << context;
  EXPECT_EQ(a.leaf_fill_fractions, b.leaf_fill_fractions) << context;
  EXPECT_EQ(a.leaf_depths, b.leaf_depths) << context;
}

std::string FileContents(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(PersistenceRegistry, SevenIndexMethodsPersistScansDoNot) {
  const auto persistent = bench::PersistentCapableNames();
  EXPECT_EQ(persistent.size(), 7u);
  for (const std::string& name : bench::AllMethodNames()) {
    const core::MethodTraits t = bench::CreateMethod(name)->traits();
    const bool scan =
        name == "UCR-Suite" || name == "MASS" || name == "Stepwise";
    EXPECT_EQ(t.supports_persistence, !scan) << name;
    if (scan) {
      EXPECT_FALSE(t.persistence_reason.empty()) << name;
    }
  }
}

TEST(PersistenceRoundTrip, OpenedIndexAnswersBitIdentically) {
  const core::Dataset data = TestData();
  const gen::Workload workload = TestQueries();
  int ordinal = 0;
  for (const std::string& name : bench::PersistentCapableNames()) {
    const std::string dir =
        FreshDir("roundtrip_" + std::to_string(ordinal++));
    auto built = bench::CreateMethod(name, kLeaf);
    built->Build(data);
    const auto saved = built->Save(dir);
    ASSERT_TRUE(saved.ok()) << name << ": " << saved.status().message();
    // The reported byte count reconciles with the real file.
    EXPECT_EQ(static_cast<uint64_t>(saved.value()),
              std::filesystem::file_size(io::IndexFilePath(dir)))
        << name;
    const core::Footprint built_fp = built->footprint();

    // Open into a *differently configured* instance: the persisted
    // options must win, or a replica with other defaults would answer
    // from a different tree shape.
    auto opened = bench::CreateMethod(name);
    const auto open_stats = opened->Open(dir, data);
    ASSERT_TRUE(open_stats.ok()) << name << ": "
                                 << open_stats.status().message();
    EXPECT_TRUE(opened->built()) << name;
    EXPECT_EQ(open_stats.value().cpu_seconds, 0.0) << name;
    EXPECT_EQ(open_stats.value().bytes_read, saved.value()) << name;
    ExpectSameFootprint(opened->footprint(), built_fp, name);

    const auto built_answers = RunBattery(built.get(), workload);
    const auto opened_answers = RunBattery(opened.get(), workload);
    ASSERT_EQ(built_answers.size(), opened_answers.size()) << name;
    for (size_t i = 0; i < built_answers.size(); ++i) {
      ExpectBitIdentical(built_answers[i], opened_answers[i],
                         name + " battery entry " + std::to_string(i));
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(PersistenceRoundTrip, SerializationIsDeterministic) {
  // Saving the same built index twice — and re-saving an opened copy —
  // must produce byte-identical files: replicas built from one master
  // index are interchangeable.
  const core::Dataset data = TestData();
  for (const std::string& name : bench::PersistentCapableNames()) {
    auto built = bench::CreateMethod(name, kLeaf);
    built->Build(data);
    const std::string dir_a = FreshDir("det_a");
    const std::string dir_b = FreshDir("det_b");
    ASSERT_TRUE(built->Save(dir_a).ok()) << name;
    ASSERT_TRUE(built->Save(dir_b).ok()) << name;
    EXPECT_EQ(FileContents(io::IndexFilePath(dir_a)),
              FileContents(io::IndexFilePath(dir_b)))
        << name;
    auto opened = bench::CreateMethod(name);
    ASSERT_TRUE(opened->Open(dir_a, data).ok()) << name;
    const std::string dir_c = FreshDir("det_c");
    ASSERT_TRUE(opened->Save(dir_c).ok()) << name;
    EXPECT_EQ(FileContents(io::IndexFilePath(dir_a)),
              FileContents(io::IndexFilePath(dir_c)))
        << name;
    for (const auto& dir : {dir_a, dir_b, dir_c}) {
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(PersistenceErrors, CorruptionFailsWithCleanStatus) {
  const core::Dataset data = TestData();
  auto built = bench::CreateMethod("DSTree", kLeaf);
  built->Build(data);
  const std::string dir = FreshDir("corrupt");
  ASSERT_TRUE(built->Save(dir).ok());
  const std::string file = io::IndexFilePath(dir);
  const std::string good = FileContents(file);

  // Flip one payload byte: a checksum error, reported as such.
  std::string bad = good;
  bad[good.size() / 2] = static_cast<char>(bad[good.size() / 2] ^ 0xFF);
  { std::ofstream(file, std::ios::binary) << bad; }
  auto flipped = bench::CreateMethod("DSTree")->Open(dir, data);
  ASSERT_FALSE(flipped.ok());
  EXPECT_NE(flipped.status().message().find("checksum"), std::string::npos)
      << flipped.status().message();

  // Truncate: a clean failure, not a crash.
  { std::ofstream(file, std::ios::binary) << good.substr(0, good.size() / 3); }
  auto truncated = bench::CreateMethod("DSTree")->Open(dir, data);
  EXPECT_FALSE(truncated.ok());

  // Future format version (right after the 8-byte magic, outside any
  // checksum): reported as a version error.
  std::string future = good;
  future[8] = static_cast<char>(future[8] + 1);
  { std::ofstream(file, std::ios::binary) << future; }
  auto versioned = bench::CreateMethod("DSTree")->Open(dir, data);
  ASSERT_FALSE(versioned.ok());
  EXPECT_NE(versioned.status().message().find("version"), std::string::npos)
      << versioned.status().message();
  std::filesystem::remove_all(dir);
}

TEST(PersistenceErrors, MismatchesAreRefused) {
  const core::Dataset data = TestData();
  auto built = bench::CreateMethod("SFA", kLeaf);
  built->Build(data);
  const std::string dir = FreshDir("mismatch");
  ASSERT_TRUE(built->Save(dir).ok());

  // A different collection (the fingerprint stores count/length/bytes).
  const core::Dataset other = gen::RandomWalkDataset(kCount / 2, kLength, 1);
  auto wrong_data = bench::CreateMethod("SFA")->Open(dir, other);
  ASSERT_FALSE(wrong_data.ok());
  EXPECT_NE(wrong_data.status().message().find("fingerprint"),
            std::string::npos)
      << wrong_data.status().message();

  // A different method.
  auto wrong_method = bench::CreateMethod("DSTree")->Open(dir, data);
  EXPECT_FALSE(wrong_method.ok());

  // A missing index directory.
  auto missing = bench::CreateMethod("SFA")->Open(FreshDir("nowhere"), data);
  EXPECT_FALSE(missing.ok());
  std::filesystem::remove_all(dir);
}

TEST(PersistenceErrors, ScansRefuseSaveAndOpenHonestly) {
  const core::Dataset data = TestData();
  for (const std::string name : {"UCR-Suite", "MASS", "Stepwise"}) {
    auto scan = bench::CreateMethod(name);
    scan->Build(data);
    const auto saved = scan->Save(FreshDir("scan_save"));
    ASSERT_FALSE(saved.ok()) << name;
    EXPECT_NE(saved.status().message().find("persisted index"),
              std::string::npos)
        << saved.status().message();
    auto fresh = bench::CreateMethod(name);
    EXPECT_FALSE(fresh->Open(FreshDir("scan_open"), data).ok()) << name;
  }
}

TEST(PersistenceHarness, RunMethodFromIndexSkipsBuild) {
  const core::Dataset data = TestData();
  const gen::Workload workload = TestQueries();
  auto built = bench::CreateMethod("VA+file");
  const bench::MethodRun fresh =
      bench::RunMethod(built.get(), data, workload, /*k=*/3);
  const std::string dir = FreshDir("harness");
  ASSERT_TRUE(built->Save(dir).ok());

  auto reopened = bench::CreateMethod("VA+file");
  const auto run = bench::RunMethodFromIndex(reopened.get(), dir, data,
                                             workload, /*k=*/3);
  ASSERT_TRUE(run.ok()) << run.status().message();
  // Load time is recorded separately; no build time is charged.
  EXPECT_EQ(run.value().build.cpu_seconds, 0.0);
  EXPECT_GE(run.value().build.load_seconds, 0.0);
  ASSERT_EQ(run.value().nn_dists_sq.size(), fresh.nn_dists_sq.size());
  for (size_t i = 0; i < fresh.nn_dists_sq.size(); ++i) {
    EXPECT_EQ(run.value().nn_dists_sq[i], fresh.nn_dists_sq[i]);
  }
  // And the error path surfaces as a status, not an abort.
  auto broken = bench::CreateMethod("VA+file");
  EXPECT_FALSE(
      bench::RunMethodFromIndex(broken.get(), FreshDir("gone"), data,
                                workload, 3)
          .ok());
  std::filesystem::remove_all(dir);
}

using PersistenceDeathTest = ::testing::Test;

TEST(PersistenceDeathTest, SaveBeforeBuildDies) {
  auto method = bench::CreateMethod("DSTree");
  EXPECT_DEATH(method->Save(FreshDir("premature")).ok(),
               "Save requires a built method");
}

TEST(PersistenceDeathTest, DoubleOpenDies) {
  const core::Dataset data = TestData();
  auto built = bench::CreateMethod("VA+file");
  built->Build(data);
  const std::string dir = FreshDir("double_open");
  ASSERT_TRUE(built->Save(dir).ok());
  auto opened = bench::CreateMethod("VA+file");
  ASSERT_TRUE(opened->Open(dir, data).ok());
  EXPECT_DEATH(opened->Open(dir, data).ok(), "never double-open");
  std::filesystem::remove_all(dir);
}

TEST(PersistenceDeathTest, OpenAfterBuildDies) {
  const core::Dataset data = TestData();
  auto built = bench::CreateMethod("VA+file");
  built->Build(data);
  const std::string dir = FreshDir("open_after_build");
  ASSERT_TRUE(built->Save(dir).ok());
  EXPECT_DEATH(built->Open(dir, data).ok(), "requires an unbuilt method");
  std::filesystem::remove_all(dir);
}

TEST(PersistenceDeathTest, DoubleBuildDies) {
  const core::Dataset data = TestData();
  auto method = bench::CreateMethod("UCR-Suite");
  method->Build(data);
  EXPECT_DEATH(method->Build(data), "already built");
}

}  // namespace
}  // namespace hydra
