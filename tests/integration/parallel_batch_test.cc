// The batch engine's core promise: answering a workload concurrently over a
// shared immutable index returns bit-identical results to the serial path —
// same neighbor offsets, same squared distances, same per-query order, and
// the same deterministic ledger counters — at any thread count.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/harness.h"
#include "bench/registry.h"
#include "gen/random_walk.h"
#include "gen/workload.h"

namespace hydra::bench {
namespace {

class ParallelBatchFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = gen::RandomWalkDataset(1000, 64, 913);
    workload_ = gen::CtrlWorkload(data_, 16, 914);
  }

  core::Dataset data_;
  gen::Workload workload_;
};

// Every deterministic field of the ledger (cpu_seconds is measured
// wall-clock and legitimately varies between runs).
void ExpectSameCounters(const core::SearchStats& a, const core::SearchStats& b,
                        const std::string& context) {
  EXPECT_EQ(a.distance_computations, b.distance_computations) << context;
  EXPECT_EQ(a.raw_series_examined, b.raw_series_examined) << context;
  EXPECT_EQ(a.lower_bound_computations, b.lower_bound_computations) << context;
  EXPECT_EQ(a.nodes_visited, b.nodes_visited) << context;
  EXPECT_EQ(a.sequential_reads, b.sequential_reads) << context;
  EXPECT_EQ(a.random_seeks, b.random_seeks) << context;
  EXPECT_EQ(a.bytes_read, b.bytes_read) << context;
}

TEST_F(ParallelBatchFixture, BatchIsBitIdenticalToSerialAt1And2And8Threads) {
  constexpr size_t kK = 5;
  for (const std::string& name : AllMethodNames()) {
    auto method = CreateMethod(name, 64);
    if (!method->traits().concurrent_queries) continue;
    method->Build(data_);

    // Serial reference: plain SearchKnn in workload order.
    std::vector<core::KnnResult> serial;
    for (size_t q = 0; q < workload_.queries.size(); ++q) {
      serial.push_back(method->SearchKnn(workload_.queries[q], kK));
    }

    for (const size_t threads : {1u, 2u, 8u}) {
      const core::BatchKnnResult batch =
          SearchKnnBatch(method.get(), workload_, kK, threads);
      const std::string run = name + " @" + std::to_string(threads);
      EXPECT_TRUE(batch.serial_reason.empty()) << run;
      EXPECT_EQ(batch.threads_used, threads) << run;
      ASSERT_EQ(batch.queries.size(), serial.size()) << run;
      for (size_t q = 0; q < serial.size(); ++q) {
        const std::string context = run + " query " + std::to_string(q);
        ASSERT_EQ(batch.queries[q].neighbors.size(),
                  serial[q].neighbors.size())
            << context;
        for (size_t n = 0; n < serial[q].neighbors.size(); ++n) {
          // Bit-identical, not approximately equal: the parallel path runs
          // the very same serial per-query code.
          EXPECT_EQ(batch.queries[q].neighbors[n].id,
                    serial[q].neighbors[n].id)
              << context;
          EXPECT_EQ(batch.queries[q].neighbors[n].dist_sq,
                    serial[q].neighbors[n].dist_sq)
              << context;
        }
        ExpectSameCounters(batch.queries[q].stats, serial[q].stats, context);
      }
    }
  }
}

TEST_F(ParallelBatchFixture, MergedLedgerIsTheSumOfPerQueryLedgers) {
  auto method = CreateMethod("VA+file");
  method->Build(data_);
  const core::BatchKnnResult batch =
      SearchKnnBatch(method.get(), workload_, /*k=*/3, /*threads=*/2);
  core::SearchStats manual;
  for (const auto& q : batch.queries) manual.Add(q.stats);
  ExpectSameCounters(batch.total, manual, "merged ledger");
  EXPECT_DOUBLE_EQ(batch.total.cpu_seconds, manual.cpu_seconds);
}

TEST_F(ParallelBatchFixture, AdaptiveAdsFallsBackToSerialWithReason) {
  auto method = CreateMethod("ADS+", 64);
  ASSERT_FALSE(method->traits().concurrent_queries);
  method->Build(data_);
  const core::BatchKnnResult batch =
      SearchKnnBatch(method.get(), workload_, /*k=*/1, /*threads=*/4);
  EXPECT_EQ(batch.threads_used, 1u);
  EXPECT_FALSE(batch.serial_reason.empty());
  // The fallback still answers every query exactly.
  ASSERT_EQ(batch.queries.size(), workload_.queries.size());
  for (size_t q = 0; q < batch.queries.size(); ++q) {
    const auto truth = core::BruteForceKnn(data_, workload_.queries[q], 1);
    ASSERT_EQ(batch.queries[q].neighbors.size(), 1u);
    EXPECT_EQ(batch.queries[q].neighbors[0].id, truth[0].id);
    // Reordered early abandoning sums dimensions in a different order than
    // brute force, so exactness here is up to floating-point associativity.
    EXPECT_NEAR(batch.queries[q].neighbors[0].dist_sq, truth[0].dist_sq,
                1e-9 * (1.0 + truth[0].dist_sq));
  }
}

TEST_F(ParallelBatchFixture, SingleThreadRequestNeverReportsAFallback) {
  auto method = CreateMethod("ADS+", 64);
  method->Build(data_);
  const core::BatchKnnResult batch =
      SearchKnnBatch(method.get(), workload_, /*k=*/1, /*threads=*/1);
  EXPECT_TRUE(batch.serial_reason.empty());
  EXPECT_EQ(batch.threads_used, 1u);
}

TEST_F(ParallelBatchFixture, EmptyWorkloadWithThreadsReturnsEmptyBatch) {
  auto method = CreateMethod("UCR-Suite");
  method->Build(data_);
  gen::Workload empty;
  const core::BatchKnnResult batch =
      SearchKnnBatch(method.get(), empty, /*k=*/1, /*threads=*/4);
  EXPECT_TRUE(batch.queries.empty());
  EXPECT_EQ(batch.threads_used, 1u);  // no pool is spun up for zero queries
  EXPECT_TRUE(batch.serial_reason.empty());
}

TEST_F(ParallelBatchFixture, HugeKStaysCheap) {
  // k far beyond the collection size must not pre-allocate k slots — the
  // heap only grows to min(k, candidates offered).
  auto method = CreateMethod("UCR-Suite");
  method->Build(data_);
  const core::BatchKnnResult batch = SearchKnnBatch(
      method.get(), workload_, /*k=*/size_t{1} << 40, /*threads=*/2);
  for (const auto& r : batch.queries) {
    EXPECT_EQ(r.neighbors.size(), data_.size());  // everything is a match
  }
}

TEST_F(ParallelBatchFixture, SpecBatchIsDeterministicAt1And2And8Threads) {
  // Batch execution through a QuerySpec (epsilon quality plus a raw-series
  // budget) honors the spec deterministically at any thread count: same
  // answers, same counters, same delivered guarantees as the serial
  // Execute loop.
  core::QuerySpec spec = core::QuerySpec::Epsilon(/*k=*/5, /*epsilon=*/0.5);
  spec.max_raw_series = 400;
  for (const std::string name : {"DSTree", "iSAX2+", "SFA", "VA+file"}) {
    auto method = CreateMethod(name, 64);
    method->Build(data_);

    std::vector<core::QueryResult> serial;
    for (size_t q = 0; q < workload_.queries.size(); ++q) {
      serial.push_back(method->Execute(workload_.queries[q], spec));
    }

    for (const size_t threads : {1u, 2u, 8u}) {
      const core::BatchKnnResult batch =
          SearchKnnBatch(method.get(), workload_, spec, threads);
      const std::string run = name + " spec @" + std::to_string(threads);
      ASSERT_EQ(batch.queries.size(), serial.size()) << run;
      for (size_t q = 0; q < serial.size(); ++q) {
        const std::string context = run + " query " + std::to_string(q);
        ASSERT_EQ(batch.queries[q].neighbors.size(),
                  serial[q].neighbors.size())
            << context;
        for (size_t n = 0; n < serial[q].neighbors.size(); ++n) {
          EXPECT_EQ(batch.queries[q].neighbors[n].id,
                    serial[q].neighbors[n].id)
              << context;
          EXPECT_EQ(batch.queries[q].neighbors[n].dist_sq,
                    serial[q].neighbors[n].dist_sq)
              << context;
        }
        ExpectSameCounters(batch.queries[q].stats, serial[q].stats, context);
        EXPECT_EQ(batch.queries[q].delivered(), serial[q].delivered())
            << context;
        EXPECT_EQ(batch.queries[q].budget_fired(), serial[q].budget_fired())
            << context;
      }
      // The merged ledger reports the weakest guarantee of the batch.
      core::SearchStats manual;
      for (const auto& r : batch.queries) manual.Add(r.stats);
      EXPECT_EQ(batch.total.answer_mode_delivered,
                manual.answer_mode_delivered)
          << run;
      EXPECT_EQ(batch.total.budget_exhausted, manual.budget_exhausted) << run;
    }
  }
}

TEST_F(ParallelBatchFixture, RunMethodParallelMatchesRunMethod) {
  const auto hdd = io::DiskModel::ScaledHdd();
  for (const std::string name : {"UCR-Suite", "DSTree"}) {
    auto serial_method = CreateMethod(name, 64);
    auto parallel_method = CreateMethod(name, 64);
    const MethodRun serial = RunMethod(serial_method.get(), data_, workload_);
    const MethodRun parallel = RunMethodParallel(parallel_method.get(), data_,
                                                 workload_, /*k=*/1,
                                                 /*threads=*/4);
    ASSERT_EQ(parallel.queries.size(), serial.queries.size()) << name;
    ASSERT_EQ(parallel.nn_dists_sq.size(), serial.nn_dists_sq.size()) << name;
    for (size_t q = 0; q < serial.queries.size(); ++q) {
      EXPECT_EQ(parallel.nn_dists_sq[q], serial.nn_dists_sq[q]) << name;
      ExpectSameCounters(parallel.queries[q], serial.queries[q],
                         name + " query " + std::to_string(q));
    }
    // Every harness measure built on deterministic counters agrees too.
    EXPECT_DOUBLE_EQ(MeanPruningRatio(parallel, data_.size()),
                     MeanPruningRatio(serial, data_.size()))
        << name;
    EXPECT_GT(Exact100Seconds(parallel, hdd), 0.0) << name;
  }
}

}  // namespace
}  // namespace hydra::bench
