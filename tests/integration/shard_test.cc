// The sharded-index contract: sharded exact k-NN and range answers are
// bit-identical to the unsharded method for all seven index methods, at
// every shard count and fan-out thread count, including after a Save/Open
// round-trip of the sharded container; budgets split without exceeding the
// global cap; approximate modes keep their guarantees through the merge;
// manifest problems surface as clean util::Status errors, never crashes.
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/harness.h"
#include "bench/registry.h"
#include "core/distance.h"
#include "core/method.h"
#include "core/query_spec.h"
#include "gen/random_walk.h"
#include "gen/workload.h"
#include "io/index_codec.h"
#include "shard/sharded_index.h"

namespace hydra {
namespace {

constexpr size_t kCount = 400;
constexpr size_t kLength = 64;
constexpr size_t kLeaf = 64;
constexpr size_t kK = 5;
constexpr double kRadius = 8.0;

const size_t kShardCounts[] = {1, 2, 7};
const size_t kThreadCounts[] = {1, 8};

core::Dataset TestData() {
  return gen::RandomWalkDataset(kCount, kLength, 7401);
}
gen::Workload TestQueries() { return gen::RandWorkload(4, kLength, 7402); }

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectSameAnswers(const std::vector<core::Neighbor>& got,
                       const std::vector<core::Neighbor>& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << context << " rank " << i;
    EXPECT_EQ(got[i].dist_sq, want[i].dist_sq) << context << " rank " << i;
  }
}

/// The headline guarantee, over every (method, shards, threads) cell:
/// exact k-NN and exact range through the sharded container match the
/// unsharded method bit for bit.
TEST(ShardedBitIdentity, ExactKnnAndRangeMatchUnshardedEverywhere) {
  const core::Dataset data = TestData();
  const gen::Workload workload = TestQueries();
  for (const std::string& name : bench::ShardableNames()) {
    // Fresh unsharded reference per method (ADS+ adapts during queries,
    // so references are computed once and reused across cells).
    auto reference = bench::CreateMethod(name, kLeaf);
    reference->Build(data);
    std::vector<std::vector<core::Neighbor>> knn_ref;
    std::vector<std::vector<core::Neighbor>> range_ref;
    for (size_t q = 0; q < workload.queries.size(); ++q) {
      knn_ref.push_back(
          reference->Execute(workload.queries[q], core::QuerySpec::Knn(kK))
              .neighbors);
      range_ref.push_back(
          reference
              ->Execute(workload.queries[q], core::QuerySpec::Range(kRadius))
              .neighbors);
    }
    for (const size_t shards : kShardCounts) {
      for (const size_t threads : kThreadCounts) {
        auto sharded =
            bench::CreateShardedMethod(name, shards, threads, kLeaf);
        sharded->Build(data);
        const std::string context = name + " shards=" +
                                    std::to_string(shards) + " threads=" +
                                    std::to_string(threads);
        for (size_t q = 0; q < workload.queries.size(); ++q) {
          const core::QueryResult knn = sharded->Execute(
              workload.queries[q], core::QuerySpec::Knn(kK));
          ExpectSameAnswers(knn.neighbors, knn_ref[q],
                            context + " knn query " + std::to_string(q));
          EXPECT_EQ(knn.delivered(), core::QualityMode::kExact) << context;
          EXPECT_FALSE(knn.budget_fired()) << context;
          const core::QueryResult range = sharded->Execute(
              workload.queries[q], core::QuerySpec::Range(kRadius));
          ExpectSameAnswers(range.neighbors, range_ref[q],
                            context + " range query " + std::to_string(q));
        }
      }
    }
  }
}

/// Save → Open of the sharded container answers bit-identically, for every
/// persistent method, at an uneven shard count, across thread counts.
TEST(ShardedPersistence, RoundTripAnswersAreBitIdentical) {
  const core::Dataset data = TestData();
  const gen::Workload workload = TestQueries();
  for (const std::string& name : bench::ShardableNames()) {
    const std::string dir = FreshDir("shard_rt_" + name);
    auto built = bench::CreateShardedMethod(name, 7, 2, kLeaf);
    built->Build(data);
    std::vector<std::vector<core::Neighbor>> knn_ref;
    std::vector<std::vector<core::Neighbor>> range_ref;
    for (size_t q = 0; q < workload.queries.size(); ++q) {
      knn_ref.push_back(
          built->Execute(workload.queries[q], core::QuerySpec::Knn(kK))
              .neighbors);
      range_ref.push_back(
          built->Execute(workload.queries[q], core::QuerySpec::Range(kRadius))
              .neighbors);
    }
    const util::Result<int64_t> saved = built->Save(dir);
    ASSERT_TRUE(saved.ok()) << name << ": " << saved.status().message();
    EXPECT_GT(saved.value(), 0) << name;

    for (const size_t threads : kThreadCounts) {
      // Opened with a *different* configured shard count: the manifest
      // wins, like every persisted method option.
      auto opened = bench::CreateShardedMethod(name, 3, threads, kLeaf);
      const util::Result<core::BuildStats> stats = opened->Open(dir, data);
      ASSERT_TRUE(stats.ok()) << name << ": " << stats.status().message();
      EXPECT_EQ(stats.value().cpu_seconds, 0.0) << name;
      EXPECT_GE(stats.value().load_seconds, 0.0) << name;
      const auto* container =
          dynamic_cast<const shard::ShardedIndex*>(opened.get());
      ASSERT_NE(container, nullptr);
      EXPECT_EQ(container->shard_count(), 7u) << name;
      for (size_t q = 0; q < workload.queries.size(); ++q) {
        ExpectSameAnswers(
            opened->Execute(workload.queries[q], core::QuerySpec::Knn(kK))
                .neighbors,
            knn_ref[q], name + " opened knn q" + std::to_string(q));
        ExpectSameAnswers(
            opened
                ->Execute(workload.queries[q],
                          core::QuerySpec::Range(kRadius))
                .neighbors,
            range_ref[q], name + " opened range q" + std::to_string(q));
      }
    }
  }
}

TEST(ShardedTraits, SevenIndexMethodsShardScansDoNot) {
  const auto shardable = bench::ShardableNames();
  EXPECT_EQ(shardable.size(), 7u);
  for (const std::string& name : bench::AllMethodNames()) {
    const core::MethodTraits t = bench::CreateMethod(name)->traits();
    const bool expected =
        std::find(shardable.begin(), shardable.end(), name) !=
        shardable.end();
    EXPECT_EQ(t.shardable, expected) << name;
    if (!t.shardable) {
      EXPECT_FALSE(t.shard_reason.empty()) << name;
    }
  }
  // The container mirrors its component's quality traits but refuses to
  // nest.
  for (const std::string& name : shardable) {
    const core::MethodTraits inner = bench::CreateMethod(name)->traits();
    const core::MethodTraits outer =
        bench::CreateShardedMethod(name, 2, 1)->traits();
    EXPECT_EQ(outer.supports_ng, inner.supports_ng) << name;
    EXPECT_EQ(outer.supports_epsilon, inner.supports_epsilon) << name;
    EXPECT_EQ(outer.supports_delta_epsilon, inner.supports_delta_epsilon)
        << name;
    EXPECT_EQ(outer.leaf_visit_budget, inner.leaf_visit_budget) << name;
    EXPECT_EQ(outer.supports_persistence, inner.supports_persistence)
        << name;
    EXPECT_EQ(outer.concurrent_queries, inner.concurrent_queries) << name;
    EXPECT_FALSE(outer.shardable) << name;
    EXPECT_FALSE(outer.shard_reason.empty()) << name;
  }
}

TEST(ShardedBudgets, GlobalRawBudgetIsNeverExceededBySplitShards) {
  const core::Dataset data = TestData();
  const gen::Workload workload = TestQueries();
  for (const std::string& name : bench::ShardableNames()) {
    for (const int64_t budget : {int64_t{3}, int64_t{50}}) {
      // budget=3 over 7 shards starves four of them (split rule: B/N with
      // the first B mod N shards getting one extra).
      auto sharded = bench::CreateShardedMethod(name, 7, 2, kLeaf);
      sharded->Build(data);
      core::QuerySpec spec = core::QuerySpec::Knn(kK);
      spec.max_raw_series = budget;
      const core::QueryResult r =
          sharded->Execute(workload.queries[0], spec);
      EXPECT_LE(r.stats.raw_series_examined, budget)
          << name << " budget=" << budget;
      if (r.budget_fired()) {
        EXPECT_EQ(r.delivered(), core::QualityMode::kNgApprox) << name;
      }
      // Whatever came back reports true distances (the id's real
      // distance to the query), truncated or not. Methods sum dimensions
      // in reordered-early-abandon order, so allow a few ulps against the
      // straight-sum oracle.
      for (const core::Neighbor& n : r.neighbors) {
        const double truth =
            core::SquaredEuclidean(workload.queries[0], data[n.id]);
        EXPECT_NEAR(n.dist_sq, truth, 1e-9 * (1.0 + truth)) << name;
      }
    }
  }
}

TEST(ShardedModes, EpsilonGuaranteeSurvivesTheMerge) {
  const core::Dataset data = TestData();
  const gen::Workload workload = TestQueries();
  constexpr double kEps = 0.5;
  for (const std::string& name : bench::ShardableNames()) {
    auto sharded = bench::CreateShardedMethod(name, 7, 2, kLeaf);
    sharded->Build(data);
    for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
      const core::SeriesView q = workload.queries[qi];
      const std::vector<core::Neighbor> truth =
          core::BruteForceKnn(data, q, kK);
      const core::QueryResult r =
          sharded->Execute(q, core::QuerySpec::Epsilon(kK, kEps));
      EXPECT_EQ(r.delivered(), core::QualityMode::kEpsilon) << name;
      ASSERT_EQ(r.neighbors.size(), kK) << name;
      for (size_t i = 0; i < kK; ++i) {
        // Definition 5: every reported distance within (1+eps) of the
        // true distance at the same rank (small slack for fp rounding).
        EXPECT_LE(std::sqrt(r.neighbors[i].dist_sq),
                  (1.0 + kEps) * std::sqrt(truth[i].dist_sq) + 1e-9)
            << name;
      }
    }
  }
}

TEST(ShardedModes, NgFanOutMergesOneDescentPerShard) {
  const core::Dataset data = TestData();
  const gen::Workload workload = TestQueries();
  for (const std::string& name : bench::NgCapableNames()) {
    auto sharded = bench::CreateShardedMethod(name, 2, 2, kLeaf);
    sharded->Build(data);
    const core::QueryResult r = sharded->Execute(
        workload.queries[0], core::QuerySpec::NgApprox(kK));
    EXPECT_EQ(r.delivered(), core::QualityMode::kNgApprox) << name;
    EXPECT_LE(r.neighbors.size(), kK) << name;
    EXPECT_GE(r.neighbors.size(), 1u) << name;
    for (const core::Neighbor& n : r.neighbors) {
      const double truth =
          core::SquaredEuclidean(workload.queries[0], data[n.id]);
      EXPECT_NEAR(n.dist_sq, truth, 1e-9 * (1.0 + truth)) << name;
    }
  }
}

TEST(ShardedLayout, ShardCountClampsToTheDatasetSize) {
  const core::Dataset small = gen::RandomWalkDataset(5, kLength, 7403);
  auto sharded = bench::CreateShardedMethod("DSTree", 1000, 2, kLeaf);
  sharded->Build(small);
  const auto* container =
      dynamic_cast<const shard::ShardedIndex*>(sharded.get());
  ASSERT_NE(container, nullptr);
  EXPECT_EQ(container->shard_count(), 5u);  // one series per shard
  const gen::Workload workload = gen::RandWorkload(2, kLength, 7404);
  auto reference = bench::CreateMethod("DSTree", kLeaf);
  reference->Build(small);
  for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
    const core::SeriesView q = workload.queries[qi];
    // k beyond the collection: every series comes back, merged across
    // the one-series shards, identical to the unsharded answer.
    ExpectSameAnswers(
        sharded->Execute(q, core::QuerySpec::Knn(10)).neighbors,
        reference->Execute(q, core::QuerySpec::Knn(10)).neighbors,
        "clamped shards");
  }
}

TEST(ShardedStats, LedgersSumAcrossShards) {
  const core::Dataset data = TestData();
  const gen::Workload workload = TestQueries();
  // VA+file reads every approximation cell: lower_bound_computations is
  // exactly 2N per query regardless of sharding, so the summed ledger is
  // checkable in closed form.
  auto sharded = bench::CreateShardedMethod("VA+file", 7, 1);
  sharded->Build(data);
  const core::QueryResult r =
      sharded->Execute(workload.queries[0], core::QuerySpec::Knn(kK));
  EXPECT_EQ(r.stats.lower_bound_computations,
            static_cast<int64_t>(2 * kCount));
  EXPECT_GT(r.stats.cpu_seconds, 0.0);
  // The footprint also aggregates across shards.
  const core::Footprint fp = sharded->footprint();
  EXPECT_GT(fp.memory_bytes, 0);
}

TEST(ShardedErrors, ForeignAndGarbledContainersFailCleanly) {
  const core::Dataset data = TestData();
  const std::string dir = FreshDir("shard_err");
  auto built = bench::CreateShardedMethod("DSTree", 2, 1, kLeaf);
  built->Build(data);
  ASSERT_TRUE(built->Save(dir).ok());

  // A plain method refuses the sharded container (method-name mismatch).
  auto plain = bench::CreateMethod("DSTree", kLeaf);
  const auto plain_open = plain->Open(dir, data);
  EXPECT_FALSE(plain_open.ok());
  EXPECT_NE(plain_open.status().message().find("Sharded[DSTree]"),
            std::string::npos);

  // A sharded container of another component refuses too.
  auto wrong_inner = bench::CreateShardedMethod("SFA", 2, 1, kLeaf);
  const auto wrong_open = wrong_inner->Open(dir, data);
  EXPECT_FALSE(wrong_open.ok());

  // A sharded container refuses a dataset of the wrong shape.
  const core::Dataset other = gen::RandomWalkDataset(kCount / 2, kLength,
                                                     7405);
  auto mismatched = bench::CreateShardedMethod("DSTree", 2, 1, kLeaf);
  const auto mismatch_open = mismatched->Open(dir, other);
  EXPECT_FALSE(mismatch_open.ok());

  // Flipping a byte in the container body surfaces as a checksum error,
  // never a crash.
  const std::string path = io::IndexFilePath(dir);
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  file.seekp(size / 2);
  char byte = 0;
  file.seekg(size / 2);
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(size / 2);
  file.write(&byte, 1);
  file.close();
  auto corrupt = bench::CreateShardedMethod("DSTree", 2, 1, kLeaf);
  const auto corrupt_open = corrupt->Open(dir, data);
  EXPECT_FALSE(corrupt_open.ok());
}

TEST(ShardedHarness, RunMethodShardedMatchesRunMethod) {
  const core::Dataset data = TestData();
  const gen::Workload workload = TestQueries();
  auto reference = bench::CreateMethod("SFA");
  const bench::MethodRun serial =
      bench::RunMethod(reference.get(), data, workload, kK);
  const bench::MethodRun sharded =
      bench::RunMethodSharded("SFA", 3, 2, data, workload, kK);
  EXPECT_EQ(sharded.method, "Sharded[SFA]");
  ASSERT_EQ(sharded.nn_dists_sq.size(), serial.nn_dists_sq.size());
  for (size_t q = 0; q < serial.nn_dists_sq.size(); ++q) {
    EXPECT_EQ(sharded.nn_dists_sq[q], serial.nn_dists_sq[q]) << q;
  }
}

}  // namespace
}  // namespace hydra
