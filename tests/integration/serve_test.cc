// The serve daemon's end-to-end promises, driven through real loopback
// sockets: concurrent clients receive answers bit-identical to a direct
// Execute on the same index; a cache hit returns the identical answer
// bytes; approximate and budgeted queries bypass the cache; admission
// control answers overload with an explicit rejection frame; malformed
// bytes get an error frame and a closed connection, never a crash; and
// Reload swaps the index without dropping the listener.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench/registry.h"
#include "core/method.h"
#include "core/query_spec.h"
#include "gen/random_walk.h"
#include "gen/workload.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace hydra::serve {
namespace {

class ServeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = gen::RandomWalkDataset(600, 64, 2021);
    workload_ = gen::CtrlWorkload(data_, 12, 2022);
  }

  /// A freshly built instance of the served method (DSTree: concurrent
  /// queries, every quality mode, leaf budgets — the richest traits).
  std::shared_ptr<core::SearchMethod> BuildMethod() {
    std::shared_ptr<core::SearchMethod> method =
        bench::CreateMethod("DSTree", 64);
    method->Build(data_);
    return method;
  }

  QueryRequest RequestFor(size_t q, const core::QuerySpec& spec) const {
    const core::SeriesView view = workload_.queries[q];
    return QueryRequest{spec,
                        std::vector<core::Value>(view.begin(), view.end())};
  }

  core::Dataset data_;
  gen::Workload workload_;
};

/// Byte-level answer identity, ignoring the transport-only `cached` flag.
/// A cache hit replays the recorded ledger verbatim, so even the measured
/// cpu_seconds round-trips bit-identically.
std::string AnswerBytes(const AnswerResponse& answer) {
  return EncodeAnswerResponse(AnswerResponse{answer.result, false});
}

/// Byte-level identity across independent executions: every deterministic
/// field the wire carries (neighbors and the full counter ledger), with
/// only the measured-wall-clock cpu_seconds zeroed — two runs of the same
/// query legitimately differ there and nowhere else.
std::string ComparableBytes(const AnswerResponse& answer) {
  AnswerResponse normalized{answer.result, false};
  normalized.result.stats.cpu_seconds = 0.0;
  return EncodeAnswerResponse(normalized);
}

/// The direct-Execute reference, encoded through the same codec so the
/// comparison covers everything at once.
std::string DirectBytes(core::SearchMethod* method, core::SeriesView query,
                        const core::QuerySpec& spec) {
  return ComparableBytes(AnswerResponse{method->Execute(query, spec), false});
}

TEST_F(ServeFixture, EightConcurrentClientsAreBitIdenticalToDirectExecute) {
  auto method = BuildMethod();
  auto reference = BuildMethod();  // independent instance for direct answers

  ServerOptions options;
  options.serve_threads = 4;
  Server server(options);
  ASSERT_TRUE(server.Start(method, &data_).ok());

  const core::QuerySpec spec = core::QuerySpec::Knn(5);
  std::vector<std::string> expected;
  for (size_t q = 0; q < workload_.queries.size(); ++q) {
    expected.push_back(
        DirectBytes(reference.get(), workload_.queries[q], spec));
  }

  constexpr size_t kClients = 8;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      const util::Status connected =
          client.Connect("127.0.0.1", server.port());
      if (!connected.ok()) {
        failures[c] = connected.message();
        return;
      }
      // Each client walks the workload from its own starting offset so the
      // in-flight mix differs across clients at any instant.
      for (size_t i = 0; i < workload_.queries.size(); ++i) {
        const size_t q = (c + i) % workload_.queries.size();
        AnswerResponse answer;
        const util::Status s =
            client.Query(RequestFor(q, spec), &answer, nullptr);
        if (!s.ok()) {
          failures[c] = s.message();
          return;
        }
        if (ComparableBytes(answer) != expected[q]) {
          failures[c] = "answer to query " + std::to_string(q) +
                        " differs from direct Execute";
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }
  server.Shutdown();
}

TEST_F(ServeFixture, CacheHitReturnsIdenticalBytesAndIsVisibleInStats) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Start(BuildMethod(), &data_).ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  const QueryRequest request = RequestFor(0, core::QuerySpec::Knn(3));

  AnswerResponse first, second;
  ASSERT_TRUE(client.Query(request, &first, nullptr).ok());
  ASSERT_TRUE(client.Query(request, &second, nullptr).ok());
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(AnswerBytes(first), AnswerBytes(second));

  const AnswerCache::Counters counters = server.cache_counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.insertions, 1u);

  // The hit is visible in the STATS document a client fetches.
  std::string json;
  ASSERT_TRUE(client.Stats(&json).ok());
  EXPECT_NE(json.find("\"hits\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hit_rate\":0.5"), std::string::npos) << json;
  server.Shutdown();
}

TEST_F(ServeFixture, ApproximateAndBudgetedQueriesBypassTheCache) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Start(BuildMethod(), &data_).ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  core::QuerySpec budgeted = core::QuerySpec::Knn(3);
  budgeted.max_raw_series = 50;
  for (const core::QuerySpec& spec :
       {core::QuerySpec::NgApprox(3), core::QuerySpec::Epsilon(3, 0.5),
        budgeted}) {
    const QueryRequest request = RequestFor(1, spec);
    AnswerResponse repeat;
    for (int round = 0; round < 2; ++round) {
      ASSERT_TRUE(client.Query(request, &repeat, nullptr).ok());
      EXPECT_FALSE(repeat.cached);
    }
  }
  // No lookup, insertion, or hit ever happened: only exact unbudgeted
  // answers are cacheable.
  const AnswerCache::Counters counters = server.cache_counters();
  EXPECT_EQ(counters.hits, 0u);
  EXPECT_EQ(counters.misses, 0u);
  EXPECT_EQ(counters.insertions, 0u);
  server.Shutdown();
}

TEST_F(ServeFixture, OverloadAnswersWithAnExplicitRejectionFrame) {
  // One admission slot, and the execute hook holds the admitted query
  // in-flight until released — the second query's rejection is
  // deterministic, not a race.
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::atomic<bool> first_entry{true};

  ServerOptions options;
  options.max_inflight = 1;
  options.execute_hook = [&] {
    if (first_entry.exchange(false)) entered.set_value();
    release_future.wait();
  };
  Server server(options);
  ASSERT_TRUE(server.Start(BuildMethod(), &data_).ok());

  const QueryRequest request = RequestFor(2, core::QuerySpec::Knn(1));
  util::Status blocked_status = util::Status::Ok();
  std::thread blocked([&] {
    Client client;
    const util::Status connected =
        client.Connect("127.0.0.1", server.port());
    if (!connected.ok()) {
      blocked_status = connected;
      return;
    }
    AnswerResponse answer;
    blocked_status = client.Query(request, &answer, nullptr);
  });
  entered.get_future().wait();  // the slot is now provably occupied

  Client overflow;
  ASSERT_TRUE(overflow.Connect("127.0.0.1", server.port()).ok());
  AnswerResponse answer;
  ErrorCode code = ErrorCode::kInternal;
  const util::Status rejected = overflow.Query(request, &answer, &code);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(code, ErrorCode::kResourceExhausted);
  EXPECT_NE(rejected.message().find("resource-exhausted"),
            std::string::npos);

  // The rejection is backpressure, not a dropped connection: the same
  // client is answered once the slot frees up.
  release.set_value();
  blocked.join();
  EXPECT_TRUE(blocked_status.ok()) << blocked_status.message();
  AnswerResponse retry;
  EXPECT_TRUE(overflow.Query(request, &retry, nullptr).ok());

  std::string json;
  ASSERT_TRUE(overflow.Stats(&json).ok());
  EXPECT_NE(json.find("\"rejected\":1"), std::string::npos) << json;
  server.Shutdown();
}

TEST_F(ServeFixture, MalformedBytesGetAnErrorFrameNeverACrash) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Start(BuildMethod(), &data_).ok());

  // A raw socket speaking not-the-protocol: the server must answer with a
  // kMalformed error frame and close, and keep serving other clients.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string garbage = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(garbage.size()));

  FrameDecoder decoder;
  Frame frame;
  bool got_frame = false;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // server closed after the error frame
    decoder.Feed(buf, static_cast<size_t>(n));
    if (decoder.Pop(&frame) == FrameDecoder::Next::kFrame) {
      got_frame = true;
    }
  }
  ::close(fd);
  ASSERT_TRUE(got_frame);
  ASSERT_EQ(frame.type, FrameType::kError);
  ErrorResponse error;
  ASSERT_TRUE(DecodeErrorResponse(frame.payload, &error).ok());
  EXPECT_EQ(error.code, ErrorCode::kMalformed);

  // The daemon shrugged it off: a well-behaved client still gets answers.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(client.Ping().ok());
  AnswerResponse answer;
  EXPECT_TRUE(
      client.Query(RequestFor(3, core::QuerySpec::Knn(1)), &answer, nullptr)
          .ok());
  server.Shutdown();
}

TEST_F(ServeFixture, BadSpecsAreRefusedWithBadQueryNotServedSilently) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Start(BuildMethod(), &data_).ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Wrong query length: the vector does not match the served collection.
  QueryRequest wrong_length = RequestFor(0, core::QuerySpec::Knn(1));
  wrong_length.query.resize(16);
  AnswerResponse answer;
  ErrorCode code = ErrorCode::kInternal;
  EXPECT_FALSE(client.Query(wrong_length, &answer, &code).ok());
  EXPECT_EQ(code, ErrorCode::kBadQuery);

  // k = 0 violates the k-NN contract.
  QueryRequest zero_k = RequestFor(0, core::QuerySpec::Knn(1));
  zero_k.spec.k = 0;
  EXPECT_FALSE(client.Query(zero_k, &answer, &code).ok());
  EXPECT_EQ(code, ErrorCode::kBadQuery);

  // A bad query never poisons the connection: the next good one answers.
  EXPECT_TRUE(
      client.Query(RequestFor(0, core::QuerySpec::Knn(1)), &answer, nullptr)
          .ok());
  server.Shutdown();
}

TEST_F(ServeFixture, ReloadSwapsTheIndexWithoutDroppingClients) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Start(BuildMethod(), &data_).ok());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  const QueryRequest request = RequestFor(4, core::QuerySpec::Knn(3));
  AnswerResponse before;
  ASSERT_TRUE(client.Query(request, &before, nullptr).ok());

  // The SIGHUP path: swap in a freshly built index on the live listener.
  server.Reload(BuildMethod());

  // The connection survived, the cache stayed valid (same dataset
  // fingerprint), and the swapped index answers identically.
  AnswerResponse cached;
  ASSERT_TRUE(client.Query(request, &cached, nullptr).ok());
  EXPECT_TRUE(cached.cached);
  EXPECT_EQ(AnswerBytes(before), AnswerBytes(cached));

  AnswerResponse fresh;
  ASSERT_TRUE(
      client.Query(RequestFor(5, core::QuerySpec::Knn(3)), &fresh, nullptr)
          .ok());
  EXPECT_FALSE(fresh.cached);
  auto reference = BuildMethod();
  EXPECT_EQ(ComparableBytes(fresh),
            DirectBytes(reference.get(), workload_.queries[5],
                        core::QuerySpec::Knn(3)));
  server.Shutdown();
}

TEST_F(ServeFixture, ShutdownDrainsInFlightQueriesBeforeClosing) {
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::atomic<bool> first_entry{true};

  ServerOptions options;
  options.execute_hook = [&] {
    if (first_entry.exchange(false)) entered.set_value();
    release_future.wait();
  };
  Server server(options);
  ASSERT_TRUE(server.Start(BuildMethod(), &data_).ok());

  util::Status status = util::Status::Ok();
  AnswerResponse answer;
  std::thread inflight([&] {
    Client client;
    const util::Status connected =
        client.Connect("127.0.0.1", server.port());
    if (!connected.ok()) {
      status = connected;
      return;
    }
    status = client.Query(RequestFor(6, core::QuerySpec::Knn(2)), &answer,
                          nullptr);
  });
  entered.get_future().wait();

  // Shutdown from another thread while the query is held in-flight: the
  // drain must wait for it, and the client must still get its answer.
  std::thread closer([&] { server.Shutdown(); });
  release.set_value();
  closer.join();
  inflight.join();
  EXPECT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(answer.result.neighbors.size(), 2u);
}

}  // namespace
}  // namespace hydra::serve
