// Measurement-semantics tests: the paper's measures (pruning ratio, random
// vs sequential accesses, footprint, TLB) must behave per their Section 4.2
// definitions for every method.
#include <cmath>

#include <gtest/gtest.h>

#include "bench/harness.h"
#include "bench/registry.h"
#include "gen/random_walk.h"
#include "gen/workload.h"

namespace hydra {
namespace {

class StatsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = gen::RandomWalkDataset(4000, 128, 2024);
    workload_ = gen::RandWorkload(8, 128, 2025);
  }

  core::Dataset data_;
  gen::Workload workload_;
};

TEST_F(StatsFixture, UcrScanExaminesEverything) {
  auto method = bench::CreateMethod("UCR-Suite");
  const auto run = bench::RunMethod(method.get(), data_, workload_);
  for (const auto& q : run.queries) {
    EXPECT_EQ(q.raw_series_examined, static_cast<int64_t>(data_.size()));
    EXPECT_EQ(q.sequential_reads, static_cast<int64_t>(data_.size()));
    EXPECT_EQ(q.random_seeks, 1);  // one scan start
  }
  EXPECT_NEAR(bench::MeanPruningRatio(run, data_.size()), 0.0, 1e-12);
}

TEST_F(StatsFixture, IndexesPruneOnRandomWalks) {
  // Random-walk data is highly summarizable: all indexes must prune most
  // of the collection (the paper's Synth-Rand pruning is near 1).
  for (const std::string& name : bench::PruningMethodNames()) {
    auto method = bench::CreateMethod(name, 64);
    const auto run = bench::RunMethod(method.get(), data_, workload_);
    const double pruning = bench::MeanPruningRatio(run, data_.size());
    EXPECT_GT(pruning, 0.5) << name;
    EXPECT_LE(pruning, 1.0) << name;
  }
}

TEST_F(StatsFixture, AdsPlusHasMostRandomAccesses) {
  // Skip-sequential per-series pruning => many skips (paper Figure 4c).
  auto ads = bench::CreateMethod("ADS+", 64);
  auto dstree = bench::CreateMethod("DSTree", 64);
  const auto run_ads = bench::RunMethod(ads.get(), data_, workload_);
  const auto run_ds = bench::RunMethod(dstree.get(), data_, workload_);
  int64_t ads_seeks = 0;
  int64_t ds_seeks = 0;
  for (const auto& q : run_ads.queries) ads_seeks += q.random_seeks;
  for (const auto& q : run_ds.queries) ds_seeks += q.random_seeks;
  EXPECT_GT(ads_seeks, ds_seeks);
}

TEST_F(StatsFixture, SequentialScanDoesMostSequentialReads) {
  auto ucr = bench::CreateMethod("UCR-Suite");
  auto va = bench::CreateMethod("VA+file");
  const auto run_ucr = bench::RunMethod(ucr.get(), data_, workload_);
  const auto run_va = bench::RunMethod(va.get(), data_, workload_);
  int64_t ucr_seq = 0;
  int64_t va_seq = 0;
  for (const auto& q : run_ucr.queries) ucr_seq += q.sequential_reads;
  for (const auto& q : run_va.queries) va_seq += q.sequential_reads;
  EXPECT_GT(ucr_seq, va_seq);  // paper Figure 4a: VA+ performs virtually none
}

TEST_F(StatsFixture, FootprintShapesAreConsistent) {
  for (const std::string name :
       {"ADS+", "DSTree", "iSAX2+", "SFA", "M-tree", "R*-tree"}) {
    auto method = bench::CreateMethod(name, 64);
    method->Build(data_);
    const core::Footprint fp = method->footprint();
    EXPECT_GT(fp.total_nodes, 0) << name;
    EXPECT_GT(fp.leaf_nodes, 0) << name;
    EXPECT_GE(fp.total_nodes, fp.leaf_nodes) << name;
    EXPECT_GT(fp.memory_bytes, 0) << name;
    EXPECT_EQ(fp.leaf_fill_fractions.size(),
              static_cast<size_t>(fp.leaf_nodes))
        << name;
    for (const double f : fp.leaf_fill_fractions) {
      EXPECT_GE(f, 0.0) << name;
    }
  }
}

TEST_F(StatsFixture, TlbWithinUnitInterval) {
  for (const std::string& name : bench::PruningMethodNames()) {
    auto method = bench::CreateMethod(name, 64);
    method->Build(data_);
    for (size_t q = 0; q < 3; ++q) {
      const double tlb = method->MeanTlb(workload_.queries[q]);
      EXPECT_GE(tlb, 0.0) << name;
      EXPECT_LE(tlb, 1.0 + 1e-9) << name;  // lb <= true distance
    }
  }
}

TEST_F(StatsFixture, VaPlusTlbTighterThanSfa) {
  // Paper Figure 8f: VA+file has one of the tightest bounds, SFA (alphabet
  // 8, coarse leaves) one of the loosest.
  auto va = bench::CreateMethod("VA+file");
  auto sfa = bench::CreateMethod("SFA", 512);
  va->Build(data_);
  sfa->Build(data_);
  double va_sum = 0.0;
  double sfa_sum = 0.0;
  for (size_t q = 0; q < 5; ++q) {
    va_sum += va->MeanTlb(workload_.queries[q]);
    sfa_sum += sfa->MeanTlb(workload_.queries[q]);
  }
  EXPECT_GT(va_sum, sfa_sum);
}

TEST_F(StatsFixture, BuildStatsPopulated) {
  for (const std::string& name : bench::BestSixNames()) {
    auto method = bench::CreateMethod(name, 64);
    const core::BuildStats b = method->Build(data_);
    EXPECT_GE(b.cpu_seconds, 0.0) << name;
    if (name != "UCR-Suite") {
      EXPECT_GT(b.bytes_read, 0) << name;
    }
  }
}

TEST_F(StatsFixture, AdsWritesLessThanIsax2PlusAtBuild) {
  // ADS+ never materializes raw leaves; iSAX2+ does (paper Figure 6a).
  auto ads = bench::CreateMethod("ADS+", 64);
  auto isax = bench::CreateMethod("iSAX2+", 64);
  const auto b_ads = ads->Build(data_);
  const auto b_isax = isax->Build(data_);
  EXPECT_LT(b_ads.bytes_written, b_isax.bytes_written);
}

TEST_F(StatsFixture, HarderQueriesPruneLess) {
  const auto easy = gen::CtrlWorkload(data_, 10, 3030, 0.05, 0.05);
  const auto hard = gen::CtrlWorkload(data_, 10, 3031, 3.0, 3.0);
  auto method = bench::CreateMethod("DSTree", 64);
  const auto run_easy = bench::RunMethod(method.get(), data_, easy);
  auto method2 = bench::CreateMethod("DSTree", 64);
  const auto run_hard = bench::RunMethod(method2.get(), data_, hard);
  EXPECT_GT(bench::MeanPruningRatio(run_easy, data_.size()),
            bench::MeanPruningRatio(run_hard, data_.size()));
}

}  // namespace
}  // namespace hydra
