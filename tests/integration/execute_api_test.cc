// The unified Execute(QuerySpec) contract across all ten methods:
// epsilon = 0 is bit-identical to the legacy exact entry point, the
// (1+epsilon) guarantee holds against brute force, ng via Execute visits
// at most one leaf on every ng-capable tree, unsupported modes fall back
// with an honest delivered-mode report (never silently), delta = 1
// degenerates to plain epsilon, and budgets cap the work while voiding
// the guarantee.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/registry.h"
#include "core/distance.h"
#include "core/method.h"
#include "core/query_spec.h"
#include "gen/random_walk.h"
#include "gen/workload.h"

namespace hydra {
namespace {

constexpr size_t kCount = 2000;
constexpr size_t kLength = 128;
constexpr size_t kLeaf = 64;
constexpr size_t kK = 5;

core::Dataset TestData() { return gen::RandomWalkDataset(kCount, kLength, 7001); }
gen::Workload TestQueries() { return gen::RandWorkload(6, kLength, 7002); }

void ExpectSameAnswersAndCounters(const core::QueryResult& a,
                                  const core::QueryResult& b,
                                  const std::string& context) {
  ASSERT_EQ(a.neighbors.size(), b.neighbors.size()) << context;
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id) << context;
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a.neighbors[i].dist_sq, b.neighbors[i].dist_sq) << context;
  }
  EXPECT_EQ(a.stats.distance_computations, b.stats.distance_computations)
      << context;
  EXPECT_EQ(a.stats.raw_series_examined, b.stats.raw_series_examined)
      << context;
  EXPECT_EQ(a.stats.lower_bound_computations,
            b.stats.lower_bound_computations)
      << context;
  EXPECT_EQ(a.stats.nodes_visited, b.stats.nodes_visited) << context;
  EXPECT_EQ(a.stats.random_seeks, b.stats.random_seeks) << context;
  EXPECT_EQ(a.stats.bytes_read, b.stats.bytes_read) << context;
}

// Adaptive methods (ADS+) refine their structure during queries, so
// sequence comparisons always run on two freshly built instances fed the
// same query order.
TEST(ExecuteApi, EpsilonZeroIsBitIdenticalToLegacyExact) {
  const auto data = TestData();
  const auto w = TestQueries();
  for (const std::string& name : bench::AllMethodNames()) {
    auto legacy = bench::CreateMethod(name, kLeaf);
    auto unified = bench::CreateMethod(name, kLeaf);
    legacy->Build(data);
    unified->Build(data);
    for (size_t q = 0; q < w.queries.size(); ++q) {
      const core::QueryResult a = legacy->SearchKnn(w.queries[q], kK);
      const core::QueryResult b = unified->Execute(
          w.queries[q], core::QuerySpec::Epsilon(kK, 0.0));
      ExpectSameAnswersAndCounters(a, b,
                                   name + " q" + std::to_string(q));
      EXPECT_EQ(a.delivered(), core::QualityMode::kExact) << name;
      EXPECT_FALSE(b.budget_fired()) << name;
    }
  }
}

TEST(ExecuteApi, EpsilonGuaranteeHoldsAgainstBruteForce) {
  const auto data = TestData();
  const auto w = TestQueries();
  for (const std::string& name : bench::EpsilonCapableNames()) {
    auto method = bench::CreateMethod(name, kLeaf);
    method->Build(data);
    for (const double eps : {0.1, 1.0, 3.0}) {
      for (size_t q = 0; q < w.queries.size(); ++q) {
        const auto truth = core::BruteForceKnn(data, w.queries[q], kK);
        const double true_kth = std::sqrt(truth.back().dist_sq);
        const core::QueryResult r =
            method->Execute(w.queries[q], core::QuerySpec::Epsilon(kK, eps));
        ASSERT_EQ(r.neighbors.size(), kK)
            << name << " eps=" << eps << " q=" << q;
        EXPECT_EQ(r.delivered(), core::QualityMode::kEpsilon) << name;
        for (const auto& n : r.neighbors) {
          EXPECT_LE(std::sqrt(n.dist_sq), (1.0 + eps) * true_kth + 1e-9)
              << name << " eps=" << eps << " q=" << q;
        }
      }
    }
  }
}

// Satellite of the redesign: ng through the unified entry point still
// visits at most one leaf on every ng-capable tree method.
TEST(ExecuteApi, NgViaExecuteVisitsAtMostOneLeaf) {
  const auto data = TestData();
  const auto w = TestQueries();
  for (const std::string& name : bench::NgCapableNames()) {
    auto method = bench::CreateMethod(name, kLeaf);
    method->Build(data);
    for (size_t q = 0; q < w.queries.size(); ++q) {
      const core::QueryResult r =
          method->Execute(w.queries[q], core::QuerySpec::NgApprox(kK));
      EXPECT_LE(r.stats.nodes_visited, 1) << name;
      EXPECT_LE(r.stats.raw_series_examined,
                static_cast<int64_t>(kLeaf) + 1)
          << name;
      EXPECT_EQ(r.delivered(), core::QualityMode::kNgApprox) << name;
    }
  }
}

// The silent-exact fallback is fixed: the six methods without an ng
// descent answer an ng request exactly and *say so* in the ledger.
TEST(ExecuteApi, UnsupportedNgFallsBackToExactAndReportsIt) {
  const auto data = TestData();
  const auto w = TestQueries();
  for (const std::string name :
       {"M-tree", "R*-tree", "VA+file", "UCR-Suite", "MASS", "Stepwise"}) {
    auto method = bench::CreateMethod(name, kLeaf);
    method->Build(data);
    const auto truth = core::BruteForceKnn(data, w.queries[0], kK);
    const core::QueryResult r =
        method->Execute(w.queries[0], core::QuerySpec::NgApprox(kK));
    EXPECT_EQ(r.delivered(), core::QualityMode::kExact) << name;
    ASSERT_EQ(r.neighbors.size(), kK) << name;
    for (size_t i = 0; i < kK; ++i) {
      EXPECT_EQ(r.neighbors[i].id, truth[i].id) << name;
    }
  }
}

TEST(ExecuteApi, DeltaEpsilonFallsBackToEpsilonBeforeExact) {
  const auto data = TestData();
  const auto w = TestQueries();
  // M-tree advertises epsilon but not delta-epsilon: a delta-epsilon
  // request is answered with the stronger epsilon guarantee, reported.
  auto mtree = bench::CreateMethod("M-tree", kLeaf);
  mtree->Build(data);
  const core::QueryResult r = mtree->Execute(
      w.queries[0], core::QuerySpec::DeltaEpsilon(kK, 0.5, 0.5));
  EXPECT_EQ(r.delivered(), core::QualityMode::kEpsilon);
  // Scans have nothing but exact.
  auto scan = bench::CreateMethod("MASS", kLeaf);
  scan->Build(data);
  const core::QueryResult s = scan->Execute(
      w.queries[0], core::QuerySpec::Epsilon(kK, 0.5));
  EXPECT_EQ(s.delivered(), core::QualityMode::kExact);
}

TEST(ExecuteApi, DeltaOneIsBitIdenticalToPlainEpsilon) {
  const auto data = TestData();
  const auto w = TestQueries();
  for (const std::string& name : bench::NgCapableNames()) {
    auto eps_method = bench::CreateMethod(name, kLeaf);
    auto delta_method = bench::CreateMethod(name, kLeaf);
    eps_method->Build(data);
    delta_method->Build(data);
    for (size_t q = 0; q < w.queries.size(); ++q) {
      const core::QueryResult a = eps_method->Execute(
          w.queries[q], core::QuerySpec::Epsilon(kK, 0.5));
      const core::QueryResult b = delta_method->Execute(
          w.queries[q], core::QuerySpec::DeltaEpsilon(kK, 0.5, 1.0));
      ExpectSameAnswersAndCounters(a, b, name + " q" + std::to_string(q));
      EXPECT_EQ(b.delivered(), core::QualityMode::kDeltaEpsilon) << name;
    }
  }
}

TEST(ExecuteApi, SmallDeltaExaminesNoMoreThanFullDelta) {
  const auto data = TestData();
  const auto w = TestQueries();
  for (const std::string& name : bench::NgCapableNames()) {
    auto full = bench::CreateMethod(name, kLeaf);
    auto tiny = bench::CreateMethod(name, kLeaf);
    full->Build(data);
    tiny->Build(data);
    int64_t full_raw = 0;
    int64_t tiny_raw = 0;
    for (size_t q = 0; q < w.queries.size(); ++q) {
      full_raw += full->Execute(w.queries[q],
                                core::QuerySpec::DeltaEpsilon(kK, 0.5, 1.0))
                      .stats.raw_series_examined;
      const core::QueryResult r = tiny->Execute(
          w.queries[q], core::QuerySpec::DeltaEpsilon(kK, 0.5, 0.05));
      tiny_raw += r.stats.raw_series_examined;
      // The delta rule is part of the contract, not a budget.
      EXPECT_FALSE(r.budget_fired()) << name;
      EXPECT_EQ(r.delivered(), core::QualityMode::kDeltaEpsilon) << name;
      // Answers stay valid candidates: never better than exact.
      const auto truth = core::BruteForceKnn(data, w.queries[q], 1);
      ASSERT_FALSE(r.neighbors.empty()) << name;
      EXPECT_GE(r.neighbors[0].dist_sq, truth[0].dist_sq - 1e-9) << name;
    }
    EXPECT_LE(tiny_raw, full_raw) << name;
  }
}

// Regression for a VA+file bug the review caught: early-abandoned partial
// distances must never survive into a relaxed-mode answer. Every reported
// (id, dist_sq) pair must be the real squared distance of that series,
// under every mode and under budget truncation.
TEST(ExecuteApi, ReportedDistancesAreRealDistances) {
  const auto data = TestData();
  const auto w = TestQueries();
  std::vector<core::QuerySpec> specs = {
      core::QuerySpec::Epsilon(kK, 0.5), core::QuerySpec::Epsilon(kK, 5.0),
      core::QuerySpec::DeltaEpsilon(kK, 1.0, 0.1)};
  core::QuerySpec budgeted = core::QuerySpec::Knn(kK);
  budgeted.max_raw_series = 64;
  specs.push_back(budgeted);
  for (const std::string& name : bench::EpsilonCapableNames()) {
    auto method = bench::CreateMethod(name, kLeaf);
    method->Build(data);
    for (const core::QuerySpec& spec : specs) {
      for (size_t q = 0; q < w.queries.size(); ++q) {
        const core::QueryResult r = method->Execute(w.queries[q], spec);
        for (const auto& n : r.neighbors) {
          ASSERT_LT(n.id, data.size()) << name;
          const double true_sq =
              core::SquaredEuclidean(w.queries[q], data[n.id]);
          EXPECT_NEAR(n.dist_sq, true_sq, 1e-6 * (1.0 + true_sq))
              << name << " mode=" << core::QualityModeName(spec.mode)
              << " q=" << q;
        }
      }
    }
  }
}

TEST(ExecuteApi, RawBudgetCapsWorkAndVoidsGuarantee) {
  const auto data = TestData();
  const auto w = TestQueries();
  constexpr int64_t kRawCap = 7;
  for (const std::string& name : bench::AllMethodNames()) {
    auto method = bench::CreateMethod(name, kLeaf);
    method->Build(data);
    core::QuerySpec spec = core::QuerySpec::Knn(3);
    spec.max_raw_series = kRawCap;
    for (size_t q = 0; q < w.queries.size(); ++q) {
      const core::QueryResult r = method->Execute(w.queries[q], spec);
      EXPECT_LE(r.stats.raw_series_examined, kRawCap) << name;
      if (r.budget_fired()) {
        EXPECT_EQ(r.delivered(), core::QualityMode::kNgApprox) << name;
      }
    }
  }
  // The full scans always have more than kRawCap series left, so their
  // budget must fire.
  for (const std::string name : {"UCR-Suite", "MASS"}) {
    auto method = bench::CreateMethod(name, kLeaf);
    method->Build(data);
    core::QuerySpec spec = core::QuerySpec::Knn(3);
    spec.max_raw_series = kRawCap;
    const core::QueryResult r = method->Execute(w.queries[0], spec);
    EXPECT_TRUE(r.budget_fired()) << name;
    EXPECT_EQ(r.stats.raw_series_examined, kRawCap) << name;
  }
}

TEST(ExecuteApi, LeafBudgetCapsTreeTraversal) {
  const auto data = TestData();
  const auto w = TestQueries();
  for (const std::string name :
       {"DSTree", "iSAX2+", "SFA", "M-tree", "R*-tree"}) {
    auto capped = bench::CreateMethod(name, kLeaf);
    auto free_run = bench::CreateMethod(name, kLeaf);
    capped->Build(data);
    free_run->Build(data);
    core::QuerySpec spec = core::QuerySpec::Knn(3);
    spec.max_visited_leaves = 2;
    int64_t capped_raw = 0;
    int64_t free_raw = 0;
    bool fired_any = false;
    for (size_t q = 0; q < w.queries.size(); ++q) {
      const core::QueryResult r = capped->Execute(w.queries[q], spec);
      capped_raw += r.stats.raw_series_examined;
      fired_any = fired_any || r.budget_fired();
      free_raw += free_run->SearchKnn(w.queries[q], 3)
                      .stats.raw_series_examined;
    }
    // The capped traversal is a prefix of the free one.
    EXPECT_LE(capped_raw, free_raw) << name;
    // Exact search over 2000 random-walk series needs more than two
    // leaves on some query, so the budget must have fired (and been
    // reported) at least once.
    EXPECT_TRUE(fired_any) << name;
  }
}

TEST(ExecuteApi, RangeThroughExecuteMatchesLegacy) {
  const auto data = TestData();
  const auto w = TestQueries();
  auto method = bench::CreateMethod("DSTree", kLeaf);
  method->Build(data);
  const double radius = 10.0;
  const core::RangeResult legacy =
      method->SearchRange(w.queries[0], radius);
  const core::QueryResult unified =
      method->Execute(w.queries[0], core::QuerySpec::Range(radius));
  ASSERT_EQ(legacy.matches.size(), unified.neighbors.size());
  for (size_t i = 0; i < legacy.matches.size(); ++i) {
    EXPECT_EQ(legacy.matches[i].id, unified.neighbors[i].id);
    EXPECT_EQ(legacy.matches[i].dist_sq, unified.neighbors[i].dist_sq);
  }
  EXPECT_EQ(unified.delivered(), core::QualityMode::kExact);
}

}  // namespace
}  // namespace hydra
