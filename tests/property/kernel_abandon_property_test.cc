// Property suite for the early-abandon contract, per kernel set: an
// abandoned result is only comparable to the bound (it must exceed it,
// and the scalar reference's full distance must also exceed it outside a
// floating-point near-tie band), while a non-abandoned result must be bit
// identical to the same set's full distance. Bounds are drawn to land
// below, around, and above the true distance, including exact ties.
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/simd/kernels.h"
#include "util/rng.h"

namespace hydra::core::simd {
namespace {

const double kInf = std::numeric_limits<double>::infinity();

// Near-tie band: when |full - bound| is within this relative band, the
// lane-reassociated partial sums of a SIMD set may legitimately disagree
// with the scalar reference about whether the bound was crossed.
bool NearTie(double full, double bound) {
  return std::fabs(full - bound) <= 1e-9 * std::max(1.0, std::fabs(bound));
}

std::vector<Value> RandomSeries(size_t n, util::Rng& rng) {
  std::vector<Value> v(n);
  for (auto& x : v) x = static_cast<Value>(rng.Gaussian());
  return v;
}

class KernelAbandonProperty : public ::testing::TestWithParam<size_t> {
 protected:
  const KernelSet& set() const { return *AllKernelSets()[GetParam()]; }

  void SetUp() override {
    if (!KernelSetSupported(set())) {
      GTEST_SKIP() << "CPU cannot execute kernel set " << set().name;
    }
  }

  double DrawBound(double full, util::Rng& rng) {
    switch (rng.UniformInt(0, 4)) {
      case 0: return full;                           // exact tie
      case 1: return 0.0;                            // abandon at once
      case 2: return kInf;                           // never abandon
      default: return full * rng.Uniform(0.1, 1.5);  // around the answer
    }
  }
};

TEST_P(KernelAbandonProperty, AbandonIsBoundComparableElseExact) {
  util::Rng rng(0xAB1 + GetParam());
  const KernelSet& scalar = ScalarKernels();
  for (int iter = 0; iter < 4000; ++iter) {
    const size_t n = static_cast<size_t>(rng.UniformInt(1, 160));
    const auto a = RandomSeries(n, rng);
    const auto b = RandomSeries(n, rng);
    const double full = set().euclidean_sq(a.data(), b.data(), n);
    const double ref_full = scalar.euclidean_sq(a.data(), b.data(), n);
    const double bound = DrawBound(ref_full, rng);
    const double r =
        set().euclidean_sq_abandon(a.data(), b.data(), n, bound);
    if (r <= bound) {
      // Not abandoned: the result is the set's full distance, exactly.
      EXPECT_EQ(std::bit_cast<uint64_t>(r), std::bit_cast<uint64_t>(full))
          << set().name << " n=" << n << " bound=" << bound;
    } else {
      // Abandoned (or the full distance itself exceeds the bound): the
      // return value must stay comparable to the bound, and the decision
      // must agree with the reference outside the near-tie band.
      EXPECT_GT(r, bound) << set().name << " n=" << n;
      if (!NearTie(ref_full, bound)) {
        EXPECT_GT(ref_full, bound)
            << set().name << " abandoned although the reference distance "
            << ref_full << " is within bound " << bound << " (n=" << n << ")";
      }
    }
  }
}

TEST_P(KernelAbandonProperty, ReorderedAbandonIsBoundComparableElseExact) {
  util::Rng rng(0xAB2 + GetParam());
  const KernelSet& scalar = ScalarKernels();
  for (int iter = 0; iter < 4000; ++iter) {
    const size_t n = static_cast<size_t>(rng.UniformInt(1, 160));
    const auto q = RandomSeries(n, rng);
    const auto c = RandomSeries(n, rng);
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
      return std::fabs(q[x]) > std::fabs(q[y]);
    });
    std::vector<Value> q_ordered(n);
    for (size_t i = 0; i < n; ++i) q_ordered[i] = q[order[i]];

    const double full = set().euclidean_sq_reordered(
        q_ordered.data(), c.data(), order.data(), n, kInf);
    const double ref_full = scalar.euclidean_sq(q.data(), c.data(), n);
    const double bound = DrawBound(ref_full, rng);
    const double r = set().euclidean_sq_reordered(
        q_ordered.data(), c.data(), order.data(), n, bound);
    if (r <= bound) {
      EXPECT_EQ(std::bit_cast<uint64_t>(r), std::bit_cast<uint64_t>(full))
          << set().name << " n=" << n << " bound=" << bound;
    } else {
      EXPECT_GT(r, bound) << set().name << " n=" << n;
      if (!NearTie(ref_full, bound)) {
        EXPECT_GT(ref_full, bound)
            << set().name << " reordered abandon disagrees with the "
            << "reference distance " << ref_full << " under bound " << bound
            << " (n=" << n << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSets, KernelAbandonProperty,
    ::testing::Range(size_t{0}, AllKernelSets().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return std::string(AllKernelSets()[info.param]->name);
    });

}  // namespace
}  // namespace hydra::core::simd
