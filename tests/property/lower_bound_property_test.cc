// Property suite: the no-false-dismissals contract. For randomized series
// of every family, every summarization's lower bound must never exceed the
// true distance, and upper bounds must never fall below it. These sweeps
// are parameterized over series length and family (TEST_P).
#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "gen/realistic.h"
#include "transform/dft.h"
#include "transform/eapca.h"
#include "transform/haar.h"
#include "transform/isax.h"
#include "transform/paa.h"
#include "transform/sfa.h"
#include "transform/vaplus.h"

namespace hydra {
namespace {

using Param = std::tuple<std::string, size_t>;  // family, length

class BoundProperty : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto& [family, length] = GetParam();
    data_ = gen::MakeDataset(family, 64, length, 0xC0FFEE);
    queries_ = gen::MakeDataset(family, 16, length, 0xBEEF);
  }

  core::Dataset data_;
  core::Dataset queries_;
};

TEST_P(BoundProperty, PaaLowerBounds) {
  const size_t segments = 8;
  const size_t pps = data_.length() / segments;
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto paa_q = transform::Paa(queries_[q], segments);
    for (size_t i = 0; i < data_.size(); ++i) {
      const auto paa_c = transform::Paa(data_[i], segments);
      const double lb = transform::PaaLowerBoundSq(paa_q, paa_c, pps);
      const double d = core::SquaredEuclidean(queries_[q], data_[i]);
      ASSERT_LE(lb, d + 1e-7) << "q=" << q << " i=" << i;
    }
  }
}

TEST_P(BoundProperty, IsaxMinDistLowerBounds) {
  const size_t segments = 8;
  const size_t pps = data_.length() / segments;
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto paa_q = transform::Paa(queries_[q], segments);
    for (size_t i = 0; i < data_.size(); ++i) {
      const auto paa_c = transform::Paa(data_[i], segments);
      const auto word = transform::FullResolutionWord(paa_c);
      const double lb = transform::IsaxMinDistSq(paa_q, word, pps);
      const double d = core::SquaredEuclidean(queries_[q], data_[i]);
      ASSERT_LE(lb, d + 1e-7) << "q=" << q << " i=" << i;
    }
  }
}

TEST_P(BoundProperty, TruncatedDftLowerBounds) {
  const size_t dims =
      std::min<size_t>(16, transform::MaxPackedCoeffs(data_.length(), true));
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto dft_q = transform::PackedRealDft(queries_[q], dims, true);
    for (size_t i = 0; i < data_.size(); ++i) {
      const auto dft_c = transform::PackedRealDft(data_[i], dims, true);
      double lb = 0.0;
      for (size_t d = 0; d < dft_q.size(); ++d) {
        lb += (dft_q[d] - dft_c[d]) * (dft_q[d] - dft_c[d]);
      }
      const double dist = core::SquaredEuclidean(queries_[q], data_[i]);
      ASSERT_LE(lb, dist + 1e-7);
    }
  }
}

TEST_P(BoundProperty, SfaWordLowerBounds) {
  const size_t dims =
      std::min<size_t>(16, transform::MaxPackedCoeffs(data_.length(), true));
  std::vector<std::vector<double>> dfts;
  for (size_t i = 0; i < data_.size(); ++i) {
    dfts.push_back(transform::PackedRealDft(data_[i], dims, true));
  }
  const auto quant = transform::SfaQuantizer::Train(
      dfts, 8, transform::SfaQuantizer::Binning::kEquiDepth);
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto dft_q = transform::PackedRealDft(queries_[q], dims, true);
    for (size_t i = 0; i < data_.size(); ++i) {
      const double lb = quant.LowerBoundSq(dft_q, quant.Quantize(dfts[i]));
      const double dist = core::SquaredEuclidean(queries_[q], data_[i]);
      ASSERT_LE(lb, dist + 1e-7);
    }
  }
}

TEST_P(BoundProperty, VaPlusCellLowerBounds) {
  const size_t dims =
      std::min<size_t>(16, transform::MaxPackedCoeffs(data_.length(), true));
  std::vector<std::vector<double>> dfts;
  for (size_t i = 0; i < data_.size(); ++i) {
    dfts.push_back(transform::PackedRealDft(data_[i], dims, true));
  }
  const auto quant = transform::VaPlusQuantizer::Train(dfts, 48);
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto dft_q = transform::PackedRealDft(queries_[q], dims, true);
    for (size_t i = 0; i < data_.size(); ++i) {
      const double lb =
          quant.CellLowerBoundSq(dft_q, quant.Quantize(dfts[i]));
      const double dist = core::SquaredEuclidean(queries_[q], data_[i]);
      ASSERT_LE(lb, dist + 1e-7);
    }
  }
}

TEST_P(BoundProperty, VaPlusFullSpaceUpperBoundWithTail) {
  // The truncated cell upper bound plus the Cauchy-Schwarz tail term must
  // upper-bound the true distance (VA+file's bsf seeding relies on it).
  const size_t full = transform::MaxPackedCoeffs(data_.length(), true);
  const size_t dims = std::min<size_t>(16, full);
  std::vector<std::vector<double>> dfts;
  std::vector<double> tails;
  for (size_t i = 0; i < data_.size(); ++i) {
    const auto all = transform::PackedRealDft(data_[i], full, true);
    double tail = 0.0;
    for (size_t d = dims; d < all.size(); ++d) tail += all[d] * all[d];
    tails.push_back(tail);
    dfts.emplace_back(all.begin(), all.begin() + static_cast<long>(dims));
  }
  const auto quant = transform::VaPlusQuantizer::Train(dfts, 48);
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto all_q = transform::PackedRealDft(queries_[q], full, true);
    double q_tail = 0.0;
    for (size_t d = dims; d < all_q.size(); ++d) q_tail += all_q[d] * all_q[d];
    const std::span<const double> dft_q(all_q.data(), dims);
    for (size_t i = 0; i < data_.size(); ++i) {
      const double rt = std::sqrt(q_tail) + std::sqrt(tails[i]);
      const double ub =
          quant.CellUpperBoundSq(dft_q, quant.Quantize(dfts[i])) + rt * rt;
      const double dist = core::SquaredEuclidean(queries_[q], data_[i]);
      ASSERT_GE(ub, dist - 1e-7);
    }
  }
}

TEST_P(BoundProperty, EapcaBoundsBracket) {
  for (const size_t segments : {4u, 8u}) {
    const auto seg = transform::Segmentation::Uniform(data_.length(), segments);
    for (size_t q = 0; q < queries_.size(); ++q) {
      const auto qs = transform::ComputeEapca(queries_[q], seg);
      for (size_t i = 0; i < data_.size(); ++i) {
        const auto cs = transform::ComputeEapca(data_[i], seg);
        std::vector<transform::SegmentRange> env(segments);
        for (size_t s = 0; s < segments; ++s) env[s].Extend(cs[s], true);
        const double lb = transform::EapcaNodeLbSq(qs, env, seg);
        const double ub = transform::EapcaNodeUbSq(qs, env, seg);
        const double dist = core::SquaredEuclidean(queries_[q], data_[i]);
        ASSERT_LE(lb, dist + 1e-7);
        ASSERT_GE(ub, dist - 1e-7);
      }
    }
  }
}

TEST_P(BoundProperty, HaarResidualUpperBound) {
  // Stepwise's upper bound: partial distance + (sqrt(Eq) + sqrt(Ec))^2.
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto hq = transform::HaarTransform(queries_[q]);
    for (size_t i = 0; i < data_.size(); ++i) {
      const auto hc = transform::HaarTransform(data_[i]);
      const double dist = core::SquaredEuclidean(queries_[q], data_[i]);
      double partial = 0.0;
      double eq = 0.0;
      double ec = 0.0;
      for (const double v : hq) eq += v * v;
      for (const double v : hc) ec += v * v;
      for (size_t d = 0; d < hq.size(); ++d) {
        const double step = (hq[d] - hc[d]) * (hq[d] - hc[d]);
        // Check at every prefix length.
        const double rq = std::sqrt(eq);
        const double rc = std::sqrt(ec);
        ASSERT_GE(partial + (rq + rc) * (rq + rc), dist - 1e-6);
        partial += step;
        eq = std::max(0.0, eq - hq[d] * hq[d]);
        ec = std::max(0.0, ec - hc[d] * hc[d]);
      }
      ASSERT_NEAR(partial, dist, 1e-6 * std::max(1.0, dist));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndLengths, BoundProperty,
    ::testing::Combine(::testing::Values("synth", "seismic", "astro", "sald",
                                         "deep"),
                       ::testing::Values(64u, 96u, 128u)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::get<0>(info.param) + "_len" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace hydra
