// Properties of the scan/multi-step methods beyond plain exactness:
// Stepwise pruning soundness across noise levels, MASS's Fourier-domain
// distances, and the scans' insensitivity to data order.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/method.h"
#include "gen/random_walk.h"
#include "gen/workload.h"
#include "scan/mass_scan.h"
#include "scan/stepwise.h"
#include "scan/ucr_scan.h"

namespace hydra {
namespace {

class ScanProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(ScanProperty, StepwiseExactAtAnyRefineDepth) {
  const size_t length = GetParam();
  const auto data = gen::RandomWalkDataset(1200, length, 91);
  const auto w = gen::RandWorkload(5, length, 92);
  for (const int refine_levels : {0, 1, 3}) {
    scan::Stepwise method(refine_levels);
    method.Build(data);
    for (size_t q = 0; q < w.queries.size(); ++q) {
      const auto expected = core::BruteForceKnn(data, w.queries[q], 1);
      const auto got = method.SearchKnn(w.queries[q], 1);
      ASSERT_EQ(got.neighbors.size(), 1u);
      EXPECT_NEAR(got.neighbors[0].dist_sq, expected[0].dist_sq,
                  1e-5 * std::max(1.0, expected[0].dist_sq))
          << "refine_levels=" << refine_levels << " len=" << length;
    }
  }
}

TEST_P(ScanProperty, StepwisePrunesEasyQueries) {
  const size_t length = GetParam();
  const auto data = gen::RandomWalkDataset(2000, length, 93);
  const auto easy = gen::CtrlWorkload(data, 5, 94, 0.02, 0.02);
  scan::Stepwise method;
  method.Build(data);
  for (size_t q = 0; q < easy.queries.size(); ++q) {
    const auto result = method.SearchKnn(easy.queries[q], 1);
    EXPECT_LT(result.stats.raw_series_examined,
              static_cast<int64_t>(data.size()) / 2)
        << "multi-step filtering failed to prune an easy query";
  }
}

TEST_P(ScanProperty, MassMatchesDirectDistances) {
  const size_t length = GetParam();
  const auto data = gen::RandomWalkDataset(300, length, 95);
  const auto w = gen::RandWorkload(3, length, 96);
  scan::MassScan mass;
  mass.Build(data);
  for (size_t q = 0; q < w.queries.size(); ++q) {
    const auto got = mass.SearchKnn(w.queries[q], 3);
    const auto expected = core::BruteForceKnn(data, w.queries[q], 3);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(got.neighbors[i].dist_sq, expected[i].dist_sq,
                  1e-5 * std::max(1.0, expected[i].dist_sq));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, ScanProperty,
                         ::testing::Values(64u, 96u, 256u),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "len" + std::to_string(info.param);
                         });

TEST(ScanOrderInvariance, UcrResultUnaffectedByDataOrder) {
  const auto data = gen::RandomWalkDataset(500, 64, 97);
  core::Dataset shuffled("shuffled", 64);
  std::vector<size_t> perm(data.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = (i * 131) % data.size();
  std::sort(perm.begin(), perm.end());
  perm.erase(std::unique(perm.begin(), perm.end()), perm.end());
  // Build a rotation instead: deterministic permutation of all ids.
  shuffled.Reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    shuffled.Append(data[(i + 257) % data.size()]);
  }
  const auto w = gen::RandWorkload(3, 64, 98);
  scan::UcrScan a;
  scan::UcrScan b;
  a.Build(data);
  b.Build(shuffled);
  for (size_t q = 0; q < w.queries.size(); ++q) {
    const auto ra = a.SearchKnn(w.queries[q], 1);
    const auto rb = b.SearchKnn(w.queries[q], 1);
    EXPECT_NEAR(ra.neighbors[0].dist_sq, rb.neighbors[0].dist_sq, 1e-9);
  }
}

TEST(ScanCpuCharacter, MassIsCpuHeavierThanUcr) {
  // The paper's finding: the MASS adaptation spends far more CPU than the
  // plain optimized scan.
  const auto data = gen::RandomWalkDataset(800, 128, 99);
  const auto w = gen::RandWorkload(3, 128, 100);
  scan::UcrScan ucr;
  scan::MassScan mass;
  ucr.Build(data);
  mass.Build(data);
  double ucr_cpu = 0.0;
  double mass_cpu = 0.0;
  for (size_t q = 0; q < w.queries.size(); ++q) {
    ucr_cpu += ucr.SearchKnn(w.queries[q], 1).stats.cpu_seconds;
    mass_cpu += mass.SearchKnn(w.queries[q], 1).stats.cpu_seconds;
  }
  EXPECT_GT(mass_cpu, ucr_cpu);
}

}  // namespace
}  // namespace hydra
