// Pruning-soundness property, per kernel set: with each set forced as the
// active dispatch target, every summarization's lower bound — computed
// through the real transform pipeline exactly as the indexes compute it —
// must still lower-bound the scalar-reference raw distance. A SIMD kernel
// that over-estimates a bound would silently prune true neighbors; this
// suite is the tripwire.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/simd/kernels.h"
#include "gen/realistic.h"
#include "transform/dft.h"
#include "transform/eapca.h"
#include "transform/isax.h"
#include "transform/paa.h"
#include "transform/sfa.h"
#include "transform/vaplus.h"

namespace hydra {
namespace {

// Restores the process-wide kernel selection even when a test fails.
class KernelGuard {
 public:
  KernelGuard() : prior_(&core::simd::ActiveKernels()) {}
  ~KernelGuard() { (void)core::simd::UseKernels(prior_->name); }

 private:
  const core::simd::KernelSet* prior_;
};

class KernelPruningSoundness : public ::testing::TestWithParam<size_t> {
 protected:
  const core::simd::KernelSet& set() const {
    return *core::simd::AllKernelSets()[GetParam()];
  }

  void SetUp() override {
    if (!core::simd::KernelSetSupported(set())) {
      GTEST_SKIP() << "CPU cannot execute kernel set " << set().name;
    }
    guard_ = std::make_unique<KernelGuard>();
    ASSERT_TRUE(core::simd::UseKernels(set().name).ok());
    data_ = gen::MakeDataset("seismic", 48, 128, 0x5EED);
    queries_ = gen::MakeDataset("synth", 8, 128, 0xFACE);
  }

  void TearDown() override { guard_.reset(); }

  // The ground truth deliberately bypasses dispatch: the scalar reference
  // is the contract's fixed point.
  double RefDistance(core::SeriesView a, core::SeriesView b) const {
    return core::simd::ScalarKernels().euclidean_sq(a.data(), b.data(),
                                                    a.size());
  }

  std::unique_ptr<KernelGuard> guard_;
  core::Dataset data_;
  core::Dataset queries_;
};

TEST_P(KernelPruningSoundness, PaaAndIsaxBoundsNeverOverestimate) {
  const size_t segments = 8;
  const size_t pps = data_.length() / segments;
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto paa_q = transform::Paa(queries_[q], segments);
    for (size_t i = 0; i < data_.size(); ++i) {
      const auto paa_c = transform::Paa(data_[i], segments);
      const auto word = transform::FullResolutionWord(paa_c);
      const double d = RefDistance(queries_[q], data_[i]);
      ASSERT_LE(transform::PaaLowerBoundSq(paa_q, paa_c, pps), d + 1e-7)
          << set().name << " q=" << q << " i=" << i;
      ASSERT_LE(transform::IsaxMinDistSq(paa_q, word, pps), d + 1e-7)
          << set().name << " q=" << q << " i=" << i;
    }
  }
}

TEST_P(KernelPruningSoundness, SfaWordBoundNeverOverestimates) {
  const size_t dims = 16;
  std::vector<std::vector<double>> dfts;
  for (size_t i = 0; i < data_.size(); ++i) {
    dfts.push_back(transform::PackedRealDft(data_[i], dims, true));
  }
  const auto quant = transform::SfaQuantizer::Train(
      dfts, 8, transform::SfaQuantizer::Binning::kEquiDepth);
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto dft_q = transform::PackedRealDft(queries_[q], dims, true);
    for (size_t i = 0; i < data_.size(); ++i) {
      const double lb = quant.LowerBoundSq(dft_q, quant.Quantize(dfts[i]));
      ASSERT_LE(lb, RefDistance(queries_[q], data_[i]) + 1e-7)
          << set().name << " q=" << q << " i=" << i;
    }
  }
}

TEST_P(KernelPruningSoundness, VaPlusCellBoundNeverOverestimates) {
  const size_t dims = 16;
  std::vector<std::vector<double>> dfts;
  for (size_t i = 0; i < data_.size(); ++i) {
    dfts.push_back(transform::PackedRealDft(data_[i], dims, true));
  }
  const auto quant = transform::VaPlusQuantizer::Train(dfts, 48);
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto dft_q = transform::PackedRealDft(queries_[q], dims, true);
    for (size_t i = 0; i < data_.size(); ++i) {
      const double lb = quant.CellLowerBoundSq(dft_q, quant.Quantize(dfts[i]));
      ASSERT_LE(lb, RefDistance(queries_[q], data_[i]) + 1e-7)
          << set().name << " q=" << q << " i=" << i;
    }
  }
}

TEST_P(KernelPruningSoundness, EapcaNodeBoundNeverOverestimates) {
  for (const size_t segments : {5u, 8u}) {
    const auto seg = transform::Segmentation::Uniform(data_.length(), segments);
    for (size_t q = 0; q < queries_.size(); ++q) {
      const auto qs = transform::ComputeEapca(queries_[q], seg);
      for (size_t i = 0; i < data_.size(); ++i) {
        const auto cs = transform::ComputeEapca(data_[i], seg);
        std::vector<transform::SegmentRange> env(segments);
        for (size_t s = 0; s < segments; ++s) env[s].Extend(cs[s], true);
        const double lb = transform::EapcaNodeLbSq(qs, env, seg);
        ASSERT_LE(lb, RefDistance(queries_[q], data_[i]) + 1e-7)
            << set().name << " segments=" << segments << " q=" << q
            << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSets, KernelPruningSoundness,
    ::testing::Range(size_t{0}, core::simd::AllKernelSets().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return std::string(core::simd::AllKernelSets()[info.param]->name);
    });

}  // namespace
}  // namespace hydra
