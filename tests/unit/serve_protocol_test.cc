// The serve wire-protocol contract: frames and typed payloads round-trip
// bit-exactly; every corruption class — flipped CRC byte, truncated frame,
// oversized length field, foreign magic, future version, unknown frame
// type, garbled payloads — surfaces as a clean decoder error (the material
// of an error *frame* on the wire), never a crash or over-read.
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/method.h"
#include "core/query_spec.h"
#include "serve/protocol.h"

namespace hydra::serve {
namespace {

using core::QualityMode;
using core::QueryKind;

Frame MakeQueryFrame() {
  QueryRequest request;
  request.spec = core::QuerySpec::Knn(5);
  request.query = {1.0f, -2.5f, 3.25f, 0.0f};
  return Frame{FrameType::kQuery, EncodeQueryRequest(request)};
}

// Overwrites the encoded stream with `frame` decoded through a fresh
// decoder, returning the Pop outcome.
FrameDecoder::Next DecodeAll(const std::string& bytes, Frame* out,
                             FrameDecoder* decoder) {
  decoder->Feed(bytes.data(), bytes.size());
  return decoder->Pop(out);
}

TEST(ServeProtocolTest, FrameRoundTrip) {
  const Frame sent = MakeQueryFrame();
  const std::string wire = EncodeFrame(sent);

  FrameDecoder decoder;
  Frame received;
  ASSERT_EQ(DecodeAll(wire, &received, &decoder), FrameDecoder::Next::kFrame);
  EXPECT_EQ(received.type, FrameType::kQuery);
  EXPECT_EQ(received.payload, sent.payload);
  // The stream is fully consumed: no phantom second frame.
  EXPECT_EQ(decoder.Pop(&received), FrameDecoder::Next::kNeedMore);
}

TEST(ServeProtocolTest, ByteAtATimeFeedStillFrames) {
  const Frame sent = MakeQueryFrame();
  const std::string wire = EncodeFrame(sent);

  FrameDecoder decoder;
  Frame received;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Feed(wire.data() + i, 1);
    ASSERT_EQ(decoder.Pop(&received), FrameDecoder::Next::kNeedMore)
        << "framed early at byte " << i;
  }
  decoder.Feed(wire.data() + wire.size() - 1, 1);
  ASSERT_EQ(decoder.Pop(&received), FrameDecoder::Next::kFrame);
  EXPECT_EQ(received.payload, sent.payload);
}

TEST(ServeProtocolTest, BackToBackFramesPopIndividually) {
  const Frame ping{FrameType::kPing, ""};
  const Frame query = MakeQueryFrame();
  const std::string wire = EncodeFrame(ping) + EncodeFrame(query);

  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  Frame first, second, third;
  ASSERT_EQ(decoder.Pop(&first), FrameDecoder::Next::kFrame);
  EXPECT_EQ(first.type, FrameType::kPing);
  ASSERT_EQ(decoder.Pop(&second), FrameDecoder::Next::kFrame);
  EXPECT_EQ(second.type, FrameType::kQuery);
  EXPECT_EQ(second.payload, query.payload);
  EXPECT_EQ(decoder.Pop(&third), FrameDecoder::Next::kNeedMore);
}

TEST(ServeProtocolTest, CrcFlipIsMalformed) {
  std::string wire = EncodeFrame(MakeQueryFrame());
  wire.back() ^= 0x01;  // trailing CRC byte

  FrameDecoder decoder;
  Frame frame;
  ASSERT_EQ(DecodeAll(wire, &frame, &decoder), FrameDecoder::Next::kError);
  EXPECT_EQ(decoder.error_code(), ErrorCode::kMalformed);
  EXPECT_NE(decoder.error().find("CRC"), std::string::npos);
  // Sticky: the decoder stays failed even when fed more valid bytes.
  const std::string more = EncodeFrame(Frame{FrameType::kPing, ""});
  decoder.Feed(more.data(), more.size());
  EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kError);
}

TEST(ServeProtocolTest, PayloadFlipIsMalformed) {
  std::string wire = EncodeFrame(MakeQueryFrame());
  wire[wire.size() / 2] ^= 0x40;  // somewhere inside the payload

  FrameDecoder decoder;
  Frame frame;
  ASSERT_EQ(DecodeAll(wire, &frame, &decoder), FrameDecoder::Next::kError);
  EXPECT_EQ(decoder.error_code(), ErrorCode::kMalformed);
}

TEST(ServeProtocolTest, TruncatedFrameNeedsMoreNeverErrors) {
  const std::string wire = EncodeFrame(MakeQueryFrame());
  // Every proper prefix is just an incomplete stream — the peer may still
  // be sending — so the decoder reports kNeedMore, not an error.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(wire.data(), cut);
    Frame frame;
    EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(ServeProtocolTest, OversizedLengthGuard) {
  // Hand-build a header whose size field claims 4 GiB-ish; the decoder
  // must refuse at the header, before any allocation, even though far
  // fewer bytes than the claimed payload ever arrive.
  std::string wire;
  auto put_u32 = [&wire](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      wire.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  put_u32(kFrameMagic);
  put_u32(kProtocolVersion);
  wire.push_back(static_cast<char>(FrameType::kPing));
  put_u32(std::numeric_limits<uint32_t>::max());

  FrameDecoder decoder;
  Frame frame;
  ASSERT_EQ(DecodeAll(wire, &frame, &decoder), FrameDecoder::Next::kError);
  EXPECT_EQ(decoder.error_code(), ErrorCode::kMalformed);
  EXPECT_NE(decoder.error().find("cap"), std::string::npos);
}

TEST(ServeProtocolTest, UnknownVersionIsVersionError) {
  std::string wire = EncodeFrame(Frame{FrameType::kPing, ""});
  wire[4] = static_cast<char>(kProtocolVersion + 1);  // version field LSB

  FrameDecoder decoder;
  Frame frame;
  ASSERT_EQ(DecodeAll(wire, &frame, &decoder), FrameDecoder::Next::kError);
  EXPECT_EQ(decoder.error_code(), ErrorCode::kUnsupportedVersion);
}

TEST(ServeProtocolTest, ForeignMagicIsMalformed) {
  std::string wire = EncodeFrame(Frame{FrameType::kPing, ""});
  wire[0] = 'G';  // "GET ..." — an HTTP client knocking

  FrameDecoder decoder;
  Frame frame;
  ASSERT_EQ(DecodeAll(wire, &frame, &decoder), FrameDecoder::Next::kError);
  EXPECT_EQ(decoder.error_code(), ErrorCode::kMalformed);
}

TEST(ServeProtocolTest, UnknownFrameTypeIsMalformed) {
  std::string wire = EncodeFrame(Frame{FrameType::kPing, ""});
  wire[8] = static_cast<char>(99);  // type field

  FrameDecoder decoder;
  Frame frame;
  ASSERT_EQ(DecodeAll(wire, &frame, &decoder), FrameDecoder::Next::kError);
  EXPECT_EQ(decoder.error_code(), ErrorCode::kMalformed);
}

TEST(ServeProtocolTest, QueryRequestRoundTrip) {
  QueryRequest sent;
  sent.spec = core::QuerySpec::DeltaEpsilon(7, 0.25, 0.5);
  sent.spec.max_raw_series = 123;
  sent.query = {0.5f, -1.5f, 2.0f};
  sent.request_id = 0xFEEDBEEFu;

  QueryRequest received;
  ASSERT_TRUE(
      DecodeQueryRequest(EncodeQueryRequest(sent), &received).ok());
  EXPECT_EQ(received.spec.kind, QueryKind::kKnn);
  EXPECT_EQ(received.spec.k, 7u);
  EXPECT_EQ(received.spec.mode, QualityMode::kDeltaEpsilon);
  EXPECT_EQ(received.spec.epsilon, 0.25);
  EXPECT_EQ(received.spec.delta, 0.5);
  EXPECT_EQ(received.spec.max_raw_series, 123);
  // Traversal width is server policy, never client input.
  EXPECT_EQ(received.spec.query_threads, 1u);
  EXPECT_EQ(received.query, sent.query);
  // The trace-propagation id survives the wire (protocol v2).
  EXPECT_EQ(received.request_id, 0xFEEDBEEFu);
}

TEST(ServeProtocolTest, QueryRequestGarbageRejected) {
  QueryRequest out;
  // Truncated, trailing bytes, lying vector length, bad kind/mode bytes.
  EXPECT_FALSE(DecodeQueryRequest("", &out).ok());
  EXPECT_FALSE(DecodeQueryRequest("abc", &out).ok());
  std::string valid = EncodeQueryRequest(
      QueryRequest{core::QuerySpec::Knn(1), {1.0f, 2.0f}});
  EXPECT_FALSE(DecodeQueryRequest(valid + "x", &out).ok());
  std::string bad_kind = valid;
  bad_kind[0] = 9;
  EXPECT_FALSE(DecodeQueryRequest(bad_kind, &out).ok());
  std::string bad_mode = valid;
  bad_mode[17] = 9;  // mode byte: after kind(1) + k(8) + radius(8)
  EXPECT_FALSE(DecodeQueryRequest(bad_mode, &out).ok());
  std::string lying_count = valid;
  // Vector count field: after kind(1)+k(8)+radius(8)+mode(1)+eps(8)+
  // delta(8)+leaves(8)+raw(8)+request_id(8) = offset 58; claim 200
  // floats with 8 bytes of data behind it.
  lying_count[58] = static_cast<char>(200);
  EXPECT_FALSE(DecodeQueryRequest(lying_count, &out).ok());
}

TEST(ServeProtocolTest, AnswerResponseRoundTrip) {
  AnswerResponse sent;
  sent.cached = true;
  sent.result.neighbors = {{3, 0.25}, {11, 1.5}, {7, 2.75}};
  sent.result.stats.distance_computations = 42;
  sent.result.stats.raw_series_examined = 17;
  sent.result.stats.random_seeks = 5;
  sent.result.stats.cpu_seconds = 0.125;
  sent.result.stats.answer_mode_delivered = QualityMode::kEpsilon;
  sent.result.stats.budget_exhausted = true;

  AnswerResponse received;
  ASSERT_TRUE(
      DecodeAnswerResponse(EncodeAnswerResponse(sent), &received).ok());
  EXPECT_TRUE(received.cached);
  ASSERT_EQ(received.result.neighbors.size(), 3u);
  EXPECT_EQ(received.result.neighbors[1].id, 11u);
  EXPECT_EQ(received.result.neighbors[1].dist_sq, 1.5);
  EXPECT_EQ(received.result.stats.distance_computations, 42);
  EXPECT_EQ(received.result.stats.raw_series_examined, 17);
  EXPECT_EQ(received.result.stats.random_seeks, 5);
  EXPECT_EQ(received.result.stats.cpu_seconds, 0.125);
  EXPECT_EQ(received.result.delivered(), QualityMode::kEpsilon);
  EXPECT_TRUE(received.result.budget_fired());
}

TEST(ServeProtocolTest, AnswerResponseGarbageRejected) {
  AnswerResponse out;
  EXPECT_FALSE(DecodeAnswerResponse("", &out).ok());
  std::string valid = EncodeAnswerResponse(AnswerResponse{});
  EXPECT_FALSE(DecodeAnswerResponse(valid + "zz", &out).ok());
  std::string lying = valid;
  lying[1] = static_cast<char>(255);  // neighbor count with no bytes behind
  EXPECT_FALSE(DecodeAnswerResponse(lying, &out).ok());
}

TEST(ServeProtocolTest, ErrorAndStatsResponsesRoundTrip) {
  const ErrorResponse sent{ErrorCode::kResourceExhausted,
                           "in-flight queue full"};
  ErrorResponse received;
  ASSERT_TRUE(
      DecodeErrorResponse(EncodeErrorResponse(sent), &received).ok());
  EXPECT_EQ(received.code, ErrorCode::kResourceExhausted);
  EXPECT_EQ(received.message, "in-flight queue full");

  std::string json;
  ASSERT_TRUE(
      DecodeStatsResponse(EncodeStatsResponse("{\"qps\":1}"), &json).ok());
  EXPECT_EQ(json, "{\"qps\":1}");

  ErrorResponse bad;
  EXPECT_FALSE(DecodeErrorResponse("", &bad).ok());
  std::string bad_code = EncodeErrorResponse(sent);
  bad_code[0] = static_cast<char>(99);
  EXPECT_FALSE(DecodeErrorResponse(bad_code, &bad).ok());
}

TEST(ServeProtocolTest, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kMalformed), "malformed");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kUnsupportedVersion),
               "unsupported-version");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kResourceExhausted),
               "resource-exhausted");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kBadQuery), "bad-query");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kInternal), "internal");
}

core::MethodTraits TreeTraits() {
  core::MethodTraits traits;
  traits.supports_ng = true;
  traits.supports_epsilon = true;
  traits.supports_delta_epsilon = true;
  traits.leaf_visit_budget = true;
  return traits;
}

TEST(ServeProtocolTest, ValidateRequestAcceptsSupportedSpecs) {
  QueryRequest request;
  request.spec = core::QuerySpec::Knn(3);
  request.query = {1.0f, 2.0f, 3.0f, 4.0f};
  EXPECT_TRUE(ValidateRequest(request, TreeTraits(), 4).ok());

  request.spec = core::QuerySpec::Range(1.5);
  EXPECT_TRUE(ValidateRequest(request, TreeTraits(), 4).ok());

  request.spec = core::QuerySpec::Epsilon(3, 0.5);
  request.spec.max_visited_leaves = 10;
  EXPECT_TRUE(ValidateRequest(request, TreeTraits(), 4).ok());
}

TEST(ServeProtocolTest, ValidateRequestRefusesBadSpecs) {
  const core::MethodTraits tree = TreeTraits();
  QueryRequest request;
  request.query = {1.0f, 2.0f, 3.0f, 4.0f};

  request.spec = core::QuerySpec::Knn(3);
  // Wrong query length for the collection.
  EXPECT_FALSE(ValidateRequest(request, tree, 8).ok());
  // Non-finite query values.
  QueryRequest inf_request = request;
  inf_request.query[2] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(ValidateRequest(inf_request, tree, 4).ok());
  // k == 0.
  request.spec.k = 0;
  EXPECT_FALSE(ValidateRequest(request, tree, 4).ok());
  // Negative radius / approximate or budgeted range queries.
  request.spec = core::QuerySpec::Range(-1.0);
  EXPECT_FALSE(ValidateRequest(request, tree, 4).ok());
  request.spec = core::QuerySpec::Range(1.0);
  request.spec.mode = QualityMode::kEpsilon;
  EXPECT_FALSE(ValidateRequest(request, tree, 4).ok());
  request.spec = core::QuerySpec::Range(1.0);
  request.spec.max_raw_series = 5;
  EXPECT_FALSE(ValidateRequest(request, tree, 4).ok());
  // delta outside (0, 1]; negative budgets; ng + budget.
  request.spec = core::QuerySpec::DeltaEpsilon(3, 0.1, 0.0);
  EXPECT_FALSE(ValidateRequest(request, tree, 4).ok());
  request.spec = core::QuerySpec::Knn(3);
  request.spec.max_raw_series = -1;
  EXPECT_FALSE(ValidateRequest(request, tree, 4).ok());
  request.spec = core::QuerySpec::NgApprox(3);
  request.spec.max_raw_series = 10;
  EXPECT_FALSE(ValidateRequest(request, tree, 4).ok());
}

TEST(ServeProtocolTest, ValidateRequestHonorsTraits) {
  // An exact-only scan: approximate modes and leaf budgets are refused
  // with a reason, mirroring the CLI's honest-refusal contract.
  core::MethodTraits scan;
  QueryRequest request;
  request.query = {1.0f, 2.0f, 3.0f, 4.0f};

  request.spec = core::QuerySpec::NgApprox(3);
  const util::Status ng = ValidateRequest(request, scan, 4);
  EXPECT_FALSE(ng.ok());
  EXPECT_NE(ng.message().find("does not support mode"), std::string::npos);

  request.spec = core::QuerySpec::Knn(3);
  request.spec.max_visited_leaves = 10;
  const util::Status leaves = ValidateRequest(request, scan, 4);
  EXPECT_FALSE(leaves.ok());
  EXPECT_NE(leaves.message().find("max_raw_series"), std::string::npos);
}

}  // namespace
}  // namespace hydra::serve
