#include <set>

#include <gtest/gtest.h>

#include "gen/random_walk.h"
#include "index/isax_tree.h"
#include "transform/paa.h"

namespace hydra::index {
namespace {

class IsaxTreeTest : public ::testing::Test {
 protected:
  void BuildWords(const core::Dataset& data, size_t segments) {
    words_.resize(data.size() * segments);
    for (size_t i = 0; i < data.size(); ++i) {
      const auto paa = transform::Paa(data[i], segments);
      for (size_t s = 0; s < segments; ++s) {
        words_[i * segments + s] =
            transform::SaxSymbol(paa[s], transform::kMaxSaxBits);
      }
    }
  }

  std::vector<uint8_t> words_;
};

TEST_F(IsaxTreeTest, AllSeriesLandInExactlyOneLeaf) {
  const auto data = gen::RandomWalkDataset(2000, 64, 71);
  const size_t segments = 8;
  BuildWords(data, segments);
  IsaxTree tree({segments, 50}, words_.data());
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<core::SeriesId>(i));
  }
  std::multiset<core::SeriesId> seen;
  tree.ForEachNode([&](const IsaxTree::Node& node) {
    if (node.is_leaf) {
      for (const auto id : node.ids) seen.insert(id);
    }
  });
  EXPECT_EQ(seen.size(), data.size());
  for (core::SeriesId i = 0; i < data.size(); ++i) {
    EXPECT_EQ(seen.count(i), 1u) << "series " << i;
  }
}

TEST_F(IsaxTreeTest, LeafWordsCoverTheirMembers) {
  const auto data = gen::RandomWalkDataset(1000, 64, 72);
  const size_t segments = 8;
  BuildWords(data, segments);
  IsaxTree tree({segments, 30}, words_.data());
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<core::SeriesId>(i));
  }
  tree.ForEachNode([&](const IsaxTree::Node& node) {
    if (!node.is_leaf) return;
    for (const auto id : node.ids) {
      transform::IsaxWord full;
      full.symbols.assign(words_.begin() + id * segments,
                          words_.begin() + (id + 1) * segments);
      full.bits.assign(segments,
                       static_cast<uint8_t>(transform::kMaxSaxBits));
      EXPECT_TRUE(transform::WordCovers(node.word, full));
    }
  });
}

TEST_F(IsaxTreeTest, ApproximateLeafFindsMemberLeaf) {
  const auto data = gen::RandomWalkDataset(500, 64, 73);
  const size_t segments = 8;
  BuildWords(data, segments);
  IsaxTree tree({segments, 20}, words_.data());
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<core::SeriesId>(i));
  }
  for (core::SeriesId i = 0; i < 100; ++i) {
    const auto paa = transform::Paa(data[i], segments);
    IsaxTree::Node* leaf = tree.ApproximateLeaf(
        {words_.data() + i * segments, segments}, paa, 64 / segments);
    ASSERT_NE(leaf, nullptr);
    EXPECT_TRUE(leaf->is_leaf);
    // The series must be in this leaf (it was routed the same way).
    bool found = false;
    for (const auto id : leaf->ids) found |= (id == i);
    EXPECT_TRUE(found) << "series " << i;
  }
}

TEST_F(IsaxTreeTest, ApproximateLeafHandlesUnseenRegion) {
  // A query whose first-level word was never created must still land in a
  // non-empty leaf (fallback by MINDIST).
  const auto data = gen::RandomWalkDataset(50, 64, 173);
  const size_t segments = 8;
  BuildWords(data, segments);
  IsaxTree tree({segments, 20}, words_.data());
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<core::SeriesId>(i));
  }
  // An adversarial word: alternating extreme symbols.
  std::vector<uint8_t> probe(segments);
  std::vector<double> paa(segments);
  for (size_t s = 0; s < segments; ++s) {
    probe[s] = (s % 2 == 0) ? 255 : 0;
    paa[s] = (s % 2 == 0) ? 4.0 : -4.0;
  }
  IsaxTree::Node* leaf = tree.ApproximateLeaf(probe, paa, 64 / segments);
  ASSERT_NE(leaf, nullptr);
  EXPECT_FALSE(leaf->ids.empty());
}

TEST_F(IsaxTreeTest, LeavesRespectCapacityWhereSplittable) {
  const auto data = gen::RandomWalkDataset(3000, 64, 74);
  const size_t segments = 8;
  const size_t capacity = 40;
  BuildWords(data, segments);
  IsaxTree tree({segments, capacity}, words_.data());
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<core::SeriesId>(i));
  }
  tree.ForEachNode([&](const IsaxTree::Node& node) {
    if (!node.is_leaf) return;
    bool splittable = false;
    for (const auto bits : node.word.bits) {
      splittable |= bits < transform::kMaxSaxBits;
    }
    if (splittable) {
      EXPECT_LE(node.size(), capacity);
    }
  });
}

TEST_F(IsaxTreeTest, FootprintCountsConsistent) {
  const auto data = gen::RandomWalkDataset(1000, 64, 75);
  const size_t segments = 8;
  BuildWords(data, segments);
  IsaxTree tree({segments, 100}, words_.data());
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<core::SeriesId>(i));
  }
  const core::Footprint fp = tree.StructureFootprint();
  EXPECT_GE(fp.total_nodes, fp.leaf_nodes);
  EXPECT_EQ(fp.leaf_fill_fractions.size(),
            static_cast<size_t>(fp.leaf_nodes));
  EXPECT_EQ(fp.leaf_depths.size(), static_cast<size_t>(fp.leaf_nodes));
  // Every split turns one leaf into an internal node with two children, so
  // internal nodes = leaves - (first-level subtrees).
  const int64_t internals = fp.total_nodes - fp.leaf_nodes;
  EXPECT_LT(internals, fp.leaf_nodes);
}

TEST_F(IsaxTreeTest, SplitLeafCreatesTwoChildren) {
  const auto data = gen::RandomWalkDataset(100, 64, 76);
  const size_t segments = 8;
  BuildWords(data, segments);
  IsaxTree tree({segments, 1000}, words_.data());
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<core::SeriesId>(i));
  }
  // Find the biggest first-level leaf and split it by hand.
  IsaxTree::Node* target = nullptr;
  size_t best = 0;
  tree.ForEachNode([&](const IsaxTree::Node& node) {
    if (node.is_leaf && node.size() > best) {
      best = node.size();
      target = const_cast<IsaxTree::Node*>(&node);
    }
  });
  ASSERT_NE(target, nullptr);
  ASSERT_GE(best, 2u);
  tree.SplitLeaf(target);
  EXPECT_FALSE(target->is_leaf);
  EXPECT_EQ(target->child0->size() + target->child1->size(), best);
}

}  // namespace
}  // namespace hydra::index
