#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "transform/dft.h"
#include "transform/kmeans1d.h"
#include "transform/sfa.h"
#include "transform/vaplus.h"
#include "util/rng.h"

namespace hydra::transform {
namespace {

TEST(Kmeans1d, SeparatesWellSeparatedClusters) {
  std::vector<double> values;
  util::Rng rng(51);
  for (int i = 0; i < 100; ++i) values.push_back(rng.Gaussian(-10.0, 0.1));
  for (int i = 0; i < 100; ++i) values.push_back(rng.Gaussian(10.0, 0.1));
  const auto result = Kmeans1d(values, 2);
  ASSERT_EQ(result.centroids.size(), 2u);
  EXPECT_NEAR(result.centroids[0], -10.0, 0.2);
  EXPECT_NEAR(result.centroids[1], 10.0, 0.2);
  ASSERT_EQ(result.boundaries.size(), 1u);
  EXPECT_NEAR(result.boundaries[0], 0.0, 0.5);
}

TEST(Kmeans1d, CentroidsSortedAndBoundariesBetween) {
  util::Rng rng(52);
  std::vector<double> values(500);
  for (auto& v : values) v = rng.Gaussian();
  const auto result = Kmeans1d(values, 8);
  EXPECT_TRUE(std::is_sorted(result.centroids.begin(),
                             result.centroids.end()));
  for (size_t c = 0; c + 1 < result.centroids.size(); ++c) {
    EXPECT_GE(result.boundaries[c], result.centroids[c]);
    EXPECT_LE(result.boundaries[c], result.centroids[c + 1]);
  }
}

TEST(Kmeans1d, SingleCluster) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  const auto result = Kmeans1d(values, 1);
  ASSERT_EQ(result.centroids.size(), 1u);
  EXPECT_DOUBLE_EQ(result.centroids[0], 2.0);
  EXPECT_TRUE(result.boundaries.empty());
}

TEST(Kmeans1d, DegenerateDuplicateData) {
  const std::vector<double> values(100, 5.0);
  const auto result = Kmeans1d(values, 4);
  EXPECT_EQ(result.centroids.size(), 4u);  // no crash, stable output
}

std::vector<std::vector<double>> RandomDfts(util::Rng* rng, size_t count,
                                            size_t dims) {
  std::vector<std::vector<double>> dfts(count, std::vector<double>(dims));
  for (auto& row : dfts) {
    for (size_t d = 0; d < dims; ++d) {
      // Decaying energy across dimensions, like real DFT summaries.
      row[d] = rng->Gaussian() * std::pow(0.8, static_cast<double>(d));
    }
  }
  return dfts;
}

TEST(SfaQuantizer, SymbolsWithinAlphabet) {
  util::Rng rng(53);
  const auto dfts = RandomDfts(&rng, 500, 8);
  const auto q = SfaQuantizer::Train(dfts, 8, SfaQuantizer::Binning::kEquiDepth);
  for (const auto& dft : dfts) {
    const auto word = q.Quantize(dft);
    for (const uint8_t s : word) EXPECT_LT(s, 8);
  }
}

TEST(SfaQuantizer, EquiDepthBalancesSymbols) {
  util::Rng rng(54);
  const auto dfts = RandomDfts(&rng, 4000, 4);
  const auto q = SfaQuantizer::Train(dfts, 4, SfaQuantizer::Binning::kEquiDepth);
  std::vector<int> histogram(4, 0);
  for (const auto& dft : dfts) ++histogram[q.Quantize(dft)[0]];
  for (const int c : histogram) {
    EXPECT_GT(c, 700);  // roughly balanced quarters
    EXPECT_LT(c, 1300);
  }
}

TEST(SfaQuantizer, LowerBoundZeroForOwnWord) {
  util::Rng rng(55);
  const auto dfts = RandomDfts(&rng, 200, 8);
  const auto q = SfaQuantizer::Train(dfts, 8, SfaQuantizer::Binning::kEquiDepth);
  for (const auto& dft : dfts) {
    EXPECT_DOUBLE_EQ(q.LowerBoundSq(dft, q.Quantize(dft)), 0.0);
  }
}

TEST(SfaQuantizer, LowerBoundsTrueSummaryDistance) {
  util::Rng rng(56);
  const auto dfts = RandomDfts(&rng, 300, 8);
  const auto q = SfaQuantizer::Train(dfts, 8, SfaQuantizer::Binning::kEquiDepth);
  for (int trial = 0; trial < 100; ++trial) {
    const auto& a = dfts[static_cast<size_t>(rng.UniformInt(0, 299))];
    const auto& b = dfts[static_cast<size_t>(rng.UniformInt(0, 299))];
    double true_dist = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      true_dist += (a[d] - b[d]) * (a[d] - b[d]);
    }
    EXPECT_LE(q.LowerBoundSq(a, q.Quantize(b)), true_dist + 1e-9);
  }
}

TEST(SfaQuantizer, EquiWidthBinsAreUniform) {
  util::Rng rng(57);
  const auto dfts = RandomDfts(&rng, 500, 2);
  const auto q = SfaQuantizer::Train(dfts, 8, SfaQuantizer::Binning::kEquiWidth);
  const auto bins = q.BreakpointsFor(0);
  ASSERT_EQ(bins.size(), 7u);
  const double width = bins[1] - bins[0];
  for (size_t i = 1; i + 1 < bins.size(); ++i) {
    EXPECT_NEAR(bins[i + 1] - bins[i], width, 1e-9);
  }
}

TEST(VaPlusQuantizer, NonUniformAllocationFavorsHighEnergyDims) {
  util::Rng rng(58);
  const auto dfts = RandomDfts(&rng, 1000, 8);  // energy decays with dim
  const auto q = VaPlusQuantizer::Train(dfts, 32);
  EXPECT_GE(q.bits_for(0), q.bits_for(7));
  int total = 0;
  for (size_t d = 0; d < q.dims(); ++d) total += q.bits_for(d);
  EXPECT_LE(total, 32);
  EXPECT_GE(total, 28);  // nearly the whole budget is spent
}

TEST(VaPlusQuantizer, UniformAllocationIsFlat) {
  util::Rng rng(59);
  const auto dfts = RandomDfts(&rng, 500, 8);
  const auto q = VaPlusQuantizer::Train(
      dfts, 32, VaPlusQuantizer::Allocation::kUniform);
  for (size_t d = 0; d < q.dims(); ++d) EXPECT_EQ(q.bits_for(d), 4);
}

TEST(VaPlusQuantizer, CellBoundsBracketTrueDistance) {
  util::Rng rng(60);
  const auto dfts = RandomDfts(&rng, 500, 8);
  const auto q = VaPlusQuantizer::Train(dfts, 40);
  for (int trial = 0; trial < 200; ++trial) {
    const auto& query = dfts[static_cast<size_t>(rng.UniformInt(0, 499))];
    const auto& cand = dfts[static_cast<size_t>(rng.UniformInt(0, 499))];
    double true_dist = 0.0;
    for (size_t d = 0; d < query.size(); ++d) {
      true_dist += (query[d] - cand[d]) * (query[d] - cand[d]);
    }
    const auto cells = q.Quantize(cand);
    EXPECT_LE(q.CellLowerBoundSq(query, cells), true_dist + 1e-9);
    EXPECT_GE(q.CellUpperBoundSq(query, cells), true_dist - 1e-9);
  }
}

TEST(VaPlusQuantizer, LowerBoundZeroForOwnCell) {
  util::Rng rng(61);
  const auto dfts = RandomDfts(&rng, 300, 4);
  const auto q = VaPlusQuantizer::Train(dfts, 16);
  for (const auto& dft : dfts) {
    EXPECT_DOUBLE_EQ(q.CellLowerBoundSq(dft, q.Quantize(dft)), 0.0);
  }
}

TEST(VaPlusQuantizer, MoreBitsTightenBounds) {
  util::Rng rng(62);
  const auto dfts = RandomDfts(&rng, 1000, 8);
  const auto q_small = VaPlusQuantizer::Train(dfts, 16);
  const auto q_large = VaPlusQuantizer::Train(dfts, 64);
  double small_sum = 0.0;
  double large_sum = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto& query = dfts[static_cast<size_t>(rng.UniformInt(0, 999))];
    const auto& cand = dfts[static_cast<size_t>(rng.UniformInt(0, 999))];
    small_sum += q_small.CellLowerBoundSq(query, q_small.Quantize(cand));
    large_sum += q_large.CellLowerBoundSq(query, q_large.Quantize(cand));
  }
  EXPECT_GT(large_sum, small_sum);
}

}  // namespace
}  // namespace hydra::transform
