// Span tracer battery: ring wraparound with exact drop accounting, span
// nesting depths, disabled-tracer inertness, trace-event JSON that
// parses back, and typed errors (never aborts) on unwritable paths.
#include "obs/trace.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace hydra::obs {
namespace {

/// Minimal recursive-descent JSON well-formedness checker — the repo has
/// a writer only, so the "parses back" contract is verified structurally
/// here (the smoke script re-parses with a real parser).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool String() {
    if (!Expect('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    return Expect('"');
  }
  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c) {
      if (pos_ >= text_.size() || text_[pos_] != *c) return false;
      ++pos_;
    }
    return true;
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// The tracer is a process singleton; every test leaves it disabled and
/// empty so suites compose in any order.
class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
  void TearDown() override {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
};

TEST_F(ObsTraceTest, RingKeepsEverythingUnderCapacity) {
  ThreadRing ring(/*tid=*/0, /*capacity=*/8);
  for (int i = 0; i < 5; ++i) {
    ring.Record("a", nullptr, 0, static_cast<uint64_t>(i) * 10, 1, 0);
  }
  std::vector<CollectedEvent> events;
  uint64_t dropped = 0;
  ring.Collect(&events, &dropped);
  EXPECT_EQ(events.size(), 5u);
  EXPECT_EQ(dropped, 0u);
}

TEST_F(ObsTraceTest, RingWraparoundKeepsNewestAndCountsDrops) {
  ThreadRing ring(/*tid=*/3, /*capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    ring.Record("a", nullptr, 0, static_cast<uint64_t>(i), 1, 0);
  }
  std::vector<CollectedEvent> events;
  uint64_t dropped = 0;
  ring.Collect(&events, &dropped);
  // The last 8 of 20 survive; exactly 12 are reported lost, not hidden.
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(dropped, 12u);
  for (const CollectedEvent& e : events) {
    EXPECT_GE(e.start_ns, 12u);
    EXPECT_EQ(e.tid, 3u);
  }
}

TEST_F(ObsTraceTest, RingClearRestartsDropAccounting) {
  ThreadRing ring(/*tid=*/0, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) ring.Record("a", nullptr, 0, 0, 1, 0);
  ring.Clear();
  ring.Record("b", nullptr, 0, 7, 1, 0);
  std::vector<CollectedEvent> events;
  uint64_t dropped = 0;
  ring.Collect(&events, &dropped);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(dropped, 0u);
  EXPECT_STREQ(events[0].name, "b");
}

TEST_F(ObsTraceTest, DisabledSpansRecordNothing) {
  { HYDRA_OBS_SPAN("never"); }
  { HYDRA_OBS_SPAN_ARG("never_arg", "n", 3); }
  std::vector<CollectedEvent> events;
  const Tracer::CollectResult r = Tracer::Get().Collect(&events);
  EXPECT_EQ(r.events, 0u);
  EXPECT_EQ(events.size(), 0u);
}

TEST_F(ObsTraceTest, NestedSpansRecordDepthsAndCloseInnerFirst) {
  Tracer::Get().Enable();
  {
    HYDRA_OBS_SPAN("outer");
    {
      HYDRA_OBS_SPAN("middle");
      { HYDRA_OBS_SPAN_ARG("inner", "k", 42); }
    }
  }
  std::vector<CollectedEvent> events;
  Tracer::Get().Collect(&events);
  ASSERT_EQ(events.size(), 3u);
  // Spans record at close, so inner lands first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_EQ(events[0].arg_value, 42);
  EXPECT_STREQ(events[0].arg_name, "k");
  EXPECT_STREQ(events[1].name, "middle");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0u);
  // Containment: the outer interval covers the inner one.
  EXPECT_LE(events[2].start_ns, events[0].start_ns);
  EXPECT_GE(events[2].start_ns + events[2].dur_ns,
            events[0].start_ns + events[0].dur_ns);
}

TEST_F(ObsTraceTest, SetArgAttachesLateValue) {
  Tracer::Get().Enable();
  {
    ObsSpan span("late");
    span.SetArg("count", 17);
  }
  std::vector<CollectedEvent> events;
  Tracer::Get().Collect(&events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].arg_name, "count");
  EXPECT_EQ(events[0].arg_value, 17);
}

TEST_F(ObsTraceTest, JsonParsesBackWithMetaAndDropCount) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  tracer.SetMeta("command", "unit-test");
  {
    HYDRA_OBS_SPAN("root");
    { HYDRA_OBS_SPAN_ARG("child", "shard", 2); }
  }
  const std::string json = tracer.ToJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"root\""), std::string::npos);
  EXPECT_NE(json.find("\"child\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
  EXPECT_NE(json.find("\"command\":\"unit-test\""), std::string::npos);
  // Chrome trace-event schema essentials.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(ObsTraceTest, WriteJsonUnwritablePathIsTypedError) {
  Tracer::Get().Enable();
  { HYDRA_OBS_SPAN("x"); }
  const util::Status s =
      Tracer::Get().WriteJson("/nonexistent-hydra-dir/trace.json");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("trace path"), std::string::npos);
}

TEST_F(ObsTraceTest, WriteJsonRoundTripsThroughDisk) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  { HYDRA_OBS_SPAN("disk"); }
  const std::string path = ::testing::TempDir() + "/hydra_obs_trace.json";
  ASSERT_TRUE(tracer.WriteJson(path).ok());
  std::ifstream in(path);
  const std::string body((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  JsonChecker checker(body);
  EXPECT_TRUE(checker.Valid());
  EXPECT_NE(body.find("\"disk\""), std::string::npos);
}

}  // namespace
}  // namespace hydra::obs
