#include <cmath>

#include <gtest/gtest.h>

#include "util/inverse_normal.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"

namespace hydra::util {
namespace {

TEST(InverseNormal, MatchesKnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(InverseNormalCdf(0.8413447461), 1.0, 1e-6);
}

TEST(InverseNormal, RoundTripsThroughCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(NormalCdf(InverseNormalCdf(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(InverseNormal, SymmetricAroundMedian) {
  for (double p : {0.01, 0.1, 0.3}) {
    EXPECT_NEAR(InverseNormalCdf(p), -InverseNormalCdf(1.0 - p), 1e-9);
  }
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_NEAR(Stddev(xs), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 10.0);
}

TEST(Stats, QuantileUnsortedInput) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 3.0);
}

TEST(Stats, SummaryFields) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = Summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Stats, TrimmedMeanDropsExtremes) {
  // 1 and 100 are dropped; the mean of {2,3,4} remains.
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 100.0};
  EXPECT_DOUBLE_EQ(TrimmedMean(xs, 1), 3.0);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.Gaussian(), b.Gaussian());
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(7);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 5);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 5);
  }
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(Status, ErrorCarriesMessage) {
  const Status s = Status::Error("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "boom");
}

TEST(Result, ValueAndError) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  Result<int> err(Status::Error("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().message(), "nope");
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Int(42), "42");
}

}  // namespace
}  // namespace hydra::util
