// Differential kernel-conformance battery: every compiled kernel set runs
// against the scalar reference across widths 1..130 (every vector-tail
// remainder of the 4/8/16-lane shapes) on z-normalized and adversarial
// inputs (denormals, mixed magnitudes, +/-0, infinite box edges, exact
// ties). Order-preserving kernels — all summary lower bounds, plus the
// raw kernels of sets advertising raw_order_preserved — must match the
// reference bit for bit; the remaining raw kernels must stay within the
// documented relative tolerance 16 * n * 2^-53. Within each set,
// abandon(+inf) must equal the set's own plain distance bit for bit.
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/simd/kernels.h"
#include "core/simd/kernels_internal.h"
#include "transform/sax.h"
#include "util/rng.h"

namespace hydra::core::simd {
namespace {

constexpr size_t kMaxWidth = 130;
const double kInf = std::numeric_limits<double>::infinity();

// Asserts exact bit identity (EXPECT_DOUBLE_EQ would accept -0 vs +0 and
// ulp-4 drift; the order-preserving contract is stronger).
#define EXPECT_BITEQ(a, b)                                 \
  EXPECT_EQ(std::bit_cast<uint64_t>(static_cast<double>(a)), \
            std::bit_cast<uint64_t>(static_cast<double>(b)))

// The documented raw-kernel tolerance: lane reassociation over a
// perfectly conditioned (all-nonnegative) sum.
void ExpectWithinRawTol(double got, double want, size_t n) {
  const double tol = 16.0 * static_cast<double>(n) * std::ldexp(1.0, -53);
  EXPECT_NEAR(got, want, std::fabs(want) * tol + 1e-300)
      << "width " << n;
}

std::vector<Value> AdversarialFloats(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Value> v(n);
  for (size_t i = 0; i < n; ++i) {
    switch (rng.UniformInt(0, 7)) {
      case 0: v[i] = 0.0f; break;
      case 1: v[i] = -0.0f; break;
      case 2: v[i] = 1e-42f; break;  // subnormal float
      case 3: v[i] = -1e-42f; break;
      case 4: v[i] = static_cast<Value>(rng.Gaussian() * 1e18); break;
      case 5: v[i] = static_cast<Value>(rng.Gaussian() * 1e-18); break;
      default: v[i] = static_cast<Value>(rng.Gaussian()); break;
    }
  }
  return v;
}

std::vector<double> AdversarialDoubles(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    switch (rng.UniformInt(0, 7)) {
      case 0: v[i] = 0.0; break;
      case 1: v[i] = -0.0; break;
      case 2: v[i] = 1e-310; break;  // subnormal double
      case 3: v[i] = -1e-310; break;
      case 4: v[i] = rng.Gaussian() * 1e100; break;
      case 5: v[i] = rng.Gaussian() * 1e-100; break;
      default: v[i] = rng.Gaussian(); break;
    }
  }
  return v;
}

std::vector<uint32_t> OrderByMagnitude(const std::vector<Value>& q) {
  std::vector<uint32_t> order(q.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return std::fabs(q[a]) > std::fabs(q[b]);
  });
  return order;
}

class KernelConformanceTest : public ::testing::TestWithParam<size_t> {
 protected:
  const KernelSet& set() const { return *AllKernelSets()[GetParam()]; }
  const KernelSet& ref() const { return ScalarKernels(); }

  void SetUp() override {
    if (!KernelSetSupported(set())) {
      GTEST_SKIP() << "CPU cannot execute kernel set " << set().name;
    }
  }
};

TEST_P(KernelConformanceTest, EuclideanMatchesReferenceOnAllWidths) {
  for (size_t n = 1; n <= kMaxWidth; ++n) {
    for (uint64_t seed = 0; seed < 3; ++seed) {
      const auto a = AdversarialFloats(n, 100 * n + seed);
      const auto b = AdversarialFloats(n, 200 * n + seed);
      const double want = ref().euclidean_sq(a.data(), b.data(), n);
      const double got = set().euclidean_sq(a.data(), b.data(), n);
      if (set().raw_order_preserved) {
        EXPECT_BITEQ(got, want) << set().name << " width " << n;
      } else {
        ExpectWithinRawTol(got, want, n);
      }
    }
  }
}

TEST_P(KernelConformanceTest, AbandonUnboundedIsBitIdenticalToPlain) {
  for (size_t n = 1; n <= kMaxWidth; ++n) {
    const auto a = AdversarialFloats(n, 300 + n);
    const auto b = AdversarialFloats(n, 400 + n);
    const double plain = set().euclidean_sq(a.data(), b.data(), n);
    const double unbounded =
        set().euclidean_sq_abandon(a.data(), b.data(), n, kInf);
    EXPECT_BITEQ(unbounded, plain) << set().name << " width " << n;
  }
}

TEST_P(KernelConformanceTest, ReorderedMatchesReferenceOnAllWidths) {
  for (size_t n = 1; n <= kMaxWidth; ++n) {
    const auto q = AdversarialFloats(n, 500 + n);
    const auto c = AdversarialFloats(n, 600 + n);
    const auto order = OrderByMagnitude(q);
    std::vector<Value> q_ordered(n);
    for (size_t i = 0; i < n; ++i) q_ordered[i] = q[order[i]];
    const double want = ref().euclidean_sq_reordered(
        q_ordered.data(), c.data(), order.data(), n, kInf);
    const double got = set().euclidean_sq_reordered(
        q_ordered.data(), c.data(), order.data(), n, kInf);
    if (set().raw_order_preserved || n < internal::kMinGatherWidth) {
      // Below the gather threshold every set takes the scalar path.
      EXPECT_BITEQ(got, want) << set().name << " width " << n;
    } else {
      ExpectWithinRawTol(got, want, n);
    }
  }
}

TEST_P(KernelConformanceTest, SumSqDiffBitIdenticalOnAllWidths) {
  for (size_t n = 1; n <= kMaxWidth; ++n) {
    const auto a = AdversarialDoubles(n, 700 + n);
    const auto b = AdversarialDoubles(n, 800 + n);
    const double want = ref().sum_sq_diff(a.data(), b.data(), n);
    const double got = set().sum_sq_diff(a.data(), b.data(), n);
    EXPECT_BITEQ(got, want) << set().name << " width " << n;
  }
}

TEST_P(KernelConformanceTest, BoxDistBitIdenticalOnAllWidths) {
  for (size_t n = 1; n <= kMaxWidth; ++n) {
    util::Rng rng(900 + n);
    std::vector<double> q(n);
    std::vector<double> lo(n);
    std::vector<double> hi(n);
    for (size_t i = 0; i < n; ++i) {
      q[i] = rng.Gaussian();
      double a = rng.Gaussian();
      double b = rng.Gaussian();
      if (a > b) std::swap(a, b);
      switch (rng.UniformInt(0, 5)) {
        case 0: a = -kInf; break;                  // open below
        case 1: b = kInf; break;                   // open above
        case 2: a = -kInf; b = kInf; break;        // whole domain
        case 3: a = b = q[i]; break;               // degenerate tie on q
        case 4: b = a; break;                      // degenerate interval
        default: break;
      }
      lo[i] = a;
      hi[i] = b;
      if (rng.UniformInt(0, 3) == 0) q[i] = lo[i];  // exact edge tie
    }
    const double want = ref().box_dist_sq(q.data(), lo.data(), hi.data(), n);
    const double got = set().box_dist_sq(q.data(), lo.data(), hi.data(), n);
    EXPECT_BITEQ(got, want) << set().name << " width " << n;
  }
}

TEST_P(KernelConformanceTest, IsaxMinDistBitIdenticalOnAllWidths) {
  const transform::SaxBreakpoints& bp = transform::SaxBreakpoints::Get();
  for (size_t n = 1; n <= kMaxWidth; ++n) {
    util::Rng rng(1000 + n);
    std::vector<double> paa_q(n);
    std::vector<uint8_t> symbols(n);
    std::vector<uint8_t> bits(n);
    for (size_t i = 0; i < n; ++i) {
      paa_q[i] = rng.Gaussian() * 2.0;
      bits[i] = static_cast<uint8_t>(
          rng.UniformInt(0, transform::kMaxSaxBits));
      // Whole-domain segments may carry a stale nonzero symbol; the kernel
      // must still contribute exactly zero for them.
      symbols[i] = bits[i] == 0
                       ? static_cast<uint8_t>(rng.UniformInt(0, 255))
                       : static_cast<uint8_t>(
                             rng.UniformInt(0, (1 << bits[i]) - 1));
    }
    const double want = ref().isax_mindist_sq(paa_q.data(), symbols.data(),
                                              bits.data(), n, bp.FlatLower(),
                                              bp.FlatUpper());
    const double got = set().isax_mindist_sq(paa_q.data(), symbols.data(),
                                             bits.data(), n, bp.FlatLower(),
                                             bp.FlatUpper());
    EXPECT_BITEQ(got, want) << set().name << " segments " << n;
  }
}

TEST_P(KernelConformanceTest, SfaLowerBoundBitIdenticalOnAllWidths) {
  constexpr int kAlphabet = 7;  // odd on purpose: unaligned row stride
  constexpr size_t kStride = kAlphabet + 1;
  for (size_t n = 1; n <= kMaxWidth; ++n) {
    util::Rng rng(1100 + n);
    std::vector<double> edges(n * kStride);
    std::vector<uint8_t> word(n);
    std::vector<double> q(n);
    for (size_t d = 0; d < n; ++d) {
      std::vector<double> bins(kAlphabet - 1);
      for (double& x : bins) x = rng.Gaussian();
      std::sort(bins.begin(), bins.end());
      double* row = edges.data() + d * kStride;
      row[0] = -kInf;
      for (size_t b = 0; b < bins.size(); ++b) row[b + 1] = bins[b];
      row[kStride - 1] = kInf;
      word[d] = static_cast<uint8_t>(rng.UniformInt(0, kAlphabet - 1));
      q[d] = rng.Gaussian() * 2.0;
    }
    const double want =
        ref().sfa_lb_sq(q.data(), word.data(), n, edges.data(), kStride);
    const double got =
        set().sfa_lb_sq(q.data(), word.data(), n, edges.data(), kStride);
    EXPECT_BITEQ(got, want) << set().name << " dims " << n;
  }
}

TEST_P(KernelConformanceTest, VaLowerBoundBitIdenticalOnAllWidths) {
  for (size_t n = 1; n <= kMaxWidth; ++n) {
    util::Rng rng(1200 + n);
    std::vector<double> edges;
    std::vector<uint32_t> offsets(n);
    std::vector<uint16_t> cells(n);
    std::vector<double> q(n);
    for (size_t d = 0; d < n; ++d) {
      const int bits = static_cast<int>(rng.UniformInt(0, 3));
      const int num_cells = 1 << bits;
      offsets[d] = static_cast<uint32_t>(edges.size());
      std::vector<double> row(num_cells + 1);
      for (double& x : row) x = rng.Gaussian();
      std::sort(row.begin(), row.end());
      edges.insert(edges.end(), row.begin(), row.end());
      cells[d] = static_cast<uint16_t>(rng.UniformInt(0, num_cells - 1));
      q[d] = rng.Gaussian() * 2.0;
    }
    const double want =
        ref().va_lb_sq(q.data(), cells.data(), n, edges.data(), offsets.data());
    const double got =
        set().va_lb_sq(q.data(), cells.data(), n, edges.data(), offsets.data());
    EXPECT_BITEQ(got, want) << set().name << " dims " << n;
  }
}

TEST_P(KernelConformanceTest, EapcaNodeLbBitIdenticalOnAllWidths) {
  for (size_t n = 1; n <= kMaxWidth; ++n) {
    util::Rng rng(1300 + n);
    std::vector<double> q_stats(2 * n);
    std::vector<double> env(4 * n);
    std::vector<uint32_t> ends(n);
    uint32_t end = 0;
    for (size_t s = 0; s < n; ++s) {
      end += static_cast<uint32_t>(rng.UniformInt(1, 9));
      ends[s] = end;
      q_stats[2 * s] = rng.Gaussian();
      q_stats[2 * s + 1] = std::fabs(rng.Gaussian());
      double m1 = rng.Gaussian();
      double m2 = rng.Gaussian();
      if (m1 > m2) std::swap(m1, m2);
      double s1 = std::fabs(rng.Gaussian());
      double s2 = std::fabs(rng.Gaussian());
      if (s1 > s2) std::swap(s1, s2);
      if (rng.UniformInt(0, 4) == 0) m2 = m1;  // degenerate envelope
      env[4 * s] = m1;
      env[4 * s + 1] = m2;
      env[4 * s + 2] = s1;
      env[4 * s + 3] = s2;
    }
    const double want =
        ref().eapca_node_lb_sq(q_stats.data(), env.data(), ends.data(), n);
    const double got =
        set().eapca_node_lb_sq(q_stats.data(), env.data(), ends.data(), n);
    EXPECT_BITEQ(got, want) << set().name << " segments " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSets, KernelConformanceTest,
    ::testing::Range(size_t{0}, AllKernelSets().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return std::string(AllKernelSets()[info.param]->name);
    });

TEST(KernelRegistry, ScalarAndPortableAlwaysSupported) {
  const auto supported = SupportedKernelSets();
  ASSERT_GE(supported.size(), 2u);
  EXPECT_STREQ(supported[0]->name, "scalar");
  EXPECT_STREQ(supported[1]->name, "portable");
  for (const KernelSet* set : supported) {
    EXPECT_TRUE(KernelSetSupported(*set));
  }
}

TEST(KernelRegistry, FindAndUse) {
  EXPECT_EQ(FindKernelSet("nope"), nullptr);
  ASSERT_NE(FindKernelSet("scalar"), nullptr);
  EXPECT_FALSE(UseKernels("nope").ok());

  const KernelSet& prior = ActiveKernels();
  ASSERT_TRUE(UseKernels("scalar").ok());
  EXPECT_EQ(&ActiveKernels(), &ScalarKernels());
  ASSERT_TRUE(UseKernels(prior.name).ok());
  EXPECT_EQ(&ActiveKernels(), &prior);
}

}  // namespace
}  // namespace hydra::core::simd
