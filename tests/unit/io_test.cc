#include <unistd.h>

#include <cstdio>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "io/counted_storage.h"
#include "io/disk_model.h"
#include "io/series_file.h"

namespace hydra::io {
namespace {

core::Dataset MakeData(size_t count, size_t length) {
  core::Dataset d("t", length);
  for (size_t i = 0; i < count; ++i) {
    std::vector<core::Value> row(length, static_cast<core::Value>(i));
    d.Append(row);
  }
  return d;
}

TEST(CountedStorage, SequentialReadsChargeOneSeek) {
  const auto data = MakeData(10, 8);
  CountedStorage storage(&data);
  core::SearchStats stats;
  for (core::SeriesId i = 0; i < 10; ++i) storage.Read(i, &stats);
  EXPECT_EQ(stats.random_seeks, 1);  // only the initial positioning
  EXPECT_EQ(stats.sequential_reads, 10);
  EXPECT_EQ(stats.bytes_read,
            static_cast<int64_t>(10 * 8 * sizeof(core::Value)));
}

TEST(CountedStorage, SkipsChargeSeeks) {
  const auto data = MakeData(10, 8);
  CountedStorage storage(&data);
  core::SearchStats stats;
  storage.Read(0, &stats);
  storage.Read(5, &stats);  // skip
  storage.Read(6, &stats);  // contiguous
  storage.Read(2, &stats);  // backward seek
  EXPECT_EQ(stats.random_seeks, 3);
  EXPECT_EQ(stats.sequential_reads, 4);
}

TEST(CountedStorage, ReadReturnsCorrectSeries) {
  const auto data = MakeData(4, 8);
  CountedStorage storage(&data);
  core::SearchStats stats;
  const auto s = storage.Read(3, &stats);
  EXPECT_FLOAT_EQ(s[0], 3.0f);
}

TEST(CountedStorage, ResetCursorForcesSeek) {
  const auto data = MakeData(4, 8);
  CountedStorage storage(&data);
  core::SearchStats stats;
  storage.Read(0, &stats);
  storage.ResetCursor();
  storage.Read(1, &stats);  // would be sequential without the reset
  EXPECT_EQ(stats.random_seeks, 2);
}

TEST(ChargeHelpers, LeafReadSemantics) {
  core::SearchStats stats;
  ChargeLeafRead(100, 64, &stats);
  EXPECT_EQ(stats.random_seeks, 1);
  EXPECT_EQ(stats.sequential_reads, 100);
  EXPECT_EQ(stats.bytes_read, 6400);
}

TEST(DiskModel, HddChargesSeeksHeavily) {
  const DiskModel hdd = DiskModel::Hdd();
  const DiskModel ssd = DiskModel::Ssd();
  // 1000 seeks of tiny reads: HDD must be much slower than SSD.
  const double hdd_time = hdd.IoSeconds(1024, 1000);
  const double ssd_time = ssd.IoSeconds(1024, 1000);
  EXPECT_GT(hdd_time, 10.0 * ssd_time);
}

TEST(DiskModel, SsdSlowerOnPureThroughput) {
  const DiskModel hdd = DiskModel::Hdd();
  const DiskModel ssd = DiskModel::Ssd();
  // A large sequential scan: the paper's HDD RAID has ~4x the throughput.
  const int64_t gb = 1024LL * 1024 * 1024;
  EXPECT_LT(hdd.IoSeconds(gb, 1), ssd.IoSeconds(gb, 1));
}

TEST(DiskModel, QueryTotalAddsCpu) {
  const DiskModel mem = DiskModel::Memory();
  core::SearchStats stats;
  stats.cpu_seconds = 1.5;
  stats.bytes_read = 123456;
  EXPECT_NEAR(mem.QueryTotalSeconds(stats), 1.5, 1e-3);
}

TEST(SeriesFile, RoundTrip) {
  const auto data = MakeData(5, 16);
  const std::string path = ::testing::TempDir() + "/hydra_series_file_test.bin";
  ASSERT_TRUE(WriteSeriesFile(path, data).ok());
  auto loaded = ReadSeriesFile(path, "loaded");
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const core::Dataset& d = loaded.value();
  ASSERT_EQ(d.size(), 5u);
  ASSERT_EQ(d.length(), 16u);
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = 0; j < d.length(); ++j) {
      EXPECT_FLOAT_EQ(d[i][j], data[i][j]);
    }
  }
  std::remove(path.c_str());
}

TEST(SeriesFile, MissingFileIsError) {
  auto r = ReadSeriesFile("/nonexistent/path/file.bin");
  EXPECT_FALSE(r.ok());
}

TEST(SeriesFile, TruncatedFileIsError) {
  // A partial final series must be rejected, not silently dropped: the
  // header's promised size is the contract.
  const auto data = MakeData(5, 16);
  const std::string path = ::testing::TempDir() + "/hydra_truncated.bin";
  ASSERT_TRUE(WriteSeriesFile(path, data).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 7), 0);
  auto r = ReadSeriesFile(path);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("size mismatch"), std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(SeriesFile, TrailingGarbageIsError) {
  const auto data = MakeData(5, 16);
  const std::string path = ::testing::TempDir() + "/hydra_trailing.bin";
  ASSERT_TRUE(WriteSeriesFile(path, data).ok());
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char junk[3] = {9, 9, 9};
  std::fwrite(junk, sizeof(junk), 1, f);
  std::fclose(f);
  auto r = ReadSeriesFile(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(SeriesFile, OverflowingHeaderIsError) {
  // A crafted header whose count * length * sizeof(Value) wraps must be
  // rejected up front — not crash (a naive guard divides by the wrapped
  // product: count = 2^62 makes it exactly 0) and not allocate.
  const std::string path = ::testing::TempDir() + "/hydra_overflow.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint64_t header[3] = {0x485944524153ULL, uint64_t{1} << 62, 16};
  std::fwrite(header, sizeof(header), 1, f);
  std::fclose(f);
  auto r = ReadSeriesFile(path);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("overflow"), std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(SeriesFile, OpenReadsPositionally) {
  const auto data = MakeData(6, 16);
  const std::string path = ::testing::TempDir() + "/hydra_positional.bin";
  ASSERT_TRUE(WriteSeriesFile(path, data).ok());
  auto opened = SeriesFile::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  const SeriesFile file = std::move(opened).value();
  EXPECT_EQ(file.count(), 6u);
  EXPECT_EQ(file.length(), 16u);
  std::vector<core::Value> row(16);
  ASSERT_TRUE(file.ReadAt(4, row.data()).ok());
  EXPECT_FLOAT_EQ(row[0], 4.0f);
  // A block read out of order: positional access has no cursor.
  std::vector<core::Value> block(3 * 16);
  ASSERT_TRUE(file.ReadSeries(1, 3, block.data()).ok());
  EXPECT_FLOAT_EQ(block[0], 1.0f);
  EXPECT_FLOAT_EQ(block[16], 2.0f);
  EXPECT_FLOAT_EQ(block[32], 3.0f);
  ASSERT_TRUE(file.ReadAt(0, row.data()).ok());
  EXPECT_FLOAT_EQ(row[0], 0.0f);
  std::remove(path.c_str());
}

TEST(SeriesFile, OpenRejectsTruncatedFile) {
  // Open applies the bulk loader's validation without loading values.
  const auto data = MakeData(5, 16);
  const std::string path = ::testing::TempDir() + "/hydra_open_trunc.bin";
  ASSERT_TRUE(WriteSeriesFile(path, data).ok());
  ASSERT_EQ(truncate(path.c_str(), 24 + 3 * 16 * 4), 0);
  auto r = SeriesFile::Open(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(SeriesFile, TruncationAfterOpenIsTypedError) {
  // The SIGBUS trap of a bare mmap: the file shrinks *after* Open. The
  // pread path must surface a typed error Status, never a signal.
  const auto data = MakeData(5, 16);
  const std::string path = ::testing::TempDir() + "/hydra_late_trunc.bin";
  ASSERT_TRUE(WriteSeriesFile(path, data).ok());
  auto opened = SeriesFile::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  const SeriesFile file = std::move(opened).value();
  ASSERT_EQ(truncate(path.c_str(), 24 + 2 * 16 * 4), 0);  // keep 2 of 5
  std::vector<core::Value> row(16);
  ASSERT_TRUE(file.ReadAt(1, row.data()).ok());  // still inside the file
  EXPECT_FLOAT_EQ(row[0], 1.0f);
  const auto status = file.ReadAt(4, row.data());  // beyond the new end
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("truncated"), std::string::npos)
      << status.message();
  std::remove(path.c_str());
}

TEST(SeriesFileWriter, StreamsByteIdenticalToBulkWrite) {
  const auto data = MakeData(9, 16);
  const std::string bulk = ::testing::TempDir() + "/hydra_bulk.bin";
  const std::string streamed = ::testing::TempDir() + "/hydra_streamed.bin";
  ASSERT_TRUE(WriteSeriesFile(bulk, data).ok());
  auto created = SeriesFileWriter::Create(streamed, 16);
  ASSERT_TRUE(created.ok()) << created.status().message();
  SeriesFileWriter writer = std::move(created).value();
  ASSERT_TRUE(writer.Append(data[0]).ok());  // one series at a time...
  ASSERT_TRUE(writer.AppendBlock(data[1].data(), 4).ok());  // ...then a block
  ASSERT_TRUE(writer.AppendBlock(data[5].data(), 4).ok());
  ASSERT_TRUE(writer.Finish().ok());
  // Byte-for-byte identical, header included.
  std::FILE* a = std::fopen(bulk.c_str(), "rb");
  std::FILE* b = std::fopen(streamed.c_str(), "rb");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (;;) {
    const int ca = std::fgetc(a);
    const int cb = std::fgetc(b);
    ASSERT_EQ(ca, cb);
    if (ca == EOF) break;
  }
  std::fclose(a);
  std::fclose(b);
  std::remove(bulk.c_str());
  std::remove(streamed.c_str());
}

TEST(SeriesFileWriter, UnfinishedFileIsRejectedByReaders) {
  // A writer that dies before Finish leaves a provisional header (count
  // 0) against a larger file; every reader must reject it rather than
  // serve a silently-empty dataset.
  const auto data = MakeData(3, 16);
  const std::string path = ::testing::TempDir() + "/hydra_unfinished.bin";
  {
    auto created = SeriesFileWriter::Create(path, 16);
    ASSERT_TRUE(created.ok());
    SeriesFileWriter writer = std::move(created).value();
    ASSERT_TRUE(writer.AppendBlock(data[0].data(), 3).ok());
    // No Finish: the writer goes out of scope with a count-0 header.
  }
  EXPECT_FALSE(ReadSeriesFile(path).ok());
  EXPECT_FALSE(SeriesFile::Open(path).ok());
  std::remove(path.c_str());
}

TEST(SeriesFile, BadMagicIsError) {
  const std::string path = ::testing::TempDir() + "/hydra_bad_magic.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = {1, 2, 3};
  std::fwrite(junk, sizeof(junk), 1, f);
  std::fclose(f);
  auto r = ReadSeriesFile(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hydra::io
