#include <cmath>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "transform/haar.h"
#include "transform/paa.h"
#include "util/rng.h"

namespace hydra::transform {
namespace {

std::vector<core::Value> RandomSeries(util::Rng* rng, size_t n) {
  std::vector<core::Value> x(n);
  for (auto& v : x) v = static_cast<core::Value>(rng->Gaussian());
  return x;
}

TEST(Paa, SegmentMeans) {
  const std::vector<core::Value> x = {1, 3, 5, 7};
  const auto paa = Paa(x, 2);
  ASSERT_EQ(paa.size(), 2u);
  EXPECT_DOUBLE_EQ(paa[0], 2.0);
  EXPECT_DOUBLE_EQ(paa[1], 6.0);
}

TEST(Paa, FullResolutionIsIdentity) {
  const std::vector<core::Value> x = {1, -2, 3, -4};
  const auto paa = Paa(x, 4);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(paa[i], x[i]);
}

TEST(Paa, LowerBoundHoldsRandomized) {
  util::Rng rng(21);
  const size_t n = 64;
  const size_t segments = 8;
  for (int trial = 0; trial < 200; ++trial) {
    const auto x = RandomSeries(&rng, n);
    const auto y = RandomSeries(&rng, n);
    const double lb = PaaLowerBoundSq(Paa(x, segments), Paa(y, segments),
                                      n / segments);
    EXPECT_LE(lb, core::SquaredEuclidean(x, y) + 1e-9);
  }
}

TEST(Paa, LowerBoundTightForPiecewiseConstant) {
  // Series that are constant within segments: PAA loses nothing.
  const std::vector<core::Value> x = {2, 2, -1, -1};
  const std::vector<core::Value> y = {0, 0, 3, 3};
  const double lb = PaaLowerBoundSq(Paa(x, 2), Paa(y, 2), 2);
  EXPECT_NEAR(lb, core::SquaredEuclidean(x, y), 1e-12);
}

TEST(Haar, EnergyPreserved) {
  util::Rng rng(22);
  for (size_t n : {8u, 64u, 96u}) {  // 96 exercises zero padding
    const auto x = RandomSeries(&rng, n);
    const auto h = HaarTransform(x);
    double ex = 0.0;
    for (const auto v : x) ex += static_cast<double>(v) * v;
    double eh = 0.0;
    for (const double v : h) eh += v * v;
    EXPECT_NEAR(ex, eh, 1e-8) << "n=" << n;
  }
}

TEST(Haar, DistancePreserved) {
  util::Rng rng(23);
  const auto x = RandomSeries(&rng, 128);
  const auto y = RandomSeries(&rng, 128);
  const auto hx = HaarTransform(x);
  const auto hy = HaarTransform(y);
  double d = 0.0;
  for (size_t i = 0; i < hx.size(); ++i) d += (hx[i] - hy[i]) * (hx[i] - hy[i]);
  EXPECT_NEAR(d, core::SquaredEuclidean(x, y), 1e-8);
}

TEST(Haar, ScalingCoefficientIsScaledMean) {
  const std::vector<core::Value> x = {1, 1, 1, 1};
  const auto h = HaarTransform(x);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_NEAR(h[0], 2.0, 1e-12);  // mean * sqrt(n)
  for (size_t i = 1; i < h.size(); ++i) EXPECT_NEAR(h[i], 0.0, 1e-12);
}

TEST(Haar, CoarsePrefixLowerBounds) {
  // Truncated-prefix distances must lower-bound the true distance: this is
  // what Stepwise's level-by-level filtering relies on.
  util::Rng rng(24);
  for (int trial = 0; trial < 100; ++trial) {
    const auto x = RandomSeries(&rng, 64);
    const auto y = RandomSeries(&rng, 64);
    const auto hx = HaarTransform(x);
    const auto hy = HaarTransform(y);
    const double exact = core::SquaredEuclidean(x, y);
    double partial = 0.0;
    for (size_t i = 0; i < hx.size(); ++i) {
      partial += (hx[i] - hy[i]) * (hx[i] - hy[i]);
      EXPECT_LE(partial, exact + 1e-8);
    }
  }
}

TEST(Haar, LevelBoundaries) {
  const auto bounds = HaarLevelBoundaries(16);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds[0], 1u);
  EXPECT_EQ(bounds[1], 2u);
  EXPECT_EQ(bounds[4], 16u);
}

}  // namespace
}  // namespace hydra::transform
