// The container contract of io::IndexWriter / IndexReader: typed values
// round-trip, every corruption class (flipped byte, truncation, foreign
// file, future version, reordered sections) surfaces as a clean error
// status, and reads never run past a section's payload.
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/index_codec.h"

namespace hydra::io {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Writes a small two-section container and returns its path.
std::string WriteSample(const std::string& name) {
  IndexWriter w("TestMethod", DatasetFingerprint{10, 64, 2560});
  w.BeginSection("numbers");
  w.WriteBool(true);
  w.WriteU8(7);
  w.WriteI32(-42);
  w.WriteU32(42);
  w.WriteI64(-1234567890123LL);
  w.WriteU64(9876543210ULL);
  w.WriteDouble(3.25);
  w.EndSection();
  w.BeginSection("blobs");
  w.WriteString("hello");
  w.WritePodVector(std::vector<double>{1.5, -2.5, 0.0});
  w.WritePodVector(std::vector<uint8_t>{1, 2, 3, 4});
  w.EndSection();
  const std::string path = TempPath(name);
  auto committed = w.Commit(path);
  EXPECT_TRUE(committed.ok()) << committed.status().message();
  return path;
}

void FlipByte(const std::string& path, long offset_from_end) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -offset_from_end, SEEK_END), 0);
  const int c = std::fgetc(f);
  ASSERT_EQ(std::fseek(f, -offset_from_end, SEEK_END), 0);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);
}

TEST(IndexCodec, TypedValuesRoundTrip) {
  const std::string path = WriteSample("codec_roundtrip.hydra");
  IndexReader r;
  ASSERT_TRUE(r.Load(path).ok());
  EXPECT_EQ(r.method_name(), "TestMethod");
  EXPECT_EQ(r.fingerprint(), (DatasetFingerprint{10, 64, 2560}));
  ASSERT_TRUE(r.EnterSection("numbers").ok());
  EXPECT_EQ(r.ReadBool(), true);
  EXPECT_EQ(r.ReadU8(), 7);
  EXPECT_EQ(r.ReadI32(), -42);
  EXPECT_EQ(r.ReadU32(), 42u);
  EXPECT_EQ(r.ReadI64(), -1234567890123LL);
  EXPECT_EQ(r.ReadU64(), 9876543210ULL);
  EXPECT_EQ(r.ReadDouble(), 3.25);
  ASSERT_TRUE(r.EnterSection("blobs").ok());
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadPodVector<double>(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(r.ReadPodVector<uint8_t>(), (std::vector<uint8_t>{1, 2, 3, 4}));
  EXPECT_TRUE(r.ok());
  std::remove(path.c_str());
}

TEST(IndexCodec, FileBytesMatchCommitReturn) {
  IndexWriter w("M", DatasetFingerprint{1, 2, 8});
  w.BeginSection("s");
  w.WriteU64(5);
  w.EndSection();
  const std::string path = TempPath("codec_bytes.hydra");
  auto committed = w.Commit(path);
  ASSERT_TRUE(committed.ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  EXPECT_EQ(std::ftell(f), committed.value());
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(IndexCodec, MissingFileIsError) {
  IndexReader r;
  EXPECT_FALSE(r.Load("/nonexistent/dir/index.hydra").ok());
  EXPECT_FALSE(r.ok());
}

TEST(IndexCodec, ForeignFileIsBadMagic) {
  const std::string path = TempPath("codec_foreign.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = {'n', 'o', 't', ' ', 'h', 'y', 'd', 'r', 'a'};
  std::fwrite(junk, sizeof(junk), 1, f);
  std::fclose(f);
  IndexReader r;
  const util::Status s = r.Load(path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("magic"), std::string::npos) << s.message();
  std::remove(path.c_str());
}

TEST(IndexCodec, FutureVersionIsRejectedCleanly) {
  const std::string path = WriteSample("codec_version.hydra");
  // The version field sits right after the 8-byte magic, outside any
  // checksum, so bumping it must report a version error, not a checksum
  // one.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0);
  const uint32_t future = kIndexFormatVersion + 1;
  std::fwrite(&future, sizeof(future), 1, f);
  std::fclose(f);
  IndexReader r;
  const util::Status s = r.Load(path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.message();
  std::remove(path.c_str());
}

TEST(IndexCodec, FlippedPayloadByteFailsChecksum) {
  const std::string path = WriteSample("codec_flip.hydra");
  FlipByte(path, /*offset_from_end=*/10);  // inside the last payload
  IndexReader r;
  ASSERT_TRUE(r.Load(path).ok());  // header is intact
  ASSERT_TRUE(r.EnterSection("numbers").ok());
  const util::Status s = r.EnterSection("blobs");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("checksum"), std::string::npos) << s.message();
  std::remove(path.c_str());
}

TEST(IndexCodec, TruncationFailsCleanly) {
  const std::string path = WriteSample("codec_truncate.hydra");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 9), 0);
  IndexReader r;
  ASSERT_TRUE(r.Load(path).ok());
  ASSERT_TRUE(r.EnterSection("numbers").ok());
  EXPECT_FALSE(r.EnterSection("blobs").ok());
  std::remove(path.c_str());
}

TEST(IndexCodec, SectionOrderMismatchIsError) {
  const std::string path = WriteSample("codec_order.hydra");
  IndexReader r;
  ASSERT_TRUE(r.Load(path).ok());
  const util::Status s = r.EnterSection("blobs");  // "numbers" comes first
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("order"), std::string::npos) << s.message();
  std::remove(path.c_str());
}

TEST(IndexCodec, ReadsNeverCrossSectionEnd) {
  const std::string path = WriteSample("codec_overread.hydra");
  IndexReader r;
  ASSERT_TRUE(r.Load(path).ok());
  ASSERT_TRUE(r.EnterSection("numbers").ok());
  // Drain the section, then keep reading: the sticky status latches, no
  // crash, and further reads return zeros.
  for (int i = 0; i < 64; ++i) r.ReadU64();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.ReadU64(), 0u);
  EXPECT_TRUE(r.ReadPodVector<double>().empty());
}

TEST(IndexCodec, CorruptVectorLengthCannotAllocate) {
  // A section whose vector length field promises more bytes than the
  // payload holds must fail before allocating, not OOM.
  IndexWriter w("M", DatasetFingerprint{1, 1, 4});
  w.BeginSection("v");
  w.WriteU64(uint64_t{1} << 60);  // absurd element count, no elements
  w.EndSection();
  const std::string path = TempPath("codec_hugevec.hydra");
  ASSERT_TRUE(w.Commit(path).ok());
  IndexReader r;
  ASSERT_TRUE(r.Load(path).ok());
  ASSERT_TRUE(r.EnterSection("v").ok());
  EXPECT_TRUE(r.ReadPodVector<double>().empty());
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(IndexCodec, NodeGuardCapsRecursionDepth) {
  // A checksum only proves the bytes match themselves: a crafted file can
  // encode a node chain deep enough to overflow the stack, so the guard
  // must latch an error long before that.
  const std::string path = WriteSample("codec_depth.hydra");
  IndexReader r;
  ASSERT_TRUE(r.Load(path).ok());
  std::vector<std::unique_ptr<IndexReader::NodeGuard>> guards;
  while (r.ok() && guards.size() < 1000000) {
    guards.push_back(std::make_unique<IndexReader::NodeGuard>(&r));
  }
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nests too deeply"), std::string::npos)
      << r.status().message();
  // Deep but legitimate structures stay well under the cap.
  EXPECT_GT(guards.size(), 1000u);
  guards.clear();
  std::remove(path.c_str());
}

TEST(IndexCodec, Crc32KnownVector) {
  // The standard IEEE test vector: CRC32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

}  // namespace
}  // namespace hydra::io
