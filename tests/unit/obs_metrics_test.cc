// Metrics registry battery: histogram bucket-boundary math (log-scale
// bounds invert exactly), bucketed quantiles with their documented error
// bound, counter/gauge basics, registry identity and dumps, and the
// SearchStats publishing bridge.
#include "obs/metrics.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/search_stats.h"

namespace hydra::obs {
namespace {

/// Every test starts from an empty registry; the registry is process-wide.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::Get().ResetForTest(); }
  void TearDown() override { Registry::Get().ResetForTest(); }
};

TEST_F(ObsMetricsTest, BucketBoundsGrowByQuarterPowerOfTwo) {
  const double ratio = std::exp2(0.25);
  for (size_t i = 1; i < Histogram::kBuckets; ++i) {
    EXPECT_NEAR(Histogram::BucketBound(i) / Histogram::BucketBound(i - 1),
                ratio, 1e-12)
        << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(0), 1e-6);
}

TEST_F(ObsMetricsTest, BucketIndexInvertsBucketBound) {
  // The boundary value itself must land in its own bucket — the exact
  // inverse relation the quantile error bound is derived from.
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketBound(i)), i)
        << "bound " << Histogram::BucketBound(i);
  }
}

TEST_F(ObsMetricsTest, BucketIndexInteriorValuesLandBetweenBounds) {
  for (size_t i = 1; i + 1 < Histogram::kBuckets; ++i) {
    const double mid = std::sqrt(Histogram::BucketBound(i - 1) *
                                 Histogram::BucketBound(i));
    EXPECT_EQ(Histogram::BucketIndex(mid), i) << "between " << i - 1
                                              << " and " << i;
  }
}

TEST_F(ObsMetricsTest, BucketIndexClampsAtBothEnds) {
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1e-9), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1e18), Histogram::kBuckets - 1);
}

TEST_F(ObsMetricsTest, QuantileIsBucketUpperBoundWithinErrorBound) {
  Histogram h;
  const double value = 0.0123;
  for (int i = 0; i < 100; ++i) h.Observe(value);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), 1.23, 1e-9);
  const double p50 = h.Quantile(0.50);
  // Bucketed: the reported quantile is the bucket's upper bound — never
  // below the true value and at most 2^(1/4)-1 relative above it.
  EXPECT_GE(p50, value);
  EXPECT_LE(p50, value * std::exp2(0.25) * (1.0 + 1e-12));
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), p50);  // all mass in one bucket
}

TEST_F(ObsMetricsTest, QuantileWalksCumulativeRanks) {
  Histogram h;
  // 90 fast observations, 10 slow: p50 lands in the fast bucket, p95 and
  // p99 in the slow one.
  for (int i = 0; i < 90; ++i) h.Observe(0.001);
  for (int i = 0; i < 10; ++i) h.Observe(1.0);
  EXPECT_LT(h.Quantile(0.50), 0.0013);
  EXPECT_GE(h.Quantile(0.95), 1.0);
  EXPECT_GE(h.Quantile(0.99), 1.0);
}

TEST_F(ObsMetricsTest, CounterAndGaugeBasics) {
  Counter c;
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.value(), 7);
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST_F(ObsMetricsTest, RegistryReturnsSamePointerPerName) {
  Registry& reg = Registry::Get();
  Counter* a = reg.GetCounter("x.count");
  Counter* b = reg.GetCounter("x.count");
  EXPECT_EQ(a, b);
  a->Add(1);
  EXPECT_EQ(b->value(), 1);
  EXPECT_NE(reg.GetHistogram("x.hist"), nullptr);
  EXPECT_NE(reg.GetGauge("x.gauge"), nullptr);
}

TEST_F(ObsMetricsTest, TextDumpListsEveryMetric) {
  Registry& reg = Registry::Get();
  reg.GetCounter("queries")->Add(5);
  reg.GetGauge("pool.fill")->Set(0.5);
  reg.GetHistogram("latency")->Observe(0.01);
  const std::string dump = reg.TextDump();
  EXPECT_NE(dump.find("counter queries 5"), std::string::npos) << dump;
  EXPECT_NE(dump.find("gauge pool.fill"), std::string::npos);
  EXPECT_NE(dump.find("histogram latency count=1"), std::string::npos);
  EXPECT_NE(dump.find("p50="), std::string::npos);
}

TEST_F(ObsMetricsTest, PublishSearchStatsBridgesTheLedger) {
  core::SearchStats stats;
  stats.distance_computations = 11;
  stats.raw_series_examined = 22;
  stats.random_seeks = 3;
  stats.pool_misses = 2;
  stats.cpu_seconds = 0.004;
  PublishSearchStats(stats, "test");
  PublishSearchStats(stats, "test");  // accumulates, not overwrites
  Registry& reg = Registry::Get();
  EXPECT_EQ(reg.GetCounter("test.queries")->value(), 2);
  EXPECT_EQ(reg.GetCounter("test.distance_computations")->value(), 22);
  EXPECT_EQ(reg.GetCounter("test.raw_series_examined")->value(), 44);
  EXPECT_EQ(reg.GetCounter("test.random_seeks")->value(), 6);
  EXPECT_EQ(reg.GetCounter("test.pool_misses")->value(), 4);
  EXPECT_EQ(reg.GetHistogram("test.cpu_seconds")->count(), 2u);
}

}  // namespace
}  // namespace hydra::obs
