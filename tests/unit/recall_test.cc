// Boundary behavior of the answer-quality helpers RecallAtK and
// ApproximationError: empty results, ties at the k-th distance, and k
// larger than the collection must all have well-defined values (the
// accuracy exhibits and the epsilon integration tests depend on them).
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/method.h"

namespace hydra::core {
namespace {

std::vector<Neighbor> Answers(std::initializer_list<double> dists_sq) {
  std::vector<Neighbor> out;
  SeriesId id = 0;
  for (const double d : dists_sq) out.push_back({id++, d});
  return out;
}

TEST(RecallAtK, PerfectAnswerScoresOne) {
  const auto truth = Answers({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(RecallAtK(truth, truth, 3), 1.0);
}

TEST(RecallAtK, EmptyResultScoresZero) {
  const auto truth = Answers({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(RecallAtK({}, truth, 3), 0.0);
}

TEST(RecallAtK, EmptyTruthScoresOne) {
  // Nothing to recover: vacuously perfect (empty collection edge).
  EXPECT_DOUBLE_EQ(RecallAtK(Answers({1.0}), {}, 3), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK({}, {}, 3), 1.0);
}

TEST(RecallAtK, PartialAnswerScoresFraction) {
  const auto truth = Answers({1.0, 2.0, 3.0, 4.0});
  // Two of the four reported answers are within the true 4th distance;
  // the others are strictly worse.
  std::vector<Neighbor> result = {{9, 1.0}, {8, 3.5}, {7, 9.0}, {6, 11.0}};
  EXPECT_DOUBLE_EQ(RecallAtK(result, truth, 4), 0.5);
}

TEST(RecallAtK, TiesAtTheKthDistanceCount) {
  // Truth kept id 2 for the tied 3rd place; an answer holding the equally
  // distant id 9 must not be penalized for the arbitrary tie-break.
  const auto truth = Answers({1.0, 2.0, 5.0});
  std::vector<Neighbor> result = {{0, 1.0}, {1, 2.0}, {9, 5.0}};
  EXPECT_DOUBLE_EQ(RecallAtK(result, truth, 3), 1.0);
}

TEST(RecallAtK, KLargerThanCollectionUsesTruthSize) {
  // A 3-series collection cannot yield 10 neighbors; a complete 3-answer
  // result is perfect recall, not 3/10.
  const auto truth = Answers({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(RecallAtK(truth, truth, 10), 1.0);
  std::vector<Neighbor> partial = {{0, 1.0}};
  EXPECT_NEAR(RecallAtK(partial, truth, 10), 1.0 / 3.0, 1e-12);
}

TEST(ApproximationError, ExactAnswerIsOne) {
  const auto truth = Answers({1.0, 4.0, 9.0});
  EXPECT_DOUBLE_EQ(ApproximationError(truth, truth), 1.0);
}

TEST(ApproximationError, RatioOfWorstReturnedAnswer) {
  const auto truth = Answers({1.0, 4.0});
  // Returned 2nd-best distance sqrt(16) = 4 vs true sqrt(4) = 2.
  std::vector<Neighbor> result = {{0, 1.0}, {9, 16.0}};
  EXPECT_DOUBLE_EQ(ApproximationError(result, truth), 2.0);
}

TEST(ApproximationError, ShortAnswerComparesAtItsOwnRank) {
  const auto truth = Answers({1.0, 4.0, 9.0});
  // A one-answer result is judged against the true 1-NN, not the 3rd.
  std::vector<Neighbor> result = {{9, 4.0}};
  EXPECT_DOUBLE_EQ(ApproximationError(result, truth), 2.0);
}

TEST(ApproximationError, EmptyResultIsInfinite) {
  const auto truth = Answers({1.0});
  EXPECT_TRUE(std::isinf(ApproximationError({}, truth)));
}

TEST(ApproximationError, ZeroTruthDistance) {
  const auto truth = Answers({0.0});
  EXPECT_DOUBLE_EQ(ApproximationError(Answers({0.0}), truth), 1.0);
  EXPECT_TRUE(std::isinf(ApproximationError(Answers({1.0}), truth)));
}

TEST(ApproximationErrorDeathTest, EmptyTruthAborts) {
  EXPECT_DEATH(ApproximationError(Answers({1.0}), {}), "non-empty");
}

}  // namespace
}  // namespace hydra::core
