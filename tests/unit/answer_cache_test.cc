// The answer-cache contract: strict LRU recency under a byte budget,
// cache keys isolate datasets (fingerprint) and query shapes (canonical
// spec + query bytes) from one another, and the exactness-only rule —
// approximate or budgeted specs are never cacheable.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/method.h"
#include "core/query_spec.h"
#include "io/index_codec.h"
#include "serve/answer_cache.h"

namespace hydra::serve {
namespace {

const io::DatasetFingerprint kFpA{100, 64, 100 * 64 * 4};
const io::DatasetFingerprint kFpB{200, 64, 200 * 64 * 4};

core::QueryResult MakeResult(uint32_t id, size_t neighbors = 1) {
  core::QueryResult result;
  for (size_t i = 0; i < neighbors; ++i) {
    result.neighbors.push_back({id + static_cast<uint32_t>(i), 0.5 * (i + 1)});
  }
  result.stats.distance_computations = id;
  return result;
}

std::vector<core::Value> MakeQuery(float seed) {
  return {seed, seed + 1.0f, seed + 2.0f};
}

TEST(AnswerCacheTest, HitReturnsStoredResultAndCounts) {
  AnswerCache cache(1 << 20);
  const auto query = MakeQuery(1.0f);
  const std::string key =
      AnswerCache::Key(kFpA, core::QuerySpec::Knn(3), query);

  core::QueryResult out;
  EXPECT_FALSE(cache.Lookup(key, &out));
  cache.Insert(key, MakeResult(7, 3));
  ASSERT_TRUE(cache.Lookup(key, &out));
  ASSERT_EQ(out.neighbors.size(), 3u);
  EXPECT_EQ(out.neighbors[0].id, 7u);
  EXPECT_EQ(out.neighbors[2].dist_sq, 1.5);
  // The stats ledger replays too — a cached answer reports the original
  // query's work, so responses stay bit-identical.
  EXPECT_EQ(out.stats.distance_computations, 7);

  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.insertions, 1u);
  EXPECT_EQ(counters.evictions, 0u);
  EXPECT_EQ(counters.entries, 1u);
}

TEST(AnswerCacheTest, LruOrderEvictsColdestFirst) {
  // Budget for exactly three single-neighbor entries, then insert a
  // fourth: the least-recently-*used* (not least-recently-inserted)
  // entry must go.
  const auto spec = core::QuerySpec::Knn(1);
  std::vector<std::string> keys;
  for (int i = 0; i < 4; ++i) {
    keys.push_back(AnswerCache::Key(kFpA, spec, MakeQuery(float(i))));
  }
  size_t three = 0;
  {
    AnswerCache probe(1 << 20);
    for (int i = 0; i < 3; ++i) probe.Insert(keys[i], MakeResult(i));
    three = probe.counters().bytes;
  }

  AnswerCache cache(three);
  for (int i = 0; i < 3; ++i) cache.Insert(keys[i], MakeResult(i));
  EXPECT_EQ(cache.counters().entries, 3u);

  // Touch key 0 so key 1 becomes the coldest, then overflow.
  core::QueryResult out;
  ASSERT_TRUE(cache.Lookup(keys[0], &out));
  cache.Insert(keys[3], MakeResult(3));

  EXPECT_TRUE(cache.Lookup(keys[0], &out));
  EXPECT_FALSE(cache.Lookup(keys[1], &out)) << "coldest entry survived";
  EXPECT_TRUE(cache.Lookup(keys[2], &out));
  EXPECT_TRUE(cache.Lookup(keys[3], &out));
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(AnswerCacheTest, ByteBudgetIsRespected) {
  const auto spec = core::QuerySpec::Knn(1);
  AnswerCache cache(2048);
  for (int i = 0; i < 64; ++i) {
    cache.Insert(AnswerCache::Key(kFpA, spec, MakeQuery(float(i))),
                 MakeResult(i, 4));
    EXPECT_LE(cache.counters().bytes, 2048u);
  }
  const auto counters = cache.counters();
  EXPECT_GT(counters.evictions, 0u);
  EXPECT_GT(counters.entries, 0u);
  EXPECT_LT(counters.entries, 64u);
}

TEST(AnswerCacheTest, EntryLargerThanBudgetIsDropped) {
  AnswerCache cache(64);
  const std::string key =
      AnswerCache::Key(kFpA, core::QuerySpec::Knn(100), MakeQuery(1.0f));
  cache.Insert(key, MakeResult(1, 100));
  core::QueryResult out;
  EXPECT_FALSE(cache.Lookup(key, &out));
  EXPECT_EQ(cache.counters().entries, 0u);
  EXPECT_EQ(cache.counters().insertions, 0u);
}

TEST(AnswerCacheTest, ZeroBudgetDisablesTheCache) {
  AnswerCache cache(0);
  const std::string key =
      AnswerCache::Key(kFpA, core::QuerySpec::Knn(1), MakeQuery(1.0f));
  cache.Insert(key, MakeResult(1));
  core::QueryResult out;
  EXPECT_FALSE(cache.Lookup(key, &out));
}

TEST(AnswerCacheTest, KeysIsolateFingerprintSpecAndQuery) {
  const auto query = MakeQuery(1.0f);
  const auto knn3 = core::QuerySpec::Knn(3);

  // Different dataset, same spec + query: distinct keys.
  EXPECT_NE(AnswerCache::Key(kFpA, knn3, query),
            AnswerCache::Key(kFpB, knn3, query));
  // Different k: distinct keys.
  EXPECT_NE(AnswerCache::Key(kFpA, knn3, query),
            AnswerCache::Key(kFpA, core::QuerySpec::Knn(4), query));
  // Knn vs range: distinct keys even with overlapping parameter bytes.
  EXPECT_NE(AnswerCache::Key(kFpA, knn3, query),
            AnswerCache::Key(kFpA, core::QuerySpec::Range(1.0), query));
  // Different radius: distinct keys.
  EXPECT_NE(AnswerCache::Key(kFpA, core::QuerySpec::Range(1.0), query),
            AnswerCache::Key(kFpA, core::QuerySpec::Range(2.0), query));
  // Different query vector: distinct keys.
  EXPECT_NE(AnswerCache::Key(kFpA, knn3, query),
            AnswerCache::Key(kFpA, knn3, MakeQuery(2.0f)));
  // Identical inputs: identical keys (the whole point).
  EXPECT_EQ(AnswerCache::Key(kFpA, knn3, query),
            AnswerCache::Key(kFpA, knn3, MakeQuery(1.0f)));
}

TEST(AnswerCacheTest, CanonicalizationIgnoresInertKnobs) {
  // Fields that cannot change an exact answer (epsilon/delta defaults,
  // query_threads) are canonicalized away: specs differing only there
  // share one cache slot.
  const auto query = MakeQuery(1.0f);
  auto a = core::QuerySpec::Knn(3);
  auto b = core::QuerySpec::Knn(3);
  b.query_threads = 4;
  EXPECT_EQ(AnswerCache::Key(kFpA, a, query),
            AnswerCache::Key(kFpA, b, query));
}

TEST(AnswerCacheTest, OnlyExactUnbudgetedSpecsAreCacheable) {
  EXPECT_TRUE(AnswerCache::Cacheable(core::QuerySpec::Knn(3)));
  EXPECT_TRUE(AnswerCache::Cacheable(core::QuerySpec::Range(1.0)));

  // Approximate modes bypass: their answers depend on traversal state.
  EXPECT_FALSE(AnswerCache::Cacheable(core::QuerySpec::NgApprox(3)));
  EXPECT_FALSE(AnswerCache::Cacheable(core::QuerySpec::Epsilon(3, 0.5)));
  EXPECT_FALSE(
      AnswerCache::Cacheable(core::QuerySpec::DeltaEpsilon(3, 0.5, 0.5)));

  // Budgeted exact queries bypass: truncation depends on visit order.
  auto budgeted = core::QuerySpec::Knn(3);
  budgeted.max_raw_series = 100;
  EXPECT_FALSE(AnswerCache::Cacheable(budgeted));
  budgeted = core::QuerySpec::Knn(3);
  budgeted.max_visited_leaves = 5;
  EXPECT_FALSE(AnswerCache::Cacheable(budgeted));
}

TEST(AnswerCacheTest, RefreshReplacesValueWithoutDuplicating) {
  AnswerCache cache(1 << 20);
  const std::string key =
      AnswerCache::Key(kFpA, core::QuerySpec::Knn(1), MakeQuery(1.0f));
  cache.Insert(key, MakeResult(1));
  cache.Insert(key, MakeResult(2));
  EXPECT_EQ(cache.counters().entries, 1u);
  core::QueryResult out;
  ASSERT_TRUE(cache.Lookup(key, &out));
  EXPECT_EQ(out.neighbors[0].id, 2u);
}

}  // namespace
}  // namespace hydra::serve
