#include "util/thread_pool.h"

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace hydra::util {
namespace {

TEST(ThreadPoolTest, HardwareConcurrencyAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

TEST(ThreadPoolTest, SubmittedTasksAllRunBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kBegin = 7;
  constexpr size_t kEnd = 1000;
  std::vector<std::atomic<int>> visits(kEnd);
  pool.ParallelFor(kBegin, kEnd, [&](size_t i) {
    ASSERT_GE(i, kBegin);
    ASSERT_LT(i, kEnd);
    visits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kBegin; ++i) EXPECT_EQ(visits[i].load(), 0);
  for (size_t i = kBegin; i < kEnd; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](size_t) { ++calls; });
  pool.ParallelFor(9, 3, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForWithOneWorkerIsStillComplete) {
  ThreadPool pool(1);
  std::vector<int> out(64, 0);
  pool.ParallelFor(0, out.size(), [&](size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 64);
}

TEST(ThreadPoolTest, ParallelForRangeSmallerThanPool) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  pool.ParallelFor(0, 3, [&](size_t i) { visits[i].fetch_add(1); });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ParallelForIsReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.ParallelFor(0, 50, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500u);
}

// The shard fan-out leans on these edge shapes: a 1-shard container is a
// single-item ParallelFor, a many-shard container on a small pool is
// more-tasks-than-workers, and the merge reads the slots non-atomically
// right after ParallelFor returns.
TEST(ThreadPoolTest, ParallelForSingleItem) {
  ThreadPool pool(4);
  std::atomic<int> visits{0};
  size_t seen = 999;
  pool.ParallelFor(3, 4, [&](size_t i) {
    seen = i;
    visits.fetch_add(1);
  });
  EXPECT_EQ(visits.load(), 1);
  EXPECT_EQ(seen, 3u);
}

TEST(ThreadPoolTest, ParallelForManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  constexpr size_t kTasks = 10000;
  std::vector<std::atomic<int>> visits(kTasks);
  pool.ParallelFor(0, kTasks, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWritesAreVisibleAfterReturn) {
  // Completion ordering: ParallelFor must not return before every index
  // ran, and its return must happen-after every worker write — the merge
  // phase reads these slots without further synchronization. Plain
  // (non-atomic) writes make TSan the judge of the happens-before edge.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::vector<size_t> out(257, 0);
    pool.ParallelFor(0, out.size(), [&](size_t i) { out[i] = i + 1; });
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], i + 1) << "round " << round;
    }
  }
}

TEST(ThreadPoolTest, ParallelForFromConcurrentCallers) {
  // Two non-worker threads may drive the same pool at once (concurrent
  // outer queries each fanning out across shards); each call's indices
  // must complete exactly once, independently.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> a(500);
  std::vector<std::atomic<int>> b(500);
  std::thread caller_a([&] {
    pool.ParallelFor(0, a.size(), [&](size_t i) { a[i].fetch_add(1); });
  });
  std::thread caller_b([&] {
    pool.ParallelFor(0, b.size(), [&](size_t i) { b[i].fetch_add(1); });
  });
  caller_a.join();
  caller_b.join();
  for (auto& v : a) EXPECT_EQ(v.load(), 1);
  for (auto& v : b) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.ParallelFor(0, 200, [&](size_t) {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 2u);
  EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

}  // namespace
}  // namespace hydra::util
