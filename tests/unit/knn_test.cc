#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/knn.h"
#include "util/rng.h"

namespace hydra::core {
namespace {

TEST(KnnHeap, BoundInfiniteUntilFull) {
  KnnHeap heap(3);
  EXPECT_TRUE(std::isinf(heap.Bound()));
  heap.Offer(0, 1.0);
  heap.Offer(1, 2.0);
  EXPECT_TRUE(std::isinf(heap.Bound()));
  heap.Offer(2, 3.0);
  EXPECT_DOUBLE_EQ(heap.Bound(), 3.0);
}

TEST(KnnHeap, KeepsKSmallest) {
  KnnHeap heap(2);
  heap.Offer(0, 5.0);
  heap.Offer(1, 1.0);
  heap.Offer(2, 3.0);
  heap.Offer(3, 0.5);
  const auto result = heap.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 3u);
  EXPECT_DOUBLE_EQ(result[0].dist_sq, 0.5);
  EXPECT_EQ(result[1].id, 1u);
  EXPECT_DOUBLE_EQ(result[1].dist_sq, 1.0);
}

TEST(KnnHeap, IgnoresWorseCandidatesWhenFull) {
  KnnHeap heap(1);
  heap.Offer(0, 1.0);
  heap.Offer(1, 2.0);
  EXPECT_DOUBLE_EQ(heap.Bound(), 1.0);
  const auto result = heap.TakeSorted();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 0u);
}

TEST(KnnHeap, MatchesSortAgainstRandomStream) {
  util::Rng rng(9);
  const size_t k = 7;
  KnnHeap heap(k);
  std::vector<Neighbor> all;
  for (SeriesId i = 0; i < 500; ++i) {
    const double d = rng.Uniform(0.0, 100.0);
    heap.Offer(i, d);
    all.push_back({i, d});
  }
  std::sort(all.begin(), all.end());
  const auto result = heap.TakeSorted();
  ASSERT_EQ(result.size(), k);
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(result[i].id, all[i].id);
    EXPECT_DOUBLE_EQ(result[i].dist_sq, all[i].dist_sq);
  }
}

TEST(KnnHeap, TieBreakingSortsEqualDistancesById) {
  KnnHeap heap(3);
  heap.Offer(7, 2.0);
  heap.Offer(3, 2.0);
  heap.Offer(5, 1.0);
  EXPECT_DOUBLE_EQ(heap.Bound(), 2.0);
  const auto result = heap.TakeSorted();
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 5u);
  EXPECT_EQ(result[1].id, 3u);
  EXPECT_EQ(result[2].id, 7u);
}

TEST(KnnHeap, CandidateEqualToBoundRejectedWhenFull) {
  // The bsf test is strictly `<`: a candidate tying the current k-th
  // distance must not evict the incumbent (matches the paper's pruning,
  // which only recurses when a lower bound beats the bsf).
  KnnHeap heap(2);
  heap.Offer(0, 1.0);
  heap.Offer(1, 2.0);
  EXPECT_DOUBLE_EQ(heap.Bound(), 2.0);
  heap.Offer(9, 2.0);
  const auto result = heap.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 0u);
  EXPECT_EQ(result[1].id, 1u);
}

TEST(KnnHeap, DuplicateOffersCountTowardCapacityAndBound) {
  // The heap does not deduplicate by id; offering the same candidate twice
  // occupies two of the k slots, and Bound() leaves +inf exactly when the
  // k-th offer (duplicate or not) arrives.
  KnnHeap heap(3);
  heap.Offer(4, 1.5);
  EXPECT_TRUE(std::isinf(heap.Bound()));
  heap.Offer(4, 1.5);
  EXPECT_TRUE(std::isinf(heap.Bound()));
  heap.Offer(9, 0.5);
  EXPECT_DOUBLE_EQ(heap.Bound(), 1.5);
  const auto result = heap.TakeSorted();
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 9u);
  EXPECT_DOUBLE_EQ(result[0].dist_sq, 0.5);
  EXPECT_EQ(result[1].id, 4u);
  EXPECT_EQ(result[2].id, 4u);
  EXPECT_DOUBLE_EQ(result[1].dist_sq, 1.5);
  EXPECT_DOUBLE_EQ(result[2].dist_sq, 1.5);
}

TEST(RangeCollector, BoundaryDistanceEqualToRadiusSqIsKept) {
  // Range semantics are inclusive: dist_sq == r^2 is a match, and the
  // pruning bound never shrinks as matches accumulate.
  RangeCollector collector(4.0);
  collector.Offer(1, 4.0);
  collector.Offer(2, std::nextafter(4.0, 5.0));
  collector.Offer(3, 0.0);
  EXPECT_DOUBLE_EQ(collector.Bound(), 4.0);
  const auto result = collector.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 3u);
  EXPECT_DOUBLE_EQ(result[0].dist_sq, 0.0);
  EXPECT_EQ(result[1].id, 1u);
  EXPECT_DOUBLE_EQ(result[1].dist_sq, 4.0);
}

TEST(RangeCollector, ZeroRadiusKeepsOnlyExactMatches) {
  RangeCollector collector(0.0);
  collector.Offer(0, 0.0);
  collector.Offer(1, 1e-300);
  EXPECT_EQ(collector.size(), 1u);
  EXPECT_DOUBLE_EQ(collector.Bound(), 0.0);
}

TEST(KnnHeap, BoundTightensMonotonically) {
  util::Rng rng(10);
  KnnHeap heap(5);
  double prev = std::numeric_limits<double>::infinity();
  for (SeriesId i = 0; i < 200; ++i) {
    heap.Offer(i, rng.Uniform(0.0, 10.0));
    EXPECT_LE(heap.Bound(), prev);
    prev = heap.Bound();
  }
}

}  // namespace

TEST(KnnHeap, ResetReusesBufferAndReArms) {
  hydra::core::KnnHeap heap(2);
  heap.Offer(1, 4.0);
  heap.Offer(2, 1.0);
  heap.Offer(3, 9.0);  // rejected
  std::vector<hydra::core::Neighbor> out;
  heap.ExtractSortedTo(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 2u);
  EXPECT_EQ(out[1].id, 1u);
  // Re-armed with a different k: previous contents are gone, bound is +inf.
  heap.Reset(1);
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_TRUE(std::isinf(heap.Bound()));
  heap.Offer(7, 3.0);
  heap.ExtractSortedTo(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 7u);
}

TEST(KnnHeap, HugeKDoesNotPreallocate) {
  // k beyond any realistic collection: the heap must grow lazily to the
  // number of offered candidates, never reserve k slots upfront.
  hydra::core::KnnHeap heap(size_t{1} << 40);
  for (uint32_t i = 0; i < 100; ++i) heap.Offer(i, static_cast<double>(i));
  EXPECT_EQ(heap.size(), 100u);
  EXPECT_TRUE(std::isinf(heap.Bound()));  // still under-filled
}

TEST(KnnHeap, ScratchKnnHeapIsResetPerCall) {
  hydra::core::KnnHeap& a = hydra::core::ScratchKnnHeap(3);
  a.Offer(1, 1.0);
  hydra::core::KnnHeap& b = hydra::core::ScratchKnnHeap(2);
  EXPECT_EQ(&a, &b);        // same thread-local object...
  EXPECT_EQ(b.size(), 0u);  // ...re-armed empty by the second call
}

TEST(SharedBound, TightenIsMonotoneMin) {
  hydra::core::SharedBound bound;
  EXPECT_TRUE(std::isinf(bound.Load()));
  bound.Tighten(9.0);
  EXPECT_EQ(bound.Load(), 9.0);
  bound.Tighten(25.0);  // looser: ignored
  EXPECT_EQ(bound.Load(), 9.0);
  bound.Tighten(4.0);
  EXPECT_EQ(bound.Load(), 4.0);
}

TEST(KnnHeap, SharedBoundTightensBoundAndPublishesKth) {
  hydra::core::SharedBound shared;
  hydra::core::KnnHeap heap(2);
  heap.ShareBound(&shared);
  // Under-filled: nothing published, Bound() still reflects the shared
  // side only (infinite here).
  heap.Offer(0, 4.0);
  EXPECT_TRUE(std::isinf(shared.Load()));
  EXPECT_TRUE(std::isinf(heap.Bound()));
  // Full: the k-th (= worst kept) distance is published.
  heap.Offer(1, 9.0);
  EXPECT_EQ(shared.Load(), 9.0);
  EXPECT_EQ(heap.Bound(), 9.0);
  // Improvements keep publishing.
  heap.Offer(2, 1.0);
  EXPECT_EQ(shared.Load(), 4.0);
  // A tighter *shared* value (another shard's k-th) tightens Bound()
  // without touching the local heap contents.
  shared.Tighten(2.0);
  EXPECT_EQ(heap.Bound(), 2.0);
  EXPECT_EQ(heap.size(), 2u);
  std::vector<hydra::core::Neighbor> out;
  heap.ExtractSortedTo(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 2u);
  EXPECT_EQ(out[1].id, 0u);
}

TEST(KnnHeap, AttachingWhenAlreadyFullPublishesImmediately) {
  hydra::core::SharedBound shared;
  hydra::core::KnnHeap heap(1);
  heap.Offer(3, 7.0);
  heap.ShareBound(&shared);
  EXPECT_EQ(shared.Load(), 7.0);
}

TEST(KnnHeap, ResetDetachesTheSharedBound) {
  hydra::core::SharedBound shared;
  shared.Tighten(1.0);
  hydra::core::KnnHeap heap(1);
  heap.ShareBound(&shared);
  EXPECT_EQ(heap.Bound(), 1.0);
  // A reused heap must not leak the previous query's bound into the next.
  heap.Reset(1);
  EXPECT_TRUE(std::isinf(heap.Bound()));
  heap.Offer(0, 50.0);
  EXPECT_EQ(heap.Bound(), 50.0);
  EXPECT_EQ(shared.Load(), 1.0);  // detached: no publish either
}

}  // namespace hydra::core
