// QuerySpec validation and KnnPlan derivation: Execute must CHECK-abort on
// malformed specs (library misuse; the CLI validates user input first) and
// the plan's caps must implement the delta leaf-visit rule exactly.
#include <gtest/gtest.h>

#include "bench/registry.h"
#include "core/method.h"
#include "core/query_spec.h"
#include "gen/random_walk.h"
#include "gen/workload.h"

namespace hydra::core {
namespace {

class SpecDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = gen::RandomWalkDataset(200, 64, 111);
    workload_ = gen::RandWorkload(1, 64, 112);
    method_ = bench::CreateMethod("DSTree", 32);
    method_->Build(data_);
  }

  QueryResult Run(const QuerySpec& spec) {
    return method_->Execute(workload_.queries[0], spec);
  }

  Dataset data_;
  gen::Workload workload_;
  std::unique_ptr<SearchMethod> method_;
};

TEST_F(SpecDeathTest, ZeroKAborts) {
  EXPECT_DEATH(Run(QuerySpec::Knn(0)), "k >= 1");
}

TEST_F(SpecDeathTest, NegativeRadiusAborts) {
  EXPECT_DEATH(Run(QuerySpec::Range(-1.0)), "non-negative");
}

TEST_F(SpecDeathTest, NegativeEpsilonAborts) {
  EXPECT_DEATH(Run(QuerySpec::Epsilon(3, -0.5)), "epsilon");
}

TEST_F(SpecDeathTest, DeltaOutsideUnitIntervalAborts) {
  EXPECT_DEATH(Run(QuerySpec::DeltaEpsilon(3, 1.0, 0.0)), "delta");
  EXPECT_DEATH(Run(QuerySpec::DeltaEpsilon(3, 1.0, 1.5)), "delta");
}

TEST_F(SpecDeathTest, ApproximateRangeAborts) {
  QuerySpec spec = QuerySpec::Range(5.0);
  spec.mode = QualityMode::kEpsilon;
  spec.epsilon = 0.5;
  EXPECT_DEATH(Run(spec), "exact");
}

TEST_F(SpecDeathTest, BudgetedRangeAborts) {
  QuerySpec spec = QuerySpec::Range(5.0);
  spec.max_raw_series = 10;
  EXPECT_DEATH(Run(spec), "budget");
}

TEST_F(SpecDeathTest, BudgetedNgAborts) {
  QuerySpec spec = QuerySpec::NgApprox(3);
  spec.max_visited_leaves = 2;
  EXPECT_DEATH(Run(spec), "ng");
}

TEST_F(SpecDeathTest, NegativeBudgetAborts) {
  QuerySpec spec = QuerySpec::Knn(3);
  spec.max_raw_series = -1;
  EXPECT_DEATH(Run(spec), "budget");
}

TEST_F(SpecDeathTest, LeafBudgetOnLeaflessMethodAborts) {
  // UCR-Suite has no leaf-visit unit, so a leaf budget could never fire —
  // Execute refuses it instead of silently ignoring it.
  auto scan = bench::CreateMethod("UCR-Suite");
  scan->Build(data_);
  QuerySpec spec = QuerySpec::Knn(3);
  spec.max_visited_leaves = 2;
  EXPECT_DEATH(scan->Execute(workload_.queries[0], spec),
               "leaf-visit unit");
  // The same spec is legal on a method whose traversal counts leaves.
  EXPECT_EQ(Run(spec).neighbors.size(), 3u);
}

TEST(KnnPlan, DefaultPlanHasNoEffect) {
  const KnnPlan plan;
  EXPECT_DOUBLE_EQ(plan.bound_scale, 1.0);
  EXPECT_EQ(plan.LeafCap(1000), KnnPlan::kUnlimited);
  EXPECT_EQ(plan.DeltaCap(1000), KnnPlan::kUnlimited);
}

TEST(KnnPlan, DeltaCapIsCeilOfFraction) {
  KnnPlan plan;
  plan.delta = 0.25;
  EXPECT_EQ(plan.DeltaCap(100), 25);
  EXPECT_EQ(plan.DeltaCap(101), 26);  // ceil
  EXPECT_EQ(plan.DeltaCap(1), 1);     // never below one leaf
  plan.delta = 0.001;
  EXPECT_EQ(plan.DeltaCap(100), 1);
}

TEST(KnnPlan, LeafCapTakesTheTighterOfDeltaAndBudget) {
  KnnPlan plan;
  plan.delta = 0.5;
  plan.max_leaves = 10;
  EXPECT_EQ(plan.LeafCap(100), 10);  // budget tighter
  EXPECT_EQ(plan.LeafCap(10), 5);    // delta tighter
}

TEST(ModeFallback, ReasonListsSupportedModes) {
  const auto scan = bench::CreateMethod("UCR-Suite");
  EXPECT_EQ(ModeFallbackReason(scan->traits(), QualityMode::kExact), "");
  EXPECT_EQ(ModeFallbackReason(scan->traits(), QualityMode::kEpsilon),
            "method supports modes: exact");
  const auto mtree = bench::CreateMethod("M-tree");
  EXPECT_EQ(ModeFallbackReason(mtree->traits(), QualityMode::kEpsilon), "");
  EXPECT_EQ(ModeFallbackReason(mtree->traits(), QualityMode::kNgApprox),
            "method supports modes: exact, epsilon");
  const auto tree = bench::CreateMethod("DSTree");
  EXPECT_EQ(ModeFallbackReason(tree->traits(), QualityMode::kDeltaEpsilon),
            "");
}

TEST(SearchStatsMerge, KeepsWeakestGuaranteeAndAnyBudget) {
  SearchStats a;
  a.answer_mode_delivered = QualityMode::kEpsilon;
  SearchStats b;
  b.answer_mode_delivered = QualityMode::kExact;
  b.budget_exhausted = true;
  a.Add(b);
  EXPECT_EQ(a.answer_mode_delivered, QualityMode::kEpsilon);
  EXPECT_TRUE(a.budget_exhausted);
  SearchStats c;
  c.answer_mode_delivered = QualityMode::kNgApprox;
  a.Add(c);
  EXPECT_EQ(a.answer_mode_delivered, QualityMode::kNgApprox);
}

}  // namespace
}  // namespace hydra::core
