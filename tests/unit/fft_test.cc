#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "transform/dft.h"
#include "transform/fft.h"
#include "util/rng.h"

namespace hydra::transform {
namespace {

using Complex = std::complex<double>;

std::vector<core::Value> RandomSeries(util::Rng* rng, size_t n) {
  std::vector<core::Value> x(n);
  for (auto& v : x) v = static_cast<core::Value>(rng->Gaussian());
  return x;
}

TEST(Fft, PowerOfTwoRoundTrip) {
  util::Rng rng(1);
  std::vector<Complex> a(64);
  for (auto& v : a) v = Complex(rng.Gaussian(), rng.Gaussian());
  const auto original = a;
  Fft(&a, false);
  Fft(&a, true);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(a[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(Fft, NonPowerOfTwoRoundTrip) {
  // Bluestein path (96 = the Deep1B series length; 100, 37 are stress cases).
  for (size_t n : {96u, 100u, 37u, 3u}) {
    util::Rng rng(n);
    std::vector<Complex> a(n);
    for (auto& v : a) v = Complex(rng.Gaussian(), rng.Gaussian());
    const auto original = a;
    Fft(&a, false);
    Fft(&a, true);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(a[i].real(), original[i].real(), 1e-8) << "n=" << n;
      EXPECT_NEAR(a[i].imag(), original[i].imag(), 1e-8) << "n=" << n;
    }
  }
}

TEST(Fft, MatchesNaiveDft) {
  const size_t n = 24;
  util::Rng rng(5);
  std::vector<Complex> a(n);
  for (auto& v : a) v = Complex(rng.Gaussian(), rng.Gaussian());
  std::vector<Complex> naive(n, Complex(0, 0));
  for (size_t k = 0; k < n; ++k) {
    for (size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * M_PI * static_cast<double>(j * k) / n;
      naive[k] += a[j] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  Fft(&a, false);
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(a[k].real(), naive[k].real(), 1e-8);
    EXPECT_NEAR(a[k].imag(), naive[k].imag(), 1e-8);
  }
}

TEST(Fft, DeltaFunctionIsFlat) {
  std::vector<Complex> a(16, Complex(0, 0));
  a[0] = Complex(1, 0);
  Fft(&a, false);
  for (const auto& v : a) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(PackedRealDft, ParsevalHolds) {
  // The packed transform is orthonormal: energy is preserved exactly.
  for (size_t n : {32u, 96u, 128u, 17u}) {
    util::Rng rng(n);
    const auto x = RandomSeries(&rng, n);
    const auto packed = PackedRealDft(x, MaxPackedCoeffs(n, false), false);
    double ex = 0.0;
    for (const auto v : x) ex += static_cast<double>(v) * v;
    double ep = 0.0;
    for (const double v : packed) ep += v * v;
    EXPECT_NEAR(ex, ep, 1e-8 * std::max(1.0, ex)) << "n=" << n;
  }
}

TEST(PackedRealDft, DistancePreservedInFullSpace) {
  util::Rng rng(11);
  const size_t n = 64;
  const auto x = RandomSeries(&rng, n);
  const auto y = RandomSeries(&rng, n);
  const auto px = PackedRealDft(x, n, false);
  const auto py = PackedRealDft(y, n, false);
  double packed_dist = 0.0;
  for (size_t i = 0; i < px.size(); ++i) {
    packed_dist += (px[i] - py[i]) * (px[i] - py[i]);
  }
  EXPECT_NEAR(packed_dist, core::SquaredEuclidean(x, y), 1e-8);
}

TEST(PackedRealDft, TruncationLowerBounds) {
  util::Rng rng(12);
  const size_t n = 128;
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = RandomSeries(&rng, n);
    const auto y = RandomSeries(&rng, n);
    const double exact = core::SquaredEuclidean(x, y);
    for (size_t m : {4u, 8u, 16u, 64u}) {
      const auto px = PackedRealDft(x, m, true);
      const auto py = PackedRealDft(y, m, true);
      double d = 0.0;
      for (size_t i = 0; i < px.size(); ++i) {
        d += (px[i] - py[i]) * (px[i] - py[i]);
      }
      EXPECT_LE(d, exact + 1e-7) << "m=" << m;
    }
  }
}

TEST(PackedRealDft, DcSkipZeroForNormalizedSeries) {
  util::Rng rng(13);
  std::vector<core::Value> x = RandomSeries(&rng, 32);
  // Normalize to zero mean.
  double mean = 0.0;
  for (auto v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (auto& v : x) v -= static_cast<core::Value>(mean);
  const auto with_dc = PackedRealDft(x, 4, false);
  EXPECT_NEAR(with_dc[0], 0.0, 1e-5);  // DC coefficient vanishes
}

TEST(PackedRealDft, CoefficientCount) {
  EXPECT_EQ(MaxPackedCoeffs(8, false), 8u);
  EXPECT_EQ(MaxPackedCoeffs(8, true), 7u);
  util::Rng rng(14);
  const auto x = RandomSeries(&rng, 8);
  EXPECT_EQ(PackedRealDft(x, 100, false).size(), 8u);
  EXPECT_EQ(PackedRealDft(x, 3, false).size(), 3u);
}

TEST(FftHelpers, PowerOfTwoPredicates) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(96));
  EXPECT_EQ(NextPowerOfTwo(96), 128u);
  EXPECT_EQ(NextPowerOfTwo(128), 128u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
}

}  // namespace
}  // namespace hydra::transform
