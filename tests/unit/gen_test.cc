#include <cmath>

#include <gtest/gtest.h>

#include "gen/random_walk.h"
#include "gen/realistic.h"
#include "core/method.h"
#include "gen/workload.h"
#include "transform/dft.h"

namespace hydra::gen {
namespace {

void ExpectZNormalized(const core::Dataset& d) {
  for (size_t i = 0; i < d.size(); ++i) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const core::Value v : d[i]) {
      sum += v;
      sum_sq += static_cast<double>(v) * v;
    }
    const double n = static_cast<double>(d.length());
    EXPECT_NEAR(sum / n, 0.0, 1e-4) << d.name() << " series " << i;
    const double var = sum_sq / n;
    if (var > 0.0) {
      EXPECT_NEAR(var, 1.0, 1e-3);
    }
  }
}

TEST(RandomWalk, ShapeAndNormalization) {
  const auto d = RandomWalkDataset(50, 128, 1);
  EXPECT_EQ(d.size(), 50u);
  EXPECT_EQ(d.length(), 128u);
  ExpectZNormalized(d);
}

TEST(RandomWalk, DeterministicPerSeed) {
  const auto a = RandomWalkDataset(5, 64, 7);
  const auto b = RandomWalkDataset(5, 64, 7);
  const auto c = RandomWalkDataset(5, 64, 8);
  for (size_t j = 0; j < 64; ++j) EXPECT_FLOAT_EQ(a[0][j], b[0][j]);
  bool differs = false;
  for (size_t j = 0; j < 64; ++j) differs |= (a[0][j] != c[0][j]);
  EXPECT_TRUE(differs);
}

TEST(RealisticFamilies, AllGenerateAndNormalize) {
  for (const std::string family : {"seismic", "astro", "sald", "deep"}) {
    const auto d = MakeDataset(family, 30, 96, 3);
    EXPECT_EQ(d.size(), 30u) << family;
    EXPECT_EQ(d.length(), 96u) << family;
    ExpectZNormalized(d);
  }
}

// The families differ in spectral concentration: SALD-like (smooth) series
// concentrate energy in few coefficients, deep-like spread it out. This is
// the property that differentiates method behaviour across datasets.
double MeanPrefixEnergy(const core::Dataset& d, size_t coeffs) {
  double total = 0.0;
  for (size_t i = 0; i < d.size(); ++i) {
    const auto dft = transform::PackedRealDft(d[i], coeffs, true);
    double e = 0.0;
    for (const double v : dft) e += v * v;
    total += e / static_cast<double>(d.length());
  }
  return total / static_cast<double>(d.size());
}

TEST(RealisticFamilies, SpectralConcentrationOrdering) {
  const size_t len = 128;
  const auto sald = SaldLikeDataset(60, len, 5);
  const auto deep = DeepLikeDataset(60, len, 5);
  const auto walk = RandomWalkDataset(60, len, 5);
  const double e_sald = MeanPrefixEnergy(sald, 16);
  const double e_deep = MeanPrefixEnergy(deep, 16);
  const double e_walk = MeanPrefixEnergy(walk, 16);
  EXPECT_GT(e_sald, e_deep);  // smooth beats embedding-like
  EXPECT_GT(e_walk, e_deep);  // random walks are low-frequency heavy
}

TEST(Workload, RandWorkloadShape) {
  const auto w = RandWorkload(20, 64, 11);
  EXPECT_EQ(w.queries.size(), 20u);
  EXPECT_EQ(w.queries.length(), 64u);
  EXPECT_TRUE(w.noise_levels.empty());
}

TEST(Workload, CtrlWorkloadNoiseProgression) {
  const auto data = RandomWalkDataset(100, 64, 12);
  const auto w = CtrlWorkload(data, 10, 13, 0.1, 2.0);
  ASSERT_EQ(w.noise_levels.size(), 10u);
  EXPECT_DOUBLE_EQ(w.noise_levels.front(), 0.1);
  EXPECT_DOUBLE_EQ(w.noise_levels.back(), 2.0);
  for (size_t i = 1; i < w.noise_levels.size(); ++i) {
    EXPECT_GT(w.noise_levels[i], w.noise_levels[i - 1]);
  }
  ExpectZNormalized(w.queries);
}

TEST(Workload, LowNoiseQueriesStayCloseToSource) {
  // A barely perturbed dataset series should have a very close NN, while a
  // heavily perturbed one should not: this is the difficulty control.
  const auto data = RandomWalkDataset(200, 64, 14);
  const auto easy = CtrlWorkload(data, 5, 15, 0.01, 0.01);
  const auto hard = CtrlWorkload(data, 5, 15, 3.0, 3.0);
  auto nn_dist = [&](const core::Dataset& queries) {
    double total = 0.0;
    for (size_t q = 0; q < queries.size(); ++q) {
      const auto nn = core::BruteForceKnn(data, queries[q], 1);
      total += std::sqrt(nn.front().dist_sq);
    }
    return total / static_cast<double>(queries.size());
  };
  EXPECT_LT(nn_dist(easy.queries), nn_dist(hard.queries));
}

TEST(Workload, CtrlNamesFollowDataset) {
  const auto data = SeismicLikeDataset(20, 64, 16);
  const auto w = CtrlWorkload(data, 3, 17);
  EXPECT_EQ(w.name, "Seismic-Ctrl");
}

}  // namespace
}  // namespace hydra::gen
