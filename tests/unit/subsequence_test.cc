#include <cmath>

#include <gtest/gtest.h>

#include "bench/registry.h"
#include "core/distance.h"
#include "core/method.h"
#include "gen/random_walk.h"
#include "gen/subsequence.h"

namespace hydra::gen {
namespace {

TEST(ChopForWholeMatching, CountsAndOrigins) {
  const auto longs = RandomWalkDataset(3, 100, 771);
  const auto chopped = ChopForWholeMatching(longs, 20, /*stride=*/10);
  // Each 100-long series yields offsets 0,10,...,80 -> 9 windows.
  ASSERT_EQ(chopped.windows.size(), 27u);
  ASSERT_EQ(chopped.origins.size(), 27u);
  EXPECT_EQ(chopped.windows.length(), 20u);
  EXPECT_EQ(chopped.origins[0].source, 0u);
  EXPECT_EQ(chopped.origins[0].offset, 0u);
  EXPECT_EQ(chopped.origins[9].source, 1u);
  EXPECT_EQ(chopped.origins[26].offset, 80u);
}

TEST(ChopForWholeMatching, Stride1EnumeratesAllSubsequences) {
  const auto longs = RandomWalkDataset(1, 64, 772);
  const auto chopped = ChopForWholeMatching(longs, 16, 1);
  EXPECT_EQ(chopped.windows.size(), 64u - 16u + 1u);
}

TEST(ChopForWholeMatching, WindowsAreZNormalized) {
  const auto longs = RandomWalkDataset(2, 80, 773);
  const auto chopped = ChopForWholeMatching(longs, 32, 8);
  for (size_t i = 0; i < chopped.windows.size(); ++i) {
    double sum = 0.0;
    for (const core::Value v : chopped.windows[i]) sum += v;
    EXPECT_NEAR(sum / 32.0, 0.0, 1e-4);
  }
}

TEST(ChopForWholeMatching, RawWindowsMatchSource) {
  const auto longs = RandomWalkDataset(1, 50, 774);
  const auto chopped =
      ChopForWholeMatching(longs, 10, 5, /*znormalize_windows=*/false);
  for (size_t w = 0; w < chopped.windows.size(); ++w) {
    const auto& origin = chopped.origins[w];
    for (size_t j = 0; j < 10; ++j) {
      EXPECT_FLOAT_EQ(chopped.windows[w][j],
                      longs[origin.source][origin.offset + j]);
    }
  }
}

TEST(ChopForWholeMatching, SubsequenceQueryFindsPlantedPattern) {
  // End-to-end subsequence matching via whole matching: plant a known
  // pattern inside a long series and find it with an index.
  const size_t window = 32;
  auto longs = RandomWalkDataset(5, 512, 775);
  const auto pattern_src = RandomWalkDataset(1, window, 776);
  // Plant the pattern at a known position of series 3 by rebuilding the
  // collection (datasets are append-only).
  core::Dataset planted("planted", 512);
  std::vector<core::Value> buf(512);
  for (size_t i = 0; i < longs.size(); ++i) {
    for (size_t j = 0; j < 512; ++j) buf[j] = longs[i][j];
    if (i == 3) {
      for (size_t j = 0; j < window; ++j) buf[100 + j] = pattern_src[0][j];
    }
    planted.Append(buf);
  }
  const auto chopped = ChopForWholeMatching(planted, window, 1);
  auto index = bench::CreateMethod("DSTree", 128);
  index->Build(chopped.windows);
  // Query with the (normalized) pattern.
  std::vector<core::Value> query(pattern_src[0].begin(),
                                 pattern_src[0].end());
  core::ZNormalize(query);
  const auto result = index->SearchKnn(query, 1);
  ASSERT_EQ(result.neighbors.size(), 1u);
  const auto& origin = chopped.origins[result.neighbors[0].id];
  EXPECT_EQ(origin.source, 3u);
  EXPECT_EQ(origin.offset, 100u);
  EXPECT_NEAR(result.neighbors[0].dist_sq, 0.0, 1e-6);
}

}  // namespace
}  // namespace hydra::gen
