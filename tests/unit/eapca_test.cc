#include <cmath>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "transform/eapca.h"
#include "util/rng.h"

namespace hydra::transform {
namespace {

std::vector<core::Value> RandomSeries(util::Rng* rng, size_t n) {
  std::vector<core::Value> x(n);
  for (auto& v : x) v = static_cast<core::Value>(rng->Gaussian());
  return x;
}

TEST(Segmentation, UniformCoversRange) {
  const auto seg = Segmentation::Uniform(10, 3);
  ASSERT_EQ(seg.segments(), 3u);
  EXPECT_EQ(seg.begin_of(0), 0u);
  EXPECT_EQ(seg.ends[2], 10u);
  size_t total = 0;
  for (size_t s = 0; s < 3; ++s) total += seg.length_of(s);
  EXPECT_EQ(total, 10u);
}

TEST(ComputeEapca, MeanAndStddevPerSegment) {
  const std::vector<core::Value> x = {1, 1, 5, 9};
  const auto seg = Segmentation::Uniform(4, 2);
  const auto e = ComputeEapca(x, seg);
  ASSERT_EQ(e.size(), 2u);
  EXPECT_DOUBLE_EQ(e[0].mean, 1.0);
  EXPECT_DOUBLE_EQ(e[0].stddev, 0.0);
  EXPECT_DOUBLE_EQ(e[1].mean, 7.0);
  EXPECT_DOUBLE_EQ(e[1].stddev, 2.0);
}

TEST(EapcaPointLb, LowerBoundsTrueDistance) {
  util::Rng rng(41);
  const size_t n = 96;
  for (const size_t segments : {1u, 3u, 8u}) {
    const auto seg = Segmentation::Uniform(n, segments);
    for (int trial = 0; trial < 200; ++trial) {
      const auto x = RandomSeries(&rng, n);
      const auto y = RandomSeries(&rng, n);
      const double lb =
          EapcaPointLbSq(ComputeEapca(x, seg), ComputeEapca(y, seg), seg);
      EXPECT_LE(lb, core::SquaredEuclidean(x, y) + 1e-9)
          << "segments=" << segments;
    }
  }
}

TEST(EapcaNodeBounds, EnvelopeBoundsMembers) {
  util::Rng rng(42);
  const size_t n = 64;
  const auto seg = Segmentation::Uniform(n, 4);

  // Build an envelope over a small "node" of series.
  std::vector<std::vector<core::Value>> members;
  std::vector<SegmentRange> ranges(seg.segments());
  for (int i = 0; i < 20; ++i) {
    members.push_back(RandomSeries(&rng, n));
    const auto stats = ComputeEapca(members.back(), seg);
    for (size_t s = 0; s < seg.segments(); ++s) {
      ranges[s].Extend(stats[s], i == 0);
    }
  }
  for (int trial = 0; trial < 50; ++trial) {
    const auto q = RandomSeries(&rng, n);
    const auto q_stats = ComputeEapca(q, seg);
    const double lb = EapcaNodeLbSq(q_stats, ranges, seg);
    const double ub = EapcaNodeUbSq(q_stats, ranges, seg);
    for (const auto& m : members) {
      const double d = core::SquaredEuclidean(q, m);
      EXPECT_LE(lb, d + 1e-9);
      EXPECT_GE(ub, d - 1e-9);
    }
  }
}

TEST(EapcaNodeBounds, TightForSingletonEnvelope) {
  // A node holding one series: lb equals the point lower bound.
  util::Rng rng(43);
  const size_t n = 32;
  const auto seg = Segmentation::Uniform(n, 4);
  const auto x = RandomSeries(&rng, n);
  const auto q = RandomSeries(&rng, n);
  const auto xs = ComputeEapca(x, seg);
  std::vector<SegmentRange> ranges(seg.segments());
  for (size_t s = 0; s < seg.segments(); ++s) ranges[s].Extend(xs[s], true);
  const auto qs = ComputeEapca(q, seg);
  EXPECT_NEAR(EapcaNodeLbSq(qs, ranges, seg), EapcaPointLbSq(qs, xs, seg),
              1e-9);
}

TEST(SegmentRange, ExtendGrowsEnvelope) {
  SegmentRange r;
  r.Extend({1.0, 0.5}, true);
  r.Extend({2.0, 0.1}, false);
  EXPECT_DOUBLE_EQ(r.min_mean, 1.0);
  EXPECT_DOUBLE_EQ(r.max_mean, 2.0);
  EXPECT_DOUBLE_EQ(r.min_std, 0.1);
  EXPECT_DOUBLE_EQ(r.max_std, 0.5);
}

TEST(EapcaPointLb, FinerSegmentationIsTighter) {
  // Refining the segmentation can only improve (or keep) the bound on
  // average; verify on aggregate.
  util::Rng rng(44);
  const size_t n = 64;
  const auto coarse = Segmentation::Uniform(n, 2);
  const auto fine = Segmentation::Uniform(n, 8);
  double coarse_sum = 0.0;
  double fine_sum = 0.0;
  for (int trial = 0; trial < 100; ++trial) {
    const auto x = RandomSeries(&rng, n);
    const auto y = RandomSeries(&rng, n);
    coarse_sum += EapcaPointLbSq(ComputeEapca(x, coarse),
                                 ComputeEapca(y, coarse), coarse);
    fine_sum +=
        EapcaPointLbSq(ComputeEapca(x, fine), ComputeEapca(y, fine), fine);
  }
  EXPECT_GT(fine_sum, coarse_sum);
}

}  // namespace
}  // namespace hydra::transform
