#include <cmath>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "transform/isax.h"
#include "transform/paa.h"
#include "transform/sax.h"
#include "util/rng.h"

namespace hydra::transform {
namespace {

TEST(SaxBreakpoints, EquiDepthGaussian) {
  const auto& bp = SaxBreakpoints::Get();
  const auto b1 = bp.For(1);
  ASSERT_EQ(b1.size(), 1u);
  EXPECT_NEAR(b1[0], 0.0, 1e-9);  // median of N(0,1)
  const auto b2 = bp.For(2);
  ASSERT_EQ(b2.size(), 3u);
  EXPECT_NEAR(b2[1], 0.0, 1e-9);
  EXPECT_NEAR(b2[0], -b2[2], 1e-9);  // symmetric quartiles
}

TEST(SaxBreakpoints, NestedAcrossCardinalities) {
  // Every breakpoint at b bits appears among the breakpoints at b+1 bits;
  // this is what makes iSAX's variable cardinality sound.
  const auto& bp = SaxBreakpoints::Get();
  for (int bits = 1; bits < kMaxSaxBits; ++bits) {
    const auto coarse = bp.For(bits);
    const auto fine = bp.For(bits + 1);
    for (size_t i = 0; i < coarse.size(); ++i) {
      EXPECT_NEAR(coarse[i], fine[2 * i + 1], 1e-9);
    }
  }
}

TEST(SaxSymbol, PrefixPropertyAcrossResolutions) {
  util::Rng rng(31);
  for (int trial = 0; trial < 1000; ++trial) {
    const double v = rng.Gaussian(0.0, 2.0);
    const uint8_t full = SaxSymbol(v, kMaxSaxBits);
    for (int bits = 1; bits <= kMaxSaxBits; ++bits) {
      EXPECT_EQ(SaxSymbol(v, bits), ReduceSymbol(full, bits))
          << "v=" << v << " bits=" << bits;
    }
  }
}

TEST(SaxSymbol, ExtremesMapToEndSymbols) {
  EXPECT_EQ(SaxSymbol(-100.0, 3), 0);
  EXPECT_EQ(SaxSymbol(100.0, 3), 7);
}

TEST(SaxBreakpoints, SymbolRegionsCoverTheLine) {
  const auto& bp = SaxBreakpoints::Get();
  for (int bits : {1, 3, 8}) {
    const int cardinality = 1 << bits;
    EXPECT_TRUE(std::isinf(bp.SymbolLower(0, bits)));
    EXPECT_TRUE(std::isinf(bp.SymbolUpper(
        static_cast<uint8_t>(cardinality - 1), bits)));
    for (int s = 0; s + 1 < cardinality; ++s) {
      EXPECT_DOUBLE_EQ(bp.SymbolUpper(static_cast<uint8_t>(s), bits),
                       bp.SymbolLower(static_cast<uint8_t>(s + 1), bits));
    }
  }
}

TEST(IsaxWord, CoverageAtReducedResolution) {
  std::vector<double> paa = {-1.5, 0.2, 1.7, 0.0};
  IsaxWord full = FullResolutionWord(paa);
  IsaxWord node;
  node.symbols.resize(4);
  node.bits.assign(4, 2);
  for (size_t s = 0; s < 4; ++s) {
    node.symbols[s] = ReduceSymbol(full.symbols[s], 2);
  }
  EXPECT_TRUE(WordCovers(node, full));
  node.symbols[1] = static_cast<uint8_t>(node.symbols[1] ^ 1u);
  EXPECT_FALSE(WordCovers(node, full));
}

TEST(IsaxWord, RootWordCoversEverything) {
  std::vector<double> paa = {-3.0, 3.0};
  IsaxWord full = FullResolutionWord(paa);
  IsaxWord root;
  root.symbols.assign(2, 0);
  root.bits.assign(2, 0);
  EXPECT_TRUE(WordCovers(root, full));
  EXPECT_DOUBLE_EQ(IsaxMinDistSq(paa, root, 8), 0.0);
}

TEST(IsaxMinDist, ZeroWhenInsideRegion) {
  std::vector<double> paa = {0.1, -0.1};
  IsaxWord w = FullResolutionWord(paa);
  EXPECT_DOUBLE_EQ(IsaxMinDistSq(paa, w, 4), 0.0);
}

TEST(IsaxMinDist, LowerBoundsTrueDistanceRandomized) {
  util::Rng rng(32);
  const size_t n = 64;
  const size_t segments = 8;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<core::Value> x(n);
    std::vector<core::Value> y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = static_cast<core::Value>(rng.Gaussian());
      y[i] = static_cast<core::Value>(rng.Gaussian());
    }
    const auto paa_x = Paa(x, segments);
    const auto paa_y = Paa(y, segments);
    IsaxWord wy = FullResolutionWord(paa_y);
    // Also check at random reduced resolutions.
    for (size_t s = 0; s < segments; ++s) {
      const int bits = static_cast<int>(rng.UniformInt(1, kMaxSaxBits));
      wy.symbols[s] = ReduceSymbol(wy.symbols[s], bits);
      wy.bits[s] = static_cast<uint8_t>(bits);
    }
    const double lb = IsaxMinDistSq(paa_x, wy, n / segments);
    EXPECT_LE(lb, core::SquaredEuclidean(x, y) + 1e-9);
  }
}

TEST(IsaxWord, DebugStringFormat) {
  IsaxWord w;
  w.symbols = {3, 0};
  w.bits = {2, 1};
  EXPECT_EQ(w.DebugString(), "3@2 0@1");
}

}  // namespace
}  // namespace hydra::transform
