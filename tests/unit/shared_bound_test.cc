// SharedBound / KnnHeap::ShareBound contract: the cross-worker bound is a
// monotone CAS-min that heaps publish into and read through; Reset
// detaches it (a bound belongs to one query), and attach/publish stay
// correct under concurrent publishers — the invariant both the sharded
// fan-out and the intra-query traversal engine lean on.
#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/knn.h"

namespace hydra::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(SharedBoundTest, TightenIsMonotoneMin) {
  SharedBound bound;
  EXPECT_EQ(bound.Load(), kInf);
  bound.Tighten(9.0);
  EXPECT_EQ(bound.Load(), 9.0);
  bound.Tighten(25.0);  // looser: must not raise the bound
  EXPECT_EQ(bound.Load(), 9.0);
  bound.Tighten(4.0);
  EXPECT_EQ(bound.Load(), 4.0);
}

TEST(SharedBoundTest, AttachPublishesExistingKth) {
  KnnHeap heap(2);
  heap.Offer(0, 16.0);
  heap.Offer(1, 4.0);
  SharedBound bound;
  // The heap is already full, so attaching must publish its k-th distance
  // immediately (a late-attached worker must not prune against +inf).
  heap.ShareBound(&bound);
  EXPECT_EQ(bound.Load(), 16.0);
}

TEST(SharedBoundTest, BoundReadsTheTighterOfLocalAndShared) {
  SharedBound bound;
  KnnHeap heap(1);
  heap.ShareBound(&bound);
  heap.Offer(0, 100.0);
  EXPECT_EQ(heap.Bound(), 100.0);
  // Another worker publishes a tighter k-th: this heap prunes against it.
  bound.Tighten(36.0);
  EXPECT_EQ(heap.Bound(), 36.0);
  // Offer semantics are unchanged: a candidate between the shared and the
  // local bound still replaces the local top (the heap stays this
  // worker's true top-k; the merge discards the junk).
  heap.Offer(1, 64.0);
  EXPECT_EQ(heap.Bound(), 36.0);
}

TEST(SharedBoundTest, ResetDetachesTheSharedBound) {
  SharedBound bound;
  KnnHeap heap(1);
  heap.ShareBound(&bound);
  heap.Offer(0, 49.0);
  EXPECT_EQ(bound.Load(), 49.0);

  heap.Reset(1);
  // Detached: improvements are no longer published...
  heap.Offer(1, 9.0);
  EXPECT_EQ(bound.Load(), 49.0);
  EXPECT_EQ(heap.Bound(), 9.0);
  // ...and a foreign Tighten is no longer read.
  bound.Tighten(1.0);
  EXPECT_EQ(heap.Bound(), 9.0);
}

TEST(SharedBoundTest, ConcurrentPublishersConvergeToTheGlobalMin) {
  // N workers, each with a private heap attached to one shared bound,
  // offer disjoint distance streams concurrently — the traversal engine's
  // exact shape. The bound must end at the global minimum k-th distance
  // and every interleaving must keep each worker's Bound() sound
  // (>= the global k-th, never below it).
  constexpr int kWorkers = 8;
  constexpr int kOffersPerWorker = 2000;
  SharedBound bound;
  std::vector<KnnHeap> heaps(kWorkers);
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    heaps[w].Reset(1);
    heaps[w].ShareBound(&bound);
  }
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([w, &heaps, &bound] {
      for (int i = 0; i < kOffersPerWorker; ++i) {
        // Distinct values across all workers; global minimum is 1.0
        // (worker 0, i = kOffersPerWorker - 1).
        const double dist =
            static_cast<double>(kOffersPerWorker - i) +
            static_cast<double>(w) / kWorkers;
        heaps[w].Offer(static_cast<SeriesId>(w * kOffersPerWorker + i),
                       dist);
        // Monotone soundness mid-flight: the shared bound can never be
        // tighter than the tightest value any worker has offered so far,
        // which is bounded below by 1.0 throughout.
        ASSERT_GE(bound.Load(), 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bound.Load(), 1.0);
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(heaps[w].Bound(), 1.0) << "worker " << w;
  }
}

TEST(SharedBoundTest, ConcurrentAttachAndPublishIsSafe) {
  // Workers attach mid-stream (ShareBound on a full heap publishes) while
  // others are already publishing — the engine's width-N startup path.
  constexpr int kWorkers = 8;
  SharedBound bound;
  std::vector<KnnHeap> heaps(kWorkers);
  for (int w = 0; w < kWorkers; ++w) heaps[w].Reset(1);
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([w, &heaps, &bound] {
      heaps[w].Offer(static_cast<SeriesId>(w), 100.0 + w);
      heaps[w].ShareBound(&bound);  // full heap: publishes 100.0 + w
      heaps[w].Offer(static_cast<SeriesId>(kWorkers + w), 50.0 + w);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bound.Load(), 50.0);
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(heaps[w].Bound(), 50.0) << "worker " << w;
  }
}

}  // namespace
}  // namespace hydra::core
