#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "util/rng.h"

namespace hydra::core {
namespace {

TEST(SquaredEuclidean, KnownValues) {
  const std::vector<Value> a = {0, 0, 0};
  const std::vector<Value> b = {1, 2, 2};
  EXPECT_DOUBLE_EQ(SquaredEuclidean(a, b), 9.0);
  EXPECT_DOUBLE_EQ(SquaredEuclidean(a, a), 0.0);
}

TEST(SquaredEuclidean, Symmetric) {
  util::Rng rng(1);
  std::vector<Value> a(37);
  std::vector<Value> b(37);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<Value>(rng.Gaussian());
    b[i] = static_cast<Value>(rng.Gaussian());
  }
  EXPECT_DOUBLE_EQ(SquaredEuclidean(a, b), SquaredEuclidean(b, a));
}

TEST(EarlyAbandon, MatchesPlainDistanceWhenNotAbandoned) {
  util::Rng rng(2);
  std::vector<Value> a(64);
  std::vector<Value> b(64);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<Value>(rng.Gaussian());
    b[i] = static_cast<Value>(rng.Gaussian());
  }
  const double exact = SquaredEuclidean(a, b);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(SquaredEuclideanEarlyAbandon(a, b, inf), exact);
}

TEST(EarlyAbandon, AbandonsAboveBound) {
  std::vector<Value> a(64, 0.0f);
  std::vector<Value> b(64, 1.0f);  // true distance 64
  const double r = SquaredEuclideanEarlyAbandon(a, b, 4.0);
  EXPECT_GT(r, 4.0);   // must report violation
  EXPECT_LT(r, 64.0);  // but should not have computed everything
}

TEST(QueryOrder, OrdersByDecreasingMagnitude) {
  const std::vector<Value> q = {0.1f, -5.0f, 2.0f, 0.0f};
  QueryOrder order(q);
  ASSERT_EQ(order.order().size(), 4u);
  EXPECT_EQ(order.order()[0], 1u);  // |-5| largest
  EXPECT_EQ(order.order()[1], 2u);
  EXPECT_EQ(order.order()[3], 3u);
}

TEST(QueryOrder, DistanceEqualsPlainWhenUnbounded) {
  util::Rng rng(3);
  std::vector<Value> q(128);
  std::vector<Value> c(128);
  for (size_t i = 0; i < q.size(); ++i) {
    q[i] = static_cast<Value>(rng.Gaussian());
    c[i] = static_cast<Value>(rng.Gaussian());
  }
  QueryOrder order(q);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_NEAR(order.Distance(c, inf), SquaredEuclidean(q, c), 1e-9);
}

TEST(QueryOrder, NeverUnderestimatesWhenAbandoning) {
  // If the reported value exceeds the bound, the true distance must too --
  // this is what makes early abandoning safe for pruning.
  util::Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Value> q(32);
    std::vector<Value> c(32);
    for (size_t i = 0; i < q.size(); ++i) {
      q[i] = static_cast<Value>(rng.Gaussian());
      c[i] = static_cast<Value>(rng.Gaussian());
    }
    QueryOrder order(q);
    const double bound = rng.Uniform(0.0, 80.0);
    const double reported = order.Distance(c, bound);
    const double exact = SquaredEuclidean(q, c);
    if (reported > bound) {
      EXPECT_GT(exact, bound) << "abandoned although within bound";
    } else {
      EXPECT_NEAR(reported, exact, 1e-9);
    }
  }
}

}  // namespace
}  // namespace hydra::core
