// Unit battery for the out-of-core buffer pool: geometry derivation,
// LRU victim order, the pinned-page discipline (including a genuine
// blocking wait on a one-frame pool), counter accounting, and concurrent
// readers (the TSan CI lane runs this suite via the `storage` label).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/raw_source.h"
#include "core/search_stats.h"
#include "io/series_file.h"
#include "storage/buffer_pool.h"

namespace hydra::storage {
namespace {

constexpr size_t kLength = 8;
constexpr size_t kSeriesBytes = kLength * sizeof(core::Value);

// Writes `count` series where series i is constant-valued i, and opens a
// positional handle on the result. The value encodes the identity, so
// every test can verify a read returned the series it asked for.
class PoolTest : public ::testing::Test {
 protected:
  void OpenFile(size_t count) {
    path_ = ::testing::TempDir() + "/hydra_pool_test.bin";
    core::Dataset data("pool", kLength);
    for (size_t i = 0; i < count; ++i) {
      std::vector<core::Value> row(kLength, static_cast<core::Value>(i));
      data.Append(row);
    }
    ASSERT_TRUE(io::WriteSeriesFile(path_, data).ok());
    auto opened = io::SeriesFile::Open(path_);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    file_ = std::move(opened).value();
  }

  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }

  // One series per page, `frames` frames: the smallest geometry that
  // still exercises eviction, so victim choice is fully observable.
  BufferPoolOptions TinyPool(size_t frames) {
    BufferPoolOptions options;
    options.page_bytes = kSeriesBytes;
    options.budget_bytes = frames * kSeriesBytes;
    return options;
  }

  io::SeriesFile file_;
  std::string path_;
};

TEST_F(PoolTest, GeometryFromBudget) {
  OpenFile(100);
  BufferPoolOptions options;
  options.page_bytes = 4 * kSeriesBytes;
  options.budget_bytes = 10 * 4 * kSeriesBytes;
  BufferPool pool(&file_, options);
  EXPECT_EQ(pool.series_per_page(), 4u);
  EXPECT_EQ(pool.page_count(), 25u);  // ceil(100 / 4)
  EXPECT_EQ(pool.frame_count(), 10u);
  EXPECT_EQ(pool.frame_bytes(), 4 * kSeriesBytes);
}

TEST_F(PoolTest, GeometryClampsToMinimums) {
  OpenFile(10);
  BufferPoolOptions options;
  options.page_bytes = 1;    // below one series: rounds up to one
  options.budget_bytes = 1;  // below one frame: rounds up to one
  BufferPool pool(&file_, options);
  EXPECT_EQ(pool.series_per_page(), 1u);
  EXPECT_EQ(pool.frame_count(), 1u);
}

TEST_F(PoolTest, FramesNeverExceedPages) {
  OpenFile(3);
  BufferPoolOptions options;
  options.page_bytes = kSeriesBytes;
  options.budget_bytes = 100 * kSeriesBytes;  // budget for 100 frames
  BufferPool pool(&file_, options);
  EXPECT_EQ(pool.frame_count(), 3u);  // only 3 pages exist
}

TEST_F(PoolTest, ReadReturnsRequestedSeries) {
  OpenFile(20);
  BufferPool pool(&file_, TinyPool(2));
  core::RawSeriesSource::Pin pin;
  for (size_t i : {size_t{0}, size_t{7}, size_t{19}, size_t{7}}) {
    const core::SeriesView view = pool.ReadPinned(i, &pin, nullptr);
    ASSERT_EQ(view.size(), kLength);
    EXPECT_FLOAT_EQ(view[0], static_cast<core::Value>(i));
    EXPECT_FLOAT_EQ(view[kLength - 1], static_cast<core::Value>(i));
  }
}

TEST_F(PoolTest, LruEvictsLeastRecentlyUsed) {
  OpenFile(4);
  BufferPool pool(&file_, TinyPool(2));
  core::RawSeriesSource::Pin pin;
  core::SearchStats stats;
  pool.ReadPinned(0, &pin, &stats);  // miss: load page 0
  pool.ReadPinned(1, &pin, &stats);  // miss: load page 1
  pool.ReadPinned(0, &pin, &stats);  // hit: page 0 is now most recent
  pool.ReadPinned(2, &pin, &stats);  // miss: must evict page 1, not 0
  EXPECT_EQ(stats.pool_evictions, 1);
  pool.ReadPinned(0, &pin, &stats);  // still resident: hit
  EXPECT_EQ(stats.pool_hits, 2);
  pool.ReadPinned(1, &pin, &stats);  // was evicted: miss again
  EXPECT_EQ(stats.pool_misses, 4);
  EXPECT_EQ(stats.pool_evictions, 2);
}

TEST_F(PoolTest, CountersMeasureRealReads) {
  OpenFile(8);
  BufferPool pool(&file_, TinyPool(2));
  core::RawSeriesSource::Pin pin;
  core::SearchStats stats;
  pool.ReadPinned(0, &pin, &stats);
  pool.ReadPinned(0, &pin, &stats);
  pool.ReadPinned(1, &pin, &stats);
  EXPECT_EQ(stats.pool_misses, 2);
  EXPECT_EQ(stats.pool_hits, 1);
  EXPECT_EQ(stats.pool_pread_calls, 2);
  EXPECT_EQ(stats.pool_bytes_read, static_cast<int64_t>(2 * kSeriesBytes));
  const PoolCounters totals = pool.counters();
  EXPECT_EQ(totals.misses, 2);
  EXPECT_EQ(totals.hits, 1);
  EXPECT_EQ(totals.pread_calls, 2);
  EXPECT_EQ(totals.bytes_read, static_cast<int64_t>(2 * kSeriesBytes));
  EXPECT_EQ(totals.evictions, 0);  // two frames, two pages touched
}

TEST_F(PoolTest, SamePagePinnedReadIsAHit) {
  OpenFile(8);
  BufferPoolOptions options;
  options.page_bytes = 4 * kSeriesBytes;  // series 0..3 share page 0
  options.budget_bytes = options.page_bytes;
  BufferPool pool(&file_, options);
  core::RawSeriesSource::Pin pin;
  core::SearchStats stats;
  const core::SeriesView a = pool.ReadPinned(1, &pin, &stats);
  const core::SeriesView b = pool.ReadPinned(3, &pin, &stats);
  EXPECT_FLOAT_EQ(a[0], 1.0f);  // still valid: same pin, same page
  EXPECT_FLOAT_EQ(b[0], 3.0f);
  EXPECT_EQ(stats.pool_misses, 1);
  EXPECT_EQ(stats.pool_hits, 1);
}

TEST_F(PoolTest, ReaderBlocksUntilPinReleased) {
  OpenFile(4);
  BufferPool pool(&file_, TinyPool(1));  // a single frame
  core::RawSeriesSource::Pin holder;
  pool.ReadPinned(0, &holder, nullptr);  // the only frame is now pinned
  std::atomic<bool> done{false};
  std::thread blocked([&] {
    core::RawSeriesSource::Pin pin;
    const core::SeriesView view = pool.ReadPinned(1, &pin, nullptr);
    EXPECT_FLOAT_EQ(view[0], 1.0f);
    done.store(true);
  });
  // The reader cannot proceed while the frame is pinned; give it a
  // moment to prove it is actually waiting rather than racing past.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(done.load());
  holder.Release();
  blocked.join();
  EXPECT_TRUE(done.load());
}

TEST_F(PoolTest, ReleaseIsIdempotent) {
  OpenFile(4);
  BufferPool pool(&file_, TinyPool(1));
  core::RawSeriesSource::Pin pin;
  pool.ReadPinned(2, &pin, nullptr);
  pin.Release();
  pin.Release();  // second release is a no-op, not a double-unpin
  core::RawSeriesSource::Pin other;
  const core::SeriesView view = pool.ReadPinned(3, &other, nullptr);
  EXPECT_FLOAT_EQ(view[0], 3.0f);
}

TEST_F(PoolTest, RepinningReleasesPreviousHold) {
  OpenFile(4);
  BufferPool pool(&file_, TinyPool(1));
  core::RawSeriesSource::Pin pin;
  // With one frame, each fetch through the same pin must implicitly
  // release the previous hold — otherwise the second read deadlocks.
  pool.ReadPinned(0, &pin, nullptr);
  pool.ReadPinned(1, &pin, nullptr);
  const core::SeriesView view = pool.ReadPinned(2, &pin, nullptr);
  EXPECT_FLOAT_EQ(view[0], 2.0f);
}

TEST_F(PoolTest, ConcurrentReadersSeeConsistentData) {
  constexpr size_t kCount = 64;
  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 400;
  OpenFile(kCount);
  BufferPool pool(&file_, TinyPool(3));  // far smaller than the file
  std::atomic<int> wrong{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&pool, &wrong, t] {
      core::RawSeriesSource::Pin pin;
      core::SearchStats stats;
      for (int r = 0; r < kReadsPerThread; ++r) {
        const size_t i = (static_cast<size_t>(t) * 31 + r * 7) % kCount;
        const core::SeriesView view = pool.ReadPinned(i, &pin, &stats);
        if (view[0] != static_cast<core::Value>(i) ||
            view[kLength - 1] != static_cast<core::Value>(i)) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(wrong.load(), 0);
  const PoolCounters totals = pool.counters();
  EXPECT_EQ(totals.hits + totals.misses,
            static_cast<int64_t>(kThreads) * kReadsPerThread);
  EXPECT_GT(totals.misses, 0);
}

}  // namespace
}  // namespace hydra::storage
