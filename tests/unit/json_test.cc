#include "util/json.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace hydra::util {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name");
  json.String("DSTree");
  json.Key("shards");
  json.Uint(4);
  json.Key("seconds");
  json.Double(1.5);
  json.Key("ok");
  json.Bool(true);
  json.Key("none");
  json.Null();
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"name\":\"DSTree\",\"shards\":4,\"seconds\":1.5,"
            "\"ok\":true,\"none\":null}");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  JsonWriter json;
  json.BeginObject();
  json.Key("runs");
  json.BeginArray();
  json.BeginObject();
  json.Key("t");
  json.Int(-3);
  json.EndObject();
  json.BeginObject();
  json.EndObject();
  json.BeginArray();
  json.Int(1);
  json.Int(2);
  json.EndArray();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(json.str(), "{\"runs\":[{\"t\":-3},{},[1,2]]}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter json;
  json.BeginArray();
  json.String("a\"b\\c\nd\te\r");
  json.String(std::string("\x01", 1));
  json.EndArray();
  EXPECT_EQ(json.str(), "[\"a\\\"b\\\\c\\nd\\te\\r\",\"\\u0001\"]");
}

TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  JsonWriter json;
  json.BeginArray();
  json.Double(std::numeric_limits<double>::quiet_NaN());
  json.Double(std::numeric_limits<double>::infinity());
  json.Double(0.25);
  json.EndArray();
  EXPECT_EQ(json.str(), "[null,null,0.25]");
}

TEST(JsonWriter, DoubleRoundTripsFullPrecision) {
  JsonWriter json;
  json.BeginArray();
  json.Double(0.1);
  json.EndArray();
  const std::string doc = json.str();
  double parsed = 0.0;
  ASSERT_EQ(std::sscanf(doc.c_str(), "[%lf]", &parsed), 1);
  EXPECT_EQ(parsed, 0.1);
}

TEST(JsonWriter, WriteToProducesTheDocumentPlusNewline) {
  JsonWriter json;
  json.BeginObject();
  json.Key("x");
  json.Int(1);
  json.EndObject();
  const std::string path = ::testing::TempDir() + "/json_writer_test.json";
  ASSERT_TRUE(json.WriteTo(path).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "{\"x\":1}\n");
}

TEST(JsonWriter, WriteToUnwritablePathFailsCleanly) {
  JsonWriter json;
  json.BeginObject();
  json.EndObject();
  const Status s = json.WriteTo("/nonexistent-dir/x/y.json");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cannot open"), std::string::npos);
}

TEST(JsonWriterDeathTest, StructuralMisuseAborts) {
  EXPECT_DEATH(
      {
        JsonWriter json;
        json.BeginObject();
        json.Int(1);  // no Key()
      },
      "Key");
  EXPECT_DEATH(
      {
        JsonWriter json;
        json.BeginArray();
        json.Key("x");  // Key inside an array
      },
      "outside an object");
  EXPECT_DEATH(
      {
        JsonWriter json;
        json.BeginObject();
        json.EndArray();  // mismatched close
      },
      "outside an array");
  EXPECT_DEATH(
      {
        JsonWriter json;
        json.Int(1);     // root value closes the document...
        json.Int(2);     // ...a second root is misuse
      },
      "root");
  EXPECT_DEATH(
      {
        JsonWriter json;
        json.BeginObject();
        const std::string& s = json.str();  // root still open
        (void)s;
      },
      "root");
}

}  // namespace
}  // namespace hydra::util
