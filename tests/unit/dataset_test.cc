#include <cmath>

#include <gtest/gtest.h>

#include "core/dataset.h"

namespace hydra::core {
namespace {

TEST(Dataset, AppendAndAccess) {
  Dataset d("test", 4);
  d.Append(std::vector<Value>{1, 2, 3, 4});
  d.Append(std::vector<Value>{5, 6, 7, 8});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.length(), 4u);
  EXPECT_FLOAT_EQ(d[0][0], 1.0f);
  EXPECT_FLOAT_EQ(d[1][3], 8.0f);
  EXPECT_EQ(d.bytes(), 8 * sizeof(Value));
}

TEST(Dataset, AppendUninitializedIsWritable) {
  Dataset d("test", 3);
  Value* row = d.AppendUninitialized();
  row[0] = 9;
  row[1] = 8;
  row[2] = 7;
  EXPECT_FLOAT_EQ(d[0][1], 8.0f);
  EXPECT_EQ(d.size(), 1u);
}

TEST(ZNormalize, ProducesZeroMeanUnitVariance) {
  std::vector<Value> x = {1, 2, 3, 4, 5, 6, 7, 8};
  ZNormalize(x);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (Value v : x) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum / x.size(), 0.0, 1e-6);
  EXPECT_NEAR(sum_sq / x.size(), 1.0, 1e-5);
}

TEST(ZNormalize, ConstantSeriesBecomesZero) {
  std::vector<Value> x = {3, 3, 3, 3};
  ZNormalize(x);
  for (Value v : x) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(ZNormalize, PreservesShape) {
  std::vector<Value> x = {0, 1, 0, -1};
  std::vector<Value> y = {0, 10, 0, -10};  // same shape, scaled
  ZNormalize(x);
  ZNormalize(y);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], y[i], 1e-6);
}

TEST(DatasetSlice, ViewsTheRightSeriesWithoutCopying) {
  Dataset d("parent", 2);
  for (int i = 0; i < 6; ++i) {
    d.Append(std::vector<Value>{static_cast<Value>(i),
                                static_cast<Value>(10 * i)});
  }
  const Dataset s = d.Slice(2, 3);
  EXPECT_TRUE(s.is_slice());
  EXPECT_FALSE(d.is_slice());
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.length(), 2u);
  EXPECT_EQ(s.bytes(), 3 * 2 * sizeof(Value));
  // Local id 0 of the slice is global id 2 of the parent.
  EXPECT_EQ(s[0].data(), d[2].data());
  EXPECT_FLOAT_EQ(s[0][0], 2.0f);
  EXPECT_FLOAT_EQ(s[2][1], 40.0f);
  EXPECT_EQ(s.values().size(), 6u);
  EXPECT_EQ(s.values().data(), d.values().data() + 2 * 2);
}

TEST(DatasetSlice, FullSliceAndSliceOfSliceCompose) {
  Dataset d("parent", 1);
  for (int i = 0; i < 5; ++i) {
    d.Append(std::vector<Value>{static_cast<Value>(i)});
  }
  const Dataset whole = d.Slice(0, 5);
  EXPECT_EQ(whole.size(), 5u);
  EXPECT_EQ(whole[4].data(), d[4].data());
  // Offsets of a nested slice are relative to the slice being cut.
  const Dataset inner = whole.Slice(1, 3);
  ASSERT_EQ(inner.size(), 3u);
  EXPECT_FLOAT_EQ(inner[0][0], 1.0f);
  EXPECT_FLOAT_EQ(inner[2][0], 3.0f);
}

TEST(DatasetSliceDeathTest, SlicesAreReadOnlyAndBoundsChecked) {
  Dataset d("parent", 2);
  d.Append(std::vector<Value>{1, 2});
  d.Append(std::vector<Value>{3, 4});
  Dataset s = d.Slice(0, 2);
  EXPECT_DEATH(s.Append(std::vector<Value>{5, 6}), "read-only");
  EXPECT_DEATH(s.AppendUninitialized(), "read-only");
  EXPECT_DEATH(s.Reserve(4), "read-only");
  EXPECT_DEATH(s.ZNormalizeAll(), "normalize the parent");
  EXPECT_DEATH(d.Slice(0, 3), "exceeds");
  EXPECT_DEATH(d.Slice(3, 1), "exceeds");
  EXPECT_DEATH(d.Slice(0, 0), "at least one");
}

TEST(Dataset, ZNormalizeAllNormalizesEverySeries) {
  Dataset d("test", 4);
  d.Append(std::vector<Value>{1, 2, 3, 4});
  d.Append(std::vector<Value>{10, 0, 10, 0});
  d.ZNormalizeAll();
  for (size_t i = 0; i < d.size(); ++i) {
    double sum = 0.0;
    for (Value v : d[i]) sum += v;
    EXPECT_NEAR(sum, 0.0, 1e-5) << "series " << i;
  }
}

}  // namespace
}  // namespace hydra::core
