#include <cmath>

#include <gtest/gtest.h>

#include "core/dataset.h"

namespace hydra::core {
namespace {

TEST(Dataset, AppendAndAccess) {
  Dataset d("test", 4);
  d.Append(std::vector<Value>{1, 2, 3, 4});
  d.Append(std::vector<Value>{5, 6, 7, 8});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.length(), 4u);
  EXPECT_FLOAT_EQ(d[0][0], 1.0f);
  EXPECT_FLOAT_EQ(d[1][3], 8.0f);
  EXPECT_EQ(d.bytes(), 8 * sizeof(Value));
}

TEST(Dataset, AppendUninitializedIsWritable) {
  Dataset d("test", 3);
  Value* row = d.AppendUninitialized();
  row[0] = 9;
  row[1] = 8;
  row[2] = 7;
  EXPECT_FLOAT_EQ(d[0][1], 8.0f);
  EXPECT_EQ(d.size(), 1u);
}

TEST(ZNormalize, ProducesZeroMeanUnitVariance) {
  std::vector<Value> x = {1, 2, 3, 4, 5, 6, 7, 8};
  ZNormalize(x);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (Value v : x) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum / x.size(), 0.0, 1e-6);
  EXPECT_NEAR(sum_sq / x.size(), 1.0, 1e-5);
}

TEST(ZNormalize, ConstantSeriesBecomesZero) {
  std::vector<Value> x = {3, 3, 3, 3};
  ZNormalize(x);
  for (Value v : x) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(ZNormalize, PreservesShape) {
  std::vector<Value> x = {0, 1, 0, -1};
  std::vector<Value> y = {0, 10, 0, -10};  // same shape, scaled
  ZNormalize(x);
  ZNormalize(y);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], y[i], 1e-6);
}

TEST(Dataset, ZNormalizeAllNormalizesEverySeries) {
  Dataset d("test", 4);
  d.Append(std::vector<Value>{1, 2, 3, 4});
  d.Append(std::vector<Value>{10, 0, 10, 0});
  d.ZNormalizeAll();
  for (size_t i = 0; i < d.size(); ++i) {
    double sum = 0.0;
    for (Value v : d[i]) sum += v;
    EXPECT_NEAR(sum, 0.0, 1e-5) << "series " << i;
  }
}

}  // namespace
}  // namespace hydra::core
