#!/usr/bin/env bash
# Documentation gate (run by the CI docs job and locally before commits):
#   1. every public header under src/ keeps its file-level comment — the
#      first line must be a // comment saying what the file is;
#   2. every relative markdown link in README.md and docs/ resolves to a
#      file that exists (anchors are stripped; http(s)/mailto are skipped).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. file-level comments on public headers -------------------------------
while IFS= read -r header; do
  if ! head -n 1 "$header" | grep -q '^//'; then
    echo "error: $header is missing its file-level // comment on line 1"
    fail=1
  fi
done < <(find src -name '*.h' | sort)

# --- 2. relative markdown links resolve -------------------------------------
md_files=(README.md)
while IFS= read -r f; do md_files+=("$f"); done < <(find docs -name '*.md' | sort)

for md in "${md_files[@]}"; do
  dir=$(dirname "$md")
  # Extract inline link targets: [text](target). One per line, tolerating
  # several links per line.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path="${target%%#*}"             # strip an anchor
    [ -z "$path" ] && continue       # pure in-page anchor (#section)
    if [ ! -e "$dir/$path" ]; then
      echo "error: $md links to '$target' but '$dir/$path' does not exist"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed -e 's/^](//' -e 's/)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK: ${#md_files[@]} markdown files, all headers commented"
