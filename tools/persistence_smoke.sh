#!/usr/bin/env bash
# Persistence smoke: for every persistent method, gen → build → save →
# open → query must print exactly the same answers as a fresh rebuild,
# and the opened run must report the build as skipped.
set -euo pipefail
HYDRA="${1:?usage: persistence_smoke.sh <path-to-hydra-binary>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$HYDRA" gen synth 2000 64 7 "$TMP/data.bin" > /dev/null

for m in "ADS+" "DSTree" "iSAX2+" "M-tree" "R*-tree" "SFA" "VA+file"; do
  "$HYDRA" build "$TMP/data.bin" "$m" "$TMP/idx" > /dev/null
  "$HYDRA" query "$TMP/data.bin" "$m" 5 4 --index "$TMP/idx" > "$TMP/opened.txt"
  grep -q "build skipped" "$TMP/opened.txt" \
    || { echo "FAIL($m): opened run did not skip the build"; exit 1; }
  grep '^query' "$TMP/opened.txt" > "$TMP/opened_answers.txt"
  "$HYDRA" query "$TMP/data.bin" "$m" 5 4 | grep '^query' > "$TMP/rebuilt.txt"
  diff "$TMP/opened_answers.txt" "$TMP/rebuilt.txt" \
    || { echo "FAIL($m): opened index answered differently"; exit 1; }
  echo "OK $m"
  rm -rf "$TMP/idx"
done

# The scans refuse to persist, with exit 1 and a reason — never a crash.
if "$HYDRA" build "$TMP/data.bin" UCR-Suite "$TMP/idx" 2> "$TMP/err.txt"; then
  echo "FAIL: scan build should exit 1"; exit 1
fi
grep -q "does not support a persisted index" "$TMP/err.txt" \
  || { echo "FAIL: scan refusal lacks a reason"; exit 1; }

echo "persistence smoke OK"
