#!/usr/bin/env bash
# Storage smoke: the mmap + buffer-pool backend must print exactly the
# same query answers as the in-RAM backend — for every method, at any
# pool budget, composed with shards and intra-query threads — while
# reporting real measured pool traffic. Malformed storage flags must be
# refused with exit 1 and a reason, never a crash. Diffs compare the
# `query` lines only: the "built ... CPU" line embeds wall-clock timing
# and the mmap run adds its storage summary, neither of which is part of
# the answer contract.
set -euo pipefail
HYDRA="${1:?usage: storage_smoke.sh <path-to-hydra-binary>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# `hydra gen` streams to disk through SeriesFileWriter; the readers
# validate the patched header, so a successful query pass below also
# proves the streamed file is well-formed.
"$HYDRA" gen sald 6000 64 11 "$TMP/data.bin" > /dev/null

# ~1.5MB of data behind a 1MB pool: eviction is guaranteed.
POOL="--storage mmap --pool-mb 1"

answers() { grep '^query'; }
# With intra-query workers the trailing "[examined ..., seeks ...]"
# ledger depends on shared-bound arrival timing (see shard_smoke.sh);
# the threaded comparison pins the answers, not the traversal counters.
answers_no_ledger() { grep '^query' | sed 's/ \[.*\]$//'; }

for m in "ADS+" "DSTree" "iSAX2+" "M-tree" "R*-tree" "SFA" "VA+file" \
         "Stepwise" "UCR-Suite" "MASS"; do
  "$HYDRA" query "$TMP/data.bin" "$m" 5 3 | answers > "$TMP/ram.txt"
  "$HYDRA" query "$TMP/data.bin" "$m" 5 3 $POOL > "$TMP/mmap_full.txt"
  answers < "$TMP/mmap_full.txt" > "$TMP/mmap.txt"
  diff "$TMP/ram.txt" "$TMP/mmap.txt" \
    || { echo "FAIL($m): mmap answers differ from ram"; exit 1; }
  grep -q '^storage: mmap pool=1MiB' "$TMP/mmap_full.txt" \
    || { echo "FAIL($m): mmap run did not describe its pool"; exit 1; }
done
echo "OK all methods identical ram vs mmap"

# The index methods verify raw candidates through the pool: measured
# misses must be nonzero cold, and the reconciliation line must appear.
"$HYDRA" query "$TMP/data.bin" DSTree 5 4 $POOL > "$TMP/pooled.txt"
grep -Eq 'storage: [0-9]+ pool reads \(hits [0-9]+, misses [1-9]' \
  "$TMP/pooled.txt" \
  || { echo "FAIL: pooled run reported no measured misses"; exit 1; }
grep -q '^storage check: measured pool misses' "$TMP/pooled.txt" \
  || { echo "FAIL: missing measured-vs-modeled reconciliation"; exit 1; }

# The RAM backend must not print storage lines at all: its output is the
# historical byte-identical format.
"$HYDRA" query "$TMP/data.bin" DSTree 5 4 > "$TMP/ram_full.txt"
if grep -q '^storage' "$TMP/ram_full.txt"; then
  echo "FAIL: ram run printed storage lines"; exit 1
fi

# Answers are invariant under the pool budget (only traffic changes).
"$HYDRA" query "$TMP/data.bin" DSTree 5 4 $POOL | answers > "$TMP/p1.txt"
"$HYDRA" query "$TMP/data.bin" DSTree 5 4 --storage mmap --pool-mb 4 \
  | answers > "$TMP/p4.txt"
diff "$TMP/p1.txt" "$TMP/p4.txt" \
  || { echo "FAIL: answers changed with the pool budget"; exit 1; }

# Sharded slices and intra-query workers compose with the pool.
"$HYDRA" query "$TMP/data.bin" DSTree 5 4 --shards 3 --threads 2 \
  --query-threads 2 | answers_no_ledger > "$TMP/shard_ram.txt"
"$HYDRA" query "$TMP/data.bin" DSTree 5 4 --shards 3 --threads 2 \
  --query-threads 2 $POOL | answers_no_ledger > "$TMP/shard_mmap.txt"
diff "$TMP/shard_ram.txt" "$TMP/shard_mmap.txt" \
  || { echo "FAIL: sharded mmap answers differ from sharded ram"; exit 1; }

# Range queries route through the same raw layer.
"$HYDRA" range "$TMP/data.bin" SFA 8 3 | answers > "$TMP/range_ram.txt"
"$HYDRA" range "$TMP/data.bin" SFA 8 3 $POOL | answers > "$TMP/range_mmap.txt"
diff "$TMP/range_ram.txt" "$TMP/range_mmap.txt" \
  || { echo "FAIL: mmap range answers differ from ram"; exit 1; }
echo "OK pool sweep, shards, range identical"

# Flag validation: clean exit-1 refusals, never a crash or silent ignore.
if "$HYDRA" query "$TMP/data.bin" DSTree 5 2 --pool-mb 8 2> "$TMP/err.txt"
then
  echo "FAIL: --pool-mb without --storage mmap should exit 1"; exit 1
fi
grep -q 'requires --storage mmap' "$TMP/err.txt" \
  || { echo "FAIL: --pool-mb refusal lacks a reason"; exit 1; }

if "$HYDRA" query "$TMP/data.bin" DSTree 5 2 --storage floppy \
    2> "$TMP/err.txt"; then
  echo "FAIL: an unknown backend should exit 1"; exit 1
fi
grep -q 'unknown storage backend' "$TMP/err.txt" \
  || { echo "FAIL: unknown-backend error lacks the token"; exit 1; }

if "$HYDRA" methods --storage mmap 2> "$TMP/err.txt"; then
  echo "FAIL: --storage on a non-dataset command should exit 1"; exit 1
fi
grep -q 'only supported by' "$TMP/err.txt" \
  || { echo "FAIL: wrong-command refusal lacks a reason"; exit 1; }

# `hydra gen` must fail loudly when it cannot write the file.
if "$HYDRA" gen synth 10 8 1 "$TMP/no/such/dir/out.bin" 2> "$TMP/err.txt"
then
  echo "FAIL: gen to an unwritable path should exit 1"; exit 1
fi
[ -s "$TMP/err.txt" ] \
  || { echo "FAIL: gen failure printed no error"; exit 1; }

echo "storage smoke OK"
