// hydra — command-line front end for the library.
//
//   hydra gen <family> <count> <length> <seed> <out.bin>
//       Generate a dataset (synth|seismic|astro|sald|deep) to a series file.
//   hydra build <data.bin> <method> <index-dir>
//       Build the method's index once and persist it under <index-dir>
//       (a versioned, checksummed container; see docs/ARCHITECTURE.md).
//   hydra query <data.bin> <method> <k> [queries]
//       k-NN of generated probe queries against a series file. Defaults to
//       exact answers; --mode selects a relaxed guarantee (see below).
//       --index <dir> opens the persisted index instead of rebuilding
//       (the paper's economics: construction is paid once, amortized over
//       every later query process).
//   hydra range <data.bin> <method> <radius> [queries]
//       Exact r-range queries; accepts --index <dir> like `query`.
//   hydra compare <data.bin> [queries]
//       Run the best six methods and print the scenario table.
//   hydra serve <data.bin> <method> [--index <dir>] [--port P]
//               [--serve-threads N] [--cache-mb M] [--max-inflight Q]
//       Long-lived query daemon: builds (or opens, with --index) the
//       method once, then answers concurrent clients over the framed
//       binary protocol on 127.0.0.1:P (src/serve). SIGINT/SIGTERM
//       drains in-flight queries and exits; SIGHUP re-opens the index
//       without dropping the listener. Accepts --shards like `query`.
//   hydra ping [--port P]
//       Round-trip a ping frame to a running daemon.
//   hydra queryd <data.bin> <k> [queries] [--port P] [spec flags]
//       Send the same probe workload `hydra query` runs to a daemon and
//       print the answers in the identical format (the smoke script
//       diffs the two). The data file is read only to derive the probes.
//   hydra stats [--port P] [--full]
//       Fetch and print the daemon's STATS document (JSON: uptime, QPS,
//       bucketed latency percentiles, cache counters, merged search
//       ledger, slow-query flight records). --full instead prints the
//       daemon's whole metrics registry as plain text, one metric per
//       line.
//   hydra methods
//       Print the method traits matrix (quality modes, concurrency,
//       persistence).
//   hydra kernels [names]
//       Print the SIMD kernel-set table (compiled sets, CPU support, the
//       active dispatch choice); `names` lists the supported set names one
//       per line for scripting (the CI dispatch matrix loops over it).
//
// `build`, `query`, `range`, and `compare` accept --kernels <set>: force
// the distance/lower-bound kernel set (scalar|portable|avx2|avx512)
// instead of the best-supported default. The HYDRA_KERNELS environment
// variable does the same for any process using the library; the flag wins
// when both are given. Unknown or CPU-unsupported names exit 1 listing
// the supported sets.
//
// `query` and `compare` accept --threads N anywhere after the command:
// queries of one batch run concurrently when the method supports it
// (results are identical to the serial run; see docs/ARCHITECTURE.md).
//
// `build`, `query`, and `range` accept --shards N: the collection is
// partitioned into N contiguous shards, each carrying a full index of the
// method; builds and queries fan out across shards and answers merge back
// to global ids, identical to the unsharded method. With --shards,
// --threads sets the fan-out width (the batch runs serially — the
// parallelism lives inside each query). Unshardable methods (the scans)
// are refused with the traits-derived reason.
//
// `query` and `range` accept --query-threads N: N workers drain one
// query's traversal frontier cooperatively (the shared engine in
// src/core/traversal.h). Only the five tree methods advertise the trait
// (`hydra methods`, intra-query column); others are refused with the
// traits-derived reason. Exact k-NN and range answers are bit-identical
// to the serial traversal at any worker count; approximate and budgeted
// plans keep their traversal serial (their answers depend on visit
// order), which is reported as a note. Composes with --shards: every
// shard's workers share one cross-shard bound.
//
// `build`, `query`, `range`, and `serve` accept --trace <path>: record
// per-query phase spans (execute, traversal, leaf verification, shard
// fan-out, buffer-pool IO; per-request spans under serve) and write them
// as Chrome trace-event JSON when the command exits — open the file at
// ui.perfetto.dev or chrome://tracing. An unwritable path exits 1 before
// any work is done.
//
// `query` additionally accepts the QuerySpec flags:
//   --mode exact|ng|epsilon|delta-epsilon   quality guarantee requested
//   --epsilon X      relative error bound (epsilon / delta-epsilon modes)
//   --delta X        probability the bound holds, in (0,1] (delta-epsilon)
//   --max-leaves N   budget: stop after N leaf visits
//   --max-raw N      budget: stop after N raw series examinations
// A mode the chosen method does not advertise is rejected up front with
// the traits-derived reason — never silently answered exactly.
#include <csignal>
#include <cstring>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "bench/harness.h"
#include "bench/registry.h"
#include "core/method.h"
#include "core/query_spec.h"
#include "core/simd/kernels.h"
#include "gen/emitter.h"
#include "gen/realistic.h"
#include "gen/workload.h"
#include "io/disk_model.h"
#include "io/series_file.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/server.h"
#include "shard/sharded_index.h"
#include "storage/backend.h"
#include "util/table.h"
#include "util/timer.h"

namespace hydra {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hydra gen <family> <count> <length> <seed> <out.bin>\n"
               "  hydra build <data.bin> <method> <index-dir> [--shards N] "
               "[--threads N]\n"
               "  hydra query <data.bin> <method> <k> [queries=10] "
               "[--threads N]\n"
               "              [--index <dir>] [--shards N] "
               "[--query-threads N]\n"
               "              [--storage ram|mmap] [--pool-mb M]\n"
               "              [--mode exact|ng|epsilon|delta-epsilon] "
               "[--epsilon X]\n"
               "              [--delta X] [--max-leaves N] [--max-raw N]\n"
               "  hydra range <data.bin> <method> <radius> [queries=10] "
               "[--index <dir>] [--shards N] [--threads N] "
               "[--query-threads N]\n"
               "  hydra compare <data.bin> [queries=10] [--threads N]\n"
               "  hydra serve <data.bin> <method> [--index <dir>] "
               "[--shards N] [--port P]\n"
               "              [--serve-threads N] [--cache-mb M] "
               "[--max-inflight Q]\n"
               "  hydra ping [--port P]\n"
               "  hydra queryd <data.bin> <k> [queries=10] [--port P] "
               "[spec flags]\n"
               "  hydra stats [--port P] [--full]\n"
               "  hydra methods\n"
               "  hydra kernels [names]\n"
               "\n"
               "--kernels <set> forces the distance/lower-bound kernel set "
               "(see: hydra\n"
               "kernels) on build/query/range/compare; HYDRA_KERNELS=<set> "
               "does the same\n"
               "for any command (the flag wins when both are given).\n"
               "\n"
               "--shards N partitions the collection into N contiguous "
               "shards built and\n"
               "searched independently (answers are identical to the "
               "unsharded method);\n"
               "with --shards, --threads sets the per-query fan-out "
               "workers instead of\n"
               "the batch concurrency. A sharded index persists as one "
               "container whose\n"
               "shard count is fixed at build time; open it with the same "
               "--shards flag.\n"
               "\n"
               "--query-threads N answers each query with N workers "
               "draining one shared\n"
               "traversal frontier (tree methods only; exact and range "
               "answers are\n"
               "bit-identical to the serial traversal). Composes with "
               "--shards: every\n"
               "shard's workers tighten one cross-shard bound.\n"
               "\n"
               "--storage ram|mmap selects how build/query/range/serve open "
               "<data.bin>:\n"
               "ram (default) bulk-loads it; mmap maps it without loading "
               "and serves the\n"
               "query-time raw-series reads from a bounded buffer pool "
               "(--pool-mb M,\n"
               "default 64) with measured hit/miss counters. Answers are "
               "bit-identical\n"
               "across backends and compose with --shards and "
               "--query-threads.\n"
               "\n"
               "--trace <path> (build/query/range/serve) records per-query "
               "phase spans\n"
               "(execute, traversal, leaf verification, shard fan-out, "
               "buffer-pool IO;\n"
               "per-request spans under serve) and writes Chrome "
               "trace-event JSON on\n"
               "exit; open it at ui.perfetto.dev or chrome://tracing. "
               "`stats --full`\n"
               "prints a running daemon's whole metrics registry "
               "(counters, gauges,\n"
               "latency histograms) as text, one metric per line.\n");
  return 2;
}

// User input must produce a clean error, never a HYDRA_CHECK abort.
bool IsKnownMethod(const std::string& name) {
  for (const std::string& m : bench::AllMethodNames()) {
    if (m == name) return true;
  }
  return false;
}

int BadMethod(const std::string& name) {
  std::fprintf(stderr, "error: unknown method '%s' (see: hydra methods)\n",
               name.c_str());
  return 1;
}

/// Parses a non-negative decimal integer; strtoull alone would wrap "-1"
/// (even with leading whitespace) to ULLONG_MAX and accept trailing
/// garbage, so the first character must already be a digit.
bool ParseUint(const char* arg, uint64_t* out) {
  if (arg == nullptr || arg[0] < '0' || arg[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (errno != 0 || end == arg || *end != '\0') return false;
  *out = v;
  return true;
}

int BadNumber(const char* what, const char* arg) {
  std::fprintf(stderr, "error: %s must be a non-negative integer, got '%s'\n",
               what, arg);
  return 1;
}

/// Parses a non-negative finite decimal number with the same rigor
/// ParseUint applies to integers: the first character must already be a
/// digit or '.', which rejects negatives, "nan"/"inf", and leading
/// whitespace up front; strtod's end pointer rejects trailing junk; the
/// isfinite check rejects overflow to infinity ("1e999"); and C99
/// hex-floats ("0x5") are rejected explicitly — ParseUint is base-10, so
/// this parser is too.
bool ParseDouble(const char* arg, double* out) {
  if (arg == nullptr ||
      !((arg[0] >= '0' && arg[0] <= '9') || arg[0] == '.')) {
    return false;
  }
  if (arg[0] == '0' && (arg[1] == 'x' || arg[1] == 'X')) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(arg, &end);
  if (errno != 0 || end == arg || *end != '\0' || !std::isfinite(v) ||
      v < 0.0) {
    return false;
  }
  *out = v;
  return true;
}

/// Extracts one `--flag value` option (anywhere in argv) into `*value` and
/// removes both tokens from `*args`. Returns false (after printing an
/// error) when the flag is present without a value; `*value` stays nullptr
/// when the flag is absent.
bool ExtractOption(std::vector<char*>* args, const char* flag,
                   const char** value) {
  *value = nullptr;
  for (size_t i = 0; i < args->size(); ++i) {
    if (std::string((*args)[i]) != flag) continue;
    if (i + 1 >= args->size()) {
      std::fprintf(stderr, "error: %s needs a value\n", flag);
      return false;
    }
    *value = (*args)[i + 1];
    args->erase(args->begin() + static_cast<long>(i),
                args->begin() + static_cast<long>(i) + 2);
    return true;
  }
  return true;
}

/// Extracts a valueless `--flag` (anywhere in argv) from `*args`; returns
/// true when it was present.
bool ExtractBareFlag(std::vector<char*>* args, const char* flag) {
  for (size_t i = 0; i < args->size(); ++i) {
    if (std::string((*args)[i]) != flag) continue;
    args->erase(args->begin() + static_cast<long>(i));
    return true;
  }
  return false;
}

/// The QuerySpec-shaping flags of `hydra query`, as extracted from argv.
struct QueryFlags {
  const char* mode = nullptr;
  const char* epsilon = nullptr;
  const char* delta = nullptr;
  const char* max_leaves = nullptr;
  const char* max_raw = nullptr;

  bool any() const {
    return mode != nullptr || epsilon != nullptr || delta != nullptr ||
           max_leaves != nullptr || max_raw != nullptr;
  }
};

/// Validates the QuerySpec flags and fills `*spec` (kind kKnn; the caller
/// sets k). Returns false after printing an error: every malformed value,
/// inconsistent flag combination, or mode the method's traits do not
/// advertise exits cleanly instead of reaching a CHECK abort.
bool BuildQuerySpec(const QueryFlags& flags, const core::MethodTraits& traits,
                    const std::string& method_name, core::QuerySpec* spec) {
  if (flags.mode != nullptr) {
    const std::string mode = flags.mode;
    if (mode == "exact") {
      spec->mode = core::QualityMode::kExact;
    } else if (mode == "ng") {
      spec->mode = core::QualityMode::kNgApprox;
    } else if (mode == "epsilon") {
      spec->mode = core::QualityMode::kEpsilon;
    } else if (mode == "delta-epsilon") {
      spec->mode = core::QualityMode::kDeltaEpsilon;
    } else {
      std::fprintf(stderr,
                   "error: unknown mode '%s' "
                   "(exact|ng|epsilon|delta-epsilon)\n",
                   flags.mode);
      return false;
    }
  }
  const bool eps_mode = spec->mode == core::QualityMode::kEpsilon ||
                        spec->mode == core::QualityMode::kDeltaEpsilon;
  if (flags.epsilon != nullptr && !eps_mode) {
    std::fprintf(stderr, "error: --epsilon requires --mode epsilon or "
                         "delta-epsilon\n");
    return false;
  }
  // The converse too: a requested relaxation with no bound parameter would
  // silently run at exact cost while labeled approximate.
  if (eps_mode && flags.epsilon == nullptr) {
    std::fprintf(stderr, "error: --mode %s requires --epsilon\n",
                 core::QualityModeName(spec->mode));
    return false;
  }
  if (flags.delta != nullptr &&
      spec->mode != core::QualityMode::kDeltaEpsilon) {
    std::fprintf(stderr, "error: --delta requires --mode delta-epsilon\n");
    return false;
  }
  if (spec->mode == core::QualityMode::kDeltaEpsilon &&
      flags.delta == nullptr) {
    std::fprintf(stderr,
                 "error: --mode delta-epsilon requires --delta (1.0 is "
                 "plain epsilon)\n");
    return false;
  }
  if (flags.epsilon != nullptr &&
      !ParseDouble(flags.epsilon, &spec->epsilon)) {
    std::fprintf(stderr,
                 "error: --epsilon must be a finite non-negative number, "
                 "got '%s'\n",
                 flags.epsilon);
    return false;
  }
  if (flags.delta != nullptr) {
    if (!ParseDouble(flags.delta, &spec->delta) || spec->delta <= 0.0 ||
        spec->delta > 1.0) {
      std::fprintf(stderr, "error: --delta must lie in (0, 1], got '%s'\n",
                   flags.delta);
      return false;
    }
  }
  for (const auto& [flag, arg, out] :
       {std::tuple{"--max-leaves", flags.max_leaves,
                   &spec->max_visited_leaves},
        std::tuple{"--max-raw", flags.max_raw, &spec->max_raw_series}}) {
    if (arg == nullptr) continue;
    uint64_t value = 0;
    if (!ParseUint(arg, &value) || value == 0 ||
        value > static_cast<uint64_t>(
                    std::numeric_limits<int64_t>::max())) {
      std::fprintf(stderr, "error: %s must be a positive integer, got '%s'\n",
                   flag, arg);
      return false;
    }
    *out = static_cast<int64_t>(value);
  }
  if (spec->mode == core::QualityMode::kNgApprox && spec->has_budget()) {
    std::fprintf(stderr, "error: budgets do not apply to --mode ng (it "
                         "already visits at most one leaf)\n");
    return false;
  }
  // A leaf budget that can never bind would be silently inert — refuse it
  // with the same honesty --mode combinations get.
  if (flags.max_leaves != nullptr && !traits.leaf_visit_budget) {
    std::fprintf(stderr,
                 "error: %s has no leaf-visit budget unit, so --max-leaves "
                 "could never fire; cap work with --max-raw instead\n",
                 method_name.c_str());
    return false;
  }
  // Honest refusal instead of a silent exact answer: the method must
  // advertise the requested mode.
  const std::string reason = core::ModeFallbackReason(traits, spec->mode);
  if (!reason.empty()) {
    std::fprintf(stderr, "error: %s does not support --mode %s (%s)\n",
                 method_name.c_str(), core::QualityModeName(spec->mode),
                 reason.c_str());
    return false;
  }
  return true;
}

/// Extracts a `--shards N` option (anywhere in argv) into `*shards` and
/// removes it from `*args`. `*shards` stays 0 (= unsharded) when the flag
/// is absent; returns false (after printing an error) on a missing,
/// zero, or absurd value.
bool ExtractShards(std::vector<char*>* args, uint64_t* shards) {
  *shards = 0;
  const char* value = nullptr;
  if (!ExtractOption(args, "--shards", &value)) return false;
  if (value == nullptr) return true;
  constexpr uint64_t kMaxShards = 1024;
  if (!ParseUint(value, shards) || *shards == 0 || *shards > kMaxShards) {
    std::fprintf(stderr,
                 "error: --shards must be an integer in [1, %llu], got "
                 "'%s'\n",
                 static_cast<unsigned long long>(kMaxShards), value);
    return false;
  }
  return true;
}

/// Creates the method the query-answering commands run: the plain method,
/// or a sharded container over it when `shards` > 0 (in which case
/// `threads` feeds the container's fan-out pool). Prints a traits-derived
/// refusal and returns null for an unshardable method.
std::unique_ptr<core::SearchMethod> MakeMethod(const std::string& name,
                                               uint64_t shards,
                                               uint64_t threads) {
  auto method = bench::CreateMethod(name);
  if (shards == 0) return method;
  const core::MethodTraits traits = method->traits();
  if (!traits.shardable) {
    std::fprintf(stderr, "error: %s does not support --shards (%s)\n",
                 name.c_str(), traits.shard_reason.c_str());
    return nullptr;
  }
  return bench::CreateShardedMethod(name, static_cast<size_t>(shards),
                                    static_cast<size_t>(threads));
}

/// Extracts a `--threads N` option (anywhere in argv) into `*threads` and
/// removes it from `*args`. Returns false (after printing an error) on a
/// missing or non-positive value.
bool ExtractThreads(std::vector<char*>* args, uint64_t* threads) {
  *threads = 1;
  const char* value = nullptr;
  if (!ExtractOption(args, "--threads", &value)) return false;
  if (value == nullptr) return true;
  // The cap keeps absurd values from aborting inside std::thread
  // creation (bad user input must exit 1, never SIGABRT).
  constexpr uint64_t kMaxThreads = 1024;
  if (!ParseUint(value, threads) || *threads == 0 ||
      *threads > kMaxThreads) {
    std::fprintf(stderr, "error: --threads must be an integer in "
                         "[1, %llu], got '%s'\n",
                 static_cast<unsigned long long>(kMaxThreads), value);
    return false;
  }
  return true;
}

/// Extracts a `--query-threads N` option (anywhere in argv) into
/// `*query_threads` and removes it from `*args`. Returns false (after
/// printing an error) on a missing, zero, or absurd value; `*query_threads`
/// stays 1 (= serial traversal) when the flag is absent.
bool ExtractQueryThreads(std::vector<char*>* args, uint64_t* query_threads) {
  *query_threads = 1;
  const char* value = nullptr;
  if (!ExtractOption(args, "--query-threads", &value)) return false;
  if (value == nullptr) return true;
  constexpr uint64_t kMaxQueryThreads = 1024;
  if (!ParseUint(value, query_threads) || *query_threads == 0 ||
      *query_threads > kMaxQueryThreads) {
    std::fprintf(stderr,
                 "error: --query-threads must be an integer in [1, %llu], "
                 "got '%s'\n",
                 static_cast<unsigned long long>(kMaxQueryThreads), value);
    return false;
  }
  return true;
}

/// The traits-derived --query-threads gate shared by `query` and `range`:
/// refuses (exit 1 path, returns false) a width > 1 on a method whose
/// traversal does not run on the shared engine, printing the method's own
/// reason — never a silently serial "parallel" run.
bool CheckQueryThreads(const core::MethodTraits& traits,
                       const std::string& method_name,
                       uint64_t query_threads) {
  if (query_threads <= 1 || traits.intra_query_parallel) return true;
  std::fprintf(stderr, "error: %s does not support --query-threads (%s)\n",
               method_name.c_str(), traits.intra_query_reason.c_str());
  return false;
}

/// The daemon flags of `hydra serve` (and --port of the client modes),
/// extracted and validated through the ParseUint path: every malformed or
/// absurd value exits 1, never reaches a CHECK abort or std::thread throw.
struct ServeFlags {
  uint64_t port = 7700;
  uint64_t serve_threads = 1;
  uint64_t cache_mb = 64;
  uint64_t max_inflight = 64;
  bool had_port = false;
  bool had_daemon_flags = false;  // --serve-threads/--cache-mb/--max-inflight
};

bool ExtractServeFlags(std::vector<char*>* args, ServeFlags* flags) {
  const size_t before = args->size();
  const char* port = nullptr;
  const char* serve_threads = nullptr;
  const char* cache_mb = nullptr;
  const char* max_inflight = nullptr;
  if (!ExtractOption(args, "--port", &port) ||
      !ExtractOption(args, "--serve-threads", &serve_threads) ||
      !ExtractOption(args, "--cache-mb", &cache_mb) ||
      !ExtractOption(args, "--max-inflight", &max_inflight)) {
    return false;
  }
  flags->had_port = port != nullptr;
  flags->had_daemon_flags = args->size() != before - (port != nullptr ? 2 : 0);
  if (port != nullptr) {
    // 0 = ephemeral: the daemon prints the port the kernel picked.
    if (!ParseUint(port, &flags->port) || flags->port > 65535) {
      std::fprintf(stderr,
                   "error: --port must be an integer in [0, 65535], got "
                   "'%s'\n",
                   port);
      return false;
    }
  }
  if (serve_threads != nullptr) {
    constexpr uint64_t kMaxServeThreads = 1024;
    if (!ParseUint(serve_threads, &flags->serve_threads) ||
        flags->serve_threads == 0 ||
        flags->serve_threads > kMaxServeThreads) {
      std::fprintf(stderr,
                   "error: --serve-threads must be an integer in [1, %llu], "
                   "got '%s'\n",
                   static_cast<unsigned long long>(kMaxServeThreads),
                   serve_threads);
      return false;
    }
  }
  if (cache_mb != nullptr) {
    // 0 disables the cache; the cap keeps the budget inside size_t range
    // on any platform.
    constexpr uint64_t kMaxCacheMb = 4096;
    if (!ParseUint(cache_mb, &flags->cache_mb) ||
        flags->cache_mb > kMaxCacheMb) {
      std::fprintf(stderr,
                   "error: --cache-mb must be an integer in [0, %llu], got "
                   "'%s'\n",
                   static_cast<unsigned long long>(kMaxCacheMb), cache_mb);
      return false;
    }
  }
  if (max_inflight != nullptr) {
    constexpr uint64_t kMaxInflight = uint64_t{1} << 20;
    if (!ParseUint(max_inflight, &flags->max_inflight) ||
        flags->max_inflight == 0 || flags->max_inflight > kMaxInflight) {
      std::fprintf(stderr,
                   "error: --max-inflight must be an integer in [1, %llu], "
                   "got '%s'\n",
                   static_cast<unsigned long long>(kMaxInflight),
                   max_inflight);
      return false;
    }
  }
  return true;
}

/// The storage-backend flags of the data-touching commands: --storage
/// ram|mmap selects how <data.bin> is opened (ram, the default, bulk-loads
/// it; mmap maps it and serves verification reads from a buffer pool) and
/// --pool-mb sizes the mmap backend's pool. Validated through the same
/// honesty path as every flag: a malformed value, or --pool-mb without
/// --storage mmap (it could never matter), exits 1.
struct StorageFlags {
  storage::StorageOptions options;
  bool had_any = false;
};

bool ExtractStorageFlags(std::vector<char*>* args, StorageFlags* flags) {
  const char* backend = nullptr;
  const char* pool_mb = nullptr;
  if (!ExtractOption(args, "--storage", &backend) ||
      !ExtractOption(args, "--pool-mb", &pool_mb)) {
    return false;
  }
  flags->had_any = backend != nullptr || pool_mb != nullptr;
  if (backend != nullptr) {
    auto parsed = storage::ParseStorageBackend(backend);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().message().c_str());
      return false;
    }
    flags->options.backend = parsed.value();
  }
  if (pool_mb != nullptr) {
    if (flags->options.backend != storage::StorageBackend::kMmap) {
      std::fprintf(stderr,
                   "error: --pool-mb requires --storage mmap (the ram "
                   "backend has no buffer pool)\n");
      return false;
    }
    // The cap keeps the byte budget inside size_t on any platform.
    constexpr uint64_t kMaxPoolMb = 65536;
    uint64_t mb = 0;
    if (!ParseUint(pool_mb, &mb) || mb == 0 || mb > kMaxPoolMb) {
      std::fprintf(stderr,
                   "error: --pool-mb must be an integer in [1, %llu], got "
                   "'%s'\n",
                   static_cast<unsigned long long>(kMaxPoolMb), pool_mb);
      return false;
    }
    flags->options.pool.budget_bytes = static_cast<size_t>(mb) << 20;
  }
  return true;
}

/// Opens <data.bin> under the selected backend. The pooled backend prints
/// its geometry line; the default ram path prints nothing extra, keeping
/// output byte-identical to historical runs (and to the daemon smoke
/// diffs). Returns false after printing the error.
bool OpenStorage(const char* path, const StorageFlags& flags,
                 storage::StorageHandle* handle) {
  auto opened = storage::StorageHandle::Open(path, "cli", flags.options);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().message().c_str());
    return false;
  }
  *handle = std::move(opened).value();
  if (handle->pooled()) std::printf("%s\n", handle->Describe().c_str());
  return true;
}

/// The measured-I/O epilogue of `query` and `range` on a pooled backend:
/// the pool ledger of the batch, plus the reconciliation of measured pool
/// misses against the modeled random-access count (the paper's ledger).
/// Pages coalesce neighboring series and stay warm across queries, so
/// measured misses <= modeled accesses; the line makes that relation
/// visible instead of leaving two unconnected numbers. Prints nothing on
/// the ram backend, whose output must stay byte-identical.
void PrintStorageSummary(const storage::StorageHandle& handle,
                         const core::SearchStats& total) {
  if (!handle.pooled()) return;
  const long long hits = static_cast<long long>(total.pool_hits);
  const long long misses = static_cast<long long>(total.pool_misses);
  const long long reads = hits + misses;
  const double hit_rate =
      reads > 0 ? 100.0 * static_cast<double>(hits) /
                      static_cast<double>(reads)
                : 0.0;
  std::printf("storage: %lld pool reads (hits %lld, misses %lld, hit rate "
              "%.1f%%), %lld preads, %lld bytes, %lld evictions\n",
              reads, hits, misses, hit_rate,
              static_cast<long long>(total.pool_pread_calls),
              static_cast<long long>(total.pool_bytes_read),
              static_cast<long long>(total.pool_evictions));
  std::printf("storage check: measured pool misses %lld vs modeled random "
              "accesses %lld (%s)\n",
              misses, static_cast<long long>(total.random_seeks),
              misses <= total.random_seeks
                  ? "consistent: page coalescing and reuse make measured "
                    "<= modeled"
                  : "measured exceeds modeled: pool thrashing below the "
                    "working set");
}

/// Self-pipe bridging POSIX signals into the serve loop: the handler only
/// writes one identifying byte, everything real (drain, re-open) happens
/// on the main thread outside signal context.
int g_serve_signal_pipe[2] = {-1, -1};

extern "C" void ServeSignalHandler(int sig) {
  const char byte = sig == SIGHUP ? 'H' : 'Q';
  // A full pipe just drops the byte; the pending signal of the same kind
  // is already queued for processing.
  [[maybe_unused]] const ssize_t ignored =
      ::write(g_serve_signal_pipe[1], &byte, 1);
}

int CmdGen(int argc, char** argv) {
  if (argc != 7) return Usage();
  const std::string family = argv[2];
  if (!gen::IsKnownFamily(family)) {
    std::string known;
    for (const std::string& f : gen::KnownFamilies()) {
      known += known.empty() ? f : "|" + f;
    }
    std::fprintf(stderr, "error: unknown family '%s' (%s)\n", family.c_str(),
                 known.c_str());
    return 1;
  }
  uint64_t count = 0;
  uint64_t length = 0;
  uint64_t seed = 0;
  if (!ParseUint(argv[3], &count)) return BadNumber("count", argv[3]);
  if (!ParseUint(argv[4], &length)) return BadNumber("length", argv[4]);
  if (!ParseUint(argv[5], &seed)) return BadNumber("seed", argv[5]);
  if (count == 0 || length == 0) {
    std::fprintf(stderr, "error: count and length must be positive\n");
    return 1;
  }
  // Generation streams to disk in bounded chunks (io::SeriesFileWriter +
  // gen::SeriesEmitter), so corpus size is disk-limited, not RAM-limited;
  // the only arithmetic bound left is the format's uint64 byte volume.
  if (count >
      std::numeric_limits<uint64_t>::max() / sizeof(core::Value) / length) {
    std::fprintf(stderr,
                 "error: count x length = %llu x %llu overflows the series "
                 "file format\n",
                 static_cast<unsigned long long>(count),
                 static_cast<unsigned long long>(length));
    return 1;
  }
  auto created = io::SeriesFileWriter::Create(argv[6], length);
  if (!created.ok()) {
    std::fprintf(stderr, "error: %s\n", created.status().message().c_str());
    return 1;
  }
  io::SeriesFileWriter writer = std::move(created).value();
  const auto emitter = gen::MakeEmitter(family, length, seed);
  // ~4 MiB emission chunks: constant memory however large the corpus,
  // while writes stay large enough to reach disk bandwidth.
  const size_t chunk = std::max<size_t>(
      1, (size_t{4} << 20) / (length * sizeof(core::Value)));
  std::vector<core::Value> buffer(chunk * length);
  uint64_t done = 0;
  while (done < count) {
    const size_t n =
        static_cast<size_t>(std::min<uint64_t>(chunk, count - done));
    for (size_t i = 0; i < n; ++i) {
      emitter->Emit(buffer.data() + i * length);
    }
    // A short write (disk full) exits 1 with the writer's typed error; the
    // unfinished header keeps the partial file unreadable.
    const util::Status appended = writer.AppendBlock(buffer.data(), n);
    if (!appended.ok()) {
      std::fprintf(stderr, "error: %s\n", appended.message().c_str());
      return 1;
    }
    done += n;
  }
  const util::Status finished = writer.Finish();
  if (!finished.ok()) {
    std::fprintf(stderr, "error: %s\n", finished.message().c_str());
    return 1;
  }
  std::printf("wrote %zu x %zu series (%s) to %s\n",
              static_cast<size_t>(count), static_cast<size_t>(length),
              family.c_str(), argv[6]);
  return 0;
}

util::Result<core::Dataset> Load(const char* path) {
  return io::ReadSeriesFile(path, "cli");
}

/// Builds or opens the method over `data` depending on `index_dir`
/// (nullptr = fresh build). Prints the phase line; returns false (after
/// printing an error) when opening the persisted index failed.
bool BuildOrOpen(core::SearchMethod* method, const core::Dataset& data,
                 const char* index_dir) {
  if (index_dir == nullptr) {
    const core::BuildStats build = method->Build(data);
    std::printf("built %s over %zu series in %.2fs CPU\n",
                method->name().c_str(), data.size(), build.cpu_seconds);
    return true;
  }
  util::Result<core::BuildStats> opened = method->Open(index_dir, data);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().message().c_str());
    return false;
  }
  std::printf("opened %s index from %s in %.2fs load (build skipped)\n",
              method->name().c_str(), index_dir,
              opened.value().load_seconds);
  return true;
}

/// Prints the sharded-layout line of a query-answering command (the shard
/// count is a property of the built/opened container, which may differ
/// from the requested flag after Open — the manifest wins). The fan-out
/// width reported is the *effective* one: never more workers than shards.
void PrintShardLayout(const core::SearchMethod& method, uint64_t threads) {
  const auto* sharded = dynamic_cast<const shard::ShardedIndex*>(&method);
  if (sharded == nullptr) return;
  const size_t workers =
      std::min<size_t>(static_cast<size_t>(threads), sharded->shard_count());
  std::printf("sharded over %zu shards (fan-out threads: %zu)\n",
              sharded->shard_count(), workers);
}

int CmdServe(int argc, char** argv, uint64_t threads, uint64_t shards,
             const char* index_dir, const ServeFlags& flags,
             const StorageFlags& storage_flags) {
  if (argc != 4) return Usage();
  if (!IsKnownMethod(argv[3])) return BadMethod(argv[3]);
  auto method = MakeMethod(argv[3], shards, threads);
  if (method == nullptr) return 1;
  const core::MethodTraits traits = method->traits();
  if (index_dir != nullptr && !traits.supports_persistence) {
    std::fprintf(stderr, "error: %s does not support --index (%s)\n",
                 method->name().c_str(), traits.persistence_reason.c_str());
    return 1;
  }
  storage::StorageHandle stored;
  if (!OpenStorage(argv[2], storage_flags, &stored)) return 1;
  const core::Dataset& data = stored.dataset();
  if (!BuildOrOpen(method.get(), data, index_dir)) return 1;
  if (shards > 0) PrintShardLayout(*method, threads);

  if (::pipe(g_serve_signal_pipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action {};
  action.sa_handler = ServeSignalHandler;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGHUP, &action, nullptr);

  serve::ServerOptions options;
  options.port = static_cast<uint16_t>(flags.port);
  options.serve_threads = static_cast<size_t>(flags.serve_threads);
  options.cache_bytes = static_cast<size_t>(flags.cache_mb) << 20;
  options.max_inflight = static_cast<size_t>(flags.max_inflight);
  serve::Server server(std::move(options));
  std::shared_ptr<core::SearchMethod> shared(std::move(method));
  const util::Status started = server.Start(shared, &data);
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.message().c_str());
    return 1;
  }
  // Scripts parse this line for the bound port; flush so a backgrounded
  // daemon publishes it before the first client connects.
  std::printf("hydra serve: %s on 127.0.0.1:%u (serve-threads %llu, "
              "cache %llu MiB, max-inflight %llu)\n",
              shared->name().c_str(), server.port(),
              static_cast<unsigned long long>(flags.serve_threads),
              static_cast<unsigned long long>(flags.cache_mb),
              static_cast<unsigned long long>(flags.max_inflight));
  std::fflush(stdout);

  for (;;) {
    char byte = 0;
    const ssize_t n = ::read(g_serve_signal_pipe[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // pipe broken — treat as shutdown
    if (byte == 'H') {
      // Re-open (or rebuild) the index without dropping the listener:
      // in-flight queries finish on the old instance, the cache stays
      // valid (same dataset fingerprint, exact answers only).
      auto fresh = MakeMethod(argv[3], shards, threads);
      if (fresh == nullptr || !BuildOrOpen(fresh.get(), data, index_dir)) {
        std::fprintf(stderr,
                     "hydra serve: reload failed; keeping the current "
                     "index\n");
        continue;
      }
      server.Reload(std::shared_ptr<core::SearchMethod>(std::move(fresh)));
      std::printf("hydra serve: index reloaded\n");
      std::fflush(stdout);
      continue;
    }
    break;  // SIGINT/SIGTERM: drain and exit
  }
  std::printf("hydra serve: draining in-flight queries\n");
  std::fflush(stdout);
  server.Shutdown();
  std::printf("hydra serve: stopped\n%s\n", server.StatsJson().c_str());
  return 0;
}

int CmdPing(const ServeFlags& flags) {
  serve::Client client;
  util::WallTimer timer;
  util::Status s =
      client.Connect("127.0.0.1", static_cast<uint16_t>(flags.port));
  if (s.ok()) s = client.Ping();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("pong from 127.0.0.1:%llu (%.2f ms)\n",
              static_cast<unsigned long long>(flags.port),
              timer.Seconds() * 1e3);
  return 0;
}

int CmdStats(const ServeFlags& flags, bool full) {
  serve::Client client;
  util::Status s =
      client.Connect("127.0.0.1", static_cast<uint16_t>(flags.port));
  std::string doc;
  if (s.ok()) s = full ? client.StatsFull(&doc) : client.Stats(&doc);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.message().c_str());
    return 1;
  }
  if (full) {
    // The registry dump already ends each line with '\n'.
    std::fputs(doc.c_str(), stdout);
  } else {
    std::printf("%s\n", doc.c_str());
  }
  return 0;
}

int CmdQueryd(int argc, char** argv, const QueryFlags& flags,
              const ServeFlags& serve_flags) {
  if (argc < 4) return Usage();
  uint64_t k = 0;
  if (!ParseUint(argv[3], &k)) return BadNumber("k", argv[3]);
  if (k == 0) {
    std::fprintf(stderr, "error: k must be positive\n");
    return 1;
  }
  uint64_t queries = 10;
  if (argc > 4 && !ParseUint(argv[4], &queries)) {
    return BadNumber("queries", argv[4]);
  }
  // Client-side parsing is syntactic only: the *server's* method traits
  // decide which modes are honestly answerable, and it refuses with a
  // BAD_QUERY frame — so validate against permissive traits here.
  core::MethodTraits permissive;
  permissive.supports_ng = true;
  permissive.supports_epsilon = true;
  permissive.supports_delta_epsilon = true;
  permissive.leaf_visit_budget = true;
  core::QuerySpec spec = core::QuerySpec::Knn(k);
  if (!BuildQuerySpec(flags, permissive, "the served method", &spec)) {
    return 1;
  }
  auto loaded = Load(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().message().c_str());
    return 1;
  }
  const core::Dataset data = std::move(loaded).value();
  const gen::Workload probe = gen::CtrlWorkload(data, queries, 1);

  serve::Client client;
  const util::Status connected =
      client.Connect("127.0.0.1", static_cast<uint16_t>(serve_flags.port));
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s\n", connected.message().c_str());
    return 1;
  }
  size_t cached = 0;
  for (size_t q = 0; q < probe.queries.size(); ++q) {
    serve::QueryRequest request;
    request.spec = spec;
    // Sequential request ids propagate into the daemon's flight recorder
    // and trace spans: a slow query in its STATS names the client call.
    request.request_id = static_cast<uint64_t>(q) + 1;
    request.query.assign(probe.queries[q].begin(), probe.queries[q].end());
    serve::AnswerResponse answer;
    const util::Status s = client.Query(request, &answer);
    if (!s.ok()) {
      std::fprintf(stderr, "error: query %zu: %s\n", q, s.message().c_str());
      return 1;
    }
    if (answer.cached) ++cached;
    // Byte-identical to the `hydra query` per-query line, so a served
    // answer stream can be diffed against a direct run.
    const core::QueryResult& r = answer.result;
    std::printf("query %2zu: ", q);
    for (const auto& n : r.neighbors) {
      std::printf("(%u, %.3f) ", n.id, std::sqrt(n.dist_sq));
    }
    std::printf("[examined %lld, seeks %lld, mode %s%s]\n",
                static_cast<long long>(r.stats.raw_series_examined),
                static_cast<long long>(r.stats.random_seeks),
                core::QualityModeName(r.delivered()),
                r.budget_fired() ? ", budget exhausted" : "");
  }
  std::printf("answered %zu queries via 127.0.0.1:%llu (%zu from cache)\n",
              probe.queries.size(),
              static_cast<unsigned long long>(serve_flags.port), cached);
  return 0;
}

int CmdQuery(int argc, char** argv, uint64_t threads, uint64_t shards,
             uint64_t query_threads, const QueryFlags& flags,
             const char* index_dir, const StorageFlags& storage_flags) {
  if (argc < 5) return Usage();
  // Validate the cheap arguments before reading the (possibly huge) file.
  if (!IsKnownMethod(argv[3])) return BadMethod(argv[3]);
  uint64_t k = 0;
  if (!ParseUint(argv[4], &k)) return BadNumber("k", argv[4]);
  if (k == 0) {
    std::fprintf(stderr, "error: k must be positive\n");
    return 1;
  }
  uint64_t queries = 10;
  if (argc > 5 && !ParseUint(argv[5], &queries)) {
    return BadNumber("queries", argv[5]);
  }
  auto method = MakeMethod(argv[3], shards, threads);
  if (method == nullptr) return 1;
  const core::MethodTraits traits = method->traits();
  core::QuerySpec spec = core::QuerySpec::Knn(k);
  if (!BuildQuerySpec(flags, traits, method->name(), &spec)) {
    return 1;
  }
  if (!CheckQueryThreads(traits, method->name(), query_threads)) return 1;
  spec.query_threads = static_cast<size_t>(query_threads);
  if (query_threads > 1 &&
      (spec.mode != core::QualityMode::kExact || spec.has_budget())) {
    // Approximate and budgeted answers depend on visit order, so the
    // engine keeps their traversal serial — note it rather than let the
    // user believe the relaxed run was parallel.
    std::printf("note: --query-threads applies to pure exact plans only; "
                "this %s%s run keeps its traversal serial\n",
                core::QualityModeName(spec.mode),
                spec.has_budget() ? " budgeted" : "");
  }
  if (query_threads > 1 && threads > 1 && shards == 0) {
    std::printf("note: %llu batch threads x %llu traversal workers = %llu "
                "total threads at peak\n",
                static_cast<unsigned long long>(threads),
                static_cast<unsigned long long>(query_threads),
                static_cast<unsigned long long>(threads * query_threads));
  }
  // Honest refusal before touching the data file: --index on a method
  // that cannot persist an index could never succeed.
  if (index_dir != nullptr && !traits.supports_persistence) {
    std::fprintf(stderr, "error: %s does not support --index (%s)\n",
                 method->name().c_str(), traits.persistence_reason.c_str());
    return 1;
  }
  storage::StorageHandle stored;
  if (!OpenStorage(argv[2], storage_flags, &stored)) return 1;
  const core::Dataset& data = stored.dataset();

  if (!BuildOrOpen(method.get(), data, index_dir)) return 1;
  if (shards > 0) PrintShardLayout(*method, threads);
  const gen::Workload probe = gen::CtrlWorkload(data, queries, 1);
  // With --shards, the parallelism lives inside each query (the fan-out
  // pool); the batch itself runs serially.
  const size_t batch_threads =
      shards > 0 ? 1 : static_cast<size_t>(threads);
  util::WallTimer timer;
  const core::BatchKnnResult batch =
      bench::SearchKnnBatch(method.get(), probe, spec, batch_threads);
  const double wall = timer.Seconds();
  for (size_t q = 0; q < batch.queries.size(); ++q) {
    const core::QueryResult& r = batch.queries[q];
    std::printf("query %2zu: ", q);
    for (const auto& n : r.neighbors) {
      std::printf("(%u, %.3f) ", n.id, std::sqrt(n.dist_sq));
    }
    // The delivered guarantee and budget outcome are part of the answer:
    // without them an approximate or truncated run is indistinguishable
    // from an exact one in terminal output.
    std::printf("[examined %lld, seeks %lld, mode %s%s]\n",
                static_cast<long long>(r.stats.raw_series_examined),
                static_cast<long long>(r.stats.random_seeks),
                core::QualityModeName(r.delivered()),
                r.budget_fired() ? ", budget exhausted" : "");
  }
  // Honest delivery report: the guarantee that held for every query of
  // the batch (budgets downgrade it to "ng" = no guarantee).
  size_t budget_fired = 0;
  for (const core::QueryResult& r : batch.queries) {
    if (r.budget_fired()) ++budget_fired;
  }
  std::printf("mode %s requested: weakest delivered %s; budget fired on "
              "%zu/%zu queries\n",
              core::QualityModeName(spec.mode),
              core::QualityModeName(batch.total.answer_mode_delivered),
              budget_fired, batch.queries.size());
  if (threads > 1 && shards == 0) {
    if (!batch.serial_reason.empty()) {
      std::printf("ran serially: %s\n", batch.serial_reason.c_str());
    } else if (batch.queries.size() == 1) {
      // --threads parallelizes across queries; with one query it silently
      // does nothing — say so instead of implying a concurrent run.
      std::printf("note: --threads parallelizes across queries and a "
                  "single-query batch runs serially; use --query-threads "
                  "to parallelize within the query%s\n",
                  traits.intra_query_parallel
                      ? ""
                      : " (not supported by this method)");
    } else {
      std::printf("%zu queries on %zu threads: %.3fs wall (%.1f queries/s)\n",
                  batch.queries.size(), batch.threads_used, wall,
                  static_cast<double>(batch.queries.size()) / wall);
    }
  }
  PrintStorageSummary(stored, batch.total);
  obs::PublishSearchStats(batch.total, "query");
  return 0;
}

int CmdRange(int argc, char** argv, uint64_t threads, uint64_t shards,
             uint64_t query_threads, const char* index_dir,
             const StorageFlags& storage_flags) {
  if (argc < 5) return Usage();
  // Validate the cheap arguments before reading the (possibly huge) file.
  if (!IsKnownMethod(argv[3])) return BadMethod(argv[3]);
  errno = 0;
  char* end = nullptr;
  const double radius = std::strtod(argv[4], &end);
  if (errno != 0 || end == argv[4] || *end != '\0' || !(radius >= 0.0)) {
    std::fprintf(stderr, "error: radius must be a non-negative number\n");
    return 1;
  }
  uint64_t queries = 10;
  if (argc > 5 && !ParseUint(argv[5], &queries)) {
    return BadNumber("queries", argv[5]);
  }
  auto method = MakeMethod(argv[3], shards, threads);
  if (method == nullptr) return 1;
  const core::MethodTraits traits = method->traits();
  if (!CheckQueryThreads(traits, method->name(), query_threads)) return 1;
  if (index_dir != nullptr && !traits.supports_persistence) {
    std::fprintf(stderr, "error: %s does not support --index (%s)\n",
                 method->name().c_str(), traits.persistence_reason.c_str());
    return 1;
  }
  storage::StorageHandle stored;
  if (!OpenStorage(argv[2], storage_flags, &stored)) return 1;
  const core::Dataset& data = stored.dataset();

  if (!BuildOrOpen(method.get(), data, index_dir)) return 1;
  if (shards > 0) PrintShardLayout(*method, threads);
  core::QuerySpec spec = core::QuerySpec::Range(radius);
  spec.query_threads = static_cast<size_t>(query_threads);
  const gen::Workload probe = gen::CtrlWorkload(data, queries, 1);
  core::SearchStats total;
  for (size_t q = 0; q < probe.queries.size(); ++q) {
    const core::QueryResult r = method->Execute(probe.queries[q], spec);
    total.Add(r.stats);
    std::printf("query %2zu: %zu series within r=%.3f [examined %lld]\n", q,
                r.neighbors.size(), radius,
                static_cast<long long>(r.stats.raw_series_examined));
  }
  PrintStorageSummary(stored, total);
  obs::PublishSearchStats(total, "range");
  return 0;
}

int CmdBuild(int argc, char** argv, uint64_t threads, uint64_t shards,
             const StorageFlags& storage_flags) {
  if (argc != 5) return Usage();
  if (!IsKnownMethod(argv[3])) return BadMethod(argv[3]);
  auto method = MakeMethod(argv[3], shards, threads);
  if (method == nullptr) return 1;
  const core::MethodTraits traits = method->traits();
  // Traits-derived refusal before any expensive work: a method without
  // DoSave/DoOpen hooks can never produce an index directory.
  if (!traits.supports_persistence) {
    std::fprintf(stderr,
                 "error: %s does not support a persisted index (%s)\n",
                 method->name().c_str(), traits.persistence_reason.c_str());
    return 1;
  }
  storage::StorageHandle stored;
  if (!OpenStorage(argv[2], storage_flags, &stored)) return 1;
  const core::Dataset& data = stored.dataset();
  const core::BuildStats build = method->Build(data);
  std::printf("built %s over %zu series in %.2fs CPU\n",
              method->name().c_str(), data.size(), build.cpu_seconds);
  if (shards > 0) PrintShardLayout(*method, threads);
  const util::Result<int64_t> saved = method->Save(argv[4]);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.status().message().c_str());
    return 1;
  }
  std::printf("saved %s index to %s (%lld bytes)\n", method->name().c_str(),
              argv[4], static_cast<long long>(saved.value()));
  return 0;
}

int CmdCompare(int argc, char** argv, uint64_t threads) {
  if (argc < 3) return Usage();
  auto loaded = Load(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().message().c_str());
    return 1;
  }
  const core::Dataset data = std::move(loaded).value();
  uint64_t queries = 10;
  if (argc > 3 && !ParseUint(argv[3], &queries)) {
    return BadNumber("queries", argv[3]);
  }
  const gen::Workload probe = gen::CtrlWorkload(data, queries, 1);

  util::Table table({"method", "idx_s", "exact100_HDD_s", "exact100_SSD_s",
                     "pruning"});
  const auto hdd = io::DiskModel::ScaledHdd();
  const auto ssd = io::DiskModel::Ssd();
  for (const std::string& name : bench::BestSixNames()) {
    auto method = bench::CreateMethod(name);
    const core::MethodTraits traits = method->traits();
    if (threads > 1 && !traits.concurrent_queries) {
      std::printf("note: %s ran serially: %s\n", name.c_str(),
                  traits.serial_reason.c_str());
    }
    const bench::MethodRun run = bench::RunMethodParallel(
        method.get(), data, probe, /*k=*/1, static_cast<size_t>(threads));
    table.AddRow({name, util::Table::Num(bench::IndexSeconds(run, hdd), 3),
                  util::Table::Num(bench::Exact100Seconds(run, hdd), 3),
                  util::Table::Num(bench::Exact100Seconds(run, ssd), 3),
                  util::Table::Num(
                      bench::MeanPruningRatio(run, data.size()), 3)});
  }
  table.Print("method comparison on " + std::string(argv[2]));
  return 0;
}

/// Pre-validates HYDRA_KERNELS so ambient misuse exits 1 with the
/// supported list instead of reaching the library's abort-on-resolve last
/// resort. Returns false after printing the error.
bool CheckKernelEnv() {
  const char* env = std::getenv("HYDRA_KERNELS");
  if (env == nullptr || env[0] == '\0') return true;
  const core::simd::KernelSet* set = core::simd::FindKernelSet(env);
  if (set != nullptr && core::simd::KernelSetSupported(*set)) return true;
  std::string supported;
  for (const core::simd::KernelSet* s : core::simd::SupportedKernelSets()) {
    supported += supported.empty() ? s->name : std::string(", ") + s->name;
  }
  std::fprintf(stderr, "error: HYDRA_KERNELS='%s' is %s (supported: %s)\n",
               env, set == nullptr ? "not a kernel set" : "not supported by "
                                                          "this CPU",
               supported.c_str());
  return false;
}

int CmdKernels(int argc, char** argv) {
  if (argc == 3 && std::string(argv[2]) == "names") {
    // Scripting mode: the supported set names, one per line (the CI
    // dispatch matrix loops over this).
    for (const core::simd::KernelSet* set :
         core::simd::SupportedKernelSets()) {
      std::printf("%s\n", set->name);
    }
    return 0;
  }
  if (argc != 2) return Usage();
  const core::simd::KernelSet& active = core::simd::ActiveKernels();
  util::Table table({"set", "supported", "active", "raw-order-preserving"});
  for (const core::simd::KernelSet* set : core::simd::AllKernelSets()) {
    table.AddRow({set->name,
                  core::simd::KernelSetSupported(*set) ? "yes" : "no",
                  set == &active ? "yes" : "-",
                  set->raw_order_preserved ? "yes" : "no"});
  }
  table.Print("kernel sets (default: best supported; override with "
              "--kernels or HYDRA_KERNELS)");
  return 0;
}

int CmdMethods() {
  // The full traits matrix: quality modes, batch concurrency, and index
  // persistence, each derived from the method's own traits() so this
  // listing can never drift from what Execute/Save/Open actually accept.
  util::Table table({"method", "modes", "concurrent", "persistent",
                     "shardable", "intra-query"});
  for (const std::string& name : bench::AllMethodNames()) {
    const core::MethodTraits traits = bench::CreateMethod(name)->traits();
    std::string modes = "exact";
    if (traits.supports_ng) modes += ",ng";
    if (traits.supports_epsilon) modes += ",epsilon";
    if (traits.supports_delta_epsilon) modes += ",delta-epsilon";
    table.AddRow({name, modes, traits.concurrent_queries ? "yes" : "no",
                  traits.supports_persistence ? "yes" : "no",
                  traits.shardable ? "yes" : "no",
                  traits.intra_query_parallel ? "yes" : "no"});
  }
  table.Print("method traits");
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::vector<char*> args(argv, argv + argc);
  uint64_t threads = 1;
  const size_t before = args.size();
  if (!ExtractThreads(&args, &threads)) return 1;
  const bool had_threads = args.size() != before;
  uint64_t shards = 0;
  if (!ExtractShards(&args, &shards)) return 1;
  uint64_t query_threads = 1;
  const size_t before_qt = args.size();
  if (!ExtractQueryThreads(&args, &query_threads)) return 1;
  const bool had_query_threads = args.size() != before_qt;
  QueryFlags flags;
  const size_t before_spec = args.size();
  if (!ExtractOption(&args, "--mode", &flags.mode) ||
      !ExtractOption(&args, "--epsilon", &flags.epsilon) ||
      !ExtractOption(&args, "--delta", &flags.delta) ||
      !ExtractOption(&args, "--max-leaves", &flags.max_leaves) ||
      !ExtractOption(&args, "--max-raw", &flags.max_raw)) {
    return 1;
  }
  const bool had_spec_flags = args.size() != before_spec;
  const char* index_dir = nullptr;
  if (!ExtractOption(&args, "--index", &index_dir)) return 1;
  const char* kernels = nullptr;
  if (!ExtractOption(&args, "--kernels", &kernels)) return 1;
  const char* trace_path = nullptr;
  if (!ExtractOption(&args, "--trace", &trace_path)) return 1;
  const bool stats_full = ExtractBareFlag(&args, "--full");
  ServeFlags serve_flags;
  if (!ExtractServeFlags(&args, &serve_flags)) return 1;
  StorageFlags storage_flags;
  if (!ExtractStorageFlags(&args, &storage_flags)) return 1;
  if (args.size() < 2) return Usage();  // argv was only flags
  const int n = static_cast<int>(args.size());
  const std::string cmd = args[1];
  // Only the sharding-capable commands accept --shards; stripping it
  // silently elsewhere would let users believe e.g. a compare ran sharded.
  if (shards > 0 && cmd != "build" && cmd != "query" && cmd != "range" &&
      cmd != "serve") {
    std::fprintf(stderr, "error: --shards is only supported by 'build', "
                         "'query', 'range', and 'serve'\n");
    return 1;
  }
  // The daemon/client flags belong to the serve family only; swallowing
  // them elsewhere would let users believe e.g. a query was admission-
  // controlled.
  if (serve_flags.had_port && cmd != "serve" && cmd != "ping" &&
      cmd != "queryd" && cmd != "stats") {
    std::fprintf(stderr, "error: --port is only supported by 'serve', "
                         "'ping', 'queryd', and 'stats'\n");
    return 1;
  }
  if (serve_flags.had_daemon_flags && cmd != "serve") {
    std::fprintf(stderr, "error: --serve-threads/--cache-mb/--max-inflight "
                         "are only supported by 'serve'\n");
    return 1;
  }
  // The storage backend shapes how <data.bin> is opened, which only the
  // data-touching commands do; swallowing the flags elsewhere would let
  // users believe e.g. a queryd client pooled its reads (the *daemon*
  // owns the backend).
  if (storage_flags.had_any && cmd != "build" && cmd != "query" &&
      cmd != "range" && cmd != "serve") {
    std::fprintf(stderr, "error: --storage/--pool-mb are only supported by "
                         "'build', 'query', 'range', and 'serve'\n");
    return 1;
  }
  // --threads is the batch concurrency on query/compare, and the sharded
  // fan-out width when --shards is present (which also makes it
  // meaningful on build/range); anywhere else, stripping it silently
  // would let users believe a serial run was concurrent.
  if (had_threads && cmd != "query" && cmd != "compare" && shards == 0) {
    std::fprintf(stderr, "error: --threads is only supported by 'query' "
                         "and 'compare' (or any sharded command with "
                         "--shards)\n");
    return 1;
  }
  // Under serve, --threads is meaningful only as the sharded fan-out
  // width (the daemon's own concurrency is --serve-threads) — the gate
  // above already enforces that by requiring --shards.
  // --query-threads shapes a single query's traversal, which only the
  // query-answering commands run; swallowing it elsewhere would let
  // users believe e.g. a build was traversal-parallel.
  if (had_query_threads && cmd != "query" && cmd != "range") {
    std::fprintf(stderr, "error: --query-threads is only supported by "
                         "'query' and 'range'\n");
    return 1;
  }
  // The QuerySpec flags only shape k-NN queries; swallowing them
  // elsewhere would let users believe e.g. a range query was approximate.
  if (had_spec_flags && cmd != "query" && cmd != "queryd") {
    std::fprintf(stderr, "error: --mode/--epsilon/--delta/--max-leaves/"
                         "--max-raw are only supported by 'query' and "
                         "'queryd'\n");
    return 1;
  }
  // Same honesty for --index: only the query-answering commands (and the
  // daemon) can open a persisted index (`build` writes one, it never
  // reads one).
  if (index_dir != nullptr && cmd != "query" && cmd != "range" &&
      cmd != "serve") {
    std::fprintf(stderr, "error: --index is only supported by 'query', "
                         "'range', and 'serve'\n");
    return 1;
  }
  // Tracing records per-query spans, which only the index-touching
  // commands emit; swallowing --trace elsewhere would write an empty
  // trace and let users believe e.g. a ping was profiled.
  if (trace_path != nullptr && cmd != "build" && cmd != "query" &&
      cmd != "range" && cmd != "serve") {
    std::fprintf(stderr, "error: --trace is only supported by 'build', "
                         "'query', 'range', and 'serve'\n");
    return 1;
  }
  if (stats_full && cmd != "stats") {
    std::fprintf(stderr, "error: --full is only supported by 'stats'\n");
    return 1;
  }
  if (trace_path != nullptr) {
    // Fail before the work, not after: an unwritable trace path must not
    // cost a full build or query batch first.
    std::ofstream probe(trace_path, std::ios::binary | std::ios::trunc);
    if (!probe) {
      std::fprintf(stderr,
                   "error: cannot open trace path for writing: %s\n",
                   trace_path);
      return 1;
    }
    obs::Tracer::Get().Enable();
  }
  // An unusable HYDRA_KERNELS must exit cleanly for every command — the
  // library would otherwise abort at first dispatch resolution.
  if (!CheckKernelEnv()) return 1;
  if (kernels != nullptr) {
    // --kernels shapes distance computation, which only the build/search
    // commands perform; swallowing it elsewhere would let users believe
    // e.g. `hydra kernels --kernels avx2` changed anything.
    if (cmd != "build" && cmd != "query" && cmd != "range" &&
        cmd != "compare") {
      std::fprintf(stderr, "error: --kernels is only supported by 'build', "
                           "'query', 'range', and 'compare'\n");
      return 1;
    }
    const util::Status forced = core::simd::UseKernels(kernels);
    if (!forced.ok()) {
      std::fprintf(stderr, "error: %s\n", forced.message().c_str());
      return 1;
    }
  }
  const int rc = [&]() -> int {
    if (cmd == "gen") return CmdGen(n, args.data());
    if (cmd == "build") {
      return CmdBuild(n, args.data(), threads, shards, storage_flags);
    }
    if (cmd == "query") {
      return CmdQuery(n, args.data(), threads, shards, query_threads, flags,
                      index_dir, storage_flags);
    }
    if (cmd == "range") {
      return CmdRange(n, args.data(), threads, shards, query_threads,
                      index_dir, storage_flags);
    }
    if (cmd == "compare") return CmdCompare(n, args.data(), threads);
    if (cmd == "serve") {
      return CmdServe(n, args.data(), threads, shards, index_dir,
                      serve_flags, storage_flags);
    }
    if (cmd == "ping") return CmdPing(serve_flags);
    if (cmd == "queryd") return CmdQueryd(n, args.data(), flags, serve_flags);
    if (cmd == "stats") return CmdStats(serve_flags, stats_full);
    if (cmd == "methods") return CmdMethods();
    if (cmd == "kernels") return CmdKernels(n, args.data());
    return Usage();
  }();
  if (trace_path != nullptr) {
    obs::Tracer& tracer = obs::Tracer::Get();
    tracer.SetMeta("command", cmd);
    if (n > 3) tracer.SetMeta("method", args[3]);
    tracer.SetMeta("kernels", core::simd::ActiveKernels().name);
    const util::Status written = tracer.WriteJson(trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.message().c_str());
      return rc == 0 ? 1 : rc;
    }
    std::fprintf(stderr, "trace written to %s\n", trace_path);
  }
  return rc;
}

}  // namespace
}  // namespace hydra

int main(int argc, char** argv) { return hydra::Main(argc, argv); }
