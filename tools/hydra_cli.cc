// hydra — command-line front end for the library.
//
//   hydra gen <family> <count> <length> <seed> <out.bin>
//       Generate a dataset (synth|seismic|astro|sald|deep) to a series file.
//   hydra query <data.bin> <method> <k> [queries]
//       Exact k-NN of generated probe queries against a series file.
//   hydra range <data.bin> <method> <radius> [queries]
//       Exact r-range queries.
//   hydra compare <data.bin> [queries]
//       Run the best six methods and print the scenario table.
//   hydra methods
//       List the available methods.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/harness.h"
#include "bench/registry.h"
#include "gen/realistic.h"
#include "gen/workload.h"
#include "io/disk_model.h"
#include "io/series_file.h"
#include "util/table.h"

namespace hydra {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hydra gen <family> <count> <length> <seed> <out.bin>\n"
               "  hydra query <data.bin> <method> <k> [queries=10]\n"
               "  hydra range <data.bin> <method> <radius> [queries=10]\n"
               "  hydra compare <data.bin> [queries=10]\n"
               "  hydra methods\n");
  return 2;
}

int CmdGen(int argc, char** argv) {
  if (argc != 7) return Usage();
  const std::string family = argv[2];
  const size_t count = std::strtoull(argv[3], nullptr, 10);
  const size_t length = std::strtoull(argv[4], nullptr, 10);
  const uint64_t seed = std::strtoull(argv[5], nullptr, 10);
  const core::Dataset data = gen::MakeDataset(family, count, length, seed);
  const util::Status s = io::WriteSeriesFile(argv[6], data);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("wrote %zu x %zu series (%s) to %s\n", data.size(),
              data.length(), family.c_str(), argv[6]);
  return 0;
}

util::Result<core::Dataset> Load(const char* path) {
  return io::ReadSeriesFile(path, "cli");
}

int CmdQuery(int argc, char** argv) {
  if (argc < 5) return Usage();
  auto loaded = Load(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().message().c_str());
    return 1;
  }
  const core::Dataset data = std::move(loaded).value();
  const size_t k = std::strtoull(argv[4], nullptr, 10);
  const size_t queries = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 10;

  auto method = bench::CreateMethod(argv[3]);
  const core::BuildStats build = method->Build(data);
  std::printf("built %s over %zu series in %.2fs CPU\n",
              method->name().c_str(), data.size(), build.cpu_seconds);
  const gen::Workload probe = gen::CtrlWorkload(data, queries, 1);
  for (size_t q = 0; q < probe.queries.size(); ++q) {
    const core::KnnResult r = method->SearchKnn(probe.queries[q], k);
    std::printf("query %2zu: ", q);
    for (const auto& n : r.neighbors) {
      std::printf("(%u, %.3f) ", n.id, std::sqrt(n.dist_sq));
    }
    std::printf("[examined %lld, seeks %lld]\n",
                static_cast<long long>(r.stats.raw_series_examined),
                static_cast<long long>(r.stats.random_seeks));
  }
  return 0;
}

int CmdRange(int argc, char** argv) {
  if (argc < 5) return Usage();
  auto loaded = Load(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().message().c_str());
    return 1;
  }
  const core::Dataset data = std::move(loaded).value();
  const double radius = std::strtod(argv[4], nullptr);
  const size_t queries = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 10;

  auto method = bench::CreateMethod(argv[3]);
  method->Build(data);
  const gen::Workload probe = gen::CtrlWorkload(data, queries, 1);
  for (size_t q = 0; q < probe.queries.size(); ++q) {
    const core::RangeResult r = method->SearchRange(probe.queries[q], radius);
    std::printf("query %2zu: %zu series within r=%.3f [examined %lld]\n", q,
                r.matches.size(), radius,
                static_cast<long long>(r.stats.raw_series_examined));
  }
  return 0;
}

int CmdCompare(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto loaded = Load(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().message().c_str());
    return 1;
  }
  const core::Dataset data = std::move(loaded).value();
  const size_t queries = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 10;
  const gen::Workload probe = gen::CtrlWorkload(data, queries, 1);

  util::Table table({"method", "idx_s", "exact100_HDD_s", "exact100_SSD_s",
                     "pruning"});
  const auto hdd = io::DiskModel::ScaledHdd();
  const auto ssd = io::DiskModel::Ssd();
  for (const std::string& name : bench::BestSixNames()) {
    auto method = bench::CreateMethod(name);
    const bench::MethodRun run = bench::RunMethod(method.get(), data, probe);
    table.AddRow({name, util::Table::Num(bench::IndexSeconds(run, hdd), 3),
                  util::Table::Num(bench::Exact100Seconds(run, hdd), 3),
                  util::Table::Num(bench::Exact100Seconds(run, ssd), 3),
                  util::Table::Num(
                      bench::MeanPruningRatio(run, data.size()), 3)});
  }
  table.Print("method comparison on " + std::string(argv[2]));
  return 0;
}

int CmdMethods() {
  for (const std::string& name : bench::AllMethodNames()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(argc, argv);
  if (cmd == "query") return CmdQuery(argc, argv);
  if (cmd == "range") return CmdRange(argc, argv);
  if (cmd == "compare") return CmdCompare(argc, argv);
  if (cmd == "methods") return CmdMethods();
  return Usage();
}

}  // namespace
}  // namespace hydra

int main(int argc, char** argv) { return hydra::Main(argc, argv); }
