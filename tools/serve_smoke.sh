#!/usr/bin/env bash
# Serve smoke: the daemon must answer concurrent socket clients exactly the
# lines a direct `hydra query` run prints (same probe workload, same seed),
# repeat queries from the answer cache, report its traffic over STATS,
# answer pings, and drain cleanly on SIGTERM — all through the real binary.
set -euo pipefail
HYDRA="${1:?usage: serve_smoke.sh <path-to-hydra-binary>}"
TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2> /dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

"$HYDRA" gen synth 2000 64 7 "$TMP/data.bin" > /dev/null

# Direct reference answers: the per-query lines of an in-process run
# (queryd prints the identical format over the identical seed-1 probe
# workload, so the streams must diff empty — ledger fields included).
"$HYDRA" query "$TMP/data.bin" DSTree 5 6 | grep '^query' > "$TMP/ref.txt"

# Start the daemon on an ephemeral port and parse the bound port from its
# startup line ("hydra serve: DSTree on 127.0.0.1:PORT (...)").
"$HYDRA" serve "$TMP/data.bin" DSTree --port 0 --serve-threads 2 \
  > "$TMP/serve.log" 2>&1 &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^hydra serve: .* on 127\.0\.0\.1:\([0-9]*\) .*/\1/p' \
    "$TMP/serve.log")"
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVE_PID" 2> /dev/null \
    || { echo "FAIL: daemon died at startup"; cat "$TMP/serve.log"; exit 1; }
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "FAIL: no port line"; cat "$TMP/serve.log"; exit 1; }

"$HYDRA" ping --port "$PORT" | grep -q "^pong from 127.0.0.1:$PORT" \
  || { echo "FAIL: ping did not pong"; exit 1; }

# Four concurrent clients, each driving the full probe workload through a
# socket: every stream must be identical to the direct run.
CLIENT_PIDS=()
for c in 1 2 3 4; do
  "$HYDRA" queryd "$TMP/data.bin" 5 6 --port "$PORT" \
    > "$TMP/client$c.txt" 2>&1 &
  CLIENT_PIDS+=($!)
done
for pid in "${CLIENT_PIDS[@]}"; do
  wait "$pid" || { echo "FAIL: a concurrent client failed"; exit 1; }
done
for c in 1 2 3 4; do
  grep '^query' "$TMP/client$c.txt" > "$TMP/served$c.txt"
  diff "$TMP/ref.txt" "$TMP/served$c.txt" \
    || { echo "FAIL: client $c answers differ from direct query"; exit 1; }
done

# The workload repeats across clients, so by now every exact answer is
# cached: one more run must be answered entirely from the cache.
"$HYDRA" queryd "$TMP/data.bin" 5 6 --port "$PORT" > "$TMP/cached.txt"
grep -q "(6 from cache)$" "$TMP/cached.txt" \
  || { echo "FAIL: repeat run was not served from the cache"; \
       tail -1 "$TMP/cached.txt"; exit 1; }
grep '^query' "$TMP/cached.txt" > "$TMP/cached_answers.txt"
diff "$TMP/ref.txt" "$TMP/cached_answers.txt" \
  || { echo "FAIL: cached answers differ from direct query"; exit 1; }

# STATS sees the traffic: hits happened, nothing was malformed or rejected.
"$HYDRA" stats --port "$PORT" > "$TMP/stats.json"
grep -q '"rejected":0' "$TMP/stats.json" \
  || { echo "FAIL: unexpected rejections"; cat "$TMP/stats.json"; exit 1; }
grep -q '"malformed":0' "$TMP/stats.json" \
  || { echo "FAIL: unexpected malformed frames"; exit 1; }
grep -q '"hits":' "$TMP/stats.json" && ! grep -q '"hits":0,' "$TMP/stats.json" \
  || { echo "FAIL: STATS shows no cache hits"; cat "$TMP/stats.json"; exit 1; }

# Graceful shutdown: SIGTERM drains and the daemon reports it stopped.
kill -TERM "$SERVE_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVE_PID" 2> /dev/null || break
  sleep 0.1
done
if kill -0 "$SERVE_PID" 2> /dev/null; then
  echo "FAIL: daemon did not exit on SIGTERM"; exit 1
fi
wait "$SERVE_PID" || { echo "FAIL: daemon exited non-zero"; exit 1; }
SERVE_PID=""
grep -q "hydra serve: stopped" "$TMP/serve.log" \
  || { echo "FAIL: no clean shutdown line"; cat "$TMP/serve.log"; exit 1; }

# Flag validation exits 1 with a message, never a crash.
if "$HYDRA" serve "$TMP/data.bin" DSTree --port 99999 2> "$TMP/err.txt"; then
  echo "FAIL: --port 99999 should exit 1"; exit 1
fi
grep -q -- "--port" "$TMP/err.txt" \
  || { echo "FAIL: bad port error lacks the flag name"; exit 1; }

echo "serve smoke OK"
