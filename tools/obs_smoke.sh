#!/usr/bin/env bash
# Observability smoke: a traced sharded + pooled + intra-query-parallel
# query must export Chrome trace-event JSON that a real parser loads,
# carrying the full span hierarchy (execute → shard_search → traversal →
# leaf_verify, plus pool_miss_pread from the starved buffer pool); the
# daemon must surface bucketed latency quantiles, the flight recorder
# (request ids round-tripped from the client), and `stats --full`; and
# every bad flag combination must exit 1 with a reason, never a crash.
set -euo pipefail
HYDRA="${1:?usage: obs_smoke.sh <path-to-hydra-binary>}"
TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2> /dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

"$HYDRA" gen synth 4000 64 13 "$TMP/data.bin" > /dev/null

# The acceptance-path query: shards, intra-query workers, and a pool far
# smaller than the dataset, all under --trace.
"$HYDRA" query "$TMP/data.bin" DSTree 5 4 --shards 3 --threads 2 \
  --query-threads 2 --storage mmap --pool-mb 1 \
  --trace "$TMP/trace.json" > "$TMP/query.txt" 2> "$TMP/query.err"
grep -q "trace written to" "$TMP/query.err" \
  || { echo "FAIL: no trace-written confirmation"; cat "$TMP/query.err"; exit 1; }

# Parse back with a real JSON parser and check the span hierarchy: every
# phase the issue names must appear, nesting depths must be recorded, and
# nothing may have been dropped on this small run.
python3 - "$TMP/trace.json" << 'EOF' || exit 1
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
other = doc["otherData"]
names = {}
for e in events:
    assert e["ph"] == "X", e
    assert e["ts"] >= 0 and e["dur"] >= 0, e
    assert "depth" in e["args"], e
    names.setdefault(e["name"], []).append(e)
for required in ("execute", "shard_search", "shard_merge", "traversal",
                 "leaf_verify", "pool_miss_pread"):
    assert required in names, f"missing span: {required} (have {sorted(names)})"
assert len(names["execute"]) == 4, names["execute"]
assert all(e["args"]["depth"] == 0 for e in names["execute"])
assert len(names["shard_search"]) == 12  # 4 queries x 3 shards
assert any(e["args"]["depth"] > 0 for e in names["leaf_verify"])
assert other["dropped_events"] == 0, other
assert other["command"] == "query" and other["method"] == "DSTree", other
assert "kernels" in other, other
print("trace OK:", len(events), "events,", len(names), "span names")
EOF

# Answers are invariant under tracing: the traced run above must print
# the same per-query lines as an untraced twin (modulo the shared-bound
# arrival ledger, which is timing-dependent under --query-threads).
"$HYDRA" query "$TMP/data.bin" DSTree 5 4 --shards 3 --threads 2 \
  --query-threads 2 --storage mmap --pool-mb 1 > "$TMP/untraced.txt"
answers() { grep '^query' | sed 's/ \[.*\]$//'; }
diff <(answers < "$TMP/query.txt") <(answers < "$TMP/untraced.txt") \
  || { echo "FAIL: tracing changed the answers"; exit 1; }
echo "OK traced query: valid JSON, full hierarchy, answers unchanged"

# Serve: trace the daemon itself, drive it with queryd (which stamps
# request ids), and read the flight recorder back through STATS.
"$HYDRA" serve "$TMP/data.bin" DSTree --port 0 --serve-threads 2 \
  --trace "$TMP/serve_trace.json" > "$TMP/serve.log" 2>&1 &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^hydra serve: .* on 127\.0\.0\.1:\([0-9]*\) .*/\1/p' \
    "$TMP/serve.log")"
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVE_PID" 2> /dev/null \
    || { echo "FAIL: daemon died at startup"; cat "$TMP/serve.log"; exit 1; }
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "FAIL: no port line"; cat "$TMP/serve.log"; exit 1; }

"$HYDRA" queryd "$TMP/data.bin" 5 4 --port "$PORT" > /dev/null \
  || { echo "FAIL: queryd failed"; exit 1; }

"$HYDRA" stats --port "$PORT" > "$TMP/stats.json"
python3 - "$TMP/stats.json" << 'EOF' || exit 1
import json, sys
doc = json.load(open(sys.argv[1]))
lat = doc["latency"]
assert lat["samples"] == 4, lat
assert 0 < lat["p50_ms"] <= lat["p95_ms"] <= lat["p99_ms"], lat
assert abs(lat["quantile_error_bound"] - 0.189207) < 1e-6, lat
assert len(lat["bucket_bounds_seconds"]) == len(lat["bucket_counts"]) > 0
assert sum(lat["bucket_counts"]) == 4, lat
slow = doc["slow_queries"]
assert 0 < len(slow) <= 8, slow
# queryd stamps ids 1..N; every record carries the five serve phases.
assert sorted(r["request_id"] for r in slow) == [1, 2, 3, 4], slow
for r in slow:
    assert set(r["phases"]) == {"decode", "queue_wait", "cache_lookup",
                                "execute", "encode_write"}, r
    assert r["total_ms"] > 0, r
metrics = doc["metrics"]
assert metrics["counters"]["serve.queries"] == 4, metrics
assert "serve.latency_seconds" in metrics["histograms"], metrics
assert "serve.cpu_seconds" in metrics["histograms"], metrics
print("stats OK: quantiles, buckets, flight records, registry")
EOF

# The plain-text registry dump over the wire.
"$HYDRA" stats --port "$PORT" --full > "$TMP/full.txt"
grep -q '^counter serve\.queries 4$' "$TMP/full.txt" \
  || { echo "FAIL: stats --full lacks serve.queries"; cat "$TMP/full.txt"; exit 1; }
grep -q '^histogram serve\.latency_seconds count=4 ' "$TMP/full.txt" \
  || { echo "FAIL: stats --full lacks the latency histogram"; exit 1; }

# SIGTERM drain writes the daemon's own trace with per-request spans.
kill -TERM "$SERVE_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVE_PID" 2> /dev/null || break
  sleep 0.1
done
wait "$SERVE_PID" || { echo "FAIL: daemon exited non-zero"; exit 1; }
SERVE_PID=""
python3 - "$TMP/serve_trace.json" << 'EOF' || exit 1
import json, sys
doc = json.load(open(sys.argv[1]))
reqs = [e for e in doc["traceEvents"] if e["name"] == "serve_request"]
assert len(reqs) == 4, [e["name"] for e in doc["traceEvents"]]
assert sorted(r["args"]["request_id"] for r in reqs) == [1, 2, 3, 4], reqs
print("serve trace OK:", len(doc["traceEvents"]), "events")
EOF
echo "OK serve: flight recorder, stats --full, traced drain"

# Flag validation: clean exit-1 refusals, never a crash.
if "$HYDRA" query "$TMP/data.bin" DSTree 2 2 \
    --trace "$TMP/no/such/dir/t.json" 2> "$TMP/err.txt"; then
  echo "FAIL: unwritable --trace should exit 1"; exit 1
fi
grep -q 'cannot open trace path' "$TMP/err.txt" \
  || { echo "FAIL: unwritable-trace error lacks a reason"; exit 1; }

if "$HYDRA" methods --trace "$TMP/t.json" 2> "$TMP/err.txt"; then
  echo "FAIL: --trace on a non-traced command should exit 1"; exit 1
fi
grep -q 'only supported by' "$TMP/err.txt" \
  || { echo "FAIL: wrong-command --trace refusal lacks a reason"; exit 1; }

if "$HYDRA" methods --full 2> "$TMP/err.txt"; then
  echo "FAIL: --full outside stats should exit 1"; exit 1
fi
grep -q -- "--full is only supported by 'stats'" "$TMP/err.txt" \
  || { echo "FAIL: --full refusal lacks a reason"; exit 1; }

echo "obs smoke OK"
