#!/usr/bin/env bash
# Shard smoke: for every shardable method, a sharded run must print exactly
# the same answers as the unsharded method — freshly built, and again after
# a save → open round-trip of the sharded container. Unshardable methods
# must refuse --shards with exit 1 and a reason. (Bit-identity assumes no
# exact ties at the k-th distance — measure-zero on this continuous
# generated data; see docs/ARCHITECTURE.md, "Exactness and the shared
# bound".)
set -euo pipefail
HYDRA="${1:?usage: shard_smoke.sh <path-to-hydra-binary>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$HYDRA" gen synth 2000 64 7 "$TMP/data.bin" > /dev/null

# Answer lines only: the trailing "[examined ..., seeks ...]" ledger is
# per-traversal work, which legitimately differs between an unsharded
# traversal and N per-shard ones — the *answers* must not.
answers() { grep '^query' | sed 's/ \[.*\]$//'; }

for m in "ADS+" "DSTree" "iSAX2+" "M-tree" "R*-tree" "SFA" "VA+file"; do
  # Unsharded reference answers (k-NN and range).
  "$HYDRA" query "$TMP/data.bin" "$m" 5 4 | answers > "$TMP/ref_knn.txt"
  "$HYDRA" range "$TMP/data.bin" "$m" 8 4 | answers > "$TMP/ref_range.txt"

  # Sharded, built fresh: 3 shards over 2 fan-out threads.
  "$HYDRA" query "$TMP/data.bin" "$m" 5 4 --shards 3 --threads 2 \
    | answers > "$TMP/sharded_knn.txt"
  diff "$TMP/ref_knn.txt" "$TMP/sharded_knn.txt" \
    || { echo "FAIL($m): sharded k-NN differs from unsharded"; exit 1; }
  "$HYDRA" range "$TMP/data.bin" "$m" 8 4 --shards 3 --threads 2 \
    | answers > "$TMP/sharded_range.txt"
  diff "$TMP/ref_range.txt" "$TMP/sharded_range.txt" \
    || { echo "FAIL($m): sharded range differs from unsharded"; exit 1; }

  # Sharded container lifecycle: build → save → open must also match, and
  # the opened run must report the build as skipped.
  "$HYDRA" build "$TMP/data.bin" "$m" "$TMP/idx" --shards 3 --threads 2 \
    > /dev/null
  "$HYDRA" query "$TMP/data.bin" "$m" 5 4 --shards 3 --index "$TMP/idx" \
    > "$TMP/opened.txt"
  grep -q "build skipped" "$TMP/opened.txt" \
    || { echo "FAIL($m): opened run did not skip the build"; exit 1; }
  grep -q "sharded over 3 shards" "$TMP/opened.txt" \
    || { echo "FAIL($m): opened run lost the shard layout"; exit 1; }
  answers < "$TMP/opened.txt" > "$TMP/opened_knn.txt"
  diff "$TMP/ref_knn.txt" "$TMP/opened_knn.txt" \
    || { echo "FAIL($m): opened sharded index answered differently"; exit 1; }
  echo "OK $m"
  rm -rf "$TMP/idx"
done

# The scans refuse --shards, with exit 1 and a reason — never a crash.
for m in "UCR-Suite" "MASS" "Stepwise"; do
  if "$HYDRA" query "$TMP/data.bin" "$m" 5 2 --shards 2 2> "$TMP/err.txt"
  then
    echo "FAIL($m): --shards on a scan should exit 1"; exit 1
  fi
  grep -q "does not support --shards" "$TMP/err.txt" \
    || { echo "FAIL($m): --shards refusal lacks a reason"; exit 1; }
done

# A sharded container opened without --shards fails with a clean error
# naming the container, not a crash.
"$HYDRA" build "$TMP/data.bin" DSTree "$TMP/idx" --shards 2 > /dev/null
if "$HYDRA" query "$TMP/data.bin" DSTree 5 2 --index "$TMP/idx" \
    2> "$TMP/err.txt"; then
  echo "FAIL: opening a sharded container unsharded should exit 1"; exit 1
fi
grep -q "Sharded\[DSTree\]" "$TMP/err.txt" \
  || { echo "FAIL: container mismatch error lacks the container name"; exit 1; }

echo "shard smoke OK"
