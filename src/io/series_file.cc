#include "io/series_file.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace hydra::io {
namespace {

constexpr uint64_t kMagic = 0x485944524153ULL;  // "HYDRAS"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

util::Status WriteSeriesFile(const std::string& path,
                             const core::Dataset& data) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return util::Status::Error("cannot open for write: " + path);
  const uint64_t header[3] = {kMagic, data.size(), data.length()};
  if (std::fwrite(header, sizeof(header), 1, f.get()) != 1) {
    return util::Status::Error("header write failed: " + path);
  }
  const auto values = data.values();
  if (!values.empty() &&
      std::fwrite(values.data(), sizeof(core::Value), values.size(),
                  f.get()) != values.size()) {
    return util::Status::Error("value write failed: " + path);
  }
  return util::Status::Ok();
}

util::Result<core::Dataset> ReadSeriesFile(const std::string& path,
                                           const std::string& name) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return util::Status::Error("cannot open for read: " + path);
  uint64_t header[3] = {0, 0, 0};
  if (std::fread(header, sizeof(header), 1, f.get()) != 1) {
    return util::Status::Error("header read failed: " + path);
  }
  if (header[0] != kMagic) {
    return util::Status::Error("bad magic (not a Hydra series file): " + path);
  }
  const size_t count = header[1];
  const size_t length = header[2];
  if (length == 0) return util::Status::Error("zero series length: " + path);
  // Overflow-safe in two steps: dividing the cap first means no
  // intermediate product can wrap (a count near 2^62 would make
  // `count * sizeof(Value)` itself wrap — to exactly 0 for a SIGFPE).
  if (count != 0 &&
      length >
          std::numeric_limits<uint64_t>::max() / sizeof(core::Value) /
              count) {
    return util::Status::Error("series file header overflows: " + path);
  }
  // The file size must be exactly header + count * length values: a
  // truncated file (partial final series) or trailing garbage would
  // otherwise be accepted silently and queried as if it were real data.
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return util::Status::Error("cannot seek series file: " + path);
  }
  const long file_size = std::ftell(f.get());
  if (file_size < 0) {
    return util::Status::Error("cannot stat series file: " + path);
  }
  const uint64_t expected =
      sizeof(header) + count * length * sizeof(core::Value);
  if (static_cast<uint64_t>(file_size) != expected) {
    return util::Status::Error(
        "series file size mismatch (truncated or trailing bytes): header "
        "promises " +
        std::to_string(count) + " x " + std::to_string(length) +
        " series = " + std::to_string(expected) + " bytes, file has " +
        std::to_string(file_size) + ": " + path);
  }
  if (std::fseek(f.get(), sizeof(header), SEEK_SET) != 0) {
    return util::Status::Error("cannot seek series file: " + path);
  }
  core::Dataset data(name, length);
  data.Reserve(count);
  std::vector<core::Value> row(length);
  for (size_t i = 0; i < count; ++i) {
    if (std::fread(row.data(), sizeof(core::Value), length, f.get()) !=
        length) {
      return util::Status::Error("truncated series file: " + path);
    }
    data.Append(row);
  }
  return data;
}

}  // namespace hydra::io
