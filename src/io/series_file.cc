#include "io/series_file.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace hydra::io {
namespace {

constexpr uint64_t kMagic = 0x485944524153ULL;  // "HYDRAS"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

util::Status WriteSeriesFile(const std::string& path,
                             const core::Dataset& data) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return util::Status::Error("cannot open for write: " + path);
  const uint64_t header[3] = {kMagic, data.size(), data.length()};
  if (std::fwrite(header, sizeof(header), 1, f.get()) != 1) {
    return util::Status::Error("header write failed: " + path);
  }
  const auto values = data.values();
  if (!values.empty() &&
      std::fwrite(values.data(), sizeof(core::Value), values.size(),
                  f.get()) != values.size()) {
    return util::Status::Error("value write failed: " + path);
  }
  return util::Status::Ok();
}

util::Result<core::Dataset> ReadSeriesFile(const std::string& path,
                                           const std::string& name) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return util::Status::Error("cannot open for read: " + path);
  uint64_t header[3] = {0, 0, 0};
  if (std::fread(header, sizeof(header), 1, f.get()) != 1) {
    return util::Status::Error("header read failed: " + path);
  }
  if (header[0] != kMagic) {
    return util::Status::Error("bad magic (not a Hydra series file): " + path);
  }
  const size_t count = header[1];
  const size_t length = header[2];
  if (length == 0) return util::Status::Error("zero series length: " + path);
  core::Dataset data(name, length);
  data.Reserve(count);
  std::vector<core::Value> row(length);
  for (size_t i = 0; i < count; ++i) {
    if (std::fread(row.data(), sizeof(core::Value), length, f.get()) !=
        length) {
      return util::Status::Error("truncated series file: " + path);
    }
    data.Append(row);
  }
  return data;
}

}  // namespace hydra::io
