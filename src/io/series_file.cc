#include "io/series_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

namespace hydra::io {
namespace {

constexpr uint64_t kMagic = 0x485944524153ULL;  // "HYDRAS"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Shared header validation of the bulk loader and SeriesFile::Open:
/// magic, positive length, and an overflow-safe volume bound. Fills
/// *count/*length; returns an error Status naming `path` otherwise.
util::Status ValidateHeader(const uint64_t header[3], const std::string& path,
                            size_t* count, size_t* length) {
  if (header[0] != kMagic) {
    return util::Status::Error("bad magic (not a Hydra series file): " + path);
  }
  *count = header[1];
  *length = header[2];
  if (*length == 0) return util::Status::Error("zero series length: " + path);
  // Overflow-safe in two steps: dividing the cap first means no
  // intermediate product can wrap (a count near 2^62 would make
  // `count * sizeof(Value)` itself wrap — to exactly 0 for a SIGFPE).
  if (*count != 0 &&
      *length >
          std::numeric_limits<uint64_t>::max() / sizeof(core::Value) /
              *count) {
    return util::Status::Error("series file header overflows: " + path);
  }
  return util::Status::Ok();
}

util::Status SizeMismatch(const std::string& path, size_t count,
                          size_t length, uint64_t expected,
                          uint64_t actual) {
  return util::Status::Error(
      "series file size mismatch (truncated or trailing bytes): header "
      "promises " +
      std::to_string(count) + " x " + std::to_string(length) + " series = " +
      std::to_string(expected) + " bytes, file has " +
      std::to_string(actual) + ": " + path);
}

}  // namespace

util::Status WriteSeriesFile(const std::string& path,
                             const core::Dataset& data) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return util::Status::Error("cannot open for write: " + path);
  const uint64_t header[3] = {kMagic, data.size(), data.length()};
  if (std::fwrite(header, sizeof(header), 1, f.get()) != 1) {
    return util::Status::Error("header write failed: " + path);
  }
  const auto values = data.values();
  if (!values.empty() &&
      std::fwrite(values.data(), sizeof(core::Value), values.size(),
                  f.get()) != values.size()) {
    return util::Status::Error("value write failed: " + path);
  }
  return util::Status::Ok();
}

util::Result<core::Dataset> ReadSeriesFile(const std::string& path,
                                           const std::string& name) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return util::Status::Error("cannot open for read: " + path);
  uint64_t header[3] = {0, 0, 0};
  if (std::fread(header, sizeof(header), 1, f.get()) != 1) {
    return util::Status::Error("header read failed: " + path);
  }
  size_t count = 0;
  size_t length = 0;
  const util::Status header_ok = ValidateHeader(header, path, &count, &length);
  if (!header_ok.ok()) return header_ok;
  // The file size must be exactly header + count * length values: a
  // truncated file (partial final series) or trailing garbage would
  // otherwise be accepted silently and queried as if it were real data.
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return util::Status::Error("cannot seek series file: " + path);
  }
  const long file_size = std::ftell(f.get());
  if (file_size < 0) {
    return util::Status::Error("cannot stat series file: " + path);
  }
  const uint64_t expected =
      sizeof(header) + count * length * sizeof(core::Value);
  if (static_cast<uint64_t>(file_size) != expected) {
    return SizeMismatch(path, count, length, expected,
                        static_cast<uint64_t>(file_size));
  }
  if (std::fseek(f.get(), sizeof(header), SEEK_SET) != 0) {
    return util::Status::Error("cannot seek series file: " + path);
  }
  core::Dataset data(name, length);
  data.Reserve(count);
  std::vector<core::Value> row(length);
  for (size_t i = 0; i < count; ++i) {
    if (std::fread(row.data(), sizeof(core::Value), length, f.get()) !=
        length) {
      return util::Status::Error("truncated series file: " + path);
    }
    data.Append(row);
  }
  return data;
}

SeriesFile::~SeriesFile() {
  if (fd_ >= 0) ::close(fd_);
}

SeriesFile::SeriesFile(SeriesFile&& other) noexcept
    : fd_(other.fd_),
      count_(other.count_),
      length_(other.length_),
      path_(std::move(other.path_)) {
  other.fd_ = -1;
}

SeriesFile& SeriesFile::operator=(SeriesFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    count_ = other.count_;
    length_ = other.length_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

util::Result<SeriesFile> SeriesFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::Status::Error("cannot open for read: " + path + " (" +
                               std::strerror(errno) + ")");
  }
  SeriesFile file;
  file.fd_ = fd;
  file.path_ = path;
  uint64_t header[3] = {0, 0, 0};
  const ssize_t got = ::pread(fd, header, sizeof(header), 0);
  if (got != static_cast<ssize_t>(sizeof(header))) {
    return util::Status::Error("header read failed: " + path);
  }
  const util::Status header_ok =
      ValidateHeader(header, path, &file.count_, &file.length_);
  if (!header_ok.ok()) return header_ok;
  // Exact-size validation, same strictness as the bulk loader: the handle
  // refuses a file that is already truncated or padded at Open time, so
  // every later short pread means the file changed *underneath* us.
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    return util::Status::Error("cannot stat series file: " + path);
  }
  const uint64_t expected =
      kHeaderBytes + static_cast<uint64_t>(file.count_) * file.length_ *
                         sizeof(core::Value);
  if (static_cast<uint64_t>(st.st_size) != expected) {
    return SizeMismatch(path, file.count_, file.length_, expected,
                        static_cast<uint64_t>(st.st_size));
  }
  return file;
}

util::Status SeriesFile::ReadSeries(size_t first, size_t n,
                                    core::Value* out) const {
  HYDRA_CHECK_MSG(fd_ >= 0, "ReadSeries on a closed SeriesFile");
  HYDRA_CHECK_MSG(first <= count_ && n <= count_ - first,
                  "ReadSeries range exceeds the series file");
  size_t bytes = n * series_bytes();
  uint64_t offset = kHeaderBytes + static_cast<uint64_t>(first) *
                                       series_bytes();
  char* dst = reinterpret_cast<char*>(out);
  // pread may legitimately return short inside a huge range; only a short
  // read at a position the validated size promised to hold is an error.
  while (bytes > 0) {
    const ssize_t got =
        ::pread(fd_, dst, bytes, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return util::Status::Error("pread failed on " + path_ + " (" +
                                 std::strerror(errno) + ")");
    }
    if (got == 0) {
      return util::Status::Error(
          "series file truncated after open (pread hit EOF at byte " +
          std::to_string(offset) + " of a file that held " +
          std::to_string(count_) + " series): " + path_);
    }
    dst += got;
    bytes -= static_cast<size_t>(got);
    offset += static_cast<uint64_t>(got);
  }
  return util::Status::Ok();
}

util::Status SeriesFile::ReadAt(size_t i, core::Value* out) const {
  return ReadSeries(i, 1, out);
}

SeriesFileWriter::~SeriesFileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

SeriesFileWriter::SeriesFileWriter(SeriesFileWriter&& other) noexcept
    : file_(other.file_),
      count_(other.count_),
      length_(other.length_),
      path_(std::move(other.path_)),
      finished_(other.finished_) {
  other.file_ = nullptr;
}

SeriesFileWriter& SeriesFileWriter::operator=(
    SeriesFileWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    count_ = other.count_;
    length_ = other.length_;
    path_ = std::move(other.path_);
    finished_ = other.finished_;
    other.file_ = nullptr;
  }
  return *this;
}

util::Result<SeriesFileWriter> SeriesFileWriter::Create(
    const std::string& path, size_t length) {
  HYDRA_CHECK_MSG(length > 0, "SeriesFileWriter needs a positive length");
  SeriesFileWriter writer;
  writer.file_ = std::fopen(path.c_str(), "wb");
  if (writer.file_ == nullptr) {
    return util::Status::Error("cannot open for write: " + path + " (" +
                               std::strerror(errno) + ")");
  }
  writer.length_ = length;
  writer.path_ = path;
  // Provisional count 0: until Finish patches it, the file's size exceeds
  // what the header promises, so the strict readers reject it — an
  // interrupted generation can never masquerade as a complete dataset.
  const uint64_t header[3] = {kMagic, 0, length};
  if (std::fwrite(header, sizeof(header), 1, writer.file_) != 1) {
    return util::Status::Error("header write failed: " + path);
  }
  return writer;
}

util::Status SeriesFileWriter::Append(core::SeriesView series) {
  HYDRA_CHECK_MSG(series.size() == length_,
                  "SeriesFileWriter::Append length mismatch");
  return AppendBlock(series.data(), 1);
}

util::Status SeriesFileWriter::AppendBlock(const core::Value* values,
                                           size_t series_count) {
  HYDRA_CHECK_MSG(file_ != nullptr && !finished_,
                  "AppendBlock on a finished or closed SeriesFileWriter");
  const size_t n = series_count * length_;
  if (n != 0 &&
      std::fwrite(values, sizeof(core::Value), n, file_) != n) {
    return util::Status::Error("short write (disk full?) after " +
                               std::to_string(count_) + " series: " + path_);
  }
  count_ += series_count;
  return util::Status::Ok();
}

util::Status SeriesFileWriter::Finish() {
  HYDRA_CHECK_MSG(file_ != nullptr && !finished_,
                  "Finish on a finished or closed SeriesFileWriter");
  finished_ = true;
  const uint64_t header[3] = {kMagic, count_, length_};
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(header, sizeof(header), 1, file_) != 1 ||
      std::fflush(file_) != 0) {
    return util::Status::Error("header patch failed: " + path_);
  }
  std::FILE* file = file_;
  file_ = nullptr;
  if (std::fclose(file) != 0) {
    return util::Status::Error("close failed (short write?): " + path_);
  }
  return util::Status::Ok();
}

}  // namespace hydra::io
