// Binary persistence for datasets (the raw data files of the framework):
// a 24-byte header (magic, series count, series length) followed by
// series-major float32 values. Three access styles share the format and
// its validation:
//   - WriteSeriesFile / ReadSeriesFile: whole-dataset, fully in RAM.
//   - SeriesFileWriter: streaming writes for corpora larger than memory
//     (`hydra gen` emits chunks through it; the header's count is patched
//     on Finish, so an interrupted write is rejected by every reader).
//   - SeriesFile: an open, validated handle that reads *nothing* up front
//     — the out-of-core backend mmaps through it and preads pages on
//     demand (storage::BufferPool).
#ifndef HYDRA_IO_SERIES_FILE_H_
#define HYDRA_IO_SERIES_FILE_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "core/dataset.h"
#include "util/status.h"

namespace hydra::io {

/// Writes `data` as a binary series file: a 24-byte header (magic, series
/// count, series length) followed by series-major float32 values.
util::Status WriteSeriesFile(const std::string& path,
                             const core::Dataset& data);

/// Reads a binary series file written by WriteSeriesFile. Strict about
/// size: the file must hold exactly the header plus count * length
/// values — a truncated file (partial final series) or trailing garbage
/// is rejected with an error, never silently accepted.
util::Result<core::Dataset> ReadSeriesFile(const std::string& path,
                                           const std::string& name = "file");

/// An open read-only handle on a series file: Open validates the header
/// with exactly the bulk loader's rigor (magic, overflow-safe volume,
/// exact file size) but loads no values; ReadSeries/ReadAt pread them
/// positionally on demand. A file truncated *after* Open — the SIGBUS
/// trap of a bare mmap — surfaces as a typed error Status from the pread
/// path, never a signal. Movable, not copyable; the destructor closes
/// the descriptor.
class SeriesFile {
 public:
  /// Bytes before the first value: 3 x uint64 (magic, count, length).
  /// 24 = 6 x sizeof(float), so mapped values stay 4-byte aligned.
  static constexpr size_t kHeaderBytes = 3 * sizeof(uint64_t);

  SeriesFile() = default;
  ~SeriesFile();
  SeriesFile(SeriesFile&& other) noexcept;
  SeriesFile& operator=(SeriesFile&& other) noexcept;
  SeriesFile(const SeriesFile&) = delete;
  SeriesFile& operator=(const SeriesFile&) = delete;

  static util::Result<SeriesFile> Open(const std::string& path);

  /// Header metadata (validated at Open).
  size_t count() const { return count_; }
  size_t length() const { return length_; }
  size_t series_bytes() const { return length_ * sizeof(core::Value); }
  const std::string& path() const { return path_; }
  /// The open descriptor (the storage layer mmaps through it); -1 on a
  /// default-constructed handle.
  int fd() const { return fd_; }

  /// preads series [first, first + n) into `out` (n * length() values).
  /// The range must lie inside the header's count (CHECK-aborts otherwise
  /// — callers index within the validated metadata); a short or failed
  /// pread (file truncated or replaced after Open) returns a typed error.
  util::Status ReadSeries(size_t first, size_t n, core::Value* out) const;

  /// preads the single series `i` into `out` (length() values).
  util::Status ReadAt(size_t i, core::Value* out) const;

 private:
  int fd_ = -1;
  size_t count_ = 0;
  size_t length_ = 0;
  std::string path_;
};

/// Streams a series file to disk without materializing the dataset:
/// Create writes a provisional header (count 0), Append adds series,
/// Finish patches the true count in place and flushes. Every write error
/// — including a short write on a full disk — is a typed error Status.
/// A writer destroyed without a successful Finish leaves a file that
/// every reader rejects (its header promises 0 series against a larger
/// file). Movable, not copyable.
class SeriesFileWriter {
 public:
  SeriesFileWriter() = default;
  ~SeriesFileWriter();
  SeriesFileWriter(SeriesFileWriter&& other) noexcept;
  SeriesFileWriter& operator=(SeriesFileWriter&& other) noexcept;
  SeriesFileWriter(const SeriesFileWriter&) = delete;
  SeriesFileWriter& operator=(const SeriesFileWriter&) = delete;

  static util::Result<SeriesFileWriter> Create(const std::string& path,
                                               size_t length);

  /// Appends one `length`-point series (size CHECK-checked).
  util::Status Append(core::SeriesView series);
  /// Appends `series_count` contiguous series from `values`.
  util::Status AppendBlock(const core::Value* values, size_t series_count);
  /// Patches the header with the final count, flushes, and closes.
  /// Required for the file to be readable; further Appends CHECK-abort.
  util::Status Finish();

  size_t count() const { return count_; }
  size_t length() const { return length_; }

 private:
  std::FILE* file_ = nullptr;
  size_t count_ = 0;
  size_t length_ = 0;
  std::string path_;
  bool finished_ = false;
};

}  // namespace hydra::io

#endif  // HYDRA_IO_SERIES_FILE_H_
