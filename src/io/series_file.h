// Binary persistence for datasets (the raw data files of the framework).
#ifndef HYDRA_IO_SERIES_FILE_H_
#define HYDRA_IO_SERIES_FILE_H_

#include <string>

#include "core/dataset.h"
#include "util/status.h"

namespace hydra::io {

/// Writes `data` as a binary series file: a 24-byte header (magic, series
/// count, series length) followed by series-major float32 values.
util::Status WriteSeriesFile(const std::string& path,
                             const core::Dataset& data);

/// Reads a binary series file written by WriteSeriesFile. Strict about
/// size: the file must hold exactly the header plus count * length
/// values — a truncated file (partial final series) or trailing garbage
/// is rejected with an error, never silently accepted.
util::Result<core::Dataset> ReadSeriesFile(const std::string& path,
                                           const std::string& name = "file");

}  // namespace hydra::io

#endif  // HYDRA_IO_SERIES_FILE_H_
