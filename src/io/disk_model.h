// Storage cost models: convert the I/O ledger into estimated input/output
// seconds for the paper's two platforms (HDD and SSD servers).
#ifndef HYDRA_IO_DISK_MODEL_H_
#define HYDRA_IO_DISK_MODEL_H_

#include <string>

#include "core/search_stats.h"

namespace hydra::io {

/// Throughput + seek-latency disk model.
///
/// The paper's HDD server has a 6-disk RAID0 with 1290 MB/s sequential
/// throughput but 10K-RPM seek latency; its SSD server has only 330 MB/s
/// throughput but near-free random access. These two regimes invert the
/// ranking of skip-sequential methods (ADS+, VA+file) versus
/// cluster-then-scan methods (DSTree) and plain scans (UCR Suite),
/// which is the central hardware finding of the paper.
struct DiskModel {
  std::string name;
  double seq_mb_per_s = 0.0;
  double seek_seconds = 0.0;

  /// The paper's HDD platform (Section 4.1).
  static DiskModel Hdd() { return {"HDD", 1290.0, 7.5e-3}; }
  /// The paper's SSD platform.
  static DiskModel Ssd() { return {"SSD", 330.0, 6.0e-5}; }
  /// An in-memory "device" (I/O is free); useful for ablations.
  static DiskModel Memory() { return {"MEM", 1e9, 0.0}; }

  /// The HDD platform with the seek latency rescaled for laptop-scale
  /// collections. On the paper's 100GB-1TB datasets a full scan costs
  /// minutes, the same order as the 10^3-10^5 seeks the skip-sequential
  /// methods issue; on our MB-scale collections the scan becomes nearly
  /// free while seeks keep their full price, which would make the
  /// sequential scan win everything. Scaling the seek keeps the paper's
  /// seek-vs-scan balance, so crossovers land where the paper's do.
  /// The bench binaries use this model and say so in their output.
  static DiskModel ScaledHdd() { return {"HDD(scaled)", 1290.0, 3.0e-4}; }

  /// Estimated seconds to transfer `bytes` with `seeks` random accesses.
  double IoSeconds(int64_t bytes, int64_t seeks) const;

  /// Estimated input time of a query.
  double QueryIoSeconds(const core::SearchStats& stats) const;

  /// Estimated output(+input) time of index construction.
  double BuildIoSeconds(const core::BuildStats& stats) const;

  /// Total estimated time (CPU + modeled I/O) of a query.
  double QueryTotalSeconds(const core::SearchStats& stats) const {
    return stats.cpu_seconds + QueryIoSeconds(stats);
  }

  /// Total estimated time (CPU + modeled I/O) of index construction.
  double BuildTotalSeconds(const core::BuildStats& stats) const {
    return stats.cpu_seconds + BuildIoSeconds(stats);
  }
};

}  // namespace hydra::io

#endif  // HYDRA_IO_DISK_MODEL_H_
