// Instrumented access to the simulated raw data file. The paper's datasets
// live on disk; ours live in memory but every access is charged to the
// SearchStats ledger with the paper's sequential/random semantics, so access
// patterns (and hence modeled I/O times) are faithful.
#ifndef HYDRA_IO_COUNTED_STORAGE_H_
#define HYDRA_IO_COUNTED_STORAGE_H_

#include <cstdint>

#include "core/dataset.h"
#include "core/search_stats.h"
#include "core/types.h"

namespace hydra::io {

/// Cursor-tracking reader over the raw data file (the Dataset).
///
/// A read of series i is sequential when it directly follows a read of
/// series i-1; otherwise it costs one random seek plus the read itself.
/// This reproduces the paper's skip-sequential accounting for ADS+ and
/// VA+file: every skip is one random access.
class CountedStorage {
 public:
  explicit CountedStorage(const core::Dataset* data);

  /// Reads series `i`, charging the access to `stats`.
  core::SeriesView Read(core::SeriesId i, core::SearchStats* stats);

  /// Forgets the cursor position (e.g., between build and query phases).
  void ResetCursor() { cursor_ = kNoCursor; }

  const core::Dataset& data() const { return *data_; }
  size_t series_bytes() const { return data_->length() * sizeof(core::Value); }

 private:
  static constexpr int64_t kNoCursor = -2;

  const core::Dataset* data_;
  int64_t cursor_ = kNoCursor;
};

/// Charges the read of one index leaf holding `series_count` series of
/// `series_bytes` bytes each: one random access (the paper's definition of
/// a random disk access for tree indexes) plus contiguous reads.
void ChargeLeafRead(size_t series_count, size_t series_bytes,
                    core::SearchStats* stats);

/// Charges a purely sequential scan segment of `series_count` series (no
/// initial seek; use ChargeScanStart for the first access of a pass).
void ChargeSequentialRead(size_t series_count, size_t series_bytes,
                          core::SearchStats* stats);

/// Charges the initial seek of a sequential pass over a file.
void ChargeScanStart(core::SearchStats* stats);

}  // namespace hydra::io

#endif  // HYDRA_IO_COUNTED_STORAGE_H_
