// Instrumented access to the raw data file. Two ledgers meet here:
//   - *modeled* counters (sequential_reads / random_seeks / bytes_read),
//     charged with the paper's sequential/random semantics and converted
//     to seconds by io::DiskModel — these exist for every backend;
//   - *measured* counters (pool_hits / pool_misses / ...), recorded only
//     when the dataset is file-backed (Dataset::raw_source() non-null):
//     the read is then served by the storage layer's buffer pool as a
//     real pread instead of a pointer dereference.
// The two never mix: routing a read through the pool does not change what
// is charged to the model, and the pool's counters are never fed to the
// DiskModel. Answers are bit-identical either way — the backend changes
// where the bytes live, never which bytes are compared.
#ifndef HYDRA_IO_COUNTED_STORAGE_H_
#define HYDRA_IO_COUNTED_STORAGE_H_

#include <cstdint>

#include "core/dataset.h"
#include "core/raw_source.h"
#include "core/search_stats.h"
#include "core/types.h"

namespace hydra::io {

/// Cursor-tracking reader over the raw data file (the Dataset).
///
/// A read of series i is sequential when it directly follows a read of
/// series i-1; otherwise it costs one random seek plus the read itself.
/// This reproduces the paper's skip-sequential accounting for ADS+ and
/// VA+file: every skip is one random access.
///
/// The returned view stays valid until this reader's next Read /
/// ReadPrecharged (on a pooled dataset the view points into a buffer-pool
/// frame that the reader keeps pinned only until its next fetch); callers
/// consume the series — compute its distance — before reading the next.
/// One CountedStorage serves one thread; concurrent readers each get
/// their own (they share the pool underneath).
class CountedStorage {
 public:
  explicit CountedStorage(const core::Dataset* data);

  /// Reads series `i`, charging the access to `stats` with the
  /// skip-sequential model (and recording measured pool counters when the
  /// dataset is file-backed).
  core::SeriesView Read(core::SeriesId i, core::SearchStats* stats);

  /// Reads series `i` *without* touching the modeled ledger or the
  /// cursor: for tree-method leaf loops whose modeled cost was already
  /// charged in bulk by ChargeLeafRead. Measured pool counters are still
  /// recorded — they track what the storage layer actually did.
  core::SeriesView ReadPrecharged(core::SeriesId i, core::SearchStats* stats);

  /// Forgets the cursor position (e.g., between build and query phases).
  void ResetCursor() { cursor_ = kNoCursor; }

  /// Drops the buffer-pool frame held since the last read (no-op for RAM
  /// datasets or when nothing is pinned). Long-lived readers call this at
  /// the end of each query: an idle reader must never sit on a frame —
  /// that is what makes the pool's blocking wait deadlock-free.
  void ReleasePin() { pin_.Release(); }

  const core::Dataset& data() const { return *data_; }
  size_t series_bytes() const { return data_->length() * sizeof(core::Value); }

 private:
  static constexpr int64_t kNoCursor = -2;

  /// The one place bytes are fetched: through the pool when the dataset
  /// is file-backed, by dereference otherwise.
  core::SeriesView Fetch(core::SeriesId i, core::SearchStats* stats) {
    if (source_ != nullptr) {
      return source_->ReadPinned(base_ + i, &pin_, stats);
    }
    return (*data_)[i];
  }

  const core::Dataset* data_;
  core::RawSeriesSource* source_;  // from data->raw_source(); may be null
  size_t base_;                    // data's offset within the source
  core::RawSeriesSource::Pin pin_;
  int64_t cursor_ = kNoCursor;
};

/// Charges the read of one index leaf holding `series_count` series of
/// `series_bytes` bytes each: one random access (the paper's definition of
/// a random disk access for tree indexes) plus contiguous reads.
void ChargeLeafRead(size_t series_count, size_t series_bytes,
                    core::SearchStats* stats);

/// Charges a purely sequential scan segment of `series_count` series (no
/// initial seek; use ChargeScanStart for the first access of a pass).
void ChargeSequentialRead(size_t series_count, size_t series_bytes,
                          core::SearchStats* stats);

/// Charges the initial seek of a sequential pass over a file.
void ChargeScanStart(core::SearchStats* stats);

}  // namespace hydra::io

#endif  // HYDRA_IO_COUNTED_STORAGE_H_
