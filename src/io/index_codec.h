// Versioned, checksummed binary container for persisted indexes: the
// on-disk format behind SearchMethod::Save / Open. One file per index
// (`<dir>/index.hydra`): a header (magic, format version, method name,
// dataset fingerprint) followed by named sections, each with its own
// CRC32, so a method serializes only its own structure through typed
// read/write helpers and any corruption is caught section by section.
#ifndef HYDRA_IO_INDEX_CODEC_H_
#define HYDRA_IO_INDEX_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "core/dataset.h"
#include "util/status.h"

namespace hydra::io {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `size` bytes.
uint32_t Crc32(const void* data, size_t size);

/// Version of the container format. Bumped on any incompatible layout
/// change; readers refuse other versions with a clean error.
inline constexpr uint32_t kIndexFormatVersion = 1;

/// Identity of the dataset an index was built over. Open refuses an index
/// whose fingerprint does not match the dataset it is given: a persisted
/// index stores series ids, not series, so it is only valid against the
/// exact collection it was built from.
struct DatasetFingerprint {
  uint64_t count = 0;   ///< Number of series.
  uint64_t length = 0;  ///< Points per series.
  uint64_t bytes = 0;   ///< Raw value bytes (count * length * sizeof(Value)).

  static DatasetFingerprint Of(const core::Dataset& data);
  std::string ToString() const;

  friend bool operator==(const DatasetFingerprint& a,
                         const DatasetFingerprint& b) = default;
};

/// The index file inside an index directory.
std::string IndexFilePath(const std::string& dir);

/// Serializer for one index file. A method's DoSave groups its state into
/// named sections (BeginSection/EndSection) and writes typed values;
/// everything is buffered in memory and written atomically by Commit.
/// Misuse (writes outside a section, unbalanced Begin/End) CHECK-aborts —
/// serialization bugs are programmer errors, not runtime conditions.
class IndexWriter {
 public:
  IndexWriter(std::string method_name, DatasetFingerprint fingerprint);

  void BeginSection(std::string_view name);
  void EndSection();

  void WriteBool(bool v);
  void WriteU8(uint8_t v);
  void WriteI32(int32_t v);
  void WriteU32(uint32_t v);
  void WriteI64(int64_t v);
  void WriteU64(uint64_t v);
  void WriteDouble(double v);
  void WriteString(std::string_view s);

  /// Length-prefixed vector of trivially copyable elements.
  template <typename T>
  void WritePodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    AppendPayload(v.data(), v.size() * sizeof(T));
  }

  /// Writes the whole container to `path`. Returns the file size in bytes.
  util::Result<int64_t> Commit(const std::string& path);

 private:
  void AppendPayload(const void* p, size_t n);

  std::string method_name_;
  DatasetFingerprint fingerprint_;
  struct Section {
    std::string name;
    std::string payload;
  };
  std::vector<Section> sections_;
  bool in_section_ = false;
};

/// Deserializer for one index file. Load validates the container level
/// (magic, format version, header checksum); EnterSection validates the
/// next section's name and CRC. Typed reads never abort on file content:
/// the first malformed read latches a sticky error status (subsequent
/// reads return zero values) that DoOpen propagates, so a truncated or
/// garbled index file always surfaces as a clean util::Status.
class IndexReader {
 public:
  IndexReader() = default;

  /// Reads and validates the container at `path`.
  util::Status Load(const std::string& path);

  const std::string& method_name() const { return method_name_; }
  const DatasetFingerprint& fingerprint() const { return fingerprint_; }
  int64_t file_bytes() const { return file_bytes_; }

  /// Positions the reader at the start of the next section, which must be
  /// named `name` (sections are read in the order they were written) and
  /// must pass its CRC check.
  util::Status EnterSection(std::string_view name);

  bool ok() const { return status_.ok(); }
  const util::Status& status() const { return status_; }
  /// Latches a semantic-validation failure (e.g. an id out of range) so it
  /// propagates like a structural one. The first failure wins.
  void Fail(const std::string& message);

  bool ReadBool();
  uint8_t ReadU8();
  int32_t ReadI32();
  uint32_t ReadU32();
  int64_t ReadI64();
  uint64_t ReadU64();
  double ReadDouble();
  std::string ReadString();

  /// RAII recursion guard for deserializing recursive structures (tree
  /// nodes). A checksum only proves the bytes match themselves, so a
  /// crafted file could encode a node chain deep enough to overflow the
  /// stack; construct one guard per recursive load call and bail out on
  /// the reader's sticky status as usual — past the depth cap the guard
  /// latches an error, which stops the recursion at the next ok() check.
  /// The cap is far above any legitimately built tree's depth.
  class NodeGuard {
   public:
    explicit NodeGuard(IndexReader* reader) : reader_(reader) {
      if (++reader_->node_depth_ > kMaxNodeDepth) {
        reader_->Fail("index structure nests too deeply");
      }
    }
    ~NodeGuard() { --reader_->node_depth_; }
    NodeGuard(const NodeGuard&) = delete;
    NodeGuard& operator=(const NodeGuard&) = delete;

   private:
    IndexReader* reader_;
  };

  /// Length-prefixed vector of trivially copyable elements. The element
  /// count is bounds-checked against the bytes left in the section before
  /// any allocation, so a corrupt length cannot trigger an OOM.
  template <typename T>
  std::vector<T> ReadPodVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t count = ReadU64();
    std::vector<T> v;
    if (!ok()) return v;
    if (count > RemainingInSection() / sizeof(T)) {
      Fail("vector length exceeds section payload");
      return v;
    }
    v.resize(count);
    ReadPayload(v.data(), count * sizeof(T));
    return v;
  }

 private:
  static constexpr int kMaxNodeDepth = 10000;

  size_t RemainingInSection() const { return section_end_ - cursor_; }
  /// Copies `n` payload bytes to `out`; latches an error on truncation.
  void ReadPayload(void* out, size_t n);

  std::string bytes_;            // the whole file
  std::string path_;             // for error messages
  std::string method_name_;
  DatasetFingerprint fingerprint_;
  int64_t file_bytes_ = 0;
  size_t cursor_ = 0;        // next unread byte (within the current section)
  size_t section_end_ = 0;   // one past the current section's payload
  size_t next_section_ = 0;  // offset of the next section header
  int node_depth_ = 0;       // live NodeGuard count
  util::Status status_ = util::Status::Error("no index file loaded");
};

}  // namespace hydra::io

#endif  // HYDRA_IO_INDEX_CODEC_H_
