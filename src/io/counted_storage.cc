#include "io/counted_storage.h"

#include "util/check.h"

namespace hydra::io {

CountedStorage::CountedStorage(const core::Dataset* data)
    : data_(data),
      source_(data != nullptr ? data->raw_source() : nullptr),
      base_(data != nullptr ? data->raw_base() : 0) {
  HYDRA_CHECK(data != nullptr);
}

core::SeriesView CountedStorage::Read(core::SeriesId i,
                                      core::SearchStats* stats) {
  HYDRA_DCHECK(i < data_->size());
  if (stats != nullptr) {
    if (static_cast<int64_t>(i) != cursor_ + 1) {
      ++stats->random_seeks;
    }
    ++stats->sequential_reads;
    stats->bytes_read += static_cast<int64_t>(series_bytes());
  }
  cursor_ = static_cast<int64_t>(i);
  return Fetch(i, stats);
}

core::SeriesView CountedStorage::ReadPrecharged(core::SeriesId i,
                                                core::SearchStats* stats) {
  HYDRA_DCHECK(i < data_->size());
  return Fetch(i, stats);
}

void ChargeLeafRead(size_t series_count, size_t series_bytes,
                    core::SearchStats* stats) {
  if (stats == nullptr) return;
  ++stats->random_seeks;
  stats->sequential_reads += static_cast<int64_t>(series_count);
  stats->bytes_read += static_cast<int64_t>(series_count * series_bytes);
}

void ChargeSequentialRead(size_t series_count, size_t series_bytes,
                          core::SearchStats* stats) {
  if (stats == nullptr) return;
  stats->sequential_reads += static_cast<int64_t>(series_count);
  stats->bytes_read += static_cast<int64_t>(series_count * series_bytes);
}

void ChargeScanStart(core::SearchStats* stats) {
  if (stats == nullptr) return;
  ++stats->random_seeks;
}

}  // namespace hydra::io
