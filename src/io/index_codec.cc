#include "io/index_codec.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <memory>

#include "util/check.h"

namespace hydra::io {
namespace {

// "HYDRIDX1" as a little-endian u64.
constexpr uint64_t kIndexMagic = 0x3158444952445948ULL;

constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = MakeCrcTable();

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void AppendRaw(std::string* out, const void* p, size_t n) {
  out->append(static_cast<const char*>(p), n);
}

template <typename T>
void AppendPod(std::string* out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  AppendRaw(out, &v, sizeof(v));
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kCrcTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

DatasetFingerprint DatasetFingerprint::Of(const core::Dataset& data) {
  return {data.size(), data.length(), data.bytes()};
}

std::string DatasetFingerprint::ToString() const {
  return "count=" + std::to_string(count) + " length=" +
         std::to_string(length) + " bytes=" + std::to_string(bytes);
}

std::string IndexFilePath(const std::string& dir) {
  return dir + "/index.hydra";
}

IndexWriter::IndexWriter(std::string method_name,
                         DatasetFingerprint fingerprint)
    : method_name_(std::move(method_name)), fingerprint_(fingerprint) {}

void IndexWriter::BeginSection(std::string_view name) {
  HYDRA_CHECK_MSG(!in_section_, "BeginSection inside an open section");
  sections_.push_back({std::string(name), {}});
  in_section_ = true;
}

void IndexWriter::EndSection() {
  HYDRA_CHECK_MSG(in_section_, "EndSection without BeginSection");
  in_section_ = false;
}

void IndexWriter::AppendPayload(const void* p, size_t n) {
  HYDRA_CHECK_MSG(in_section_, "index writes must happen inside a section");
  AppendRaw(&sections_.back().payload, p, n);
}

void IndexWriter::WriteBool(bool v) { WriteU8(v ? 1 : 0); }
void IndexWriter::WriteU8(uint8_t v) { AppendPayload(&v, sizeof(v)); }
void IndexWriter::WriteI32(int32_t v) { AppendPayload(&v, sizeof(v)); }
void IndexWriter::WriteU32(uint32_t v) { AppendPayload(&v, sizeof(v)); }
void IndexWriter::WriteI64(int64_t v) { AppendPayload(&v, sizeof(v)); }
void IndexWriter::WriteU64(uint64_t v) { AppendPayload(&v, sizeof(v)); }
void IndexWriter::WriteDouble(double v) { AppendPayload(&v, sizeof(v)); }

void IndexWriter::WriteString(std::string_view s) {
  WriteU64(s.size());
  AppendPayload(s.data(), s.size());
}

util::Result<int64_t> IndexWriter::Commit(const std::string& path) {
  HYDRA_CHECK_MSG(!in_section_, "Commit with an open section");
  // Header: magic and version live outside the checksummed header payload
  // so that a version mismatch is reported as such (a checksum would
  // otherwise mask it).
  std::string out;
  AppendPod(&out, kIndexMagic);
  AppendPod(&out, kIndexFormatVersion);
  std::string header;
  AppendPod(&header, static_cast<uint64_t>(method_name_.size()));
  AppendRaw(&header, method_name_.data(), method_name_.size());
  AppendPod(&header, fingerprint_.count);
  AppendPod(&header, fingerprint_.length);
  AppendPod(&header, fingerprint_.bytes);
  AppendPod(&out, static_cast<uint64_t>(header.size()));
  out += header;
  AppendPod(&out, Crc32(header.data(), header.size()));
  for (const Section& s : sections_) {
    AppendPod(&out, static_cast<uint32_t>(s.name.size()));
    AppendRaw(&out, s.name.data(), s.name.size());
    AppendPod(&out, static_cast<uint64_t>(s.payload.size()));
    out += s.payload;
    AppendPod(&out, Crc32(s.payload.data(), s.payload.size()));
  }

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return util::Status::Error("cannot open index file for write: " + path);
  }
  if (!out.empty() &&
      std::fwrite(out.data(), 1, out.size(), f.get()) != out.size()) {
    return util::Status::Error("index file write failed: " + path);
  }
  // fwrite only fills the stdio buffer; a full disk surfaces at flush
  // time, and a Save that silently leaves a truncated index behind would
  // break every later Open.
  if (std::fflush(f.get()) != 0) {
    return util::Status::Error("index file flush failed: " + path);
  }
  return static_cast<int64_t>(out.size());
}

util::Status IndexReader::Load(const std::string& path) {
  path_ = path;
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return util::Status::Error("cannot open index file: " + path);
  }
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return util::Status::Error("cannot seek index file: " + path);
  }
  const long size = std::ftell(f.get());
  if (size < 0) return util::Status::Error("cannot stat index file: " + path);
  std::rewind(f.get());
  bytes_.resize(static_cast<size_t>(size));
  if (size > 0 &&
      std::fread(bytes_.data(), 1, bytes_.size(), f.get()) != bytes_.size()) {
    return util::Status::Error("index file read failed: " + path);
  }
  file_bytes_ = size;

  // Container level: magic, version, checksummed header payload.
  size_t pos = 0;
  auto read_pod = [&](auto* out) {
    if (bytes_.size() - pos < sizeof(*out)) return false;
    std::memcpy(out, bytes_.data() + pos, sizeof(*out));
    pos += sizeof(*out);
    return true;
  };
  uint64_t magic = 0;
  if (!read_pod(&magic) || magic != kIndexMagic) {
    return util::Status::Error("not a Hydra index file (bad magic): " + path);
  }
  uint32_t version = 0;
  if (!read_pod(&version)) {
    return util::Status::Error("truncated index file: " + path);
  }
  if (version != kIndexFormatVersion) {
    return util::Status::Error(
        "unsupported index format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kIndexFormatVersion) +
        "): " + path);
  }
  uint64_t header_size = 0;
  if (!read_pod(&header_size) || bytes_.size() - pos < header_size) {
    return util::Status::Error("truncated index header: " + path);
  }
  const size_t header_begin = pos;
  pos += header_size;
  uint32_t header_crc = 0;
  if (!read_pod(&header_crc) ||
      header_crc != Crc32(bytes_.data() + header_begin, header_size)) {
    return util::Status::Error("index header checksum mismatch: " + path);
  }
  // Parse the header payload.
  size_t hpos = header_begin;
  const size_t hend = header_begin + header_size;
  auto read_header_pod = [&](auto* out) {
    if (hend - hpos < sizeof(*out)) return false;
    std::memcpy(out, bytes_.data() + hpos, sizeof(*out));
    hpos += sizeof(*out);
    return true;
  };
  uint64_t name_size = 0;
  if (!read_header_pod(&name_size) || hend - hpos < name_size) {
    return util::Status::Error("malformed index header: " + path);
  }
  method_name_.assign(bytes_.data() + hpos, name_size);
  hpos += name_size;
  if (!read_header_pod(&fingerprint_.count) ||
      !read_header_pod(&fingerprint_.length) ||
      !read_header_pod(&fingerprint_.bytes)) {
    return util::Status::Error("malformed index header: " + path);
  }

  next_section_ = pos;
  cursor_ = pos;
  section_end_ = pos;  // no section entered yet: all reads fail until then
  status_ = util::Status::Ok();
  return status_;
}

util::Status IndexReader::EnterSection(std::string_view name) {
  if (!ok()) return status_;
  size_t pos = next_section_;
  auto read_pod = [&](auto* out) {
    if (bytes_.size() - pos < sizeof(*out)) return false;
    std::memcpy(out, bytes_.data() + pos, sizeof(*out));
    pos += sizeof(*out);
    return true;
  };
  uint32_t name_size = 0;
  if (!read_pod(&name_size) || bytes_.size() - pos < name_size) {
    Fail("truncated index file (expected section '" + std::string(name) +
         "')");
    return status_;
  }
  const std::string_view found(bytes_.data() + pos, name_size);
  pos += name_size;
  if (found != name) {
    Fail("index section order mismatch: expected '" + std::string(name) +
         "', found '" + std::string(found) + "'");
    return status_;
  }
  uint64_t payload_size = 0;
  if (!read_pod(&payload_size) || bytes_.size() - pos < payload_size) {
    Fail("truncated index section '" + std::string(name) + "'");
    return status_;
  }
  const size_t payload_begin = pos;
  pos += payload_size;
  uint32_t crc = 0;
  if (!read_pod(&crc)) {
    Fail("truncated index section '" + std::string(name) + "'");
    return status_;
  }
  if (crc != Crc32(bytes_.data() + payload_begin, payload_size)) {
    Fail("checksum mismatch in index section '" + std::string(name) + "'");
    return status_;
  }
  cursor_ = payload_begin;
  section_end_ = payload_begin + payload_size;
  next_section_ = pos;
  return status_;
}

void IndexReader::Fail(const std::string& message) {
  if (!status_.ok()) return;  // first failure wins
  status_ = util::Status::Error(message + ": " + path_);
}

void IndexReader::ReadPayload(void* out, size_t n) {
  if (!ok()) {
    std::memset(out, 0, n);
    return;
  }
  if (RemainingInSection() < n) {
    Fail("read past the end of an index section");
    std::memset(out, 0, n);
    return;
  }
  std::memcpy(out, bytes_.data() + cursor_, n);
  cursor_ += n;
}

bool IndexReader::ReadBool() { return ReadU8() != 0; }

uint8_t IndexReader::ReadU8() {
  uint8_t v = 0;
  ReadPayload(&v, sizeof(v));
  return v;
}

int32_t IndexReader::ReadI32() {
  int32_t v = 0;
  ReadPayload(&v, sizeof(v));
  return v;
}

uint32_t IndexReader::ReadU32() {
  uint32_t v = 0;
  ReadPayload(&v, sizeof(v));
  return v;
}

int64_t IndexReader::ReadI64() {
  int64_t v = 0;
  ReadPayload(&v, sizeof(v));
  return v;
}

uint64_t IndexReader::ReadU64() {
  uint64_t v = 0;
  ReadPayload(&v, sizeof(v));
  return v;
}

double IndexReader::ReadDouble() {
  double v = 0.0;
  ReadPayload(&v, sizeof(v));
  return v;
}

std::string IndexReader::ReadString() {
  const uint64_t size = ReadU64();
  std::string s;
  if (!ok()) return s;
  if (size > RemainingInSection()) {
    Fail("string length exceeds section payload");
    return s;
  }
  s.assign(bytes_.data() + cursor_, size);
  cursor_ += size;
  return s;
}

}  // namespace hydra::io
