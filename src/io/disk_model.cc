#include "io/disk_model.h"

namespace hydra::io {

double DiskModel::IoSeconds(int64_t bytes, int64_t seeks) const {
  const double transfer =
      static_cast<double>(bytes) / (seq_mb_per_s * 1024.0 * 1024.0);
  return transfer + static_cast<double>(seeks) * seek_seconds;
}

double DiskModel::QueryIoSeconds(const core::SearchStats& stats) const {
  return IoSeconds(stats.bytes_read, stats.random_seeks);
}

double DiskModel::BuildIoSeconds(const core::BuildStats& stats) const {
  return IoSeconds(stats.bytes_written + stats.bytes_read,
                   stats.random_writes + stats.random_reads);
}

}  // namespace hydra::io
