// Streaming series emitters: one generator family as a stateful object
// that produces series one at a time, so `hydra gen` can write corpora
// larger than memory in chunks (io::SeriesFileWriter) instead of
// materializing a Dataset. Emission order and RNG consumption match the
// whole-dataset generators exactly, and each series is z-normalized
// independently (ZNormalizeAll is per-series), so streaming N series
// yields byte-identical files to the in-memory path.
#ifndef HYDRA_GEN_EMITTER_H_
#define HYDRA_GEN_EMITTER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "core/dataset.h"
#include "core/types.h"

namespace hydra::gen {

/// Emits an endless sequence of `length`-point z-normalized series.
/// Stateful (owns the family RNG): series i is defined by the emitter's
/// construction seed and the i-1 emissions before it.
class SeriesEmitter {
 public:
  SeriesEmitter(std::string name, size_t length)
      : name_(std::move(name)), length_(length) {}
  virtual ~SeriesEmitter() = default;

  /// Display name of the family's dataset ("Synth", "Seismic", ...).
  const std::string& name() const { return name_; }
  size_t length() const { return length_; }

  /// Writes the next series (length() values) into `row`, z-normalized.
  void Emit(core::Value* row) {
    EmitRaw(row);
    core::ZNormalize(std::span<core::Value>(row, length_));
  }

 protected:
  /// Writes the next un-normalized series into `row`.
  virtual void EmitRaw(core::Value* row) = 0;

 private:
  std::string name_;
  size_t length_;
};

/// Emitter for `family` ("synth", "seismic", "astro", "sald", "deep";
/// must satisfy IsKnownFamily — CHECK-aborts otherwise).
std::unique_ptr<SeriesEmitter> MakeEmitter(const std::string& family,
                                           size_t length, uint64_t seed);

}  // namespace hydra::gen

#endif  // HYDRA_GEN_EMITTER_H_
