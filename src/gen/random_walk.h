// Random-walk data series generator (the paper's synthetic datasets:
// cumulative sums of N(0,1) steps, claimed to model stock prices).
#ifndef HYDRA_GEN_RANDOM_WALK_H_
#define HYDRA_GEN_RANDOM_WALK_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/dataset.h"
#include "gen/emitter.h"
#include "util/rng.h"

namespace hydra::gen {

/// Streaming random-walk emitter (see gen/emitter.h).
class RandomWalkEmitter : public SeriesEmitter {
 public:
  RandomWalkEmitter(size_t length, uint64_t seed,
                    const std::string& name = "Synth");

 protected:
  void EmitRaw(core::Value* row) override;

 private:
  util::Rng rng_;
};

/// Generates `count` z-normalized random-walk series of `length` points.
core::Dataset RandomWalkDataset(size_t count, size_t length, uint64_t seed,
                                const std::string& name = "Synth");

}  // namespace hydra::gen

#endif  // HYDRA_GEN_RANDOM_WALK_H_
