#include "gen/subsequence.h"

#include <vector>

#include "util/check.h"

namespace hydra::gen {

ChoppedCollection ChopForWholeMatching(const core::Dataset& long_series,
                                       size_t window, size_t stride,
                                       bool znormalize_windows) {
  HYDRA_CHECK(window > 0);
  HYDRA_CHECK(stride > 0);
  HYDRA_CHECK_MSG(long_series.length() >= window,
                  "series shorter than the query window");

  ChoppedCollection out{core::Dataset(long_series.name() + "-windows", window),
                        {}};
  std::vector<core::Value> buf(window);
  for (size_t i = 0; i < long_series.size(); ++i) {
    const core::SeriesView s = long_series[i];
    for (size_t off = 0; off + window <= s.size(); off += stride) {
      for (size_t j = 0; j < window; ++j) buf[j] = s[off + j];
      if (znormalize_windows) core::ZNormalize(buf);
      out.windows.Append(buf);
      out.origins.push_back({i, off});
    }
  }
  return out;
}

}  // namespace hydra::gen
