#include "gen/random_walk.h"

#include "util/rng.h"

namespace hydra::gen {

core::Dataset RandomWalkDataset(size_t count, size_t length, uint64_t seed,
                                const std::string& name) {
  util::Rng rng(seed);
  core::Dataset data(name, length);
  data.Reserve(count);
  for (size_t i = 0; i < count; ++i) {
    core::Value* row = data.AppendUninitialized();
    double walk = 0.0;
    for (size_t j = 0; j < length; ++j) {
      walk += rng.Gaussian();
      row[j] = static_cast<core::Value>(walk);
    }
  }
  data.ZNormalizeAll();
  return data;
}

}  // namespace hydra::gen
