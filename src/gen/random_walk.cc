#include "gen/random_walk.h"

#include "util/rng.h"

namespace hydra::gen {

RandomWalkEmitter::RandomWalkEmitter(size_t length, uint64_t seed,
                                     const std::string& name)
    : SeriesEmitter(name, length), rng_(seed) {}

void RandomWalkEmitter::EmitRaw(core::Value* row) {
  double walk = 0.0;
  for (size_t j = 0; j < length(); ++j) {
    walk += rng_.Gaussian();
    row[j] = static_cast<core::Value>(walk);
  }
}

core::Dataset RandomWalkDataset(size_t count, size_t length, uint64_t seed,
                                const std::string& name) {
  RandomWalkEmitter emitter(length, seed, name);
  core::Dataset data(name, length);
  data.Reserve(count);
  for (size_t i = 0; i < count; ++i) {
    emitter.Emit(data.AppendUninitialized());
  }
  return data;
}

}  // namespace hydra::gen
