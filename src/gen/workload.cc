#include "gen/workload.h"

#include <vector>

#include "gen/random_walk.h"
#include "util/check.h"
#include "util/rng.h"

namespace hydra::gen {

Workload RandWorkload(size_t count, size_t length, uint64_t seed) {
  Workload w;
  w.name = "Synth-Rand";
  w.queries = RandomWalkDataset(count, length, seed, "Synth-Rand");
  return w;
}

Workload CtrlWorkload(const core::Dataset& data, size_t count, uint64_t seed,
                      double min_noise, double max_noise) {
  HYDRA_CHECK(data.size() > 0);
  util::Rng rng(seed);
  Workload w;
  w.name = data.name() + "-Ctrl";
  w.queries = core::Dataset(w.name, data.length());
  w.queries.Reserve(count);
  w.noise_levels.resize(count);
  std::vector<core::Value> buf(data.length());
  for (size_t i = 0; i < count; ++i) {
    const double noise =
        count == 1 ? min_noise
                   : min_noise + (max_noise - min_noise) *
                                     static_cast<double>(i) /
                                     static_cast<double>(count - 1);
    w.noise_levels[i] = noise;
    const auto base = data[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(data.size()) - 1))];
    for (size_t j = 0; j < buf.size(); ++j) {
      buf[j] = static_cast<core::Value>(base[j] + rng.Gaussian(0.0, noise));
    }
    core::ZNormalize(buf);
    w.queries.Append(buf);
  }
  return w;
}

}  // namespace hydra::gen
