// Query workload construction, following Section 4.2 of the paper:
// Synth-Rand workloads are fresh random walks; *-Ctrl workloads extract
// series from the dataset and add progressively larger amounts of noise to
// control query difficulty (harder queries are farther from their NN).
#ifndef HYDRA_GEN_WORKLOAD_H_
#define HYDRA_GEN_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"

namespace hydra::gen {

/// A set of query series against one dataset.
struct Workload {
  std::string name;
  core::Dataset queries;
  /// Noise level used per query (empty for Rand workloads).
  std::vector<double> noise_levels;
};

/// `count` fresh random-walk queries (the paper's Synth-Rand).
Workload RandWorkload(size_t count, size_t length, uint64_t seed);

/// `count` controlled queries: dataset series plus Gaussian noise whose
/// standard deviation grows linearly from `min_noise` to `max_noise` across
/// the workload, then re-z-normalized (the paper's *-Ctrl workloads).
/// At the default cap the hardest queries keep only ~70% correlation with
/// their source series — hard, but not indistinguishable from random.
Workload CtrlWorkload(const core::Dataset& data, size_t count,
                      uint64_t seed, double min_noise = 0.01,
                      double max_noise = 1.0);

}  // namespace hydra::gen

#endif  // HYDRA_GEN_WORKLOAD_H_
