// Subsequence matching via whole matching (Section 2 of the paper): "SM
// queries can be converted to WM: create a new collection that comprises
// all overlapping subsequences (each long series in the candidate set is
// chopped into overlapping subsequences of the length of the query), and
// perform a WM query against these subsequences."
#ifndef HYDRA_GEN_SUBSEQUENCE_H_
#define HYDRA_GEN_SUBSEQUENCE_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"

namespace hydra::gen {

/// Maps a window id in the chopped collection back to its source.
struct WindowOrigin {
  /// Index of the long series in the input collection.
  size_t source;
  /// Offset of the window's first point within that series.
  size_t offset;
};

/// A whole-matching collection of all overlapping windows of the given
/// `window` length taken every `stride` points from each long series, plus
/// the bookkeeping to map matches back to (series, offset) positions.
struct ChoppedCollection {
  core::Dataset windows;
  std::vector<WindowOrigin> origins;
};

/// Chops every series of `long_series` (each at least `window` points long)
/// into overlapping windows. With `znormalize_windows` each window is
/// z-normalized independently, the convention for subsequence matching over
/// normalized distance (UCR Suite). `stride` of 1 enumerates every
/// subsequence, larger strides trade recall for collection size.
ChoppedCollection ChopForWholeMatching(const core::Dataset& long_series,
                                       size_t window, size_t stride = 1,
                                       bool znormalize_windows = true);

}  // namespace hydra::gen

#endif  // HYDRA_GEN_SUBSEQUENCE_H_
