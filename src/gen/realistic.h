// Simulators for the paper's four real datasets. We do not have the
// proprietary/large originals (IRIS Seismic, Astro light curves, SALD MRI,
// Deep1B embeddings); these generators produce series with the same coarse
// spectral character, which is what differentiates method behaviour:
// how much energy the first coefficients/segments capture (summarizability)
// and how close queries are to their nearest neighbors (difficulty).
// The substitution is documented in DESIGN.md.
#ifndef HYDRA_GEN_REALISTIC_H_
#define HYDRA_GEN_REALISTIC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"

namespace hydra::gen {

/// Seismic-like series: background noise plus a few damped oscillatory
/// bursts (transient events), like instrument recordings around quakes.
core::Dataset SeismicLikeDataset(size_t count, size_t length, uint64_t seed);

/// Astronomy-like series: periodic light curves (a few harmonics with
/// random period/phase) plus observation noise.
core::Dataset AstroLikeDataset(size_t count, size_t length, uint64_t seed);

/// SALD-like (MRI) series: smooth, strongly autocorrelated signals —
/// an AR(1) process with slow drift. Highly summarizable.
core::Dataset SaldLikeDataset(size_t count, size_t length, uint64_t seed);

/// Deep1B-like vectors: low-rank correlated embeddings (random linear maps
/// of a lower-dimensional latent) plus isotropic noise — hard to
/// summarize with few coefficients, like CNN descriptors.
core::Dataset DeepLikeDataset(size_t count, size_t length, uint64_t seed);

/// Dispatch by name: "synth", "seismic", "astro", "sald", "deep".
/// The family must satisfy IsKnownFamily.
core::Dataset MakeDataset(const std::string& family, size_t count,
                          size_t length, uint64_t seed);

/// The dataset families MakeDataset dispatches on.
const std::vector<std::string>& KnownFamilies();

/// Whether `family` is a valid MakeDataset name.
bool IsKnownFamily(const std::string& family);

}  // namespace hydra::gen

#endif  // HYDRA_GEN_REALISTIC_H_
