#include "gen/realistic.h"

#include <cmath>
#include <vector>

#include "gen/random_walk.h"
#include "util/check.h"
#include "util/rng.h"

namespace hydra::gen {

core::Dataset SeismicLikeDataset(size_t count, size_t length, uint64_t seed) {
  util::Rng rng(seed);
  core::Dataset data("Seismic", length);
  data.Reserve(count);
  for (size_t i = 0; i < count; ++i) {
    core::Value* row = data.AppendUninitialized();
    for (size_t j = 0; j < length; ++j) {
      row[j] = static_cast<core::Value>(0.3 * rng.Gaussian());
    }
    const int events = 1 + rng.Poisson(1.5);
    for (int e = 0; e < events; ++e) {
      const size_t onset = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(length) - 1));
      const double amplitude = std::exp(rng.Gaussian(1.0, 0.6));
      const double freq = rng.Uniform(0.05, 0.35);     // cycles per sample
      const double decay = rng.Uniform(0.02, 0.1);     // envelope decay rate
      const double phase = rng.Uniform(0.0, 2.0 * M_PI);
      for (size_t j = onset; j < length; ++j) {
        const double t = static_cast<double>(j - onset);
        row[j] += static_cast<core::Value>(
            amplitude * std::exp(-decay * t) *
            std::sin(2.0 * M_PI * freq * t + phase));
      }
    }
  }
  data.ZNormalizeAll();
  return data;
}

core::Dataset AstroLikeDataset(size_t count, size_t length, uint64_t seed) {
  util::Rng rng(seed);
  core::Dataset data("Astro", length);
  data.Reserve(count);
  for (size_t i = 0; i < count; ++i) {
    core::Value* row = data.AppendUninitialized();
    const double period =
        rng.Uniform(static_cast<double>(length) / 8.0,
                    static_cast<double>(length) / 2.0);
    const double base_phase = rng.Uniform(0.0, 2.0 * M_PI);
    double harmonics[3];
    for (double& h : harmonics) h = std::exp(rng.Gaussian(0.0, 0.5));
    harmonics[1] *= 0.5;
    harmonics[2] *= 0.25;
    for (size_t j = 0; j < length; ++j) {
      const double t = static_cast<double>(j);
      double v = 0.0;
      for (int h = 0; h < 3; ++h) {
        v += harmonics[h] *
             std::sin(2.0 * M_PI * (h + 1) * t / period + base_phase * (h + 1));
      }
      row[j] = static_cast<core::Value>(v + 0.2 * rng.Gaussian());
    }
  }
  data.ZNormalizeAll();
  return data;
}

core::Dataset SaldLikeDataset(size_t count, size_t length, uint64_t seed) {
  util::Rng rng(seed);
  core::Dataset data("SALD", length);
  data.Reserve(count);
  constexpr double kAr = 0.97;  // strong autocorrelation: smooth signals
  for (size_t i = 0; i < count; ++i) {
    core::Value* row = data.AppendUninitialized();
    double state = rng.Gaussian();
    const double drift_period =
        rng.Uniform(static_cast<double>(length) / 2.0,
                    static_cast<double>(length) * 2.0);
    const double drift_phase = rng.Uniform(0.0, 2.0 * M_PI);
    for (size_t j = 0; j < length; ++j) {
      state = kAr * state + std::sqrt(1.0 - kAr * kAr) * rng.Gaussian();
      const double drift =
          0.8 * std::sin(2.0 * M_PI * static_cast<double>(j) / drift_period +
                         drift_phase);
      row[j] = static_cast<core::Value>(state + drift);
    }
  }
  data.ZNormalizeAll();
  return data;
}

core::Dataset DeepLikeDataset(size_t count, size_t length, uint64_t seed) {
  util::Rng rng(seed);
  core::Dataset data("Deep1B", length);
  data.Reserve(count);
  // Shared random mixing matrix: latent factors spread across all positions,
  // so no short prefix of any fixed transform captures most of the energy.
  const size_t rank = std::max<size_t>(4, length / 8);
  std::vector<double> mix(rank * length);
  for (double& m : mix) m = rng.Gaussian() / std::sqrt(static_cast<double>(rank));
  std::vector<double> latent(rank);
  for (size_t i = 0; i < count; ++i) {
    core::Value* row = data.AppendUninitialized();
    for (double& z : latent) z = rng.Gaussian();
    for (size_t j = 0; j < length; ++j) {
      double v = 0.0;
      for (size_t r = 0; r < rank; ++r) v += latent[r] * mix[r * length + j];
      row[j] = static_cast<core::Value>(v + 0.4 * rng.Gaussian());
    }
  }
  data.ZNormalizeAll();
  return data;
}

namespace {

// Single source of truth for the family names: MakeDataset dispatch and
// KnownFamilies both read this table.
using DatasetFactory = core::Dataset (*)(size_t, size_t, uint64_t);

struct FamilyEntry {
  const char* name;
  DatasetFactory make;
};

constexpr FamilyEntry kFamilyTable[] = {
    {"synth",
     [](size_t count, size_t length, uint64_t seed) {
       return RandomWalkDataset(count, length, seed);
     }},
    {"seismic", SeismicLikeDataset},
    {"astro", AstroLikeDataset},
    {"sald", SaldLikeDataset},
    {"deep", DeepLikeDataset},
};

}  // namespace

core::Dataset MakeDataset(const std::string& family, size_t count,
                          size_t length, uint64_t seed) {
  for (const FamilyEntry& entry : kFamilyTable) {
    if (family == entry.name) return entry.make(count, length, seed);
  }
  HYDRA_CHECK_MSG(false, "unknown dataset family");
  return core::Dataset("", 1);
}

const std::vector<std::string>& KnownFamilies() {
  static const std::vector<std::string> kFamilies = [] {
    std::vector<std::string> names;
    for (const FamilyEntry& entry : kFamilyTable) names.push_back(entry.name);
    return names;
  }();
  return kFamilies;
}

bool IsKnownFamily(const std::string& family) {
  for (const std::string& f : KnownFamilies()) {
    if (f == family) return true;
  }
  return false;
}

}  // namespace hydra::gen
