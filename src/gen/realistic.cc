#include "gen/realistic.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "gen/emitter.h"
#include "gen/random_walk.h"
#include "util/check.h"
#include "util/rng.h"

namespace hydra::gen {
namespace {

// The four realistic emitters below hold the family RNG and produce one
// series per Emit; the whole-dataset functions and `hydra gen`'s streaming
// writer share them, so both paths are byte-identical by construction.

class SeismicEmitter : public SeriesEmitter {
 public:
  SeismicEmitter(size_t length, uint64_t seed)
      : SeriesEmitter("Seismic", length), rng_(seed) {}

 protected:
  void EmitRaw(core::Value* row) override {
    const size_t length = this->length();
    for (size_t j = 0; j < length; ++j) {
      row[j] = static_cast<core::Value>(0.3 * rng_.Gaussian());
    }
    const int events = 1 + rng_.Poisson(1.5);
    for (int e = 0; e < events; ++e) {
      const size_t onset = static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(length) - 1));
      const double amplitude = std::exp(rng_.Gaussian(1.0, 0.6));
      const double freq = rng_.Uniform(0.05, 0.35);   // cycles per sample
      const double decay = rng_.Uniform(0.02, 0.1);   // envelope decay rate
      const double phase = rng_.Uniform(0.0, 2.0 * M_PI);
      for (size_t j = onset; j < length; ++j) {
        const double t = static_cast<double>(j - onset);
        row[j] += static_cast<core::Value>(
            amplitude * std::exp(-decay * t) *
            std::sin(2.0 * M_PI * freq * t + phase));
      }
    }
  }

 private:
  util::Rng rng_;
};

class AstroEmitter : public SeriesEmitter {
 public:
  AstroEmitter(size_t length, uint64_t seed)
      : SeriesEmitter("Astro", length), rng_(seed) {}

 protected:
  void EmitRaw(core::Value* row) override {
    const size_t length = this->length();
    const double period =
        rng_.Uniform(static_cast<double>(length) / 8.0,
                     static_cast<double>(length) / 2.0);
    const double base_phase = rng_.Uniform(0.0, 2.0 * M_PI);
    double harmonics[3];
    for (double& h : harmonics) h = std::exp(rng_.Gaussian(0.0, 0.5));
    harmonics[1] *= 0.5;
    harmonics[2] *= 0.25;
    for (size_t j = 0; j < length; ++j) {
      const double t = static_cast<double>(j);
      double v = 0.0;
      for (int h = 0; h < 3; ++h) {
        v += harmonics[h] *
             std::sin(2.0 * M_PI * (h + 1) * t / period + base_phase * (h + 1));
      }
      row[j] = static_cast<core::Value>(v + 0.2 * rng_.Gaussian());
    }
  }

 private:
  util::Rng rng_;
};

class SaldEmitter : public SeriesEmitter {
 public:
  SaldEmitter(size_t length, uint64_t seed)
      : SeriesEmitter("SALD", length), rng_(seed) {}

 protected:
  void EmitRaw(core::Value* row) override {
    constexpr double kAr = 0.97;  // strong autocorrelation: smooth signals
    const size_t length = this->length();
    double state = rng_.Gaussian();
    const double drift_period =
        rng_.Uniform(static_cast<double>(length) / 2.0,
                     static_cast<double>(length) * 2.0);
    const double drift_phase = rng_.Uniform(0.0, 2.0 * M_PI);
    for (size_t j = 0; j < length; ++j) {
      state = kAr * state + std::sqrt(1.0 - kAr * kAr) * rng_.Gaussian();
      const double drift =
          0.8 * std::sin(2.0 * M_PI * static_cast<double>(j) / drift_period +
                         drift_phase);
      row[j] = static_cast<core::Value>(state + drift);
    }
  }

 private:
  util::Rng rng_;
};

class DeepEmitter : public SeriesEmitter {
 public:
  DeepEmitter(size_t length, uint64_t seed)
      : SeriesEmitter("Deep1B", length),
        rng_(seed),
        // Shared random mixing matrix: latent factors spread across all
        // positions, so no short prefix of any fixed transform captures
        // most of the energy. Drawn before the first series, like the
        // whole-dataset generator did.
        rank_(std::max<size_t>(4, length / 8)),
        mix_(rank_ * length),
        latent_(rank_) {
    for (double& m : mix_) {
      m = rng_.Gaussian() / std::sqrt(static_cast<double>(rank_));
    }
  }

 protected:
  void EmitRaw(core::Value* row) override {
    const size_t length = this->length();
    for (double& z : latent_) z = rng_.Gaussian();
    for (size_t j = 0; j < length; ++j) {
      double v = 0.0;
      for (size_t r = 0; r < rank_; ++r) v += latent_[r] * mix_[r * length + j];
      row[j] = static_cast<core::Value>(v + 0.4 * rng_.Gaussian());
    }
  }

 private:
  util::Rng rng_;
  size_t rank_;
  std::vector<double> mix_;
  std::vector<double> latent_;
};

// Single source of truth for the family names: MakeEmitter dispatch and
// KnownFamilies both read this table.
using EmitterFactory =
    std::unique_ptr<SeriesEmitter> (*)(size_t length, uint64_t seed);

struct FamilyEntry {
  const char* name;
  EmitterFactory make;
};

template <typename E>
std::unique_ptr<SeriesEmitter> Make(size_t length, uint64_t seed) {
  return std::make_unique<E>(length, seed);
}

constexpr FamilyEntry kFamilyTable[] = {
    {"synth",
     [](size_t length, uint64_t seed) -> std::unique_ptr<SeriesEmitter> {
       return std::make_unique<RandomWalkEmitter>(length, seed);
     }},
    {"seismic", Make<SeismicEmitter>},
    {"astro", Make<AstroEmitter>},
    {"sald", Make<SaldEmitter>},
    {"deep", Make<DeepEmitter>},
};

core::Dataset EmitAll(SeriesEmitter* emitter, size_t count) {
  core::Dataset data(emitter->name(), emitter->length());
  data.Reserve(count);
  for (size_t i = 0; i < count; ++i) {
    emitter->Emit(data.AppendUninitialized());
  }
  return data;
}

}  // namespace

core::Dataset SeismicLikeDataset(size_t count, size_t length, uint64_t seed) {
  SeismicEmitter emitter(length, seed);
  return EmitAll(&emitter, count);
}

core::Dataset AstroLikeDataset(size_t count, size_t length, uint64_t seed) {
  AstroEmitter emitter(length, seed);
  return EmitAll(&emitter, count);
}

core::Dataset SaldLikeDataset(size_t count, size_t length, uint64_t seed) {
  SaldEmitter emitter(length, seed);
  return EmitAll(&emitter, count);
}

core::Dataset DeepLikeDataset(size_t count, size_t length, uint64_t seed) {
  DeepEmitter emitter(length, seed);
  return EmitAll(&emitter, count);
}

std::unique_ptr<SeriesEmitter> MakeEmitter(const std::string& family,
                                           size_t length, uint64_t seed) {
  for (const FamilyEntry& entry : kFamilyTable) {
    if (family == entry.name) return entry.make(length, seed);
  }
  HYDRA_CHECK_MSG(false, "unknown dataset family");
  return nullptr;
}

core::Dataset MakeDataset(const std::string& family, size_t count,
                          size_t length, uint64_t seed) {
  return EmitAll(MakeEmitter(family, length, seed).get(), count);
}

const std::vector<std::string>& KnownFamilies() {
  static const std::vector<std::string> kFamilies = [] {
    std::vector<std::string> names;
    for (const FamilyEntry& entry : kFamilyTable) names.push_back(entry.name);
    return names;
  }();
  return kFamilies;
}

bool IsKnownFamily(const std::string& family) {
  for (const std::string& f : KnownFamilies()) {
    if (f == family) return true;
  }
  return false;
}

}  // namespace hydra::gen
