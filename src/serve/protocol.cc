#include "serve/protocol.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "io/index_codec.h"
#include "util/check.h"

namespace hydra::serve {
namespace {

/// Append-only little-endian payload builder (the writer half of the
/// index_codec discipline, sized for frames instead of files).
class WireWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }
  void F32(float v) { U32(std::bit_cast<uint32_t>(v)); }
  /// u32 length prefix + raw bytes.
  void Str(std::string_view s) {
    HYDRA_CHECK_MSG(s.size() <= kMaxFramePayload, "wire string too large");
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian payload reader with a sticky error, so a
/// decoder can read a whole payload unconditionally and check once at the
/// end (truncated or garbled bytes yield zeros, never an over-read).
class WireReader {
 public:
  explicit WireReader(std::string_view payload) : payload_(payload) {}

  uint8_t U8() {
    uint8_t v = 0;
    Bytes(&v, 1);
    return v;
  }
  uint32_t U32() {
    unsigned char b[4] = {};
    Bytes(b, 4);
    return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
           (static_cast<uint32_t>(b[2]) << 16) |
           (static_cast<uint32_t>(b[3]) << 24);
  }
  uint64_t U64() {
    const uint64_t lo = U32();
    const uint64_t hi = U32();
    return lo | (hi << 32);
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() { return std::bit_cast<double>(U64()); }
  float F32() { return std::bit_cast<float>(U32()); }
  std::string Str() {
    const uint32_t n = U32();
    if (n > Remaining()) {
      Fail("string length exceeds payload");
      return {};
    }
    std::string s(payload_.substr(cursor_, n));
    cursor_ += n;
    return s;
  }

  size_t Remaining() const { return payload_.size() - cursor_; }
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  void Fail(std::string message) {
    if (ok_) {
      ok_ = false;
      error_ = std::move(message);
    }
  }
  /// The end-of-payload check every decoder finishes with: trailing bytes
  /// mean the peer and this build disagree about the payload layout.
  util::Status Finish(const char* what) {
    if (ok_ && Remaining() != 0) Fail("trailing bytes after payload");
    if (ok_) return util::Status::Ok();
    return util::Status::Error(std::string("malformed ") + what + ": " +
                               error_);
  }

 private:
  void Bytes(void* out, size_t n) {
    if (n > Remaining()) {
      Fail("payload truncated");
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, payload_.data() + cursor_, n);
    cursor_ += n;
  }

  std::string_view payload_;
  size_t cursor_ = 0;
  bool ok_ = true;
  std::string error_;
};

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

constexpr size_t kHeaderBytes = 4 + 4 + 1 + 4;  // magic, version, type, size
constexpr size_t kTrailerBytes = 4;             // payload CRC

bool KnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kPing) &&
         type <= static_cast<uint8_t>(FrameType::kStatsFull);
}

/// Encodes the stats ledger fields shared by every answer.
void PutStats(WireWriter* w, const core::SearchStats& stats) {
  w->I64(stats.distance_computations);
  w->I64(stats.raw_series_examined);
  w->I64(stats.lower_bound_computations);
  w->I64(stats.nodes_visited);
  w->I64(stats.sequential_reads);
  w->I64(stats.random_seeks);
  w->I64(stats.bytes_read);
  w->F64(stats.cpu_seconds);
  w->U8(static_cast<uint8_t>(stats.answer_mode_delivered));
  w->U8(stats.budget_exhausted ? 1 : 0);
}

void GetStats(WireReader* r, core::SearchStats* stats) {
  stats->distance_computations = r->I64();
  stats->raw_series_examined = r->I64();
  stats->lower_bound_computations = r->I64();
  stats->nodes_visited = r->I64();
  stats->sequential_reads = r->I64();
  stats->random_seeks = r->I64();
  stats->bytes_read = r->I64();
  stats->cpu_seconds = r->F64();
  const uint8_t mode = r->U8();
  if (mode > static_cast<uint8_t>(core::QualityMode::kNgApprox)) {
    r->Fail("unknown delivered quality mode");
  } else {
    stats->answer_mode_delivered = static_cast<core::QualityMode>(mode);
  }
  stats->budget_exhausted = r->U8() != 0;
}

}  // namespace

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformed:
      return "malformed";
    case ErrorCode::kUnsupportedVersion:
      return "unsupported-version";
    case ErrorCode::kResourceExhausted:
      return "resource-exhausted";
    case ErrorCode::kBadQuery:
      return "bad-query";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string EncodeFrame(const Frame& frame) {
  HYDRA_CHECK_MSG(frame.payload.size() <= kMaxFramePayload,
                  "frame payload exceeds kMaxFramePayload");
  std::string out;
  out.reserve(kHeaderBytes + frame.payload.size() + kTrailerBytes);
  PutU32(&out, kFrameMagic);
  PutU32(&out, kProtocolVersion);
  out.push_back(static_cast<char>(frame.type));
  PutU32(&out, static_cast<uint32_t>(frame.payload.size()));
  out.append(frame.payload);
  PutU32(&out, io::Crc32(frame.payload.data(), frame.payload.size()));
  return out;
}

void FrameDecoder::Feed(const void* bytes, size_t n) {
  if (failed_) return;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (cursor_ > 0 && cursor_ >= buffer_.size() / 2) {
    buffer_.erase(0, cursor_);
    cursor_ = 0;
  }
  buffer_.append(static_cast<const char*>(bytes), n);
}

void FrameDecoder::Fail(ErrorCode code, std::string message) {
  failed_ = true;
  error_code_ = code;
  error_ = std::move(message);
}

FrameDecoder::Next FrameDecoder::Pop(Frame* frame) {
  if (failed_) return Next::kError;
  const size_t available = buffer_.size() - cursor_;
  if (available < kHeaderBytes) return Next::kNeedMore;
  const char* head = buffer_.data() + cursor_;
  const uint32_t magic = GetU32(head);
  if (magic != kFrameMagic) {
    Fail(ErrorCode::kMalformed, "bad frame magic (not a hydra peer?)");
    return Next::kError;
  }
  const uint32_t version = GetU32(head + 4);
  if (version != kProtocolVersion) {
    Fail(ErrorCode::kUnsupportedVersion,
         "peer speaks protocol version " + std::to_string(version) +
             ", this build speaks " + std::to_string(kProtocolVersion));
    return Next::kError;
  }
  const uint8_t type = static_cast<uint8_t>(head[8]);
  if (!KnownFrameType(type)) {
    Fail(ErrorCode::kMalformed,
         "unknown frame type " + std::to_string(type));
    return Next::kError;
  }
  const uint32_t size = GetU32(head + 9);
  if (size > kMaxFramePayload) {
    // The oversized-length guard: refuse before buffering, so a corrupt
    // or hostile length can never drive the allocation.
    Fail(ErrorCode::kMalformed,
         "frame payload length " + std::to_string(size) +
             " exceeds the " + std::to_string(kMaxFramePayload) +
             "-byte cap");
    return Next::kError;
  }
  const size_t total = kHeaderBytes + size + kTrailerBytes;
  if (available < total) return Next::kNeedMore;
  const char* payload = head + kHeaderBytes;
  const uint32_t stored_crc = GetU32(payload + size);
  const uint32_t actual_crc = io::Crc32(payload, size);
  if (stored_crc != actual_crc) {
    Fail(ErrorCode::kMalformed, "frame payload CRC mismatch");
    return Next::kError;
  }
  frame->type = static_cast<FrameType>(type);
  frame->payload.assign(payload, size);
  cursor_ += total;
  return Next::kFrame;
}

std::string EncodeQueryRequest(const QueryRequest& request) {
  HYDRA_CHECK_MSG(request.query.size() * sizeof(core::Value) <
                      kMaxFramePayload / 2,
                  "query vector too large for one frame");
  WireWriter w;
  w.U8(static_cast<uint8_t>(request.spec.kind));
  w.U64(request.spec.k);
  w.F64(request.spec.radius);
  w.U8(static_cast<uint8_t>(request.spec.mode));
  w.F64(request.spec.epsilon);
  w.F64(request.spec.delta);
  w.I64(request.spec.max_visited_leaves);
  w.I64(request.spec.max_raw_series);
  w.U64(request.request_id);
  w.U32(static_cast<uint32_t>(request.query.size()));
  for (const core::Value v : request.query) w.F32(v);
  return w.Take();
}

util::Status DecodeQueryRequest(std::string_view payload, QueryRequest* out) {
  WireReader r(payload);
  const uint8_t kind = r.U8();
  if (kind > static_cast<uint8_t>(core::QueryKind::kRange)) {
    r.Fail("unknown query kind");
  } else {
    out->spec.kind = static_cast<core::QueryKind>(kind);
  }
  out->spec.k = r.U64();
  out->spec.radius = r.F64();
  const uint8_t mode = r.U8();
  if (mode > static_cast<uint8_t>(core::QualityMode::kNgApprox)) {
    r.Fail("unknown quality mode");
  } else {
    out->spec.mode = static_cast<core::QualityMode>(mode);
  }
  out->spec.epsilon = r.F64();
  out->spec.delta = r.F64();
  out->spec.max_visited_leaves = r.I64();
  out->spec.max_raw_series = r.I64();
  out->spec.query_threads = 1;  // traversal width is server policy
  out->request_id = r.U64();
  const uint32_t n = r.U32();
  if (n * sizeof(core::Value) > r.Remaining()) {
    r.Fail("query vector length exceeds payload");
  } else {
    out->query.clear();
    out->query.reserve(n);
    for (uint32_t i = 0; i < n; ++i) out->query.push_back(r.F32());
  }
  return r.Finish("query request");
}

std::string EncodeAnswerResponse(const AnswerResponse& response) {
  WireWriter w;
  w.U8(response.cached ? 1 : 0);
  w.U32(static_cast<uint32_t>(response.result.neighbors.size()));
  for (const core::Neighbor& n : response.result.neighbors) {
    w.U32(n.id);
    w.F64(n.dist_sq);
  }
  PutStats(&w, response.result.stats);
  return w.Take();
}

util::Status DecodeAnswerResponse(std::string_view payload,
                                  AnswerResponse* out) {
  WireReader r(payload);
  out->cached = r.U8() != 0;
  const uint32_t n = r.U32();
  // id (4) + dist_sq (8) per neighbor: bounds-check before the allocation.
  if (n > r.Remaining() / 12) {
    r.Fail("neighbor count exceeds payload");
  } else {
    out->result.neighbors.clear();
    out->result.neighbors.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      core::Neighbor nb;
      nb.id = r.U32();
      nb.dist_sq = r.F64();
      out->result.neighbors.push_back(nb);
    }
  }
  GetStats(&r, &out->result.stats);
  return r.Finish("answer response");
}

std::string EncodeErrorResponse(const ErrorResponse& response) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(response.code));
  w.Str(response.message);
  return w.Take();
}

util::Status DecodeErrorResponse(std::string_view payload,
                                 ErrorResponse* out) {
  WireReader r(payload);
  const uint32_t code = r.U32();
  if (code < static_cast<uint32_t>(ErrorCode::kMalformed) ||
      code > static_cast<uint32_t>(ErrorCode::kInternal)) {
    r.Fail("unknown error code");
  } else {
    out->code = static_cast<ErrorCode>(code);
  }
  out->message = r.Str();
  return r.Finish("error response");
}

std::string EncodeStatsResponse(std::string_view json) {
  WireWriter w;
  w.Str(json);
  return w.Take();
}

util::Status DecodeStatsResponse(std::string_view payload, std::string* json) {
  WireReader r(payload);
  *json = r.Str();
  return r.Finish("stats response");
}

util::Status ValidateRequest(const QueryRequest& request,
                             const core::MethodTraits& traits,
                             size_t series_length) {
  const core::QuerySpec& spec = request.spec;
  if (request.query.size() != series_length) {
    return util::Status::Error(
        "query vector has " + std::to_string(request.query.size()) +
        " points, the served collection has " +
        std::to_string(series_length) + " per series");
  }
  for (const core::Value v : request.query) {
    if (!std::isfinite(v)) {
      return util::Status::Error("query vector contains non-finite values");
    }
  }
  if (spec.kind == core::QueryKind::kRange) {
    if (!(spec.radius >= 0.0) || !std::isfinite(spec.radius)) {
      return util::Status::Error("range radius must be finite and "
                                 "non-negative");
    }
    if (spec.mode != core::QualityMode::kExact) {
      return util::Status::Error("range queries support only the exact "
                                 "mode");
    }
    if (spec.has_budget()) {
      return util::Status::Error("range queries do not support execution "
                                 "budgets");
    }
    return util::Status::Ok();
  }
  if (spec.k < 1) {
    return util::Status::Error("k-NN queries need k >= 1");
  }
  if (!(spec.epsilon >= 0.0) || !std::isfinite(spec.epsilon)) {
    return util::Status::Error("epsilon must be finite and non-negative");
  }
  if (!(spec.delta > 0.0 && spec.delta <= 1.0)) {
    return util::Status::Error("delta must lie in (0, 1]");
  }
  if (spec.max_visited_leaves < 0 || spec.max_raw_series < 0) {
    return util::Status::Error("budgets must be non-negative (0 = "
                               "unlimited)");
  }
  if (spec.mode == core::QualityMode::kNgApprox && spec.has_budget()) {
    return util::Status::Error("budgets do not apply to the ng mode (it "
                               "already visits at most one leaf)");
  }
  if (spec.max_visited_leaves > 0 && !traits.leaf_visit_budget) {
    return util::Status::Error("the served method has no leaf-visit budget "
                               "unit, so max_visited_leaves could never "
                               "fire; cap work with max_raw_series instead");
  }
  // Honest refusal, like the CLI: a mode the served method does not
  // advertise is rejected, never silently answered exactly.
  const std::string reason = core::ModeFallbackReason(traits, spec.mode);
  if (!reason.empty()) {
    return util::Status::Error("the served method does not support mode '" +
                               std::string(core::QualityModeName(spec.mode)) +
                               "' (" + reason + ")");
  }
  return util::Status::Ok();
}

}  // namespace hydra::serve
