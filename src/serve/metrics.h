// Observability of the serve daemon: monotonic request counters, the
// merged SearchStats ledger of every query answered, and a fixed-size
// latency ring buffer from which the STATS reply derives p50/p95/p99.
// One instance per Server, written by every worker, snapshotted by STATS.
#ifndef HYDRA_SERVE_METRICS_H_
#define HYDRA_SERVE_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/search_stats.h"
#include "serve/answer_cache.h"
#include "util/timer.h"

namespace hydra::serve {

/// Thread-safe request-level metrics. Latencies land in a ring buffer of
/// fixed capacity — percentiles describe the most recent `ring_capacity`
/// queries, which is what an operator watching a live daemon wants (the
/// counters remain whole-lifetime).
class ServerMetrics {
 public:
  explicit ServerMetrics(size_t ring_capacity = 4096);

  ServerMetrics(const ServerMetrics&) = delete;
  ServerMetrics& operator=(const ServerMetrics&) = delete;

  /// One answered query: wall seconds from admission to response written,
  /// the query's stats ledger (merged into the lifetime ledger), and
  /// whether the answer came from the cache.
  void RecordQuery(double latency_seconds, const core::SearchStats& stats,
                   bool cache_hit);
  /// One request refused by admission control (RESOURCE_EXHAUSTED).
  void RecordRejected();
  /// One request refused by semantic validation (BAD_QUERY).
  void RecordBadQuery();
  /// One connection dropped for malformed bytes (bad magic/CRC/version).
  void RecordMalformed();
  void RecordPing();
  void RecordStatsRequest();

  /// Consistent copy of everything, taken under the one metrics lock.
  struct Snapshot {
    double uptime_seconds = 0.0;
    uint64_t completed = 0;
    uint64_t rejected = 0;
    uint64_t bad_queries = 0;
    uint64_t malformed = 0;
    uint64_t pings = 0;
    uint64_t stats_requests = 0;
    uint64_t cache_hits = 0;
    /// completed / uptime_seconds (0 while nothing completed).
    double qps = 0.0;
    /// Tail percentiles over the latency ring, in milliseconds.
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    /// Samples currently in the ring (<= ring capacity).
    size_t latency_samples = 0;
    /// Every answered query's ledger, accumulated.
    core::SearchStats merged;
  };
  Snapshot snapshot() const;

 private:
  const size_t ring_capacity_;
  mutable std::mutex mutex_;
  util::WallTimer uptime_;
  std::vector<double> ring_;
  size_t ring_next_ = 0;
  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t bad_queries_ = 0;
  uint64_t malformed_ = 0;
  uint64_t pings_ = 0;
  uint64_t stats_requests_ = 0;
  uint64_t cache_hits_ = 0;
  core::SearchStats merged_;
};

/// Renders the STATS reply document: uptime, QPS, latency percentiles,
/// request counters, cache counters with the derived hit rate, and the
/// merged SearchStats ledger keyed by the served method's name.
std::string StatsJson(const ServerMetrics::Snapshot& snapshot,
                      const AnswerCache::Counters& cache,
                      std::string_view method_name);

}  // namespace hydra::serve

#endif  // HYDRA_SERVE_METRICS_H_
