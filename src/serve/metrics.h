// Observability of the serve daemon: monotonic request counters, the
// merged SearchStats ledger of every query answered, and a log-scale
// latency histogram (obs::Histogram) from which the STATS reply derives
// bucketed p50/p95/p99 — whole-lifetime, with a documented quantile error
// bound (<= 18.9% relative, one histogram bucket ratio) instead of the
// sampling noise of the old fixed-size latency ring. One instance per
// Server, written by every worker, snapshotted by STATS; observations are
// mirrored into the process-wide obs::Registry ("serve.latency_seconds")
// so `hydra stats --full` sees them too.
#ifndef HYDRA_SERVE_METRICS_H_
#define HYDRA_SERVE_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/search_stats.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "serve/answer_cache.h"
#include "util/timer.h"

namespace hydra::serve {

/// Thread-safe request-level metrics. Counters and the merged ledger are
/// guarded by one mutex; the latency histogram is lock-free and
/// whole-lifetime (bucket counts never decay — an operator watching a
/// live daemon reads rates by diffing snapshots).
class ServerMetrics {
 public:
  ServerMetrics();

  ServerMetrics(const ServerMetrics&) = delete;
  ServerMetrics& operator=(const ServerMetrics&) = delete;

  /// One answered query: wall seconds from admission to response written,
  /// the query's stats ledger (merged into the lifetime ledger), and
  /// whether the answer came from the cache. Also publishes the ledger
  /// and the latency into the process-wide obs::Registry.
  void RecordQuery(double latency_seconds, const core::SearchStats& stats,
                   bool cache_hit);
  /// One request refused by admission control (RESOURCE_EXHAUSTED).
  void RecordRejected();
  /// One request refused by semantic validation (BAD_QUERY).
  void RecordBadQuery();
  /// One connection dropped for malformed bytes (bad magic/CRC/version).
  void RecordMalformed();
  void RecordPing();
  void RecordStatsRequest();

  /// Consistent copy of everything, taken under the one metrics lock
  /// (histogram reads are relaxed — bucketed quantiles tolerate a
  /// concurrent observation landing mid-snapshot).
  struct Snapshot {
    double uptime_seconds = 0.0;
    uint64_t completed = 0;
    uint64_t rejected = 0;
    uint64_t bad_queries = 0;
    uint64_t malformed = 0;
    uint64_t pings = 0;
    uint64_t stats_requests = 0;
    uint64_t cache_hits = 0;
    /// completed / uptime_seconds (0 while nothing completed).
    double qps = 0.0;
    /// Bucketed tail percentiles of the latency histogram, milliseconds.
    /// Each is the upper bound of its quantile's bucket: never an
    /// underestimate, at most 2^(1/4)-1 ≈ 18.9% relative over.
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    /// Total latency observations (whole daemon lifetime).
    uint64_t latency_samples = 0;
    /// Non-empty histogram buckets: parallel arrays of upper bounds
    /// (seconds) and observation counts.
    std::vector<double> bucket_bounds;
    std::vector<uint64_t> bucket_counts;
    /// Every answered query's ledger, accumulated.
    core::SearchStats merged;
  };
  Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  util::WallTimer uptime_;
  /// Admission-to-answer latency, seconds. Owned per server (snapshot
  /// percentiles describe *this* daemon); mirrored into the registry.
  obs::Histogram latency_;
  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t bad_queries_ = 0;
  uint64_t malformed_ = 0;
  uint64_t pings_ = 0;
  uint64_t stats_requests_ = 0;
  uint64_t cache_hits_ = 0;
  core::SearchStats merged_;
};

/// Renders the STATS reply document: uptime, QPS, bucketed latency
/// percentiles with the histogram's non-empty buckets and error bound,
/// request counters, cache counters with the derived hit rate, the merged
/// SearchStats ledger keyed by the served method's name, the slow-query
/// flight records, and the process-wide metrics registry.
std::string StatsJson(const ServerMetrics::Snapshot& snapshot,
                      const AnswerCache::Counters& cache,
                      std::string_view method_name,
                      const std::vector<obs::FlightRecord>& slow_queries);

}  // namespace hydra::serve

#endif  // HYDRA_SERVE_METRICS_H_
