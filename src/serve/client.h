// Client side of the serve protocol: a blocking loopback TCP connection
// speaking serve/protocol.h frames. Used by the `hydra ping`/`hydra
// queryd` CLI modes, the integration tests, the smoke script, and the
// throughput bench — every consumer drives the daemon through this one
// real socket path.
#ifndef HYDRA_SERVE_CLIENT_H_
#define HYDRA_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "serve/protocol.h"
#include "util/status.h"

namespace hydra::serve {

/// One synchronous connection to a serve daemon. Connect once, then issue
/// requests; each request writes one frame and blocks for the matching
/// response frame. Not thread-safe — one Client per thread (connections
/// are cheap on loopback).
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to 127.0.0.1:`port` (`host` must be a numeric IPv4 address;
  /// the daemon only ever listens on loopback).
  util::Status Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Round-trips a kPing frame.
  util::Status Ping();

  /// Executes one query on the daemon. A kAnswer response fills `*out`;
  /// an error frame becomes an error Status of the form
  /// "<code-name>: <server message>", with the machine-readable code in
  /// `*error_code` when non-null (kInternal for transport failures).
  util::Status Query(const QueryRequest& request, AnswerResponse* out,
                     ErrorCode* error_code = nullptr);

  /// Fetches the daemon's STATS document (JSON).
  util::Status Stats(std::string* json);

  /// Fetches the daemon's full metrics-registry dump (plain text, one
  /// metric per line — the `hydra stats --full` document).
  util::Status StatsFull(std::string* text);

 private:
  util::Status SendFrame(const Frame& frame);
  util::Status ReceiveFrame(Frame* frame);
  /// Sends `request`, receives one frame, maps error frames to Status.
  util::Status RoundTrip(const Frame& request, FrameType expected,
                         Frame* response, ErrorCode* error_code);

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace hydra::serve

#endif  // HYDRA_SERVE_CLIENT_H_
