// Wire protocol of the `hydra serve` daemon: length-prefixed, CRC-checked
// binary frames over a byte stream (TCP), following the io/index_codec
// discipline — versioned magic, explicit little-endian encoding, checksum
// per frame, and sticky-error typed reads so malformed bytes always
// surface as a clean error (an error *frame* on the wire, a util::Status
// in process), never a crash.
//
// Frame layout (all integers little-endian):
//
//     u32 magic    "HYSv"            — stream sanity; a non-hydra peer is
//                                      detected at the first frame
//     u32 version  kProtocolVersion  — readers refuse other versions with
//                                      a kUnsupportedVersion error frame
//     u8  type     FrameType
//     u32 size     payload bytes, <= kMaxFramePayload (oversized-length
//                                      guard: no allocation past the cap)
//     ...          payload (size bytes)
//     u32 crc      CRC-32 of the payload (io::Crc32)
//
// Request payloads are encoded/decoded by the typed helpers below; every
// decoder is total — any byte sequence yields either a valid value or an
// error, with bounds-checked reads throughout.
#ifndef HYDRA_SERVE_PROTOCOL_H_
#define HYDRA_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/method.h"
#include "core/query_spec.h"
#include "util/status.h"

namespace hydra::serve {

/// Protocol version; bumped on any incompatible frame or payload change.
/// A peer speaking another version gets a kUnsupportedVersion error frame.
/// v2: QueryRequest carries a client request id (trace-context
/// propagation into the daemon's flight recorder and spans), and the
/// kStatsFull request returns the metrics-registry text dump.
inline constexpr uint32_t kProtocolVersion = 2;

/// Frame magic: "HYSv" as little-endian bytes.
inline constexpr uint32_t kFrameMagic = 0x76535948;

/// Payload size cap (16 MiB): large enough for any realistic query vector
/// or answer, small enough that a corrupt length field cannot drive an
/// allocation-of-terabytes. Enforced by encoder and decoder alike.
inline constexpr size_t kMaxFramePayload = size_t{1} << 24;

/// Frame kinds. Requests (client -> server): kPing, kQuery, kStats,
/// kStatsFull. Responses (server -> client): kPong, kAnswer, kStatsReply,
/// kError. kStatsFull answers with a kStatsReply whose document is the
/// metrics registry's plain-text dump (`hydra stats --full`), not JSON.
enum class FrameType : uint8_t {
  kPing = 1,
  kQuery = 2,
  kStats = 3,
  kPong = 4,
  kAnswer = 5,
  kStatsReply = 6,
  kError = 7,
  kStatsFull = 8,
};

/// Error classes a server can answer with (the payload of a kError frame).
enum class ErrorCode : uint32_t {
  /// Frame or payload failed to decode (bad magic, CRC mismatch,
  /// truncated payload, unknown frame type, trailing bytes).
  kMalformed = 1,
  /// The peer speaks a protocol version this build does not.
  kUnsupportedVersion = 2,
  /// Admission control refused the request: the in-flight queue is full
  /// (or the server is draining for shutdown). The explicit backpressure
  /// signal — retry later rather than queue unboundedly.
  kResourceExhausted = 3,
  /// The request decoded but is semantically invalid for this server: bad
  /// spec parameters, wrong query length, a mode the method's traits do
  /// not advertise.
  kBadQuery = 4,
  /// Server-side failure unrelated to the request bytes.
  kInternal = 5,
};

/// Short stable name of an error code ("malformed", "resource-exhausted",
/// ...), used in client-side Status messages and logs.
const char* ErrorCodeName(ErrorCode code);

/// One decoded frame: its type plus the raw payload bytes.
struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Serializes a frame (header + payload + CRC). CHECK-aborts on a payload
/// over kMaxFramePayload — building an oversized frame is a programmer
/// error; decoding one is handled gracefully.
std::string EncodeFrame(const Frame& frame);

/// Incremental frame decoder: feed stream bytes as they arrive, pop frames
/// as they complete. The first malformed header or checksum latches an
/// error (kBadVersion for a version mismatch, kError otherwise) — framing
/// is unrecoverable once the stream desynchronizes, so the connection
/// should answer with an error frame and close.
class FrameDecoder {
 public:
  enum class Next : uint8_t {
    kFrame,     ///< *frame was filled with one complete frame.
    kNeedMore,  ///< No complete frame buffered; feed more bytes.
    kError,     ///< Stream is broken; see error_code() / error().
  };

  /// Appends `n` stream bytes to the internal buffer.
  void Feed(const void* bytes, size_t n);

  /// Pops the next complete frame into `*frame`. Once kError is returned
  /// every later call returns kError again (sticky, like IndexReader).
  Next Pop(Frame* frame);

  /// The error class a server should answer with (kMalformed or
  /// kUnsupportedVersion); meaningful only after Pop returned kError.
  ErrorCode error_code() const { return error_code_; }
  /// Human-readable description of the stream error.
  const std::string& error() const { return error_; }

 private:
  void Fail(ErrorCode code, std::string message);

  std::string buffer_;
  size_t cursor_ = 0;  // first unconsumed byte of buffer_
  bool failed_ = false;
  ErrorCode error_code_ = ErrorCode::kMalformed;
  std::string error_;
};

/// A query request: the full QuerySpec (minus query_threads — traversal
/// width is server policy, not client input) plus the query vector and a
/// client-chosen request id, echoed through the daemon's flight recorder
/// and trace spans so a slow query in STATS can be matched to the client
/// call that issued it (0 = unidentified).
struct QueryRequest {
  core::QuerySpec spec;
  std::vector<core::Value> query;
  uint64_t request_id = 0;
};

/// A query answer: the QueryResult (neighbors + stats digest, which carries
/// the delivered mode and budget outcome) plus whether the answer came from
/// the server's answer cache.
struct AnswerResponse {
  core::QueryResult result;
  bool cached = false;
};

/// An error answer; see ErrorCode.
struct ErrorResponse {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Payload codecs. Encoders are total (CHECK only on programmer-error
/// sizes); decoders return an error Status on any malformed payload and
/// never abort or over-read.
std::string EncodeQueryRequest(const QueryRequest& request);
util::Status DecodeQueryRequest(std::string_view payload, QueryRequest* out);

std::string EncodeAnswerResponse(const AnswerResponse& response);
util::Status DecodeAnswerResponse(std::string_view payload,
                                  AnswerResponse* out);

std::string EncodeErrorResponse(const ErrorResponse& response);
util::Status DecodeErrorResponse(std::string_view payload, ErrorResponse* out);

/// Stats replies carry an opaque JSON document (see serve::Server).
std::string EncodeStatsResponse(std::string_view json);
util::Status DecodeStatsResponse(std::string_view payload, std::string* json);

/// Semantic validation of a decoded request against the serving method's
/// traits and the collection's series length: mirrors every CHECK of
/// core::SearchMethod::Execute plus the CLI's traits-derived refusals
/// (unsupported mode, inert leaf budget), as clean errors — a malformed or
/// unsupported request must answer with a kBadQuery frame, never abort the
/// daemon.
util::Status ValidateRequest(const QueryRequest& request,
                             const core::MethodTraits& traits,
                             size_t series_length);

}  // namespace hydra::serve

#endif  // HYDRA_SERVE_PROTOCOL_H_
