// Implementation of the serve daemon's metrics and STATS rendering.
#include "serve/metrics.h"

#include <algorithm>

#include "util/json.h"
#include "util/stats.h"

namespace hydra::serve {

ServerMetrics::ServerMetrics(size_t ring_capacity)
    : ring_capacity_(std::max<size_t>(1, ring_capacity)) {
  ring_.reserve(ring_capacity_);
}

void ServerMetrics::RecordQuery(double latency_seconds,
                                const core::SearchStats& stats,
                                bool cache_hit) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++completed_;
  if (cache_hit) ++cache_hits_;
  merged_.Add(stats);
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(latency_seconds);
  } else {
    ring_[ring_next_] = latency_seconds;
  }
  ring_next_ = (ring_next_ + 1) % ring_capacity_;
}

void ServerMetrics::RecordRejected() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++rejected_;
}

void ServerMetrics::RecordBadQuery() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++bad_queries_;
}

void ServerMetrics::RecordMalformed() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++malformed_;
}

void ServerMetrics::RecordPing() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++pings_;
}

void ServerMetrics::RecordStatsRequest() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_requests_;
}

ServerMetrics::Snapshot ServerMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.uptime_seconds = uptime_.Seconds();
  s.completed = completed_;
  s.rejected = rejected_;
  s.bad_queries = bad_queries_;
  s.malformed = malformed_;
  s.pings = pings_;
  s.stats_requests = stats_requests_;
  s.cache_hits = cache_hits_;
  if (s.uptime_seconds > 0.0) {
    s.qps = static_cast<double>(completed_) / s.uptime_seconds;
  }
  const util::Percentiles tail = util::TailPercentiles(ring_);
  s.p50_ms = tail.p50 * 1e3;
  s.p95_ms = tail.p95 * 1e3;
  s.p99_ms = tail.p99 * 1e3;
  s.latency_samples = ring_.size();
  s.merged = merged_;
  return s;
}

std::string StatsJson(const ServerMetrics::Snapshot& snapshot,
                      const AnswerCache::Counters& cache,
                      std::string_view method_name) {
  util::JsonWriter json;
  json.BeginObject();
  json.Key("uptime_seconds");
  json.Double(snapshot.uptime_seconds);
  json.Key("qps");
  json.Double(snapshot.qps);

  json.Key("requests");
  json.BeginObject();
  json.Key("completed");
  json.Uint(snapshot.completed);
  json.Key("rejected");
  json.Uint(snapshot.rejected);
  json.Key("bad_queries");
  json.Uint(snapshot.bad_queries);
  json.Key("malformed");
  json.Uint(snapshot.malformed);
  json.Key("pings");
  json.Uint(snapshot.pings);
  json.Key("stats");
  json.Uint(snapshot.stats_requests);
  json.EndObject();

  json.Key("latency");
  json.BeginObject();
  json.Key("p50_ms");
  json.Double(snapshot.p50_ms);
  json.Key("p95_ms");
  json.Double(snapshot.p95_ms);
  json.Key("p99_ms");
  json.Double(snapshot.p99_ms);
  json.Key("samples");
  json.Uint(snapshot.latency_samples);
  json.EndObject();

  json.Key("cache");
  json.BeginObject();
  json.Key("hits");
  json.Uint(cache.hits);
  json.Key("misses");
  json.Uint(cache.misses);
  json.Key("insertions");
  json.Uint(cache.insertions);
  json.Key("evictions");
  json.Uint(cache.evictions);
  json.Key("entries");
  json.Uint(cache.entries);
  json.Key("bytes");
  json.Uint(cache.bytes);
  json.Key("budget_bytes");
  json.Uint(cache.budget_bytes);
  json.Key("hit_rate");
  const uint64_t lookups = cache.hits + cache.misses;
  json.Double(lookups == 0
                  ? 0.0
                  : static_cast<double>(cache.hits) /
                        static_cast<double>(lookups));
  json.EndObject();

  // The merged per-method ledger; one served method today, but the key
  // structure already accommodates a multi-method daemon.
  json.Key("search_stats");
  json.BeginObject();
  json.Key(method_name);
  json.BeginObject();
  json.Key("distance_computations");
  json.Int(snapshot.merged.distance_computations);
  json.Key("raw_series_examined");
  json.Int(snapshot.merged.raw_series_examined);
  json.Key("lower_bound_computations");
  json.Int(snapshot.merged.lower_bound_computations);
  json.Key("nodes_visited");
  json.Int(snapshot.merged.nodes_visited);
  json.Key("sequential_reads");
  json.Int(snapshot.merged.sequential_reads);
  json.Key("random_seeks");
  json.Int(snapshot.merged.random_seeks);
  json.Key("bytes_read");
  json.Int(snapshot.merged.bytes_read);
  // Measured storage-layer counters (buffer pool); all zero when the
  // daemon serves the in-RAM backend. Kept beside the modeled counters
  // above but never mixed with them.
  json.Key("pool_hits");
  json.Int(snapshot.merged.pool_hits);
  json.Key("pool_misses");
  json.Int(snapshot.merged.pool_misses);
  json.Key("pool_evictions");
  json.Int(snapshot.merged.pool_evictions);
  json.Key("pool_pread_calls");
  json.Int(snapshot.merged.pool_pread_calls);
  json.Key("pool_bytes_read");
  json.Int(snapshot.merged.pool_bytes_read);
  json.Key("cpu_seconds");
  json.Double(snapshot.merged.cpu_seconds);
  json.EndObject();
  json.EndObject();

  json.EndObject();
  return json.str();
}

}  // namespace hydra::serve
