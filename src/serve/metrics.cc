// Implementation of the serve daemon's metrics and STATS rendering.
#include "serve/metrics.h"

#include <algorithm>

#include "util/json.h"

namespace hydra::serve {

ServerMetrics::ServerMetrics() = default;

void ServerMetrics::RecordQuery(double latency_seconds,
                                const core::SearchStats& stats,
                                bool cache_hit) {
  latency_.Observe(latency_seconds);
  // Mirror into the process-wide registry so `hydra stats --full` (and
  // the STATS "metrics" section) report serve latency alongside every
  // other registered metric.
  obs::Registry::Get()
      .GetHistogram("serve.latency_seconds")
      ->Observe(latency_seconds);
  obs::PublishSearchStats(stats, "serve");
  std::lock_guard<std::mutex> lock(mutex_);
  ++completed_;
  if (cache_hit) ++cache_hits_;
  merged_.Add(stats);
}

void ServerMetrics::RecordRejected() {
  obs::Registry::Get().GetCounter("serve.rejected")->Add(1);
  std::lock_guard<std::mutex> lock(mutex_);
  ++rejected_;
}

void ServerMetrics::RecordBadQuery() {
  obs::Registry::Get().GetCounter("serve.bad_queries")->Add(1);
  std::lock_guard<std::mutex> lock(mutex_);
  ++bad_queries_;
}

void ServerMetrics::RecordMalformed() {
  obs::Registry::Get().GetCounter("serve.malformed")->Add(1);
  std::lock_guard<std::mutex> lock(mutex_);
  ++malformed_;
}

void ServerMetrics::RecordPing() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++pings_;
}

void ServerMetrics::RecordStatsRequest() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_requests_;
}

ServerMetrics::Snapshot ServerMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.uptime_seconds = uptime_.Seconds();
  s.completed = completed_;
  s.rejected = rejected_;
  s.bad_queries = bad_queries_;
  s.malformed = malformed_;
  s.pings = pings_;
  s.stats_requests = stats_requests_;
  s.cache_hits = cache_hits_;
  if (s.uptime_seconds > 0.0) {
    s.qps = static_cast<double>(completed_) / s.uptime_seconds;
  }
  s.latency_samples = latency_.count();
  if (s.latency_samples > 0) {
    s.p50_ms = latency_.Quantile(0.50) * 1e3;
    s.p95_ms = latency_.Quantile(0.95) * 1e3;
    s.p99_ms = latency_.Quantile(0.99) * 1e3;
  }
  for (size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    const uint64_t count = latency_.bucket_count(i);
    if (count == 0) continue;
    s.bucket_bounds.push_back(obs::Histogram::BucketBound(i));
    s.bucket_counts.push_back(count);
  }
  s.merged = merged_;
  return s;
}

std::string StatsJson(const ServerMetrics::Snapshot& snapshot,
                      const AnswerCache::Counters& cache,
                      std::string_view method_name,
                      const std::vector<obs::FlightRecord>& slow_queries) {
  util::JsonWriter json;
  json.BeginObject();
  json.Key("uptime_seconds");
  json.Double(snapshot.uptime_seconds);
  json.Key("qps");
  json.Double(snapshot.qps);

  json.Key("requests");
  json.BeginObject();
  json.Key("completed");
  json.Uint(snapshot.completed);
  json.Key("rejected");
  json.Uint(snapshot.rejected);
  json.Key("bad_queries");
  json.Uint(snapshot.bad_queries);
  json.Key("malformed");
  json.Uint(snapshot.malformed);
  json.Key("pings");
  json.Uint(snapshot.pings);
  json.Key("stats");
  json.Uint(snapshot.stats_requests);
  json.EndObject();

  json.Key("latency");
  json.BeginObject();
  json.Key("p50_ms");
  json.Double(snapshot.p50_ms);
  json.Key("p95_ms");
  json.Double(snapshot.p95_ms);
  json.Key("p99_ms");
  json.Double(snapshot.p99_ms);
  json.Key("samples");
  json.Uint(snapshot.latency_samples);
  // Percentiles are bucketed: each is its bucket's upper bound, so it
  // never underestimates and overestimates by at most this relative
  // factor (the histogram's bucket growth ratio, 2^(1/4) - 1).
  json.Key("quantile_error_bound");
  json.Double(0.189207);
  json.Key("bucket_bounds_seconds");
  json.BeginArray();
  for (const double bound : snapshot.bucket_bounds) json.Double(bound);
  json.EndArray();
  json.Key("bucket_counts");
  json.BeginArray();
  for (const uint64_t count : snapshot.bucket_counts) json.Uint(count);
  json.EndArray();
  json.EndObject();

  json.Key("cache");
  json.BeginObject();
  json.Key("hits");
  json.Uint(cache.hits);
  json.Key("misses");
  json.Uint(cache.misses);
  json.Key("insertions");
  json.Uint(cache.insertions);
  json.Key("evictions");
  json.Uint(cache.evictions);
  json.Key("entries");
  json.Uint(cache.entries);
  json.Key("bytes");
  json.Uint(cache.bytes);
  json.Key("budget_bytes");
  json.Uint(cache.budget_bytes);
  json.Key("hit_rate");
  const uint64_t lookups = cache.hits + cache.misses;
  json.Double(lookups == 0
                  ? 0.0
                  : static_cast<double>(cache.hits) /
                        static_cast<double>(lookups));
  json.EndObject();

  // The merged per-method ledger; one served method today, but the key
  // structure already accommodates a multi-method daemon.
  json.Key("search_stats");
  json.BeginObject();
  json.Key(method_name);
  json.BeginObject();
  json.Key("distance_computations");
  json.Int(snapshot.merged.distance_computations);
  json.Key("raw_series_examined");
  json.Int(snapshot.merged.raw_series_examined);
  json.Key("lower_bound_computations");
  json.Int(snapshot.merged.lower_bound_computations);
  json.Key("nodes_visited");
  json.Int(snapshot.merged.nodes_visited);
  json.Key("sequential_reads");
  json.Int(snapshot.merged.sequential_reads);
  json.Key("random_seeks");
  json.Int(snapshot.merged.random_seeks);
  json.Key("bytes_read");
  json.Int(snapshot.merged.bytes_read);
  // Measured storage-layer counters (buffer pool); all zero when the
  // daemon serves the in-RAM backend. Kept beside the modeled counters
  // above but never mixed with them.
  json.Key("pool_hits");
  json.Int(snapshot.merged.pool_hits);
  json.Key("pool_misses");
  json.Int(snapshot.merged.pool_misses);
  json.Key("pool_evictions");
  json.Int(snapshot.merged.pool_evictions);
  json.Key("pool_pread_calls");
  json.Int(snapshot.merged.pool_pread_calls);
  json.Key("pool_bytes_read");
  json.Int(snapshot.merged.pool_bytes_read);
  json.Key("cpu_seconds");
  json.Double(snapshot.merged.cpu_seconds);
  json.EndObject();
  json.EndObject();

  // Flight recorder: the slowest requests the daemon has answered, with
  // their per-phase wall-time breakdown.
  json.Key("slow_queries");
  json.BeginArray();
  for (const obs::FlightRecord& record : slow_queries) {
    json.BeginObject();
    json.Key("request_id");
    json.Uint(record.request_id);
    json.Key("query");
    json.String(record.label);
    json.Key("total_ms");
    json.Double(record.total_seconds * 1e3);
    json.Key("cache_hit");
    json.Bool(record.cache_hit);
    json.Key("phases");
    json.BeginObject();
    for (const obs::FlightPhase& phase : record.phases) {
      json.Key(phase.name);
      json.Double(phase.seconds * 1e3);
    }
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();

  // The process-wide metrics registry (counters/gauges/histograms).
  json.Key("metrics");
  obs::Registry::Get().AppendJson(&json);

  json.EndObject();
  return json.str();
}

}  // namespace hydra::serve
