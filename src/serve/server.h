// The `hydra serve` daemon core: a TCP listener on loopback that answers
// framed protocol requests (serve/protocol.h) against one opened
// SearchMethod. Request flow:
//
//     acceptor thread ──> one reader thread per connection
//         reader: frame decode -> validate -> admission control
//             admitted  ──> util::ThreadPool worker: cache lookup ->
//                           Execute -> cache insert -> answer frame
//             refused   ──> RESOURCE_EXHAUSTED error frame, immediately
//     STATS / PING answered inline by the reader (cheap, never queued)
//
// Admission control bounds the in-flight query count (`max_inflight`):
// overload is answered with an explicit rejection frame instead of
// unbounded queueing, so client-observed latency stays honest. Shutdown
// drains: admitted queries finish, new ones are refused, then sockets
// close. Reload swaps the served method atomically without dropping the
// listener — in-flight queries keep the old index alive via shared_ptr.
#ifndef HYDRA_SERVE_SERVER_H_
#define HYDRA_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dataset.h"
#include "core/method.h"
#include "io/index_codec.h"
#include "obs/flight_recorder.h"
#include "serve/answer_cache.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hydra::serve {

struct ServerOptions {
  /// TCP port to listen on (loopback only); 0 picks an ephemeral port,
  /// readable from Server::port() after Start.
  uint16_t port = 0;
  /// Worker threads executing admitted queries.
  size_t serve_threads = 1;
  /// Answer-cache byte budget; 0 disables caching.
  size_t cache_bytes = size_t{64} << 20;
  /// Admission-control bound: queries admitted (queued or executing) at
  /// once. Arrivals beyond it get a RESOURCE_EXHAUSTED frame.
  size_t max_inflight = 64;
  /// Test seam: when set, workers call it right before executing a query
  /// (after admission). Tests block it on a latch to hold queries
  /// in-flight deterministically and observe admission rejections.
  std::function<void()> execute_hook;
};

/// One serving daemon. Start binds and spawns threads; Shutdown (or the
/// destructor) drains and joins everything. Not restartable — one Server
/// per listening lifetime.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:port and starts serving `method` (already built or
  /// opened) over `data`. `data` must outlive the server; `method` is
  /// shared so Reload can swap it while old queries finish. Returns an
  /// error Status when the socket cannot be bound (port in use, ...).
  util::Status Start(std::shared_ptr<core::SearchMethod> method,
                     const core::Dataset* data);

  /// The port actually bound (== options.port unless that was 0).
  uint16_t port() const { return port_; }

  /// Swaps the served method (same dataset) without dropping the
  /// listener: the SIGHUP re-open path. In-flight queries finish on the
  /// instance they started with; the answer cache stays valid because the
  /// dataset fingerprint — the cache key's dataset component — is
  /// unchanged and exact answers do not depend on the index instance.
  void Reload(std::shared_ptr<core::SearchMethod> method);

  /// Graceful drain: stop admitting, close the listener, wait for
  /// in-flight queries to finish, close connections, join all threads.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  /// The STATS reply document (also what a kStats frame answers with).
  std::string StatsJson() const;

  AnswerCache::Counters cache_counters() const { return cache_.counters(); }

 private:
  /// One client connection: the socket plus a write lock so worker
  /// responses and reader error frames never interleave mid-frame.
  /// Closing the fd is left to the destructor — the last holder
  /// (reader thread or a still-running worker task) closes it.
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    const int fd;
    std::mutex write_mutex;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  /// Reader-exit cleanup: EOF the peer and forget the connection (a
  /// long-lived daemon must not hold dead sockets until shutdown).
  void DropConnection(const std::shared_ptr<Connection>& conn);
  /// Handles one decoded frame; false closes the connection.
  bool HandleFrame(const std::shared_ptr<Connection>& conn,
                   const Frame& frame);
  void HandleQuery(const std::shared_ptr<Connection>& conn,
                   const Frame& frame);
  /// Runs one admitted query on a pool worker and answers it.
  /// `decode_seconds` is the reader-side decode+validate wall time, folded
  /// into the request's flight record as its first phase.
  void ExecuteQuery(const std::shared_ptr<Connection>& conn,
                    const QueryRequest& request, double admitted_at,
                    double decode_seconds);
  void SendFrame(const std::shared_ptr<Connection>& conn, const Frame& frame);
  void SendError(const std::shared_ptr<Connection>& conn, ErrorCode code,
                 const std::string& message);

  const ServerOptions options_;
  AnswerCache cache_;
  ServerMetrics metrics_;
  /// Slow-query log: phase-timed records of the slowest requests answered,
  /// surfaced in the STATS reply ("slow_queries").
  obs::FlightRecorder recorder_;

  const core::Dataset* data_ = nullptr;
  io::DatasetFingerprint fingerprint_;
  core::MethodTraits traits_;
  std::string method_name_;
  /// The served index; swapped whole by Reload. Workers snapshot the
  /// shared_ptr under method_mutex_ and execute on their copy.
  std::shared_ptr<core::SearchMethod> method_;
  mutable std::mutex method_mutex_;
  /// Serializes Execute for methods whose traits lack concurrent_queries
  /// (ADS+ mutates its structure while answering).
  std::mutex exec_mutex_;

  std::unique_ptr<util::ThreadPool> pool_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  bool started_ = false;

  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;

  std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  size_t inflight_ = 0;
  bool stopping_ = false;

  /// Wall clock since Start, for admission-to-answer latency stamps.
  util::WallTimer clock_;
};

}  // namespace hydra::serve

#endif  // HYDRA_SERVE_SERVER_H_
