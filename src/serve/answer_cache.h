// LRU answer cache of the serve daemon: repeated/trending queries — the
// defining trait of million-user traffic — are answered from memory instead
// of re-traversing the index. Keyed on (dataset fingerprint, canonicalized
// QuerySpec, query-vector bytes), so a hit is an *exact* key match (full
// bytes compared, never just a hash) and can simply replay the stored
// QueryResult. Exactness rule: only exact-mode, unbudgeted answers are
// cacheable — approximate and budgeted answers depend on traversal state
// and visit order, so those modes bypass the cache entirely (Cacheable).
#ifndef HYDRA_SERVE_ANSWER_CACHE_H_
#define HYDRA_SERVE_ANSWER_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/method.h"
#include "core/query_spec.h"
#include "io/index_codec.h"

namespace hydra::serve {

/// Thread-safe byte-budgeted LRU map from query key to QueryResult.
///
/// Eviction is by least-recently-used under a byte budget: every entry is
/// charged its key bytes plus its neighbor payload plus a fixed bookkeeping
/// overhead, and inserts evict from the cold end until the new entry fits.
/// An entry larger than the whole budget is not inserted at all (it would
/// evict everything for a single answer). A zero budget disables the cache
/// (lookups miss, inserts drop).
class AnswerCache {
 public:
  explicit AnswerCache(size_t budget_bytes) : budget_(budget_bytes) {}

  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// The exactness-only rule: true iff answers to `spec` may be cached —
  /// exact mode, no execution budgets (approximate/budgeted answers are
  /// not functions of the key alone).
  static bool Cacheable(const core::QuerySpec& spec) {
    return spec.mode == core::QualityMode::kExact && !spec.has_budget();
  }

  /// Canonical cache key: dataset fingerprint + the spec fields that
  /// determine an exact answer (kind, then k or radius — epsilon/delta/
  /// budgets/query_threads are canonicalized away; Cacheable already
  /// excludes the specs where they matter) + the raw query bytes. Two
  /// specs that must produce identical exact answers map to one key.
  static std::string Key(const io::DatasetFingerprint& fingerprint,
                         const core::QuerySpec& spec,
                         core::SeriesView query);

  /// On hit: copies the stored result into `*out`, refreshes the entry's
  /// recency, and counts a hit. On miss: counts a miss.
  bool Lookup(const std::string& key, core::QueryResult* out);

  /// Inserts (or refreshes) `key -> result`, evicting cold entries until
  /// the byte budget holds. No-op (beyond counters) when the entry alone
  /// exceeds the budget.
  void Insert(const std::string& key, const core::QueryResult& result);

  /// Monotonic counters plus current occupancy, for STATS and tests.
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
    size_t budget_bytes = 0;
  };
  Counters counters() const;

 private:
  struct Entry {
    core::QueryResult result;
    size_t bytes = 0;
    /// Position in lru_ (front = hottest).
    std::list<const std::string*>::iterator lru_pos;
  };

  /// Bytes charged to an entry: key + neighbor payload + fixed overhead
  /// for the map node, list node, and result bookkeeping.
  static size_t EntryBytes(const std::string& key,
                           const core::QueryResult& result);

  void EvictColdest();

  const size_t budget_;
  mutable std::mutex mutex_;
  /// Keys point into map_ nodes (stable addresses in unordered_map).
  std::list<const std::string*> lru_;
  std::unordered_map<std::string, Entry> map_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace hydra::serve

#endif  // HYDRA_SERVE_ANSWER_CACHE_H_
