// Implementation of the serve daemon core. All socket I/O is plain POSIX
// on loopback; every syscall failure path degrades to closing the one
// affected connection, never to taking the daemon down.
#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/timer.h"

namespace hydra::serve {
namespace {

// MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE in the daemon; the
// write error is handled at the call site (by dropping the connection).
bool WriteAll(int fd, const char* bytes, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, bytes + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

// Short human-readable request label for the slow-query log: enough to
// recognize the query shape ("knn k=10 exact", "range r=2.5") without
// echoing the vector itself.
std::string RequestLabel(const QueryRequest& request) {
  const core::QuerySpec& spec = request.spec;
  if (spec.kind == core::QueryKind::kRange) {
    return "range r=" + std::to_string(spec.radius);
  }
  std::string label = "knn k=" + std::to_string(spec.k);
  switch (spec.mode) {
    case core::QualityMode::kExact:
      label += " exact";
      break;
    case core::QualityMode::kNgApprox:
      label += " ng";
      break;
    case core::QualityMode::kEpsilon:
      label += " eps=" + std::to_string(spec.epsilon);
      break;
    case core::QualityMode::kDeltaEpsilon:
      label += " eps=" + std::to_string(spec.epsilon) +
               " delta=" + std::to_string(spec.delta);
      break;
  }
  if (spec.has_budget()) label += " budgeted";
  return label;
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cache_bytes) {}

Server::~Server() { Shutdown(); }

util::Status Server::Start(std::shared_ptr<core::SearchMethod> method,
                           const core::Dataset* data) {
  HYDRA_CHECK_MSG(!started_, "Server::Start called twice");
  HYDRA_CHECK_MSG(method != nullptr && method->built(),
                  "Server::Start needs a built (or opened) method");
  HYDRA_CHECK_MSG(data != nullptr, "Server::Start needs the dataset");
  data_ = data;
  fingerprint_ = io::DatasetFingerprint::Of(*data);
  traits_ = method->traits();
  method_name_ = method->name();
  method_ = std::move(method);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::Status::Error(std::string("socket: ") +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const util::Status err = util::Status::Error(
        "bind 127.0.0.1:" + std::to_string(options_.port) + ": " +
        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return err;
  }
  if (::listen(listen_fd_, 64) != 0) {
    const util::Status err =
        util::Status::Error(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return err;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  pool_ = std::make_unique<util::ThreadPool>(
      std::max<size_t>(1, options_.serve_threads));
  acceptor_ = std::thread(&Server::AcceptLoop, this);
  started_ = true;
  return util::Status::Ok();
}

void Server::Reload(std::shared_ptr<core::SearchMethod> method) {
  HYDRA_CHECK_MSG(method != nullptr && method->built(),
                  "Server::Reload needs a built (or opened) method");
  HYDRA_CHECK_MSG(method->name() == method_name_,
                  "Server::Reload must keep the served method kind");
  std::lock_guard<std::mutex> lock(method_mutex_);
  method_ = std::move(method);
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    if (stopping_) return;  // idempotent
    stopping_ = true;
  }
  if (!started_) return;
  // 1. Close the listener: the acceptor's accept() fails and it exits.
  //    shutdown() first so a blocked accept wakes on every platform.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  acceptor_.join();
  // 2. Drain: admitted queries finish (new ones are refused because
  //    stopping_ is set); their answer frames still go out because the
  //    connection sockets are untouched so far.
  {
    std::unique_lock<std::mutex> lock(inflight_mutex_);
    inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
  }
  // 3. Wake every reader blocked in recv, then join them. The Connection
  //    destructor closes each fd once its last holder lets go.
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& conn : connections_) {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (std::thread& reader : readers_) reader.join();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    connections_.clear();
  }
  // 4. The pool's queue is empty (inflight drained); destroy it.
  pool_.reset();
}

std::string Server::StatsJson() const {
  return serve::StatsJson(metrics_.snapshot(), cache_.counters(),
                          method_name_, recorder_.Snapshot());
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (shutdown) or broken — stop accepting
    }
    std::lock_guard<std::mutex> lock(conns_mutex_);
    {
      std::lock_guard<std::mutex> inflight_lock(inflight_mutex_);
      if (stopping_) {
        ::close(fd);
        return;
      }
    }
    auto conn = std::make_shared<Connection>(fd);
    connections_.push_back(conn);
    readers_.emplace_back(&Server::ReaderLoop, this, conn);
  }
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  FrameDecoder decoder;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {  // peer closed (or Shutdown woke us)
      DropConnection(conn);
      return;
    }
    decoder.Feed(buf, static_cast<size_t>(n));
    for (;;) {
      Frame frame;
      const FrameDecoder::Next next = decoder.Pop(&frame);
      if (next == FrameDecoder::Next::kNeedMore) break;
      if (next == FrameDecoder::Next::kError) {
        // Malformed bytes (or a foreign/mismatched peer): answer with a
        // clean error frame and drop the connection — framing cannot be
        // resynchronized once broken.
        metrics_.RecordMalformed();
        SendError(conn, decoder.error_code(), decoder.error());
        DropConnection(conn);
        return;
      }
      if (!HandleFrame(conn, frame)) {
        DropConnection(conn);
        return;
      }
    }
  }
}

void Server::DropConnection(const std::shared_ptr<Connection>& conn) {
  // Signal EOF to the peer and forget the connection, so a long-lived
  // daemon does not accumulate dead sockets until shutdown. The fd itself
  // closes when the last holder (this reader, or a worker still writing
  // its answer) releases the shared_ptr.
  ::shutdown(conn->fd, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(conns_mutex_);
  std::erase(connections_, conn);
}

bool Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         const Frame& frame) {
  switch (frame.type) {
    case FrameType::kPing:
      metrics_.RecordPing();
      SendFrame(conn, Frame{FrameType::kPong, ""});
      return true;
    case FrameType::kStats:
      metrics_.RecordStatsRequest();
      SendFrame(conn,
                Frame{FrameType::kStatsReply, EncodeStatsResponse(StatsJson())});
      return true;
    case FrameType::kStatsFull:
      // The full process-wide metrics registry as plain text (`hydra
      // stats --full`), alongside — not replacing — the JSON kStats.
      metrics_.RecordStatsRequest();
      SendFrame(conn, Frame{FrameType::kStatsReply,
                            EncodeStatsResponse(
                                obs::Registry::Get().TextDump())});
      return true;
    case FrameType::kQuery:
      HandleQuery(conn, frame);
      return true;
    default:
      // A response frame type arriving at the server: the peer is
      // confused; tell it and drop the connection.
      metrics_.RecordMalformed();
      SendError(conn, ErrorCode::kMalformed,
                "unexpected frame type for a request");
      return false;
  }
}

void Server::HandleQuery(const std::shared_ptr<Connection>& conn,
                         const Frame& frame) {
  // Phase clock for the flight record: decode + validate + admission run
  // on the reader thread, before the worker takes over.
  util::WallTimer decode_timer;
  QueryRequest request;
  const util::Status decoded = DecodeQueryRequest(frame.payload, &request);
  if (!decoded.ok()) {
    metrics_.RecordMalformed();
    SendError(conn, ErrorCode::kMalformed, decoded.message());
    return;
  }
  const util::Status valid =
      ValidateRequest(request, traits_, data_->length());
  if (!valid.ok()) {
    metrics_.RecordBadQuery();
    SendError(conn, ErrorCode::kBadQuery, valid.message());
    return;
  }
  // Admission control: bound the admitted (queued + executing) queries.
  // Refusal is immediate and explicit — the client can back off — instead
  // of the unbounded queueing that turns overload into unbounded latency.
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    if (stopping_) {
      metrics_.RecordRejected();
      SendError(conn, ErrorCode::kResourceExhausted, "server shutting down");
      return;
    }
    if (inflight_ >= options_.max_inflight) {
      metrics_.RecordRejected();
      SendError(conn, ErrorCode::kResourceExhausted,
                "in-flight queue full (max " +
                    std::to_string(options_.max_inflight) +
                    "); retry later");
      return;
    }
    ++inflight_;
  }
  const double admitted_at = clock_.Seconds();
  const double decode_seconds = decode_timer.Seconds();
  pool_->Submit([this, conn, request = std::move(request), admitted_at,
                 decode_seconds] {
    ExecuteQuery(conn, request, admitted_at, decode_seconds);
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    --inflight_;
    inflight_cv_.notify_all();
  });
}

void Server::ExecuteQuery(const std::shared_ptr<Connection>& conn,
                          const QueryRequest& request, double admitted_at,
                          double decode_seconds) {
  // Trace span + flight record for this request; the client's request id
  // ties both back to the call that issued it.
  HYDRA_OBS_SPAN_ARG("serve_request", "request_id",
                     static_cast<int64_t>(request.request_id));
  const double queue_wait = clock_.Seconds() - admitted_at;
  if (options_.execute_hook) options_.execute_hook();
  const bool cacheable = AnswerCache::Cacheable(request.spec);
  std::string key;
  AnswerResponse response;
  bool hit = false;
  util::WallTimer phase_timer;
  if (cacheable) {
    key = AnswerCache::Key(fingerprint_, request.spec, request.query);
    hit = cache_.Lookup(key, &response.result);
  }
  const double cache_lookup = phase_timer.Seconds();
  phase_timer.Reset();
  if (!hit) {
    // Snapshot the shared_ptr so a concurrent Reload cannot free the
    // index under this query.
    std::shared_ptr<core::SearchMethod> method;
    {
      std::lock_guard<std::mutex> lock(method_mutex_);
      method = method_;
    }
    if (traits_.concurrent_queries) {
      response.result = method->Execute(request.query, request.spec);
    } else {
      std::lock_guard<std::mutex> lock(exec_mutex_);
      response.result = method->Execute(request.query, request.spec);
    }
    if (cacheable) cache_.Insert(key, response.result);
  }
  const double execute = phase_timer.Seconds();
  phase_timer.Reset();
  response.cached = hit;
  SendFrame(conn,
            Frame{FrameType::kAnswer, EncodeAnswerResponse(response)});
  const double encode_write = phase_timer.Seconds();
  const double latency = clock_.Seconds() - admitted_at;
  metrics_.RecordQuery(latency, response.result.stats, hit);
  recorder_.Record(obs::FlightRecord{
      request.request_id,
      RequestLabel(request),
      decode_seconds + latency,
      hit,
      {{"decode", decode_seconds},
       {"queue_wait", queue_wait},
       {"cache_lookup", cache_lookup},
       {"execute", execute},
       {"encode_write", encode_write}}});
}

void Server::SendFrame(const std::shared_ptr<Connection>& conn,
                       const Frame& frame) {
  const std::string wire = EncodeFrame(frame);
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  // A failed write means the peer is gone; its reader will see the close
  // and clean up — nothing to do here.
  WriteAll(conn->fd, wire.data(), wire.size());
}

void Server::SendError(const std::shared_ptr<Connection>& conn,
                       ErrorCode code, const std::string& message) {
  SendFrame(conn, Frame{FrameType::kError,
                        EncodeErrorResponse(ErrorResponse{code, message})});
}

}  // namespace hydra::serve
