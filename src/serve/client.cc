// Implementation of the serve protocol client.
#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hydra::serve {

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status Client::Connect(const std::string& host, uint16_t port) {
  if (connected()) return util::Status::Error("already connected");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::Status::Error("'" + host +
                               "' is not a numeric IPv4 address");
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return util::Status::Error(std::string("socket: ") +
                               std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const util::Status err = util::Status::Error(
        "connect " + host + ":" + std::to_string(port) + ": " +
        std::strerror(errno));
    Close();
    return err;
  }
  return util::Status::Ok();
}

util::Status Client::SendFrame(const Frame& frame) {
  if (!connected()) return util::Status::Error("not connected");
  const std::string wire = EncodeFrame(frame);
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t w =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      const util::Status err = util::Status::Error(
          std::string("send: ") + std::strerror(errno));
      Close();
      return err;
    }
    sent += static_cast<size_t>(w);
  }
  return util::Status::Ok();
}

util::Status Client::ReceiveFrame(Frame* frame) {
  char buf[4096];
  for (;;) {
    switch (decoder_.Pop(frame)) {
      case FrameDecoder::Next::kFrame:
        return util::Status::Ok();
      case FrameDecoder::Next::kError: {
        const util::Status err = util::Status::Error(
            "protocol error from server: " + decoder_.error());
        Close();
        return err;
      }
      case FrameDecoder::Next::kNeedMore:
        break;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      const util::Status err = util::Status::Error(
          std::string("recv: ") + std::strerror(errno));
      Close();
      return err;
    }
    if (n == 0) {
      Close();
      return util::Status::Error("server closed the connection");
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
  }
}

util::Status Client::RoundTrip(const Frame& request, FrameType expected,
                               Frame* response, ErrorCode* error_code) {
  if (error_code != nullptr) *error_code = ErrorCode::kInternal;
  util::Status s = SendFrame(request);
  if (!s.ok()) return s;
  s = ReceiveFrame(response);
  if (!s.ok()) return s;
  if (response->type == FrameType::kError) {
    ErrorResponse error;
    const util::Status decoded =
        DecodeErrorResponse(response->payload, &error);
    if (!decoded.ok()) {
      Close();
      return decoded;
    }
    if (error_code != nullptr) *error_code = error.code;
    return util::Status::Error(std::string(ErrorCodeName(error.code)) +
                               ": " + error.message);
  }
  if (response->type != expected) {
    Close();
    return util::Status::Error("unexpected response frame type");
  }
  return util::Status::Ok();
}

util::Status Client::Ping() {
  Frame response;
  return RoundTrip(Frame{FrameType::kPing, ""}, FrameType::kPong, &response,
                   nullptr);
}

util::Status Client::Query(const QueryRequest& request, AnswerResponse* out,
                           ErrorCode* error_code) {
  Frame response;
  const util::Status s =
      RoundTrip(Frame{FrameType::kQuery, EncodeQueryRequest(request)},
                FrameType::kAnswer, &response, error_code);
  if (!s.ok()) return s;
  return DecodeAnswerResponse(response.payload, out);
}

util::Status Client::Stats(std::string* json) {
  Frame response;
  const util::Status s = RoundTrip(Frame{FrameType::kStats, ""},
                                   FrameType::kStatsReply, &response, nullptr);
  if (!s.ok()) return s;
  return DecodeStatsResponse(response.payload, json);
}

util::Status Client::StatsFull(std::string* text) {
  Frame response;
  const util::Status s = RoundTrip(Frame{FrameType::kStatsFull, ""},
                                   FrameType::kStatsReply, &response, nullptr);
  if (!s.ok()) return s;
  return DecodeStatsResponse(response.payload, text);
}

}  // namespace hydra::serve
