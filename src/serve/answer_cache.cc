// Implementation of the serve daemon's byte-budgeted LRU answer cache.
#include "serve/answer_cache.h"

#include <cstring>
#include <utility>

#include "core/knn.h"
#include "core/types.h"

namespace hydra::serve {
namespace {

// Appends `value` to `*key` as raw little-endian bytes. The key is an
// opaque byte string compared for equality only, so raw memcpy of fixed
// -width fields is canonical enough — every field is appended at a fixed
// offset for a given kind, and variable-length data (the query vector)
// comes last.
template <typename T>
void AppendRaw(std::string* key, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  key->append(bytes, sizeof(T));
}

}  // namespace

std::string AnswerCache::Key(const io::DatasetFingerprint& fingerprint,
                             const core::QuerySpec& spec,
                             core::SeriesView query) {
  std::string key;
  key.reserve(3 * sizeof(uint64_t) + 2 * sizeof(uint64_t) +
              query.size() * sizeof(core::Value));
  AppendRaw(&key, fingerprint.count);
  AppendRaw(&key, fingerprint.length);
  AppendRaw(&key, fingerprint.bytes);
  AppendRaw(&key, static_cast<uint8_t>(spec.kind));
  if (spec.kind == core::QueryKind::kKnn) {
    AppendRaw(&key, static_cast<uint64_t>(spec.k));
  } else {
    AppendRaw(&key, spec.radius);
  }
  key.append(reinterpret_cast<const char*>(query.data()),
             query.size() * sizeof(core::Value));
  return key;
}

size_t AnswerCache::EntryBytes(const std::string& key,
                               const core::QueryResult& result) {
  // Fixed overhead approximates the unordered_map node, the list node,
  // the Entry struct (QueryResult's SearchStats ledger included), and the
  // vector headers — close enough for budget arithmetic; the budget is a
  // sizing knob, not an accounting invariant.
  constexpr size_t kOverhead = 160;
  return kOverhead + key.size() +
         result.neighbors.size() * sizeof(core::Neighbor);
}

bool AnswerCache::Lookup(const std::string& key, core::QueryResult* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  *out = it->second.result;
  ++hits_;
  return true;
}

void AnswerCache::Insert(const std::string& key,
                         const core::QueryResult& result) {
  const size_t entry_bytes = EntryBytes(key, result);
  std::lock_guard<std::mutex> lock(mutex_);
  if (entry_bytes > budget_) return;
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh: replace the stored answer and recency (a concurrent miss
    // may Insert the same key twice; both answers are exact, so keep the
    // newer one).
    bytes_ -= it->second.bytes;
    it->second.result = result;
    it->second.bytes = entry_bytes;
    bytes_ += entry_bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  } else {
    while (bytes_ + entry_bytes > budget_) EvictColdest();
    auto [pos, inserted] =
        map_.emplace(key, Entry{result, entry_bytes, lru_.end()});
    lru_.push_front(&pos->first);
    pos->second.lru_pos = lru_.begin();
    bytes_ += entry_bytes;
    ++insertions_;
  }
  // Eviction above can only have been for the new entry; the refresh path
  // may now be over budget when the new answer is larger than the old.
  while (bytes_ > budget_) EvictColdest();
}

void AnswerCache::EvictColdest() {
  const std::string* coldest = lru_.back();
  auto it = map_.find(*coldest);
  bytes_ -= it->second.bytes;
  lru_.pop_back();
  map_.erase(it);
  ++evictions_;
}

AnswerCache::Counters AnswerCache::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Counters{.hits = hits_,
                  .misses = misses_,
                  .insertions = insertions_,
                  .evictions = evictions_,
                  .entries = map_.size(),
                  .bytes = bytes_,
                  .budget_bytes = budget_};
}

}  // namespace hydra::serve
