// Unified metrics registry: named counters, gauges, and fixed-bucket
// log-scale histograms, shared by the serve daemon's STATS document and
// the CLI's `hydra stats --full` text dump.
//
// Objects are created on first use and owned by the registry for the
// process lifetime, so callers hold raw pointers and update them with
// lock-free atomics; the registry mutex guards only name lookup and
// snapshotting. Histograms use a fixed logarithmic grid (first bound
// 1 microsecond, ratio 2^(1/4) per bucket, 128 buckets ≈ up to 71 min),
// so a bucketed quantile overestimates the true quantile by at most one
// bucket ratio: relative error <= 2^(1/4) - 1 ≈ 18.9%.
#ifndef HYDRA_OBS_METRICS_H_
#define HYDRA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/search_stats.h"

namespace hydra::util {
class JsonWriter;
}  // namespace hydra::util

namespace hydra::obs {

/// Monotonic counter. Lock-free; relaxed ordering (metrics are
/// statistical, not synchronization).
class Counter {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed log-scale histogram for durations in seconds.
///
/// Bucket i covers (bound(i-1), bound(i)] with bound(i) =
/// kFirstBound * kGrowth^i; values <= kFirstBound land in bucket 0 and
/// values beyond the last bound clamp into the final bucket (recorded,
/// never dropped). Quantile() returns the upper bound of the bucket
/// holding the target rank, so it never underestimates and overestimates
/// by at most kGrowth - 1 ≈ 18.9% relative (plus clamping at the ends).
class Histogram {
 public:
  static constexpr size_t kBuckets = 128;
  static constexpr double kFirstBound = 1e-6;  // seconds

  /// Upper bound of bucket `index`, in seconds.
  static double BucketBound(size_t index);
  /// The bucket a value lands in (clamped to [0, kBuckets)).
  static size_t BucketIndex(double value);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  /// Bucketed quantile, q in [0, 1]; 0 when the histogram is empty.
  double Quantile(double q) const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Process-wide name -> metric map. Names are dotted lowercase paths
/// ("serve.latency_seconds", "query.pool_misses"). A name is one kind
/// forever — asking for an existing name as a different kind CHECK-aborts
/// (metric registration is programmer-controlled, not user input).
class Registry {
 public:
  static Registry& Get();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Human-readable dump, one metric per line, sorted by name; histograms
  /// list count/sum/bucketed p50/p95/p99 plus their non-empty buckets.
  std::string TextDump() const;

  /// Writes the registry as the *value* of a pending key: an object with
  /// "counters", "gauges", and "histograms" sections.
  void AppendJson(util::JsonWriter* json) const;

  /// Drops every registered metric. Tests only — outstanding pointers
  /// from earlier GetCounter/... calls dangle after this.
  void ResetForTest();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Folds one query's SearchStats ledger into registry counters named
/// `<prefix>.<counter>` (e.g. "query.distance_computations"), so CLI runs
/// and the serve daemon publish through the same registry.
void PublishSearchStats(const core::SearchStats& stats,
                        const std::string& prefix);

}  // namespace hydra::obs

#endif  // HYDRA_OBS_METRICS_H_
