// Serve flight recorder: keeps the top-N slowest requests with their
// per-phase wall-time breakdown (decode → admission wait → cache lookup →
// execute → encode/write) so an operator can ask a live daemon "what were
// the worst queries and where did their time go" via STATS — no tracer
// required (phases are timed with plain WallTimers on the request path).
#ifndef HYDRA_OBS_FLIGHT_RECORDER_H_
#define HYDRA_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hydra::obs {

/// One timed phase of a request. `name` must be a static-lifetime string
/// (the request path uses literals).
struct FlightPhase {
  const char* name = nullptr;
  double seconds = 0.0;
};

/// One completed request: the client-propagated request id, a compact
/// human label of the query (k, mode, budgets), the end-to-end latency,
/// and the phase breakdown in request order.
struct FlightRecord {
  uint64_t request_id = 0;
  std::string label;
  double total_seconds = 0.0;
  bool cache_hit = false;
  std::vector<FlightPhase> phases;
};

/// Thread-safe top-N-by-latency log. Bounded: Record keeps the `keep`
/// slowest requests seen so far and discards the rest, so memory is O(N)
/// regardless of traffic.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t keep = 8);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(FlightRecord record);

  /// The retained records, slowest first.
  std::vector<FlightRecord> Snapshot() const;

  size_t keep() const { return keep_; }

 private:
  const size_t keep_;
  mutable std::mutex mutex_;
  std::vector<FlightRecord> records_;  // kept sorted, slowest first
};

}  // namespace hydra::obs

#endif  // HYDRA_OBS_FLIGHT_RECORDER_H_
