// Implementation of the metrics registry: histogram bucket math, the
// text dump, and the JSON section shared with the serve STATS document.
#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/json.h"

namespace hydra::obs {

double Histogram::BucketBound(size_t index) {
  // bound(i) = kFirstBound * 2^(i/4); exp2 keeps the grid exact enough
  // that BucketIndex(BucketBound(i)) == i (verified by unit test).
  return kFirstBound * std::exp2(static_cast<double>(index) / 4.0);
}

size_t Histogram::BucketIndex(double value) {
  if (!(value > kFirstBound)) return 0;  // also catches NaN and negatives
  // Smallest i with bound(i) >= value: i = ceil(4 * log2(value / first)).
  const double exact = 4.0 * std::log2(value / kFirstBound);
  double index = std::ceil(exact);
  // log2 rounding can land exactly on a boundary and tip it up one
  // bucket; nudge values within one ulp-scale epsilon back down.
  if (index - exact > 1.0 - 1e-9 &&
      BucketBound(static_cast<size_t>(index) - 1) >= value) {
    index -= 1.0;
  }
  if (index >= static_cast<double>(kBuckets)) return kBuckets - 1;
  return static_cast<size_t>(index);
}

void Histogram::Observe(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based; ceil so q=0.5 over 2
  // samples picks the first.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += bucket_count(i);
    if (cumulative >= rank) return BucketBound(i);
  }
  return BucketBound(kBuckets - 1);
}

Registry& Registry::Get() {
  static Registry* registry = new Registry();  // never destroyed: metric
  return *registry;                            // pointers outlive main
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  HYDRA_CHECK_MSG(gauges_.count(name) == 0 && histograms_.count(name) == 0,
                  "metric name registered as a different kind");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  HYDRA_CHECK_MSG(counters_.count(name) == 0 && histograms_.count(name) == 0,
                  "metric name registered as a different kind");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  HYDRA_CHECK_MSG(counters_.count(name) == 0 && gauges_.count(name) == 0,
                  "metric name registered as a different kind");
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string Registry::TextDump() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << "counter " << name << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << "gauge " << name << " " << gauge->value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out << "histogram " << name << " count=" << histogram->count()
        << " sum=" << histogram->sum()
        << " p50=" << histogram->Quantile(0.50)
        << " p95=" << histogram->Quantile(0.95)
        << " p99=" << histogram->Quantile(0.99) << "\n";
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      const uint64_t count = histogram->bucket_count(i);
      if (count == 0) continue;
      out << "  le " << Histogram::BucketBound(i) << " : " << count << "\n";
    }
  }
  return out.str();
}

void Registry::AppendJson(util::JsonWriter* json) const {
  std::lock_guard<std::mutex> lock(mutex_);
  json->BeginObject();
  json->Key("counters");
  json->BeginObject();
  for (const auto& [name, counter] : counters_) {
    json->Key(name);
    json->Int(counter->value());
  }
  json->EndObject();
  json->Key("gauges");
  json->BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json->Key(name);
    json->Double(gauge->value());
  }
  json->EndObject();
  json->Key("histograms");
  json->BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json->Key(name);
    json->BeginObject();
    json->Key("count");
    json->Uint(histogram->count());
    json->Key("sum");
    json->Double(histogram->sum());
    json->Key("p50");
    json->Double(histogram->Quantile(0.50));
    json->Key("p95");
    json->Double(histogram->Quantile(0.95));
    json->Key("p99");
    json->Double(histogram->Quantile(0.99));
    // Sparse buckets: parallel arrays of non-empty upper bounds + counts.
    json->Key("bucket_bounds");
    json->BeginArray();
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (histogram->bucket_count(i) == 0) continue;
      json->Double(Histogram::BucketBound(i));
    }
    json->EndArray();
    json->Key("bucket_counts");
    json->BeginArray();
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      const uint64_t count = histogram->bucket_count(i);
      if (count == 0) continue;
      json->Uint(count);
    }
    json->EndArray();
    json->EndObject();
  }
  json->EndObject();
  json->EndObject();
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void PublishSearchStats(const core::SearchStats& stats,
                        const std::string& prefix) {
  Registry& registry = Registry::Get();
  registry.GetCounter(prefix + ".queries")->Add(1);
  registry.GetCounter(prefix + ".distance_computations")
      ->Add(stats.distance_computations);
  registry.GetCounter(prefix + ".raw_series_examined")
      ->Add(stats.raw_series_examined);
  registry.GetCounter(prefix + ".lower_bound_computations")
      ->Add(stats.lower_bound_computations);
  registry.GetCounter(prefix + ".nodes_visited")->Add(stats.nodes_visited);
  registry.GetCounter(prefix + ".sequential_reads")
      ->Add(stats.sequential_reads);
  registry.GetCounter(prefix + ".random_seeks")->Add(stats.random_seeks);
  registry.GetCounter(prefix + ".bytes_read")->Add(stats.bytes_read);
  registry.GetCounter(prefix + ".pool_hits")->Add(stats.pool_hits);
  registry.GetCounter(prefix + ".pool_misses")->Add(stats.pool_misses);
  registry.GetCounter(prefix + ".pool_evictions")->Add(stats.pool_evictions);
  registry.GetCounter(prefix + ".pool_pread_calls")
      ->Add(stats.pool_pread_calls);
  registry.GetCounter(prefix + ".pool_bytes_read")
      ->Add(stats.pool_bytes_read);
  registry.GetHistogram(prefix + ".cpu_seconds")->Observe(stats.cpu_seconds);
}

}  // namespace hydra::obs
