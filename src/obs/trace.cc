// Implementation of the span tracer: ring recording, thread registry, and
// the Chrome trace-event JSON export.
#include "obs/trace.h"

#include <algorithm>
#include <fstream>

#include "util/json.h"

namespace hydra::obs {

namespace {

// Per-thread tracer state: the ring handle (shared with the registry so
// flushes survive thread exit) and the span nesting depth. depth lives
// here, not in ObsSpan, so sibling spans on one thread see a consistent
// parent count.
struct TlsState {
  std::shared_ptr<ThreadRing> ring;
  uint32_t depth = 0;
};

thread_local TlsState tls_state;

}  // namespace

ThreadRing::ThreadRing(uint32_t tid, size_t capacity)
    : tid_(tid),
      capacity_(std::max<size_t>(1, capacity)),
      slots_(new Slot[std::max<size_t>(1, capacity)]) {}

void ThreadRing::Record(const char* name, const char* arg_name,
                        int64_t arg_value, uint64_t start_ns, uint64_t dur_ns,
                        uint32_t depth) {
  const uint64_t index = write_index_.load(std::memory_order_relaxed);
  Slot& slot = slots_[index % capacity_];
  slot.name.store(name, std::memory_order_relaxed);
  slot.arg_name.store(arg_name, std::memory_order_relaxed);
  slot.arg_value.store(arg_value, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.depth.store(depth, std::memory_order_relaxed);
  // Publish: a Collect that acquires a write index of index+1 sees every
  // field store above.
  write_index_.store(index + 1, std::memory_order_release);
}

void ThreadRing::Collect(std::vector<CollectedEvent>* out,
                         uint64_t* dropped) const {
  const uint64_t written = write_index_.load(std::memory_order_acquire);
  const uint64_t survivors = std::min<uint64_t>(written, capacity_);
  *dropped += written - survivors;
  // Oldest surviving event first.
  const uint64_t first = written - survivors;
  for (uint64_t i = first; i < written; ++i) {
    const Slot& slot = slots_[i % capacity_];
    CollectedEvent event;
    event.name = slot.name.load(std::memory_order_relaxed);
    event.arg_name = slot.arg_name.load(std::memory_order_relaxed);
    event.arg_value = slot.arg_value.load(std::memory_order_relaxed);
    event.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    event.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    event.depth = slot.depth.load(std::memory_order_relaxed);
    event.tid = tid_;
    if (event.name != nullptr) out->push_back(event);
  }
}

void ThreadRing::Clear() {
  write_index_.store(0, std::memory_order_release);
}

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // never destroyed: spans may
  return *tracer;                        // close during static teardown
}

void Tracer::Enable(size_t ring_capacity) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_capacity_ = std::max<size_t>(1, ring_capacity);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

ThreadRing* Tracer::ring() {
  if (!tls_state.ring) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto ring = std::make_shared<ThreadRing>(
        static_cast<uint32_t>(rings_.size()), ring_capacity_);
    rings_.push_back(ring);
    tls_state.ring = std::move(ring);
  }
  return tls_state.ring.get();
}

void Tracer::SetMeta(const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : meta_) {
    if (entry.first == key) {
      entry.second = std::move(value);
      return;
    }
  }
  meta_.emplace_back(key, std::move(value));
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& ring : rings_) ring->Clear();
  meta_.clear();
}

Tracer::CollectResult Tracer::Collect(std::vector<CollectedEvent>* out) const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  CollectResult result;
  const size_t before = out->size();
  for (const auto& ring : rings) ring->Collect(out, &result.dropped);
  result.events = out->size() - before;
  return result;
}

std::string Tracer::ToJson() const {
  std::vector<CollectedEvent> events;
  const CollectResult collected = Collect(&events);
  // Stable presentation: by thread, then by time. Perfetto does not
  // require ordering, but deterministic output makes the trace diffable.
  std::stable_sort(events.begin(), events.end(),
                   [](const CollectedEvent& a, const CollectedEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.start_ns < b.start_ns;
                   });

  std::vector<std::pair<std::string, std::string>> meta;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    meta = meta_;
  }

  util::JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();
  for (const CollectedEvent& event : events) {
    json.BeginObject();
    json.Key("name");
    json.String(event.name);
    json.Key("cat");
    json.String("hydra");
    json.Key("ph");
    json.String("X");  // complete event: ts + dur, nesting inferred
    json.Key("pid");
    json.Uint(1);
    json.Key("tid");
    json.Uint(event.tid);
    json.Key("ts");  // trace-event timestamps are microseconds
    json.Double(static_cast<double>(event.start_ns) / 1e3);
    json.Key("dur");
    json.Double(static_cast<double>(event.dur_ns) / 1e3);
    json.Key("args");
    json.BeginObject();
    json.Key("depth");
    json.Uint(event.depth);
    if (event.arg_name != nullptr) {
      json.Key(event.arg_name);
      json.Int(event.arg_value);
    }
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.Key("otherData");
  json.BeginObject();
  json.Key("dropped_events");
  json.Uint(collected.dropped);
  for (const auto& [key, value] : meta) {
    json.Key(key);
    json.String(value);
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

util::Status Tracer::WriteJson(const std::string& path) const {
  const std::string document = ToJson();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::Error("cannot open trace path for writing: " + path);
  }
  out << document << '\n';
  out.flush();
  if (!out) {
    return util::Status::Error("short write to trace path: " + path);
  }
  return util::Status::Ok();
}

void ObsSpan::Begin(const char* name) {
  name_ = name;
  depth_ = tls_state.depth++;
  start_ns_ = Tracer::Get().NowNs();
}

void ObsSpan::End() {
  Tracer& tracer = Tracer::Get();
  const uint64_t end_ns = tracer.NowNs();
  // Depth unwinds even if tracing was disabled mid-span; the event is
  // still recorded (it was started under an enabled tracer).
  if (tls_state.depth > 0) --tls_state.depth;
  tracer.ring()->Record(name_, arg_name_, arg_value_, start_ns_,
                        end_ns - start_ns_, depth_);
}

}  // namespace hydra::obs
