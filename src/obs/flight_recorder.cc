// Implementation of the serve flight recorder (top-N slow-query log).
#include "obs/flight_recorder.h"

#include <algorithm>
#include <utility>

namespace hydra::obs {

FlightRecorder::FlightRecorder(size_t keep) : keep_(std::max<size_t>(1, keep)) {
  records_.reserve(keep_);
}

void FlightRecorder::Record(FlightRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (records_.size() == keep_ &&
      record.total_seconds <= records_.back().total_seconds) {
    return;  // faster than every retained record
  }
  // Insert in descending latency order, then trim.
  auto pos = std::upper_bound(records_.begin(), records_.end(), record,
                              [](const FlightRecord& a, const FlightRecord& b) {
                                return a.total_seconds > b.total_seconds;
                              });
  records_.insert(pos, std::move(record));
  if (records_.size() > keep_) records_.pop_back();
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

}  // namespace hydra::obs
