// Low-overhead span tracer: per-thread ring buffers of RAII-scoped spans
// with monotonic timestamps, exported as Chrome trace-event JSON that
// Perfetto (ui.perfetto.dev) loads directly.
//
// Design contract:
//   - Disabled cost is one relaxed atomic load + branch per span site
//     (`Tracer::enabled()`); no allocation, no lock, no clock read.
//   - Enabled cost is two steady_clock reads plus six relaxed stores into
//     the calling thread's own ring slot; threads never contend on a lock
//     to record (the registry mutex is only taken once per thread, at
//     first use, to register its ring).
//   - Rings are fixed capacity and overwrite-oldest on wrap; the total
//     write index keeps counting, so the flusher reports exactly how many
//     events were dropped instead of silently truncating.
//   - Span names (and arg names) must be string literals or other
//     static-lifetime strings: the ring stores the pointer, not a copy.
//   - Flushing (`Collect`/`WriteJson`) may run concurrently with
//     recording: every slot field is individually atomic (relaxed), and
//     the write index is published with release/acquire, so readers see
//     fully-written events for every slot except possibly the single one
//     being overwritten at that instant — that one may mix fields from
//     two events but never holds an invalid pointer. In practice hydra
//     flushes at quiesce points (end of a CLI command, daemon STATS).
#ifndef HYDRA_OBS_TRACE_H_
#define HYDRA_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace hydra::obs {

/// A flushed span, plain data (see ThreadRing for the in-ring layout).
struct CollectedEvent {
  const char* name = nullptr;
  const char* arg_name = nullptr;  // nullptr when the span carries no arg
  int64_t arg_value = 0;
  uint64_t start_ns = 0;  // since the tracer epoch
  uint64_t dur_ns = 0;
  uint32_t depth = 0;  // nesting depth on the recording thread, 0 = root
  uint32_t tid = 0;    // small sequential ring id, stable per thread
};

/// One thread's span storage. Only the owning thread records; any thread
/// may Collect (see the header comment for the concurrency contract).
class ThreadRing {
 public:
  ThreadRing(uint32_t tid, size_t capacity);

  ThreadRing(const ThreadRing&) = delete;
  ThreadRing& operator=(const ThreadRing&) = delete;

  /// Records one completed span. Owning thread only.
  void Record(const char* name, const char* arg_name, int64_t arg_value,
              uint64_t start_ns, uint64_t dur_ns, uint32_t depth);

  /// Appends the ring's surviving events to `out` and adds the number of
  /// overwritten (lost) events to `*dropped`.
  void Collect(std::vector<CollectedEvent>* out, uint64_t* dropped) const;

  /// Forgets all recorded events (the drop counter restarts too).
  void Clear();

  uint32_t tid() const { return tid_; }
  size_t capacity() const { return capacity_; }

 private:
  // Field-level atomics so a concurrent flush is race-free under TSan;
  // relaxed everywhere except the write-index publish (release/acquire).
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> arg_name{nullptr};
    std::atomic<int64_t> arg_value{0};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint32_t> depth{0};
  };

  const uint32_t tid_;
  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  // Total events ever recorded; slot = index % capacity. Monotonic, so
  // dropped = max(0, written - capacity).
  std::atomic<uint64_t> write_index_{0};
};

/// Process-wide tracer. One instance (`Tracer::Get()`); disabled unless a
/// `--trace <path>` flag (or a test/bench) calls Enable().
class Tracer {
 public:
  static constexpr size_t kDefaultRingCapacity = 1 << 16;

  static Tracer& Get();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Turns recording on. `ring_capacity` applies to rings created after
  /// this call (already-registered threads keep their ring).
  void Enable(size_t ring_capacity = kDefaultRingCapacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the tracer epoch (process start of tracing use).
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// The calling thread's ring, registering it on first use.
  ThreadRing* ring();

  /// Attaches a key/value tag to the trace (emitted in "otherData"), e.g.
  /// the selected kernel dispatch set or the traced method's name.
  void SetMeta(const std::string& key, std::string value);

  /// Drops all recorded events and meta tags (rings stay registered).
  void Clear();

  struct CollectResult {
    size_t events = 0;    // events appended to `out`
    uint64_t dropped = 0; // events lost to ring wraparound, all threads
  };
  /// Gathers every thread's surviving events into `out`.
  CollectResult Collect(std::vector<CollectedEvent>* out) const;

  /// Serializes all recorded events as a Chrome trace-event JSON document
  /// (the `{"traceEvents": [...]}` object form Perfetto loads).
  std::string ToJson() const;

  /// ToJson() to a file. Returns a typed error (not a CHECK abort) when
  /// the path is unwritable.
  util::Status WriteJson(const std::string& path) const;

 private:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  std::atomic<bool> enabled_{false};
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;  // guards rings_ vector + meta_ (not slots)
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  std::vector<std::pair<std::string, std::string>> meta_;
  size_t ring_capacity_ = kDefaultRingCapacity;
};

/// RAII span: records [construction, destruction) into the calling
/// thread's ring when tracing is enabled; a single relaxed load + branch
/// otherwise. `name` (and `arg_name`) must outlive the tracer — use
/// string literals.
class ObsSpan {
 public:
  explicit ObsSpan(const char* name) : active_(Tracer::Get().enabled()) {
    if (active_) Begin(name);
  }
  ObsSpan(const char* name, const char* arg_name, int64_t arg_value)
      : active_(Tracer::Get().enabled()) {
    if (active_) {
      Begin(name);
      arg_name_ = arg_name;
      arg_value_ = arg_value;
    }
  }

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Attaches (or updates) the span's numeric argument before it closes —
  /// for counts only known at the end of the scope.
  void SetArg(const char* arg_name, int64_t value) {
    if (active_) {
      arg_name_ = arg_name;
      arg_value_ = value;
    }
  }

  ~ObsSpan() {
    if (active_) End();
  }

 private:
  void Begin(const char* name);
  void End();

  bool active_;
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  int64_t arg_value_ = 0;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace hydra::obs

// Scoped-span helpers; the variable name is line-unique so several spans
// can open in one scope.
#define HYDRA_OBS_CONCAT_INNER_(a, b) a##b
#define HYDRA_OBS_CONCAT_(a, b) HYDRA_OBS_CONCAT_INNER_(a, b)
#define HYDRA_OBS_SPAN(name) \
  ::hydra::obs::ObsSpan HYDRA_OBS_CONCAT_(hydra_obs_span_, __LINE__)(name)
#define HYDRA_OBS_SPAN_ARG(name, arg_name, arg_value)                   \
  ::hydra::obs::ObsSpan HYDRA_OBS_CONCAT_(hydra_obs_span_, __LINE__)(   \
      name, arg_name, static_cast<int64_t>(arg_value))

#endif  // HYDRA_OBS_TRACE_H_
