// Experiment harness implementing the paper's scenarios and measures
// (Section 4.2): Idx, Exact100, Idx+Exact100, Idx+Exact10K (trimmed-mean
// extrapolation), Easy-20/Hard-20, pruning ratio, and TLB.
#ifndef HYDRA_BENCH_HARNESS_H_
#define HYDRA_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "core/method.h"
#include "gen/workload.h"
#include "io/disk_model.h"
#include "util/status.h"

namespace hydra::bench {

/// Everything measured for one (method, dataset, workload) combination.
struct MethodRun {
  std::string method;
  core::BuildStats build;
  std::vector<core::SearchStats> queries;  // one ledger per query
  std::vector<double> nn_dists_sq;         // 1-NN distance per query
};

/// Builds the method on `data` and answers every workload query (k-NN).
MethodRun RunMethod(core::SearchMethod* method, const core::Dataset& data,
                    const gen::Workload& workload, size_t k = 1);

/// Answers every workload query over an already-built method, executing
/// the same QuerySpec (k-NN kinds only) for each, running up to `threads`
/// queries concurrently when the method's traits().concurrent_queries
/// allows it. Falls back to serial execution (recording the method's
/// serial_reason) otherwise, so it is safe to call for any method.
/// Results are deterministic and bit-identical to calling Execute
/// serially: per-query entries stay in workload order and the merged
/// `total` ledger accumulates in that order regardless of which thread
/// answered which query. The merged ledger's answer_mode_delivered is the
/// weakest guarantee delivered across the batch.
core::BatchKnnResult SearchKnnBatch(core::SearchMethod* method,
                                    const gen::Workload& workload,
                                    const core::QuerySpec& spec,
                                    size_t threads);

/// Legacy overload (deprecated): exact k-NN batch, equivalent to passing
/// QuerySpec::Knn(k).
core::BatchKnnResult SearchKnnBatch(core::SearchMethod* method,
                                    const gen::Workload& workload, size_t k,
                                    size_t threads);

/// Parallel counterpart of RunMethod: builds the method on `data`, then
/// answers the workload through SearchKnnBatch with `threads` workers.
/// The returned MethodRun is bit-identical (stats counters, neighbor
/// distances, query order) to the serial RunMethod for every
/// concurrent-safe method; only the measured cpu_seconds differ run to run
/// (as they do between two serial runs).
MethodRun RunMethodParallel(core::SearchMethod* method,
                            const core::Dataset& data,
                            const gen::Workload& workload, size_t k,
                            size_t threads);

/// Sharded counterpart of RunMethod: builds a shard::ShardedIndex of
/// `shards` per-shard instances of the named method over `data` (per-shard
/// builds fan out over `threads` workers) and answers every workload query
/// through the fan-out/merge path. Queries of the batch run serially —
/// with sharding, the parallelism lives *inside* each query — so the run
/// is valid for every shardable method, including serial-only ADS+. The
/// returned run's method is the container name ("Sharded[<name>]"); exact
/// answers are bit-identical to the unsharded RunMethod.
MethodRun RunMethodSharded(const std::string& method_name, size_t shards,
                           size_t threads, const core::Dataset& data,
                           const gen::Workload& workload, size_t k = 1);

/// Open-instead-of-build counterpart of RunMethodParallel: rehydrates the
/// index persisted under `index_dir` (SearchMethod::Open) and answers the
/// workload, skipping construction entirely. The returned run's
/// BuildStats carries load_seconds (measured index load time) with
/// cpu_seconds 0 — load time and build time are reported separately,
/// never mixed. Errors (missing/corrupt index, fingerprint mismatch,
/// method without persistence support) surface as a Status; nothing
/// CHECK-aborts on a bad index file.
util::Result<MethodRun> RunMethodFromIndex(core::SearchMethod* method,
                                           const std::string& index_dir,
                                           const core::Dataset& data,
                                           const gen::Workload& workload,
                                           size_t k = 1, size_t threads = 1);

/// Sum over queries of modeled total time (CPU + I/O) on `disk`.
double ExactWorkloadSeconds(const MethodRun& run, const io::DiskModel& disk);

/// The paper's Exact100 scenario: mean modeled query time scaled to a
/// 100-query workload (workloads may run fewer queries for speed).
double Exact100Seconds(const MethodRun& run, const io::DiskModel& disk);

/// The paper's 10,000-query extrapolation: drop the best and worst 5% of
/// queries (5 + 5 on the paper's 100-query workloads), multiply the mean of
/// the rest by 10,000. The trim adapts to the workload size — below 20
/// queries there is nothing to trim at 5%, so the plain mean is used.
/// CHECK-fails on an empty run (an extrapolation over zero queries is
/// meaningless, not zero seconds).
double Extrapolated10KSeconds(const MethodRun& run, const io::DiskModel& disk);

/// Modeled index construction time on `disk`.
double IndexSeconds(const MethodRun& run, const io::DiskModel& disk);

/// Mean pruning ratio over queries: 1 - raw series examined / dataset size.
double MeanPruningRatio(const MethodRun& run, size_t dataset_size);

/// Per-query pruning ratios (box-plot data).
std::vector<double> PruningRatios(const MethodRun& run, size_t dataset_size);

/// Mean modeled seconds over the queries selected by `indices`.
double MeanSecondsOver(const MethodRun& run, const io::DiskModel& disk,
                       const std::vector<size_t>& indices);

/// Indices of the `n` easiest / hardest queries by average pruning ratio
/// across the given runs (the paper's Easy-20 / Hard-20 definition).
std::vector<size_t> EasiestQueries(const std::vector<MethodRun>& runs,
                                   size_t dataset_size, size_t n);
std::vector<size_t> HardestQueries(const std::vector<MethodRun>& runs,
                                   size_t dataset_size, size_t n);

}  // namespace hydra::bench

#endif  // HYDRA_BENCH_HARNESS_H_
