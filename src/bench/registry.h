// Factory for the ten methods of the study, addressed by their paper names.
#ifndef HYDRA_BENCH_REGISTRY_H_
#define HYDRA_BENCH_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/method.h"

namespace hydra::bench {

/// Creates a method by its paper name: "ADS+", "DSTree", "iSAX2+", "SFA",
/// "UCR-Suite", "VA+file", "MASS", "Stepwise", "M-tree", "R*-tree".
/// `leaf_capacity` == 0 picks a sensible default per method (tree methods
/// use it directly; VA+file ignores it; M-tree/R*-tree use reduced values
/// per their much smaller tuned leaves).
std::unique_ptr<core::SearchMethod> CreateMethod(const std::string& name,
                                                 size_t leaf_capacity = 0);

/// All ten method names, in the paper's Table 1 order.
std::vector<std::string> AllMethodNames();

/// The six methods that survive the paper's Section 4.3.2 cut and compete
/// in the Section 4.3.3 comparison.
std::vector<std::string> BestSixNames();

/// The five index methods with summarized leaves (TLB/pruning exhibits).
std::vector<std::string> PruningMethodNames();

/// The four ng-capable trees (Table 1): they support every quality mode of
/// core::QuerySpec, including the delta-epsilon leaf-visit rule.
std::vector<std::string> NgCapableNames();

/// The seven index methods whose lower-bounding loops support
/// epsilon-approximate pruning (everything but the sequential scans).
std::vector<std::string> EpsilonCapableNames();

/// The methods whose traits advertise persistence: their index can be
/// built once (`hydra build`), persisted, and reopened by later processes
/// (Save/Open). The sequential scans are excluded — they have no index
/// structure to persist.
std::vector<std::string> PersistentCapableNames();

/// The methods whose traits advertise sharding: they can serve as the
/// per-shard components of a shard::ShardedIndex (the seven index
/// methods; the sequential scans have no index partition to build).
std::vector<std::string> ShardableNames();

/// The methods whose traits advertise intra-query parallelism: their
/// traversal runs on the shared engine and honors --query-threads (the
/// five tree methods; scans have no traversal frontier to share).
std::vector<std::string> IntraQueryCapableNames();

/// The methods whose traits advertise concurrent query answering: `hydra
/// serve` executes their queries on all --serve-threads workers at once
/// (others are served too, but with execution serialized).
std::vector<std::string> ConcurrentCapableNames();

/// Creates a sharded container over `shards` per-shard instances of the
/// named method (which must be shardable — the CLI refuses others up
/// front), fanning builds and queries out over `threads` workers (0 =
/// one per shard up to the hardware; 1 = serial). `leaf_capacity` is
/// forwarded to every per-shard CreateMethod call.
std::unique_ptr<core::SearchMethod> CreateShardedMethod(
    const std::string& name, size_t shards, size_t threads,
    size_t leaf_capacity = 0);

}  // namespace hydra::bench

#endif  // HYDRA_BENCH_REGISTRY_H_
