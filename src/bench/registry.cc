#include "bench/registry.h"

#include "shard/sharded_index.h"

#include "index/ads.h"
#include "index/dstree.h"
#include "index/isax2plus.h"
#include "index/mtree.h"
#include "index/rtree.h"
#include "index/sfatrie.h"
#include "index/vafile.h"
#include "scan/mass_scan.h"
#include "scan/stepwise.h"
#include "scan/ucr_scan.h"
#include "util/check.h"

namespace hydra::bench {

std::unique_ptr<core::SearchMethod> CreateMethod(const std::string& name,
                                                 size_t leaf_capacity) {
  const size_t leaf = leaf_capacity == 0 ? 256 : leaf_capacity;
  if (name == "ADS+") {
    index::AdsOptions o;
    o.leaf_capacity = leaf;
    o.adaptive_leaf_capacity = std::max<size_t>(8, leaf / 8);
    return std::make_unique<index::AdsPlus>(o);
  }
  if (name == "DSTree") {
    index::DsTreeOptions o;
    o.leaf_capacity = leaf;
    return std::make_unique<index::DsTree>(o);
  }
  if (name == "iSAX2+") {
    index::Isax2PlusOptions o;
    o.leaf_capacity = leaf;
    return std::make_unique<index::Isax2Plus>(o);
  }
  if (name == "SFA") {
    index::SfaTrieOptions o;
    // SFA's tuned leaf is an order of magnitude larger than the others'.
    o.leaf_capacity = leaf_capacity == 0 ? 2048 : leaf_capacity;
    return std::make_unique<index::SfaTrie>(o);
  }
  if (name == "VA+file") {
    return std::make_unique<index::VaFile>();
  }
  if (name == "UCR-Suite") {
    return std::make_unique<scan::UcrScan>();
  }
  if (name == "MASS") {
    return std::make_unique<scan::MassScan>();
  }
  if (name == "Stepwise") {
    return std::make_unique<scan::Stepwise>();
  }
  if (name == "M-tree") {
    index::MTreeOptions o;
    // The paper's tuned M-tree leaves are tiny.
    o.leaf_capacity = leaf_capacity == 0 ? 32 : leaf_capacity;
    return std::make_unique<index::MTree>(o);
  }
  if (name == "R*-tree") {
    index::RTreeOptions o;
    o.leaf_capacity = leaf_capacity == 0 ? 50 : leaf_capacity;
    return std::make_unique<index::RStarTree>(o);
  }
  HYDRA_CHECK_MSG(false, "unknown method name");
  return nullptr;
}

std::vector<std::string> AllMethodNames() {
  return {"ADS+",   "DSTree",    "iSAX2+", "M-tree",   "R*-tree",
          "SFA",    "VA+file",   "UCR-Suite", "MASS",  "Stepwise"};
}

std::vector<std::string> BestSixNames() {
  return {"ADS+", "DSTree", "iSAX2+", "SFA", "UCR-Suite", "VA+file"};
}

std::vector<std::string> PruningMethodNames() {
  return {"ADS+", "iSAX2+", "DSTree", "SFA", "VA+file"};
}

namespace {

// Derived from each method's own traits() so the lists can never drift
// from the support matrix (construction is cheap: no Build happens).
std::vector<std::string> NamesSupporting(bool core::MethodTraits::* flag) {
  std::vector<std::string> names;
  for (const std::string& name : AllMethodNames()) {
    if (CreateMethod(name)->traits().*flag) names.push_back(name);
  }
  return names;
}

}  // namespace

std::vector<std::string> NgCapableNames() {
  return NamesSupporting(&core::MethodTraits::supports_ng);
}

std::vector<std::string> EpsilonCapableNames() {
  return NamesSupporting(&core::MethodTraits::supports_epsilon);
}

std::vector<std::string> PersistentCapableNames() {
  return NamesSupporting(&core::MethodTraits::supports_persistence);
}

std::vector<std::string> ShardableNames() {
  return NamesSupporting(&core::MethodTraits::shardable);
}

std::vector<std::string> IntraQueryCapableNames() {
  return NamesSupporting(&core::MethodTraits::intra_query_parallel);
}

std::vector<std::string> ConcurrentCapableNames() {
  return NamesSupporting(&core::MethodTraits::concurrent_queries);
}

std::unique_ptr<core::SearchMethod> CreateShardedMethod(
    const std::string& name, size_t shards, size_t threads,
    size_t leaf_capacity) {
  shard::ShardedOptions options;
  options.shards = shards;
  options.threads = threads;
  return std::make_unique<shard::ShardedIndex>(
      [name, leaf_capacity] { return CreateMethod(name, leaf_capacity); },
      options);
}

}  // namespace hydra::bench
