#include "bench/harness.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <utility>

#include "bench/registry.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace hydra::bench {

MethodRun RunMethod(core::SearchMethod* method, const core::Dataset& data,
                    const gen::Workload& workload, size_t k) {
  // The serial path is the parallel path at one thread (which never
  // constructs a pool); keeping a single implementation is what makes the
  // bit-identical guarantee trivially true.
  return RunMethodParallel(method, data, workload, k, /*threads=*/1);
}

core::BatchKnnResult SearchKnnBatch(core::SearchMethod* method,
                                    const gen::Workload& workload,
                                    const core::QuerySpec& spec,
                                    size_t threads) {
  HYDRA_CHECK(method != nullptr);
  HYDRA_CHECK_MSG(threads >= 1, "SearchKnnBatch needs at least one thread");
  HYDRA_CHECK_MSG(spec.kind == core::QueryKind::kKnn,
                  "SearchKnnBatch executes k-NN specs");
  const size_t count = workload.queries.size();
  core::BatchKnnResult batch;
  batch.queries.resize(count);

  const core::MethodTraits traits = method->traits();
  if (threads > 1 && !traits.concurrent_queries) {
    batch.serial_reason = traits.serial_reason.empty()
                              ? "method does not support concurrent queries"
                              : traits.serial_reason;
  }
  // The serial branch also covers an empty workload (a pool of
  // min(threads, 0) workers would be invalid).
  if (threads <= 1 || !traits.concurrent_queries || count == 0) {
    batch.threads_used = 1;
    for (size_t q = 0; q < count; ++q) {
      batch.queries[q] = method->Execute(workload.queries[q], spec);
    }
  } else {
    // Each worker answers whole queries and writes to its own slot; no
    // state is shared between queries beyond the method's immutable index.
    // Never spawn more workers than there are queries — the extras would
    // only be created and joined idle, and threads_used reports workers
    // that actually ran.
    util::ThreadPool pool(std::min(threads, count));
    batch.threads_used = pool.size();
    pool.ParallelFor(0, count, [&](size_t q) {
      batch.queries[q] = method->Execute(workload.queries[q], spec);
    });
  }
  // Merge the per-query ledgers in workload order — deterministic no
  // matter which thread answered which query.
  for (const core::QueryResult& r : batch.queries) {
    // Budgets may legitimately truncate an answer; everything else must
    // return k (or collection-size) candidates.
    HYDRA_CHECK(!r.neighbors.empty() || spec.has_budget());
    batch.total.Add(r.stats);
  }
  return batch;
}

core::BatchKnnResult SearchKnnBatch(core::SearchMethod* method,
                                    const gen::Workload& workload, size_t k,
                                    size_t threads) {
  return SearchKnnBatch(method, workload, core::QuerySpec::Knn(k), threads);
}

namespace {

/// Folds a batch's per-query answers into the run (shared by the fresh
/// build and open-from-disk paths).
void FillRunQueries(core::BatchKnnResult batch, MethodRun* run) {
  run->queries.reserve(batch.queries.size());
  run->nn_dists_sq.reserve(batch.queries.size());
  for (core::KnnResult& r : batch.queries) {
    run->queries.push_back(r.stats);
    run->nn_dists_sq.push_back(r.neighbors.front().dist_sq);
  }
}

}  // namespace

MethodRun RunMethodParallel(core::SearchMethod* method,
                            const core::Dataset& data,
                            const gen::Workload& workload, size_t k,
                            size_t threads) {
  HYDRA_CHECK(method != nullptr);
  MethodRun run;
  run.method = method->name();
  run.build = method->Build(data);
  FillRunQueries(SearchKnnBatch(method, workload, k, threads), &run);
  return run;
}

MethodRun RunMethodSharded(const std::string& method_name, size_t shards,
                           size_t threads, const core::Dataset& data,
                           const gen::Workload& workload, size_t k) {
  const std::unique_ptr<core::SearchMethod> sharded =
      CreateShardedMethod(method_name, shards, threads);
  // threads=1 for the batch: sharded parallelism is intra-query (the
  // fan-out pool inside the container), not across queries.
  return RunMethodParallel(sharded.get(), data, workload, k, /*threads=*/1);
}

util::Result<MethodRun> RunMethodFromIndex(core::SearchMethod* method,
                                           const std::string& index_dir,
                                           const core::Dataset& data,
                                           const gen::Workload& workload,
                                           size_t k, size_t threads) {
  HYDRA_CHECK(method != nullptr);
  util::Result<core::BuildStats> opened = method->Open(index_dir, data);
  if (!opened.ok()) return opened.status();
  MethodRun run;
  run.method = method->name();
  run.build = opened.value();
  FillRunQueries(SearchKnnBatch(method, workload, k, threads), &run);
  return run;
}

double ExactWorkloadSeconds(const MethodRun& run, const io::DiskModel& disk) {
  double total = 0.0;
  for (const auto& q : run.queries) total += disk.QueryTotalSeconds(q);
  return total;
}

double Exact100Seconds(const MethodRun& run, const io::DiskModel& disk) {
  if (run.queries.empty()) return 0.0;
  return ExactWorkloadSeconds(run, disk) /
         static_cast<double>(run.queries.size()) * 100.0;
}

double Extrapolated10KSeconds(const MethodRun& run,
                              const io::DiskModel& disk) {
  HYDRA_CHECK_MSG(!run.queries.empty(),
                  "Extrapolated10KSeconds over zero queries is meaningless");
  std::vector<double> seconds(run.queries.size());
  for (size_t i = 0; i < run.queries.size(); ++i) {
    seconds[i] = disk.QueryTotalSeconds(run.queries[i]);
  }
  // The paper drops the 5 best and 5 worst of 100 — 5% per side. Keep that
  // fraction for other workload sizes; below 20 queries a 5% trim rounds
  // to nothing, so the plain mean is used (n/20 < n/2 always leaves a
  // non-empty middle, so TrimmedMean's precondition holds by construction).
  const size_t trim = seconds.size() / 20;
  const double mean =
      trim == 0 ? util::Mean(seconds) : util::TrimmedMean(seconds, trim);
  return mean * 10000.0;
}

double IndexSeconds(const MethodRun& run, const io::DiskModel& disk) {
  return disk.BuildTotalSeconds(run.build);
}

std::vector<double> PruningRatios(const MethodRun& run, size_t dataset_size) {
  std::vector<double> ratios(run.queries.size());
  for (size_t i = 0; i < run.queries.size(); ++i) {
    ratios[i] = 1.0 - static_cast<double>(run.queries[i].raw_series_examined) /
                          static_cast<double>(dataset_size);
  }
  return ratios;
}

double MeanPruningRatio(const MethodRun& run, size_t dataset_size) {
  const auto ratios = PruningRatios(run, dataset_size);
  return util::Mean(ratios);
}

double MeanSecondsOver(const MethodRun& run, const io::DiskModel& disk,
                       const std::vector<size_t>& indices) {
  if (indices.empty()) return 0.0;
  double total = 0.0;
  for (const size_t i : indices) {
    total += disk.QueryTotalSeconds(run.queries[i]);
  }
  return total / static_cast<double>(indices.size());
}

namespace {

std::vector<size_t> RankByMeanPruning(const std::vector<MethodRun>& runs,
                                      size_t dataset_size, size_t n,
                                      bool easiest) {
  HYDRA_CHECK(!runs.empty());
  const size_t queries = runs.front().queries.size();
  std::vector<double> mean_ratio(queries, 0.0);
  for (const MethodRun& run : runs) {
    HYDRA_CHECK(run.queries.size() == queries);
    const auto ratios = PruningRatios(run, dataset_size);
    for (size_t q = 0; q < queries; ++q) mean_ratio[q] += ratios[q];
  }
  std::vector<size_t> order(queries);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return easiest ? mean_ratio[a] > mean_ratio[b]
                   : mean_ratio[a] < mean_ratio[b];
  });
  order.resize(std::min(n, order.size()));
  return order;
}

}  // namespace

std::vector<size_t> EasiestQueries(const std::vector<MethodRun>& runs,
                                   size_t dataset_size, size_t n) {
  return RankByMeanPruning(runs, dataset_size, n, /*easiest=*/true);
}

std::vector<size_t> HardestQueries(const std::vector<MethodRun>& runs,
                                   size_t dataset_size, size_t n) {
  return RankByMeanPruning(runs, dataset_size, n, /*easiest=*/false);
}

}  // namespace hydra::bench
