#include "bench/harness.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/stats.h"

namespace hydra::bench {

MethodRun RunMethod(core::SearchMethod* method, const core::Dataset& data,
                    const gen::Workload& workload, size_t k) {
  HYDRA_CHECK(method != nullptr);
  MethodRun run;
  run.method = method->name();
  run.build = method->Build(data);
  run.queries.reserve(workload.queries.size());
  run.nn_dists_sq.reserve(workload.queries.size());
  for (size_t q = 0; q < workload.queries.size(); ++q) {
    core::KnnResult result = method->SearchKnn(workload.queries[q], k);
    HYDRA_CHECK(!result.neighbors.empty());
    run.queries.push_back(result.stats);
    run.nn_dists_sq.push_back(result.neighbors.front().dist_sq);
  }
  return run;
}

double ExactWorkloadSeconds(const MethodRun& run, const io::DiskModel& disk) {
  double total = 0.0;
  for (const auto& q : run.queries) total += disk.QueryTotalSeconds(q);
  return total;
}

double Exact100Seconds(const MethodRun& run, const io::DiskModel& disk) {
  if (run.queries.empty()) return 0.0;
  return ExactWorkloadSeconds(run, disk) /
         static_cast<double>(run.queries.size()) * 100.0;
}

double Extrapolated10KSeconds(const MethodRun& run,
                              const io::DiskModel& disk) {
  std::vector<double> seconds(run.queries.size());
  for (size_t i = 0; i < run.queries.size(); ++i) {
    seconds[i] = disk.QueryTotalSeconds(run.queries[i]);
  }
  // The paper drops the 5 best and 5 worst of 100; scale proportionally for
  // other workload sizes.
  const size_t trim = std::max<size_t>(1, seconds.size() / 20);
  const double mean =
      seconds.size() > 2 * trim ? util::TrimmedMean(seconds, trim)
                                : util::Mean(seconds);
  return mean * 10000.0;
}

double IndexSeconds(const MethodRun& run, const io::DiskModel& disk) {
  return disk.BuildTotalSeconds(run.build);
}

std::vector<double> PruningRatios(const MethodRun& run, size_t dataset_size) {
  std::vector<double> ratios(run.queries.size());
  for (size_t i = 0; i < run.queries.size(); ++i) {
    ratios[i] = 1.0 - static_cast<double>(run.queries[i].raw_series_examined) /
                          static_cast<double>(dataset_size);
  }
  return ratios;
}

double MeanPruningRatio(const MethodRun& run, size_t dataset_size) {
  const auto ratios = PruningRatios(run, dataset_size);
  return util::Mean(ratios);
}

double MeanSecondsOver(const MethodRun& run, const io::DiskModel& disk,
                       const std::vector<size_t>& indices) {
  if (indices.empty()) return 0.0;
  double total = 0.0;
  for (const size_t i : indices) {
    total += disk.QueryTotalSeconds(run.queries[i]);
  }
  return total / static_cast<double>(indices.size());
}

namespace {

std::vector<size_t> RankByMeanPruning(const std::vector<MethodRun>& runs,
                                      size_t dataset_size, size_t n,
                                      bool easiest) {
  HYDRA_CHECK(!runs.empty());
  const size_t queries = runs.front().queries.size();
  std::vector<double> mean_ratio(queries, 0.0);
  for (const MethodRun& run : runs) {
    HYDRA_CHECK(run.queries.size() == queries);
    const auto ratios = PruningRatios(run, dataset_size);
    for (size_t q = 0; q < queries; ++q) mean_ratio[q] += ratios[q];
  }
  std::vector<size_t> order(queries);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return easiest ? mean_ratio[a] > mean_ratio[b]
                   : mean_ratio[a] < mean_ratio[b];
  });
  order.resize(std::min(n, order.size()));
  return order;
}

}  // namespace

std::vector<size_t> EasiestQueries(const std::vector<MethodRun>& runs,
                                   size_t dataset_size, size_t n) {
  return RankByMeanPruning(runs, dataset_size, n, /*easiest=*/true);
}

std::vector<size_t> HardestQueries(const std::vector<MethodRun>& runs,
                                   size_t dataset_size, size_t n) {
  return RankByMeanPruning(runs, dataset_size, n, /*easiest=*/false);
}

}  // namespace hydra::bench
