// Instrumentation counters shared by all methods: the paper's measures
// (Section 4.2) are computed from these.
#ifndef HYDRA_CORE_SEARCH_STATS_H_
#define HYDRA_CORE_SEARCH_STATS_H_

#include <algorithm>
#include <cstdint>

namespace hydra::core {

/// Quality guarantee of a query answer, declared from strongest to weakest
/// so that merging ledgers can keep the weakest guarantee delivered:
///   kExact        — the true answer (Definition 1 of the paper).
///   kEpsilon      — every distance within (1+epsilon) of the truth
///                   (Definition 5; deterministic bound).
///   kDeltaEpsilon — the epsilon bound holds with probability >= delta
///                   (Definition 6; probabilistic bound).
///   kNgApprox     — no guarantee (Definition 7: one-path descent, or any
///                   answer truncated by an execution budget).
enum class QualityMode : uint8_t {
  kExact = 0,
  kEpsilon = 1,
  kDeltaEpsilon = 2,
  kNgApprox = 3,
};

/// Short stable name of a mode ("exact", "epsilon", ...), used by the CLI
/// flags and the honest-fallback messages.
constexpr const char* QualityModeName(QualityMode mode) {
  switch (mode) {
    case QualityMode::kExact:
      return "exact";
    case QualityMode::kEpsilon:
      return "epsilon";
    case QualityMode::kDeltaEpsilon:
      return "delta-epsilon";
    case QualityMode::kNgApprox:
      return "ng";
  }
  return "unknown";
}

/// Per-query measurement ledger. Sequential reads and random seeks follow
/// the paper's definitions: one random disk access corresponds to one leaf
/// access for tree indexes, and to one skip for skip-sequential methods
/// (ADS+, VA+file) and multi-step refinement (Stepwise).
///
/// Each query owns its ledger, so concurrent queries never share one; the
/// batch engine merges per-query ledgers afterwards, in workload order.
/// Two kinds of seconds exist in hydra: `cpu_seconds` here is *measured*
/// wall-clock compute time, while I/O seconds are *modeled* from the
/// counters by io::DiskModel (the paper's datasets are disk-resident; ours
/// are memory-resident with charged I/O).
struct SearchStats {
  /// Full-resolution distance evaluations started (including abandoned
  /// ones). Dimensionless count.
  int64_t distance_computations = 0;
  /// Raw series fetched for refinement; the pruning ratio is
  /// 1 - raw_series_examined / dataset_size. Dimensionless count.
  int64_t raw_series_examined = 0;
  /// Lower-bound evaluations against summaries or nodes.
  int64_t lower_bound_computations = 0;
  /// Index nodes visited (internal + leaf).
  int64_t nodes_visited = 0;
  /// Series read without an intervening seek.
  int64_t sequential_reads = 0;
  /// Random disk accesses (seeks).
  int64_t random_seeks = 0;
  /// Bytes fetched from the simulated raw/leaf/approximation files.
  int64_t bytes_read = 0;
  /// *Measured* buffer-pool counters (storage::BufferPool): raw-series
  /// verification reads served from an already-resident page (hits) vs.
  /// reads that had to pread a page in from the data file (misses). These
  /// count real I/O the process performed, never modeled I/O — they stay
  /// zero on the in-RAM backend and must never be mixed with the modeled
  /// sequential_reads/random_seeks/bytes_read above (io::DiskModel converts
  /// only the modeled counters to seconds).
  int64_t pool_hits = 0;
  int64_t pool_misses = 0;
  /// Resident pages dropped to make room for a missed page.
  int64_t pool_evictions = 0;
  /// pread(2) calls issued by pool page fetches (one per miss).
  int64_t pool_pread_calls = 0;
  /// Bytes actually transferred by those pread calls.
  int64_t pool_bytes_read = 0;
  /// *Measured* wall-clock compute seconds of the query. Excludes modeled
  /// I/O time (io::DiskModel derives that from the counters above).
  double cpu_seconds = 0.0;
  /// Guarantee actually delivered for this answer — set by
  /// SearchMethod::Execute, never by the traversal drivers. Differs from
  /// the requested mode when the method does not support it (honest
  /// fallback) or when a budget truncated the search (no guarantee left).
  QualityMode answer_mode_delivered = QualityMode::kExact;
  /// True when an explicit QuerySpec budget (max_visited_leaves /
  /// max_raw_series) stopped the traversal before it finished.
  bool budget_exhausted = false;

  /// Accumulates `other` into this ledger (all counters and cpu_seconds).
  /// The delivered mode merges to the *weakest* guarantee of the two and
  /// budget_exhausted to "any budget fired", so a batch ledger reports the
  /// guarantee that holds for every query of the batch.
  void Add(const SearchStats& other) {
    distance_computations += other.distance_computations;
    raw_series_examined += other.raw_series_examined;
    lower_bound_computations += other.lower_bound_computations;
    nodes_visited += other.nodes_visited;
    sequential_reads += other.sequential_reads;
    random_seeks += other.random_seeks;
    bytes_read += other.bytes_read;
    pool_hits += other.pool_hits;
    pool_misses += other.pool_misses;
    pool_evictions += other.pool_evictions;
    pool_pread_calls += other.pool_pread_calls;
    pool_bytes_read += other.pool_bytes_read;
    cpu_seconds += other.cpu_seconds;
    answer_mode_delivered =
        std::max(answer_mode_delivered, other.answer_mode_delivered);
    budget_exhausted = budget_exhausted || other.budget_exhausted;
  }
};

/// Index-construction ledger. Output time is modeled from bytes_written and
/// random_writes via io::DiskModel.
struct BuildStats {
  /// *Measured* wall-clock compute seconds of construction (modeled I/O
  /// seconds are derived separately via io::DiskModel).
  double cpu_seconds = 0.0;
  /// *Measured* wall-clock seconds spent opening a persisted index
  /// (SearchMethod::Open). 0 for a fresh Build — load time and build time
  /// are separate costs and are never mixed into one number.
  double load_seconds = 0.0;
  /// Bytes written to the simulated index/leaf files.
  int64_t bytes_written = 0;
  /// Random write seeks during construction.
  int64_t random_writes = 0;
  /// Bytes read from the raw file during construction (bulk loading reads
  /// the collection once; some methods read it twice).
  int64_t bytes_read = 0;
  /// Random read seeks during construction.
  int64_t random_reads = 0;
};

}  // namespace hydra::core

#endif  // HYDRA_CORE_SEARCH_STATS_H_
