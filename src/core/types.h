// Fundamental value types for data series.
#ifndef HYDRA_CORE_TYPES_H_
#define HYDRA_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace hydra::core {

/// Series values are stored in single precision, as in the paper; all
/// distance accumulation is done in double precision.
using Value = float;

/// A non-owning view of one data series.
using SeriesView = std::span<const Value>;

/// Identifier of a series inside a dataset (its position).
using SeriesId = uint32_t;

}  // namespace hydra::core

#endif  // HYDRA_CORE_TYPES_H_
