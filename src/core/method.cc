#include "core/method.h"

#include "core/distance.h"
#include "util/check.h"

namespace hydra::core {

std::vector<Neighbor> BruteForceKnn(const Dataset& data, SeriesView query,
                                    size_t k) {
  HYDRA_CHECK(query.size() == data.length());
  KnnHeap heap(k);
  for (size_t i = 0; i < data.size(); ++i) {
    heap.Offer(static_cast<SeriesId>(i), SquaredEuclidean(query, data[i]));
  }
  return heap.TakeSorted();
}

}  // namespace hydra::core
