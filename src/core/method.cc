#include "core/method.h"

#include <cmath>
#include <filesystem>

#include "core/distance.h"
#include "io/index_codec.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/timer.h"

namespace hydra::core {

namespace {

/// CHECK-validates a spec once per Execute call. User input (CLI flags)
/// must be validated before a spec is built; reaching these checks is a
/// programmer error, consistent with the repo's CHECK conventions.
void CheckSpec(const QuerySpec& spec) {
  HYDRA_CHECK_MSG(spec.query_threads >= 1,
                  "query_threads must be >= 1 (1 = serial traversal)");
  if (spec.kind == QueryKind::kRange) {
    HYDRA_CHECK_MSG(spec.radius >= 0.0, "range radius must be non-negative");
    HYDRA_CHECK_MSG(spec.mode == QualityMode::kExact,
                    "range queries support only the exact mode");
    HYDRA_CHECK_MSG(!spec.has_budget(),
                    "range queries do not support execution budgets");
    return;
  }
  HYDRA_CHECK_MSG(spec.k >= 1, "k-NN queries need k >= 1");
  HYDRA_CHECK_MSG(spec.epsilon >= 0.0 && std::isfinite(spec.epsilon),
                  "epsilon must be finite and non-negative");
  HYDRA_CHECK_MSG(spec.delta > 0.0 && spec.delta <= 1.0,
                  "delta must lie in (0, 1]");
  HYDRA_CHECK_MSG(spec.max_visited_leaves >= 0 && spec.max_raw_series >= 0,
                  "budgets must be non-negative (0 = unlimited)");
  HYDRA_CHECK_MSG(spec.mode != QualityMode::kNgApprox || !spec.has_budget(),
                  "budgets do not apply to the ng mode (already the minimal "
                  "one-leaf traversal)");
}

/// The strongest supported guarantee no weaker than intended: delta-epsilon
/// falls back to epsilon (same bound, delivered with probability 1) before
/// falling back to exact; everything else falls back straight to exact.
QualityMode EffectiveMode(const MethodTraits& traits, QualityMode requested) {
  if (traits.SupportsMode(requested)) return requested;
  if (requested == QualityMode::kDeltaEpsilon && traits.supports_epsilon) {
    return QualityMode::kEpsilon;
  }
  return QualityMode::kExact;
}

}  // namespace

std::string ModeFallbackReason(const MethodTraits& traits, QualityMode mode) {
  if (traits.SupportsMode(mode)) return {};
  std::string supported = "exact";
  if (traits.supports_ng) supported += ", ng";
  if (traits.supports_epsilon) supported += ", epsilon";
  if (traits.supports_delta_epsilon) supported += ", delta-epsilon";
  return std::string("method supports modes: ") + supported;
}

KnnResult SearchMethod::DoSearchKnnNg(SeriesView /*query*/, size_t /*k*/) {
  HYDRA_CHECK_MSG(false,
                  "DoSearchKnnNg called on a method whose traits do not "
                  "advertise ng support");
  return {};
}

void SearchMethod::DoSave(io::IndexWriter* /*writer*/) const {
  HYDRA_CHECK_MSG(false,
                  "DoSave called on a method whose traits do not advertise "
                  "persistence");
}

util::Status SearchMethod::DoOpen(io::IndexReader* /*reader*/,
                                  const Dataset& /*data*/) {
  HYDRA_CHECK_MSG(false,
                  "DoOpen called on a method whose traits do not advertise "
                  "persistence");
  return util::Status::Ok();
}

BuildStats SearchMethod::Build(const Dataset& data) {
  HYDRA_CHECK_MSG(!built_,
                  "Build on an already built/opened method — construct a "
                  "fresh instance instead");
  BuildStats stats = DoBuild(data);
  built_ = true;
  built_over_ = &data;
  return stats;
}

util::Result<int64_t> SearchMethod::Save(const std::string& dir) const {
  HYDRA_CHECK_MSG(built_, "Save requires a built method (call Build first)");
  const MethodTraits method_traits = traits();
  if (!method_traits.supports_persistence) {
    return util::Status::Error(
        name() + " does not support a persisted index (" +
        (method_traits.persistence_reason.empty()
             ? "no reason recorded"
             : method_traits.persistence_reason) +
        ")");
  }
  io::IndexWriter writer(name(), io::DatasetFingerprint::Of(*built_over_));
  DoSave(&writer);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return util::Status::Error("cannot create index directory " + dir +
                               ": " + ec.message());
  }
  return writer.Commit(io::IndexFilePath(dir));
}

util::Result<BuildStats> SearchMethod::Open(const std::string& dir,
                                            const Dataset& data) {
  HYDRA_CHECK_MSG(!built_,
                  "Open requires an unbuilt method (never double-open; "
                  "construct a fresh instance instead)");
  const MethodTraits method_traits = traits();
  if (!method_traits.supports_persistence) {
    return util::Status::Error(
        name() + " does not support a persisted index (" +
        (method_traits.persistence_reason.empty()
             ? "no reason recorded"
             : method_traits.persistence_reason) +
        ")");
  }
  util::WallTimer timer;
  io::IndexReader reader;
  util::Status loaded = reader.Load(io::IndexFilePath(dir));
  if (!loaded.ok()) return loaded;
  if (reader.method_name() != name()) {
    return util::Status::Error("index at " + dir + " was built by '" +
                               reader.method_name() + "', not '" + name() +
                               "'");
  }
  const io::DatasetFingerprint given = io::DatasetFingerprint::Of(data);
  if (!(reader.fingerprint() == given)) {
    return util::Status::Error(
        "dataset fingerprint mismatch for index at " + dir +
        ": index was built over " + reader.fingerprint().ToString() +
        ", given dataset has " + given.ToString());
  }
  util::Status opened = DoOpen(&reader, data);
  if (!opened.ok()) return opened;
  built_ = true;
  built_over_ = &data;
  BuildStats stats;
  stats.load_seconds = timer.Seconds();
  stats.bytes_read = reader.file_bytes();
  stats.random_reads = 1;
  return stats;
}

QueryResult SearchMethod::Execute(SeriesView query, const QuerySpec& spec) {
  CheckSpec(spec);
  HYDRA_OBS_SPAN_ARG("execute", "k", spec.k);
  if (spec.kind == QueryKind::kRange) {
    RangePlan plan;
    plan.radius = spec.radius;
    // Range answers are visit-order independent under the fixed r^2
    // bound, so any width is safe — but only engine-backed drivers honor
    // it; everywhere else the request quietly runs serially (the CLI
    // refuses --query-threads on such methods up front).
    if (traits().intra_query_parallel) plan.query_threads = spec.query_threads;
    RangeResult range = DoSearchRange(query, plan);
    QueryResult result{std::move(range.matches), range.stats};
    result.stats.answer_mode_delivered = QualityMode::kExact;
    return result;
  }

  const MethodTraits method_traits = traits();
  // The honesty contract admits no silently inert knob: a leaf budget on
  // a method with no leaf-visit unit could never fire, so it is refused
  // here (the CLI pre-validates user input against the same trait).
  HYDRA_CHECK_MSG(spec.max_visited_leaves == 0 ||
                      method_traits.leaf_visit_budget,
                  "max_visited_leaves cannot bind on this method (no "
                  "leaf-visit unit); cap work with max_raw_series");
  const QualityMode effective = EffectiveMode(method_traits, spec.mode);
  QueryResult result;
  if (effective == QualityMode::kNgApprox) {
    result = DoSearchKnnNg(query, spec.k);
  } else {
    KnnPlan plan;
    plan.k = spec.k;
    if (effective == QualityMode::kEpsilon ||
        effective == QualityMode::kDeltaEpsilon) {
      plan.epsilon = spec.epsilon;
      plan.bound_scale =
          1.0 / ((1.0 + spec.epsilon) * (1.0 + spec.epsilon));
    }
    if (effective == QualityMode::kDeltaEpsilon) plan.delta = spec.delta;
    if (spec.max_visited_leaves > 0) plan.max_leaves = spec.max_visited_leaves;
    if (spec.max_raw_series > 0) plan.max_raw = spec.max_raw_series;
    // Intra-query parallelism is reserved for "pure exact" plans: epsilon
    // shrink, delta caps, and explicit budgets make the answer depend on
    // the visit order, so those plans keep the serial traversal and stay
    // bit-identical at any requested width.
    if (method_traits.intra_query_parallel &&
        effective == QualityMode::kExact && !spec.has_budget()) {
      plan.query_threads = spec.query_threads;
    }
    result = DoSearchKnn(query, plan);
  }
  // A truncated traversal keeps no error bound: budgets downgrade the
  // delivered guarantee to "none".
  result.stats.answer_mode_delivered =
      result.stats.budget_exhausted ? QualityMode::kNgApprox : effective;
  return result;
}

std::vector<Neighbor> BruteForceKnn(const Dataset& data, SeriesView query,
                                    size_t k) {
  HYDRA_CHECK(query.size() == data.length());
  KnnHeap heap(k);
  for (size_t i = 0; i < data.size(); ++i) {
    heap.Offer(static_cast<SeriesId>(i), SquaredEuclidean(query, data[i]));
  }
  return heap.TakeSorted();
}

double RecallAtK(const std::vector<Neighbor>& result,
                 const std::vector<Neighbor>& truth, size_t k) {
  const size_t want = std::min(k, truth.size());
  if (want == 0) return 1.0;  // nothing to recover
  // Methods sum dimensions in a different order than brute force, so an
  // exactly-correct answer can sit a few ulps above the truth's k-th
  // distance — compare with a relative tolerance, or exact searches would
  // report recall < 1.
  const double kth_dist_sq = truth[want - 1].dist_sq;
  const double cutoff = kth_dist_sq + 1e-9 * (1.0 + kth_dist_sq);
  size_t hits = 0;
  for (size_t i = 0; i < result.size() && i < want; ++i) {
    if (result[i].dist_sq <= cutoff) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(want);
}

double ApproximationError(const std::vector<Neighbor>& result,
                          const std::vector<Neighbor>& truth) {
  HYDRA_CHECK_MSG(!truth.empty(),
                  "ApproximationError needs a non-empty ground truth");
  if (result.empty()) return std::numeric_limits<double>::infinity();
  // Compare the worst returned answer to the true distance at that rank
  // (the k-th when the answer is complete).
  const size_t rank = std::min(result.size(), truth.size()) - 1;
  const double got = std::sqrt(result.back().dist_sq);
  const double want = std::sqrt(truth[rank].dist_sq);
  if (want == 0.0) {
    return got == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return got / want;
}

}  // namespace hydra::core
