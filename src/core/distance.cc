#include "core/distance.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "core/simd/kernels.h"
#include "util/check.h"

namespace hydra::core {

double SquaredEuclidean(SeriesView a, SeriesView b) {
  HYDRA_DCHECK(a.size() == b.size());
  return simd::ActiveKernels().euclidean_sq(a.data(), b.data(), a.size());
}

double SquaredEuclideanEarlyAbandon(SeriesView a, SeriesView b, double bound) {
  HYDRA_DCHECK(a.size() == b.size());
  return simd::ActiveKernels().euclidean_sq_abandon(a.data(), b.data(),
                                                    a.size(), bound);
}

void QueryOrder::Reset(SeriesView query) {
  query_.assign(query.begin(), query.end());
  order_.resize(query.size());
  std::iota(order_.begin(), order_.end(), 0u);
  std::sort(order_.begin(), order_.end(), [&](uint32_t a, uint32_t b) {
    return std::fabs(query_[a]) > std::fabs(query_[b]);
  });
  // Contiguous copy in visit order: the kernels stream it linearly and
  // only gather through order_ on the candidate side.
  ordered_query_.resize(query.size());
  for (size_t i = 0; i < order_.size(); ++i) {
    ordered_query_[i] = query_[order_[i]];
  }
}

QueryOrder& ScratchQueryOrder(SeriesView query) {
  thread_local QueryOrder order;
  order.Reset(query);
  return order;
}

double QueryOrder::Distance(SeriesView candidate, double bound) const {
  HYDRA_DCHECK(candidate.size() == query_.size());
  return simd::ActiveKernels().euclidean_sq_reordered(
      ordered_query_.data(), candidate.data(), order_.data(), order_.size(),
      bound);
}

}  // namespace hydra::core
