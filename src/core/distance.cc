#include "core/distance.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "util/check.h"

namespace hydra::core {

double SquaredEuclidean(SeriesView a, SeriesView b) {
  HYDRA_DCHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

double SquaredEuclideanEarlyAbandon(SeriesView a, SeriesView b, double bound) {
  HYDRA_DCHECK(a.size() == b.size());
  double acc = 0.0;
  size_t i = 0;
  const size_t n = a.size();
  // Check the abandon condition every 8 dimensions to amortize the branch.
  constexpr size_t kStride = 8;
  while (i + kStride <= n) {
    for (size_t j = 0; j < kStride; ++j, ++i) {
      const double d = static_cast<double>(a[i]) - b[i];
      acc += d * d;
    }
    if (acc > bound) return acc;
  }
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

void QueryOrder::Reset(SeriesView query) {
  query_.assign(query.begin(), query.end());
  order_.resize(query.size());
  std::iota(order_.begin(), order_.end(), 0u);
  std::sort(order_.begin(), order_.end(), [&](uint32_t a, uint32_t b) {
    return std::fabs(query_[a]) > std::fabs(query_[b]);
  });
}

QueryOrder& ScratchQueryOrder(SeriesView query) {
  thread_local QueryOrder order;
  order.Reset(query);
  return order;
}

double QueryOrder::Distance(SeriesView candidate, double bound) const {
  HYDRA_DCHECK(candidate.size() == query_.size());
  double acc = 0.0;
  const size_t n = order_.size();
  size_t i = 0;
  constexpr size_t kStride = 8;
  while (i + kStride <= n) {
    for (size_t j = 0; j < kStride; ++j, ++i) {
      const uint32_t d = order_[i];
      const double diff = static_cast<double>(query_[d]) - candidate[d];
      acc += diff * diff;
    }
    if (acc > bound) return acc;
  }
  for (; i < n; ++i) {
    const uint32_t d = order_[i];
    const double diff = static_cast<double>(query_[d]) - candidate[d];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace hydra::core
