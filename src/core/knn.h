// Bounded max-heap of the k best (smallest-distance) neighbors found so far.
#ifndef HYDRA_CORE_KNN_H_
#define HYDRA_CORE_KNN_H_

#include <algorithm>
#include <limits>
#include <vector>

#include "core/types.h"
#include "util/check.h"

namespace hydra::core {

/// One answer of a k-NN query. Distances are squared Euclidean (the paper's
/// methods avoid the square root; callers can take sqrt for reporting).
struct Neighbor {
  SeriesId id = 0;
  double dist_sq = std::numeric_limits<double>::infinity();

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    return a.dist_sq < b.dist_sq || (a.dist_sq == b.dist_sq && a.id < b.id);
  }
};

/// Collects the k nearest neighbors. `Bound()` is the current best-so-far
/// (bsf) pruning threshold: the k-th smallest distance seen, or +inf until
/// k candidates have been offered.
class KnnHeap {
 public:
  explicit KnnHeap(size_t k) : k_(k) { HYDRA_CHECK(k > 0); }

  /// Offers a candidate; keeps it if it is among the k best so far.
  void Offer(SeriesId id, double dist_sq) {
    if (heap_.size() < k_) {
      heap_.push_back({id, dist_sq});
      std::push_heap(heap_.begin(), heap_.end(), ByDistance);
      return;
    }
    if (dist_sq < heap_.front().dist_sq) {
      std::pop_heap(heap_.begin(), heap_.end(), ByDistance);
      heap_.back() = {id, dist_sq};
      std::push_heap(heap_.begin(), heap_.end(), ByDistance);
    }
  }

  /// Current pruning bound: the k-th best squared distance (or +inf).
  double Bound() const {
    return heap_.size() < k_ ? std::numeric_limits<double>::infinity()
                             : heap_.front().dist_sq;
  }

  size_t size() const { return heap_.size(); }

  /// Extracts the answers sorted by increasing distance.
  std::vector<Neighbor> TakeSorted() {
    std::vector<Neighbor> result = std::move(heap_);
    std::sort(result.begin(), result.end());
    return result;
  }

 private:
  static bool ByDistance(const Neighbor& a, const Neighbor& b) {
    return a.dist_sq < b.dist_sq;  // max-heap on distance
  }

  size_t k_;
  std::vector<Neighbor> heap_;
};

/// Collects every candidate within a fixed squared-distance bound — the
/// r-range counterpart of KnnHeap. `Bound()` never shrinks, so the same
/// pruned traversals work for both query flavors.
class RangeCollector {
 public:
  explicit RangeCollector(double radius_sq) : radius_sq_(radius_sq) {
    HYDRA_CHECK(radius_sq >= 0.0);
  }

  /// Keeps the candidate if it lies within the range.
  void Offer(SeriesId id, double dist_sq) {
    if (dist_sq <= radius_sq_) matches_.push_back({id, dist_sq});
  }

  /// The fixed pruning bound r^2.
  double Bound() const { return radius_sq_; }

  size_t size() const { return matches_.size(); }

  /// Extracts the matches sorted by increasing distance.
  std::vector<Neighbor> TakeSorted() {
    std::vector<Neighbor> result = std::move(matches_);
    std::sort(result.begin(), result.end());
    return result;
  }

 private:
  double radius_sq_;
  std::vector<Neighbor> matches_;
};

}  // namespace hydra::core

#endif  // HYDRA_CORE_KNN_H_
