// Bounded max-heap of the k best (smallest-distance) neighbors found so far.
#ifndef HYDRA_CORE_KNN_H_
#define HYDRA_CORE_KNN_H_

#include <algorithm>
#include <atomic>
#include <limits>
#include <vector>

#include "core/types.h"
#include "util/check.h"

namespace hydra::core {

/// Thread-safe, monotonically tightening *squared*-distance bound shared by
/// the shard-parallel traversals of one k-NN query (the sharded index's
/// cross-shard pruning channel). Starts at +inf; Tighten only ever lowers
/// it.
///
/// Soundness contract: a bound B may only be published when k candidates
/// with *true* squared distance <= B are known to exist somewhere (KnnHeap
/// publishes its k-th entry once full, which satisfies this — every heap
/// entry is either a true distance or an abandoned partial that already
/// exceeded a bound derived from this one). That keeps the shared bound >=
/// the final *global* k-th true distance at all times, so pruning any
/// subtree with lower bound >= B can never drop a true global neighbor.
class SharedBound {
 public:
  double Load() const { return bound_.load(std::memory_order_relaxed); }

  /// Lowers the bound to `dist_sq` if it is tighter (lock-free CAS min).
  void Tighten(double dist_sq) {
    double current = bound_.load(std::memory_order_relaxed);
    while (dist_sq < current &&
           !bound_.compare_exchange_weak(current, dist_sq,
                                         std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> bound_{std::numeric_limits<double>::infinity()};
};

/// One answer of a k-NN query. `dist_sq` is *squared* Euclidean distance
/// (the paper's methods avoid the square root on hot paths; callers take
/// sqrt only for reporting). Ordering breaks distance ties by id, so sorted
/// answer lists are fully deterministic.
struct Neighbor {
  /// Offset of the series in its dataset.
  SeriesId id = 0;
  /// Squared Euclidean distance to the query.
  double dist_sq = std::numeric_limits<double>::infinity();

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    return a.dist_sq < b.dist_sq || (a.dist_sq == b.dist_sq && a.id < b.id);
  }
};

/// Collects the k nearest neighbors. `Bound()` is the current best-so-far
/// (bsf) pruning threshold: the k-th smallest squared distance seen, or
/// +inf until k candidates have been offered.
///
/// A heap is reusable: Reset(k) re-arms it for a new query while keeping
/// the allocated buffer, so repeated queries on one thread are
/// allocation-free once warm (see ScratchKnnHeap).
class KnnHeap {
 public:
  /// An empty heap; Reset must be called before use.
  KnnHeap() = default;

  explicit KnnHeap(size_t k) { Reset(k); }

  /// Re-arms the heap for a new query of size `k` (> 0), keeping the
  /// existing capacity. Deliberately does not reserve k upfront: the heap
  /// only ever grows to min(k, candidates offered), so a huge k against a
  /// small collection stays cheap (and a reused heap is already warm).
  /// Detaches any shared bound — a bound belongs to one query; methods
  /// that Reset mid-query (VA+file's two phases) re-attach afterwards.
  void Reset(size_t k) {
    HYDRA_CHECK(k > 0);
    k_ = k;
    heap_.clear();
    shared_ = nullptr;
  }

  /// Attaches the cross-shard bound of the current query (nullptr = none,
  /// the no-op default for unsharded execution). While attached, Bound()
  /// returns the tighter of the local k-th distance and the shared bound,
  /// and every improvement of the local k-th is published to the shared
  /// bound. Offer semantics (which candidates are kept locally) are
  /// unchanged — the local heap stays this shard's true top-k, which is
  /// what makes the global merge exact.
  void ShareBound(SharedBound* shared) {
    shared_ = shared;
    if (shared_ != nullptr && heap_.size() >= k_) {
      shared_->Tighten(heap_.front().dist_sq);
    }
  }

  /// Offers a candidate with *squared* distance `dist_sq`; keeps it if it
  /// is among the k best so far.
  void Offer(SeriesId id, double dist_sq) {
    HYDRA_DCHECK(k_ > 0);
    if (heap_.size() < k_) {
      heap_.push_back({id, dist_sq});
      std::push_heap(heap_.begin(), heap_.end(), ByDistance);
      if (shared_ != nullptr && heap_.size() == k_) {
        shared_->Tighten(heap_.front().dist_sq);
      }
      return;
    }
    if (dist_sq < heap_.front().dist_sq) {
      std::pop_heap(heap_.begin(), heap_.end(), ByDistance);
      heap_.back() = {id, dist_sq};
      std::push_heap(heap_.begin(), heap_.end(), ByDistance);
      if (shared_ != nullptr) shared_->Tighten(heap_.front().dist_sq);
    }
  }

  /// Current pruning bound: the k-th best *squared* distance (or +inf
  /// while the heap holds fewer than k candidates), tightened by the
  /// shared cross-shard bound when one is attached.
  double Bound() const {
    const double local = heap_.size() < k_
                             ? std::numeric_limits<double>::infinity()
                             : heap_.front().dist_sq;
    return shared_ != nullptr ? std::min(local, shared_->Load()) : local;
  }

  /// Candidates currently held (<= k).
  size_t size() const { return heap_.size(); }

  /// Extracts the answers sorted by increasing distance, surrendering the
  /// internal buffer (the heap must be Reset before reuse).
  std::vector<Neighbor> TakeSorted() {
    std::vector<Neighbor> result = std::move(heap_);
    std::sort(result.begin(), result.end());
    return result;
  }

  /// Copies the answers, sorted by increasing distance, into `*out`
  /// (replacing its contents) and clears the heap while keeping its
  /// buffer — the reuse-friendly alternative to TakeSorted.
  void ExtractSortedTo(std::vector<Neighbor>* out) {
    std::sort(heap_.begin(), heap_.end());
    out->assign(heap_.begin(), heap_.end());
    heap_.clear();
  }

 private:
  static bool ByDistance(const Neighbor& a, const Neighbor& b) {
    return a.dist_sq < b.dist_sq;  // max-heap on distance
  }

  size_t k_ = 0;
  std::vector<Neighbor> heap_;
  SharedBound* shared_ = nullptr;  // not owned; null outside sharded fan-out
};

/// Thread-local reusable KnnHeap, Reset to `k`. Query hot paths use this so
/// that answering many queries allocates nothing per query once the thread
/// is warm — under concurrent batch execution, per-query heap allocations
/// would serialize on the allocator.
///
/// At most ONE scratch heap is live per thread: a second call re-arms (and
/// thus invalidates) the heap returned by the first. Methods that need two
/// heap phases per query (VA+file's upper-bound pass, Stepwise's per-level
/// passes) extract what they need from the first phase, then call Reset on
/// the same reference for the next phase.
inline KnnHeap& ScratchKnnHeap(size_t k) {
  thread_local KnnHeap heap;
  heap.Reset(k);
  return heap;
}

/// Collects every candidate within a fixed squared-distance bound — the
/// r-range counterpart of KnnHeap. `Bound()` never shrinks, so the same
/// pruned traversals work for both query flavors.
class RangeCollector {
 public:
  /// `radius_sq` is the *squared* range radius r^2 (callers square the
  /// user-facing radius; SearchMethod::SearchRange enforces r >= 0).
  explicit RangeCollector(double radius_sq) : radius_sq_(radius_sq) {
    HYDRA_CHECK(radius_sq >= 0.0);
  }

  /// Keeps the candidate if its *squared* distance lies within the range.
  void Offer(SeriesId id, double dist_sq) {
    if (dist_sq <= radius_sq_) matches_.push_back({id, dist_sq});
  }

  /// The fixed pruning bound r^2 (squared distance units).
  double Bound() const { return radius_sq_; }

  /// Matches collected so far.
  size_t size() const { return matches_.size(); }

  /// Extracts the matches sorted by increasing distance.
  std::vector<Neighbor> TakeSorted() {
    std::vector<Neighbor> result = std::move(matches_);
    std::sort(result.begin(), result.end());
    return result;
  }

 private:
  double radius_sq_;
  std::vector<Neighbor> matches_;
};

}  // namespace hydra::core

#endif  // HYDRA_CORE_KNN_H_
