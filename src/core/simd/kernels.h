// Runtime-dispatched kernels for the distance and lower-bound hot loops.
//
// Every kernel family ships in up to five implementations ("kernel sets"):
//   scalar   — the permanent reference, verbatim the pre-SIMD loops.
//   portable — 4-wide stripe-unrolled plain C++ (any CPU, any ISA).
//   avx2     — 256-bit AVX2+FMA (8 floats / 4 doubles per step, gathers).
//   avx512   — 512-bit AVX-512 F+DQ raw-series kernels (summary kernels
//              reuse the AVX2 table forms, which are already memory-bound).
//   neon     — AArch64 Advanced SIMD raw-series kernels (8 floats per step
//              over four 2-lane double accumulators); summary and
//              reordered kernels alias scalar (NEON has no gather).
//
// Dispatch is resolved once per process from cpuid (best supported set
// wins), overridable via the HYDRA_KERNELS environment variable or
// UseKernels() (the CLI's --kernels flag). The scalar set is always
// available and always the conformance baseline.
//
// Numerical contract (pinned by tests/unit/kernel_conformance_test.cc):
//  - Summary lower-bound kernels (sum_sq_diff, box_dist_sq, isax_mindist_sq,
//    sfa_lb_sq, va_lb_sq, eapca_node_lb_sq) preserve the scalar reduction
//    order and are bit-identical to the reference in every set. Pruning
//    decisions therefore never depend on the dispatch level.
//  - Raw-series kernels (euclidean_sq, euclidean_sq_abandon,
//    euclidean_sq_reordered) may use multiple accumulators; sets with
//    raw_order_preserved == false agree with the reference to relative
//    error <= 16 * n * 2^-53 (all terms are nonnegative, so the sum is
//    perfectly conditioned and lane reassociation is the only error
//    source).
//  - Within any one set, euclidean_sq_abandon(a, b, n, +inf) is
//    bit-identical to euclidean_sq(a, b, n), and a non-abandoned return
//    (<= bound) always equals the full distance of that set.
#ifndef HYDRA_CORE_SIMD_KERNELS_H_
#define HYDRA_CORE_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "util/status.h"

namespace hydra::core::simd {

/// One dispatchable implementation of every hot kernel. All pointers are
/// always non-null; sets that have no specialized form for a kernel alias
/// a lower level's function.
struct KernelSet {
  /// Stable identifier ("scalar", "portable", "avx2", "avx512", "neon")
  /// accepted
  /// by --kernels / HYDRA_KERNELS.
  const char* name;

  /// True when the raw-series kernels reduce in scalar order, making them
  /// bit-identical to the reference (summary kernels always are).
  bool raw_order_preserved;

  /// Plain squared Euclidean distance over `n` float values.
  double (*euclidean_sq)(const Value* a, const Value* b, size_t n);

  /// Early-abandoning squared Euclidean: returns a value > `bound` once a
  /// blockwise partial sum exceeds it (that value is NOT the distance);
  /// otherwise returns exactly euclidean_sq(a, b, n) of the same set.
  double (*euclidean_sq_abandon)(const Value* a, const Value* b, size_t n,
                                 double bound);

  /// Reordered early abandon: dimension i contributes
  /// (q_ordered[i] - candidate[order[i]])^2, visiting i in ascending order
  /// (callers pre-sort `order` by decreasing |q|). Same abandon semantics
  /// as euclidean_sq_abandon.
  double (*euclidean_sq_reordered)(const Value* q_ordered,
                                   const Value* candidate,
                                   const uint32_t* order, size_t n,
                                   double bound);

  /// sum_i (a[i] - b[i])^2 over doubles — the PAA lower-bound core
  /// (callers scale by points-per-segment). Order-preserving in every set.
  double (*sum_sq_diff)(const double* a, const double* b, size_t n);

  /// Squared distance from point `q` to the box [lo, hi] per dimension:
  /// sum_i max(lo[i]-q[i], q[i]-hi[i], 0)^2. Accepts +/-inf box edges.
  /// Order-preserving in every set. Backs the SFA-trie and R*-tree MBR
  /// bounds.
  double (*box_dist_sq)(const double* q, const double* lo, const double* hi,
                        size_t n);

  /// iSAX MINDIST core (unscaled): per segment s, distance from paa_q[s]
  /// to the breakpoint interval of symbols[s] at bits[s] resolution, via
  /// the flat nested tables (entry (1 << bits) - 1 + symbol; see
  /// SaxBreakpoints::FlatLower). Segments with bits == 0 contribute 0.
  /// Order-preserving in every set.
  double (*isax_mindist_sq)(const double* paa_q, const uint8_t* symbols,
                            const uint8_t* bits, size_t segments,
                            const double* flat_lower,
                            const double* flat_upper);

  /// SFA lower-bound core: per dimension d, distance from q_dft[d] to the
  /// bin [edges[d*stride + word[d]], edges[d*stride + word[d] + 1]] of a
  /// padded row layout (row = [-inf, bins..., +inf], stride = alphabet+1;
  /// see SfaQuantizer::FlatEdges). Order-preserving in every set.
  double (*sfa_lb_sq)(const double* q_dft, const uint8_t* word, size_t dims,
                      const double* edges, size_t stride);

  /// VA+ cell lower-bound core: per dimension d, distance from q_dft[d] to
  /// [edges[offsets[d] + cells[d]], edges[offsets[d] + cells[d] + 1]]
  /// (see VaPlusQuantizer::FlatEdges). Order-preserving in every set.
  double (*va_lb_sq)(const double* q_dft, const uint16_t* cells, size_t dims,
                     const double* edges, const uint32_t* offsets);

  /// EAPCA node lower bound: per segment s of the cumulative-`ends`
  /// segmentation, len_s * (dist(q_mean, mean range)^2 +
  /// dist(q_std, std range)^2). `q_stats` is {mean, stddev} pairs
  /// (stride 2), `env` is {min_mean, max_mean, min_std, max_std} quads
  /// (stride 4). Order-preserving in every set.
  double (*eapca_node_lb_sq)(const double* q_stats, const double* env,
                             const uint32_t* ends, size_t segments);
};

/// The reference set (always supported, never changes behavior).
const KernelSet& ScalarKernels();

/// Every set compiled into this binary, in preference order
/// (scalar, portable, then ISA-specific sets). All entries are non-null;
/// ISA sets are absent on targets where they cannot be compiled.
const std::vector<const KernelSet*>& AllKernelSets();

/// The compiled sets this CPU can actually execute, in preference order
/// (the last entry is the default dispatch choice).
std::vector<const KernelSet*> SupportedKernelSets();

/// Looks up a compiled set by name; nullptr when unknown.
const KernelSet* FindKernelSet(std::string_view name);

/// True when the current CPU can execute `set`.
bool KernelSetSupported(const KernelSet& set);

/// The active set. First use resolves it: HYDRA_KERNELS (aborts with a
/// clear message when unknown/unsupported — the CLI pre-validates to turn
/// that into a clean exit), else the best supported set.
const KernelSet& ActiveKernels();

/// Forces the active set by name (the --kernels flag). Errors when the
/// name is unknown or the CPU cannot execute it; the active set is then
/// unchanged.
util::Status UseKernels(std::string_view name);

}  // namespace hydra::core::simd

#endif  // HYDRA_CORE_SIMD_KERNELS_H_
