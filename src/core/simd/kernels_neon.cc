// The NEON (AArch64 Advanced SIMD) kernel set. Raw-series kernels process
// 8 floats per step (widened to double across four 2-lane accumulators via
// vcvt_f64_f32 / vcvt_high_f64_f32, fused with vfmaq_f64) and are
// therefore NOT order-preserving; the early-abandon check fires blockwise
// every 16 dimensions, mirroring the AVX2 stripe shape, so
// abandon(+inf) == plain holds bitwise within the set.
//
// NEON has no gather instruction, so the reordered kernel and every
// summary (table-walking) lower-bound kernel alias the scalar reference —
// which also keeps them order-preserving, the pruning-soundness anchor.
//
// AArch64 makes Advanced SIMD baseline, so this TU needs no target flags —
// only -ffp-contract=off like every kernel TU, so the scalar tail loops
// cannot be contracted differently from the reference. On non-AArch64
// targets the TU compiles to a null provider and dispatch never offers it.
#include "core/simd/kernels.h"
#include "core/simd/kernels_internal.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace hydra::core::simd::internal {
namespace {

// Deterministic horizontal sum of the four accumulators: fixed pairwise
// tree over the 8 double lanes.
inline double Hsum8(float64x2_t acc0, float64x2_t acc1, float64x2_t acc2,
                    float64x2_t acc3) {
  const float64x2_t s01 = vaddq_f64(acc0, acc1);
  const float64x2_t s23 = vaddq_f64(acc2, acc3);
  return (vgetq_lane_f64(s01, 0) + vgetq_lane_f64(s01, 1)) +
         (vgetq_lane_f64(s23, 0) + vgetq_lane_f64(s23, 1));
}

// acc0..acc3 += (a-b)^2 over the 8-float step at `i`, two floats per
// accumulator, widened to double before the subtraction like every
// non-scalar set (the float difference would lose the guard bits).
inline void Step8(const Value* a, const Value* b, size_t i,
                  float64x2_t* acc0, float64x2_t* acc1, float64x2_t* acc2,
                  float64x2_t* acc3) {
  const float32x4_t va_lo = vld1q_f32(a + i);
  const float32x4_t vb_lo = vld1q_f32(b + i);
  const float32x4_t va_hi = vld1q_f32(a + i + 4);
  const float32x4_t vb_hi = vld1q_f32(b + i + 4);
  const float64x2_t d0 =
      vsubq_f64(vcvt_f64_f32(vget_low_f32(va_lo)),
                vcvt_f64_f32(vget_low_f32(vb_lo)));
  const float64x2_t d1 =
      vsubq_f64(vcvt_high_f64_f32(va_lo), vcvt_high_f64_f32(vb_lo));
  const float64x2_t d2 =
      vsubq_f64(vcvt_f64_f32(vget_low_f32(va_hi)),
                vcvt_f64_f32(vget_low_f32(vb_hi)));
  const float64x2_t d3 =
      vsubq_f64(vcvt_high_f64_f32(va_hi), vcvt_high_f64_f32(vb_hi));
  *acc0 = vfmaq_f64(*acc0, d0, d0);
  *acc1 = vfmaq_f64(*acc1, d1, d1);
  *acc2 = vfmaq_f64(*acc2, d2, d2);
  *acc3 = vfmaq_f64(*acc3, d3, d3);
}

// Shared body (see kernels_avx2.cc): kAbandon adds a partial-sum check
// every 16 dimensions; the stripe sequence is otherwise identical, so
// abandon(+inf) == plain, bitwise.
template <bool kAbandon>
double EuclideanImpl(const Value* a, const Value* b, size_t n, double bound) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0);
  float64x2_t acc3 = vdupq_n_f64(0.0);
  size_t i = 0;
  if constexpr (kAbandon) {
    while (i + 16 <= n) {
      Step8(a, b, i, &acc0, &acc1, &acc2, &acc3);
      Step8(a, b, i + 8, &acc0, &acc1, &acc2, &acc3);
      i += 16;
      const double partial = Hsum8(acc0, acc1, acc2, acc3);
      if (partial > bound) return partial;
    }
  }
  for (; i + 8 <= n; i += 8) Step8(a, b, i, &acc0, &acc1, &acc2, &acc3);
  double total = Hsum8(acc0, acc1, acc2, acc3);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return total;
}

double NeonEuclideanSq(const Value* a, const Value* b, size_t n) {
  return EuclideanImpl<false>(a, b, n, 0.0);
}

double NeonEuclideanSqAbandon(const Value* a, const Value* b, size_t n,
                              double bound) {
  return EuclideanImpl<true>(a, b, n, bound);
}

}  // namespace

const KernelSet* NeonKernelsImpl() {
  static constexpr KernelSet kNeon = {
      "neon",
      /*raw_order_preserved=*/false,
      &NeonEuclideanSq,
      &NeonEuclideanSqAbandon,
      &ScalarEuclideanSqReordered,  // no gather on NEON
      &ScalarSumSqDiff,
      &ScalarBoxDistSq,
      &ScalarIsaxMinDistSq,
      &ScalarSfaLbSq,
      &ScalarVaLbSq,
      &ScalarEapcaNodeLbSq,
  };
  return &kNeon;
}

}  // namespace hydra::core::simd::internal

#else  // !__aarch64__

namespace hydra::core::simd::internal {

const KernelSet* NeonKernelsImpl() { return nullptr; }

}  // namespace hydra::core::simd::internal

#endif
