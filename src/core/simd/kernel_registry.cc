// Kernel-set registry and runtime dispatch: assembles the compiled sets,
// answers cpuid support queries, and resolves the active set once per
// process (HYDRA_KERNELS override, else best supported). Compiled without
// ISA flags so it runs on any CPU the binary targets.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/simd/kernels.h"
#include "core/simd/kernels_internal.h"

namespace hydra::core::simd {
namespace {

// The active set; null until first resolution. Relaxed/acquire-release is
// enough: resolution is deterministic, so a benign startup race can only
// store the same pointer twice.
std::atomic<const KernelSet*> g_active{nullptr};

std::string JoinSupportedNames() {
  std::string names;
  for (const KernelSet* set : SupportedKernelSets()) {
    if (!names.empty()) names += ", ";
    names += set->name;
  }
  return names;
}

const KernelSet* ResolveDefault() {
  const char* env = std::getenv("HYDRA_KERNELS");
  if (env != nullptr && env[0] != '\0') {
    const KernelSet* set = FindKernelSet(env);
    if (set == nullptr || !KernelSetSupported(*set)) {
      // Library-level last resort for misuse that bypassed the CLI (which
      // pre-validates the variable and exits cleanly instead).
      std::fprintf(stderr,
                   "hydra: HYDRA_KERNELS='%s' is %s; supported sets: %s\n",
                   env, set == nullptr ? "unknown" : "not supported by this CPU",
                   JoinSupportedNames().c_str());
      std::abort();
    }
    return set;
  }
  return SupportedKernelSets().back();  // preference order: best is last
}

}  // namespace

const KernelSet& ScalarKernels() { return internal::ScalarKernelsImpl(); }

const std::vector<const KernelSet*>& AllKernelSets() {
  static const std::vector<const KernelSet*>* sets = [] {
    auto* all = new std::vector<const KernelSet*>;
    all->push_back(&internal::ScalarKernelsImpl());
    all->push_back(&internal::PortableKernelsImpl());
    if (const KernelSet* neon = internal::NeonKernelsImpl()) {
      all->push_back(neon);
    }
    if (const KernelSet* avx2 = internal::Avx2KernelsImpl()) {
      all->push_back(avx2);
    }
    if (const KernelSet* avx512 = internal::Avx512KernelsImpl()) {
      all->push_back(avx512);
    }
    return all;
  }();
  return *sets;
}

std::vector<const KernelSet*> SupportedKernelSets() {
  std::vector<const KernelSet*> supported;
  for (const KernelSet* set : AllKernelSets()) {
    if (KernelSetSupported(*set)) supported.push_back(set);
  }
  return supported;
}

const KernelSet* FindKernelSet(std::string_view name) {
  for (const KernelSet* set : AllKernelSets()) {
    if (name == set->name) return set;
  }
  return nullptr;
}

bool KernelSetSupported(const KernelSet& set) {
  if (std::strcmp(set.name, "scalar") == 0 ||
      std::strcmp(set.name, "portable") == 0) {
    return true;
  }
#if defined(__aarch64__)
  // Advanced SIMD is baseline on AArch64; the set exists iff the TU
  // compiled for it, so existence is support.
  if (std::strcmp(set.name, "neon") == 0) return true;
#endif
#if defined(__x86_64__) || defined(__i386__)
  if (std::strcmp(set.name, "avx2") == 0) {
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }
  if (std::strcmp(set.name, "avx512") == 0) {
    // The raw kernels need F+DQ; the shared summary kernels need AVX2+FMA.
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
           __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq");
  }
#endif
  return false;
}

const KernelSet& ActiveKernels() {
  const KernelSet* set = g_active.load(std::memory_order_acquire);
  if (set == nullptr) {
    set = ResolveDefault();
    g_active.store(set, std::memory_order_release);
  }
  return *set;
}

util::Status UseKernels(std::string_view name) {
  const KernelSet* set = FindKernelSet(name);
  if (set == nullptr) {
    return util::Status::Error("unknown kernel set '" + std::string(name) +
                               "' (supported: " + JoinSupportedNames() + ")");
  }
  if (!KernelSetSupported(*set)) {
    return util::Status::Error("kernel set '" + std::string(name) +
                               "' is not supported by this CPU (supported: " +
                               JoinSupportedNames() + ")");
  }
  g_active.store(set, std::memory_order_release);
  return util::Status::Ok();
}

}  // namespace hydra::core::simd
