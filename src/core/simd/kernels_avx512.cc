// The AVX-512 kernel set (requires F + DQ): raw-series kernels process 16
// floats per step with two 512-bit FMA accumulators. Summary lower-bound
// kernels reuse the AVX2 forms — they are short, gather-bound loops where
// extra vector width buys nothing, and sharing the implementation keeps
// the order-preserving (bit-identical) guarantee in one place.
//
// Compiled with -mavx2 -mfma -mavx512f -mavx512dq -ffp-contract=off; all
// cross-TU access is via function pointers (see kernels_avx2.cc).
#include "core/simd/kernels.h"
#include "core/simd/kernels_internal.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace hydra::core::simd::internal {
namespace {

// Deterministic horizontal sum: fixed pairwise tree over the 8 lanes.
inline double Hsum8(__m512d v) {
  alignas(64) double t[8];
  _mm512_store_pd(t, v);
  return ((t[0] + t[1]) + (t[2] + t[3])) + ((t[4] + t[5]) + (t[6] + t[7]));
}

// acc0 += (a-b)^2 over lanes 0..7, acc1 over lanes 8..15 of a 16-float step.
inline void Step16(const Value* a, const Value* b, size_t i, __m512d* acc0,
                   __m512d* acc1) {
  const __m512 va = _mm512_loadu_ps(a + i);
  const __m512 vb = _mm512_loadu_ps(b + i);
  const __m512d a_lo = _mm512_cvtps_pd(_mm512_castps512_ps256(va));
  const __m512d a_hi = _mm512_cvtps_pd(_mm512_extractf32x8_ps(va, 1));
  const __m512d b_lo = _mm512_cvtps_pd(_mm512_castps512_ps256(vb));
  const __m512d b_hi = _mm512_cvtps_pd(_mm512_extractf32x8_ps(vb, 1));
  const __m512d d_lo = _mm512_sub_pd(a_lo, b_lo);
  const __m512d d_hi = _mm512_sub_pd(a_hi, b_hi);
  *acc0 = _mm512_fmadd_pd(d_lo, d_lo, *acc0);
  *acc1 = _mm512_fmadd_pd(d_hi, d_hi, *acc1);
}

inline void GatherStep16(const Value* q_ordered, const Value* candidate,
                         const uint32_t* order, size_t i, __m512d* acc0,
                         __m512d* acc1) {
  const __m512i idx =
      _mm512_loadu_si512(reinterpret_cast<const void*>(order + i));
  const __m512 vq = _mm512_loadu_ps(q_ordered + i);
  const __m512 vc = _mm512_i32gather_ps(idx, candidate, 4);
  const __m512d q_lo = _mm512_cvtps_pd(_mm512_castps512_ps256(vq));
  const __m512d q_hi = _mm512_cvtps_pd(_mm512_extractf32x8_ps(vq, 1));
  const __m512d c_lo = _mm512_cvtps_pd(_mm512_castps512_ps256(vc));
  const __m512d c_hi = _mm512_cvtps_pd(_mm512_extractf32x8_ps(vc, 1));
  const __m512d d_lo = _mm512_sub_pd(q_lo, c_lo);
  const __m512d d_hi = _mm512_sub_pd(q_hi, c_hi);
  *acc0 = _mm512_fmadd_pd(d_lo, d_lo, *acc0);
  *acc1 = _mm512_fmadd_pd(d_hi, d_hi, *acc1);
}

// Shared body (see kernels_portable.cc): kAbandon adds a partial-sum check
// every 32 dimensions; the step sequence is otherwise identical, so
// abandon(+inf) == plain, bitwise.
template <bool kAbandon>
double EuclideanImpl(const Value* a, const Value* b, size_t n, double bound) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  if constexpr (kAbandon) {
    while (i + 32 <= n) {
      Step16(a, b, i, &acc0, &acc1);
      Step16(a, b, i + 16, &acc0, &acc1);
      i += 32;
      const double partial = Hsum8(_mm512_add_pd(acc0, acc1));
      if (partial > bound) return partial;
    }
  }
  for (; i + 16 <= n; i += 16) Step16(a, b, i, &acc0, &acc1);
  double total = Hsum8(_mm512_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return total;
}

double Avx512EuclideanSq(const Value* a, const Value* b, size_t n) {
  return EuclideanImpl<false>(a, b, n, 0.0);
}

double Avx512EuclideanSqAbandon(const Value* a, const Value* b, size_t n,
                                double bound) {
  return EuclideanImpl<true>(a, b, n, bound);
}

double Avx512EuclideanSqReordered(const Value* q_ordered,
                                  const Value* candidate,
                                  const uint32_t* order, size_t n,
                                  double bound) {
  if (n < kMinGatherWidth) {
    return ScalarEuclideanSqReordered(q_ordered, candidate, order, n, bound);
  }
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  while (i + 32 <= n) {
    GatherStep16(q_ordered, candidate, order, i, &acc0, &acc1);
    GatherStep16(q_ordered, candidate, order, i + 16, &acc0, &acc1);
    i += 32;
    const double partial = Hsum8(_mm512_add_pd(acc0, acc1));
    if (partial > bound) return partial;
  }
  for (; i + 16 <= n; i += 16) {
    GatherStep16(q_ordered, candidate, order, i, &acc0, &acc1);
  }
  double total = Hsum8(_mm512_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double diff = static_cast<double>(q_ordered[i]) - candidate[order[i]];
    total += diff * diff;
  }
  return total;
}

}  // namespace

const KernelSet* Avx512KernelsImpl() {
  static constexpr KernelSet kAvx512 = {
      "avx512",
      /*raw_order_preserved=*/false,
      &Avx512EuclideanSq,
      &Avx512EuclideanSqAbandon,
      &Avx512EuclideanSqReordered,
      &Avx2SumSqDiff,
      &Avx2BoxDistSq,
      &Avx2IsaxMinDistSq,
      &Avx2SfaLbSq,
      &Avx2VaLbSq,
      &Avx2EapcaNodeLbSq,
  };
  return &kAvx512;
}

}  // namespace hydra::core::simd::internal

#else  // !(__AVX512F__ && __AVX512DQ__)

namespace hydra::core::simd::internal {

const KernelSet* Avx512KernelsImpl() { return nullptr; }

}  // namespace hydra::core::simd::internal

#endif
