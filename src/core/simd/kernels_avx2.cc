// The AVX2+FMA kernel set. Raw-series kernels process 8 floats per step
// (converted to double in two 4-lane halves, two FMA accumulators) and are
// therefore NOT order-preserving; summary lower-bound kernels compute each
// term vectorized but reduce sequentially in index order, so they are
// bit-identical to the scalar reference (the pruning-soundness anchor).
//
// This TU is compiled with -mavx2 -mfma -ffp-contract=off; nothing here
// may be inlined elsewhere (all cross-TU access is via function pointers),
// so the binary stays runnable on non-AVX2 CPUs as long as dispatch never
// selects this set. Without those flags (non-x86 target) the TU compiles
// to a null provider.
#include "core/simd/kernels.h"
#include "core/simd/kernels_internal.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cstring>

namespace hydra::core::simd::internal {
namespace {

// Deterministic horizontal sum: fixed pairwise tree over the 4 lanes.
inline double Hsum4(__m256d v) {
  alignas(32) double t[4];
  _mm256_store_pd(t, v);
  return (t[0] + t[1]) + (t[2] + t[3]);
}

// acc0 += (a-b)^2 over lanes 0..3, acc1 over lanes 4..7 of an 8-float step.
inline void Step8(const Value* a, const Value* b, size_t i, __m256d* acc0,
                  __m256d* acc1) {
  const __m256 va = _mm256_loadu_ps(a + i);
  const __m256 vb = _mm256_loadu_ps(b + i);
  const __m256d a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
  const __m256d a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
  const __m256d b_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
  const __m256d b_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
  const __m256d d_lo = _mm256_sub_pd(a_lo, b_lo);
  const __m256d d_hi = _mm256_sub_pd(a_hi, b_hi);
  *acc0 = _mm256_fmadd_pd(d_lo, d_lo, *acc0);
  *acc1 = _mm256_fmadd_pd(d_hi, d_hi, *acc1);
}

// Same step shape with the candidate gathered through `order`.
inline void GatherStep8(const Value* q_ordered, const Value* candidate,
                        const uint32_t* order, size_t i, __m256d* acc0,
                        __m256d* acc1) {
  const __m256i idx =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(order + i));
  const __m256 vq = _mm256_loadu_ps(q_ordered + i);
  const __m256 vc = _mm256_i32gather_ps(candidate, idx, 4);
  const __m256d q_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vq));
  const __m256d q_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vq, 1));
  const __m256d c_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vc));
  const __m256d c_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(vc, 1));
  const __m256d d_lo = _mm256_sub_pd(q_lo, c_lo);
  const __m256d d_hi = _mm256_sub_pd(q_hi, c_hi);
  *acc0 = _mm256_fmadd_pd(d_lo, d_lo, *acc0);
  *acc1 = _mm256_fmadd_pd(d_hi, d_hi, *acc1);
}

// Shared body (see kernels_portable.cc): kAbandon adds a partial-sum check
// every 16 dimensions; the stripe sequence is otherwise identical, so
// abandon(+inf) == plain, bitwise.
template <bool kAbandon>
double EuclideanImpl(const Value* a, const Value* b, size_t n, double bound) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  if constexpr (kAbandon) {
    while (i + 16 <= n) {
      Step8(a, b, i, &acc0, &acc1);
      Step8(a, b, i + 8, &acc0, &acc1);
      i += 16;
      const double partial = Hsum4(_mm256_add_pd(acc0, acc1));
      if (partial > bound) return partial;
    }
  }
  for (; i + 8 <= n; i += 8) Step8(a, b, i, &acc0, &acc1);
  double total = Hsum4(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return total;
}

double Avx2EuclideanSq(const Value* a, const Value* b, size_t n) {
  return EuclideanImpl<false>(a, b, n, 0.0);
}

double Avx2EuclideanSqAbandon(const Value* a, const Value* b, size_t n,
                              double bound) {
  return EuclideanImpl<true>(a, b, n, bound);
}

double Avx2EuclideanSqReordered(const Value* q_ordered, const Value* candidate,
                                const uint32_t* order, size_t n,
                                double bound) {
  if (n < kMinGatherWidth) {
    return ScalarEuclideanSqReordered(q_ordered, candidate, order, n, bound);
  }
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  while (i + 16 <= n) {
    GatherStep8(q_ordered, candidate, order, i, &acc0, &acc1);
    GatherStep8(q_ordered, candidate, order, i + 8, &acc0, &acc1);
    i += 16;
    const double partial = Hsum4(_mm256_add_pd(acc0, acc1));
    if (partial > bound) return partial;
  }
  for (; i + 8 <= n; i += 8) {
    GatherStep8(q_ordered, candidate, order, i, &acc0, &acc1);
  }
  double total = Hsum4(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double diff = static_cast<double>(q_ordered[i]) - candidate[order[i]];
    total += diff * diff;
  }
  return total;
}

// Branchless interval distance, bit-identical to the scalar branches for
// finite query values and lo <= hi (including infinite edges): the max
// against +0.0 comes last so in-interval lanes yield exactly +0.0.
inline __m256d IntervalDist(__m256d q, __m256d lo, __m256d hi) {
  const __m256d below = _mm256_sub_pd(lo, q);
  const __m256d above = _mm256_sub_pd(q, hi);
  return _mm256_max_pd(_mm256_max_pd(below, above), _mm256_setzero_pd());
}

// Sequentially folds the 4 lanes of `term` into `acc` in index order —
// the step that keeps every summary kernel order-preserving.
inline void FoldOrdered(__m256d term, double* acc) {
  alignas(32) double t[4];
  _mm256_store_pd(t, term);
  *acc += t[0];
  *acc += t[1];
  *acc += t[2];
  *acc += t[3];
}

// Widens 4 consecutive uint8 values to an epi32 vector.
inline __m128i Load4U8(const uint8_t* p) {
  uint32_t raw;
  std::memcpy(&raw, p, sizeof(raw));
  return _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(raw)));
}

// Widens 4 consecutive uint16 values to an epi32 vector.
inline __m128i Load4U16(const uint16_t* p) {
  return _mm_cvtepu16_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}

}  // namespace

double Avx2SumSqDiff(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                    _mm256_loadu_pd(b + i));
    FoldOrdered(_mm256_mul_pd(d, d), &acc);
  }
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double Avx2BoxDistSq(const double* q, const double* lo, const double* hi,
                     size_t n) {
  double acc = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = IntervalDist(_mm256_loadu_pd(q + i),
                                   _mm256_loadu_pd(lo + i),
                                   _mm256_loadu_pd(hi + i));
    FoldOrdered(_mm256_mul_pd(d, d), &acc);
  }
  for (; i < n; ++i) {
    double d = 0.0;
    if (q[i] < lo[i]) {
      d = lo[i] - q[i];
    } else if (q[i] > hi[i]) {
      d = q[i] - hi[i];
    }
    acc += d * d;
  }
  return acc;
}

double Avx2IsaxMinDistSq(const double* paa_q, const uint8_t* symbols,
                         const uint8_t* bits, size_t segments,
                         const double* flat_lower, const double* flat_upper) {
  double acc = 0.0;
  size_t s = 0;
  const __m128i ones = _mm_set1_epi32(1);
  for (; s + 4 <= segments; s += 4) {
    const __m128i vbits = Load4U8(bits + s);
    const __m128i vsym = Load4U8(symbols + s);
    // Flat-table index (1 << bits) - 1 + symbol; in bounds for any
    // symbol/bits combination within the 8-bit domain.
    const __m128i idx = _mm_add_epi32(
        _mm_sub_epi32(_mm_sllv_epi32(ones, vbits), ones), vsym);
    const __m256d lo = _mm256_i32gather_pd(flat_lower, idx, 8);
    const __m256d hi = _mm256_i32gather_pd(flat_upper, idx, 8);
    const __m256d d = IntervalDist(_mm256_loadu_pd(paa_q + s), lo, hi);
    // Zero the lanes of whole-domain segments (bits == 0): the reference
    // skips them, and adding +0.0 to a nonnegative accumulator is exact —
    // but only if the lane really is +0.0 regardless of its symbol value.
    const __m256d keep = _mm256_castsi256_pd(
        _mm256_cvtepi32_epi64(_mm_cmpgt_epi32(vbits, _mm_setzero_si128())));
    FoldOrdered(_mm256_and_pd(_mm256_mul_pd(d, d), keep), &acc);
  }
  for (; s < segments; ++s) {
    if (bits[s] == 0) continue;
    const size_t idx = (size_t{1} << bits[s]) - 1 + symbols[s];
    const double lo = flat_lower[idx];
    const double hi = flat_upper[idx];
    const double q = paa_q[s];
    double d = 0.0;
    if (q < lo) {
      d = lo - q;
    } else if (q > hi) {
      d = q - hi;
    }
    acc += d * d;
  }
  return acc;
}

double Avx2SfaLbSq(const double* q_dft, const uint8_t* word, size_t dims,
                   const double* edges, size_t stride) {
  double acc = 0.0;
  size_t d = 0;
  const __m128i row_step = _mm_mullo_epi32(_mm_set_epi32(3, 2, 1, 0),
                                           _mm_set1_epi32(static_cast<int>(stride)));
  for (; d + 4 <= dims; d += 4) {
    const __m128i rows =
        _mm_add_epi32(row_step, _mm_set1_epi32(static_cast<int>(d * stride)));
    const __m128i idx = _mm_add_epi32(rows, Load4U8(word + d));
    const __m256d lo = _mm256_i32gather_pd(edges, idx, 8);
    const __m256d hi = _mm256_i32gather_pd(edges + 1, idx, 8);
    const __m256d dist = IntervalDist(_mm256_loadu_pd(q_dft + d), lo, hi);
    FoldOrdered(_mm256_mul_pd(dist, dist), &acc);
  }
  for (; d < dims; ++d) {
    const double* row = edges + d * stride;
    const double lo = row[word[d]];
    const double hi = row[word[d] + 1];
    double dist = 0.0;
    if (q_dft[d] < lo) {
      dist = lo - q_dft[d];
    } else if (q_dft[d] > hi) {
      dist = q_dft[d] - hi;
    }
    acc += dist * dist;
  }
  return acc;
}

double Avx2VaLbSq(const double* q_dft, const uint16_t* cells, size_t dims,
                  const double* edges, const uint32_t* offsets) {
  double acc = 0.0;
  size_t d = 0;
  for (; d + 4 <= dims; d += 4) {
    const __m128i off =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(offsets + d));
    const __m128i idx = _mm_add_epi32(off, Load4U16(cells + d));
    const __m256d lo = _mm256_i32gather_pd(edges, idx, 8);
    const __m256d hi = _mm256_i32gather_pd(edges + 1, idx, 8);
    const __m256d dist = IntervalDist(_mm256_loadu_pd(q_dft + d), lo, hi);
    FoldOrdered(_mm256_mul_pd(dist, dist), &acc);
  }
  for (; d < dims; ++d) {
    const double lo = edges[offsets[d] + cells[d]];
    const double hi = edges[offsets[d] + cells[d] + 1];
    double dist = 0.0;
    if (q_dft[d] < lo) {
      dist = lo - q_dft[d];
    } else if (q_dft[d] > hi) {
      dist = q_dft[d] - hi;
    }
    acc += dist * dist;
  }
  return acc;
}

double Avx2EapcaNodeLbSq(const double* q_stats, const double* env,
                         const uint32_t* ends, size_t segments) {
  double acc = 0.0;
  size_t s = 0;
  const __m128i pair_step = _mm_set_epi32(6, 4, 2, 0);
  const __m128i quad_step = _mm_set_epi32(12, 8, 4, 0);
  for (; s + 4 <= segments; s += 4) {
    alignas(32) double len[4];
    uint32_t begin = s == 0 ? 0 : ends[s - 1];
    for (size_t j = 0; j < 4; ++j) {
      len[j] = static_cast<double>(ends[s + j] - begin);
      begin = ends[s + j];
    }
    const __m128i idx2 =
        _mm_add_epi32(pair_step, _mm_set1_epi32(static_cast<int>(2 * s)));
    const __m128i idx4 =
        _mm_add_epi32(quad_step, _mm_set1_epi32(static_cast<int>(4 * s)));
    const __m256d q_mean = _mm256_i32gather_pd(q_stats, idx2, 8);
    const __m256d q_std = _mm256_i32gather_pd(q_stats + 1, idx2, 8);
    const __m256d min_mean = _mm256_i32gather_pd(env, idx4, 8);
    const __m256d max_mean = _mm256_i32gather_pd(env + 1, idx4, 8);
    const __m256d min_std = _mm256_i32gather_pd(env + 2, idx4, 8);
    const __m256d max_std = _mm256_i32gather_pd(env + 3, idx4, 8);
    const __m256d dm = IntervalDist(q_mean, min_mean, max_mean);
    const __m256d ds = IntervalDist(q_std, min_std, max_std);
    const __m256d term = _mm256_mul_pd(
        _mm256_load_pd(len),
        _mm256_add_pd(_mm256_mul_pd(dm, dm), _mm256_mul_pd(ds, ds)));
    FoldOrdered(term, &acc);
  }
  uint32_t begin = s == 0 ? 0 : ends[s - 1];
  for (; s < segments; ++s) {
    const double q_mean = q_stats[2 * s];
    const double q_std = q_stats[2 * s + 1];
    double dm = 0.0;
    if (q_mean < env[4 * s]) {
      dm = env[4 * s] - q_mean;
    } else if (q_mean > env[4 * s + 1]) {
      dm = q_mean - env[4 * s + 1];
    }
    double ds = 0.0;
    if (q_std < env[4 * s + 2]) {
      ds = env[4 * s + 2] - q_std;
    } else if (q_std > env[4 * s + 3]) {
      ds = q_std - env[4 * s + 3];
    }
    acc += static_cast<double>(ends[s] - begin) * (dm * dm + ds * ds);
    begin = ends[s];
  }
  return acc;
}

const KernelSet* Avx2KernelsImpl() {
  static constexpr KernelSet kAvx2 = {
      "avx2",
      /*raw_order_preserved=*/false,
      &Avx2EuclideanSq,
      &Avx2EuclideanSqAbandon,
      &Avx2EuclideanSqReordered,
      &Avx2SumSqDiff,
      &Avx2BoxDistSq,
      &Avx2IsaxMinDistSq,
      &Avx2SfaLbSq,
      &Avx2VaLbSq,
      &Avx2EapcaNodeLbSq,
  };
  return &kAvx2;
}

}  // namespace hydra::core::simd::internal

#else  // !(__AVX2__ && __FMA__)

namespace hydra::core::simd::internal {

const KernelSet* Avx2KernelsImpl() { return nullptr; }

}  // namespace hydra::core::simd::internal

#endif
