// The scalar kernel set: the pre-SIMD loops, kept verbatim as the
// permanent reference every other set is differentially tested against.
// Compiled with -ffp-contract=off so the reference semantics cannot drift
// with compiler defaults.
#include "core/simd/kernels.h"
#include "core/simd/kernels_internal.h"

namespace hydra::core::simd::internal {

double ScalarEuclideanSq(const Value* a, const Value* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

double ScalarEuclideanSqAbandon(const Value* a, const Value* b, size_t n,
                                double bound) {
  double acc = 0.0;
  size_t i = 0;
  // Check the abandon condition every 8 dimensions to amortize the branch.
  constexpr size_t kStride = 8;
  while (i + kStride <= n) {
    for (size_t j = 0; j < kStride; ++j, ++i) {
      const double d = static_cast<double>(a[i]) - b[i];
      acc += d * d;
    }
    if (acc > bound) return acc;
  }
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

double ScalarEuclideanSqReordered(const Value* q_ordered,
                                  const Value* candidate,
                                  const uint32_t* order, size_t n,
                                  double bound) {
  double acc = 0.0;
  size_t i = 0;
  constexpr size_t kStride = 8;
  while (i + kStride <= n) {
    for (size_t j = 0; j < kStride; ++j, ++i) {
      const double diff =
          static_cast<double>(q_ordered[i]) - candidate[order[i]];
      acc += diff * diff;
    }
    if (acc > bound) return acc;
  }
  for (; i < n; ++i) {
    const double diff = static_cast<double>(q_ordered[i]) - candidate[order[i]];
    acc += diff * diff;
  }
  return acc;
}

double ScalarSumSqDiff(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double ScalarBoxDistSq(const double* q, const double* lo, const double* hi,
                       size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = 0.0;
    if (q[i] < lo[i]) {
      d = lo[i] - q[i];
    } else if (q[i] > hi[i]) {
      d = q[i] - hi[i];
    }
    acc += d * d;
  }
  return acc;
}

double ScalarIsaxMinDistSq(const double* paa_q, const uint8_t* symbols,
                           const uint8_t* bits, size_t segments,
                           const double* flat_lower, const double* flat_upper) {
  double acc = 0.0;
  for (size_t s = 0; s < segments; ++s) {
    if (bits[s] == 0) continue;  // whole-domain segment contributes 0
    const size_t idx = (size_t{1} << bits[s]) - 1 + symbols[s];
    const double lo = flat_lower[idx];
    const double hi = flat_upper[idx];
    const double q = paa_q[s];
    double d = 0.0;
    if (q < lo) {
      d = lo - q;
    } else if (q > hi) {
      d = q - hi;
    }
    acc += d * d;
  }
  return acc;
}

double ScalarSfaLbSq(const double* q_dft, const uint8_t* word, size_t dims,
                     const double* edges, size_t stride) {
  double acc = 0.0;
  for (size_t d = 0; d < dims; ++d) {
    const double* row = edges + d * stride;
    const double lo = row[word[d]];
    const double hi = row[word[d] + 1];
    double dist = 0.0;
    if (q_dft[d] < lo) {
      dist = lo - q_dft[d];
    } else if (q_dft[d] > hi) {
      dist = q_dft[d] - hi;
    }
    acc += dist * dist;
  }
  return acc;
}

double ScalarVaLbSq(const double* q_dft, const uint16_t* cells, size_t dims,
                    const double* edges, const uint32_t* offsets) {
  double acc = 0.0;
  for (size_t d = 0; d < dims; ++d) {
    const double lo = edges[offsets[d] + cells[d]];
    const double hi = edges[offsets[d] + cells[d] + 1];
    double dist = 0.0;
    if (q_dft[d] < lo) {
      dist = lo - q_dft[d];
    } else if (q_dft[d] > hi) {
      dist = q_dft[d] - hi;
    }
    acc += dist * dist;
  }
  return acc;
}

double ScalarEapcaNodeLbSq(const double* q_stats, const double* env,
                           const uint32_t* ends, size_t segments) {
  double acc = 0.0;
  uint32_t begin = 0;
  for (size_t s = 0; s < segments; ++s) {
    const double q_mean = q_stats[2 * s];
    const double q_std = q_stats[2 * s + 1];
    const double min_mean = env[4 * s];
    const double max_mean = env[4 * s + 1];
    const double min_std = env[4 * s + 2];
    const double max_std = env[4 * s + 3];
    double dm = 0.0;
    if (q_mean < min_mean) {
      dm = min_mean - q_mean;
    } else if (q_mean > max_mean) {
      dm = q_mean - max_mean;
    }
    double ds = 0.0;
    if (q_std < min_std) {
      ds = min_std - q_std;
    } else if (q_std > max_std) {
      ds = q_std - max_std;
    }
    acc += static_cast<double>(ends[s] - begin) * (dm * dm + ds * ds);
    begin = ends[s];
  }
  return acc;
}

const KernelSet& ScalarKernelsImpl() {
  static constexpr KernelSet kScalar = {
      "scalar",
      /*raw_order_preserved=*/true,
      &ScalarEuclideanSq,
      &ScalarEuclideanSqAbandon,
      &ScalarEuclideanSqReordered,
      &ScalarSumSqDiff,
      &ScalarBoxDistSq,
      &ScalarIsaxMinDistSq,
      &ScalarSfaLbSq,
      &ScalarVaLbSq,
      &ScalarEapcaNodeLbSq,
  };
  return kScalar;
}

}  // namespace hydra::core::simd::internal
