// Internal declarations shared by the kernel translation units: concrete
// kernel functions (so sets can alias a lower level's implementation and
// wide sets can fall back to scalar on short inputs) and the per-ISA set
// providers the registry assembles. Not part of the public surface.
#ifndef HYDRA_CORE_SIMD_KERNELS_INTERNAL_H_
#define HYDRA_CORE_SIMD_KERNELS_INTERNAL_H_

#include <cstddef>
#include <cstdint>

#include "core/simd/kernels.h"
#include "core/types.h"

namespace hydra::core::simd::internal {

// Reference kernels (kernels_scalar.cc) — verbatim the pre-SIMD loops.
double ScalarEuclideanSq(const Value* a, const Value* b, size_t n);
double ScalarEuclideanSqAbandon(const Value* a, const Value* b, size_t n,
                                double bound);
double ScalarEuclideanSqReordered(const Value* q_ordered,
                                  const Value* candidate,
                                  const uint32_t* order, size_t n,
                                  double bound);
double ScalarSumSqDiff(const double* a, const double* b, size_t n);
double ScalarBoxDistSq(const double* q, const double* lo, const double* hi,
                       size_t n);
double ScalarIsaxMinDistSq(const double* paa_q, const uint8_t* symbols,
                           const uint8_t* bits, size_t segments,
                           const double* flat_lower, const double* flat_upper);
double ScalarSfaLbSq(const double* q_dft, const uint8_t* word, size_t dims,
                     const double* edges, size_t stride);
double ScalarVaLbSq(const double* q_dft, const uint16_t* cells, size_t dims,
                    const double* edges, const uint32_t* offsets);
double ScalarEapcaNodeLbSq(const double* q_stats, const double* env,
                           const uint32_t* ends, size_t segments);

// AVX2 summary kernels (kernels_avx2.cc) — also used by the AVX-512 set,
// whose extra width does not pay for these short, gather-bound loops.
// Declared unconditionally; only referenced when the AVX2 set exists.
double Avx2SumSqDiff(const double* a, const double* b, size_t n);
double Avx2BoxDistSq(const double* q, const double* lo, const double* hi,
                     size_t n);
double Avx2IsaxMinDistSq(const double* paa_q, const uint8_t* symbols,
                         const uint8_t* bits, size_t segments,
                         const double* flat_lower, const double* flat_upper);
double Avx2SfaLbSq(const double* q_dft, const uint8_t* word, size_t dims,
                   const double* edges, size_t stride);
double Avx2VaLbSq(const double* q_dft, const uint16_t* cells, size_t dims,
                  const double* edges, const uint32_t* offsets);
double Avx2EapcaNodeLbSq(const double* q_stats, const double* env,
                         const uint32_t* ends, size_t segments);

// Set providers: nullptr when the set could not be compiled for this
// target (non-x86 builds).
const KernelSet& ScalarKernelsImpl();
const KernelSet& PortableKernelsImpl();
const KernelSet* Avx2KernelsImpl();
const KernelSet* Avx512KernelsImpl();
const KernelSet* NeonKernelsImpl();

/// Reordered (gather-based) kernels fall back to the scalar loop below
/// this width: the gather setup only pays off on wide series, and the
/// existing scalar-path tests pin behavior at short widths.
inline constexpr size_t kMinGatherWidth = 48;

}  // namespace hydra::core::simd::internal

#endif  // HYDRA_CORE_SIMD_KERNELS_INTERNAL_H_
