// The portable kernel set: 4-wide stripe-unrolled raw-series kernels in
// plain C++ (no intrinsics), compiled with -ffp-contract=off. Exists so
// the multi-accumulator reduction shape is exercised on every platform,
// including targets where the ISA sets cannot be compiled. Summary
// lower-bound kernels alias the scalar reference — they are required to be
// order-preserving, and without intrinsics there is nothing to gain from
// restating the loop.
#include "core/simd/kernels.h"
#include "core/simd/kernels_internal.h"

namespace hydra::core::simd::internal {
namespace {

// One 4-wide stripe step: acc[j] += (a[i+j] - b[i+j])^2. Shared by the
// plain and abandoning kernels so abandon(+inf) is bit-identical to plain.
inline void Stripe4(const Value* a, const Value* b, size_t i, double* acc) {
  const double d0 = static_cast<double>(a[i + 0]) - b[i + 0];
  const double d1 = static_cast<double>(a[i + 1]) - b[i + 1];
  const double d2 = static_cast<double>(a[i + 2]) - b[i + 2];
  const double d3 = static_cast<double>(a[i + 3]) - b[i + 3];
  acc[0] += d0 * d0;
  acc[1] += d1 * d1;
  acc[2] += d2 * d2;
  acc[3] += d3 * d3;
}

inline void Stripe4Reordered(const Value* q_ordered, const Value* candidate,
                             const uint32_t* order, size_t i, double* acc) {
  const double d0 = static_cast<double>(q_ordered[i + 0]) - candidate[order[i + 0]];
  const double d1 = static_cast<double>(q_ordered[i + 1]) - candidate[order[i + 1]];
  const double d2 = static_cast<double>(q_ordered[i + 2]) - candidate[order[i + 2]];
  const double d3 = static_cast<double>(q_ordered[i + 3]) - candidate[order[i + 3]];
  acc[0] += d0 * d0;
  acc[1] += d1 * d1;
  acc[2] += d2 * d2;
  acc[3] += d3 * d3;
}

inline double Combine(const double* acc) {
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

// Shared body: kAbandon selects blockwise partial-sum checks (every 16
// dimensions, i.e. 4 stripes). The non-abandoning instantiation performs
// the exact same stripe sequence, so the two agree bitwise when no block
// ever exceeds `bound`.
template <bool kAbandon>
double EuclideanImpl(const Value* a, const Value* b, size_t n, double bound) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  if constexpr (kAbandon) {
    while (i + 16 <= n) {
      Stripe4(a, b, i, acc);
      Stripe4(a, b, i + 4, acc);
      Stripe4(a, b, i + 8, acc);
      Stripe4(a, b, i + 12, acc);
      i += 16;
      const double partial = Combine(acc);
      if (partial > bound) return partial;
    }
  }
  for (; i + 4 <= n; i += 4) Stripe4(a, b, i, acc);
  double total = Combine(acc);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return total;
}

double PortableEuclideanSq(const Value* a, const Value* b, size_t n) {
  return EuclideanImpl<false>(a, b, n, 0.0);
}

double PortableEuclideanSqAbandon(const Value* a, const Value* b, size_t n,
                                  double bound) {
  return EuclideanImpl<true>(a, b, n, bound);
}

double PortableEuclideanSqReordered(const Value* q_ordered,
                                    const Value* candidate,
                                    const uint32_t* order, size_t n,
                                    double bound) {
  if (n < kMinGatherWidth) {
    return ScalarEuclideanSqReordered(q_ordered, candidate, order, n, bound);
  }
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  while (i + 16 <= n) {
    Stripe4Reordered(q_ordered, candidate, order, i, acc);
    Stripe4Reordered(q_ordered, candidate, order, i + 4, acc);
    Stripe4Reordered(q_ordered, candidate, order, i + 8, acc);
    Stripe4Reordered(q_ordered, candidate, order, i + 12, acc);
    i += 16;
    const double partial = Combine(acc);
    if (partial > bound) return partial;
  }
  for (; i + 4 <= n; i += 4) Stripe4Reordered(q_ordered, candidate, order, i, acc);
  double total = Combine(acc);
  for (; i < n; ++i) {
    const double diff = static_cast<double>(q_ordered[i]) - candidate[order[i]];
    total += diff * diff;
  }
  return total;
}

}  // namespace

const KernelSet& PortableKernelsImpl() {
  static constexpr KernelSet kPortable = {
      "portable",
      /*raw_order_preserved=*/false,
      &PortableEuclideanSq,
      &PortableEuclideanSqAbandon,
      &PortableEuclideanSqReordered,
      &ScalarSumSqDiff,
      &ScalarBoxDistSq,
      &ScalarIsaxMinDistSq,
      &ScalarSfaLbSq,
      &ScalarVaLbSq,
      &ScalarEapcaNodeLbSq,
  };
  return kPortable;
}

}  // namespace hydra::core::simd::internal
