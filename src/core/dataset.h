// In-memory data series collection with contiguous storage.
#ifndef HYDRA_CORE_DATASET_H_
#define HYDRA_CORE_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/types.h"

namespace hydra::core {

/// A collection of equal-length data series stored contiguously
/// (series-major), mirroring the raw binary files of the paper's framework.
///
/// The dataset is the ground truth "raw data file": index methods must route
/// all access to it through io::CountedStorage so that sequential reads and
/// random seeks are charged to the I/O ledger.
///
/// A Dataset either owns its values (the normal case: generators and
/// io::ReadSeriesFile produce owning datasets) or borrows a contiguous
/// sub-range of another dataset's buffer (a *slice*, see Slice). Slices are
/// the shard views of the sharded index subsystem: shard i is built over
/// data.Slice(begin_i, count_i) and addresses series by *local* id in
/// [0, count_i); the sharded container maps local ids back to global ones
/// by adding begin_i. Slices are read-only and never copy series values.
class Dataset {
 public:
  Dataset() = default;
  /// Creates an empty dataset of `length`-point series.
  Dataset(std::string name, size_t length);

  /// Appends one series; `series.size()` must equal `length()`.
  /// CHECK-aborts on a slice (slices are read-only views).
  void Append(SeriesView series);
  /// Pre-allocates storage for `n` series. CHECK-aborts on a slice.
  void Reserve(size_t n);

  /// Number of series in the collection.
  size_t size() const { return count_; }
  /// Number of points per series (the dimensionality).
  size_t length() const { return length_; }
  /// Dataset size in bytes (the size of the simulated raw file; for a
  /// slice, the size of the simulated per-shard partition file).
  size_t bytes() const { return count_ * length_ * sizeof(Value); }
  const std::string& name() const { return name_; }

  /// View of the i-th series.
  SeriesView operator[](size_t i) const {
    return SeriesView(data() + i * length_, length_);
  }

  /// The full value buffer (series-major).
  std::span<const Value> values() const {
    return std::span<const Value>(data(), count_ * length_);
  }

  /// Non-owning view of `count` contiguous series starting at `begin`
  /// (`begin + count` must not exceed size(); `count` must be positive).
  /// The returned dataset is read-only (mutators CHECK-abort) and shares
  /// this dataset's buffer, so this dataset must outlive the slice — the
  /// same lifetime contract SearchMethod already imposes on the dataset it
  /// is built over. Slicing a slice composes (offsets stay relative to the
  /// slice being cut).
  Dataset Slice(size_t begin, size_t count) const;

  /// True when this dataset borrows another's buffer (see Slice).
  bool is_slice() const { return borrowed_ != nullptr; }

  /// Mutable access for generators that fill series in place.
  /// CHECK-aborts on a slice.
  Value* AppendUninitialized();

  /// Z-normalizes every series in place (mean 0, stddev 1). Series with
  /// near-zero variance become all-zero. The paper's datasets are
  /// normalized in advance; generators call this once at the end.
  /// CHECK-aborts on a slice (normalize the parent instead).
  void ZNormalizeAll();

 private:
  const Value* data() const {
    return borrowed_ != nullptr ? borrowed_ : values_.data();
  }

  std::string name_;
  size_t length_ = 0;
  size_t count_ = 0;
  std::vector<Value> values_;
  /// Borrowed series-major buffer of a slice; nullptr for owning datasets.
  const Value* borrowed_ = nullptr;
};

/// Z-normalizes `series` in place. Near-constant input becomes all zeros.
void ZNormalize(std::span<Value> series);

}  // namespace hydra::core

#endif  // HYDRA_CORE_DATASET_H_
