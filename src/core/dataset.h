// In-memory data series collection with contiguous storage.
#ifndef HYDRA_CORE_DATASET_H_
#define HYDRA_CORE_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/types.h"

namespace hydra::core {

/// A collection of equal-length data series stored contiguously
/// (series-major), mirroring the raw binary files of the paper's framework.
///
/// The dataset is the ground truth "raw data file": index methods must route
/// all access to it through io::CountedStorage so that sequential reads and
/// random seeks are charged to the I/O ledger.
class Dataset {
 public:
  Dataset() = default;
  /// Creates an empty dataset of `length`-point series.
  Dataset(std::string name, size_t length);

  /// Appends one series; `series.size()` must equal `length()`.
  void Append(SeriesView series);
  /// Pre-allocates storage for `n` series.
  void Reserve(size_t n);

  /// Number of series in the collection.
  size_t size() const { return count_; }
  /// Number of points per series (the dimensionality).
  size_t length() const { return length_; }
  /// Dataset size in bytes (the size of the simulated raw file).
  size_t bytes() const { return values_.size() * sizeof(Value); }
  const std::string& name() const { return name_; }

  /// View of the i-th series.
  SeriesView operator[](size_t i) const {
    return SeriesView(values_.data() + i * length_, length_);
  }

  /// The full value buffer (series-major).
  std::span<const Value> values() const { return values_; }

  /// Mutable access for generators that fill series in place.
  Value* AppendUninitialized();

  /// Z-normalizes every series in place (mean 0, stddev 1). Series with
  /// near-zero variance become all-zero. The paper's datasets are
  /// normalized in advance; generators call this once at the end.
  void ZNormalizeAll();

 private:
  std::string name_;
  size_t length_ = 0;
  size_t count_ = 0;
  std::vector<Value> values_;
};

/// Z-normalizes `series` in place. Near-constant input becomes all zeros.
void ZNormalize(std::span<Value> series);

}  // namespace hydra::core

#endif  // HYDRA_CORE_DATASET_H_
