// In-memory data series collection with contiguous storage.
#ifndef HYDRA_CORE_DATASET_H_
#define HYDRA_CORE_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/types.h"

namespace hydra::core {

class RawSeriesSource;

/// A collection of equal-length data series stored contiguously
/// (series-major), mirroring the raw binary files of the paper's framework.
///
/// The dataset is the ground truth "raw data file": index methods must route
/// all access to it through io::CountedStorage so that sequential reads and
/// random seeks are charged to the I/O ledger.
///
/// A Dataset either owns its values (the normal case: generators and
/// io::ReadSeriesFile produce owning datasets) or borrows a contiguous
/// sub-range of another dataset's buffer (a *slice*, see Slice). Slices are
/// the shard views of the sharded index subsystem: shard i is built over
/// data.Slice(begin_i, count_i) and addresses series by *local* id in
/// [0, count_i); the sharded container maps local ids back to global ones
/// by adding begin_i. Slices are read-only and never copy series values.
///
/// A dataset may additionally carry a RawSeriesSource (the out-of-core
/// storage layer's buffer pool; see core/raw_source.h). operator[] and
/// values() always read the backing buffer directly — for a file-backed
/// dataset that buffer is the read-only mmap view, so bulk access (index
/// construction, scans) streams through the kernel page cache — while
/// io::CountedStorage routes the query-time verification reads through the
/// source so they become real, measured, budget-bounded I/O. Slices
/// propagate the source with their offset, so sharded slices over a
/// file-backed dataset compose zero-copy.
class Dataset {
 public:
  Dataset() = default;
  /// Creates an empty dataset of `length`-point series.
  Dataset(std::string name, size_t length);

  /// Creates a read-only dataset over an externally owned series-major
  /// buffer (the storage layer's mmap view). Like a slice, the result
  /// borrows: `values` must stay valid and unchanged for the dataset's
  /// lifetime, and mutators CHECK-abort. `count` may be 0; `length` must
  /// be positive.
  static Dataset BorrowedView(std::string name, const Value* values,
                              size_t count, size_t length);

  /// Appends one series; `series.size()` must equal `length()`.
  /// CHECK-aborts on a slice (slices are read-only views).
  void Append(SeriesView series);
  /// Pre-allocates storage for `n` series. CHECK-aborts on a slice.
  void Reserve(size_t n);

  /// Number of series in the collection.
  size_t size() const { return count_; }
  /// Number of points per series (the dimensionality).
  size_t length() const { return length_; }
  /// Dataset size in bytes (the size of the simulated raw file; for a
  /// slice, the size of the simulated per-shard partition file).
  size_t bytes() const { return count_ * length_ * sizeof(Value); }
  const std::string& name() const { return name_; }

  /// View of the i-th series.
  SeriesView operator[](size_t i) const {
    return SeriesView(data() + i * length_, length_);
  }

  /// The full value buffer (series-major).
  std::span<const Value> values() const {
    return std::span<const Value>(data(), count_ * length_);
  }

  /// Non-owning view of `count` contiguous series starting at `begin`
  /// (`begin + count` must not exceed size(); `count` must be positive).
  /// The returned dataset is read-only (mutators CHECK-abort) and shares
  /// this dataset's buffer, so this dataset must outlive the slice — the
  /// same lifetime contract SearchMethod already imposes on the dataset it
  /// is built over. Slicing a slice composes (offsets stay relative to the
  /// slice being cut).
  Dataset Slice(size_t begin, size_t count) const;

  /// True when this dataset borrows another's buffer (see Slice).
  bool is_slice() const { return borrowed_ != nullptr; }

  /// Attaches the raw-series source serving this dataset's verification
  /// reads (called once by the storage layer on the dataset it returns;
  /// `source` must outlive the dataset and every slice cut from it).
  /// `base` is the index of this dataset's first series within the source.
  void AttachRawSource(RawSeriesSource* source, size_t base = 0) {
    raw_source_ = source;
    raw_base_ = base;
  }
  /// The attached raw-series source, or nullptr for a fully RAM-resident
  /// dataset (reads stay pointer dereferences).
  RawSeriesSource* raw_source() const { return raw_source_; }
  /// Index of this dataset's series 0 within raw_source() — nonzero for
  /// slices of a file-backed dataset.
  size_t raw_base() const { return raw_base_; }

  /// Mutable access for generators that fill series in place.
  /// CHECK-aborts on a slice.
  Value* AppendUninitialized();

  /// Z-normalizes every series in place (mean 0, stddev 1). Series with
  /// near-zero variance become all-zero. The paper's datasets are
  /// normalized in advance; generators call this once at the end.
  /// CHECK-aborts on a slice (normalize the parent instead).
  void ZNormalizeAll();

 private:
  const Value* data() const {
    return borrowed_ != nullptr ? borrowed_ : values_.data();
  }

  std::string name_;
  size_t length_ = 0;
  size_t count_ = 0;
  std::vector<Value> values_;
  /// Borrowed series-major buffer of a slice; nullptr for owning datasets.
  const Value* borrowed_ = nullptr;
  /// Out-of-core verification-read source (see AttachRawSource); nullptr
  /// for RAM-resident datasets.
  RawSeriesSource* raw_source_ = nullptr;
  size_t raw_base_ = 0;
};

/// Z-normalizes `series` in place. Near-constant input becomes all zeros.
void ZNormalize(std::span<Value> series);

}  // namespace hydra::core

#endif  // HYDRA_CORE_DATASET_H_
