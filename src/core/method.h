// The unified interface every similarity search method implements: this is
// the paper's "same conditions" evaluation contract.
#ifndef HYDRA_CORE_METHOD_H_
#define HYDRA_CORE_METHOD_H_

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "core/knn.h"
#include "core/query_spec.h"
#include "core/search_stats.h"
#include "core/types.h"
#include "util/check.h"
#include "util/status.h"

namespace hydra::io {
class IndexWriter;
class IndexReader;
}  // namespace hydra::io

namespace hydra::core {

/// Structural footprint of an index (Figure 8 of the paper).
struct Footprint {
  /// Index nodes of any kind (internal + leaf).
  int64_t total_nodes = 0;
  /// Leaf nodes only.
  int64_t leaf_nodes = 0;
  /// Resident bytes: summaries, tree structure, breakpoint tables.
  int64_t memory_bytes = 0;
  /// Simulated on-disk bytes: leaf files, approximation files.
  int64_t disk_bytes = 0;
  /// Per-leaf occupancy in [0,1] (leaf fill factor).
  std::vector<double> leaf_fill_fractions;
  /// Per-leaf depth (root = 0).
  std::vector<int> leaf_depths;
};

/// Result of one query executed through SearchMethod::Execute: the answers
/// (squared distances, sorted ascending — k-NN neighbors or range matches)
/// plus the measurement ledger for this query alone. The ledger also
/// records which quality guarantee was actually delivered and whether an
/// execution budget fired; the accessors below surface both.
struct QueryResult {
  std::vector<Neighbor> neighbors;
  SearchStats stats;

  /// Guarantee actually delivered (may be stronger than requested — a
  /// method without ng support answers an ng request exactly — and drops
  /// to QualityMode::kNgApprox when a budget truncated the traversal).
  QualityMode delivered() const { return stats.answer_mode_delivered; }
  /// True when max_visited_leaves / max_raw_series stopped the search.
  bool budget_fired() const { return stats.budget_exhausted; }
};

/// Result of one exact k-NN query — the legacy name of QueryResult, kept
/// for the SearchKnn wrapper and its many callers.
using KnnResult = QueryResult;

/// Result of an r-range query (Definition 2 of the paper): every series
/// within *unsquared* distance r of the query, sorted by increasing
/// distance. Matches carry squared distances like every Neighbor.
struct RangeResult {
  std::vector<Neighbor> matches;
  SearchStats stats;
};

/// Aggregated answers of a batch of k-NN queries executed over one method
/// (serially or concurrently). Per-query entries are always kept in
/// workload order, independent of the thread interleaving that produced
/// them, and `total` is the per-query ledgers merged in that same order —
/// so a batch run is deterministic and comparable against a serial run.
struct BatchKnnResult {
  /// One result per query, in workload order.
  std::vector<QueryResult> queries;
  /// All per-query ledgers accumulated in workload order. cpu_seconds is
  /// the sum of per-query wall-clock compute, i.e. total CPU *work*, not
  /// batch wall-clock time (which shrinks with threads). The merged
  /// answer_mode_delivered is the weakest guarantee of the batch.
  SearchStats total;
  /// Worker threads the batch actually ran on (1 for a serial fallback).
  size_t threads_used = 1;
  /// Why the batch fell back to serial execution; empty when it ran
  /// concurrently or a single thread was requested.
  std::string serial_reason;
};

/// Static capabilities a method advertises to the harness.
struct MethodTraits {
  /// True when Execute (and the legacy Search* wrappers) on a *built*
  /// method are safe to call from multiple threads concurrently: query
  /// answering must not write any state shared between queries (index
  /// structure, storage cursors, scratch members). Build is never
  /// concurrent-safe. Defaults to false so new methods opt in explicitly.
  bool concurrent_queries = false;
  /// Human-readable reason when concurrent_queries is false (shown by the
  /// batch engine when it falls back to serial execution).
  std::string serial_reason;
  /// Per-mode quality support matrix (Table 1 of the companion study).
  /// kExact is universal; the flags advertise the approximate modes so
  /// the harness and CLI can report honest fallbacks instead of silently
  /// returning exact answers. Sequential scans are exact-only; the four
  /// ng-capable trees (ADS+, DSTree, iSAX2+, SFA) support every mode;
  /// M-tree, R*-tree, and VA+file add kEpsilon only.
  bool supports_ng = false;
  bool supports_epsilon = false;
  bool supports_delta_epsilon = false;
  /// True when the max_visited_leaves budget can actually bind: the
  /// traversal visits more than one leaf as it searches. False for the
  /// sequential scans and the VA+file (no leaves at all) and for ADS+
  /// (SIMS visits exactly one leaf, then refines skip-sequentially), so
  /// the CLI can refuse a leaf budget that could never fire instead of
  /// silently ignoring it. The max_raw_series budget binds everywhere.
  bool leaf_visit_budget = false;
  /// True when the method implements DoSave/DoOpen: its index can be
  /// persisted once by `hydra build` and reopened read-only by any number
  /// of later processes. False for the sequential scans (there is no index
  /// structure to persist); Save/Open refuse with `persistence_reason`
  /// instead of silently rebuilding, mirroring the quality-mode honesty
  /// contract.
  bool supports_persistence = false;
  /// Human-readable reason when supports_persistence is false (surfaced by
  /// the CLI's exit-1 refusal and by `hydra methods`).
  std::string persistence_reason{};
  /// True when the method can serve as one shard of a shard::ShardedIndex:
  /// it builds over any contiguous Dataset slice, addresses series by
  /// local id, and its k-NN driver honors KnnPlan::shared_bound. True for
  /// the seven index methods; false for the sequential scans (no index
  /// partition to build — the batch engine's --threads already
  /// parallelizes them) and for the sharded container itself (no nesting).
  bool shardable = false;
  /// Human-readable reason when shardable is false (surfaced by the CLI's
  /// --shards refusal and by `hydra methods`).
  std::string shard_reason{};
  /// True when the method's traversal drivers run on the shared engine
  /// (core::BestFirstTraverse / ParallelScan) and honor
  /// KnnPlan::query_threads / RangePlan::query_threads: N workers drain
  /// one query's candidate frontier cooperatively, and exact k-NN and
  /// range answers stay bit-identical to the serial loop at any worker
  /// count. True for the five tree drivers (ADS+, DSTree, iSAX2+, M-tree,
  /// SFA); false for the sequential scans (a flat scan has no traversal
  /// frontier to share — batch --threads already parallelizes them) and
  /// for the methods not yet restructured onto the engine.
  bool intra_query_parallel = false;
  /// Human-readable reason when intra_query_parallel is false (surfaced by
  /// the CLI's --query-threads refusal and by `hydra methods`).
  std::string intra_query_reason{};

  /// Whether queries of mode `mode` run natively (kExact always does).
  bool SupportsMode(QualityMode mode) const {
    switch (mode) {
      case QualityMode::kExact:
        return true;
      case QualityMode::kNgApprox:
        return supports_ng;
      case QualityMode::kEpsilon:
        return supports_epsilon;
      case QualityMode::kDeltaEpsilon:
        return supports_delta_epsilon;
    }
    return false;
  }
};

/// Empty when the method advertises `mode`; otherwise a human-readable
/// reason ("method supports modes: exact, epsilon") for CLI errors and
/// fallback notes.
std::string ModeFallbackReason(const MethodTraits& traits, QualityMode mode);

/// Abstract whole-matching similarity search method. Implementations: the
/// ten methods of the paper (Table 1) behind one contract.
///
/// Lifecycle (all NVI, state-checked once in the base class):
///
///     unbuilt --Build(data)--> built --Save(dir)--> built (+ index file)
///     unbuilt --Open(dir, data)--> built
///
/// Build constructs the index from scratch; Save persists a built index
/// into a versioned, checksummed container (io::IndexWriter); Open
/// rehydrates a persisted index against the same dataset and answers
/// every QuerySpec mode bit-identically to the freshly built index.
/// Save requires a built method and Open an unbuilt one (never
/// double-open) — violating either CHECK-aborts, because lifecycle misuse
/// is a programmer error; everything a *file* can get wrong (corruption,
/// version or fingerprint mismatch) comes back as a util::Status instead.
///
/// The single query entry point is Execute(query, QuerySpec): it
/// validates the spec once, resolves the requested quality mode against
/// traits() (an unsupported mode falls back to the strongest supported
/// guarantee and the fallback is recorded in the result — never silent),
/// derives a KnnPlan, and dispatches to the protected Do* hooks. The
/// legacy SearchKnn / SearchRange / SearchKnnApproximate entry points are
/// thin wrappers over Execute, kept for existing callers and slated for
/// removal.
///
/// Lifetime: the Dataset passed to Build / Open must outlive the method;
/// methods keep a pointer to it as the simulated raw data file.
class SearchMethod {
 public:
  virtual ~SearchMethod() = default;

  /// Human-readable method name ("ADS+", "DSTree", ...).
  virtual std::string name() const = 0;

  /// Capabilities of this method; see MethodTraits. The default is the
  /// conservative "queries must run serially, exact-only, no persistence".
  virtual MethodTraits traits() const {
    return {.concurrent_queries = false,
            .serial_reason = "method has not been audited for concurrent "
                             "query execution",
            .persistence_reason =
                "method implements no DoSave/DoOpen hooks",
            .shard_reason =
                "method has not been audited for sharded execution",
            .intra_query_reason =
                "method has not been restructured onto the shared "
                "traversal engine"};
  }

  /// Builds the index / pre-organizes the data. For sequential scans this
  /// is a no-op that records the dataset pointer. Never concurrent-safe;
  /// must complete before any query. CHECK-aborts on an already
  /// built/opened method — build into a fresh instance instead.
  BuildStats Build(const Dataset& data);

  /// Persists the built index under `dir` (creating the directory) as
  /// `dir`/index.hydra. Requires a built method (CHECK-aborts otherwise).
  /// Returns the serialized file size in bytes, or an error when the
  /// method's traits() do not advertise persistence or the file cannot be
  /// written. Const: saving never mutates the index, so an adaptive
  /// method (ADS+) may be saved at any point of its life and the opened
  /// copy resumes from exactly that state.
  util::Result<int64_t> Save(const std::string& dir) const;

  /// Rehydrates the index persisted under `dir`, replacing Build. The
  /// method must be unbuilt (CHECK-aborts on double-open or open after
  /// build); `data` must be the exact collection the index was built over
  /// (validated against the stored dataset fingerprint). On success the
  /// method is built and the returned BuildStats carries the measured
  /// load_seconds (cpu_seconds stays 0: nothing was built) plus the index
  /// file bytes read. Every file-level problem — missing or truncated
  /// file, checksum mismatch, foreign method, version or fingerprint
  /// mismatch — returns an error Status; user input never CHECK-aborts.
  util::Result<BuildStats> Open(const std::string& dir, const Dataset& data);

  /// True once Build or Open succeeded.
  bool built() const { return built_; }

  /// Answers one query as described by `spec` (see QuerySpec). Validates
  /// the spec (CHECK-aborts on programmer errors: k == 0, negative
  /// radius/epsilon, delta outside (0,1], approximate or budgeted range
  /// queries, budgets under kNgApprox — user input must be validated
  /// before building a spec), resolves the quality mode against traits(),
  /// and dispatches. The result records the guarantee actually delivered
  /// and whether a budget fired. Non-const because adaptive methods
  /// (ADS+) refine their structure during query answering; methods whose
  /// traits().concurrent_queries is true guarantee the call is still safe
  /// from multiple threads on a built index.
  QueryResult Execute(SeriesView query, const QuerySpec& spec);

  /// Legacy entry point (deprecated): exact k-NN, equivalent to
  /// Execute(query, QuerySpec::Knn(k)).
  KnnResult SearchKnn(SeriesView query, size_t k) {
    return Execute(query, QuerySpec::Knn(k));
  }

  /// Legacy entry point (deprecated): exact r-range query, equivalent to
  /// Execute(query, QuerySpec::Range(radius)) (`radius` is in distance
  /// units, not squared; must be non-negative).
  RangeResult SearchRange(SeriesView query, double radius) {
    QueryResult result = Execute(query, QuerySpec::Range(radius));
    return RangeResult{std::move(result.neighbors), result.stats};
  }

  /// Legacy entry point (deprecated): ng-approximate k-NN (Definition 7),
  /// equivalent to Execute(query, QuerySpec::NgApprox(k)). Methods whose
  /// traits lack ng support answer exactly — the result's delivered()
  /// reports the fallback.
  KnnResult SearchKnnApproximate(SeriesView query, size_t k) {
    return Execute(query, QuerySpec::NgApprox(k));
  }

  /// Index footprint; default is an empty footprint (sequential scans).
  virtual Footprint footprint() const { return {}; }

  /// Mean tightness of the lower bound over all leaves for `query`
  /// (Section 4.2). NaN when the method has no summarized leaves.
  virtual double MeanTlb(SeriesView /*query*/) const {
    return std::numeric_limits<double>::quiet_NaN();
  }

 protected:
  /// Build hook: constructs the index. Called exactly once, before any
  /// query, on an unbuilt method (the public Build enforces both).
  virtual BuildStats DoBuild(const Dataset& data) = 0;

  /// Serialization hook: writes the method's own structure into named,
  /// individually checksummed sections of the container (the base Save
  /// wrote the header — method name and dataset fingerprint — already).
  /// Only called when traits().supports_persistence; the default
  /// CHECK-aborts so persistent methods must override it.
  virtual void DoSave(io::IndexWriter* writer) const;

  /// Deserialization hook: the inverse of DoSave. Must rebuild the exact
  /// structure DoSave serialized — including configuration options, which
  /// override the constructor's so an index opens correctly regardless of
  /// how this instance was configured — and attach `data` as the raw
  /// file. Returns reader->status(): a truncated or corrupt section
  /// surfaces as an error, never a crash. Only called when
  /// traits().supports_persistence, after the base Open validated magic,
  /// version, method name, and dataset fingerprint.
  virtual util::Status DoOpen(io::IndexReader* reader, const Dataset& data);

  /// k-NN driver hook. The plan carries k plus the pruning knobs derived
  /// from the spec: bound_scale (epsilon), delta (leaf-visit stopping
  /// rule, only ever < 1 for methods advertising kDeltaEpsilon), and the
  /// explicit budgets. The all-defaults plan is the exact search; honoring
  /// a default plan must be bit-identical to ignoring it. Drivers set
  /// stats.budget_exhausted when an explicit budget stopped them (never
  /// for the delta rule) and leave answer_mode_delivered alone (Execute
  /// owns it). Neighbors are sorted by increasing *squared* distance.
  virtual KnnResult DoSearchKnn(SeriesView query, const KnnPlan& plan) = 0;

  /// ng-approximate hook (Definition 7): traverse one root-to-leaf path,
  /// visiting at most one leaf, and return the best candidates found — no
  /// error guarantee. Only called when traits().supports_ng; the default
  /// CHECK-aborts so ng-capable methods must override it.
  virtual KnnResult DoSearchKnnNg(SeriesView query, size_t k);

  /// Range driver hook. The plan carries the (guaranteed non-negative)
  /// radius plus the traversal width; query_threads is only ever > 1 for
  /// methods advertising intra_query_parallel, and a width-1 plan must be
  /// bit-identical to the pre-plan code paths.
  virtual RangeResult DoSearchRange(SeriesView query,
                                    const RangePlan& plan) = 0;

  /// Component bridges for composite methods (shard::ShardedIndex): a
  /// composite derived from SearchMethod may drive its *components'*
  /// protected hooks through these statics (C++ grants a derived class
  /// protected access only through its own type, not through a sibling's).
  /// The composite owns the contract the public NVI wrappers normally
  /// enforce: components must be built, plans validated, and specs
  /// resolved against traits before any bridge call.
  static KnnResult ComponentSearchKnn(SearchMethod* component,
                                      SeriesView query, const KnnPlan& plan) {
    return component->DoSearchKnn(query, plan);
  }
  static KnnResult ComponentSearchKnnNg(SearchMethod* component,
                                        SeriesView query, size_t k) {
    return component->DoSearchKnnNg(query, k);
  }
  static RangeResult ComponentSearchRange(SearchMethod* component,
                                          SeriesView query,
                                          const RangePlan& plan) {
    return component->DoSearchRange(query, plan);
  }
  static void ComponentSave(const SearchMethod& component,
                            io::IndexWriter* writer) {
    component.DoSave(writer);
  }
  /// Opens a component from the composite's own container (the composite
  /// already validated the container header; per-component fingerprints
  /// are the composite's manifest's job). Marks the component built on
  /// success, exactly like the public Open.
  static util::Status ComponentOpen(SearchMethod* component,
                                    io::IndexReader* reader,
                                    const Dataset& data) {
    HYDRA_CHECK_MSG(!component->built_,
                    "ComponentOpen on an already built component");
    util::Status opened = component->DoOpen(reader, data);
    if (opened.ok()) {
      component->built_ = true;
      component->built_over_ = &data;
    }
    return opened;
  }

 private:
  bool built_ = false;
  /// The collection this method was built over (Build/Open record it);
  /// Save derives the dataset fingerprint from it.
  const Dataset* built_over_ = nullptr;
};

/// Ground-truth exact k-NN by brute force (used by tests and to label query
/// difficulty). Returns neighbors sorted by increasing distance.
std::vector<Neighbor> BruteForceKnn(const Dataset& data, SeriesView query,
                                    size_t k);

/// Recall of a candidate k-NN answer against the ground truth: the
/// fraction of the true neighbors the candidate recovered. A candidate
/// counts as correct when its distance is no worse than the true k-th
/// distance, so ties at the k-th distance count whichever id the ground
/// truth kept. The denominator is min(k, truth.size()) — k larger than the
/// collection cannot push recall below 1 for a complete answer. An empty
/// truth yields 1.0 (nothing to recover); an empty result yields 0.0.
double RecallAtK(const std::vector<Neighbor>& result,
                 const std::vector<Neighbor>& truth, size_t k);

/// Actual-vs-true distance ratio of the worst returned answer (the
/// companion study's approximation error): sqrt of result.back().dist_sq
/// over the true distance at the same rank, >= 1 up to rounding. 1.0 when
/// both are zero; +inf for an empty result (nothing returned) or a zero
/// true distance under a non-zero answer. CHECK-aborts on empty truth.
double ApproximationError(const std::vector<Neighbor>& result,
                          const std::vector<Neighbor>& truth);

}  // namespace hydra::core

#endif  // HYDRA_CORE_METHOD_H_
