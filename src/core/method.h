// The unified interface every similarity search method implements: this is
// the paper's "same conditions" evaluation contract.
#ifndef HYDRA_CORE_METHOD_H_
#define HYDRA_CORE_METHOD_H_

#include <limits>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/knn.h"
#include "core/search_stats.h"
#include "core/types.h"
#include "util/check.h"

namespace hydra::core {

/// Structural footprint of an index (Figure 8 of the paper).
struct Footprint {
  /// Index nodes of any kind (internal + leaf).
  int64_t total_nodes = 0;
  /// Leaf nodes only.
  int64_t leaf_nodes = 0;
  /// Resident bytes: summaries, tree structure, breakpoint tables.
  int64_t memory_bytes = 0;
  /// Simulated on-disk bytes: leaf files, approximation files.
  int64_t disk_bytes = 0;
  /// Per-leaf occupancy in [0,1] (leaf fill factor).
  std::vector<double> leaf_fill_fractions;
  /// Per-leaf depth (root = 0).
  std::vector<int> leaf_depths;
};

/// Result of one exact k-NN query: the answers (squared distances, sorted
/// ascending) plus the measurement ledger for this query alone.
struct KnnResult {
  std::vector<Neighbor> neighbors;
  SearchStats stats;
};

/// Result of an r-range query (Definition 2 of the paper): every series
/// within *unsquared* distance r of the query, sorted by increasing
/// distance. Matches carry squared distances like every Neighbor.
struct RangeResult {
  std::vector<Neighbor> matches;
  SearchStats stats;
};

/// Aggregated answers of a batch of k-NN queries executed over one method
/// (serially or concurrently). Per-query entries are always kept in
/// workload order, independent of the thread interleaving that produced
/// them, and `total` is the per-query ledgers merged in that same order —
/// so a batch run is deterministic and comparable against a serial run.
struct BatchKnnResult {
  /// One result per query, in workload order.
  std::vector<KnnResult> queries;
  /// All per-query ledgers accumulated in workload order. cpu_seconds is
  /// the sum of per-query wall-clock compute, i.e. total CPU *work*, not
  /// batch wall-clock time (which shrinks with threads).
  SearchStats total;
  /// Worker threads the batch actually ran on (1 for a serial fallback).
  size_t threads_used = 1;
  /// Why the batch fell back to serial execution; empty when it ran
  /// concurrently or a single thread was requested.
  std::string serial_reason;
};

/// Static capabilities a method advertises to the harness.
struct MethodTraits {
  /// True when SearchKnn/SearchRange/SearchKnnApproximate on a *built*
  /// method are safe to call from multiple threads concurrently: query
  /// answering must not write any state shared between queries (index
  /// structure, storage cursors, scratch members). Build is never
  /// concurrent-safe. Defaults to false so new methods opt in explicitly.
  bool concurrent_queries = false;
  /// Human-readable reason when concurrent_queries is false (shown by the
  /// batch engine when it falls back to serial execution).
  std::string serial_reason;
};

/// Abstract exact whole-matching k-NN search method. Implementations:
/// the ten methods of the paper (Table 1) behind one contract.
///
/// Lifetime: the Dataset passed to Build must outlive the method; methods
/// keep a pointer to it as the simulated raw data file.
class SearchMethod {
 public:
  virtual ~SearchMethod() = default;

  /// Human-readable method name ("ADS+", "DSTree", ...).
  virtual std::string name() const = 0;

  /// Capabilities of this method; see MethodTraits. The default is the
  /// conservative "queries must run serially".
  virtual MethodTraits traits() const {
    return {.concurrent_queries = false,
            .serial_reason = "method has not been audited for concurrent "
                             "query execution"};
  }

  /// Builds the index / pre-organizes the data. For sequential scans this
  /// is a no-op that records the dataset pointer. Never concurrent-safe;
  /// must complete before any Search* call.
  virtual BuildStats Build(const Dataset& data) = 0;

  /// Answers an exact k-NN query; neighbors are sorted by increasing
  /// *squared* Euclidean distance. Non-const because adaptive methods
  /// (ADS+) refine their structure during query answering; methods whose
  /// traits().concurrent_queries is true guarantee the call is still safe
  /// from multiple threads on a built index.
  virtual KnnResult SearchKnn(SeriesView query, size_t k) = 0;

  /// Answers an exact r-range query (`radius` is in distance units, not
  /// squared). Every method implements it; the lower-bounding machinery of
  /// SearchKnn prunes with the fixed bound r^2 instead of a shrinking bsf.
  /// Implementations square the radius, so the non-negative contract is
  /// enforced here, once, for all of them.
  RangeResult SearchRange(SeriesView query, double radius) {
    HYDRA_CHECK_MSG(radius >= 0.0, "range radius must be non-negative");
    return DoSearchRange(query, radius);
  }

  /// ng-approximate k-NN (Definition 7): traverses one path of the index,
  /// visiting at most one leaf, and returns the best candidates found — no
  /// error guarantee. The default falls back to the exact answer; the tree
  /// indexes that the paper marks ng-approximate (ADS+, DSTree, iSAX2+,
  /// SFA; Table 1) override it.
  virtual KnnResult SearchKnnApproximate(SeriesView query, size_t k) {
    return SearchKnn(query, k);
  }

  /// Index footprint; default is an empty footprint (sequential scans).
  virtual Footprint footprint() const { return {}; }

  /// Mean tightness of the lower bound over all leaves for `query`
  /// (Section 4.2). NaN when the method has no summarized leaves.
  virtual double MeanTlb(SeriesView /*query*/) const {
    return std::numeric_limits<double>::quiet_NaN();
  }

 protected:
  /// SearchRange implementation hook; `radius` is guaranteed non-negative.
  virtual RangeResult DoSearchRange(SeriesView query, double radius) = 0;
};

/// Ground-truth exact k-NN by brute force (used by tests and to label query
/// difficulty). Returns neighbors sorted by increasing distance.
std::vector<Neighbor> BruteForceKnn(const Dataset& data, SeriesView query,
                                    size_t k);

}  // namespace hydra::core

#endif  // HYDRA_CORE_METHOD_H_
