// The unified interface every similarity search method implements: this is
// the paper's "same conditions" evaluation contract.
#ifndef HYDRA_CORE_METHOD_H_
#define HYDRA_CORE_METHOD_H_

#include <limits>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/knn.h"
#include "core/search_stats.h"
#include "core/types.h"
#include "util/check.h"

namespace hydra::core {

/// Structural footprint of an index (Figure 8 of the paper).
struct Footprint {
  int64_t total_nodes = 0;
  int64_t leaf_nodes = 0;
  /// Resident bytes: summaries, tree structure, breakpoint tables.
  int64_t memory_bytes = 0;
  /// Simulated on-disk bytes: leaf files, approximation files.
  int64_t disk_bytes = 0;
  /// Per-leaf occupancy in [0,1] (leaf fill factor).
  std::vector<double> leaf_fill_fractions;
  /// Per-leaf depth (root = 0).
  std::vector<int> leaf_depths;
};

/// Result of one exact k-NN query: the answers plus the measurement ledger.
struct KnnResult {
  std::vector<Neighbor> neighbors;
  SearchStats stats;
};

/// Result of an r-range query (Definition 2 of the paper): every series
/// within distance r of the query, sorted by increasing distance.
struct RangeResult {
  std::vector<Neighbor> matches;
  SearchStats stats;
};

/// Abstract exact whole-matching k-NN search method. Implementations:
/// the ten methods of the paper (Table 1) behind one contract.
///
/// Lifetime: the Dataset passed to Build must outlive the method; methods
/// keep a pointer to it as the simulated raw data file.
class SearchMethod {
 public:
  virtual ~SearchMethod() = default;

  /// Human-readable method name ("ADS+", "DSTree", ...).
  virtual std::string name() const = 0;

  /// Builds the index / pre-organizes the data. For sequential scans this
  /// is a no-op that records the dataset pointer.
  virtual BuildStats Build(const Dataset& data) = 0;

  /// Answers an exact k-NN query. Non-const because adaptive methods
  /// (ADS+) refine their structure during query answering, and storage
  /// cursors move.
  virtual KnnResult SearchKnn(SeriesView query, size_t k) = 0;

  /// Answers an exact r-range query (`radius` is in distance units, not
  /// squared). Every method implements it; the lower-bounding machinery of
  /// SearchKnn prunes with the fixed bound r^2 instead of a shrinking bsf.
  /// Implementations square the radius, so the non-negative contract is
  /// enforced here, once, for all of them.
  RangeResult SearchRange(SeriesView query, double radius) {
    HYDRA_CHECK_MSG(radius >= 0.0, "range radius must be non-negative");
    return DoSearchRange(query, radius);
  }

  /// ng-approximate k-NN (Definition 7): traverses one path of the index,
  /// visiting at most one leaf, and returns the best candidates found — no
  /// error guarantee. The default falls back to the exact answer; the tree
  /// indexes that the paper marks ng-approximate (ADS+, DSTree, iSAX2+,
  /// SFA; Table 1) override it.
  virtual KnnResult SearchKnnApproximate(SeriesView query, size_t k) {
    return SearchKnn(query, k);
  }

  /// Index footprint; default is an empty footprint (sequential scans).
  virtual Footprint footprint() const { return {}; }

  /// Mean tightness of the lower bound over all leaves for `query`
  /// (Section 4.2). NaN when the method has no summarized leaves.
  virtual double MeanTlb(SeriesView /*query*/) const {
    return std::numeric_limits<double>::quiet_NaN();
  }

 protected:
  /// SearchRange implementation hook; `radius` is guaranteed non-negative.
  virtual RangeResult DoSearchRange(SeriesView query, double radius) = 0;
};

/// Ground-truth exact k-NN by brute force (used by tests and to label query
/// difficulty). Returns neighbors sorted by increasing distance.
std::vector<Neighbor> BruteForceKnn(const Dataset& data, SeriesView query,
                                    size_t k);

}  // namespace hydra::core

#endif  // HYDRA_CORE_METHOD_H_
