// Euclidean distance kernels with the paper's shared optimizations:
// (a) no square root, (b) early abandoning, (c) reordered early abandoning.
#ifndef HYDRA_CORE_DISTANCE_H_
#define HYDRA_CORE_DISTANCE_H_

#include <vector>

#include "core/types.h"

namespace hydra::core {

/// Plain squared Euclidean distance.
double SquaredEuclidean(SeriesView a, SeriesView b);

/// Squared Euclidean distance that abandons once the partial sum exceeds
/// `bound`; returns a value > `bound` when abandoned.
double SquaredEuclideanEarlyAbandon(SeriesView a, SeriesView b, double bound);

/// Per-query dimension ordering for reordered early abandoning: dimensions
/// are visited in decreasing |q_i|, so large contributions (and abandons)
/// come first on z-normalized data.
class QueryOrder {
 public:
  explicit QueryOrder(SeriesView query);

  /// Squared distance of `query` (the one given at construction) to
  /// `candidate`, visiting dimensions in the precomputed order and
  /// abandoning above `bound`.
  double Distance(SeriesView candidate, double bound) const;

  const std::vector<uint32_t>& order() const { return order_; }

 private:
  std::vector<Value> query_;     // copied query values
  std::vector<uint32_t> order_;  // dimension visit order
};

}  // namespace hydra::core

#endif  // HYDRA_CORE_DISTANCE_H_
