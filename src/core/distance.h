// Euclidean distance kernels with the paper's shared optimizations:
// (a) no square root, (b) early abandoning, (c) reordered early abandoning.
// All three dispatch to the process-wide core::simd kernel set (see
// core/simd/kernels.h for dispatch and the numerical contract).
#ifndef HYDRA_CORE_DISTANCE_H_
#define HYDRA_CORE_DISTANCE_H_

#include <vector>

#include "core/types.h"

namespace hydra::core {

/// Plain *squared* Euclidean distance (no square root is ever taken on a
/// hot path; compare against squared bounds).
double SquaredEuclidean(SeriesView a, SeriesView b);

/// Squared Euclidean distance that abandons once the partial sum exceeds
/// `bound` (a *squared* threshold); returns a value > `bound` when
/// abandoned, which is NOT the true distance — only its relation to
/// `bound` is meaningful.
double SquaredEuclideanEarlyAbandon(SeriesView a, SeriesView b, double bound);

/// Per-query dimension ordering for reordered early abandoning: dimensions
/// are visited in decreasing |q_i|, so large contributions (and abandons)
/// come first on z-normalized data.
///
/// A QueryOrder is reusable: Reset re-sorts it for a new query while
/// keeping its buffers, so repeated queries on one thread are
/// allocation-free once warm (see ScratchQueryOrder).
class QueryOrder {
 public:
  /// An empty order; Reset must be called before Distance.
  QueryOrder() = default;

  explicit QueryOrder(SeriesView query) { Reset(query); }

  /// Re-targets the order at `query`, reusing the existing buffers.
  void Reset(SeriesView query);

  /// *Squared* distance of the current query (the one given at
  /// construction or the last Reset) to `candidate`, visiting dimensions
  /// in the precomputed order and abandoning above the squared `bound`
  /// (abandoned results are only comparable against `bound`).
  double Distance(SeriesView candidate, double bound) const;

  /// The dimension visit order (decreasing |q_i|).
  const std::vector<uint32_t>& order() const { return order_; }

 private:
  std::vector<Value> query_;          // copied query values
  std::vector<uint32_t> order_;       // dimension visit order
  std::vector<Value> ordered_query_;  // query_[order_[i]], for the kernels
};

/// Thread-local reusable QueryOrder, Reset to `query`. Like ScratchKnnHeap:
/// at most one scratch order is live per thread — a second call re-targets
/// (and thus invalidates) the first. Every method uses at most one
/// QueryOrder per query, so query hot paths can share this scratch safely
/// even under concurrent batch execution.
QueryOrder& ScratchQueryOrder(SeriesView query);

}  // namespace hydra::core

#endif  // HYDRA_CORE_DISTANCE_H_
