// Shared concurrent best-first traversal engine: the one candidate-queue
// loop behind every tree driver's k-NN and range search, with optional
// intra-query parallelism (KnnPlan::query_threads) in the style of the
// parallel-indexing literature (MESSI/ParIS+ work queues): N workers drain
// a lock-sharded priority queue cooperatively, pruning against worker-local
// answer heaps that publish through one lock-free SharedBound.
//
// Determinism contract: the serial path (workers == 1) reproduces the
// classic single-queue best-first loop bit for bit — answers AND work
// counters. The parallel path guarantees bit-identical *answers* for exact
// k-NN and range queries at any worker count (worker-local heaps are merged
// by (dist_sq, id), and every worker's pruning bound is always >= the final
// k-th true distance — the SharedBound soundness contract — so no true
// neighbor is ever pruned or early-abandoned away); per-worker work
// counters vary with bound-arrival timing, like the sharded fan-out.
// Order-dependent disciplines (epsilon shrink, delta leaf caps, explicit
// budgets) are visit-order-sensitive, so SearchMethod::Execute only ever
// sets query_threads > 1 on pure-exact unbudgeted plans; the engine still
// honors every KnnPlan knob on the serial path.
#ifndef HYDRA_CORE_TRAVERSAL_H_
#define HYDRA_CORE_TRAVERSAL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "core/knn.h"
#include "core/query_spec.h"
#include "core/search_stats.h"
#include "obs/trace.h"
#include "util/check.h"

namespace hydra::core {

/// Drains a best-first candidate queue with `workers` cooperating workers.
///
/// `Item` is the driver's frontier entry (a lower bound plus a node
/// pointer) whose operator< orders the priority queue exactly like the
/// drivers' private loops did (greater-lb-first, i.e. a min-heap on the
/// bound). `pruned(item, w)` is the driver's stop test — "this lower bound
/// has reached worker w's current pruning bound" plus any stop/budget
/// flags; `expand(item, w, push)` visits the item (leaf scan or child
/// expansion), pushing new frontier entries through `push`.
///
/// Serial path (workers <= 1): seeds are pushed in order into one
/// std::priority_queue and the classic loop runs on the calling thread —
/// pop, break when pruned, expand — bit-identical to the drivers' old
/// private loops. A pruned pop ends the whole traversal (every remaining
/// item's bound is at least as large).
///
/// Parallel path: one mutex-guarded priority queue per worker, seeds dealt
/// round-robin, workers pop their own queue first and steal from others
/// when empty; `push` appends to the pushing worker's own queue. An atomic
/// outstanding-item counter provides termination (a worker exits when every
/// queue is empty and no item is mid-expand). A pruned pop discards that
/// item — and, when it came from the worker's own queue (where nobody else
/// can interleave a push), the whole queue, since the popped item was its
/// minimum and pruning bounds only ever tighten. Worker 0 always runs on
/// the calling thread; workers 1..N-1 are spawned per traversal (the
/// fixed util::ThreadPool must not be nested from a pool worker, and
/// queries arrive on pool workers under batch and shard fan-out).
template <typename Item>
void BestFirstTraverse(
    size_t workers, const std::vector<Item>& seeds,
    const std::function<bool(const Item&, size_t)>& pruned,
    const std::function<void(const Item&, size_t,
                             const std::function<void(Item)>&)>& expand) {
  if (workers <= 1) {
    HYDRA_OBS_SPAN_ARG("traversal", "worker", 0);
    std::priority_queue<Item> queue;
    for (const Item& seed : seeds) queue.push(seed);
    const std::function<void(Item)> push = [&queue](Item item) {
      queue.push(std::move(item));
    };
    while (!queue.empty()) {
      const Item item = queue.top();
      queue.pop();
      if (pruned(item, 0)) break;
      expand(item, 0, push);
    }
    return;
  }

  struct Slot {
    std::mutex mu;
    std::priority_queue<Item> queue;
  };
  std::vector<Slot> slots(workers);
  for (size_t i = 0; i < seeds.size(); ++i) {
    slots[i % workers].queue.push(seeds[i]);
  }
  std::atomic<int64_t> outstanding{static_cast<int64_t>(seeds.size())};

  auto worker_loop = [&](size_t w) {
    HYDRA_OBS_SPAN_ARG("traversal", "worker", w);
    const std::function<void(Item)> push = [&slots, &outstanding,
                                            w](Item item) {
      outstanding.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(slots[w].mu);
      slots[w].queue.push(std::move(item));
    };
    for (;;) {
      std::optional<Item> item;
      size_t from = w;
      for (size_t scan = 0; scan < workers && !item.has_value(); ++scan) {
        const size_t q = (w + scan) % workers;
        std::lock_guard<std::mutex> lock(slots[q].mu);
        if (!slots[q].queue.empty()) {
          item = slots[q].queue.top();
          slots[q].queue.pop();
          from = q;
        }
      }
      if (!item.has_value()) {
        if (outstanding.load(std::memory_order_acquire) == 0) return;
        std::this_thread::yield();
        continue;
      }
      if (pruned(*item, w)) {
        int64_t cleared = 1;
        if (from == w) {
          // Only this worker pushes into its own queue, so nothing can
          // have arrived since the pop: every remaining item is >= the
          // pruned minimum, and bounds only tighten — the queue is dead.
          std::lock_guard<std::mutex> lock(slots[w].mu);
          while (!slots[w].queue.empty()) {
            slots[w].queue.pop();
            ++cleared;
          }
        }
        outstanding.fetch_sub(cleared, std::memory_order_acq_rel);
        continue;
      }
      expand(*item, w, push);
      outstanding.fetch_sub(1, std::memory_order_acq_rel);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) threads.emplace_back(worker_loop, w);
  worker_loop(0);
  for (std::thread& t : threads) t.join();
}

/// Block-cyclic parallel scan over [0, count): `scan(w, begin, end)` is
/// called for disjoint blocks of `block` indices, workers grabbing the next
/// block off an atomic cursor. The serial path (workers <= 1) makes exactly
/// one call, scan(0, 0, count), so a driver's old flat loop moves into the
/// callback unchanged and stays bit-identical. ADS+'s summary pass and
/// skip-sequential refinement use this (its unit of work is a flat id
/// range, not a tree frontier).
inline void ParallelScan(
    size_t workers, size_t count, size_t block,
    const std::function<void(size_t, size_t, size_t)>& scan) {
  HYDRA_CHECK(block > 0);
  if (count == 0) return;
  if (workers <= 1) {
    HYDRA_OBS_SPAN_ARG("scan", "worker", 0);
    scan(0, 0, count);
    return;
  }
  std::atomic<size_t> cursor{0};
  auto worker_loop = [&](size_t w) {
    HYDRA_OBS_SPAN_ARG("scan", "worker", w);
    for (;;) {
      const size_t begin = cursor.fetch_add(block, std::memory_order_relaxed);
      if (begin >= count) return;
      scan(w, begin, std::min(begin + block, count));
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) threads.emplace_back(worker_loop, w);
  worker_loop(0);
  for (std::thread& t : threads) t.join();
}

/// Per-worker answer heaps and ledgers of one intra-query-parallel k-NN
/// traversal, plus the deterministic merge.
///
/// Worker 0 runs on the calling thread and answers into `primary` (the
/// driver's scratch heap, which the ng-descent bsf phase has usually
/// already primed) with `primary_stats` (the result ledger, already
/// carrying the descent's counters); workers 1..N-1 get engine-owned
/// plain heaps and fresh ledgers (spawned threads must not touch the
/// calling thread's thread_local scratch).
///
/// Bound wiring: with one worker this attaches plan.shared_bound to the
/// primary heap — exactly what the drivers did, a no-op when null. With
/// N > 1 every worker heap attaches to one SharedBound — the plan's when
/// sharded (shards x workers share a single bound per query) or an
/// engine-local one otherwise — so each worker's Bound() is
/// min(local k-th, global published k-th) and never drops below the final
/// k-th true distance.
class KnnWorkers {
 public:
  KnnWorkers(KnnHeap* primary, SearchStats* primary_stats,
             const KnnPlan& plan)
      : primary_(primary),
        primary_stats_(primary_stats),
        workers_(plan.query_threads < 1 ? 1 : plan.query_threads) {
    if (workers_ == 1) {
      primary_->ShareBound(plan.shared_bound);
      return;
    }
    SharedBound* bound =
        plan.shared_bound != nullptr ? plan.shared_bound : &own_bound_;
    primary_->ShareBound(bound);
    extra_heaps_.resize(workers_ - 1);
    extra_stats_.resize(workers_ - 1);
    for (KnnHeap& heap : extra_heaps_) {
      heap.Reset(plan.k);
      heap.ShareBound(bound);
    }
  }

  size_t workers() const { return workers_; }

  KnnHeap& heap(size_t w) {
    return w == 0 ? *primary_ : extra_heaps_[w - 1];
  }

  SearchStats& stats(size_t w) {
    return w == 0 ? *primary_stats_ : extra_stats_[w - 1];
  }

  /// Deterministic merge: extracts every worker's candidates, sorts the
  /// union by (dist_sq, id) — the repo-wide Neighbor order — and keeps the
  /// k best; folds the extra workers' ledgers into the primary one in
  /// worker order. With one worker this is exactly the old
  /// ExtractSortedTo, counters untouched.
  void Finish(size_t k, std::vector<Neighbor>* out) {
    primary_->ExtractSortedTo(out);
    if (workers_ == 1) return;
    std::vector<Neighbor> part;
    for (KnnHeap& heap : extra_heaps_) {
      heap.ExtractSortedTo(&part);
      out->insert(out->end(), part.begin(), part.end());
    }
    std::sort(out->begin(), out->end());
    if (out->size() > k) out->resize(k);
    for (const SearchStats& s : extra_stats_) primary_stats_->Add(s);
  }

 private:
  KnnHeap* primary_;
  SearchStats* primary_stats_;
  size_t workers_;
  SharedBound own_bound_;
  std::vector<KnnHeap> extra_heaps_;
  std::vector<SearchStats> extra_stats_;
};

/// The range-query counterpart of KnnWorkers: one RangeCollector and one
/// ledger per worker. Range pruning uses the fixed r^2 bound, so the set
/// of nodes visited — and therefore every counter — is traversal-order
/// independent; the merge only has to concatenate, sort by (dist_sq, id),
/// and sum ledgers in worker order.
class RangeWorkers {
 public:
  RangeWorkers(double radius_sq, SearchStats* primary_stats,
               size_t query_threads)
      : primary_stats_(primary_stats),
        workers_(query_threads < 1 ? 1 : query_threads) {
    collectors_.reserve(workers_);
    for (size_t w = 0; w < workers_; ++w) collectors_.emplace_back(radius_sq);
    extra_stats_.resize(workers_ - 1);
  }

  size_t workers() const { return workers_; }

  RangeCollector& collector(size_t w) { return collectors_[w]; }

  SearchStats& stats(size_t w) {
    return w == 0 ? *primary_stats_ : extra_stats_[w - 1];
  }

  /// Concatenates every worker's matches sorted by (dist_sq, id) into
  /// `*out` and folds the extra ledgers into the primary one.
  void Finish(std::vector<Neighbor>* out) {
    *out = collectors_[0].TakeSorted();
    if (workers_ == 1) return;
    for (size_t w = 1; w < workers_; ++w) {
      const std::vector<Neighbor> part = collectors_[w].TakeSorted();
      out->insert(out->end(), part.begin(), part.end());
    }
    std::sort(out->begin(), out->end());
    for (const SearchStats& s : extra_stats_) primary_stats_->Add(s);
  }

 private:
  SearchStats* primary_stats_;
  size_t workers_;
  std::vector<RangeCollector> collectors_;
  std::vector<SearchStats> extra_stats_;
};

}  // namespace hydra::core

#endif  // HYDRA_CORE_TRAVERSAL_H_
