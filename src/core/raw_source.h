// The raw-series storage seam: an abstract source of individually
// addressed series reads, implemented by the out-of-core storage layer
// (storage::BufferPool over an mmap/pread-backed file). core knows only
// this interface, so the dependency points outward: storage depends on
// core, never the reverse.
//
// A Dataset optionally carries a RawSeriesSource (see Dataset::raw_source).
// When present, the query-time verification reads of the index methods —
// the disk-access pattern the paper's fig04/fig06/fig07 measure — are
// routed through it by io::CountedStorage instead of dereferencing the
// dataset's buffer, and the source records *measured* I/O counters into
// the SearchStats ledger (pool_hits/pool_misses/...), kept strictly apart
// from the modeled DiskModel counters. When absent (the in-RAM backend),
// reads stay plain pointer dereferences and the measured counters stay
// zero. Either way the bytes compared are identical, so answers are
// bit-identical across backends.
#ifndef HYDRA_CORE_RAW_SOURCE_H_
#define HYDRA_CORE_RAW_SOURCE_H_

#include <cstddef>
#include <cstdint>

#include "core/search_stats.h"
#include "core/types.h"

namespace hydra::core {

/// Abstract source of pinned raw-series reads. Implementations hand out
/// views into buffer-managed memory; the Pin guard keeps the underlying
/// page resident while the caller consumes the view.
class RawSeriesSource {
 public:
  /// Holds one page of one source resident. Reusable: passing the same Pin
  /// to a later ReadPinned releases the previous hold first (the
  /// pinned-page rule — a reader holds at most one pin and never fetches
  /// while holding a second, so a pool can never deadlock on pins even
  /// with a single frame). Destruction releases the hold.
  class Pin {
   public:
    Pin() = default;
    ~Pin() { Release(); }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    /// Drops the hold (idempotent). Views obtained through this pin are
    /// invalid afterwards.
    void Release() {
      if (source_ != nullptr) {
        RawSeriesSource* source = source_;
        source_ = nullptr;
        source->Unpin(token_);
      }
    }

   private:
    friend class RawSeriesSource;
    RawSeriesSource* source_ = nullptr;
    uint64_t token_ = 0;
  };

  virtual ~RawSeriesSource() = default;

  /// Reads series `index`, recording measured counters into `stats` (may
  /// be null). The returned view stays valid until the next ReadPinned
  /// through the same pin, or until the pin is released — callers must
  /// consume it before the next read (every verification loop computes a
  /// distance immediately, so this costs nothing).
  virtual SeriesView ReadPinned(size_t index, Pin* pin,
                                SearchStats* stats) = 0;

 protected:
  /// Releases the hold `token` identifies (called by Pin::Release).
  virtual void Unpin(uint64_t token) = 0;

  /// Pin plumbing for implementations: transfers the hold without
  /// exposing Pin internals publicly. BindPin assumes the pin is already
  /// released (callers release-then-bind).
  static void BindPin(Pin* pin, RawSeriesSource* source, uint64_t token) {
    pin->source_ = source;
    pin->token_ = token;
  }
  static RawSeriesSource* PinSource(const Pin& pin) { return pin.source_; }
  static uint64_t PinToken(const Pin& pin) { return pin.token_; }
};

}  // namespace hydra::core

#endif  // HYDRA_CORE_RAW_SOURCE_H_
