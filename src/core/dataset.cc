#include "core/dataset.h"

#include <cmath>

#include "util/check.h"

namespace hydra::core {

Dataset::Dataset(std::string name, size_t length)
    : name_(std::move(name)), length_(length) {
  HYDRA_CHECK_MSG(length_ > 0, "Dataset series length must be positive");
}

Dataset Dataset::BorrowedView(std::string name, const Value* values,
                              size_t count, size_t length) {
  HYDRA_CHECK_MSG(length > 0, "BorrowedView series length must be positive");
  HYDRA_CHECK_MSG(values != nullptr || count == 0,
                  "BorrowedView needs a buffer for a non-empty dataset");
  Dataset view;
  view.name_ = std::move(name);
  view.length_ = length;
  view.count_ = count;
  // A zero-length borrow still needs a non-null marker so the view stays
  // read-only (is_slice) even when empty.
  static const Value kEmptyMarker = 0;
  view.borrowed_ = values != nullptr ? values : &kEmptyMarker;
  return view;
}

void Dataset::Append(SeriesView series) {
  HYDRA_CHECK_MSG(!is_slice(), "Append on a slice (slices are read-only)");
  HYDRA_CHECK_MSG(series.size() == length_, "Append: series length mismatch");
  values_.insert(values_.end(), series.begin(), series.end());
  ++count_;
}

void Dataset::Reserve(size_t n) {
  HYDRA_CHECK_MSG(!is_slice(), "Reserve on a slice (slices are read-only)");
  values_.reserve(n * length_);
}

Dataset Dataset::Slice(size_t begin, size_t count) const {
  HYDRA_CHECK_MSG(count > 0, "Slice needs at least one series");
  HYDRA_CHECK_MSG(begin <= count_ && count <= count_ - begin,
                  "Slice range exceeds the dataset");
  Dataset slice;
  slice.name_ = name_ + "[" + std::to_string(begin) + "," +
                std::to_string(begin + count) + ")";
  slice.length_ = length_;
  slice.count_ = count;
  slice.borrowed_ = data() + begin * length_;
  // File-backed datasets hand their verification-read source down to every
  // slice (shard views stay zero-copy and pool-served); the base shifts so
  // the slice's local ids address the right file series.
  slice.raw_source_ = raw_source_;
  slice.raw_base_ = raw_base_ + begin;
  return slice;
}

Value* Dataset::AppendUninitialized() {
  HYDRA_CHECK_MSG(!is_slice(),
                  "AppendUninitialized on a slice (slices are read-only)");
  values_.resize(values_.size() + length_);
  ++count_;
  return values_.data() + (count_ - 1) * length_;
}

void Dataset::ZNormalizeAll() {
  HYDRA_CHECK_MSG(!is_slice(),
                  "ZNormalizeAll on a slice (normalize the parent dataset)");
  for (size_t i = 0; i < count_; ++i) {
    ZNormalize(std::span<Value>(values_.data() + i * length_, length_));
  }
}

void ZNormalize(std::span<Value> series) {
  const size_t n = series.size();
  if (n == 0) return;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (Value v : series) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double mean = sum / static_cast<double>(n);
  const double var = sum_sq / static_cast<double>(n) - mean * mean;
  constexpr double kMinVariance = 1e-12;
  if (var < kMinVariance) {
    for (Value& v : series) v = 0.0f;
    return;
  }
  const double inv_std = 1.0 / std::sqrt(var);
  for (Value& v : series) {
    v = static_cast<Value>((v - mean) * inv_std);
  }
}

}  // namespace hydra::core
