// The unified query description executed by SearchMethod::Execute: one
// struct expresses exact, ng-/epsilon-/delta-epsilon-approximate, and
// budgeted whole-matching queries (the companion study's Definitions 1-7).
#ifndef HYDRA_CORE_QUERY_SPEC_H_
#define HYDRA_CORE_QUERY_SPEC_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "core/search_stats.h"

namespace hydra::core {

class SharedBound;  // see core/knn.h

/// Flavor of a query: k nearest neighbors or a fixed-radius range.
enum class QueryKind : uint8_t { kKnn, kRange };

/// One whole-matching query, fully specified. Build a spec with the named
/// factories below (or aggregate-initialize it) and hand it to
/// SearchMethod::Execute, which validates it once and dispatches.
///
/// Quality modes (see QualityMode): kExact needs no parameters; kEpsilon
/// reads `epsilon`; kDeltaEpsilon reads `epsilon` and `delta`. Range
/// queries support only kExact and no budgets (the approximate-matching
/// literature, like the companion study, defines the relaxed guarantees
/// for k-NN queries).
///
/// Budgets cap the work of a k-NN query regardless of mode (except
/// kNgApprox, which is already the minimal one-leaf traversal): when a
/// budget stops a traversal early the answer keeps whatever candidates
/// were found, stats.budget_exhausted is set, and the delivered mode drops
/// to kNgApprox because no error bound survives a truncated search.
struct QuerySpec {
  QueryKind kind = QueryKind::kKnn;
  /// Neighbors requested (kKnn; must be >= 1).
  size_t k = 1;
  /// Range radius in *unsquared* distance units (kRange; must be >= 0).
  double radius = 0.0;
  /// Requested quality guarantee.
  QualityMode mode = QualityMode::kExact;
  /// Relative error bound of kEpsilon / kDeltaEpsilon (>= 0; 0 == exact).
  double epsilon = 0.0;
  /// Probability the epsilon bound holds under kDeltaEpsilon, in (0, 1];
  /// 1 degenerates to plain kEpsilon.
  double delta = 1.0;
  /// Budget: leaf visits allowed before the traversal stops (0 = no cap).
  int64_t max_visited_leaves = 0;
  /// Budget: raw series examinations allowed before the traversal stops
  /// (0 = no cap).
  int64_t max_raw_series = 0;
  /// Workers cooperating on this one query's traversal (>= 1; 1 = the
  /// classic serial loop). Only methods advertising
  /// MethodTraits::intra_query_parallel honor more than one, and only for
  /// traversals whose answers are visit-order independent: exact
  /// unbudgeted k-NN plans and range queries. Order-dependent disciplines
  /// (epsilon shrink, delta caps, explicit budgets) always run serially so
  /// their answers stay bit-identical to a query-threads=1 run.
  size_t query_threads = 1;

  static QuerySpec Knn(size_t k) {
    return {.kind = QueryKind::kKnn, .k = k};
  }
  static QuerySpec Range(double radius) {
    return {.kind = QueryKind::kRange, .radius = radius};
  }
  static QuerySpec NgApprox(size_t k) {
    return {.kind = QueryKind::kKnn, .k = k, .mode = QualityMode::kNgApprox};
  }
  static QuerySpec Epsilon(size_t k, double epsilon) {
    return {.kind = QueryKind::kKnn,
            .k = k,
            .mode = QualityMode::kEpsilon,
            .epsilon = epsilon};
  }
  static QuerySpec DeltaEpsilon(size_t k, double epsilon, double delta) {
    return {.kind = QueryKind::kKnn,
            .k = k,
            .mode = QualityMode::kDeltaEpsilon,
            .epsilon = epsilon,
            .delta = delta};
  }

  bool has_budget() const {
    return max_visited_leaves > 0 || max_raw_series > 0;
  }
};

/// Derived per-query execution plan handed to the DoSearchKnn drivers: the
/// product of Execute() resolving a QuerySpec against the method's traits.
/// The all-defaults plan is the exact search, and every knob defaults to
/// "no effect", so exact execution through a plan is bit-identical to the
/// pre-plan code paths.
struct KnnPlan {
  static constexpr int64_t kUnlimited =
      std::numeric_limits<int64_t>::max();

  size_t k = 1;
  /// Multiplier applied to the best-so-far before every lower-bound
  /// pruning comparison, in *squared*-distance space: 1/(1+epsilon)^2.
  /// Pruning a node whose lb_sq >= bsf_sq * bound_scale guarantees every
  /// reported distance is within (1+epsilon) of the truth. 1.0 == exact.
  double bound_scale = 1.0;
  /// The unsquared epsilon, for methods that prune on true (unsquared)
  /// distances (M-tree): shrink the unsquared bsf by 1/(1+epsilon).
  double epsilon = 0.0;
  /// delta of the delta-epsilon leaf-visit stopping rule; 1.0 disables it.
  double delta = 1.0;
  /// Explicit budgets from the QuerySpec (kUnlimited when unset). Drivers
  /// that stop because of these set stats.budget_exhausted; stopping via
  /// the delta rule is part of the delta-epsilon contract and does not.
  int64_t max_leaves = kUnlimited;
  int64_t max_raw = kUnlimited;
  /// Cross-shard pruning channel of the sharded index (never set by
  /// Execute — only shard::ShardedIndex's fan-out fills it, one bound per
  /// query). Drivers attach it to their answer heap right after
  /// ScratchKnnHeap via KnnHeap::ShareBound; null (the unsharded case) is
  /// a no-op, so plan-driven code paths stay bit-identical without it.
  SharedBound* shared_bound = nullptr;
  /// Workers cooperating on this traversal through core::BestFirstTraverse
  /// (see core/traversal.h). Execute sets it above 1 only on "pure exact"
  /// plans (bound_scale == 1, delta == 1, no explicit budgets) of methods
  /// whose traits advertise intra_query_parallel, because only
  /// order-independent answers survive a cooperative traversal
  /// bit-identically. Composes with shared_bound: under a sharded fan-out
  /// every shard's workers attach to the one cross-shard bound.
  size_t query_threads = 1;

  /// The delta-epsilon stopping rule over `total` units of random access:
  /// n_delta = ceil(delta * total), at least 1 (companion paper's
  /// leaf-visit rule; delta -> 0 degenerates to the one-leaf ng descent,
  /// delta == 1 disables the rule). Trees count leaves; skip-sequential
  /// methods (ADS+) count candidate series, their unit of random access.
  int64_t DeltaCap(int64_t total) const {
    if (delta >= 1.0 || total <= 0) return kUnlimited;
    const auto n_delta =
        static_cast<int64_t>(std::ceil(delta * static_cast<double>(total)));
    return std::max<int64_t>(1, n_delta);
  }

  /// Leaf visits allowed for a tree with `leaf_count` leaves: the tighter
  /// of the delta stopping rule and the explicit max_leaves budget.
  int64_t LeafCap(int64_t leaf_count) const {
    return std::min(max_leaves, DeltaCap(leaf_count));
  }

  /// The one stopping rule shared by every tree driver: true when
  /// `visited` leaf visits have reached the effective cap, in which case
  /// the traversal must stop before visiting another leaf. Records
  /// budget_exhausted in `*stats` only when the explicit max_leaves
  /// budget (not the delta rule, which is part of the delta-epsilon
  /// contract) was the binding constraint.
  bool LeafCapReached(int64_t visited, int64_t leaf_count,
                      SearchStats* stats) const {
    if (visited < LeafCap(leaf_count)) return false;
    if (visited >= max_leaves) stats->budget_exhausted = true;
    return true;
  }

  /// The raw-series twin of LeafCapReached, checked before every raw
  /// examination so `raw_series_examined` never exceeds max_raw: true when
  /// the budget is exhausted (recorded in `*stats`) and the traversal must
  /// stop.
  bool RawCapReached(SearchStats* stats) const {
    if (stats->raw_series_examined < max_raw) return false;
    stats->budget_exhausted = true;
    return true;
  }
};

/// Derived per-query execution plan of the range drivers, the r-range
/// counterpart of KnnPlan. Range queries are exact-only and unbudgeted
/// (CheckSpec enforces it), so the plan is just the radius plus the
/// traversal width; answers are visit-order independent under the fixed
/// r^2 bound, which is why query_threads needs no pure-exact gate here.
struct RangePlan {
  /// Range radius in *unsquared* distance units (>= 0; drivers square it).
  double radius = 0.0;
  /// Workers cooperating on the traversal (>= 1); see
  /// KnnPlan::query_threads. Only set above 1 for methods advertising
  /// intra_query_parallel.
  size_t query_threads = 1;
};

}  // namespace hydra::core

#endif  // HYDRA_CORE_QUERY_SPEC_H_
