// Symbolic Aggregate Approximation: Gaussian equi-depth discretization of
// PAA values. Breakpoints are nested across power-of-two cardinalities,
// which iSAX exploits for variable-cardinality words.
#ifndef HYDRA_TRANSFORM_SAX_H_
#define HYDRA_TRANSFORM_SAX_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace hydra::transform {

/// Maximum symbol resolution: 8 bits = alphabet of 256 (the paper's default
/// cardinality for SAX-based indexes).
inline constexpr int kMaxSaxBits = 8;

/// Precomputed N(0,1) equi-depth breakpoints for cardinalities 2^1..2^8.
/// For cardinality c there are c-1 breakpoints Phi^{-1}(i/c).
class SaxBreakpoints {
 public:
  /// Singleton accessor (tables are built once).
  static const SaxBreakpoints& Get();

  /// Breakpoints for the alphabet of size 2^bits (2^bits - 1 values).
  std::span<const double> For(int bits) const;

  /// Lower edge of symbol `s` at `bits` resolution (-inf for the first).
  double SymbolLower(uint8_t s, int bits) const;
  /// Upper edge of symbol `s` at `bits` resolution (+inf for the last).
  double SymbolUpper(uint8_t s, int bits) const;

  /// Flat symbol-interval tables for the kernel layer: entry
  /// (1 << bits) - 1 + symbol holds SymbolLower/Upper(symbol, bits) for
  /// bits 0..kMaxSaxBits (the bits == 0 entry is the whole domain,
  /// -inf/+inf). 2^(kMaxSaxBits+1) - 1 entries each.
  const double* FlatLower() const { return flat_lower_.data(); }
  const double* FlatUpper() const { return flat_upper_.data(); }

 private:
  SaxBreakpoints();
  std::vector<std::vector<double>> tables_;  // tables_[bits-1]
  std::vector<double> flat_lower_;           // indexed (1 << bits) - 1 + s
  std::vector<double> flat_upper_;
};

/// Discretizes one PAA value at `bits` resolution. Breakpoint nesting
/// guarantees SaxSymbol(v, b) == SaxSymbol(v, b') >> (b' - b) for b <= b'.
uint8_t SaxSymbol(double paa_value, int bits);

}  // namespace hydra::transform

#endif  // HYDRA_TRANSFORM_SAX_H_
