#include "transform/sfa.h"

#include <algorithm>
#include <limits>

#include "core/simd/kernels.h"
#include "util/check.h"

namespace hydra::transform {

SfaQuantizer SfaQuantizer::Train(
    const std::vector<std::vector<double>>& sample_dfts, int alphabet,
    Binning binning) {
  HYDRA_CHECK(alphabet >= 2 && alphabet <= 256);
  HYDRA_CHECK(!sample_dfts.empty());
  const size_t dims = sample_dfts.front().size();

  SfaQuantizer q;
  q.alphabet_ = alphabet;
  q.bins_.resize(dims);
  std::vector<double> column(sample_dfts.size());
  for (size_t d = 0; d < dims; ++d) {
    for (size_t i = 0; i < sample_dfts.size(); ++i) {
      HYDRA_DCHECK(sample_dfts[i].size() == dims);
      column[i] = sample_dfts[i][d];
    }
    std::sort(column.begin(), column.end());
    std::vector<double>& bins = q.bins_[d];
    bins.resize(alphabet - 1);
    if (binning == Binning::kEquiDepth) {
      for (int b = 1; b < alphabet; ++b) {
        const size_t idx = std::min(
            column.size() - 1, b * column.size() / static_cast<size_t>(alphabet));
        bins[b - 1] = column[idx];
      }
    } else {
      const double lo = column.front();
      const double hi = column.back();
      for (int b = 1; b < alphabet; ++b) {
        bins[b - 1] = lo + (hi - lo) * b / alphabet;
      }
    }
  }
  q.BuildFlatEdges();
  return q;
}

SfaQuantizer SfaQuantizer::FromBreakpoints(
    std::vector<std::vector<double>> bins, int alphabet) {
  HYDRA_CHECK(alphabet >= 2 && alphabet <= 256);
  for (const auto& b : bins) {
    HYDRA_CHECK_MSG(b.size() == static_cast<size_t>(alphabet) - 1,
                    "every dimension needs alphabet-1 breakpoints");
  }
  SfaQuantizer q;
  q.alphabet_ = alphabet;
  q.bins_ = std::move(bins);
  q.BuildFlatEdges();
  return q;
}

void SfaQuantizer::BuildFlatEdges() {
  const size_t stride = FlatStride();
  const double inf = std::numeric_limits<double>::infinity();
  flat_edges_.resize(bins_.size() * stride);
  for (size_t d = 0; d < bins_.size(); ++d) {
    double* row = flat_edges_.data() + d * stride;
    row[0] = -inf;
    for (size_t b = 0; b < bins_[d].size(); ++b) row[b + 1] = bins_[d][b];
    row[stride - 1] = inf;
  }
}

std::vector<uint8_t> SfaQuantizer::Quantize(std::span<const double> dft) const {
  HYDRA_DCHECK(dft.size() == bins_.size());
  std::vector<uint8_t> word(dft.size());
  for (size_t d = 0; d < dft.size(); ++d) {
    const auto& bins = bins_[d];
    word[d] = static_cast<uint8_t>(
        std::upper_bound(bins.begin(), bins.end(), dft[d]) - bins.begin());
  }
  return word;
}

double SfaQuantizer::LowerBoundSq(std::span<const double> q_dft,
                                  std::span<const uint8_t> word) const {
  HYDRA_DCHECK(q_dft.size() == word.size());
  HYDRA_DCHECK(q_dft.size() == bins_.size());
  return core::simd::ActiveKernels().sfa_lb_sq(
      q_dft.data(), word.data(), q_dft.size(), flat_edges_.data(),
      FlatStride());
}

size_t SfaQuantizer::MemoryBytes() const {
  size_t bytes = flat_edges_.size() * sizeof(double);
  for (const auto& bins : bins_) bytes += bins.size() * sizeof(double);
  return bytes;
}

}  // namespace hydra::transform
