#include "transform/vaplus.h"

#include <algorithm>
#include <cmath>

#include "core/simd/kernels.h"
#include "transform/kmeans1d.h"
#include "util/check.h"
#include "util/stats.h"

namespace hydra::transform {
namespace {

constexpr int kMaxBitsPerDim = VaPlusQuantizer::kMaxBitsPerDim;

std::vector<double> Column(const std::vector<std::vector<double>>& rows,
                           size_t d) {
  std::vector<double> col(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) col[i] = rows[i][d];
  return col;
}

}  // namespace

VaPlusQuantizer VaPlusQuantizer::Train(
    const std::vector<std::vector<double>>& dfts, int total_bits,
    Allocation allocation, CellPlacement placement) {
  HYDRA_CHECK(!dfts.empty());
  HYDRA_CHECK(total_bits >= 1);
  const size_t dims = dfts.front().size();

  // Bit allocation. Non-uniform: greedy rate-distortion — each extra bit
  // halves a dimension's cell width, so give the next bit to the dimension
  // with the largest remaining variance * 4^{-bits}.
  std::vector<int> bits(dims, 0);
  if (allocation == Allocation::kUniform) {
    const int per_dim = std::max(1, total_bits / static_cast<int>(dims));
    for (size_t d = 0; d < dims; ++d) {
      bits[d] = std::min(per_dim, kMaxBitsPerDim);
    }
  } else {
    std::vector<double> variance(dims);
    for (size_t d = 0; d < dims; ++d) {
      const auto col = Column(dfts, d);
      const double sd = util::Stddev(col);
      variance[d] = sd * sd;
    }
    for (int b = 0; b < total_bits; ++b) {
      size_t best = 0;
      double best_gain = -1.0;
      for (size_t d = 0; d < dims; ++d) {
        if (bits[d] >= kMaxBitsPerDim) continue;
        const double gain = variance[d] * std::pow(0.25, bits[d]);
        if (gain > best_gain) {
          best_gain = gain;
          best = d;
        }
      }
      if (best_gain <= 0.0) break;  // all dimensions degenerate or saturated
      ++bits[best];
    }
  }

  VaPlusQuantizer q;
  q.bits_ = bits;
  q.total_bits_ = total_bits;
  q.edges_.resize(dims);
  for (size_t d = 0; d < dims; ++d) {
    auto col = Column(dfts, d);
    const auto [mn_it, mx_it] = std::minmax_element(col.begin(), col.end());
    const double lo = *mn_it;
    const double hi = *mx_it;
    std::vector<double>& edges = q.edges_[d];
    const int cells = 1 << bits[d];
    edges.resize(cells + 1);
    edges.front() = lo;
    edges.back() = hi;
    if (cells > 1) {
      if (placement == CellPlacement::kKmeans) {
        const Kmeans1dResult km = Kmeans1d(col, cells);
        for (int c = 0; c + 1 < cells; ++c) edges[c + 1] = km.boundaries[c];
      } else {
        std::sort(col.begin(), col.end());
        for (int c = 1; c < cells; ++c) {
          edges[c] = col[std::min(col.size() - 1,
                                  c * col.size() / static_cast<size_t>(cells))];
        }
      }
      // Guarantee monotone edges even on degenerate data.
      for (int c = 1; c <= cells; ++c) {
        edges[c] = std::max(edges[c], edges[c - 1]);
      }
    }
  }
  q.BuildFlatEdges();
  return q;
}

VaPlusQuantizer VaPlusQuantizer::FromTables(
    std::vector<std::vector<double>> edges, std::vector<int> bits,
    int total_bits) {
  HYDRA_CHECK(edges.size() == bits.size());
  HYDRA_CHECK(total_bits >= 1);
  for (size_t d = 0; d < edges.size(); ++d) {
    HYDRA_CHECK_MSG(bits[d] >= 0 && bits[d] <= kMaxBitsPerDim,
                    "per-dimension bit count out of range");
    HYDRA_CHECK_MSG(
        edges[d].size() == (size_t{1} << bits[d]) + 1,
        "dimension needs 2^bits + 1 cell edges");
  }
  VaPlusQuantizer q;
  q.edges_ = std::move(edges);
  q.bits_ = std::move(bits);
  q.total_bits_ = total_bits;
  q.BuildFlatEdges();
  return q;
}

void VaPlusQuantizer::BuildFlatEdges() {
  edge_offsets_.resize(edges_.size());
  size_t total = 0;
  for (size_t d = 0; d < edges_.size(); ++d) {
    edge_offsets_[d] = static_cast<uint32_t>(total);
    total += edges_[d].size();
  }
  flat_edges_.clear();
  flat_edges_.reserve(total);
  for (const auto& row : edges_) {
    flat_edges_.insert(flat_edges_.end(), row.begin(), row.end());
  }
}

std::vector<uint16_t> VaPlusQuantizer::Quantize(
    std::span<const double> dft) const {
  HYDRA_DCHECK(dft.size() == dims());
  std::vector<uint16_t> cells(dims());
  for (size_t d = 0; d < dims(); ++d) {
    const auto& edges = edges_[d];
    if (edges.size() <= 2) {
      cells[d] = 0;
      continue;
    }
    // Interior edges are edges[1..cells-1]; cell = count of interior edges
    // below the value.
    const auto begin = edges.begin() + 1;
    const auto end = edges.end() - 1;
    cells[d] = static_cast<uint16_t>(std::upper_bound(begin, end, dft[d]) -
                                     begin);
  }
  return cells;
}

double VaPlusQuantizer::CellLowerBoundSq(
    std::span<const double> q_dft, std::span<const uint16_t> cells) const {
  HYDRA_DCHECK(q_dft.size() == dims());
  return core::simd::ActiveKernels().va_lb_sq(q_dft.data(), cells.data(),
                                              dims(), flat_edges_.data(),
                                              edge_offsets_.data());
}

double VaPlusQuantizer::CellUpperBoundSq(
    std::span<const double> q_dft, std::span<const uint16_t> cells) const {
  HYDRA_DCHECK(q_dft.size() == dims());
  double acc = 0.0;
  for (size_t d = 0; d < dims(); ++d) {
    const auto& edges = edges_[d];
    const double lo = edges[cells[d]];
    const double hi = edges[cells[d] + 1];
    const double dist =
        std::max(std::fabs(q_dft[d] - lo), std::fabs(q_dft[d] - hi));
    acc += dist * dist;
  }
  return acc;
}

size_t VaPlusQuantizer::ApproximationBytes() const {
  size_t used = 0;
  for (int b : bits_) {
    if (b > 0) ++used;
  }
  return used * sizeof(uint16_t);
}

size_t VaPlusQuantizer::MemoryBytes() const {
  size_t bytes = bits_.size() * sizeof(int);
  bytes += flat_edges_.size() * sizeof(double);
  bytes += edge_offsets_.size() * sizeof(uint32_t);
  for (const auto& edges : edges_) bytes += edges.size() * sizeof(double);
  return bytes;
}

}  // namespace hydra::transform
