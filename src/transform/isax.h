// Indexable SAX: per-segment symbols with independent cardinalities, the
// representation behind iSAX2+ and ADS+.
#ifndef HYDRA_TRANSFORM_ISAX_H_
#define HYDRA_TRANSFORM_ISAX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "transform/sax.h"

namespace hydra::transform {

/// An iSAX word: one symbol per segment, each at its own resolution
/// (0..kMaxSaxBits bits; 0 bits covers the whole value domain, as in an
/// index root). A node word with fewer bits covers all full-resolution
/// words sharing the same bit prefixes.
struct IsaxWord {
  std::vector<uint8_t> symbols;
  std::vector<uint8_t> bits;

  size_t segments() const { return symbols.size(); }

  /// Parsable debug form, e.g. "3@2 0@1 7@3".
  std::string DebugString() const;

  friend bool operator==(const IsaxWord& a, const IsaxWord& b) {
    return a.symbols == b.symbols && a.bits == b.bits;
  }
};

/// Full-resolution (kMaxSaxBits per segment) word for a PAA vector.
IsaxWord FullResolutionWord(std::span<const double> paa);

/// Drops a full-resolution symbol to `to_bits` resolution (keeps the top
/// bits; valid because Gaussian equi-depth breakpoints are nested).
/// `to_bits` == 0 yields 0 (the whole-domain symbol).
uint8_t ReduceSymbol(uint8_t full_symbol, int to_bits);

/// True if `node` covers `full`: every segment of `full` reduced to the
/// node's resolution equals the node's symbol.
bool WordCovers(const IsaxWord& node, const IsaxWord& full);

/// MINDIST^2: lower bound on the squared Euclidean distance between the
/// original of `paa_q` (query PAA, `points_per_segment` points each) and any
/// series whose iSAX word is covered by `w`.
double IsaxMinDistSq(std::span<const double> paa_q, const IsaxWord& w,
                     size_t points_per_segment);

}  // namespace hydra::transform

#endif  // HYDRA_TRANSFORM_ISAX_H_
