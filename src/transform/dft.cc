#include "transform/dft.h"

#include <cmath>
#include <complex>

#include "transform/fft.h"
#include "util/check.h"

namespace hydra::transform {

size_t MaxPackedCoeffs(size_t n, bool skip_dc) {
  return skip_dc ? n - 1 : n;
}

std::vector<double> PackedRealDft(core::SeriesView x, size_t num_coeffs,
                                  bool skip_dc) {
  const size_t n = x.size();
  HYDRA_CHECK(n >= 2);
  std::vector<std::complex<double>> freq(n);
  for (size_t i = 0; i < n; ++i) freq[i] = std::complex<double>(x[i], 0.0);
  Fft(&freq, /*inverse=*/false);

  const double unit = 1.0 / std::sqrt(static_cast<double>(n));
  const double paired = unit * std::sqrt(2.0);
  std::vector<double> packed;
  packed.reserve(MaxPackedCoeffs(n, skip_dc));
  if (!skip_dc) packed.push_back(freq[0].real() * unit);
  const size_t half = n / 2;
  for (size_t k = 1; k < half + (n % 2 == 1 ? 1 : 0); ++k) {
    packed.push_back(freq[k].real() * paired);
    packed.push_back(freq[k].imag() * paired);
  }
  if (n % 2 == 0) {
    // The Nyquist coefficient of an even-length real series is real-valued
    // and unpaired.
    packed.push_back(freq[half].real() * unit);
  }
  HYDRA_DCHECK(packed.size() == MaxPackedCoeffs(n, skip_dc));
  if (packed.size() > num_coeffs) packed.resize(num_coeffs);
  return packed;
}

}  // namespace hydra::transform
