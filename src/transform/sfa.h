// Symbolic Fourier Approximation: per-dimension discretization of DFT
// coefficients via Multiple Coefficient Binning (MCB), with equi-depth or
// equi-width bins (the paper tunes both; equi-depth wins).
#ifndef HYDRA_TRANSFORM_SFA_H_
#define HYDRA_TRANSFORM_SFA_H_

#include <cstdint>
#include <span>
#include <vector>

namespace hydra::transform {

/// Trained MCB quantizer: each DFT dimension has its own breakpoints.
class SfaQuantizer {
 public:
  enum class Binning { kEquiDepth, kEquiWidth };

  /// Trains breakpoints from sample DFT vectors (one inner vector per
  /// series, all of the same dimensionality). `alphabet` in [2, 256].
  static SfaQuantizer Train(
      const std::vector<std::vector<double>>& sample_dfts, int alphabet,
      Binning binning);

  /// Rebuilds a trained quantizer from persisted breakpoint tables (the
  /// inverse of BreakpointsFor over all dimensions). `alphabet` must lie
  /// in [2, 256] and every dimension must carry alphabet-1 breakpoints —
  /// CHECK-enforced, so callers deserializing untrusted bytes validate
  /// first.
  static SfaQuantizer FromBreakpoints(std::vector<std::vector<double>> bins,
                                      int alphabet);

  /// SFA word of a DFT vector: one symbol per dimension.
  std::vector<uint8_t> Quantize(std::span<const double> dft) const;

  /// Lower bound on the squared Euclidean distance between the originals:
  /// per-dimension distance from the query coefficient to the word's bin.
  /// Valid because the packed DFT is orthonormal and truncated.
  double LowerBoundSq(std::span<const double> q_dft,
                      std::span<const uint8_t> word) const;

  size_t dims() const { return bins_.size(); }
  int alphabet() const { return alphabet_; }

  /// Breakpoints of dimension `d` (alphabet-1 ascending values).
  std::span<const double> BreakpointsFor(size_t d) const { return bins_[d]; }

  /// Flat padded bin-edge table for the kernel layer: dimension d occupies
  /// the FlatStride() doubles starting at d * FlatStride(), laid out as
  /// [-inf, breakpoints..., +inf], so symbol w spans
  /// [row[w], row[w + 1]].
  const double* FlatEdges() const { return flat_edges_.data(); }
  size_t FlatStride() const { return static_cast<size_t>(alphabet_) + 1; }

  /// Resident size of the breakpoint tables in bytes.
  size_t MemoryBytes() const;

 private:
  /// Rebuilds flat_edges_ from bins_; every constructor path ends here.
  void BuildFlatEdges();

  std::vector<std::vector<double>> bins_;
  std::vector<double> flat_edges_;  // dims * (alphabet + 1) padded rows
  int alphabet_ = 0;
};

}  // namespace hydra::transform

#endif  // HYDRA_TRANSFORM_SFA_H_
