// Extended Adaptive Piecewise Constant Approximation: per-segment mean and
// standard deviation over an adaptive segmentation (the DSTree summary).
#ifndef HYDRA_TRANSFORM_EAPCA_H_
#define HYDRA_TRANSFORM_EAPCA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"

namespace hydra::transform {

/// A segmentation of [0, n): cumulative end offsets, last one == n.
struct Segmentation {
  std::vector<uint32_t> ends;

  size_t segments() const { return ends.size(); }
  uint32_t begin_of(size_t s) const { return s == 0 ? 0 : ends[s - 1]; }
  uint32_t length_of(size_t s) const { return ends[s] - begin_of(s); }

  /// Uniform segmentation with `segments` near-equal pieces of [0, n).
  static Segmentation Uniform(size_t n, size_t segments);
};

/// Mean and standard deviation of one segment.
struct SegmentStats {
  double mean = 0.0;
  double stddev = 0.0;
};

/// EAPCA summary of `x` under `seg`.
std::vector<SegmentStats> ComputeEapca(core::SeriesView x,
                                       const Segmentation& seg);

/// Min/max envelope of segment statistics across the series of a node.
struct SegmentRange {
  double min_mean = 0.0;
  double max_mean = 0.0;
  double min_std = 0.0;
  double max_std = 0.0;

  /// Extends the envelope to cover `s` (first call initializes).
  void Extend(const SegmentStats& s, bool first);
};

/// Lower bound on ED^2 between two series from their EAPCA summaries on the
/// same segmentation: sum_s len_s * ((mu_a - mu_b)^2 + (sd_a - sd_b)^2).
double EapcaPointLbSq(std::span<const SegmentStats> a,
                      std::span<const SegmentStats> b,
                      const Segmentation& seg);

/// Lower bound on ED^2 between the query (summarized under `seg`) and any
/// series inside the node envelope.
double EapcaNodeLbSq(std::span<const SegmentStats> q,
                     std::span<const SegmentRange> node,
                     const Segmentation& seg);

/// Upper bound on ED^2 between the query and any series inside the node
/// envelope (used by DSTree to tighten the best-so-far without raw reads).
double EapcaNodeUbSq(std::span<const SegmentStats> q,
                     std::span<const SegmentRange> node,
                     const Segmentation& seg);

}  // namespace hydra::transform

#endif  // HYDRA_TRANSFORM_EAPCA_H_
