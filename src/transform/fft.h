// Fast Fourier Transform: iterative radix-2 plus Bluestein's algorithm for
// arbitrary lengths. Built from scratch — no external FFT dependency.
#ifndef HYDRA_TRANSFORM_FFT_H_
#define HYDRA_TRANSFORM_FFT_H_

#include <complex>
#include <vector>

namespace hydra::transform {

/// In-place discrete Fourier transform of `a` (any size). Forward maps
/// a_j -> sum_k a_k e^{-2*pi*i*j*k/n}; the inverse includes the 1/n factor,
/// so Fft(Fft(x), inverse=true) == x.
void Fft(std::vector<std::complex<double>>* a, bool inverse);

/// True if n is a power of two (radix-2 path; otherwise Bluestein is used).
bool IsPowerOfTwo(size_t n);

/// Smallest power of two >= n.
size_t NextPowerOfTwo(size_t n);

}  // namespace hydra::transform

#endif  // HYDRA_TRANSFORM_FFT_H_
