#include "transform/paa.h"

#include "core/simd/kernels.h"
#include "util/check.h"

namespace hydra::transform {

std::vector<double> Paa(core::SeriesView x, size_t segments) {
  HYDRA_CHECK_MSG(segments > 0 && x.size() % segments == 0,
                  "PAA requires length divisible by segment count");
  const size_t seg_len = x.size() / segments;
  std::vector<double> out(segments);
  for (size_t s = 0; s < segments; ++s) {
    double sum = 0.0;
    for (size_t j = 0; j < seg_len; ++j) sum += x[s * seg_len + j];
    out[s] = sum / static_cast<double>(seg_len);
  }
  return out;
}

double PaaLowerBoundSq(std::span<const double> a, std::span<const double> b,
                       size_t points_per_segment) {
  HYDRA_DCHECK(a.size() == b.size());
  return core::simd::ActiveKernels().sum_sq_diff(a.data(), b.data(),
                                                 a.size()) *
         static_cast<double>(points_per_segment);
}

}  // namespace hydra::transform
