#include "transform/haar.h"

#include <cmath>

#include "transform/fft.h"
#include "util/check.h"

namespace hydra::transform {

std::vector<double> HaarTransform(core::SeriesView x) {
  const size_t m = NextPowerOfTwo(x.size());
  std::vector<double> buf(m, 0.0);
  for (size_t i = 0; i < x.size(); ++i) buf[i] = x[i];

  std::vector<double> out(m, 0.0);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  // Repeated orthonormal averaging/differencing. After processing width w,
  // buf[0..w/2) holds averages and details go to the output slots for that
  // level (coarse-to-fine layout).
  std::vector<double> details;
  size_t width = m;
  std::vector<std::vector<double>> levels;  // fine-to-coarse detail blocks
  while (width > 1) {
    std::vector<double> level(width / 2);
    for (size_t i = 0; i < width / 2; ++i) {
      const double a = buf[2 * i];
      const double b = buf[2 * i + 1];
      level[i] = (a - b) * inv_sqrt2;
      buf[i] = (a + b) * inv_sqrt2;
    }
    levels.push_back(std::move(level));
    width /= 2;
  }
  out[0] = buf[0];  // scaling coefficient
  size_t pos = 1;
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    for (double d : *it) out[pos++] = d;
  }
  HYDRA_DCHECK(pos == m);
  return out;
}

std::vector<size_t> HaarLevelBoundaries(size_t padded_length) {
  HYDRA_CHECK(IsPowerOfTwo(padded_length));
  std::vector<size_t> bounds;
  for (size_t b = 1; b <= padded_length; b <<= 1) bounds.push_back(b);
  return bounds;
}

}  // namespace hydra::transform
