#include "transform/eapca.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "core/simd/kernels.h"
#include "util/check.h"

namespace hydra::transform {

Segmentation Segmentation::Uniform(size_t n, size_t segments) {
  HYDRA_CHECK(segments >= 1 && segments <= n);
  Segmentation seg;
  seg.ends.resize(segments);
  for (size_t s = 0; s < segments; ++s) {
    seg.ends[s] = static_cast<uint32_t>((s + 1) * n / segments);
  }
  return seg;
}

std::vector<SegmentStats> ComputeEapca(core::SeriesView x,
                                       const Segmentation& seg) {
  HYDRA_DCHECK(!seg.ends.empty() && seg.ends.back() == x.size());
  std::vector<SegmentStats> out(seg.segments());
  for (size_t s = 0; s < seg.segments(); ++s) {
    const uint32_t b = seg.begin_of(s);
    const uint32_t e = seg.ends[s];
    const double len = static_cast<double>(e - b);
    double sum = 0.0;
    double sum_sq = 0.0;
    for (uint32_t i = b; i < e; ++i) {
      sum += x[i];
      sum_sq += static_cast<double>(x[i]) * x[i];
    }
    const double mean = sum / len;
    const double var = std::max(0.0, sum_sq / len - mean * mean);
    out[s] = {mean, std::sqrt(var)};
  }
  return out;
}

void SegmentRange::Extend(const SegmentStats& s, bool first) {
  if (first) {
    min_mean = max_mean = s.mean;
    min_std = max_std = s.stddev;
    return;
  }
  min_mean = std::min(min_mean, s.mean);
  max_mean = std::max(max_mean, s.mean);
  min_std = std::min(min_std, s.stddev);
  max_std = std::max(max_std, s.stddev);
}

double EapcaPointLbSq(std::span<const SegmentStats> a,
                      std::span<const SegmentStats> b,
                      const Segmentation& seg) {
  HYDRA_DCHECK(a.size() == b.size() && a.size() == seg.segments());
  double acc = 0.0;
  for (size_t s = 0; s < a.size(); ++s) {
    const double dm = a[s].mean - b[s].mean;
    const double ds = a[s].stddev - b[s].stddev;
    acc += static_cast<double>(seg.length_of(s)) * (dm * dm + ds * ds);
  }
  return acc;
}

// The kernels view SegmentStats/SegmentRange arrays as packed double
// pairs/quads; pin the layout those strides assume.
static_assert(sizeof(SegmentStats) == 2 * sizeof(double));
static_assert(sizeof(SegmentRange) == 4 * sizeof(double));
static_assert(std::is_standard_layout_v<SegmentStats>);
static_assert(std::is_standard_layout_v<SegmentRange>);

double EapcaNodeLbSq(std::span<const SegmentStats> q,
                     std::span<const SegmentRange> node,
                     const Segmentation& seg) {
  HYDRA_DCHECK(q.size() == node.size() && q.size() == seg.segments());
  return core::simd::ActiveKernels().eapca_node_lb_sq(
      reinterpret_cast<const double*>(q.data()),
      reinterpret_cast<const double*>(node.data()), seg.ends.data(),
      seg.segments());
}

double EapcaNodeUbSq(std::span<const SegmentStats> q,
                     std::span<const SegmentRange> node,
                     const Segmentation& seg) {
  HYDRA_DCHECK(q.size() == node.size() && q.size() == seg.segments());
  double acc = 0.0;
  for (size_t s = 0; s < q.size(); ++s) {
    const double dm = std::max(std::fabs(q[s].mean - node[s].min_mean),
                               std::fabs(q[s].mean - node[s].max_mean));
    const double ds = q[s].stddev + node[s].max_std;
    acc += static_cast<double>(seg.length_of(s)) * (dm * dm + ds * ds);
  }
  return acc;
}

}  // namespace hydra::transform
