// Orthonormal packed real DFT summaries: the reduced representation used by
// SFA, VA+file (the paper's KLT->DFT substitution), and MASS.
#ifndef HYDRA_TRANSFORM_DFT_H_
#define HYDRA_TRANSFORM_DFT_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace hydra::transform {

/// Computes the orthonormal packed real DFT of `x`.
///
/// The unitary DFT of a real series of length n can be packed into n real
/// values [X0, sqrt(2)Re X1, sqrt(2)Im X1, ..., X_{n/2}] that form an
/// orthonormal basis: Euclidean distances are preserved exactly, and
/// truncation to the first `num_coeffs` values (the lowest frequencies)
/// yields a lower-bounding distance. With `skip_dc` the DC coefficient is
/// dropped (it is identically 0 for z-normalized series).
///
/// Returns min(num_coeffs, available) packed coefficients.
std::vector<double> PackedRealDft(core::SeriesView x, size_t num_coeffs,
                                  bool skip_dc);

/// Number of packed coefficients available for length-n series.
size_t MaxPackedCoeffs(size_t n, bool skip_dc);

}  // namespace hydra::transform

#endif  // HYDRA_TRANSFORM_DFT_H_
