#include "transform/isax.h"

#include <cstdio>

#include "core/simd/kernels.h"
#include "util/check.h"

namespace hydra::transform {

std::string IsaxWord::DebugString() const {
  std::string out;
  char buf[16];
  for (size_t s = 0; s < symbols.size(); ++s) {
    std::snprintf(buf, sizeof(buf), "%s%d@%d", s == 0 ? "" : " ", symbols[s],
                  bits[s]);
    out += buf;
  }
  return out;
}

IsaxWord FullResolutionWord(std::span<const double> paa) {
  IsaxWord w;
  w.symbols.resize(paa.size());
  w.bits.assign(paa.size(), static_cast<uint8_t>(kMaxSaxBits));
  for (size_t s = 0; s < paa.size(); ++s) {
    w.symbols[s] = SaxSymbol(paa[s], kMaxSaxBits);
  }
  return w;
}

uint8_t ReduceSymbol(uint8_t full_symbol, int to_bits) {
  HYDRA_DCHECK(to_bits >= 0 && to_bits <= kMaxSaxBits);
  return static_cast<uint8_t>(full_symbol >> (kMaxSaxBits - to_bits));
}

bool WordCovers(const IsaxWord& node, const IsaxWord& full) {
  HYDRA_DCHECK(node.segments() == full.segments());
  for (size_t s = 0; s < node.segments(); ++s) {
    HYDRA_DCHECK(full.bits[s] == kMaxSaxBits);
    if (ReduceSymbol(full.symbols[s], node.bits[s]) != node.symbols[s]) {
      return false;
    }
  }
  return true;
}

double IsaxMinDistSq(std::span<const double> paa_q, const IsaxWord& w,
                     size_t points_per_segment) {
  HYDRA_DCHECK(paa_q.size() == w.segments());
  const SaxBreakpoints& bp = SaxBreakpoints::Get();
  return core::simd::ActiveKernels().isax_mindist_sq(
             paa_q.data(), w.symbols.data(), w.bits.data(), w.segments(),
             bp.FlatLower(), bp.FlatUpper()) *
         static_cast<double>(points_per_segment);
}

}  // namespace hydra::transform
