#include "transform/fft.h"

#include <cmath>

#include "util/check.h"

namespace hydra::transform {
namespace {

using Complex = std::complex<double>;

// Iterative Cooley-Tukey radix-2 FFT; n must be a power of two.
void Radix2Fft(std::vector<Complex>* data, bool inverse) {
  std::vector<Complex>& a = *data;
  const size_t n = a.size();
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein's chirp-z algorithm: expresses a DFT of arbitrary size n as a
// convolution, evaluated with a radix-2 FFT of size >= 2n-1.
void BluesteinFft(std::vector<Complex>* data, bool inverse) {
  std::vector<Complex>& a = *data;
  const size_t n = a.size();
  const size_t m = NextPowerOfTwo(2 * n - 1);
  const double sign = inverse ? 1.0 : -1.0;

  std::vector<Complex> chirp(n);
  for (size_t k = 0; k < n; ++k) {
    // e^{sign * i * pi * k^2 / n}; reduce k^2 mod 2n to keep precision.
    const size_t k2 = (k * k) % (2 * n);
    const double angle = sign * M_PI * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }

  std::vector<Complex> x(m, Complex(0.0, 0.0));
  std::vector<Complex> y(m, Complex(0.0, 0.0));
  for (size_t k = 0; k < n; ++k) x[k] = a[k] * chirp[k];
  y[0] = std::conj(chirp[0]);
  for (size_t k = 1; k < n; ++k) {
    y[k] = std::conj(chirp[k]);
    y[m - k] = std::conj(chirp[k]);
  }

  Radix2Fft(&x, /*inverse=*/false);
  Radix2Fft(&y, /*inverse=*/false);
  for (size_t k = 0; k < m; ++k) x[k] *= y[k];
  Radix2Fft(&x, /*inverse=*/true);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (size_t k = 0; k < n; ++k) a[k] = x[k] * inv_m * chirp[k];
}

}  // namespace

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<std::complex<double>>* a, bool inverse) {
  HYDRA_CHECK(a != nullptr);
  const size_t n = a->size();
  if (n <= 1) return;
  if (IsPowerOfTwo(n)) {
    Radix2Fft(a, inverse);
  } else {
    BluesteinFft(a, inverse);
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : *a) v *= inv_n;
  }
}

}  // namespace hydra::transform
