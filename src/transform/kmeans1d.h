// One-dimensional k-means (Lloyd's algorithm), used by the VA+file to place
// non-uniform quantization cells per dimension.
#ifndef HYDRA_TRANSFORM_KMEANS1D_H_
#define HYDRA_TRANSFORM_KMEANS1D_H_

#include <span>
#include <vector>

namespace hydra::transform {

/// Result of a 1-D k-means clustering: `centroids` sorted ascending and the
/// k-1 decision `boundaries` (midpoints between adjacent centroids).
struct Kmeans1dResult {
  std::vector<double> centroids;
  std::vector<double> boundaries;
};

/// Clusters `values` into `k` cells. Initialization at sample quantiles;
/// Lloyd iterations until assignment is stable or `max_iters` is reached.
/// Handles duplicate/degenerate data by keeping centroids distinct where
/// possible.
Kmeans1dResult Kmeans1d(std::span<const double> values, int k,
                        int max_iters = 30);

}  // namespace hydra::transform

#endif  // HYDRA_TRANSFORM_KMEANS1D_H_
