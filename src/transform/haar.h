// Discrete Haar Wavelet Transform (DHWT), orthonormal, used by Stepwise.
#ifndef HYDRA_TRANSFORM_HAAR_H_
#define HYDRA_TRANSFORM_HAAR_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace hydra::transform {

/// Orthonormal Haar transform of `x`. If the length is not a power of two
/// the series is zero-padded (distances are unaffected). The output is
/// ordered coarse-to-fine: [scaling coefficient, level-1 detail, level-2
/// details (2), level-3 details (4), ...]; Euclidean distances between
/// transforms equal distances between (padded) originals exactly.
std::vector<double> HaarTransform(core::SeriesView x);

/// Exclusive prefix boundaries of the coarse-to-fine levels for a transform
/// of `padded_length` coefficients: {1, 2, 4, 8, ..., padded_length}.
/// Level L spans coefficients [boundaries[L-1], boundaries[L]) with
/// boundaries[-1] taken as 0.
std::vector<size_t> HaarLevelBoundaries(size_t padded_length);

}  // namespace hydra::transform

#endif  // HYDRA_TRANSFORM_HAAR_H_
