// VA+ quantization: non-uniform bit allocation across DFT dimensions plus
// per-dimension k-means cells (the improvements of VA+file over VA-file).
#ifndef HYDRA_TRANSFORM_VAPLUS_H_
#define HYDRA_TRANSFORM_VAPLUS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace hydra::transform {

/// Trained VA+ scalar quantizer.
///
/// Build: the total bit budget is distributed greedily across dimensions in
/// proportion to remaining variance (dimensions with high energy get more
/// bits, the paper's "non-uniform" allocation); each dimension's cells are
/// then placed by 1-D k-means (instead of VA-file's equi-depth). Cell edges
/// are finite (data min/max), so upper bounds are finite too.
class VaPlusQuantizer {
 public:
  enum class Allocation { kNonUniform, kUniform };
  enum class CellPlacement { kKmeans, kEquiDepth };

  /// Hard cap on bits per dimension (1024 cells). Part of the trained
  /// quantizer's invariants: FromTables enforces it, so deserializers
  /// must pre-validate persisted bit counts against this same constant.
  static constexpr int kMaxBitsPerDim = 10;

  /// Trains on the DFT vectors of the collection. `total_bits` is the
  /// whole-word budget (e.g. 64 bits over 16 dims).
  static VaPlusQuantizer Train(const std::vector<std::vector<double>>& dfts,
                               int total_bits,
                               Allocation allocation = Allocation::kNonUniform,
                               CellPlacement placement = CellPlacement::kKmeans);

  /// Rebuilds a trained quantizer from persisted tables (the inverse of
  /// EdgesFor/bits_for over all dimensions). Every dimension d must carry
  /// 2^bits[d] + 1 ascending edges — CHECK-enforced, so callers
  /// deserializing untrusted bytes validate first.
  static VaPlusQuantizer FromTables(std::vector<std::vector<double>> edges,
                                    std::vector<int> bits, int total_bits);

  /// Cell index per dimension for one DFT vector (dimensions with 0 bits
  /// have a single implicit cell and are stored as 0).
  std::vector<uint16_t> Quantize(std::span<const double> dft) const;

  /// Lower bound on squared ED between originals given the query DFT and a
  /// candidate's cell word. Valid in the full space because the packed DFT
  /// is orthonormal and the untracked tail only adds distance.
  double CellLowerBoundSq(std::span<const double> q_dft,
                          std::span<const uint16_t> cells) const;

  /// Upper bound on the squared distance *within the truncated DFT space*.
  /// For a full-space upper bound the caller must add the residual-energy
  /// term (sqrt(Eq_tail) + sqrt(Ec_tail))^2; the VA+file index stores each
  /// series' tail energy in its approximation file for this purpose.
  double CellUpperBoundSq(std::span<const double> q_dft,
                          std::span<const uint16_t> cells) const;

  size_t dims() const { return bits_.size(); }
  int bits_for(size_t d) const { return bits_[d]; }
  int total_bits() const { return total_bits_; }
  /// Cell edges of dimension `d` (2^bits_for(d) + 1 ascending values).
  std::span<const double> EdgesFor(size_t d) const { return edges_[d]; }
  /// Flat concatenation of all per-dimension edge tables for the kernel
  /// layer: dimension d starts at EdgeOffsets()[d], so cell c spans
  /// [FlatEdges()[EdgeOffsets()[d] + c], FlatEdges()[... + c + 1]].
  const double* FlatEdges() const { return flat_edges_.data(); }
  const uint32_t* EdgeOffsets() const { return edge_offsets_.data(); }
  /// Bytes per stored approximation word (packed, one uint16 per used dim).
  size_t ApproximationBytes() const;
  /// Resident size of the quantizer tables in bytes.
  size_t MemoryBytes() const;

 private:
  /// Rebuilds flat_edges_/edge_offsets_ from edges_; every constructor
  /// path ends here.
  void BuildFlatEdges();

  // edges_[d] has 2^bits_[d] + 1 finite ascending edges; cell c of dimension
  // d spans [edges_[d][c], edges_[d][c+1]].
  std::vector<std::vector<double>> edges_;
  std::vector<double> flat_edges_;      // concatenated edges_ rows
  std::vector<uint32_t> edge_offsets_;  // start of each row in flat_edges_
  std::vector<int> bits_;
  int total_bits_ = 0;
};

}  // namespace hydra::transform

#endif  // HYDRA_TRANSFORM_VAPLUS_H_
