#include "transform/sax.h"

#include <algorithm>
#include <limits>

#include "util/check.h"
#include "util/inverse_normal.h"

namespace hydra::transform {

SaxBreakpoints::SaxBreakpoints() {
  tables_.resize(kMaxSaxBits);
  for (int bits = 1; bits <= kMaxSaxBits; ++bits) {
    const int cardinality = 1 << bits;
    std::vector<double>& table = tables_[bits - 1];
    table.resize(cardinality - 1);
    for (int i = 1; i < cardinality; ++i) {
      table[i - 1] = util::InverseNormalCdf(static_cast<double>(i) /
                                            static_cast<double>(cardinality));
    }
  }
  // Flatten all resolutions for the gather-based kernels: level `bits`
  // occupies entries (1 << bits) - 1 .. (1 << (bits+1)) - 2, one interval
  // per symbol. Level 0 is the whole domain.
  const double inf = std::numeric_limits<double>::infinity();
  flat_lower_.resize((size_t{1} << (kMaxSaxBits + 1)) - 1);
  flat_upper_.resize(flat_lower_.size());
  flat_lower_[0] = -inf;
  flat_upper_[0] = inf;
  for (int bits = 1; bits <= kMaxSaxBits; ++bits) {
    const size_t base = (size_t{1} << bits) - 1;
    for (int s = 0; s < (1 << bits); ++s) {
      flat_lower_[base + s] = SymbolLower(static_cast<uint8_t>(s), bits);
      flat_upper_[base + s] = SymbolUpper(static_cast<uint8_t>(s), bits);
    }
  }
}

const SaxBreakpoints& SaxBreakpoints::Get() {
  static const SaxBreakpoints* instance = new SaxBreakpoints();
  return *instance;
}

std::span<const double> SaxBreakpoints::For(int bits) const {
  HYDRA_CHECK(bits >= 1 && bits <= kMaxSaxBits);
  return tables_[bits - 1];
}

double SaxBreakpoints::SymbolLower(uint8_t s, int bits) const {
  const auto table = For(bits);
  return s == 0 ? -std::numeric_limits<double>::infinity() : table[s - 1];
}

double SaxBreakpoints::SymbolUpper(uint8_t s, int bits) const {
  const auto table = For(bits);
  return s == table.size() ? std::numeric_limits<double>::infinity()
                           : table[s];
}

uint8_t SaxSymbol(double paa_value, int bits) {
  const auto table = SaxBreakpoints::Get().For(bits);
  // Symbol = number of breakpoints strictly below the value.
  const auto it = std::upper_bound(table.begin(), table.end(), paa_value);
  return static_cast<uint8_t>(it - table.begin());
}

}  // namespace hydra::transform
