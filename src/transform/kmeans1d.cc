#include "transform/kmeans1d.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace hydra::transform {

Kmeans1dResult Kmeans1d(std::span<const double> values, int k, int max_iters) {
  HYDRA_CHECK(k >= 1);
  HYDRA_CHECK(!values.empty());
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();

  // Quantile initialization (equi-depth), then Lloyd iterations. Sorted data
  // makes assignment a matter of boundary positions.
  std::vector<double> centroids(k);
  for (int c = 0; c < k; ++c) {
    const double q = (c + 0.5) / k;
    centroids[c] = sorted[static_cast<size_t>(q * (n - 1))];
  }
  std::sort(centroids.begin(), centroids.end());

  std::vector<double> prefix(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + sorted[i];

  std::vector<size_t> cuts(k + 1);  // cell c covers sorted[cuts[c], cuts[c+1})
  for (int iter = 0; iter < max_iters; ++iter) {
    cuts[0] = 0;
    cuts[k] = n;
    for (int c = 1; c < k; ++c) {
      const double boundary = (centroids[c - 1] + centroids[c]) / 2.0;
      cuts[c] = static_cast<size_t>(
          std::lower_bound(sorted.begin(), sorted.end(), boundary) -
          sorted.begin());
      cuts[c] = std::max(cuts[c], cuts[c - 1]);
    }
    bool changed = false;
    for (int c = 0; c < k; ++c) {
      if (cuts[c + 1] > cuts[c]) {
        const double mean = (prefix[cuts[c + 1]] - prefix[cuts[c]]) /
                            static_cast<double>(cuts[c + 1] - cuts[c]);
        if (mean != centroids[c]) changed = true;
        centroids[c] = mean;
      }
    }
    std::sort(centroids.begin(), centroids.end());
    if (!changed) break;
  }

  Kmeans1dResult result;
  result.centroids = std::move(centroids);
  result.boundaries.resize(k - 1);
  for (int c = 0; c + 1 < k; ++c) {
    result.boundaries[c] =
        (result.centroids[c] + result.centroids[c + 1]) / 2.0;
  }
  return result;
}

}  // namespace hydra::transform
