// Piecewise Aggregate Approximation: equal-length segment means.
#ifndef HYDRA_TRANSFORM_PAA_H_
#define HYDRA_TRANSFORM_PAA_H_

#include <span>
#include <vector>

#include "core/types.h"

namespace hydra::transform {

/// PAA of `x` with `segments` equal-length segments; `x.size()` must be a
/// multiple of `segments`.
std::vector<double> Paa(core::SeriesView x, size_t segments);

/// Lower bound on the squared Euclidean distance between the originals of
/// two PAA vectors: points_per_segment * sum((a_s - b_s)^2) <= ED^2.
double PaaLowerBoundSq(std::span<const double> a, std::span<const double> b,
                       size_t points_per_segment);

}  // namespace hydra::transform

#endif  // HYDRA_TRANSFORM_PAA_H_
