#include "scan/ucr_scan.h"

#include "core/distance.h"
#include "util/check.h"
#include "util/timer.h"

namespace hydra::scan {

core::BuildStats UcrScan::DoBuild(const core::Dataset& data) {
  data_ = &data;
  return core::BuildStats{};  // no preprocessing
}

core::KnnResult UcrScan::DoSearchKnn(core::SeriesView query,
                                     const core::KnnPlan& plan) {
  HYDRA_CHECK(data_ != nullptr);
  HYDRA_CHECK(query.size() == data_->length());
  util::WallTimer timer;

  core::KnnResult result;
  core::KnnHeap& heap = core::ScratchKnnHeap(plan.k);
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  io::ChargeScanStart(&result.stats);
  // Only the series actually scanned are charged: the max_raw budget
  // truncates the sequential pass (a budgeted scan is a prefix scan).
  for (size_t i = 0; i < data_->size(); ++i) {
    if (plan.RawCapReached(&result.stats)) break;
    const double d = order.Distance((*data_)[i], heap.Bound());
    ++result.stats.distance_computations;
    ++result.stats.raw_series_examined;
    heap.Offer(static_cast<core::SeriesId>(i), d);
  }
  io::ChargeSequentialRead(
      static_cast<size_t>(result.stats.raw_series_examined),
      data_->length() * sizeof(core::Value), &result.stats);
  heap.ExtractSortedTo(&result.neighbors);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::RangeResult UcrScan::DoSearchRange(core::SeriesView query,
                                         const core::RangePlan& plan) {
  const double radius = plan.radius;
  HYDRA_CHECK(data_ != nullptr);
  HYDRA_CHECK(query.size() == data_->length());
  util::WallTimer timer;

  core::RangeResult result;
  core::RangeCollector collector(radius * radius);
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  io::ChargeScanStart(&result.stats);
  io::ChargeSequentialRead(data_->size(), data_->length() * sizeof(core::Value),
                           &result.stats);
  for (size_t i = 0; i < data_->size(); ++i) {
    const double d = order.Distance((*data_)[i], collector.Bound());
    ++result.stats.distance_computations;
    collector.Offer(static_cast<core::SeriesId>(i), d);
  }
  result.stats.raw_series_examined = static_cast<int64_t>(data_->size());
  result.matches = collector.TakeSorted();
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

}  // namespace hydra::scan
