// Stepwise: multi-step filter-and-refine over DHWT coefficients stored
// level-by-level ("vertically"), using lower and upper bounding distances
// (Kashyap & Karras; Section 3.2 of the paper).
#ifndef HYDRA_SCAN_STEPWISE_H_
#define HYDRA_SCAN_STEPWISE_H_

#include <vector>

#include "core/method.h"
#include "io/counted_storage.h"

namespace hydra::scan {

/// Multi-step exact whole-matching search.
///
/// Build stores, for every series, the orthonormal Haar coefficients in
/// level-major files (all series' level-0 coefficients, then level-1, ...)
/// and keeps per-level residual energies memory-resident (the paper's
/// "pre-computed sums"). A query filters candidates one level at a time:
/// the running partial distance is a lower bound, and the Cauchy-Schwarz
/// residual term gives an upper bound that tightens the best-so-far.
/// Survivors of the coefficient levels are refined against the raw file.
class Stepwise : public core::SearchMethod {
 public:
  /// `refine_from_level`: number of finest levels answered from the raw
  /// file instead of coefficient files (1 keeps the paper's final
  /// raw-refinement step).
  explicit Stepwise(int refine_levels = 1) : refine_levels_(refine_levels) {}

  std::string name() const override { return "Stepwise"; }
  /// Coefficient files are immutable after Build and every query uses its
  /// own cursors, so queries can run concurrently. Exact-only: the
  /// coefficient-level filter has no epsilon relaxation here (approximate
  /// modes fall back to exact, reported); the max_raw_series budget
  /// truncates the final raw-refinement pass.
  core::MethodTraits traits() const override {
    return {.concurrent_queries = true,
            .serial_reason = "",
            .persistence_reason =
                "sequential scan: the Haar coefficient files are a "
                "deterministic one-pass transform, cheaper to redo than "
                "to persist",
            .shard_reason =
                "sequential scan: no index partition to build per shard — "
                "the batch engine's --threads already parallelizes it",
            .intra_query_reason =
                "sequential scan has no traversal frontier to share; "
                "batch --threads already parallelizes workloads"};
  }

 protected:
  core::BuildStats DoBuild(const core::Dataset& data) override;
  core::KnnResult DoSearchKnn(core::SeriesView query,
                              const core::KnnPlan& plan) override;
  core::RangeResult DoSearchRange(core::SeriesView query,
                                  const core::RangePlan& plan) override;

 private:
  const core::Dataset* data_ = nullptr;
  int refine_levels_;
  size_t padded_ = 0;                   // padded transform length
  std::vector<size_t> level_bounds_;    // coarse-to-fine prefix boundaries
  size_t filter_levels_ = 0;            // levels used for filtering
  // coeffs_[level] holds all series' coefficients of that level,
  // series-major within the level (the "vertical" layout).
  std::vector<std::vector<double>> coeffs_;
  // residual_[level][series]: energy of coefficients at levels > `level`.
  std::vector<std::vector<double>> residual_;
};

}  // namespace hydra::scan

#endif  // HYDRA_SCAN_STEPWISE_H_
