// UCR Suite adapted to exact whole matching: optimized sequential scan with
// squared distances, early abandoning, and reordered early abandoning
// (the paper's baseline, Section 3.2).
#ifndef HYDRA_SCAN_UCR_SCAN_H_
#define HYDRA_SCAN_UCR_SCAN_H_

#include "core/method.h"
#include "io/counted_storage.h"

namespace hydra::scan {

/// Exact whole-matching sequential scan. No index: Build only records the
/// dataset; every query reads the entire raw file sequentially.
class UcrScan : public core::SearchMethod {
 public:
  std::string name() const override { return "UCR-Suite"; }
  /// Stateless after Build (queries only read the dataset), so queries can
  /// run concurrently.
  core::MethodTraits traits() const override {
    return {.concurrent_queries = true, .serial_reason = ""};
  }
  core::BuildStats Build(const core::Dataset& data) override;
  core::KnnResult SearchKnn(core::SeriesView query, size_t k) override;

 protected:
  core::RangeResult DoSearchRange(core::SeriesView query,
                                  double radius) override;

 private:
  const core::Dataset* data_ = nullptr;
};

}  // namespace hydra::scan

#endif  // HYDRA_SCAN_UCR_SCAN_H_
