// UCR Suite adapted to exact whole matching: optimized sequential scan with
// squared distances, early abandoning, and reordered early abandoning
// (the paper's baseline, Section 3.2).
#ifndef HYDRA_SCAN_UCR_SCAN_H_
#define HYDRA_SCAN_UCR_SCAN_H_

#include "core/method.h"
#include "io/counted_storage.h"

namespace hydra::scan {

/// Exact whole-matching sequential scan. No index: Build only records the
/// dataset; every query reads the entire raw file sequentially.
class UcrScan : public core::SearchMethod {
 public:
  std::string name() const override { return "UCR-Suite"; }
  /// Stateless after Build (queries only read the dataset), so queries can
  /// run concurrently. Exact-only: a scan has no summaries to relax a
  /// bound against (approximate modes fall back to exact, reported); the
  /// max_raw_series budget truncates the scan.
  core::MethodTraits traits() const override {
    return {.concurrent_queries = true,
            .serial_reason = "",
            .persistence_reason =
                "sequential scan: there is no index structure to persist",
            .shard_reason =
                "sequential scan: no index partition to build per shard — "
                "the batch engine's --threads already parallelizes it",
            .intra_query_reason =
                "sequential scan has no traversal frontier to share; "
                "batch --threads already parallelizes workloads"};
  }

 protected:
  core::BuildStats DoBuild(const core::Dataset& data) override;
  core::KnnResult DoSearchKnn(core::SeriesView query,
                              const core::KnnPlan& plan) override;
  core::RangeResult DoSearchRange(core::SeriesView query,
                                  const core::RangePlan& plan) override;

 private:
  const core::Dataset* data_ = nullptr;
};

}  // namespace hydra::scan

#endif  // HYDRA_SCAN_UCR_SCAN_H_
