// MASS adapted to exact whole matching: distances via FFT dot products
// (ED^2 = |Q|^2 + |C|^2 - 2 Q.C). Deliberately CPU-heavy, as the paper
// reports for this adaptation.
#ifndef HYDRA_SCAN_MASS_SCAN_H_
#define HYDRA_SCAN_MASS_SCAN_H_

#include <complex>
#include <vector>

#include "core/method.h"
#include "io/counted_storage.h"

namespace hydra::scan {

/// Exact whole-matching scan computing each distance through the Fourier
/// domain, following the paper's MASS adaptation (Section 3.2).
class MassScan : public core::SearchMethod {
 public:
  std::string name() const override { return "MASS"; }
  /// Queries only read the dataset and the precomputed norms, so they can
  /// run concurrently.
  core::MethodTraits traits() const override {
    return {.concurrent_queries = true, .serial_reason = ""};
  }
  core::BuildStats Build(const core::Dataset& data) override;
  core::KnnResult SearchKnn(core::SeriesView query, size_t k) override;

 protected:
  core::RangeResult DoSearchRange(core::SeriesView query,
                                  double radius) override;

 private:
  /// Computes all Fourier-domain distances, feeding each into `offer`.
  template <typename Offer>
  core::SearchStats ScanAll(core::SeriesView query, Offer&& offer);

 private:
  const core::Dataset* data_ = nullptr;
  std::vector<double> norms_sq_;  // per-series squared L2 norm, precomputed
};

}  // namespace hydra::scan

#endif  // HYDRA_SCAN_MASS_SCAN_H_
