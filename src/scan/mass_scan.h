// MASS adapted to exact whole matching: distances via FFT dot products
// (ED^2 = |Q|^2 + |C|^2 - 2 Q.C). Deliberately CPU-heavy, as the paper
// reports for this adaptation.
#ifndef HYDRA_SCAN_MASS_SCAN_H_
#define HYDRA_SCAN_MASS_SCAN_H_

#include <complex>
#include <vector>

#include "core/method.h"
#include "io/counted_storage.h"

namespace hydra::scan {

/// Exact whole-matching scan computing each distance through the Fourier
/// domain, following the paper's MASS adaptation (Section 3.2).
class MassScan : public core::SearchMethod {
 public:
  std::string name() const override { return "MASS"; }
  /// Queries only read the dataset and the precomputed norms, so they can
  /// run concurrently. Exact-only: every distance is computed through the
  /// Fourier domain with no bound to relax (approximate modes fall back to
  /// exact, reported); the max_raw_series budget truncates the scan.
  core::MethodTraits traits() const override {
    return {.concurrent_queries = true,
            .serial_reason = "",
            .persistence_reason =
                "sequential scan: Build only precomputes per-series "
                "norms, cheaper to redo than to persist",
            .shard_reason =
                "sequential scan: no index partition to build per shard — "
                "the batch engine's --threads already parallelizes it",
            .intra_query_reason =
                "sequential scan has no traversal frontier to share; "
                "batch --threads already parallelizes workloads"};
  }

 protected:
  core::BuildStats DoBuild(const core::Dataset& data) override;
  core::KnnResult DoSearchKnn(core::SeriesView query,
                              const core::KnnPlan& plan) override;
  core::RangeResult DoSearchRange(core::SeriesView query,
                                  const core::RangePlan& plan) override;

 private:
  /// Computes Fourier-domain distances for the first min(size, plan
  /// max_raw) series, feeding each into `offer`; sets budget_exhausted
  /// when the cap truncated the pass.
  template <typename Offer>
  core::SearchStats ScanAll(core::SeriesView query,
                            const core::KnnPlan& plan, Offer&& offer);

 private:
  const core::Dataset* data_ = nullptr;
  std::vector<double> norms_sq_;  // per-series squared L2 norm, precomputed
};

}  // namespace hydra::scan

#endif  // HYDRA_SCAN_MASS_SCAN_H_
