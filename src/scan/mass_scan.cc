#include "scan/mass_scan.h"

#include "transform/fft.h"
#include "util/check.h"
#include "util/timer.h"

namespace hydra::scan {

core::BuildStats MassScan::DoBuild(const core::Dataset& data) {
  util::WallTimer timer;
  data_ = &data;
  norms_sq_.resize(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    double acc = 0.0;
    for (const core::Value v : data[i]) acc += static_cast<double>(v) * v;
    norms_sq_[i] = acc;
  }
  core::BuildStats stats;
  stats.cpu_seconds = timer.Seconds();
  stats.bytes_read = static_cast<int64_t>(data.bytes());
  stats.random_reads = 1;  // one sequential pass over the raw file
  return stats;
}

template <typename Offer>
core::SearchStats MassScan::ScanAll(core::SeriesView query,
                                    const core::KnnPlan& plan,
                                    Offer&& offer) {
  HYDRA_CHECK(data_ != nullptr);
  HYDRA_CHECK(query.size() == data_->length());
  util::WallTimer timer;
  const size_t n = query.size();
  const size_t fft_size = transform::NextPowerOfTwo(2 * n);

  // FFT of the reversed, zero-padded query (computed once per query); the
  // dot product Q.C appears at lag n-1 of the circular cross-correlation.
  std::vector<std::complex<double>> query_freq(fft_size,
                                               std::complex<double>(0.0, 0.0));
  double query_norm_sq = 0.0;
  for (size_t j = 0; j < n; ++j) {
    query_freq[j] = std::complex<double>(query[n - 1 - j], 0.0);
    query_norm_sq += static_cast<double>(query[j]) * query[j];
  }
  transform::Fft(&query_freq, /*inverse=*/false);

  core::SearchStats stats;
  io::ChargeScanStart(&stats);
  std::vector<std::complex<double>> buf(fft_size);
  for (size_t i = 0; i < data_->size(); ++i) {
    if (plan.RawCapReached(&stats)) break;
    ++stats.raw_series_examined;
    const core::SeriesView c = (*data_)[i];
    std::fill(buf.begin(), buf.end(), std::complex<double>(0.0, 0.0));
    for (size_t j = 0; j < n; ++j) buf[j] = std::complex<double>(c[j], 0.0);
    transform::Fft(&buf, /*inverse=*/false);
    for (size_t j = 0; j < fft_size; ++j) buf[j] *= query_freq[j];
    transform::Fft(&buf, /*inverse=*/true);
    const double dot = buf[n - 1].real();
    const double dist_sq = query_norm_sq + norms_sq_[i] - 2.0 * dot;
    ++stats.distance_computations;
    offer(static_cast<core::SeriesId>(i), std::max(0.0, dist_sq));
  }
  // Only the series actually scanned are charged (a budgeted scan is a
  // prefix scan).
  io::ChargeSequentialRead(static_cast<size_t>(stats.raw_series_examined),
                           n * sizeof(core::Value), &stats);
  stats.cpu_seconds = timer.Seconds();
  return stats;
}

core::KnnResult MassScan::DoSearchKnn(core::SeriesView query,
                                      const core::KnnPlan& plan) {
  core::KnnResult result;
  core::KnnHeap& heap = core::ScratchKnnHeap(plan.k);
  result.stats = ScanAll(query, plan, [&](core::SeriesId id, double dist_sq) {
    heap.Offer(id, dist_sq);
  });
  heap.ExtractSortedTo(&result.neighbors);
  return result;
}

core::RangeResult MassScan::DoSearchRange(core::SeriesView query,
                                          const core::RangePlan& plan) {
  const double radius = plan.radius;
  core::RangeResult result;
  core::RangeCollector collector(radius * radius);
  result.stats = ScanAll(query, core::KnnPlan{},
                         [&](core::SeriesId id, double dist_sq) {
                           collector.Offer(id, dist_sq);
                         });
  result.matches = collector.TakeSorted();
  return result;
}

}  // namespace hydra::scan
