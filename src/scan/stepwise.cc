#include "scan/stepwise.h"

#include <algorithm>
#include <cmath>

#include "core/distance.h"
#include "transform/haar.h"
#include "util/check.h"
#include "util/timer.h"

namespace hydra::scan {

core::BuildStats Stepwise::DoBuild(const core::Dataset& data) {
  util::WallTimer timer;
  data_ = &data;
  const size_t count = data.size();

  std::vector<double> probe = transform::HaarTransform(data[0]);
  padded_ = probe.size();
  level_bounds_ = transform::HaarLevelBoundaries(padded_);
  const size_t total_levels = level_bounds_.size();
  HYDRA_CHECK(refine_levels_ >= 0 &&
              static_cast<size_t>(refine_levels_) < total_levels);
  filter_levels_ = total_levels - static_cast<size_t>(refine_levels_);

  coeffs_.assign(filter_levels_, {});
  for (size_t level = 0; level < filter_levels_; ++level) {
    const size_t begin = level == 0 ? 0 : level_bounds_[level - 1];
    const size_t width = level_bounds_[level] - begin;
    coeffs_[level].resize(count * width);
  }
  residual_.assign(filter_levels_, std::vector<double>(count, 0.0));

  for (size_t i = 0; i < count; ++i) {
    const std::vector<double> h = transform::HaarTransform(data[i]);
    for (size_t level = 0; level < filter_levels_; ++level) {
      const size_t begin = level == 0 ? 0 : level_bounds_[level - 1];
      const size_t width = level_bounds_[level] - begin;
      std::copy(h.begin() + begin, h.begin() + begin + width,
                coeffs_[level].begin() + i * width);
      double tail = 0.0;
      for (size_t j = level_bounds_[level]; j < padded_; ++j) {
        tail += h[j] * h[j];
      }
      residual_[level][i] = tail;
    }
  }

  core::BuildStats stats;
  stats.cpu_seconds = timer.Seconds();
  stats.bytes_read = static_cast<int64_t>(data.bytes());
  stats.random_reads = 1;
  // Level files on (simulated) disk: every coefficient written once.
  int64_t written = 0;
  for (const auto& level : coeffs_) {
    written += static_cast<int64_t>(level.size() * sizeof(core::Value));
  }
  stats.bytes_written = written;
  stats.random_writes = static_cast<int64_t>(filter_levels_);
  return stats;
}

core::KnnResult Stepwise::DoSearchKnn(core::SeriesView query,
                                      const core::KnnPlan& plan) {
  HYDRA_CHECK(data_ != nullptr);
  HYDRA_CHECK(query.size() == data_->length());
  const size_t k = plan.k;
  util::WallTimer timer;
  const size_t count = data_->size();

  const std::vector<double> q = transform::HaarTransform(query);
  std::vector<double> q_tail(filter_levels_, 0.0);
  for (size_t level = 0; level < filter_levels_; ++level) {
    double tail = 0.0;
    for (size_t j = level_bounds_[level]; j < padded_; ++j) tail += q[j] * q[j];
    q_tail[level] = tail;
  }

  core::KnnResult result;
  // Partial squared distances (lower bounds) per surviving candidate.
  std::vector<double> partial(count, 0.0);
  std::vector<core::SeriesId> survivors(count);
  for (size_t i = 0; i < count; ++i) {
    survivors[i] = static_cast<core::SeriesId>(i);
  }

  double bound = std::numeric_limits<double>::infinity();
  for (size_t level = 0; level < filter_levels_; ++level) {
    const size_t begin = level == 0 ? 0 : level_bounds_[level - 1];
    const size_t width = level_bounds_[level] - begin;
    const std::vector<double>& block = coeffs_[level];

    // Skip-sequential pass over this level's file: contiguous survivor runs
    // are sequential, gaps cost a seek.
    int64_t prev = -2;
    // Upper bounds of the k best candidates seen this level set the new
    // pruning bound (upper bounds are valid distances of real candidates).
    // The scratch heap is re-armed per level and once more for the final
    // refinement; the bound survives each phase in `bound`.
    core::KnnHeap& ub_heap = core::ScratchKnnHeap(k);
    std::vector<core::SeriesId> next;
    next.reserve(survivors.size());
    for (const core::SeriesId id : survivors) {
      if (static_cast<int64_t>(id) != prev + 1) ++result.stats.random_seeks;
      prev = id;
      ++result.stats.sequential_reads;
      result.stats.bytes_read +=
          static_cast<int64_t>(width * sizeof(core::Value));

      double pd = partial[id];
      const double* c = block.data() + static_cast<size_t>(id) * width;
      for (size_t j = 0; j < width; ++j) {
        const double d = q[begin + j] - c[j];
        pd += d * d;
      }
      partial[id] = pd;
      ++result.stats.lower_bound_computations;
      const double rq = std::sqrt(q_tail[level]);
      const double rc = std::sqrt(residual_[level][id]);
      const double ub = pd + (rq + rc) * (rq + rc);
      ub_heap.Offer(id, ub);
      if (pd <= bound) next.push_back(id);
    }
    bound = std::min(bound, ub_heap.Bound());
    // Re-filter with the tightened bound.
    next.erase(std::remove_if(next.begin(), next.end(),
                              [&](core::SeriesId id) {
                                return partial[id] > bound;
                              }),
               next.end());
    survivors = std::move(next);
    if (survivors.empty()) break;  // cannot happen: k best always survive
  }

  // Final refinement on the raw file (random access per surviving run).
  // The max_raw budget truncates this pass: coefficient-level filtering
  // reads level files, not raw series, so the budget binds only here.
  core::KnnHeap& heap = core::ScratchKnnHeap(k);
  io::CountedStorage raw(data_);
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  for (const core::SeriesId id : survivors) {
    if (plan.RawCapReached(&result.stats)) break;
    const core::SeriesView c = raw.Read(id, &result.stats);
    const double d = order.Distance(c, heap.Bound());
    ++result.stats.distance_computations;
    ++result.stats.raw_series_examined;
    heap.Offer(id, d);
  }
  heap.ExtractSortedTo(&result.neighbors);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::RangeResult Stepwise::DoSearchRange(core::SeriesView query,
                                          const core::RangePlan& plan) {
  const double radius = plan.radius;
  HYDRA_CHECK(data_ != nullptr);
  HYDRA_CHECK(query.size() == data_->length());
  util::WallTimer timer;
  const size_t count = data_->size();
  const double radius_sq = radius * radius;

  const std::vector<double> q = transform::HaarTransform(query);
  core::RangeResult result;
  // With a fixed bound no upper-bounding pass is needed: filter candidates
  // level by level on the partial (lower-bounding) distance alone.
  std::vector<double> partial(count, 0.0);
  std::vector<core::SeriesId> survivors(count);
  for (size_t i = 0; i < count; ++i) {
    survivors[i] = static_cast<core::SeriesId>(i);
  }
  for (size_t level = 0; level < filter_levels_ && !survivors.empty();
       ++level) {
    const size_t begin = level == 0 ? 0 : level_bounds_[level - 1];
    const size_t width = level_bounds_[level] - begin;
    const std::vector<double>& block = coeffs_[level];
    int64_t prev = -2;
    std::vector<core::SeriesId> next;
    next.reserve(survivors.size());
    for (const core::SeriesId id : survivors) {
      if (static_cast<int64_t>(id) != prev + 1) ++result.stats.random_seeks;
      prev = id;
      ++result.stats.sequential_reads;
      result.stats.bytes_read +=
          static_cast<int64_t>(width * sizeof(core::Value));
      double pd = partial[id];
      const double* c = block.data() + static_cast<size_t>(id) * width;
      for (size_t j = 0; j < width; ++j) {
        const double d = q[begin + j] - c[j];
        pd += d * d;
      }
      partial[id] = pd;
      ++result.stats.lower_bound_computations;
      if (pd <= radius_sq) next.push_back(id);
    }
    survivors = std::move(next);
  }

  core::RangeCollector collector(radius_sq);
  io::CountedStorage raw(data_);
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  for (const core::SeriesId id : survivors) {
    const core::SeriesView c = raw.Read(id, &result.stats);
    const double d = order.Distance(c, radius_sq);
    ++result.stats.distance_computations;
    ++result.stats.raw_series_examined;
    collector.Offer(id, d);
  }
  result.matches = collector.TakeSorted();
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

}  // namespace hydra::scan
