#include "index/isax_tree.h"

#include <cmath>
#include <limits>
#include <queue>

#include "core/traversal.h"
#include "io/index_codec.h"
#include "util/check.h"

namespace hydra::index {
namespace {

void SaveNode(const IsaxTree::Node& node, io::IndexWriter* w) {
  w->WritePodVector(node.word.symbols);
  w->WritePodVector(node.word.bits);
  w->WriteI32(node.depth);
  w->WriteBool(node.is_leaf);
  w->WriteI32(node.split_segment);
  if (node.is_leaf) {
    w->WritePodVector(node.ids);
  } else {
    SaveNode(*node.child0, w);
    SaveNode(*node.child1, w);
  }
}

std::unique_ptr<IsaxTree::Node> LoadNode(io::IndexReader* r,
                                         size_t segments,
                                         size_t series_count) {
  const io::IndexReader::NodeGuard guard(r);
  auto node = std::make_unique<IsaxTree::Node>();
  node->word.symbols = r->ReadPodVector<uint8_t>();
  node->word.bits = r->ReadPodVector<uint8_t>();
  node->depth = r->ReadI32();
  node->is_leaf = r->ReadBool();
  node->split_segment = r->ReadI32();
  // A latched reader error makes every further read a zero, which would
  // present as an internal node and recurse forever — stop immediately.
  if (!r->ok()) return node;
  if (node->word.symbols.size() != segments ||
      node->word.bits.size() != segments) {
    r->Fail("iSAX node word does not match the segment count");
    return node;
  }
  if (node->is_leaf) {
    node->ids = r->ReadPodVector<core::SeriesId>();
    for (const core::SeriesId id : node->ids) {
      if (id >= series_count) {
        r->Fail("iSAX leaf entry is out of the dataset's range");
        return node;
      }
    }
  } else {
    if (node->split_segment < 0 ||
        node->split_segment >= static_cast<int>(segments)) {
      r->Fail("iSAX internal node has an invalid split segment");
      return node;
    }
    node->child0 = LoadNode(r, segments, series_count);
    node->child1 = LoadNode(r, segments, series_count);
  }
  return node;
}

}  // namespace

IsaxTree::IsaxTree(IsaxTreeOptions options, const uint8_t* full_words)
    : options_(options), full_words_(full_words) {
  HYDRA_CHECK(options_.segments > 0 && options_.segments <= kMaxSegments);
  HYDRA_CHECK(options_.leaf_capacity > 0);
  HYDRA_CHECK(full_words != nullptr);
}

uint32_t IsaxTree::FirstLevelKey(std::span<const uint8_t> full_word) const {
  uint32_t key = 0;
  for (size_t s = 0; s < options_.segments; ++s) {
    key = (key << 1) | (transform::ReduceSymbol(full_word[s], 1) & 1u);
  }
  return key;
}

IsaxTree::Node* IsaxTree::FirstLevelFor(std::span<const uint8_t> full_word,
                                        bool create) {
  const uint32_t key = FirstLevelKey(full_word);
  auto it = first_level_.find(key);
  if (it != first_level_.end()) return it->second.get();
  if (!create) return nullptr;
  auto node = std::make_unique<Node>();
  node->word.symbols.resize(options_.segments);
  node->word.bits.assign(options_.segments, 1);
  for (size_t s = 0; s < options_.segments; ++s) {
    node->word.symbols[s] = transform::ReduceSymbol(full_word[s], 1);
  }
  Node* raw = node.get();
  first_level_.emplace(key, std::move(node));
  return raw;
}

void IsaxTree::Insert(core::SeriesId id) {
  const auto word = WordOf(id);
  Node* node = FirstLevelFor(word, /*create=*/true);
  while (!node->is_leaf) {
    const int s = node->split_segment;
    const int child_bits = node->word.bits[s] + 1;
    const uint8_t bit = transform::ReduceSymbol(word[s], child_bits) & 1u;
    node = (bit == 0 ? node->child0 : node->child1).get();
  }
  node->ids.push_back(id);
  if (node->size() > options_.leaf_capacity) SplitLeaf(node);
}

int IsaxTree::ChooseSplitSegment(const Node& leaf) const {
  // The iSAX 2.0 policy: split on the segment whose next bit divides the
  // leaf most evenly; a small penalty steers away from over-refining one
  // segment (ties broken toward the coarsest).
  int best = -1;
  double best_score = std::numeric_limits<double>::infinity();
  for (size_t s = 0; s < options_.segments; ++s) {
    if (leaf.word.bits[s] >= transform::kMaxSaxBits) continue;
    const int child_bits = leaf.word.bits[s] + 1;
    size_t ones = 0;
    for (const core::SeriesId id : leaf.ids) {
      ones += transform::ReduceSymbol(WordOf(id)[s], child_bits) & 1u;
    }
    const double balance =
        std::fabs(static_cast<double>(ones) -
                  static_cast<double>(leaf.size()) / 2.0);
    const double score =
        balance + static_cast<double>(leaf.word.bits[s]) * 0.25;
    if (score < best_score) {
      best_score = score;
      best = static_cast<int>(s);
    }
  }
  return best;
}

void IsaxTree::SplitLeaf(Node* leaf) {
  const int s = ChooseSplitSegment(*leaf);
  if (s < 0) return;  // maximum resolution reached; leaf stays oversized

  const int child_bits = leaf->word.bits[s] + 1;
  auto make_child = [&](uint8_t bit) {
    auto child = std::make_unique<Node>();
    child->word = leaf->word;
    child->word.bits[s] = static_cast<uint8_t>(child_bits);
    child->word.symbols[s] =
        static_cast<uint8_t>((leaf->word.symbols[s] << 1) | bit);
    child->depth = leaf->depth + 1;
    return child;
  };
  leaf->child0 = make_child(0);
  leaf->child1 = make_child(1);
  for (const core::SeriesId id : leaf->ids) {
    const uint8_t bit = transform::ReduceSymbol(WordOf(id)[s], child_bits) & 1u;
    (bit == 0 ? leaf->child0 : leaf->child1)->ids.push_back(id);
  }
  leaf->ids.clear();
  leaf->ids.shrink_to_fit();
  leaf->is_leaf = false;
  leaf->split_segment = s;
  // An uneven split may leave one child overflowing; recurse on it.
  for (Node* child : {leaf->child0.get(), leaf->child1.get()}) {
    if (child->size() > options_.leaf_capacity) SplitLeaf(child);
  }
}

IsaxTree::Node* IsaxTree::ApproximateLeaf(std::span<const uint8_t> full_word,
                                          std::span<const double> paa_q,
                                          size_t points_per_segment) {
  if (first_level_.empty()) return nullptr;
  Node* node = FirstLevelFor(full_word, /*create=*/false);
  if (node == nullptr) {
    // No covering first-level node: fall back to the closest existing one.
    double best = std::numeric_limits<double>::infinity();
    for (const auto& [key, candidate] : first_level_) {
      const double d = transform::IsaxMinDistSq(paa_q, candidate->word,
                                                points_per_segment);
      if (d < best) {
        best = d;
        node = candidate.get();
      }
    }
  }
  while (!node->is_leaf) {
    const int s = node->split_segment;
    const int child_bits = node->word.bits[s] + 1;
    const uint8_t bit = transform::ReduceSymbol(full_word[s], child_bits) & 1u;
    Node* preferred = (bit == 0 ? node->child0 : node->child1).get();
    Node* other = (bit == 0 ? node->child1 : node->child0).get();
    // Avoid dead-ending in an empty leaf when the sibling has data.
    node = (preferred->is_leaf && preferred->ids.empty() &&
            !(other->is_leaf && other->ids.empty()))
               ? other
               : preferred;
  }
  return node;
}

void IsaxTree::BestFirstSearch(
    std::span<const double> paa_q, size_t points_per_segment, size_t workers,
    const std::function<double(size_t)>& bound,
    const std::function<void(Node*, size_t)>& visit_leaf,
    const std::function<core::SearchStats*(size_t)>& stats) const {
  struct Item {
    double mindist;
    Node* node;
    bool operator<(const Item& other) const {
      return mindist > other.mindist;  // min-heap
    }
  };
  // Seeding runs on the calling thread, in first-level map order, exactly
  // like the old private loop — the engine pushes the seeds in this order.
  std::vector<Item> seeds;
  for (const auto& [key, node] : first_level_) {
    const double d = transform::IsaxMinDistSq(paa_q, node->word,
                                              points_per_segment);
    ++stats(0)->lower_bound_computations;
    if (d < bound(0)) seeds.push_back({d, node.get()});
  }
  core::BestFirstTraverse<Item>(
      workers, seeds,
      [&bound](const Item& item, size_t w) {
        return item.mindist >= bound(w);  // all remaining nodes are pruned
      },
      [&](const Item& item, size_t w,
          const std::function<void(Item)>& push) {
        ++stats(w)->nodes_visited;
        if (item.node->is_leaf) {
          visit_leaf(item.node, w);
          return;
        }
        for (Node* child :
             {item.node->child0.get(), item.node->child1.get()}) {
          const double d = transform::IsaxMinDistSq(paa_q, child->word,
                                                    points_per_segment);
          ++stats(w)->lower_bound_computations;
          if (d < bound(w)) push({d, child});
        }
      });
}

void IsaxTree::ForEachNode(const std::function<void(const Node&)>& fn) const {
  std::vector<const Node*> stack;
  for (const auto& [key, node] : first_level_) stack.push_back(node.get());
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    fn(*node);
    if (!node->is_leaf) {
      stack.push_back(node->child0.get());
      stack.push_back(node->child1.get());
    }
  }
}

void IsaxTree::SaveTo(io::IndexWriter* writer) const {
  writer->WriteU64(first_level_.size());
  for (const auto& [key, node] : first_level_) {
    writer->WriteU32(key);
    SaveNode(*node, writer);
  }
}

void IsaxTree::LoadFrom(io::IndexReader* reader, size_t series_count) {
  first_level_.clear();
  const uint64_t count = reader->ReadU64();
  for (uint64_t i = 0; i < count && reader->ok(); ++i) {
    const uint32_t key = reader->ReadU32();
    first_level_[key] = LoadNode(reader, options_.segments, series_count);
  }
}

std::unique_ptr<IsaxTree> IsaxTree::OpenShared(
    io::IndexReader* reader, IsaxTreeOptions options,
    const core::Dataset& data, std::vector<uint8_t>* full_words) {
  if (reader->ok() &&
      (options.segments == 0 || options.segments > kMaxSegments ||
       options.leaf_capacity == 0 ||
       data.length() % options.segments != 0)) {
    reader->Fail("iSAX options are inconsistent with the dataset");
  }
  reader->EnterSection("summaries");
  *full_words = reader->ReadPodVector<uint8_t>();
  if (reader->ok() &&
      (full_words->empty() ||
       full_words->size() != data.size() * options.segments)) {
    // Empty is rejected too: the tree constructor requires a real word
    // array, and no index can legitimately cover zero series.
    reader->Fail("iSAX summary file does not cover the dataset");
  }
  reader->EnterSection("tree");
  if (!reader->ok()) return nullptr;
  auto tree = std::make_unique<IsaxTree>(options, full_words->data());
  tree->LoadFrom(reader, data.size());
  return tree;
}

core::Footprint IsaxTree::StructureFootprint() const {
  core::Footprint fp;
  ForEachNode([&](const Node& node) {
    ++fp.total_nodes;
    fp.memory_bytes += static_cast<int64_t>(
        sizeof(Node) + 2 * options_.segments);  // word symbols + bits
    if (node.is_leaf) {
      ++fp.leaf_nodes;
      fp.memory_bytes +=
          static_cast<int64_t>(node.ids.size() * sizeof(core::SeriesId));
      fp.leaf_fill_fractions.push_back(
          static_cast<double>(node.size()) /
          static_cast<double>(options_.leaf_capacity));
      fp.leaf_depths.push_back(node.depth);
    }
  });
  return fp;
}

}  // namespace hydra::index
