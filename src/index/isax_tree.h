// Shared iSAX tree machinery used by iSAX2+ and ADS+: a first-level layer
// of 1-bit-per-segment words (fanout up to 2^segments, created on demand)
// over binary split subtrees with variable-cardinality words.
#ifndef HYDRA_INDEX_ISAX_TREE_H_
#define HYDRA_INDEX_ISAX_TREE_H_

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "core/method.h"
#include "core/types.h"
#include "transform/isax.h"

namespace hydra::io {
class IndexWriter;
class IndexReader;
}  // namespace hydra::io

namespace hydra::index {

/// Configuration of an iSAX tree.
struct IsaxTreeOptions {
  size_t segments = 16;
  size_t leaf_capacity = 1000;
};

/// iSAX split tree. Leaves hold series ids; every series' full-resolution
/// word lives in a flat array owned by the caller (summaries stay in
/// memory, as in both iSAX2+ and ADS+). The first level assigns one bit to
/// every segment at once (the classic iSAX root fanout); further node
/// splits raise one segment's cardinality by one bit, choosing the segment
/// whose next bit partitions the leaf most evenly (the iSAX 2.0 policy).
class IsaxTree {
 public:
  struct Node {
    transform::IsaxWord word;
    int depth = 1;  // first-level nodes sit at depth 1
    bool is_leaf = true;
    int split_segment = -1;            // internal nodes only
    std::unique_ptr<Node> child0;      // next bit 0
    std::unique_ptr<Node> child1;      // next bit 1
    std::vector<core::SeriesId> ids;   // leaf only

    size_t size() const { return ids.size(); }
  };

  /// Maximum segment count the tree supports (first-level keys pack one
  /// bit per segment into a uint32; the constructor CHECK and the
  /// deserializers' pre-validation both derive from this one constant).
  static constexpr size_t kMaxSegments = 24;

  /// `full_words` is the flat per-series full-resolution symbol array
  /// (`segments` symbols per series), owned by the caller and immutable for
  /// the tree's lifetime.
  IsaxTree(IsaxTreeOptions options, const uint8_t* full_words);

  /// Inserts one series by id; creates the first-level node on demand and
  /// splits overflowing leaves.
  void Insert(core::SeriesId id);

  /// Splits `leaf` once (two children, entries redistributed). No-op if the
  /// word is already at maximum resolution everywhere.
  void SplitLeaf(Node* leaf);

  /// Leaf used by ng-approximate search: the leaf covering `full_word` if
  /// its first-level node exists, otherwise the leaf under the first-level
  /// node with the smallest MINDIST. Returns nullptr on an empty tree.
  Node* ApproximateLeaf(std::span<const uint8_t> full_word,
                        std::span<const double> paa_q,
                        size_t points_per_segment);

  /// Best-first exact traversal over core::BestFirstTraverse: calls
  /// `visit_leaf(leaf, w)` from worker w for every leaf whose MINDIST to
  /// `paa_q` is below the bound returned by `bound(w)` (re-evaluated as
  /// the search tightens). `workers == 1` runs the classic serial loop on
  /// the calling thread, bit-identical to the pre-engine traversal; with
  /// more workers the frontier is drained cooperatively and the callbacks
  /// must be safe to call concurrently with distinct w. Seeding (the
  /// first-level MINDIST fan-out) always runs on the calling thread and
  /// charges `stats(0)`.
  void BestFirstSearch(
      std::span<const double> paa_q, size_t points_per_segment,
      size_t workers, const std::function<double(size_t)>& bound,
      const std::function<void(Node*, size_t)>& visit_leaf,
      const std::function<core::SearchStats*(size_t)>& stats) const;

  const IsaxTreeOptions& options() const { return options_; }

  /// Walks all nodes (pre-order within each first-level subtree).
  void ForEachNode(const std::function<void(const Node&)>& fn) const;

  /// Number of nodes / leaf nodes and resident bytes of the structure.
  core::Footprint StructureFootprint() const;

  /// Serializes the tree structure into the writer's current section (the
  /// caller-owned full-resolution word array is persisted by the owner).
  void SaveTo(io::IndexWriter* writer) const;

  /// Rebuilds the structure from the reader's current section (inverse of
  /// SaveTo), replacing the current contents. Leaf ids are validated
  /// against `series_count`; failures latch into the reader's sticky
  /// status.
  void LoadFrom(io::IndexReader* reader, size_t series_count);

  /// Shared deserialization tail of the two iSAX-based methods (ADS+,
  /// iSAX2+): validates `options` against the dataset, reads the
  /// "summaries" section into `*full_words` (checking it covers the
  /// collection) and the "tree" section into a fresh tree over that
  /// array. Returns nullptr (with the reader's status latched) on any
  /// failure.
  static std::unique_ptr<IsaxTree> OpenShared(io::IndexReader* reader,
                                              IsaxTreeOptions options,
                                              const core::Dataset& data,
                                              std::vector<uint8_t>* full_words);

 private:
  std::span<const uint8_t> WordOf(core::SeriesId id) const {
    return {full_words_ + static_cast<size_t>(id) * options_.segments,
            options_.segments};
  }
  uint32_t FirstLevelKey(std::span<const uint8_t> full_word) const;
  Node* FirstLevelFor(std::span<const uint8_t> full_word, bool create);
  int ChooseSplitSegment(const Node& leaf) const;

  IsaxTreeOptions options_;
  const uint8_t* full_words_;
  // Ordered map: iteration order (ApproximateLeaf fallback ties,
  // BestFirstSearch seeding) must be deterministic and identical between a
  // freshly built tree and one rehydrated from disk, or opened indexes
  // could break ties differently than built ones.
  std::map<uint32_t, std::unique_ptr<Node>> first_level_;
};

}  // namespace hydra::index

#endif  // HYDRA_INDEX_ISAX_TREE_H_
