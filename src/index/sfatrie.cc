#include "index/sfatrie.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>

#include "core/distance.h"
#include "core/simd/kernels.h"
#include "core/traversal.h"
#include "io/index_codec.h"
#include "transform/dft.h"
#include "util/check.h"
#include "util/timer.h"

namespace hydra::index {

struct SfaTrie::Node {
  // The word prefix this node covers has length `depth`; children are keyed
  // by the symbol at position `depth`.
  int depth = 0;
  bool is_leaf = true;
  std::vector<std::unique_ptr<Node>> children;  // alphabet slots (internal)
  std::vector<core::SeriesId> ids;              // leaf only
  // MBR of member DFT vectors (tight lower bound, "DFT MBRs").
  std::vector<double> mbr_min;
  std::vector<double> mbr_max;
  size_t count = 0;
};

SfaTrie::SfaTrie(SfaTrieOptions options) : options_(options) {}
SfaTrie::~SfaTrie() = default;

core::BuildStats SfaTrie::DoBuild(const core::Dataset& data) {
  util::WallTimer timer;
  data_ = &data;
  const size_t dims =
      std::min(options_.word_length,
               transform::MaxPackedCoeffs(data.length(), /*skip_dc=*/true));

  // DFT summaries for every series (one sequential pass), then MCB training
  // on a sample (the original uses sampling; at our scale "all" is cheap).
  dfts_.resize(data.size() * dims);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto dft = transform::PackedRealDft(data[i], dims, /*skip_dc=*/true);
    std::copy(dft.begin(), dft.end(), dfts_.begin() + i * dims);
  }
  const size_t sample =
      options_.sample_size == 0
          ? data.size()
          : std::min(options_.sample_size, data.size());
  std::vector<std::vector<double>> sample_dfts(sample);
  for (size_t i = 0; i < sample; ++i) {
    // Strided sampling covers the whole collection.
    const size_t idx = i * data.size() / sample;
    sample_dfts[i].assign(dfts_.begin() + idx * dims,
                          dfts_.begin() + (idx + 1) * dims);
  }
  quantizer_ =
      transform::SfaQuantizer::Train(sample_dfts, options_.alphabet,
                                     options_.binning);

  words_.resize(data.size() * dims);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto word = quantizer_.Quantize(
        std::span<const double>(dfts_.data() + i * dims, dims));
    std::copy(word.begin(), word.end(), words_.begin() + i * dims);
  }

  root_ = std::make_unique<Node>();
  root_->mbr_min.assign(dims, std::numeric_limits<double>::infinity());
  root_->mbr_max.assign(dims, -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < data.size(); ++i) {
    Insert(static_cast<core::SeriesId>(i), root_.get());
  }

  core::BuildStats stats;
  stats.cpu_seconds = timer.Seconds();
  stats.bytes_read = static_cast<int64_t>(data.bytes());
  stats.random_reads = 1;
  stats.bytes_written = static_cast<int64_t>(data.bytes());
  stats.random_writes = footprint().leaf_nodes;
  leaf_count_ = stats.random_writes;
  return stats;
}

void SfaTrie::SaveNode(const Node& node, io::IndexWriter* w) {
  w->WriteI32(node.depth);
  w->WriteBool(node.is_leaf);
  w->WriteU64(node.count);
  w->WritePodVector(node.mbr_min);
  w->WritePodVector(node.mbr_max);
  if (node.is_leaf) {
    w->WritePodVector(node.ids);
    return;
  }
  w->WriteU64(node.children.size());
  for (const auto& slot : node.children) {
    w->WriteBool(slot != nullptr);
    if (slot != nullptr) SaveNode(*slot, w);
  }
}

std::unique_ptr<SfaTrie::Node> SfaTrie::LoadNode(io::IndexReader* r,
                                                 size_t series_count) const {
  const io::IndexReader::NodeGuard guard(r);
  const size_t dims = quantizer_.dims();
  auto node = std::make_unique<Node>();
  node->depth = r->ReadI32();
  node->is_leaf = r->ReadBool();
  node->count = r->ReadU64();
  node->mbr_min = r->ReadPodVector<double>();
  node->mbr_max = r->ReadPodVector<double>();
  if (!r->ok()) return node;
  if (node->mbr_min.size() != dims || node->mbr_max.size() != dims) {
    r->Fail("SFA node MBR does not match the word length");
    return node;
  }
  // The descent indexes the query word by `depth`, so an internal node's
  // depth must address a word position (a leaf may sit at depth == dims:
  // the full word is exhausted).
  if (node->depth < 0 || static_cast<size_t>(node->depth) > dims ||
      (!node->is_leaf && static_cast<size_t>(node->depth) == dims)) {
    r->Fail("SFA node depth is out of the word's range");
    return node;
  }
  if (node->is_leaf) {
    node->ids = r->ReadPodVector<core::SeriesId>();
    for (const core::SeriesId id : node->ids) {
      if (id >= series_count) {
        r->Fail("SFA leaf entry is out of the dataset's range");
        return node;
      }
    }
    return node;
  }
  const uint64_t slots = r->ReadU64();
  if (!r->ok()) return node;
  if (slots != static_cast<uint64_t>(options_.alphabet)) {
    r->Fail("SFA internal node fanout does not match the alphabet");
    return node;
  }
  node->children.resize(slots);
  for (uint64_t s = 0; s < slots && r->ok(); ++s) {
    if (r->ReadBool()) node->children[s] = LoadNode(r, series_count);
  }
  return node;
}

void SfaTrie::DoSave(io::IndexWriter* writer) const {
  writer->BeginSection("options");
  writer->WriteU64(options_.word_length);
  writer->WriteI32(options_.alphabet);
  writer->WriteU8(static_cast<uint8_t>(options_.binning));
  writer->WriteU64(options_.leaf_capacity);
  writer->WriteU64(options_.sample_size);
  writer->WriteI64(leaf_count_);
  writer->EndSection();
  writer->BeginSection("quantizer");
  writer->WriteU64(quantizer_.dims());
  for (size_t d = 0; d < quantizer_.dims(); ++d) {
    const auto bins = quantizer_.BreakpointsFor(d);
    writer->WritePodVector(
        std::vector<double>(bins.begin(), bins.end()));
  }
  writer->EndSection();
  writer->BeginSection("summaries");
  writer->WritePodVector(dfts_);
  writer->WritePodVector(words_);
  writer->EndSection();
  writer->BeginSection("tree");
  SaveNode(*root_, writer);
  writer->EndSection();
}

util::Status SfaTrie::DoOpen(io::IndexReader* reader,
                             const core::Dataset& data) {
  reader->EnterSection("options");
  options_.word_length = reader->ReadU64();
  options_.alphabet = reader->ReadI32();
  options_.binning =
      static_cast<transform::SfaQuantizer::Binning>(reader->ReadU8());
  options_.leaf_capacity = reader->ReadU64();
  options_.sample_size = reader->ReadU64();
  leaf_count_ = reader->ReadI64();
  if (reader->ok() && (options_.alphabet < 2 || options_.alphabet > 256 ||
                       options_.leaf_capacity == 0)) {
    reader->Fail("SFA options are out of range");
  }
  reader->EnterSection("quantizer");
  const uint64_t dims = reader->ReadU64();
  std::vector<std::vector<double>> bins;
  for (uint64_t d = 0; d < dims && reader->ok(); ++d) {
    bins.push_back(reader->ReadPodVector<double>());
    if (reader->ok() &&
        bins.back().size() != static_cast<size_t>(options_.alphabet) - 1) {
      reader->Fail("SFA breakpoint table does not match the alphabet");
    }
  }
  if (!reader->ok()) return reader->status();
  quantizer_ =
      transform::SfaQuantizer::FromBreakpoints(std::move(bins),
                                               options_.alphabet);
  reader->EnterSection("summaries");
  dfts_ = reader->ReadPodVector<double>();
  words_ = reader->ReadPodVector<uint8_t>();
  if (reader->ok() && (dfts_.size() != data.size() * quantizer_.dims() ||
                       words_.size() != data.size() * quantizer_.dims())) {
    reader->Fail("SFA summary file does not cover the dataset");
  }
  reader->EnterSection("tree");
  if (!reader->ok()) return reader->status();
  data_ = &data;
  root_ = LoadNode(reader, data.size());
  return reader->status();
}

void SfaTrie::Insert(core::SeriesId id, Node* node) {
  const size_t dims = quantizer_.dims();
  const double* dft = dfts_.data() + static_cast<size_t>(id) * dims;
  const uint8_t* word = words_.data() + static_cast<size_t>(id) * dims;
  while (true) {
    for (size_t d = 0; d < dims; ++d) {
      node->mbr_min[d] = std::min(node->mbr_min[d], dft[d]);
      node->mbr_max[d] = std::max(node->mbr_max[d], dft[d]);
    }
    ++node->count;
    if (node->is_leaf) break;
    std::unique_ptr<Node>& slot = node->children[word[node->depth]];
    if (slot == nullptr) {
      slot = std::make_unique<Node>();
      slot->depth = node->depth + 1;
      slot->mbr_min.assign(dims, std::numeric_limits<double>::infinity());
      slot->mbr_max.assign(dims, -std::numeric_limits<double>::infinity());
    }
    node = slot.get();
  }
  node->ids.push_back(id);
  if (node->ids.size() > options_.leaf_capacity &&
      static_cast<size_t>(node->depth) < dims) {
    SplitLeaf(node);
  }
}

void SfaTrie::SplitLeaf(Node* leaf) {
  const size_t dims = quantizer_.dims();
  leaf->is_leaf = false;
  leaf->children.resize(static_cast<size_t>(options_.alphabet));
  std::vector<core::SeriesId> ids = std::move(leaf->ids);
  leaf->ids.clear();
  for (const core::SeriesId id : ids) {
    const uint8_t sym =
        words_[static_cast<size_t>(id) * dims + leaf->depth];
    std::unique_ptr<Node>& slot = leaf->children[sym];
    if (slot == nullptr) {
      slot = std::make_unique<Node>();
      slot->depth = leaf->depth + 1;
      slot->mbr_min.assign(dims, std::numeric_limits<double>::infinity());
      slot->mbr_max.assign(dims, -std::numeric_limits<double>::infinity());
    }
    Node* child = slot.get();
    const double* dft = dfts_.data() + static_cast<size_t>(id) * dims;
    for (size_t d = 0; d < dims; ++d) {
      child->mbr_min[d] = std::min(child->mbr_min[d], dft[d]);
      child->mbr_max[d] = std::max(child->mbr_max[d], dft[d]);
    }
    ++child->count;
    child->ids.push_back(id);
  }
  for (auto& slot : leaf->children) {
    if (slot != nullptr && slot->ids.size() > options_.leaf_capacity &&
        static_cast<size_t>(slot->depth) < dims) {
      SplitLeaf(slot.get());
    }
  }
}

double SfaTrie::NodeLowerBound(std::span<const double> q_dft,
                               const Node& node) const {
  // Distance from the query's DFT vector to the node MBR: valid because the
  // packed DFT is orthonormal and truncated.
  return core::simd::ActiveKernels().box_dist_sq(
      q_dft.data(), node.mbr_min.data(), node.mbr_max.data(), q_dft.size());
}

void SfaTrie::VisitLeaf(const Node& leaf, const core::QueryOrder& order,
                        const core::KnnPlan& plan, core::KnnHeap* heap,
                        core::SearchStats* stats) const {
  if (leaf.ids.empty()) return;
  HYDRA_OBS_SPAN_ARG("leaf_verify", "series", leaf.ids.size());
  io::ChargeLeafRead(leaf.ids.size(), data_->length() * sizeof(core::Value),
                     stats);
  io::CountedStorage raw(data_);
  for (const core::SeriesId id : leaf.ids) {
    if (plan.RawCapReached(stats)) return;
    const double d = order.Distance(raw.ReadPrecharged(id, stats),
                                    heap->Bound());
    ++stats->distance_computations;
    ++stats->raw_series_examined;
    heap->Offer(id, d);
  }
}

core::KnnResult SfaTrie::DoSearchKnn(core::SeriesView query,
                                     const core::KnnPlan& plan) {
  HYDRA_CHECK(root_ != nullptr);
  util::WallTimer timer;
  core::KnnResult result;
  core::KnnHeap& heap = core::ScratchKnnHeap(plan.k);
  core::KnnWorkers workers(&heap, &result.stats, plan);
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  const size_t dims = quantizer_.dims();
  const auto q_dft = transform::PackedRealDft(query, dims, /*skip_dc=*/true);
  const auto q_word = quantizer_.Quantize(q_dft);

  // ng-approximate descent along the query's word, always on the calling
  // thread (worker 0) into the primary heap, so every worker starts from
  // the descent's published bound.
  Node* node = root_.get();
  while (!node->is_leaf) {
    Node* next = node->children[q_word[node->depth]].get();
    if (next == nullptr) break;  // empty slot: stop early
    node = next;
  }
  const Node* home = node->is_leaf ? node : nullptr;
  std::vector<int64_t> leaves(workers.workers(), 0);
  std::vector<uint8_t> stop(workers.workers(), 0);
  if (home != nullptr) {
    ++result.stats.nodes_visited;
    VisitLeaf(*home, order, plan, &heap, &result.stats);
    leaves[0] = 1;
  }

  // Best-first traversal with the MBR lower bound; pruning against
  // bsf/(1+epsilon)^2 (plan.bound_scale) keeps every reported distance
  // within (1+epsilon) of the truth (exact with the default plan). Caps
  // and budgets only ever bind at width 1 (Execute's pure-exact gate).
  struct Item {
    double lb;
    const Node* node;
    bool operator<(const Item& other) const {
      return lb > other.lb;
    }
  };
  core::BestFirstTraverse<Item>(
      workers.workers(), {Item{0.0, root_.get()}},
      [&](const Item& item, size_t w) {
        return stop[w] != 0 || workers.stats(w).budget_exhausted ||
               item.lb >= workers.heap(w).Bound() * plan.bound_scale;
      },
      [&](const Item& item, size_t w,
          const std::function<void(Item)>& push) {
        core::SearchStats& stats = workers.stats(w);
        ++stats.nodes_visited;
        if (item.node->is_leaf) {
          if (item.node != home) {
            if (plan.LeafCapReached(leaves[w], leaf_count_, &stats)) {
              stop[w] = 1;
              return;
            }
            VisitLeaf(*item.node, order, plan, &workers.heap(w), &stats);
            ++leaves[w];
          }
          return;
        }
        for (const auto& slot : item.node->children) {
          if (slot == nullptr || slot->count == 0) continue;
          const double lb = NodeLowerBound(q_dft, *slot);
          ++stats.lower_bound_computations;
          if (lb < workers.heap(w).Bound() * plan.bound_scale) {
            push({lb, slot.get()});
          }
        }
      });

  workers.Finish(plan.k, &result.neighbors);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::RangeResult SfaTrie::DoSearchRange(core::SeriesView query,
                                         const core::RangePlan& plan) {
  HYDRA_CHECK(root_ != nullptr);
  util::WallTimer timer;
  core::RangeResult result;
  const double radius_sq = plan.radius * plan.radius;
  core::RangeWorkers workers(radius_sq, &result.stats, plan.query_threads);
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  const size_t dims = quantizer_.dims();
  const auto q_dft = transform::PackedRealDft(query, dims, /*skip_dc=*/true);

  // Engine traversal with the fixed r^2 bound: nodes are bounded before
  // they enter the frontier, so every counter is traversal-order
  // independent and the parallel sweep charges exactly the serial totals.
  struct Item {
    double lb;
    const Node* node;
    bool operator<(const Item& other) const { return lb > other.lb; }
  };
  auto bounded = [&](const Node* node, core::SearchStats* stats)
      -> std::optional<Item> {
    if (node->count == 0) return std::nullopt;
    ++stats->lower_bound_computations;
    const double lb = NodeLowerBound(q_dft, *node);
    if (lb > radius_sq) return std::nullopt;
    return Item{lb, node};
  };
  std::vector<Item> seeds;
  if (const auto root = bounded(root_.get(), &result.stats)) {
    seeds.push_back(*root);
  }
  core::BestFirstTraverse<Item>(
      workers.workers(), seeds,
      [](const Item&, size_t) { return false; },
      [&](const Item& item, size_t w,
          const std::function<void(Item)>& push) {
        core::RangeCollector& collector = workers.collector(w);
        core::SearchStats& stats = workers.stats(w);
        ++stats.nodes_visited;
        if (item.node->is_leaf) {
          HYDRA_OBS_SPAN_ARG("leaf_verify", "series", item.node->ids.size());
          io::ChargeLeafRead(item.node->ids.size(),
                             data_->length() * sizeof(core::Value), &stats);
          io::CountedStorage raw(data_);
          for (const core::SeriesId id : item.node->ids) {
            const double d = order.Distance(
                raw.ReadPrecharged(id, &stats), collector.Bound());
            ++stats.distance_computations;
            ++stats.raw_series_examined;
            collector.Offer(id, d);
          }
          return;
        }
        for (const auto& slot : item.node->children) {
          if (slot == nullptr) continue;
          if (const auto entry = bounded(slot.get(), &stats)) push(*entry);
        }
      });

  workers.Finish(&result.matches);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::KnnResult SfaTrie::DoSearchKnnNg(core::SeriesView query, size_t k) {
  HYDRA_CHECK(root_ != nullptr);
  util::WallTimer timer;
  core::KnnResult result;
  core::KnnHeap& heap = core::ScratchKnnHeap(k);
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  const size_t dims = quantizer_.dims();
  const auto q_dft = transform::PackedRealDft(query, dims, /*skip_dc=*/true);
  const auto q_word = quantizer_.Quantize(q_dft);

  // One path along the query's word; if the path dead-ends before a leaf,
  // take the child with the smallest MBR lower bound.
  Node* node = root_.get();
  while (!node->is_leaf) {
    Node* next = node->children[q_word[node->depth]].get();
    if (next == nullptr) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& slot : node->children) {
        if (slot == nullptr || slot->count == 0) continue;
        const double lb = NodeLowerBound(q_dft, *slot);
        if (lb < best) {
          best = lb;
          next = slot.get();
        }
      }
      if (next == nullptr) break;
    }
    node = next;
  }
  if (node->is_leaf) {
    ++result.stats.nodes_visited;
    VisitLeaf(*node, order, core::KnnPlan{.k = k}, &heap, &result.stats);
  }
  heap.ExtractSortedTo(&result.neighbors);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::Footprint SfaTrie::footprint() const {
  HYDRA_CHECK(root_ != nullptr);
  core::Footprint fp;
  const size_t dims = quantizer_.dims();
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    ++fp.total_nodes;
    fp.memory_bytes +=
        static_cast<int64_t>(sizeof(Node) + 2 * dims * sizeof(double));
    if (n->is_leaf) {
      ++fp.leaf_nodes;
      fp.memory_bytes +=
          static_cast<int64_t>(n->ids.size() * sizeof(core::SeriesId));
      fp.leaf_fill_fractions.push_back(
          static_cast<double>(n->ids.size()) /
          static_cast<double>(options_.leaf_capacity));
      fp.leaf_depths.push_back(n->depth);
    } else {
      for (const auto& slot : n->children) {
        if (slot != nullptr) stack.push_back(slot.get());
      }
    }
  }
  fp.memory_bytes += static_cast<int64_t>(quantizer_.MemoryBytes() +
                                          words_.size() * sizeof(uint8_t));
  fp.disk_bytes = static_cast<int64_t>(data_->bytes());  // leaf files
  return fp;
}

double SfaTrie::MeanTlb(core::SeriesView query) const {
  HYDRA_CHECK(root_ != nullptr);
  const size_t dims = quantizer_.dims();
  const auto q_dft = transform::PackedRealDft(query, dims, /*skip_dc=*/true);
  double sum = 0.0;
  int64_t leaves = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (!n->is_leaf) {
      for (const auto& slot : n->children) {
        if (slot != nullptr) stack.push_back(slot.get());
      }
      continue;
    }
    if (n->ids.empty()) continue;
    // The tight SFA bound (DFT MBRs), the variant the paper evaluates.
    const double lb_sq = NodeLowerBound(q_dft, *n);
    double true_sum = 0.0;
    for (const core::SeriesId id : n->ids) {
      true_sum += std::sqrt(core::SquaredEuclidean(query, (*data_)[id]));
    }
    const double mean_true = true_sum / static_cast<double>(n->ids.size());
    if (mean_true > 0.0) {
      sum += std::sqrt(lb_sq) / mean_true;
      ++leaves;
    }
  }
  return leaves == 0 ? 0.0 : sum / static_cast<double>(leaves);
}

}  // namespace hydra::index
