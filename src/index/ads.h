// ADS+: the adaptive data series index. The tree holds iSAX summaries only;
// exact queries use SIMS — an ng-approximate tree descent for an initial
// best-so-far, then per-series lower bounds against all full-resolution
// summaries, then a skip-sequential pass over the raw file.
#ifndef HYDRA_INDEX_ADS_H_
#define HYDRA_INDEX_ADS_H_

#include <memory>
#include <vector>

#include "core/method.h"
#include "index/isax_tree.h"
#include "io/counted_storage.h"

namespace hydra::index {

/// Options for ADS+. `adaptive_leaf_capacity` is the minimal leaf size the
/// index refines to along query paths (adaptive splitting).
struct AdsOptions {
  size_t segments = 16;
  size_t leaf_capacity = 1000;
  size_t adaptive_leaf_capacity = 64;
};

/// Exact whole-matching k-NN via ADS+ / SIMS.
class AdsPlus : public core::SearchMethod {
 public:
  explicit AdsPlus(AdsOptions options = {}) : options_(options) {}

  std::string name() const override { return "ADS+"; }
  /// ADS+ is adaptive: exact queries split leaves along the query path
  /// (mutating the shared iSAX tree) and all queries share one raw-file
  /// cursor, so the batch engine must keep its queries serial. ng-capable
  /// tree (Table 1), so every approximate mode is supported; the delta
  /// rule applies to its skip-sequential candidate list (one series is
  /// its unit of random access, not one leaf).
  core::MethodTraits traits() const override {
    return {.concurrent_queries = false,
            .serial_reason =
                "adaptive query-path leaf splitting mutates the shared "
                "iSAX tree during queries",
            .supports_ng = true,
            .supports_epsilon = true,
            .supports_delta_epsilon = true,
            .supports_persistence = true,
            // Sharding is what finally parallelizes ADS+ across queries:
            // the fan-out gives each shard's adaptive tree exactly one
            // thread per query, so concurrent_queries can stay honestly
            // false.
            .shardable = true,
            // Within one query the tree-mutating phase 1 stays on the
            // calling thread; only the order-independent summary and
            // refinement scans fan out.
            .intra_query_parallel = true};
  }
  core::Footprint footprint() const override;
  double MeanTlb(core::SeriesView query) const override;

 protected:
  core::BuildStats DoBuild(const core::Dataset& data) override;
  /// Persists the summary words and the (possibly adaptively refined)
  /// iSAX tree; an opened ADS+ resumes splitting from the saved state.
  void DoSave(io::IndexWriter* writer) const override;
  util::Status DoOpen(io::IndexReader* reader,
                      const core::Dataset& data) override;
  core::KnnResult DoSearchKnn(core::SeriesView query,
                              const core::KnnPlan& plan) override;
  core::KnnResult DoSearchKnnNg(core::SeriesView query, size_t k) override;
  core::RangeResult DoSearchRange(core::SeriesView query,
                                  const core::RangePlan& plan) override;

 private:
  AdsOptions options_;
  const core::Dataset* data_ = nullptr;
  std::vector<uint8_t> full_words_;
  std::unique_ptr<IsaxTree> tree_;
  std::unique_ptr<io::CountedStorage> raw_;
};

}  // namespace hydra::index

#endif  // HYDRA_INDEX_ADS_H_
