#include "index/dstree.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>

#include "core/distance.h"
#include "core/traversal.h"
#include "io/index_codec.h"
#include "util/check.h"
#include "util/timer.h"

namespace hydra::index {

using transform::SegmentRange;
using transform::Segmentation;
using transform::SegmentStats;

struct DsTree::Node {
  Segmentation seg;
  std::vector<SegmentRange> ranges;  // envelope of the subtree, over `seg`
  size_t count = 0;
  int depth = 0;
  bool is_leaf = true;
  // Split specification (internal nodes): children share `child_seg`; the
  // routing test compares a series' stat on `split_segment` to
  // `split_value`.
  Segmentation child_seg;
  int split_segment = -1;
  bool split_on_mean = true;
  double split_value = 0.0;
  std::unique_ptr<Node> left;   // stat <= split_value
  std::unique_ptr<Node> right;  // stat >  split_value
  std::vector<core::SeriesId> ids;  // leaf only
};

DsTree::DsTree(DsTreeOptions options) : options_(options) {}
DsTree::~DsTree() = default;

DsTree::Prefix DsTree::ComputePrefix(core::SeriesView x) {
  Prefix p;
  p.sum.resize(x.size() + 1, 0.0);
  p.sum_sq.resize(x.size() + 1, 0.0);
  for (size_t i = 0; i < x.size(); ++i) {
    p.sum[i + 1] = p.sum[i] + x[i];
    p.sum_sq[i + 1] = p.sum_sq[i] + static_cast<double>(x[i]) * x[i];
  }
  return p;
}

SegmentStats DsTree::StatOf(const Prefix& p, uint32_t begin, uint32_t end) {
  const double len = static_cast<double>(end - begin);
  const double mean = (p.sum[end] - p.sum[begin]) / len;
  const double var =
      std::max(0.0, (p.sum_sq[end] - p.sum_sq[begin]) / len - mean * mean);
  return {mean, std::sqrt(var)};
}

std::vector<SegmentStats> DsTree::StatsOn(const Prefix& p,
                                          const Segmentation& seg) {
  std::vector<SegmentStats> stats(seg.segments());
  for (size_t s = 0; s < seg.segments(); ++s) {
    stats[s] = StatOf(p, seg.begin_of(s), seg.ends[s]);
  }
  return stats;
}

namespace {

// "Size" of a node's envelope: how loose its lower bound can be. The QoS
// heuristic minimizes the count-weighted envelope size of the children.
double BoxSize(const std::vector<SegmentRange>& ranges,
               const Segmentation& seg) {
  double acc = 0.0;
  for (size_t s = 0; s < seg.segments(); ++s) {
    const double dm = ranges[s].max_mean - ranges[s].min_mean;
    const double ds = ranges[s].max_std - ranges[s].min_std;
    acc += static_cast<double>(seg.length_of(s)) * (dm * dm + ds * ds);
  }
  return acc;
}

// A candidate split under evaluation.
struct Candidate {
  Segmentation child_seg;
  int split_segment = -1;
  bool split_on_mean = true;
  double split_value = 0.0;
  double qos = std::numeric_limits<double>::infinity();
};

}  // namespace

core::BuildStats DsTree::DoBuild(const core::Dataset& data) {
  util::WallTimer timer;
  data_ = &data;
  HYDRA_CHECK(options_.initial_segments >= 1);
  HYDRA_CHECK(options_.max_segments >= options_.initial_segments);

  root_ = std::make_unique<Node>();
  root_->seg = Segmentation::Uniform(data.length(), options_.initial_segments);
  root_->ranges.resize(root_->seg.segments());

  for (size_t i = 0; i < data.size(); ++i) {
    const Prefix p = ComputePrefix(data[i]);
    Insert(static_cast<core::SeriesId>(i), p);
  }

  core::BuildStats stats;
  stats.cpu_seconds = timer.Seconds();
  stats.bytes_read = static_cast<int64_t>(data.bytes());
  stats.random_reads = 1;
  // Leaf files hold the clustered raw series.
  stats.bytes_written = static_cast<int64_t>(data.bytes());
  int64_t leaves = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      ++leaves;
    } else {
      stack.push_back(n->left.get());
      stack.push_back(n->right.get());
    }
  }
  stats.random_writes = leaves;
  leaf_count_ = leaves;
  return stats;
}

void DsTree::SaveNode(const Node& node, io::IndexWriter* w) {
  w->WritePodVector(node.seg.ends);
  w->WritePodVector(node.ranges);
  w->WriteU64(node.count);
  w->WriteI32(node.depth);
  w->WriteBool(node.is_leaf);
  if (node.is_leaf) {
    w->WritePodVector(node.ids);
    return;
  }
  w->WritePodVector(node.child_seg.ends);
  w->WriteI32(node.split_segment);
  w->WriteBool(node.split_on_mean);
  w->WriteDouble(node.split_value);
  SaveNode(*node.left, w);
  SaveNode(*node.right, w);
}

std::unique_ptr<DsTree::Node> DsTree::LoadNode(io::IndexReader* r,
                                               size_t series_length,
                                               size_t series_count) {
  const io::IndexReader::NodeGuard guard(r);
  auto node = std::make_unique<Node>();
  node->seg.ends = r->ReadPodVector<uint32_t>();
  node->ranges = r->ReadPodVector<SegmentRange>();
  node->count = r->ReadU64();
  node->depth = r->ReadI32();
  node->is_leaf = r->ReadBool();
  // Stop on a latched error before recursing (zeroed reads would present
  // as an endless chain of internal nodes).
  if (!r->ok()) return node;
  if (node->seg.ends.empty() || node->seg.ends.back() != series_length ||
      node->ranges.size() != node->seg.segments()) {
    r->Fail("DSTree node segmentation does not cover the series length");
    return node;
  }
  if (node->is_leaf) {
    node->ids = r->ReadPodVector<core::SeriesId>();
    for (const core::SeriesId id : node->ids) {
      if (id >= series_count) {
        r->Fail("DSTree leaf entry is out of the dataset's range");
        return node;
      }
    }
    return node;
  }
  node->child_seg.ends = r->ReadPodVector<uint32_t>();
  node->split_segment = r->ReadI32();
  node->split_on_mean = r->ReadBool();
  node->split_value = r->ReadDouble();
  if (!r->ok()) return node;
  if (node->split_segment < 0 ||
      static_cast<size_t>(node->split_segment) >=
          node->child_seg.segments()) {
    r->Fail("DSTree internal node has an invalid split segment");
    return node;
  }
  node->left = LoadNode(r, series_length, series_count);
  node->right = LoadNode(r, series_length, series_count);
  return node;
}

void DsTree::DoSave(io::IndexWriter* writer) const {
  static_assert(std::is_trivially_copyable_v<SegmentRange>);
  writer->BeginSection("options");
  writer->WriteU64(options_.initial_segments);
  writer->WriteU64(options_.max_segments);
  writer->WriteU64(options_.leaf_capacity);
  writer->WriteI64(leaf_count_);
  writer->EndSection();
  writer->BeginSection("tree");
  SaveNode(*root_, writer);
  writer->EndSection();
}

util::Status DsTree::DoOpen(io::IndexReader* reader,
                            const core::Dataset& data) {
  reader->EnterSection("options");
  options_.initial_segments = reader->ReadU64();
  options_.max_segments = reader->ReadU64();
  options_.leaf_capacity = reader->ReadU64();
  leaf_count_ = reader->ReadI64();
  reader->EnterSection("tree");
  if (!reader->ok()) return reader->status();
  data_ = &data;
  root_ = LoadNode(reader, data.length(), data.size());
  return reader->status();
}

void DsTree::Insert(core::SeriesId id, const Prefix& p) {
  Node* node = root_.get();
  while (true) {
    // Extend the envelope of every node on the path.
    const auto stats = StatsOn(p, node->seg);
    for (size_t s = 0; s < stats.size(); ++s) {
      node->ranges[s].Extend(stats[s], node->count == 0);
    }
    ++node->count;
    if (node->is_leaf) break;
    const auto& cs = node->child_seg;
    const SegmentStats st =
        StatOf(p, cs.begin_of(node->split_segment),
               cs.ends[node->split_segment]);
    const double v = node->split_on_mean ? st.mean : st.stddev;
    node = (v <= node->split_value ? node->left : node->right).get();
  }
  node->ids.push_back(id);
  if (node->ids.size() > options_.leaf_capacity) SplitLeaf(node);
}

void DsTree::SplitLeaf(Node* leaf) {
  const size_t count = leaf->ids.size();
  std::vector<Prefix> prefixes(count);
  for (size_t i = 0; i < count; ++i) {
    prefixes[i] = ComputePrefix((*data_)[leaf->ids[i]]);
  }

  // Enumerate candidate child segmentations: the current one (horizontal
  // splits) and, if allowed, each segment refined into two halves
  // (vertical splits).
  std::vector<Segmentation> child_segs;
  child_segs.push_back(leaf->seg);
  if (leaf->seg.segments() < options_.max_segments) {
    for (size_t s = 0; s < leaf->seg.segments(); ++s) {
      const uint32_t b = leaf->seg.begin_of(s);
      const uint32_t e = leaf->seg.ends[s];
      if (e - b < 2) continue;
      Segmentation refined = leaf->seg;
      refined.ends.insert(refined.ends.begin() + static_cast<long>(s),
                          (b + e) / 2);
      child_segs.push_back(std::move(refined));
    }
  }

  // Horizontal and vertical candidates are scored separately; a vertical
  // split (which refines the segmentation and deepens every future lower
  // bound computation) is only taken when it is clearly better than the
  // best horizontal one.
  Candidate best_horizontal;
  Candidate best_vertical;
  std::vector<double> values(count);
  for (const Segmentation& cs : child_segs) {
    const bool is_horizontal = cs.segments() == leaf->seg.segments();
    for (size_t s = 0; s < cs.segments(); ++s) {
      for (const bool on_mean : {true, false}) {
        for (size_t i = 0; i < count; ++i) {
          const SegmentStats st =
              StatOf(prefixes[i], cs.begin_of(s), cs.ends[s]);
          values[i] = on_mean ? st.mean : st.stddev;
        }
        // Median split value balances the children.
        std::vector<double> sorted = values;
        std::nth_element(sorted.begin(), sorted.begin() + count / 2,
                         sorted.end());
        const double split_value = sorted[count / 2];
        // Evaluate the QoS: count-weighted envelope size of the children.
        std::vector<SegmentRange> lo(cs.segments());
        std::vector<SegmentRange> hi(cs.segments());
        size_t n_lo = 0;
        size_t n_hi = 0;
        for (size_t i = 0; i < count; ++i) {
          const bool goes_lo = values[i] <= split_value;
          auto& ranges = goes_lo ? lo : hi;
          size_t& n = goes_lo ? n_lo : n_hi;
          const auto stats = StatsOn(prefixes[i], cs);
          for (size_t t = 0; t < cs.segments(); ++t) {
            ranges[t].Extend(stats[t], n == 0);
          }
          ++n;
        }
        if (n_lo == 0 || n_hi == 0) continue;  // degenerate
        // Box sizes are only comparable within one segmentation; normalize
        // by the parent's box over the same candidate segmentation so
        // vertical refinements compete fairly with horizontal splits.
        std::vector<SegmentRange> parent(cs.segments());
        for (size_t i = 0; i < count; ++i) {
          const auto stats = StatsOn(prefixes[i], cs);
          for (size_t t = 0; t < cs.segments(); ++t) {
            parent[t].Extend(stats[t], i == 0);
          }
        }
        const double parent_box = BoxSize(parent, cs);
        if (parent_box <= 0.0) continue;
        const double qos =
            (static_cast<double>(n_lo) * BoxSize(lo, cs) +
             static_cast<double>(n_hi) * BoxSize(hi, cs)) /
            (static_cast<double>(count) * parent_box);
        Candidate& best = is_horizontal ? best_horizontal : best_vertical;
        if (qos < best.qos) {
          best.child_seg = cs;
          best.split_segment = static_cast<int>(s);
          best.split_on_mean = on_mean;
          best.split_value = split_value;
          best.qos = qos;
        }
      }
    }
  }
  constexpr double kVerticalMargin = 0.6;
  const bool take_vertical =
      best_vertical.split_segment >= 0 &&
      (best_horizontal.split_segment < 0 ||
       best_vertical.qos < kVerticalMargin * best_horizontal.qos);
  Candidate& best = take_vertical ? best_vertical : best_horizontal;
  if (best.split_segment < 0) return;  // all candidates degenerate

  leaf->child_seg = best.child_seg;
  leaf->split_segment = best.split_segment;
  leaf->split_on_mean = best.split_on_mean;
  leaf->split_value = best.split_value;
  auto make_child = [&] {
    auto child = std::make_unique<Node>();
    child->seg = best.child_seg;
    child->ranges.resize(best.child_seg.segments());
    child->depth = leaf->depth + 1;
    return child;
  };
  leaf->left = make_child();
  leaf->right = make_child();
  for (size_t i = 0; i < count; ++i) {
    const SegmentStats st =
        StatOf(prefixes[i], best.child_seg.begin_of(best.split_segment),
               best.child_seg.ends[best.split_segment]);
    const double v = best.split_on_mean ? st.mean : st.stddev;
    Node* child = (v <= best.split_value ? leaf->left : leaf->right).get();
    const auto child_stats = StatsOn(prefixes[i], child->seg);
    for (size_t t = 0; t < child_stats.size(); ++t) {
      child->ranges[t].Extend(child_stats[t], child->count == 0);
    }
    ++child->count;
    child->ids.push_back(leaf->ids[i]);
  }
  leaf->ids.clear();
  leaf->ids.shrink_to_fit();
  leaf->is_leaf = false;
}

void DsTree::VisitLeaf(const Node& leaf, const core::QueryOrder& order,
                       const core::KnnPlan& plan, core::KnnHeap* heap,
                       core::SearchStats* stats) const {
  if (leaf.ids.empty()) return;
  HYDRA_OBS_SPAN_ARG("leaf_verify", "series", leaf.ids.size());
  io::ChargeLeafRead(leaf.ids.size(), data_->length() * sizeof(core::Value),
                     stats);
  io::CountedStorage raw(data_);
  for (const core::SeriesId id : leaf.ids) {
    if (plan.RawCapReached(stats)) return;
    const double d = order.Distance(raw.ReadPrecharged(id, stats),
                                    heap->Bound());
    ++stats->distance_computations;
    ++stats->raw_series_examined;
    heap->Offer(id, d);
  }
}

core::KnnResult DsTree::DoSearchKnn(core::SeriesView query,
                                    const core::KnnPlan& plan) {
  HYDRA_CHECK(root_ != nullptr);
  util::WallTimer timer;
  core::KnnResult result;
  core::KnnHeap& heap = core::ScratchKnnHeap(plan.k);
  core::KnnWorkers workers(&heap, &result.stats, plan);
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  const Prefix qp = ComputePrefix(query);

  // ng-approximate descent for the initial bsf, always on the calling
  // thread into the primary heap (its bound is published to every worker).
  Node* node = root_.get();
  while (!node->is_leaf) {
    const auto& cs = node->child_seg;
    const SegmentStats st = StatOf(qp, cs.begin_of(node->split_segment),
                                   cs.ends[node->split_segment]);
    const double v = node->split_on_mean ? st.mean : st.stddev;
    node = (v <= node->split_value ? node->left : node->right).get();
  }
  ++result.stats.nodes_visited;
  const Node* home = node;
  VisitLeaf(*home, order, plan, &heap, &result.stats);

  // Best-first traversal with the EAPCA node lower bound. Pruning against
  // bsf/(1+epsilon)^2 (plan.bound_scale) keeps every reported distance
  // within (1+epsilon) of the truth; with the default plan this is the
  // exact search, bit for bit. Caps and budgets only ever bind at width 1
  // (Execute's pure-exact gate).
  struct Item {
    double lb;
    const Node* node;
    bool operator<(const Item& other) const {
      return lb > other.lb;
    }
  };
  std::vector<int64_t> leaves(workers.workers(), 0);
  leaves[0] = 1;
  std::vector<uint8_t> stop(workers.workers(), 0);
  core::BestFirstTraverse<Item>(
      workers.workers(), {Item{0.0, root_.get()}},
      [&](const Item& item, size_t w) {
        return stop[w] != 0 || workers.stats(w).budget_exhausted ||
               item.lb >= workers.heap(w).Bound() * plan.bound_scale;
      },
      [&](const Item& item, size_t w,
          const std::function<void(Item)>& push) {
        core::SearchStats& stats = workers.stats(w);
        ++stats.nodes_visited;
        if (item.node->is_leaf) {
          if (item.node != home) {
            if (plan.LeafCapReached(leaves[w], leaf_count_, &stats)) {
              stop[w] = 1;
              return;
            }
            VisitLeaf(*item.node, order, plan, &workers.heap(w), &stats);
            ++leaves[w];
          }
          return;
        }
        for (const Node* child :
             {item.node->left.get(), item.node->right.get()}) {
          if (child->count == 0) continue;
          const auto q_stats = StatsOn(qp, child->seg);
          const double lb =
              transform::EapcaNodeLbSq(q_stats, child->ranges, child->seg);
          ++stats.lower_bound_computations;
          if (lb < workers.heap(w).Bound() * plan.bound_scale) {
            push({lb, child});
          }
        }
      });

  workers.Finish(plan.k, &result.neighbors);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::RangeResult DsTree::DoSearchRange(core::SeriesView query,
                                        const core::RangePlan& plan) {
  HYDRA_CHECK(root_ != nullptr);
  util::WallTimer timer;
  core::RangeResult result;
  core::RangeWorkers workers(plan.radius * plan.radius, &result.stats,
                             plan.query_threads);
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  const Prefix qp = ComputePrefix(query);

  // Engine traversal with the fixed r^2 bound: nodes are bounded before
  // they enter the frontier, so nothing is ever pruned at pop time and
  // every counter is traversal-order independent — the parallel sweep
  // charges exactly the serial counters.
  struct Item {
    double lb;
    const Node* node;
    bool operator<(const Item& other) const { return lb > other.lb; }
  };
  const double radius_sq = plan.radius * plan.radius;
  auto bounded = [&](const Node* node, core::SearchStats* stats)
      -> std::optional<Item> {
    if (node->count == 0) return std::nullopt;
    const auto q_stats = StatsOn(qp, node->seg);
    ++stats->lower_bound_computations;
    const double lb =
        transform::EapcaNodeLbSq(q_stats, node->ranges, node->seg);
    if (lb > radius_sq) return std::nullopt;
    return Item{lb, node};
  };
  std::vector<Item> seeds;
  if (const auto root = bounded(root_.get(), &result.stats)) {
    seeds.push_back(*root);
  }
  core::BestFirstTraverse<Item>(
      workers.workers(), seeds,
      [](const Item&, size_t) { return false; },
      [&](const Item& item, size_t w,
          const std::function<void(Item)>& push) {
        core::RangeCollector& collector = workers.collector(w);
        core::SearchStats& stats = workers.stats(w);
        ++stats.nodes_visited;
        if (item.node->is_leaf) {
          HYDRA_OBS_SPAN_ARG("leaf_verify", "series", item.node->ids.size());
          io::ChargeLeafRead(item.node->ids.size(),
                             data_->length() * sizeof(core::Value), &stats);
          io::CountedStorage raw(data_);
          for (const core::SeriesId id : item.node->ids) {
            const double d = order.Distance(
                raw.ReadPrecharged(id, &stats), collector.Bound());
            ++stats.distance_computations;
            ++stats.raw_series_examined;
            collector.Offer(id, d);
          }
          return;
        }
        for (const Node* child :
             {item.node->left.get(), item.node->right.get()}) {
          if (const auto entry = bounded(child, &stats)) push(*entry);
        }
      });

  workers.Finish(&result.matches);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::KnnResult DsTree::DoSearchKnnNg(core::SeriesView query, size_t k) {
  HYDRA_CHECK(root_ != nullptr);
  util::WallTimer timer;
  core::KnnResult result;
  core::KnnHeap& heap = core::ScratchKnnHeap(k);
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  const Prefix qp = ComputePrefix(query);

  // One root-to-leaf path (Definition 7).
  Node* node = root_.get();
  while (!node->is_leaf) {
    const auto& cs = node->child_seg;
    const SegmentStats st = StatOf(qp, cs.begin_of(node->split_segment),
                                   cs.ends[node->split_segment]);
    const double v = node->split_on_mean ? st.mean : st.stddev;
    node = (v <= node->split_value ? node->left : node->right).get();
  }
  ++result.stats.nodes_visited;
  VisitLeaf(*node, order, core::KnnPlan{.k = k}, &heap, &result.stats);
  heap.ExtractSortedTo(&result.neighbors);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::Footprint DsTree::footprint() const {
  HYDRA_CHECK(root_ != nullptr);
  core::Footprint fp;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    ++fp.total_nodes;
    fp.memory_bytes += static_cast<int64_t>(
        sizeof(Node) + n->ranges.size() * sizeof(SegmentRange) +
        n->seg.ends.size() * sizeof(uint32_t));
    if (n->is_leaf) {
      ++fp.leaf_nodes;
      fp.memory_bytes +=
          static_cast<int64_t>(n->ids.size() * sizeof(core::SeriesId));
      fp.leaf_fill_fractions.push_back(
          static_cast<double>(n->ids.size()) /
          static_cast<double>(options_.leaf_capacity));
      fp.leaf_depths.push_back(n->depth);
    } else {
      stack.push_back(n->left.get());
      stack.push_back(n->right.get());
    }
  }
  fp.disk_bytes = static_cast<int64_t>(data_->bytes());  // leaf files
  return fp;
}

double DsTree::MeanTlb(core::SeriesView query) const {
  HYDRA_CHECK(root_ != nullptr);
  const Prefix qp = ComputePrefix(query);
  double sum = 0.0;
  int64_t leaves = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (!n->is_leaf) {
      stack.push_back(n->left.get());
      stack.push_back(n->right.get());
      continue;
    }
    if (n->ids.empty()) continue;
    const auto q_stats = StatsOn(qp, n->seg);
    const double lb =
        std::sqrt(transform::EapcaNodeLbSq(q_stats, n->ranges, n->seg));
    double true_sum = 0.0;
    for (const core::SeriesId id : n->ids) {
      true_sum += std::sqrt(core::SquaredEuclidean(query, (*data_)[id]));
    }
    const double mean_true = true_sum / static_cast<double>(n->ids.size());
    if (mean_true > 0.0) {
      sum += lb / mean_true;
      ++leaves;
    }
  }
  return leaves == 0 ? 0.0 : sum / static_cast<double>(leaves);
}

}  // namespace hydra::index
