// R*-tree over PAA summaries (Beckmann et al.), with ChooseSubtree overlap
// minimization, the R* topological split, and forced reinsertion. PAA
// points are scaled by sqrt(points_per_segment) so that rectangle MINDIST
// lower-bounds the true Euclidean distance.
#ifndef HYDRA_INDEX_RTREE_H_
#define HYDRA_INDEX_RTREE_H_

#include <memory>
#include <vector>

#include "core/method.h"

namespace hydra::index {

/// Options for the R*-tree (the paper tunes the leaf capacity; 50 wins).
struct RTreeOptions {
  size_t segments = 16;
  size_t leaf_capacity = 50;
  size_t internal_capacity = 50;
  /// Fraction of entries re-inserted on first overflow per level.
  double reinsert_fraction = 0.3;
};

/// Exact whole-matching k-NN via an R*-tree on PAA points.
class RStarTree : public core::SearchMethod {
 public:
  explicit RStarTree(RTreeOptions options = {});
  ~RStarTree() override;

  std::string name() const override { return "R*-tree"; }
  /// The tree is immutable after Build and each query reads the raw file
  /// through its own cursor, so queries can run concurrently. MINDIST
  /// pruning admits the epsilon relaxation; there is no ng descent (the
  /// tree is not a covering trie) and no delta rule.
  core::MethodTraits traits() const override {
    return {.concurrent_queries = true,
            .serial_reason = "",
            .supports_epsilon = true,
            .leaf_visit_budget = true,
            .supports_persistence = true,
            .shardable = true,
            .intra_query_reason =
                "R*-tree traversal has not been restructured onto the "
                "shared engine; use --shards for parallel speedup"};
  }
  core::Footprint footprint() const override;
  double MeanTlb(core::SeriesView query) const override;

 protected:
  core::BuildStats DoBuild(const core::Dataset& data) override;
  void DoSave(io::IndexWriter* writer) const override;
  util::Status DoOpen(io::IndexReader* reader,
                      const core::Dataset& data) override;
  core::KnnResult DoSearchKnn(core::SeriesView query,
                              const core::KnnPlan& plan) override;
  core::RangeResult DoSearchRange(core::SeriesView query,
                                  const core::RangePlan& plan) override;

 private:
  struct Node;
  struct Entry;

  static void SaveNode(const Node& node, io::IndexWriter* writer);
  std::unique_ptr<Node> LoadNode(io::IndexReader* reader,
                                 size_t series_count) const;

  void InsertPoint(core::SeriesId id);
  void InsertEntry(Entry entry, int target_level, bool allow_reinsert);
  Node* ChooseSubtree(const Entry& entry, int target_level,
                      std::vector<Node*>* path);
  void HandleOverflow(Node* node, std::vector<Node*>& path,
                      bool allow_reinsert);
  void SplitNode(Node* node, std::vector<Node*>& path);

  RTreeOptions options_;
  const core::Dataset* data_ = nullptr;
  size_t dims_ = 0;
  double scale_ = 1.0;  // sqrt(points per segment)
  std::vector<double> points_;  // scaled PAA point per series
  std::unique_ptr<Node> root_;
  int height_ = 0;  // leaf level = 0
};

}  // namespace hydra::index

#endif  // HYDRA_INDEX_RTREE_H_
