#include "index/ads.h"

#include <cmath>
#include <memory>

#include "core/distance.h"
#include "core/traversal.h"
#include "io/index_codec.h"
#include "transform/paa.h"
#include "util/check.h"
#include "util/timer.h"

namespace hydra::index {

core::BuildStats AdsPlus::DoBuild(const core::Dataset& data) {
  util::WallTimer timer;
  data_ = &data;
  HYDRA_CHECK_MSG(data.length() % options_.segments == 0,
                  "ADS+ requires length divisible by segment count");

  full_words_.resize(data.size() * options_.segments);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto paa = transform::Paa(data[i], options_.segments);
    for (size_t s = 0; s < options_.segments; ++s) {
      full_words_[i * options_.segments + s] =
          transform::SaxSymbol(paa[s], transform::kMaxSaxBits);
    }
  }
  tree_ = std::make_unique<IsaxTree>(
      IsaxTreeOptions{options_.segments, options_.leaf_capacity},
      full_words_.data());
  for (size_t i = 0; i < data.size(); ++i) {
    tree_->Insert(static_cast<core::SeriesId>(i));
  }
  raw_ = std::make_unique<io::CountedStorage>(data_);

  core::BuildStats stats;
  stats.cpu_seconds = timer.Seconds();
  // One sequential read of the raw file; only the (small) summary file is
  // written — ADS+ never moves raw series at build time.
  stats.bytes_read = static_cast<int64_t>(data.bytes());
  stats.random_reads = 1;
  stats.bytes_written = static_cast<int64_t>(full_words_.size());
  stats.random_writes = 1;
  return stats;
}

void AdsPlus::DoSave(io::IndexWriter* writer) const {
  writer->BeginSection("options");
  writer->WriteU64(options_.segments);
  writer->WriteU64(options_.leaf_capacity);
  writer->WriteU64(options_.adaptive_leaf_capacity);
  writer->EndSection();
  writer->BeginSection("summaries");
  writer->WritePodVector(full_words_);
  writer->EndSection();
  writer->BeginSection("tree");
  tree_->SaveTo(writer);
  writer->EndSection();
}

util::Status AdsPlus::DoOpen(io::IndexReader* reader,
                             const core::Dataset& data) {
  reader->EnterSection("options");
  options_.segments = reader->ReadU64();
  options_.leaf_capacity = reader->ReadU64();
  options_.adaptive_leaf_capacity = reader->ReadU64();
  tree_ = IsaxTree::OpenShared(
      reader, IsaxTreeOptions{options_.segments, options_.leaf_capacity},
      data, &full_words_);
  if (!reader->ok()) return reader->status();
  data_ = &data;
  raw_ = std::make_unique<io::CountedStorage>(data_);
  return reader->status();
}

core::KnnResult AdsPlus::DoSearchKnn(core::SeriesView query,
                                     const core::KnnPlan& plan) {
  HYDRA_CHECK(tree_ != nullptr);
  util::WallTimer timer;
  core::KnnResult result;
  core::KnnHeap heap(plan.k);
  core::KnnWorkers workers(&heap, &result.stats, plan);
  const core::QueryOrder order(query);
  const size_t segments = options_.segments;
  const auto paa = transform::Paa(query, segments);
  const size_t pps = query.size() / segments;

  // Phase 1 (ng-approximate): adaptively refine the query path down to the
  // minimal leaf size, then fetch that leaf's series from the raw file.
  // SIMS visits exactly this one leaf, so max_visited_leaves (>= 1 by
  // construction) never fires; the raw budget applies from the start.
  std::vector<uint8_t> q_word(segments);
  for (size_t s = 0; s < segments; ++s) {
    q_word[s] = transform::SaxSymbol(paa[s], transform::kMaxSaxBits);
  }
  IsaxTree::Node* home = tree_->ApproximateLeaf(q_word, paa, pps);
  while (home != nullptr && home->size() > options_.adaptive_leaf_capacity) {
    const size_t before = home->size();
    tree_->SplitLeaf(home);
    if (home->is_leaf) break;  // could not split (max resolution)
    home = tree_->ApproximateLeaf(q_word, paa, pps);
    if (home == nullptr || home->size() >= before) break;
  }
  std::vector<bool> evaluated(data_->size(), false);
  if (home != nullptr) {
    ++result.stats.nodes_visited;
    for (const core::SeriesId id : home->ids) {
      if (plan.RawCapReached(&result.stats)) break;
      const core::SeriesView s = raw_->Read(id, &result.stats);
      const double d = order.Distance(s, heap.Bound());
      ++result.stats.distance_computations;
      ++result.stats.raw_series_examined;
      evaluated[id] = true;
      heap.Offer(id, d);
    }
  }

  // A budget exhausted already in phase 1 makes the answer final: skip the
  // O(N) summary pass and the refinement scan outright — the whole point
  // of a budget is to keep truncated queries cheap.
  if (result.stats.budget_exhausted) {
    workers.Finish(plan.k, &result.neighbors);
    result.stats.cpu_seconds = timer.Seconds();
    return result;
  }

  // Phase 2: lower bounds against every full-resolution summary (the
  // summary array is memory-resident). Disjoint blocks write disjoint
  // lb[] slots, so the parallel sweep computes exactly the serial values.
  const size_t count = data_->size();
  std::vector<double> lb(count);
  core::ParallelScan(
      workers.workers(), count, /*block=*/4096,
      [&](size_t /*w*/, size_t begin, size_t end) {
        transform::IsaxWord w;
        w.bits.assign(segments, static_cast<uint8_t>(transform::kMaxSaxBits));
        w.symbols.resize(segments);
        for (size_t i = begin; i < end; ++i) {
          for (size_t s = 0; s < segments; ++s) {
            w.symbols[s] = full_words_[i * segments + s];
          }
          lb[i] = transform::IsaxMinDistSq(paa, w, pps);
        }
      });
  result.stats.lower_bound_computations += static_cast<int64_t>(count);

  // The delta stopping rule, over ADS+'s unit of random access: cap the
  // refinement pass at ceil(delta * candidates-at-start) reads.
  int64_t delta_cap = core::KnnPlan::kUnlimited;
  if (plan.delta < 1.0) {
    int64_t candidates = 0;
    for (size_t i = 0; i < count; ++i) {
      if (!evaluated[i] && lb[i] < heap.Bound() * plan.bound_scale) {
        ++candidates;
      }
    }
    delta_cap = plan.DeltaCap(candidates);
  }

  // Phase 3: skip-sequential scan of the raw file over non-pruned series
  // (series already refined in phase 1 are not re-read). Pruning against
  // bsf/(1+epsilon)^2 (plan.bound_scale) keeps every reported distance
  // within (1+epsilon) of the truth (exact with the default plan). Extra
  // workers read through their own storage cursors; budgets and the delta
  // rule only ever bind at width 1 (Execute's pure-exact gate), where the
  // single block replays the serial scan exactly.
  raw_->ResetCursor();
  std::vector<std::unique_ptr<io::CountedStorage>> extra_storage;
  for (size_t w = 1; w < workers.workers(); ++w) {
    extra_storage.push_back(std::make_unique<io::CountedStorage>(data_));
  }
  std::vector<int64_t> refined(workers.workers(), 0);
  core::ParallelScan(
      workers.workers(), count, /*block=*/1024,
      [&](size_t w, size_t begin, size_t end) {
        core::KnnHeap& local = workers.heap(w);
        core::SearchStats& stats = workers.stats(w);
        io::CountedStorage& storage = w == 0 ? *raw_ : *extra_storage[w - 1];
        for (size_t i = begin; i < end && !stats.budget_exhausted; ++i) {
          if (evaluated[i] || lb[i] >= local.Bound() * plan.bound_scale) {
            continue;  // skip
          }
          if (plan.RawCapReached(&stats)) break;
          if (refined[w] >= delta_cap) break;  // delta rule: no budget flag
          const core::SeriesView s =
              storage.Read(static_cast<core::SeriesId>(i), &stats);
          const double d = order.Distance(s, local.Bound());
          ++stats.distance_computations;
          ++stats.raw_series_examined;
          ++refined[w];
          local.Offer(static_cast<core::SeriesId>(i), d);
        }
      });
  raw_->ReleasePin();  // raw_ outlives the query; never idle on a frame

  workers.Finish(plan.k, &result.neighbors);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::RangeResult AdsPlus::DoSearchRange(core::SeriesView query,
                                         const core::RangePlan& plan) {
  HYDRA_CHECK(tree_ != nullptr);
  util::WallTimer timer;
  core::RangeResult result;
  const double radius_sq = plan.radius * plan.radius;
  core::RangeWorkers workers(radius_sq, &result.stats, plan.query_threads);
  const core::QueryOrder order(query);
  const size_t segments = options_.segments;
  const auto paa = transform::Paa(query, segments);
  const size_t pps = query.size() / segments;

  // SIMS with a fixed bound: the approximate phase is unnecessary — prune
  // every summary against r^2, then skip-sequentially refine survivors.
  // Every test uses the fixed radius, so the parallel sweep charges exactly
  // the serial distance/lower-bound counters; extra workers read through
  // their own storage cursors.
  const size_t count = data_->size();
  raw_->ResetCursor();
  std::vector<std::unique_ptr<io::CountedStorage>> extra_storage;
  for (size_t w = 1; w < workers.workers(); ++w) {
    extra_storage.push_back(std::make_unique<io::CountedStorage>(data_));
  }
  core::ParallelScan(
      workers.workers(), count, /*block=*/1024,
      [&](size_t worker, size_t begin, size_t end) {
        core::RangeCollector& collector = workers.collector(worker);
        core::SearchStats& stats = workers.stats(worker);
        io::CountedStorage& storage =
            worker == 0 ? *raw_ : *extra_storage[worker - 1];
        transform::IsaxWord w;
        w.bits.assign(segments, static_cast<uint8_t>(transform::kMaxSaxBits));
        w.symbols.resize(segments);
        for (size_t i = begin; i < end; ++i) {
          for (size_t s = 0; s < segments; ++s) {
            w.symbols[s] = full_words_[i * segments + s];
          }
          ++stats.lower_bound_computations;
          if (transform::IsaxMinDistSq(paa, w, pps) > radius_sq) continue;
          const core::SeriesView s =
              storage.Read(static_cast<core::SeriesId>(i), &stats);
          const double d = order.Distance(s, collector.Bound());
          ++stats.distance_computations;
          ++stats.raw_series_examined;
          collector.Offer(static_cast<core::SeriesId>(i), d);
        }
      });
  raw_->ReleasePin();  // raw_ outlives the query; never idle on a frame

  workers.Finish(&result.matches);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::KnnResult AdsPlus::DoSearchKnnNg(core::SeriesView query, size_t k) {
  HYDRA_CHECK(tree_ != nullptr);
  util::WallTimer timer;
  core::KnnResult result;
  core::KnnHeap heap(k);
  const core::QueryOrder order(query);
  const auto paa = transform::Paa(query, options_.segments);
  const size_t pps = query.size() / options_.segments;

  std::vector<uint8_t> q_word(options_.segments);
  for (size_t s = 0; s < options_.segments; ++s) {
    q_word[s] = transform::SaxSymbol(paa[s], transform::kMaxSaxBits);
  }
  IsaxTree::Node* home = tree_->ApproximateLeaf(q_word, paa, pps);
  if (home != nullptr) {
    ++result.stats.nodes_visited;
    for (const core::SeriesId id : home->ids) {
      const core::SeriesView s = raw_->Read(id, &result.stats);
      const double d = order.Distance(s, heap.Bound());
      ++result.stats.distance_computations;
      ++result.stats.raw_series_examined;
      heap.Offer(id, d);
    }
  }
  raw_->ReleasePin();  // raw_ outlives the query; never idle on a frame
  result.neighbors = heap.TakeSorted();
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::Footprint AdsPlus::footprint() const {
  HYDRA_CHECK(tree_ != nullptr);
  core::Footprint fp = tree_->StructureFootprint();
  fp.memory_bytes += static_cast<int64_t>(full_words_.size());
  // ADS+ stores only the summary file; raw data stays in the original file.
  fp.disk_bytes = static_cast<int64_t>(full_words_.size());
  return fp;
}

double AdsPlus::MeanTlb(core::SeriesView query) const {
  HYDRA_CHECK(tree_ != nullptr);
  const size_t segments = options_.segments;
  const auto paa = transform::Paa(query, segments);
  const size_t pps = query.size() / segments;
  double sum = 0.0;
  int64_t leaves = 0;
  tree_->ForEachNode([&](const IsaxTree::Node& node) {
    if (!node.is_leaf || node.ids.empty()) return;
    const double lb =
        std::sqrt(transform::IsaxMinDistSq(paa, node.word, pps));
    double true_sum = 0.0;
    for (const core::SeriesId id : node.ids) {
      true_sum += std::sqrt(core::SquaredEuclidean(query, (*data_)[id]));
    }
    const double mean_true = true_sum / static_cast<double>(node.ids.size());
    if (mean_true > 0.0) {
      sum += lb / mean_true;
      ++leaves;
    }
  });
  return leaves == 0 ? 0.0 : sum / static_cast<double>(leaves);
}

}  // namespace hydra::index
