// SFA trie: a prefix tree over Symbolic Fourier Approximation words with
// per-node DFT MBRs for the tight lower bound (Schaefer & Hoegqvist).
#ifndef HYDRA_INDEX_SFATRIE_H_
#define HYDRA_INDEX_SFATRIE_H_

#include <memory>
#include <vector>

#include "core/distance.h"
#include "core/method.h"
#include "io/counted_storage.h"
#include "transform/sfa.h"

namespace hydra::index {

/// Options for the SFA trie. The paper's tuned configuration: word length
/// 16, alphabet 8, equi-depth binning.
struct SfaTrieOptions {
  size_t word_length = 16;
  int alphabet = 8;
  transform::SfaQuantizer::Binning binning =
      transform::SfaQuantizer::Binning::kEquiDepth;
  size_t leaf_capacity = 1000;
  /// Number of series sampled to learn the MCB breakpoints (0 = all).
  size_t sample_size = 0;
};

/// Exact whole-matching k-NN via the SFA trie.
class SfaTrie : public core::SearchMethod {
 public:
  explicit SfaTrie(SfaTrieOptions options = {});
  ~SfaTrie() override;

  std::string name() const override { return "SFA"; }
  /// The trie is immutable after Build, so queries can run concurrently.
  /// ng-capable tree (Table 1), so every approximate mode is supported.
  core::MethodTraits traits() const override {
    return {.concurrent_queries = true,
            .serial_reason = "",
            .supports_ng = true,
            .supports_epsilon = true,
            .supports_delta_epsilon = true,
            .leaf_visit_budget = true,
            .supports_persistence = true,
            .shardable = true,
            .intra_query_parallel = true};
  }
  core::Footprint footprint() const override;
  double MeanTlb(core::SeriesView query) const override;

 protected:
  core::BuildStats DoBuild(const core::Dataset& data) override;
  void DoSave(io::IndexWriter* writer) const override;
  util::Status DoOpen(io::IndexReader* reader,
                      const core::Dataset& data) override;
  core::KnnResult DoSearchKnn(core::SeriesView query,
                              const core::KnnPlan& plan) override;
  core::KnnResult DoSearchKnnNg(core::SeriesView query, size_t k) override;
  core::RangeResult DoSearchRange(core::SeriesView query,
                                  const core::RangePlan& plan) override;

 private:
  struct Node;

  static void SaveNode(const Node& node, io::IndexWriter* writer);
  std::unique_ptr<Node> LoadNode(io::IndexReader* reader,
                                 size_t series_count) const;

  void Insert(core::SeriesId id, Node* node);
  void SplitLeaf(Node* leaf);
  /// Scans a leaf's raw series into the heap, honoring the plan's raw
  /// budget (sets stats->budget_exhausted and stops when it fires).
  void VisitLeaf(const Node& leaf, const core::QueryOrder& order,
                 const core::KnnPlan& plan, core::KnnHeap* heap,
                 core::SearchStats* stats) const;
  double NodeLowerBound(std::span<const double> q_dft, const Node& node) const;

  SfaTrieOptions options_;
  const core::Dataset* data_ = nullptr;
  transform::SfaQuantizer quantizer_;
  std::vector<double> dfts_;     // flat word_length doubles per series
  std::vector<uint8_t> words_;   // flat word_length symbols per series
  std::unique_ptr<Node> root_;
  int64_t leaf_count_ = 0;  // at Build time; the delta leaf-visit rule
};

}  // namespace hydra::index

#endif  // HYDRA_INDEX_SFATRIE_H_
