// VA+file: a vector-approximation filter file over DFT coefficients with
// non-uniform bit allocation and k-means cells. Exact search is the VA-file
// two-phase algorithm: sequential bound computation over the (memory
// resident) approximation file, then a skip-sequential refinement pass over
// the raw file.
#ifndef HYDRA_INDEX_VAFILE_H_
#define HYDRA_INDEX_VAFILE_H_

#include <vector>

#include "core/method.h"
#include "transform/vaplus.h"

namespace hydra::index {

/// Options for VA+file. The paper fixes 16 coefficients; the bit budget
/// matches the SAX-based indexes' word size (16 segments x 8 bits) and is
/// spread non-uniformly across the coefficients.
struct VaFileOptions {
  size_t dims = 16;
  int total_bits = 128;
  transform::VaPlusQuantizer::Allocation allocation =
      transform::VaPlusQuantizer::Allocation::kNonUniform;
  transform::VaPlusQuantizer::CellPlacement placement =
      transform::VaPlusQuantizer::CellPlacement::kKmeans;
};

/// Exact whole-matching k-NN via the VA+file.
class VaFile : public core::SearchMethod {
 public:
  explicit VaFile(VaFileOptions options = {}) : options_(options) {}

  std::string name() const override { return "VA+file"; }
  /// The approximation file is immutable after Build and each query reads
  /// the raw file through its own cursor, so queries can run concurrently.
  /// Cell lower bounds admit the epsilon relaxation; there are no leaves,
  /// so ng and the delta rule do not apply (and the max_visited_leaves
  /// budget can never fire).
  core::MethodTraits traits() const override {
    return {.concurrent_queries = true,
            .serial_reason = "",
            .supports_epsilon = true,
            .supports_persistence = true,
            .shardable = true,
            .intra_query_reason =
                "two-phase sequential VA scan has no traversal frontier "
                "to share; use --shards for parallel speedup"};
  }
  core::Footprint footprint() const override;
  double MeanTlb(core::SeriesView query) const override;

 protected:
  core::BuildStats DoBuild(const core::Dataset& data) override;
  void DoSave(io::IndexWriter* writer) const override;
  util::Status DoOpen(io::IndexReader* reader,
                      const core::Dataset& data) override;
  core::KnnResult DoSearchKnn(core::SeriesView query,
                              const core::KnnPlan& plan) override;
  core::RangeResult DoSearchRange(core::SeriesView query,
                                  const core::RangePlan& plan) override;

 private:
  VaFileOptions options_;
  const core::Dataset* data_ = nullptr;
  transform::VaPlusQuantizer quantizer_;
  std::vector<uint16_t> cells_;      // dims cells per series
  std::vector<double> tail_energy_;  // residual DFT energy per series
};

}  // namespace hydra::index

#endif  // HYDRA_INDEX_VAFILE_H_
