#include "index/mtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "core/distance.h"
#include "core/traversal.h"
#include "io/counted_storage.h"
#include "io/index_codec.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace hydra::index {

struct MTree::Route {
  core::SeriesId center = 0;
  double radius = 0.0;
  double dist_to_parent = 0.0;
};

struct MTree::Node {
  core::SeriesId center = 0;
  double radius = 0.0;
  double dist_to_parent = 0.0;
  bool is_leaf = true;
  // Leaf payload: member ids with their distance to the node center.
  std::vector<std::pair<core::SeriesId, double>> entries;
  std::vector<std::unique_ptr<Node>> children;
};

MTree::MTree(MTreeOptions options) : options_(options) {}
MTree::~MTree() = default;

double MTree::Dist(core::SeriesId a, core::SeriesId b) const {
  ++build_distance_count_;
  return std::sqrt(core::SquaredEuclidean((*data_)[a], (*data_)[b]));
}

double MTree::DistToQuery(core::SeriesView query, core::SeriesId id,
                          core::SearchStats* stats) const {
  ++stats->distance_computations;
  return std::sqrt(core::SquaredEuclidean(query, (*data_)[id]));
}

double MTree::DistToQueryRaw(core::SeriesView query, core::SeriesId id,
                             io::CountedStorage* raw,
                             core::SearchStats* stats) const {
  ++stats->distance_computations;
  return std::sqrt(
      core::SquaredEuclidean(query, raw->ReadPrecharged(id, stats)));
}

core::BuildStats MTree::DoBuild(const core::Dataset& data) {
  util::WallTimer timer;
  data_ = &data;
  HYDRA_CHECK(data.size() > 0);
  build_distance_count_ = 0;

  root_ = std::make_unique<Node>();
  root_->center = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    const core::SeriesId id = static_cast<core::SeriesId>(i);
    const double d = Dist(id, root_->center);
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
    Route lr;
    Route rr;
    if (Insert(root_.get(), id, d, &left, &right, &lr, &rr)) {
      // Root split: promote a new root above the two halves.
      auto new_root = std::make_unique<Node>();
      new_root->is_leaf = false;
      new_root->center = lr.center;
      left->dist_to_parent = 0.0;
      right->dist_to_parent = Dist(rr.center, lr.center);
      new_root->radius = std::max(lr.radius,
                                  right->dist_to_parent + rr.radius);
      new_root->children.push_back(std::move(left));
      new_root->children.push_back(std::move(right));
      root_ = std::move(new_root);
    }
  }

  core::BuildStats stats;
  stats.cpu_seconds = timer.Seconds();
  stats.bytes_read = static_cast<int64_t>(data.bytes());
  stats.random_reads = 1;
  // Memory-resident index (the paper's only scalable implementation).
  stats.bytes_written = 0;
  return stats;
}

void MTree::SaveNode(const Node& node, io::IndexWriter* w) {
  w->WriteU32(node.center);
  w->WriteDouble(node.radius);
  w->WriteDouble(node.dist_to_parent);
  w->WriteBool(node.is_leaf);
  if (node.is_leaf) {
    w->WriteU64(node.entries.size());
    for (const auto& [id, dist] : node.entries) {
      w->WriteU32(id);
      w->WriteDouble(dist);
    }
    return;
  }
  w->WriteU64(node.children.size());
  for (const auto& child : node.children) SaveNode(*child, w);
}

std::unique_ptr<MTree::Node> MTree::LoadNode(io::IndexReader* r,
                                             size_t series_count) {
  const io::IndexReader::NodeGuard guard(r);
  auto node = std::make_unique<Node>();
  node->center = r->ReadU32();
  node->radius = r->ReadDouble();
  node->dist_to_parent = r->ReadDouble();
  node->is_leaf = r->ReadBool();
  if (!r->ok()) return node;
  if (node->center >= series_count) {
    r->Fail("M-tree routing center is out of the dataset's range");
    return node;
  }
  const uint64_t count = r->ReadU64();
  if (node->is_leaf) {
    node->entries.reserve(std::min<uint64_t>(count, series_count));
    for (uint64_t i = 0; i < count && r->ok(); ++i) {
      const core::SeriesId id = r->ReadU32();
      const double dist = r->ReadDouble();
      if (id >= series_count) {
        r->Fail("M-tree leaf entry is out of the dataset's range");
        return node;
      }
      node->entries.emplace_back(id, dist);
    }
    return node;
  }
  for (uint64_t i = 0; i < count && r->ok(); ++i) {
    node->children.push_back(LoadNode(r, series_count));
  }
  return node;
}

void MTree::DoSave(io::IndexWriter* writer) const {
  writer->BeginSection("options");
  writer->WriteU64(options_.leaf_capacity);
  writer->WriteU64(options_.internal_capacity);
  writer->WriteU64(options_.split_samples);
  writer->EndSection();
  writer->BeginSection("tree");
  SaveNode(*root_, writer);
  writer->EndSection();
}

util::Status MTree::DoOpen(io::IndexReader* reader,
                           const core::Dataset& data) {
  reader->EnterSection("options");
  options_.leaf_capacity = reader->ReadU64();
  options_.internal_capacity = reader->ReadU64();
  options_.split_samples = reader->ReadU64();
  reader->EnterSection("tree");
  if (!reader->ok()) return reader->status();
  data_ = &data;
  root_ = LoadNode(reader, data.size());
  return reader->status();
}

bool MTree::Insert(Node* node, core::SeriesId id, double dist_to_node_center,
                   std::unique_ptr<Node>* out_left,
                   std::unique_ptr<Node>* out_right, Route* left_route,
                   Route* right_route) {
  node->radius = std::max(node->radius, dist_to_node_center);
  if (node->is_leaf) {
    node->entries.emplace_back(id, dist_to_node_center);
    if (node->entries.size() > options_.leaf_capacity) {
      SplitNode(node, out_left, out_right, left_route, right_route);
      return true;
    }
    return false;
  }

  // Choose the child: min distance among covering children, else minimum
  // radius enlargement.
  Node* best = nullptr;
  double best_dist = 0.0;
  double best_key = std::numeric_limits<double>::infinity();
  for (const auto& child : node->children) {
    const double d = Dist(id, child->center);
    const double key = d <= child->radius ? d - 1e9 : d - child->radius;
    if (key < best_key) {
      best_key = key;
      best = child.get();
      best_dist = d;
    }
  }
  HYDRA_CHECK(best != nullptr);
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;
  Route lr;
  Route rr;
  if (Insert(best, id, best_dist, &left, &right, &lr, &rr)) {
    // Replace the split child by the two halves.
    auto it = std::find_if(node->children.begin(), node->children.end(),
                           [&](const auto& c) { return c.get() == best; });
    HYDRA_CHECK(it != node->children.end());
    node->children.erase(it);
    left->dist_to_parent = Dist(lr.center, node->center);
    right->dist_to_parent = Dist(rr.center, node->center);
    node->radius = std::max({node->radius, left->dist_to_parent + lr.radius,
                             right->dist_to_parent + rr.radius});
    node->children.push_back(std::move(left));
    node->children.push_back(std::move(right));
    if (node->children.size() > options_.internal_capacity) {
      SplitNode(node, out_left, out_right, left_route, right_route);
      return true;
    }
  }
  return false;
}

void MTree::SplitNode(Node* node, std::unique_ptr<Node>* out_left,
                      std::unique_ptr<Node>* out_right, Route* left_route,
                      Route* right_route) {
  // Gather member centers (leaf entries or child routing centers).
  std::vector<core::SeriesId> members;
  if (node->is_leaf) {
    members.reserve(node->entries.size());
    for (const auto& [id, d] : node->entries) members.push_back(id);
  } else {
    members.reserve(node->children.size());
    for (const auto& c : node->children) members.push_back(c->center);
  }
  const size_t n = members.size();
  HYDRA_CHECK(n >= 2);

  // Sampled mM_RAD promotion: try candidate pairs, keep the pair minimizing
  // the larger covering radius.
  util::Rng rng(n * 2654435761u);
  size_t best_a = 0;
  size_t best_b = 1;
  double best_score = std::numeric_limits<double>::infinity();
  const size_t samples = std::max<size_t>(options_.split_samples, 1);
  for (size_t s = 0; s < samples; ++s) {
    const size_t a = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    size_t b = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    if (a == b) b = (b + 1) % n;
    double ra = 0.0;
    double rb = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double da = Dist(members[i], members[a]);
      const double db = Dist(members[i], members[b]);
      if (da <= db) {
        ra = std::max(ra, da);
      } else {
        rb = std::max(rb, db);
      }
    }
    const double score = std::max(ra, rb);
    if (score < best_score) {
      best_score = score;
      best_a = a;
      best_b = b;
    }
  }

  auto left = std::make_unique<Node>();
  auto right = std::make_unique<Node>();
  left->is_leaf = right->is_leaf = node->is_leaf;
  left->center = members[best_a];
  right->center = members[best_b];

  if (node->is_leaf) {
    for (const auto& [id, unused] : node->entries) {
      const double da = Dist(id, left->center);
      const double db = Dist(id, right->center);
      Node* target = da <= db ? left.get() : right.get();
      const double d = da <= db ? da : db;
      target->entries.emplace_back(id, d);
      target->radius = std::max(target->radius, d);
    }
  } else {
    for (auto& child : node->children) {
      const double da = Dist(child->center, left->center);
      const double db = Dist(child->center, right->center);
      Node* target = da <= db ? left.get() : right.get();
      const double d = da <= db ? da : db;
      child->dist_to_parent = d;
      target->radius = std::max(target->radius, d + child->radius);
      target->children.push_back(std::move(child));
    }
  }
  *left_route = {left->center, left->radius, 0.0};
  *right_route = {right->center, right->radius, 0.0};
  *out_left = std::move(left);
  *out_right = std::move(right);
}

core::KnnResult MTree::DoSearchKnn(core::SeriesView query,
                                   const core::KnnPlan& plan) {
  HYDRA_CHECK(root_ != nullptr);
  // Pruning against bsf/(1+eps) guarantees d(result) <= (1+eps) * d(true).
  const double shrink = 1.0 / (1.0 + plan.epsilon);
  util::WallTimer timer;
  core::KnnResult result;
  core::KnnHeap& heap =
      core::ScratchKnnHeap(plan.k);  // squared, like all methods
  core::KnnWorkers workers(&heap, &result.stats, plan);

  struct Item {
    double dmin;         // lower bound on the distance to any member
    double dist_center;  // d(q, node center), already computed
    const Node* node;
    bool operator<(const Item& other) const {
      return dmin > other.dmin;
    }
  };
  // The root distance is computed on the calling thread (worker 0) so the
  // seed — and its charge — matches the serial traversal exactly.
  const double root_dist = DistToQuery(query, root_->center, &result.stats);
  std::vector<int64_t> leaves(workers.workers(), 0);
  std::vector<uint8_t> stop(workers.workers(), 0);
  core::BestFirstTraverse<Item>(
      workers.workers(),
      {Item{std::max(0.0, root_dist - root_->radius), root_dist,
            root_.get()}},
      [&](const Item& item, size_t w) {
        return stop[w] != 0 || workers.stats(w).budget_exhausted ||
               item.dmin >= std::sqrt(workers.heap(w).Bound()) * shrink;
      },
      [&](const Item& item, size_t w,
          const std::function<void(Item)>& push) {
        core::KnnHeap& local = workers.heap(w);
        core::SearchStats& stats = workers.stats(w);
        ++stats.nodes_visited;
        const Node* node = item.node;
        if (node->is_leaf) {
          // No delta rule on the M-tree (leaf_count 0), so only the
          // explicit budget can bind here — and budgets only ever bind at
          // width 1 (Execute's pure-exact gate).
          if (plan.LeafCapReached(leaves[w], 0, &stats)) {
            stop[w] = 1;
            return;
          }
          ++leaves[w];
          HYDRA_OBS_SPAN_ARG("leaf_verify", "series", node->entries.size());
          io::CountedStorage raw(data_);
          for (const auto& [id, dist_to_center] : node->entries) {
            // Triangle-inequality filter using the precomputed distance.
            if (std::fabs(item.dist_center - dist_to_center) >=
                std::sqrt(local.Bound()) * shrink) {
              continue;
            }
            if (plan.RawCapReached(&stats)) break;
            const double d = DistToQueryRaw(query, id, &raw, &stats);
            ++stats.raw_series_examined;
            local.Offer(id, d * d);
          }
          return;
        }
        for (const auto& child : node->children) {
          const double current_bsf = std::sqrt(local.Bound()) * shrink;
          // Prune with the parent distance before computing d(q, child
          // center).
          if (std::fabs(item.dist_center - child->dist_to_parent) -
                  child->radius >=
              current_bsf) {
            continue;
          }
          const double d = DistToQuery(query, child->center, &stats);
          const double dmin = std::max(0.0, d - child->radius);
          if (dmin < current_bsf) push({dmin, d, child.get()});
        }
      });

  workers.Finish(plan.k, &result.neighbors);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::RangeResult MTree::DoSearchRange(core::SeriesView query,
                                       const core::RangePlan& plan) {
  HYDRA_CHECK(root_ != nullptr);
  const double radius = plan.radius;
  util::WallTimer timer;
  core::RangeResult result;
  core::RangeWorkers workers(radius * radius, &result.stats,
                             plan.query_threads);

  // Classic metric range query: recurse into children whose covering
  // sphere intersects the query ball, filtering with parent distances
  // before computing real ones. All filters use the fixed radius, so every
  // counter is traversal-order independent and the parallel sweep charges
  // exactly the serial totals.
  struct Item {
    double dmin;         // max(0, d(q, center) - covering radius)
    double dist_center;  // d(q, node center)
    const Node* node;
    bool operator<(const Item& other) const { return dmin > other.dmin; }
  };
  std::vector<Item> seeds;
  const double root_dist = DistToQuery(query, root_->center, &result.stats);
  if (root_dist - root_->radius <= radius) {
    seeds.push_back({std::max(0.0, root_dist - root_->radius), root_dist,
                     root_.get()});
  }
  core::BestFirstTraverse<Item>(
      workers.workers(), seeds,
      [](const Item&, size_t) { return false; },
      [&](const Item& item, size_t w,
          const std::function<void(Item)>& push) {
        core::RangeCollector& collector = workers.collector(w);
        core::SearchStats& stats = workers.stats(w);
        ++stats.nodes_visited;
        if (item.node->is_leaf) {
          HYDRA_OBS_SPAN_ARG("leaf_verify", "series",
                             item.node->entries.size());
          io::CountedStorage raw(data_);
          for (const auto& [id, dist_to_center] : item.node->entries) {
            if (std::fabs(item.dist_center - dist_to_center) > radius) {
              continue;
            }
            const double d = DistToQueryRaw(query, id, &raw, &stats);
            ++stats.raw_series_examined;
            collector.Offer(id, d * d);
          }
          return;
        }
        for (const auto& child : item.node->children) {
          if (std::fabs(item.dist_center - child->dist_to_parent) -
                  child->radius >
              radius) {
            continue;
          }
          const double d = DistToQuery(query, child->center, &stats);
          if (d - child->radius <= radius) {
            push({std::max(0.0, d - child->radius), d, child.get()});
          }
        }
      });

  workers.Finish(&result.matches);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::Footprint MTree::footprint() const {
  HYDRA_CHECK(root_ != nullptr);
  core::Footprint fp;
  struct Frame {
    const Node* node;
    int depth;
  };
  std::vector<Frame> stack = {{root_.get(), 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    ++fp.total_nodes;
    fp.memory_bytes += static_cast<int64_t>(
        sizeof(Node) +
        f.node->entries.size() * sizeof(std::pair<core::SeriesId, double>));
    if (f.node->is_leaf) {
      ++fp.leaf_nodes;
      fp.leaf_fill_fractions.push_back(
          static_cast<double>(f.node->entries.size()) /
          static_cast<double>(options_.leaf_capacity));
      fp.leaf_depths.push_back(f.depth);
    } else {
      for (const auto& c : f.node->children) {
        stack.push_back({c.get(), f.depth + 1});
      }
    }
  }
  // Memory-resident: the series themselves count toward the footprint.
  fp.memory_bytes += static_cast<int64_t>(data_->bytes());
  return fp;
}

}  // namespace hydra::index
