#include "index/isax2plus.h"

#include <cmath>
#include <limits>

#include "core/distance.h"
#include "core/traversal.h"
#include "io/index_codec.h"
#include "transform/paa.h"
#include "util/check.h"
#include "util/timer.h"

namespace hydra::index {

core::BuildStats Isax2Plus::DoBuild(const core::Dataset& data) {
  util::WallTimer timer;
  data_ = &data;
  HYDRA_CHECK_MSG(data.length() % options_.segments == 0,
                  "iSAX2+ requires length divisible by segment count");

  // One sequential pass: PAA -> full-resolution words.
  full_words_.resize(data.size() * options_.segments);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto paa = transform::Paa(data[i], options_.segments);
    for (size_t s = 0; s < options_.segments; ++s) {
      full_words_[i * options_.segments + s] =
          transform::SaxSymbol(paa[s], transform::kMaxSaxBits);
    }
  }
  tree_ = std::make_unique<IsaxTree>(
      IsaxTreeOptions{options_.segments, options_.leaf_capacity},
      full_words_.data());
  for (size_t i = 0; i < data.size(); ++i) {
    tree_->Insert(static_cast<core::SeriesId>(i));
  }

  core::BuildStats stats;
  stats.cpu_seconds = timer.Seconds();
  stats.bytes_read = static_cast<int64_t>(data.bytes());
  stats.random_reads = 1;
  // Leaf materialization: the raw collection is clustered into leaf files.
  stats.bytes_written = static_cast<int64_t>(data.bytes());
  stats.random_writes = tree_->StructureFootprint().leaf_nodes;
  leaf_count_ = stats.random_writes;
  return stats;
}

void Isax2Plus::DoSave(io::IndexWriter* writer) const {
  writer->BeginSection("options");
  writer->WriteU64(options_.segments);
  writer->WriteU64(options_.leaf_capacity);
  writer->WriteI64(leaf_count_);
  writer->EndSection();
  writer->BeginSection("summaries");
  writer->WritePodVector(full_words_);
  writer->EndSection();
  writer->BeginSection("tree");
  tree_->SaveTo(writer);
  writer->EndSection();
}

util::Status Isax2Plus::DoOpen(io::IndexReader* reader,
                               const core::Dataset& data) {
  reader->EnterSection("options");
  options_.segments = reader->ReadU64();
  options_.leaf_capacity = reader->ReadU64();
  leaf_count_ = reader->ReadI64();
  tree_ = IsaxTree::OpenShared(
      reader, IsaxTreeOptions{options_.segments, options_.leaf_capacity},
      data, &full_words_);
  if (!reader->ok()) return reader->status();
  data_ = &data;
  return reader->status();
}

void Isax2Plus::VisitLeaf(const IsaxTree::Node& leaf,
                          const core::QueryOrder& order,
                          const core::KnnPlan& plan, core::KnnHeap* heap,
                          core::SearchStats* stats) const {
  if (leaf.ids.empty()) return;
  HYDRA_OBS_SPAN_ARG("leaf_verify", "series", leaf.ids.size());
  io::ChargeLeafRead(leaf.ids.size(), data_->length() * sizeof(core::Value),
                     stats);
  io::CountedStorage raw(data_);
  for (const core::SeriesId id : leaf.ids) {
    if (plan.RawCapReached(stats)) return;
    const double d = order.Distance(raw.ReadPrecharged(id, stats),
                                    heap->Bound());
    ++stats->distance_computations;
    ++stats->raw_series_examined;
    heap->Offer(id, d);
  }
}

core::KnnResult Isax2Plus::DoSearchKnn(core::SeriesView query,
                                       const core::KnnPlan& plan) {
  HYDRA_CHECK(tree_ != nullptr);
  util::WallTimer timer;
  core::KnnResult result;
  core::KnnHeap& heap = core::ScratchKnnHeap(plan.k);
  core::KnnWorkers workers(&heap, &result.stats, plan);
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  const auto paa = transform::Paa(query, options_.segments);
  const size_t pps = query.size() / options_.segments;

  // ng-approximate phase: descend to the query's covering leaf for a bsf.
  // Always on the calling thread (worker 0), into the primary heap, so
  // every worker starts from the descent's published bound.
  std::vector<uint8_t> q_word(options_.segments);
  for (size_t s = 0; s < options_.segments; ++s) {
    q_word[s] = transform::SaxSymbol(paa[s], transform::kMaxSaxBits);
  }
  IsaxTree::Node* home = tree_->ApproximateLeaf(q_word, paa, pps);
  if (home != nullptr) {
    ++result.stats.nodes_visited;
    VisitLeaf(*home, order, plan, &heap, &result.stats);
  }

  // A budget exhausted already in the home leaf makes the answer final:
  // skip the traversal outright rather than paying its first-level
  // MINDIST fan-out just to have the -inf bound prune everything.
  if (result.stats.budget_exhausted) {
    workers.Finish(plan.k, &result.neighbors);
    result.stats.cpu_seconds = timer.Seconds();
    return result;
  }

  // Best-first traversal pruned against bsf/(1+epsilon)^2
  // (plan.bound_scale; exact with the default plan). Once a cap fires the
  // bound closure collapses to -inf, which stops that worker's traversal
  // on its next pop. Caps and budgets only ever bind at width 1 (Execute's
  // pure-exact gate), so the per-worker stop flags never diverge.
  std::vector<int64_t> leaves(workers.workers(), 0);
  leaves[0] = home != nullptr ? 1 : 0;
  std::vector<uint8_t> stop(workers.workers(), 0);
  tree_->BestFirstSearch(
      paa, pps, workers.workers(),
      [&](size_t w) -> double {
        if (stop[w] != 0 || workers.stats(w).budget_exhausted) {
          return -std::numeric_limits<double>::infinity();
        }
        return workers.heap(w).Bound() * plan.bound_scale;
      },
      [&](IsaxTree::Node* leaf, size_t w) {
        if (stop[w] != 0 || workers.stats(w).budget_exhausted ||
            leaf == home) {
          return;
        }
        if (plan.LeafCapReached(leaves[w], leaf_count_,
                                &workers.stats(w))) {
          stop[w] = 1;
          return;
        }
        VisitLeaf(*leaf, order, plan, &workers.heap(w), &workers.stats(w));
        ++leaves[w];
      },
      [&](size_t w) { return &workers.stats(w); });

  workers.Finish(plan.k, &result.neighbors);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::RangeResult Isax2Plus::DoSearchRange(core::SeriesView query,
                                           const core::RangePlan& plan) {
  HYDRA_CHECK(tree_ != nullptr);
  util::WallTimer timer;
  core::RangeResult result;
  core::RangeWorkers workers(plan.radius * plan.radius, &result.stats,
                             plan.query_threads);
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  const auto paa = transform::Paa(query, options_.segments);
  const size_t pps = query.size() / options_.segments;

  tree_->BestFirstSearch(
      paa, pps, workers.workers(),
      [&](size_t w) { return workers.collector(w).Bound(); },
      [&](IsaxTree::Node* leaf, size_t w) {
        if (leaf->ids.empty()) return;
        HYDRA_OBS_SPAN_ARG("leaf_verify", "series", leaf->ids.size());
        core::RangeCollector& collector = workers.collector(w);
        core::SearchStats& stats = workers.stats(w);
        io::ChargeLeafRead(leaf->ids.size(),
                           data_->length() * sizeof(core::Value), &stats);
        io::CountedStorage raw(data_);
        for (const core::SeriesId id : leaf->ids) {
          const double d = order.Distance(raw.ReadPrecharged(id, &stats),
                                          collector.Bound());
          ++stats.distance_computations;
          ++stats.raw_series_examined;
          collector.Offer(id, d);
        }
      },
      [&](size_t w) { return &workers.stats(w); });

  workers.Finish(&result.matches);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::KnnResult Isax2Plus::DoSearchKnnNg(core::SeriesView query, size_t k) {
  HYDRA_CHECK(tree_ != nullptr);
  util::WallTimer timer;
  core::KnnResult result;
  core::KnnHeap& heap = core::ScratchKnnHeap(k);
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  const auto paa = transform::Paa(query, options_.segments);
  const size_t pps = query.size() / options_.segments;

  // One-path traversal, at most one leaf (Definition 7).
  std::vector<uint8_t> q_word(options_.segments);
  for (size_t s = 0; s < options_.segments; ++s) {
    q_word[s] = transform::SaxSymbol(paa[s], transform::kMaxSaxBits);
  }
  IsaxTree::Node* home = tree_->ApproximateLeaf(q_word, paa, pps);
  if (home != nullptr) {
    ++result.stats.nodes_visited;
    VisitLeaf(*home, order, core::KnnPlan{.k = k}, &heap, &result.stats);
  }
  heap.ExtractSortedTo(&result.neighbors);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::Footprint Isax2Plus::footprint() const {
  HYDRA_CHECK(tree_ != nullptr);
  core::Footprint fp = tree_->StructureFootprint();
  fp.memory_bytes += static_cast<int64_t>(full_words_.size());
  fp.disk_bytes = static_cast<int64_t>(data_->bytes());  // leaf files
  return fp;
}

double Isax2Plus::MeanTlb(core::SeriesView query) const {
  HYDRA_CHECK(tree_ != nullptr);
  const auto paa = transform::Paa(query, options_.segments);
  const size_t pps = query.size() / options_.segments;
  double sum = 0.0;
  int64_t leaves = 0;
  tree_->ForEachNode([&](const IsaxTree::Node& node) {
    if (!node.is_leaf || node.ids.empty()) return;
    const double lb =
        std::sqrt(transform::IsaxMinDistSq(paa, node.word, pps));
    double true_sum = 0.0;
    for (const core::SeriesId id : node.ids) {
      true_sum += std::sqrt(core::SquaredEuclidean(query, (*data_)[id]));
    }
    const double mean_true = true_sum / static_cast<double>(node.ids.size());
    if (mean_true > 0.0) {
      sum += lb / mean_true;
      ++leaves;
    }
  });
  return leaves == 0 ? 0.0 : sum / static_cast<double>(leaves);
}

}  // namespace hydra::index
