#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "core/distance.h"
#include "core/simd/kernels.h"
#include "io/counted_storage.h"
#include "io/index_codec.h"
#include "obs/trace.h"
#include "transform/paa.h"
#include "util/check.h"
#include "util/timer.h"

namespace hydra::index {
namespace {

// Axis-aligned rectangle in the scaled PAA space.
struct Rect {
  std::vector<double> lo;
  std::vector<double> hi;

  static Rect Point(std::span<const double> p) {
    return Rect{{p.begin(), p.end()}, {p.begin(), p.end()}};
  }
  void ExtendWith(const Rect& other) {
    for (size_t d = 0; d < lo.size(); ++d) {
      lo[d] = std::min(lo[d], other.lo[d]);
      hi[d] = std::max(hi[d], other.hi[d]);
    }
  }
  double Margin() const {
    double m = 0.0;
    for (size_t d = 0; d < lo.size(); ++d) m += hi[d] - lo[d];
    return m;
  }
  double Area() const {
    double a = 1.0;
    for (size_t d = 0; d < lo.size(); ++d) a *= hi[d] - lo[d];
    return a;
  }
  double OverlapWith(const Rect& other) const {
    double a = 1.0;
    for (size_t d = 0; d < lo.size(); ++d) {
      const double w =
          std::min(hi[d], other.hi[d]) - std::max(lo[d], other.lo[d]);
      if (w <= 0.0) return 0.0;
      a *= w;
    }
    return a;
  }
  double EnlargementFor(const Rect& other) const {
    double a_new = 1.0;
    for (size_t d = 0; d < lo.size(); ++d) {
      a_new *= std::max(hi[d], other.hi[d]) - std::min(lo[d], other.lo[d]);
    }
    return a_new - Area();
  }
  double MinDistSqTo(std::span<const double> p) const {
    return core::simd::ActiveKernels().box_dist_sq(p.data(), lo.data(),
                                                   hi.data(), lo.size());
  }
  double CenterDistSqTo(const Rect& other) const {
    double acc = 0.0;
    for (size_t d = 0; d < lo.size(); ++d) {
      const double c =
          (lo[d] + hi[d]) / 2.0 - (other.lo[d] + other.hi[d]) / 2.0;
      acc += c * c;
    }
    return acc;
  }
};

}  // namespace

struct RStarTree::Entry {
  Rect rect;
  std::unique_ptr<Node> child;  // internal entries
  core::SeriesId id = 0;        // leaf entries
};

struct RStarTree::Node {
  int level = 0;  // 0 = leaf
  std::vector<Entry> entries;

  bool is_leaf() const { return level == 0; }
  Rect Mbr() const {
    HYDRA_DCHECK(!entries.empty());
    Rect r = entries.front().rect;
    for (size_t i = 1; i < entries.size(); ++i) r.ExtendWith(entries[i].rect);
    return r;
  }
};

RStarTree::RStarTree(RTreeOptions options) : options_(options) {}
RStarTree::~RStarTree() = default;

core::BuildStats RStarTree::DoBuild(const core::Dataset& data) {
  util::WallTimer timer;
  data_ = &data;
  HYDRA_CHECK_MSG(data.length() % options_.segments == 0,
                  "R*-tree requires length divisible by segment count");
  dims_ = options_.segments;
  scale_ = std::sqrt(static_cast<double>(data.length() / options_.segments));

  points_.resize(data.size() * dims_);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto paa = transform::Paa(data[i], dims_);
    for (size_t d = 0; d < dims_; ++d) points_[i * dims_ + d] = paa[d] * scale_;
  }
  root_ = std::make_unique<Node>();
  height_ = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    InsertPoint(static_cast<core::SeriesId>(i));
  }

  core::BuildStats stats;
  stats.cpu_seconds = timer.Seconds();
  stats.bytes_read = static_cast<int64_t>(data.bytes());
  stats.random_reads = 1;
  stats.bytes_written =
      static_cast<int64_t>(points_.size() * sizeof(double));
  stats.random_writes = footprint().total_nodes;
  return stats;
}

void RStarTree::SaveNode(const Node& node, io::IndexWriter* w) {
  w->WriteI32(node.level);
  w->WriteU64(node.entries.size());
  for (const Entry& e : node.entries) {
    w->WritePodVector(e.rect.lo);
    w->WritePodVector(e.rect.hi);
    if (node.is_leaf()) {
      w->WriteU32(e.id);
    } else {
      SaveNode(*e.child, w);
    }
  }
}

std::unique_ptr<RStarTree::Node> RStarTree::LoadNode(
    io::IndexReader* r, size_t series_count) const {
  const io::IndexReader::NodeGuard guard(r);
  auto node = std::make_unique<Node>();
  node->level = r->ReadI32();
  const uint64_t count = r->ReadU64();
  if (!r->ok()) return node;
  if (node->level < 0) {
    r->Fail("R*-tree node has a negative level");
    return node;
  }
  node->entries.reserve(std::min<uint64_t>(count, series_count + 1));
  for (uint64_t i = 0; i < count && r->ok(); ++i) {
    Entry e;
    e.rect.lo = r->ReadPodVector<double>();
    e.rect.hi = r->ReadPodVector<double>();
    if (r->ok() && (e.rect.lo.size() != dims_ || e.rect.hi.size() != dims_)) {
      r->Fail("R*-tree rectangle does not match the PAA dimensionality");
      return node;
    }
    if (node->is_leaf()) {
      e.id = r->ReadU32();
      if (r->ok() && e.id >= series_count) {
        r->Fail("R*-tree leaf entry is out of the dataset's range");
        return node;
      }
    } else {
      e.child = LoadNode(r, series_count);
    }
    node->entries.push_back(std::move(e));
  }
  return node;
}

void RStarTree::DoSave(io::IndexWriter* writer) const {
  writer->BeginSection("options");
  writer->WriteU64(options_.segments);
  writer->WriteU64(options_.leaf_capacity);
  writer->WriteU64(options_.internal_capacity);
  writer->WriteDouble(options_.reinsert_fraction);
  writer->WriteU64(dims_);
  writer->WriteDouble(scale_);
  writer->WriteI32(height_);
  writer->EndSection();
  writer->BeginSection("points");
  writer->WritePodVector(points_);
  writer->EndSection();
  writer->BeginSection("tree");
  SaveNode(*root_, writer);
  writer->EndSection();
}

util::Status RStarTree::DoOpen(io::IndexReader* reader,
                               const core::Dataset& data) {
  reader->EnterSection("options");
  options_.segments = reader->ReadU64();
  options_.leaf_capacity = reader->ReadU64();
  options_.internal_capacity = reader->ReadU64();
  options_.reinsert_fraction = reader->ReadDouble();
  dims_ = reader->ReadU64();
  scale_ = reader->ReadDouble();
  height_ = reader->ReadI32();
  if (reader->ok() && (dims_ == 0 || data.length() % dims_ != 0)) {
    reader->Fail("R*-tree options are inconsistent with the dataset");
  }
  reader->EnterSection("points");
  points_ = reader->ReadPodVector<double>();
  if (reader->ok() && points_.size() != data.size() * dims_) {
    reader->Fail("R*-tree point file does not cover the dataset");
  }
  reader->EnterSection("tree");
  if (!reader->ok()) return reader->status();
  data_ = &data;
  root_ = LoadNode(reader, data.size());
  return reader->status();
}

void RStarTree::InsertPoint(core::SeriesId id) {
  Entry e;
  e.rect = Rect::Point(
      {points_.data() + static_cast<size_t>(id) * dims_, dims_});
  e.id = id;
  InsertEntry(std::move(e), /*target_level=*/0, /*allow_reinsert=*/true);
}

RStarTree::Node* RStarTree::ChooseSubtree(const Entry& entry,
                                          int target_level,
                                          std::vector<Node*>* path) {
  Node* node = root_.get();
  path->push_back(node);
  while (node->level != target_level) {
    Entry* best = nullptr;
    if (node->level == 1) {
      // Children are leaves: minimize overlap enlargement.
      double best_overlap = std::numeric_limits<double>::infinity();
      double best_enl = std::numeric_limits<double>::infinity();
      for (Entry& cand : node->entries) {
        Rect extended = cand.rect;
        extended.ExtendWith(entry.rect);
        double overlap_delta = 0.0;
        for (const Entry& other : node->entries) {
          if (&other == &cand) continue;
          overlap_delta += extended.OverlapWith(other.rect) -
                           cand.rect.OverlapWith(other.rect);
        }
        const double enl = cand.rect.EnlargementFor(entry.rect);
        if (overlap_delta < best_overlap ||
            (overlap_delta == best_overlap && enl < best_enl)) {
          best_overlap = overlap_delta;
          best_enl = enl;
          best = &cand;
        }
      }
    } else {
      // Minimize area enlargement.
      double best_enl = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (Entry& cand : node->entries) {
        const double enl = cand.rect.EnlargementFor(entry.rect);
        const double area = cand.rect.Area();
        if (enl < best_enl || (enl == best_enl && area < best_area)) {
          best_enl = enl;
          best_area = area;
          best = &cand;
        }
      }
    }
    HYDRA_CHECK(best != nullptr);
    best->rect.ExtendWith(entry.rect);
    node = best->child.get();
    path->push_back(node);
  }
  return node;
}

void RStarTree::InsertEntry(Entry entry, int target_level,
                            bool allow_reinsert) {
  std::vector<Node*> path;
  Node* node = ChooseSubtree(entry, target_level, &path);
  node->entries.push_back(std::move(entry));
  const size_t capacity =
      node->is_leaf() ? options_.leaf_capacity : options_.internal_capacity;
  if (node->entries.size() > capacity) {
    HandleOverflow(node, path, allow_reinsert);
  }
}

void RStarTree::HandleOverflow(Node* node, std::vector<Node*>& path,
                               bool allow_reinsert) {
  if (allow_reinsert && node != root_.get()) {
    // Forced reinsertion: remove the entries farthest from the node center
    // and insert them again from the top.
    const Rect mbr = node->Mbr();
    std::vector<size_t> idx(node->entries.size());
    std::iota(idx.begin(), idx.end(), 0u);
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      return mbr.CenterDistSqTo(node->entries[a].rect) >
             mbr.CenterDistSqTo(node->entries[b].rect);
    });
    const size_t p = std::max<size_t>(
        1, static_cast<size_t>(options_.reinsert_fraction *
                               static_cast<double>(node->entries.size())));
    std::vector<Entry> removed;
    removed.reserve(p);
    std::vector<bool> take(node->entries.size(), false);
    for (size_t i = 0; i < p; ++i) take[idx[i]] = true;
    std::vector<Entry> kept;
    kept.reserve(node->entries.size() - p);
    for (size_t i = 0; i < node->entries.size(); ++i) {
      auto& slot = take[i] ? removed : kept;
      slot.push_back(std::move(node->entries[i]));
    }
    node->entries = std::move(kept);
    const int level = node->level;
    for (Entry& e : removed) {
      InsertEntry(std::move(e), level, /*allow_reinsert=*/false);
    }
    return;
  }
  SplitNode(node, path);
}

void RStarTree::SplitNode(Node* node, std::vector<Node*>& path) {
  const size_t total = node->entries.size();
  const size_t m = std::max<size_t>(1, total * 2 / 5);  // R* minimum: 40%

  // Choose the split axis: minimize the margin sum over all distributions.
  size_t best_axis = 0;
  double best_margin = std::numeric_limits<double>::infinity();
  for (size_t axis = 0; axis < dims_; ++axis) {
    std::vector<size_t> idx(total);
    std::iota(idx.begin(), idx.end(), 0u);
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      return node->entries[a].rect.lo[axis] < node->entries[b].rect.lo[axis];
    });
    double margin_sum = 0.0;
    for (size_t split = m; split <= total - m; ++split) {
      Rect left = node->entries[idx[0]].rect;
      for (size_t i = 1; i < split; ++i) {
        left.ExtendWith(node->entries[idx[i]].rect);
      }
      Rect right = node->entries[idx[split]].rect;
      for (size_t i = split + 1; i < total; ++i) {
        right.ExtendWith(node->entries[idx[i]].rect);
      }
      margin_sum += left.Margin() + right.Margin();
    }
    if (margin_sum < best_margin) {
      best_margin = margin_sum;
      best_axis = axis;
    }
  }

  // Choose the distribution along the axis: minimize overlap, then area.
  std::vector<size_t> idx(total);
  std::iota(idx.begin(), idx.end(), 0u);
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return node->entries[a].rect.lo[best_axis] <
           node->entries[b].rect.lo[best_axis];
  });
  size_t best_split = m;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t split = m; split <= total - m; ++split) {
    Rect left = node->entries[idx[0]].rect;
    for (size_t i = 1; i < split; ++i) {
      left.ExtendWith(node->entries[idx[i]].rect);
    }
    Rect right = node->entries[idx[split]].rect;
    for (size_t i = split + 1; i < total; ++i) {
      right.ExtendWith(node->entries[idx[i]].rect);
    }
    const double overlap = left.OverlapWith(right);
    const double area = left.Area() + right.Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_split = split;
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->level = node->level;
  std::vector<Entry> left_entries;
  for (size_t i = 0; i < total; ++i) {
    auto& slot = i < best_split ? left_entries : sibling->entries;
    slot.push_back(std::move(node->entries[idx[i]]));
  }
  node->entries = std::move(left_entries);

  if (node == root_.get()) {
    auto new_root = std::make_unique<Node>();
    new_root->level = node->level + 1;
    Entry left_e;
    left_e.rect = node->Mbr();
    left_e.child = std::move(root_);
    Entry right_e;
    right_e.rect = sibling->Mbr();
    right_e.child = std::move(sibling);
    new_root->entries.push_back(std::move(left_e));
    new_root->entries.push_back(std::move(right_e));
    root_ = std::move(new_root);
    ++height_;
    return;
  }

  // Fix the parent: refresh the split node's rectangle, add the sibling.
  HYDRA_CHECK(path.size() >= 2);
  Node* parent = path[path.size() - 2];
  for (Entry& e : parent->entries) {
    if (e.child.get() == node) {
      e.rect = node->Mbr();
      break;
    }
  }
  Entry sib_e;
  sib_e.rect = sibling->Mbr();
  sib_e.child = std::move(sibling);
  parent->entries.push_back(std::move(sib_e));
  if (parent->entries.size() > options_.internal_capacity) {
    path.pop_back();
    SplitNode(parent, path);
  }
}

core::KnnResult RStarTree::DoSearchKnn(core::SeriesView query,
                                       const core::KnnPlan& plan) {
  HYDRA_CHECK(root_ != nullptr);
  util::WallTimer timer;
  core::KnnResult result;
  core::KnnHeap& heap = core::ScratchKnnHeap(plan.k);
  heap.ShareBound(plan.shared_bound);
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  // Per-query raw-file cursor: concurrent queries must not share one.
  io::CountedStorage raw(data_);
  const auto paa = transform::Paa(query, dims_);
  std::vector<double> q(dims_);
  for (size_t d = 0; d < dims_; ++d) q[d] = paa[d] * scale_;

  struct Item {
    double lb;
    const Node* node;
    bool operator<(const Item& other) const {
      return lb > other.lb;
    }
  };
  int64_t leaves_visited = 0;
  // MINDIST pruning against bsf/(1+epsilon)^2 (plan.bound_scale) keeps
  // every reported distance within (1+epsilon) of the truth (exact with
  // the default plan).
  std::priority_queue<Item> pq;
  pq.push({0.0, root_.get()});
  while (!pq.empty() && !result.stats.budget_exhausted) {
    const Item item = pq.top();
    pq.pop();
    if (item.lb >= heap.Bound() * plan.bound_scale) break;
    ++result.stats.nodes_visited;
    if (item.node->is_leaf()) {
      // No delta rule on the R*-tree (leaf_count 0), so only the explicit
      // budget can bind here.
      if (plan.LeafCapReached(leaves_visited, 0, &result.stats)) break;
      ++leaves_visited;
      // One random access per leaf; surviving pointers fetch raw series.
      ++result.stats.random_seeks;
      HYDRA_OBS_SPAN_ARG("leaf_verify", "series", item.node->entries.size());
      for (const Entry& e : item.node->entries) {
        const double lb = e.rect.MinDistSqTo(q);
        ++result.stats.lower_bound_computations;
        if (lb >= heap.Bound() * plan.bound_scale) continue;
        if (plan.RawCapReached(&result.stats)) break;
        const core::SeriesView s = raw.Read(e.id, &result.stats);
        const double d = order.Distance(s, heap.Bound());
        ++result.stats.distance_computations;
        ++result.stats.raw_series_examined;
        heap.Offer(e.id, d);
      }
      continue;
    }
    for (const Entry& e : item.node->entries) {
      const double lb = e.rect.MinDistSqTo(q);
      ++result.stats.lower_bound_computations;
      if (lb < heap.Bound() * plan.bound_scale) pq.push({lb, e.child.get()});
    }
  }

  heap.ExtractSortedTo(&result.neighbors);
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::RangeResult RStarTree::DoSearchRange(core::SeriesView query,
                                           const core::RangePlan& plan) {
  const double radius = plan.radius;
  HYDRA_CHECK(root_ != nullptr);
  util::WallTimer timer;
  core::RangeResult result;
  core::RangeCollector collector(radius * radius);
  const core::QueryOrder& order = core::ScratchQueryOrder(query);
  io::CountedStorage raw(data_);
  const auto paa = transform::Paa(query, dims_);
  std::vector<double> q(dims_);
  for (size_t d = 0; d < dims_; ++d) q[d] = paa[d] * scale_;

  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++result.stats.nodes_visited;
    if (node->is_leaf()) {
      ++result.stats.random_seeks;
      HYDRA_OBS_SPAN_ARG("leaf_verify", "series", node->entries.size());
      for (const Entry& e : node->entries) {
        ++result.stats.lower_bound_computations;
        if (e.rect.MinDistSqTo(q) > collector.Bound()) continue;
        const core::SeriesView s = raw.Read(e.id, &result.stats);
        const double d = order.Distance(s, collector.Bound());
        ++result.stats.distance_computations;
        ++result.stats.raw_series_examined;
        collector.Offer(e.id, d);
      }
      continue;
    }
    for (const Entry& e : node->entries) {
      ++result.stats.lower_bound_computations;
      if (e.rect.MinDistSqTo(q) <= collector.Bound()) {
        stack.push_back(e.child.get());
      }
    }
  }

  result.matches = collector.TakeSorted();
  result.stats.cpu_seconds = timer.Seconds();
  return result;
}

core::Footprint RStarTree::footprint() const {
  HYDRA_CHECK(root_ != nullptr);
  core::Footprint fp;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    ++fp.total_nodes;
    fp.memory_bytes += static_cast<int64_t>(
        sizeof(Node) + n->entries.size() *
                           (sizeof(Entry) + 2 * dims_ * sizeof(double)));
    if (n->is_leaf()) {
      ++fp.leaf_nodes;
      fp.leaf_fill_fractions.push_back(
          static_cast<double>(n->entries.size()) /
          static_cast<double>(options_.leaf_capacity));
      fp.leaf_depths.push_back(height_ - n->level);
    } else {
      for (const Entry& e : n->entries) stack.push_back(e.child.get());
    }
  }
  fp.disk_bytes = static_cast<int64_t>(points_.size() * sizeof(double)) +
                  static_cast<int64_t>(data_->bytes());
  return fp;
}

double RStarTree::MeanTlb(core::SeriesView query) const {
  HYDRA_CHECK(root_ != nullptr);
  const auto paa = transform::Paa(query, dims_);
  std::vector<double> q(dims_);
  for (size_t d = 0; d < dims_; ++d) q[d] = paa[d] * scale_;
  double sum = 0.0;
  int64_t leaves = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (!n->is_leaf()) {
      for (const Entry& e : n->entries) stack.push_back(e.child.get());
      continue;
    }
    if (n->entries.empty()) continue;
    const double lb = std::sqrt(n->Mbr().MinDistSqTo(q));
    double true_sum = 0.0;
    for (const Entry& e : n->entries) {
      true_sum += std::sqrt(core::SquaredEuclidean(query, (*data_)[e.id]));
    }
    const double mean_true =
        true_sum / static_cast<double>(n->entries.size());
    if (mean_true > 0.0) {
      sum += lb / mean_true;
      ++leaves;
    }
  }
  return leaves == 0 ? 0.0 : sum / static_cast<double>(leaves);
}

}  // namespace hydra::index
